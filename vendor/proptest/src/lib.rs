//! A minimal, dependency-free stand-in for the `proptest` crate.
//!
//! The build container has no access to crates.io, so the real
//! proptest cannot be fetched. This shim supports the subset the
//! workspace's property tests use — the `proptest!` macro (with an
//! optional `#![proptest_config(...)]` header), `any::<T>()` for the
//! primitive types, integer-range strategies, `collection::vec`, and
//! the `prop_assert!`/`prop_assert_eq!`/`prop_assume!` macros —
//! deterministically (fixed seed, fixed case count) so CI runs are
//! reproducible. No shrinking: a failing case panics with the assertion
//! message plus the failing case index on stderr; because the seed is
//! fixed, that index is a complete reproduction recipe. Swapping back
//! to the real proptest is a one-line change in the workspace manifest.

use std::marker::PhantomData;

pub mod prelude {
    //! Mirrors `proptest::prelude`: everything the `proptest!` tests need.
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy,
    };
}

/// Runner configuration; only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic splitmix64 generator; quality is ample for test-case
/// generation and it keeps the shim dependency-free.
pub struct Rng {
    state: u64,
}

impl Rng {
    pub fn from_seed(seed: u64) -> Self {
        Rng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// A source of values of one type, mirroring `proptest::strategy::Strategy`.
pub trait Strategy {
    type Value;
    fn sample(&self, rng: &mut Rng) -> Self::Value;
}

macro_rules! impl_int_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                (self.start as u128 + (rng.next_u64() as u128) % span) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut Rng) -> $t {
                let (lo, hi) = (*self.start() as u128, *self.end() as u128);
                assert!(lo <= hi, "empty range strategy");
                let span = hi - lo + 1;
                (lo + (rng.next_u64() as u128) % span) as $t
            }
        }
    )+};
}

impl_int_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + ((rng.next_u64() as u128) % span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut Rng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo + 1) as u128;
                (lo + ((rng.next_u64() as u128) % span) as i128) as $t
            }
        }
    )+};
}

impl_signed_strategy!(i32, i64);

/// Types with a canonical full-domain strategy, mirroring
/// `proptest::arbitrary::Arbitrary`.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut Rng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut Rng) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl<const N: usize> Arbitrary for [u8; N] {
    fn arbitrary(rng: &mut Rng) -> [u8; N] {
        let mut out = [0u8; N];
        for chunk in out.chunks_mut(8) {
            let bytes = rng.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        out
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut Rng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for i32 {
    fn arbitrary(rng: &mut Rng) -> i32 {
        rng.next_u64() as i32
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut Rng) -> i64 {
        rng.next_u64() as i64
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut Rng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!((A / 0, B / 1), (A / 0, B / 1, C / 2), (A / 0, B / 1, C / 2, D / 3),);

/// The strategy returned by [`any`].
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut Rng) -> T {
        T::arbitrary(rng)
    }
}

/// Mirrors `proptest::prelude::any`: the full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

pub mod collection {
    //! Mirrors `proptest::collection`.
    use super::{Rng, Strategy};

    /// Half-open range of collection sizes, mirroring
    /// `proptest::collection::SizeRange`. The `From` impls are what let
    /// a bare `1..8` literal infer `usize` at `vec()` call sites.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() + 1 }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    /// Strategy producing `Vec`s with lengths drawn from `len` and
    /// elements drawn from `elem`.
    pub struct VecStrategy<S> {
        elem: S,
        len: SizeRange,
    }

    /// Mirrors `proptest::collection::vec(element_strategy, size_range)`.
    pub fn vec<S: Strategy>(elem: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, len: len.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut Rng) -> Vec<S::Value> {
            let n = self.len.lo + (rng.next_u64() as usize) % (self.len.hi - self.len.lo);
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }

    /// Strategy producing `BTreeMap`s with sizes drawn from `len` and
    /// entries drawn from `key`/`value`. Duplicate sampled keys
    /// collapse, exactly like the real proptest's `btree_map`.
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        len: SizeRange,
    }

    /// Mirrors `proptest::collection::btree_map(key, value, size_range)`.
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        len: impl Into<SizeRange>,
    ) -> BTreeMapStrategy<K, V> {
        BTreeMapStrategy { key, value, len: len.into() }
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = std::collections::BTreeMap<K::Value, V::Value>;
        fn sample(&self, rng: &mut Rng) -> Self::Value {
            let n = self.len.lo + (rng.next_u64() as usize) % (self.len.hi - self.len.lo);
            (0..n).map(|_| (self.key.sample(rng), self.value.sample(rng))).collect()
        }
    }
}

pub mod option {
    //! Mirrors `proptest::option`.
    use super::{Rng, Strategy};

    /// The strategy returned by [`of`].
    pub struct OptionStrategy<S>(S);

    /// Mirrors `proptest::option::of`: `None` in ~1/4 of samples,
    /// `Some(inner)` otherwise (the real crate defaults to a 75%
    /// `Some` probability too).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut Rng) -> Option<S::Value> {
            if rng.next_u64() % 4 == 0 {
                None
            } else {
                Some(self.0.sample(rng))
            }
        }
    }
}

/// Reports the failing case index when a property-test body panics.
/// The shim does no shrinking, but runs are deterministic, so the
/// index alone reproduces the failure.
#[doc(hidden)]
pub struct CaseGuard {
    case: u32,
}

impl CaseGuard {
    pub fn new(case: u32) -> Self {
        CaseGuard { case }
    }
}

impl Drop for CaseGuard {
    fn drop(&mut self) {
        if std::thread::panicking() {
            eprintln!(
                "[proptest-shim] property failed on case {} (deterministic: rerun reproduces it)",
                self.case
            );
        }
    }
}

/// Mirrors `proptest::proptest!`: each test function runs `config.cases`
/// deterministic cases, sampling every `arg in strategy` binding. An
/// optional `#![proptest_config(...)]` header applies to every test in
/// the block.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::Rng::from_seed(0x5eed_0000_0000_0001);
            for __pvr_case in 0..config.cases {
                let __pvr_guard = $crate::CaseGuard::new(__pvr_case);
                $(let $arg = $crate::Strategy::sample(&$strat, &mut rng);)+
                // The body is inlined (not wrapped in a closure) so that
                // `prop_assume!` can `continue` to the next case.
                $body
                drop(__pvr_guard);
            }
        }
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    (cfg = $cfg:expr;) => {};
}

/// Mirrors `proptest::prop_assert!` (panics instead of returning `Err`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Mirrors `proptest::prop_assert_eq!` (panics instead of returning `Err`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Mirrors `proptest::prop_assert_ne!` (panics instead of returning `Err`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Mirrors `proptest::prop_assume!`: skips the current case when the
/// assumption fails. Only valid inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            continue;
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_strategy_stays_in_bounds() {
        let mut rng = Rng::from_seed(42);
        for _ in 0..1000 {
            let v = (10u64..20).sample(&mut rng);
            assert!((10..20).contains(&v));
            let w = (0i64..=5).sample(&mut rng);
            assert!((0..=5).contains(&w));
        }
    }

    #[test]
    fn vec_strategy_respects_length_range() {
        let mut rng = Rng::from_seed(3);
        let s = collection::vec(any::<u8>(), 2usize..5);
        for _ in 0..200 {
            let v = s.sample(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn rng_is_deterministic() {
        let mut a = Rng::from_seed(7);
        let mut b = Rng::from_seed(7);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    proptest! {
        #[test]
        fn macro_binds_multiple_args(x in 1u32..100, y in 0u8..=3) {
            prop_assert!((1..100).contains(&x));
            prop_assert!(y <= 3);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn config_header_and_assume(x in 0u64..10, ys in collection::vec(any::<bool>(), 0..4)) {
            prop_assume!(x != 3);
            prop_assert!(x < 10 && x != 3);
            prop_assert!(ys.len() < 4);
        }
    }
}
