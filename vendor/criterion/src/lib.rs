//! A minimal, dependency-free stand-in for the `criterion` benchmark
//! harness, covering exactly the API surface this workspace uses.
//!
//! The build container has no access to crates.io, so the real
//! criterion cannot be fetched; this shim keeps the six benches under
//! `crates/bench/benches/` compiling and *running* (`cargo bench`
//! prints median ns/iter per benchmark). Swapping back to the real
//! criterion is a one-line change in the workspace manifest.
//!
//! Supported surface: [`Criterion::benchmark_group`],
//! [`Criterion::bench_function`], [`BenchmarkGroup::bench_function`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkGroup::sample_size`],
//! [`BenchmarkGroup::throughput`], [`BenchmarkId::new`],
//! [`BenchmarkId::from_parameter`], [`Throughput`], [`black_box`], and
//! the [`criterion_group!`]/[`criterion_main!`] macros.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export so benches may use `criterion::black_box` like the real crate.
pub use std::hint::black_box;

/// Target wall-clock spent measuring each benchmark (across all samples).
const MEASURE_BUDGET: Duration = Duration::from_millis(200);
/// Warm-up budget per benchmark before measurement starts.
const WARMUP_BUDGET: Duration = Duration::from_millis(50);

/// Identifier for one benchmark within a group, mirroring
/// `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("sign", 1024)` renders as `sign/1024`.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Identifier that is only a parameter, e.g. an input size.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Throughput annotation; recorded and echoed in the report line.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Timing loop handed to each benchmark closure.
pub struct Bencher {
    /// Median nanoseconds per iteration, filled in by [`Bencher::iter`].
    median_ns: f64,
}

impl Bencher {
    /// Warm up, pick an iteration count that fits the measurement
    /// budget, then record the median per-iteration time over several
    /// samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: also yields a first cost estimate.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < WARMUP_BUDGET {
            black_box(routine());
            warm_iters += 1;
        }
        let est_ns = (warm_start.elapsed().as_nanos() as f64 / warm_iters as f64).max(1.0);

        // Aim for ~10 samples inside the measurement budget.
        let samples: usize = 10;
        let budget_per_sample = MEASURE_BUDGET.as_nanos() as f64 / samples as f64;
        let iters_per_sample = ((budget_per_sample / est_ns) as u64).max(1);

        let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
        for _ in 0..samples {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            per_iter.push(t.elapsed().as_nanos() as f64 / iters_per_sample as f64);
        }
        per_iter.sort_by(|a, b| a.partial_cmp(b).unwrap());
        self.median_ns = per_iter[per_iter.len() / 2];
    }
}

/// A named group of benchmarks, mirroring `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim sizes samples by time
    /// budget instead.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Record the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().id);
        run_one(&full, self.throughput, |b| f(b));
        self.criterion.ran += 1;
        self
    }

    /// Run one benchmark that borrows a prepared input.
    pub fn bench_with_input<I, N, F>(&mut self, id: N, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        N: Into<BenchmarkId>,
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into().id);
        run_one(&full, self.throughput, |b| f(b, input));
        self.criterion.ran += 1;
        self
    }

    /// Ends the group (no-op beyond dropping, kept for API parity).
    pub fn finish(self) {}
}

/// Entry point handed to `criterion_group!` functions.
#[derive(Default)]
pub struct Criterion {
    ran: usize,
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), throughput: None }
    }

    /// Run a stand-alone benchmark outside any group.
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into().id, None, |b| f(b));
        self.ran += 1;
        self
    }

    /// Printed by `criterion_main!` after all groups complete.
    pub fn final_summary(&self) {
        eprintln!("[criterion-shim] {} benchmarks completed", self.ran);
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, throughput: Option<Throughput>, mut f: F) {
    let mut bencher = Bencher { median_ns: 0.0 };
    f(&mut bencher);
    let ns = bencher.median_ns;
    let rate = match throughput {
        Some(Throughput::Elements(n)) if ns > 0.0 => {
            format!("  ({:.0} elem/s)", n as f64 * 1e9 / ns)
        }
        Some(Throughput::Bytes(n)) if ns > 0.0 => {
            format!("  ({:.1} MiB/s)", n as f64 * 1e9 / ns / (1024.0 * 1024.0))
        }
        _ => String::new(),
    };
    eprintln!("bench {label:<48} {:>14.1} ns/iter{rate}", ns);
}

/// Mirrors `criterion::criterion_group!`: bundles benchmark functions
/// into one group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Mirrors `criterion::criterion_main!`: generates `fn main` running
/// every group. Ignores CLI args (cargo passes `--bench`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher { median_ns: 0.0 };
        b.iter(|| std::hint::black_box(1u64 + 1));
        assert!(b.median_ns > 0.0);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("sign", 1024).id, "sign/1024");
        assert_eq!(BenchmarkId::from_parameter(64).id, "64");
        assert_eq!(BenchmarkId::from("k5").id, "k5");
    }
}
