//! Sectioned container format for checkpoint files.
//!
//! A container is `magic ‖ version ‖ section*`, where each section is
//! `tag(u8) ‖ len(u64) ‖ payload ‖ SHA-256(tag ‖ len ‖ payload)`. The
//! per-section digest makes corruption attributable: a reader learns
//! *which* part of a checkpoint was damaged (engine state vs. router
//! RIBs vs. snapshot history) instead of just "bad file", and a
//! truncated download fails loudly at the first incomplete section.
//!
//! The layer above (e.g. the BGP checkpoint codec) decides what lives
//! in each section; this module only guarantees framing integrity.

use crate::error::StoreError;
use pvr_crypto::encoding::{Reader, Wire};
use pvr_crypto::sha256::{sha256_concat, Digest, DIGEST_LEN};

/// One decoded section: its tag and verified payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Section {
    /// Caller-defined section kind.
    pub tag: u8,
    /// The section payload (integrity already verified).
    pub payload: Vec<u8>,
}

fn section_digest(tag: u8, payload: &[u8]) -> Digest {
    sha256_concat(&[b"pvr.store.section", &[tag], &(payload.len() as u64).to_be_bytes(), payload])
}

/// Starts a container: writes `magic` and `version`.
pub fn write_header(magic: &[u8; 8], version: u32, out: &mut Vec<u8>) {
    out.extend_from_slice(magic);
    version.encode(out);
}

/// Appends one integrity-protected section.
pub fn write_section(tag: u8, payload: &[u8], out: &mut Vec<u8>) {
    out.push(tag);
    (payload.len() as u64).encode(out);
    out.extend_from_slice(payload);
    out.extend_from_slice(section_digest(tag, payload).as_bytes());
}

/// Parses a container: checks `magic`, returns the version and every
/// section with its SHA-256 trailer verified. `expect_version` rejects
/// anything else with [`StoreError::UnsupportedVersion`].
pub fn read_container(
    bytes: &[u8],
    magic: &[u8; 8],
    expect_version: u32,
) -> Result<Vec<Section>, StoreError> {
    let mut r = Reader::new(bytes);
    if r.take(magic.len()).map_err(|_| StoreError::Truncated)? != magic {
        return Err(StoreError::BadMagic);
    }
    let version = u32::decode(&mut r)?;
    if version != expect_version {
        return Err(StoreError::UnsupportedVersion(version));
    }
    let mut sections = Vec::new();
    while r.remaining() > 0 {
        let tag = r.take(1)?[0];
        let len = u64::decode(&mut r)?;
        if len > r.remaining() as u64 {
            return Err(StoreError::Truncated);
        }
        let payload = r.take(len as usize)?.to_vec();
        let claimed = Digest(r.take_array::<DIGEST_LEN>()?);
        if section_digest(tag, &payload) != claimed {
            return Err(StoreError::SectionHashMismatch { tag });
        }
        sections.push(Section { tag, payload });
    }
    Ok(sections)
}

/// Finds the unique section with `tag`, or a typed error when it is
/// absent or duplicated.
pub fn require_section(sections: &[Section], tag: u8) -> Result<&[u8], StoreError> {
    let mut found = None;
    for s in sections {
        if s.tag == tag {
            if found.is_some() {
                return Err(StoreError::Corrupt("duplicate section tag"));
            }
            found = Some(s.payload.as_slice());
        }
    }
    found.ok_or(StoreError::Corrupt("missing required section"))
}

#[cfg(test)]
mod tests {
    use super::*;

    const MAGIC: &[u8; 8] = b"PVRTEST1";

    fn container() -> Vec<u8> {
        let mut out = Vec::new();
        write_header(MAGIC, 3, &mut out);
        write_section(1, b"engine-bytes", &mut out);
        write_section(2, b"router-bytes", &mut out);
        out
    }

    #[test]
    fn round_trip() {
        let sections = read_container(&container(), MAGIC, 3).unwrap();
        assert_eq!(sections.len(), 2);
        assert_eq!(require_section(&sections, 1).unwrap(), b"engine-bytes");
        assert_eq!(require_section(&sections, 2).unwrap(), b"router-bytes");
        assert!(require_section(&sections, 9).is_err());
    }

    #[test]
    fn every_truncation_fails_typed_or_drops_sections() {
        // Cutting inside a section is a framing error; cutting exactly
        // at a section boundary yields a *valid shorter* container, and
        // the missing section is then caught by `require_section` (the
        // checkpoint layer always requires its full section set).
        let bytes = container();
        for cut in 0..bytes.len() {
            match read_container(&bytes[..cut], MAGIC, 3) {
                Err(_) => {}
                Ok(sections) => {
                    assert!(
                        require_section(&sections, 2).is_err(),
                        "cut at {cut} kept the final section intact"
                    );
                }
            }
        }
    }

    #[test]
    fn payload_bit_flip_names_the_section() {
        let mut bytes = container();
        // Flip a byte inside the second section's payload region.
        let pos = bytes.len() - DIGEST_LEN - 3;
        bytes[pos] ^= 0x40;
        assert_eq!(
            read_container(&bytes, MAGIC, 3),
            Err(StoreError::SectionHashMismatch { tag: 2 })
        );
    }

    #[test]
    fn version_and_magic_checked() {
        assert_eq!(read_container(&container(), MAGIC, 4), Err(StoreError::UnsupportedVersion(3)));
        assert_eq!(read_container(&container(), b"OTHERMAG", 3), Err(StoreError::BadMagic));
    }

    #[test]
    fn length_overflow_is_truncation_not_panic() {
        let mut out = Vec::new();
        write_header(MAGIC, 3, &mut out);
        out.push(1);
        u64::MAX.encode(&mut out); // absurd length
        out.extend_from_slice(b"short");
        assert_eq!(read_container(&out, MAGIC, 3), Err(StoreError::Truncated));
    }
}
