//! The persistent map: a 16-ary, content-addressed radix trie with
//! copy-on-write updates and `Arc` structural sharing.
//!
//! Keys are byte strings walked a nibble (4 bits) at a time, high
//! nibble first, so iteration order is plain lexicographic byte order.
//! Every node carries the SHA-256 **content address** of its subtree —
//! the same domain-separated hashing discipline as `pvr-mht`'s sparse
//! trie (`H(tag ‖ canonical encoding)`) — which is what makes O(1)
//! snapshots, hash-pruned diffs, and integrity-checked dumps all fall
//! out of one structure:
//!
//! * two subtrees with equal hashes are equal (collision-resistance),
//!   so [`diff`] skips shared state without touching it;
//! * a node's address doubles as its identity in the on-disk dump, so
//!   snapshots deduplicate against each other for free;
//! * the loader re-derives every address and refuses mismatches, so a
//!   flipped bit anywhere is caught at the node that owns it.

use pvr_crypto::encoding::Wire;
use pvr_crypto::sha256::{sha256_concat, Digest};
use std::sync::Arc;

/// Children per node: one per key nibble value.
pub(crate) const FANOUT: usize = 16;

/// One trie node. Immutable after construction; shared via `Arc`.
#[derive(Debug)]
pub(crate) struct Node {
    /// Value stored at exactly this key (the nibble path to the node).
    pub(crate) value: Option<Vec<u8>>,
    /// Child subtrees, indexed by next key nibble.
    pub(crate) children: [Option<Arc<Node>>; FANOUT],
    /// SHA-256 content address of this subtree.
    pub(crate) hash: Digest,
    /// Number of keys stored in this subtree.
    pub(crate) count: usize,
}

fn empty_children() -> [Option<Arc<Node>>; FANOUT] {
    std::array::from_fn(|_| None)
}

/// Canonical encoding a node's content address is derived from: the
/// optional value, a presence bitmap, then each present child's address
/// in nibble order. Shared verbatim with the dump format so the loader
/// verifies exactly what the hash commits to.
pub(crate) fn encode_content(
    value: &Option<Vec<u8>>,
    child_hashes: &[Option<Digest>; FANOUT],
    buf: &mut Vec<u8>,
) {
    value.encode(buf);
    let mut bitmap = 0u16;
    for (i, h) in child_hashes.iter().enumerate() {
        if h.is_some() {
            bitmap |= 1 << i;
        }
    }
    bitmap.encode(buf);
    for h in child_hashes.iter().flatten() {
        h.encode(buf);
    }
}

/// The content address for a node with the given parts.
pub(crate) fn content_address(
    value: &Option<Vec<u8>>,
    child_hashes: &[Option<Digest>; FANOUT],
) -> Digest {
    let mut buf = Vec::with_capacity(64);
    encode_content(value, child_hashes, &mut buf);
    sha256_concat(&[b"pvr.store.node", &buf])
}

impl Node {
    /// Builds a node, deriving its hash and subtree count.
    pub(crate) fn new(value: Option<Vec<u8>>, children: [Option<Arc<Node>>; FANOUT]) -> Node {
        let child_hashes: [Option<Digest>; FANOUT] =
            std::array::from_fn(|i| children[i].as_ref().map(|c| c.hash));
        let hash = content_address(&value, &child_hashes);
        let count = usize::from(value.is_some())
            + children.iter().flatten().map(|c| c.count).sum::<usize>();
        Node { value, children, hash, count }
    }
}

/// The `i`-th nibble of `key`, high nibble of each byte first.
fn nibble(key: &[u8], i: usize) -> usize {
    let b = key[i / 2];
    if i % 2 == 0 {
        (b >> 4) as usize
    } else {
        (b & 0x0f) as usize
    }
}

fn nibbles_to_bytes(nibbles: &[u8]) -> Vec<u8> {
    debug_assert!(nibbles.len() % 2 == 0, "byte keys have an even nibble count");
    nibbles.chunks_exact(2).map(|p| (p[0] << 4) | p[1]).collect()
}

/// A persistent byte-key → byte-value map.
///
/// `Clone` is an O(1) snapshot: both versions share all state and
/// neither can observe the other's subsequent updates (updates return
/// *new* maps, they never mutate).
#[derive(Clone, Debug, Default)]
pub struct PMap {
    root: Option<Arc<Node>>,
}

impl PMap {
    /// The empty map.
    pub fn new() -> PMap {
        PMap::default()
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.root.as_ref().map_or(0, |n| n.count)
    }

    /// True when no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.root.is_none()
    }

    /// The SHA-256 content address of the whole map. Equal addresses
    /// mean equal contents; the empty map has a distinguished address.
    pub fn root_hash(&self) -> Digest {
        match &self.root {
            Some(n) => n.hash,
            None => sha256_concat(&[b"pvr.store.empty"]),
        }
    }

    /// Looks up `key`.
    pub fn get(&self, key: &[u8]) -> Option<&[u8]> {
        let mut node = self.root.as_ref()?;
        for i in 0..key.len() * 2 {
            node = node.children[nibble(key, i)].as_ref()?;
        }
        node.value.as_deref()
    }

    /// Returns a new map with `key → value` set. Copy-on-write: only
    /// the nibble path to `key` is rebuilt; if the stored value is
    /// already byte-equal, the *same* map is returned (full sharing),
    /// which is what makes periodic RIB syncs cheap between changes.
    pub fn insert(&self, key: &[u8], value: &[u8]) -> PMap {
        PMap { root: Some(insert_rec(self.root.as_ref(), key, 0, value)) }
    }

    /// Returns a new map without `key`. Absent keys return a map
    /// sharing all state with `self`.
    pub fn remove(&self, key: &[u8]) -> PMap {
        match &self.root {
            None => self.clone(),
            Some(root) => match remove_rec(root, key, 0) {
                None => self.clone(),
                Some(new_root) => PMap { root: new_root },
            },
        }
    }

    /// Visits every `(key, value)` pair in lexicographic key order.
    pub fn for_each(&self, mut f: impl FnMut(&[u8], &[u8])) {
        if let Some(root) = &self.root {
            walk(root, &mut Vec::new(), &mut f);
        }
    }

    /// Visits every pair whose key starts with `prefix` (whole bytes),
    /// in lexicographic key order.
    pub fn for_each_under(&self, prefix: &[u8], mut f: impl FnMut(&[u8], &[u8])) {
        let Some(mut node) = self.root.as_ref() else { return };
        for i in 0..prefix.len() * 2 {
            match node.children[nibble(prefix, i)].as_ref() {
                Some(c) => node = c,
                None => return,
            }
        }
        let mut nibbles: Vec<u8> = (0..prefix.len() * 2).map(|i| nibble(prefix, i) as u8).collect();
        walk(node, &mut nibbles, &mut f);
    }

    /// All entries, sorted by key.
    pub fn entries(&self) -> Vec<(Vec<u8>, Vec<u8>)> {
        let mut out = Vec::with_capacity(self.len());
        self.for_each(|k, v| out.push((k.to_vec(), v.to_vec())));
        out
    }

    pub(crate) fn root(&self) -> Option<&Arc<Node>> {
        self.root.as_ref()
    }

    pub(crate) fn from_root(root: Option<Arc<Node>>) -> PMap {
        PMap { root }
    }
}

impl PartialEq for PMap {
    fn eq(&self, other: &PMap) -> bool {
        self.root_hash() == other.root_hash()
    }
}

impl Eq for PMap {}

fn insert_rec(node: Option<&Arc<Node>>, key: &[u8], depth: usize, value: &[u8]) -> Arc<Node> {
    if depth == key.len() * 2 {
        return match node {
            Some(n) if n.value.as_deref() == Some(value) => Arc::clone(n),
            Some(n) => Arc::new(Node::new(Some(value.to_vec()), n.children.clone())),
            None => Arc::new(Node::new(Some(value.to_vec()), empty_children())),
        };
    }
    let idx = nibble(key, depth);
    let old_child = node.and_then(|n| n.children[idx].as_ref());
    let new_child = insert_rec(old_child, key, depth + 1, value);
    match node {
        Some(n) => {
            if let Some(old) = old_child {
                if Arc::ptr_eq(old, &new_child) {
                    return Arc::clone(n); // no-op insert: share the whole subtree
                }
            }
            let mut children = n.children.clone();
            children[idx] = Some(new_child);
            Arc::new(Node::new(n.value.clone(), children))
        }
        None => {
            let mut children = empty_children();
            children[idx] = Some(new_child);
            Arc::new(Node::new(None, children))
        }
    }
}

/// `None` = key absent (caller keeps the original map); `Some(new)` =
/// subtree changed, `new == None` prunes the now-empty subtree.
fn remove_rec(node: &Arc<Node>, key: &[u8], depth: usize) -> Option<Option<Arc<Node>>> {
    if depth == key.len() * 2 {
        node.value.as_ref()?;
        if node.count == 1 {
            return Some(None);
        }
        return Some(Some(Arc::new(Node::new(None, node.children.clone()))));
    }
    let idx = nibble(key, depth);
    let child = node.children[idx].as_ref()?;
    let new_child = remove_rec(child, key, depth + 1)?;
    let mut children = node.children.clone();
    children[idx] = new_child;
    if node.value.is_none() && children.iter().all(|c| c.is_none()) {
        return Some(None);
    }
    Some(Some(Arc::new(Node::new(node.value.clone(), children))))
}

fn walk(node: &Node, nibbles: &mut Vec<u8>, f: &mut impl FnMut(&[u8], &[u8])) {
    if let Some(v) = &node.value {
        let key = nibbles_to_bytes(nibbles);
        f(&key, v);
    }
    for (i, child) in node.children.iter().enumerate() {
        if let Some(c) = child {
            nibbles.push(i as u8);
            walk(c, nibbles, f);
            nibbles.pop();
        }
    }
}

/// One difference between two snapshots.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DiffEntry {
    /// Key present in the new snapshot only.
    Added {
        /// The key.
        key: Vec<u8>,
        /// Its value in the new snapshot.
        value: Vec<u8>,
    },
    /// Key present in the old snapshot only.
    Removed {
        /// The key.
        key: Vec<u8>,
        /// Its value in the old snapshot.
        value: Vec<u8>,
    },
    /// Key present in both with different values.
    Changed {
        /// The key.
        key: Vec<u8>,
        /// The old value.
        old: Vec<u8>,
        /// The new value.
        new: Vec<u8>,
    },
}

impl DiffEntry {
    /// The key this entry is about.
    pub fn key(&self) -> &[u8] {
        match self {
            DiffEntry::Added { key, .. }
            | DiffEntry::Removed { key, .. }
            | DiffEntry::Changed { key, .. } => key,
        }
    }
}

/// Structural diff from `old` to `new`, in lexicographic key order.
///
/// Subtrees shared between the snapshots (by pointer or by content
/// address) are skipped without being visited, so the cost scales with
/// the churn between the snapshots rather than with table size.
pub fn diff(old: &PMap, new: &PMap) -> Vec<DiffEntry> {
    let mut out = Vec::new();
    diff_rec(old.root(), new.root(), &mut Vec::new(), &mut out);
    out
}

fn diff_rec(
    old: Option<&Arc<Node>>,
    new: Option<&Arc<Node>>,
    nibbles: &mut Vec<u8>,
    out: &mut Vec<DiffEntry>,
) {
    match (old, new) {
        (None, None) => {}
        (Some(o), Some(n)) => {
            if Arc::ptr_eq(o, n) || o.hash == n.hash {
                return; // shared subtree: provably identical
            }
            match (&o.value, &n.value) {
                (Some(ov), Some(nv)) if ov != nv => out.push(DiffEntry::Changed {
                    key: nibbles_to_bytes(nibbles),
                    old: ov.clone(),
                    new: nv.clone(),
                }),
                (Some(ov), None) => out
                    .push(DiffEntry::Removed { key: nibbles_to_bytes(nibbles), value: ov.clone() }),
                (None, Some(nv)) => {
                    out.push(DiffEntry::Added { key: nibbles_to_bytes(nibbles), value: nv.clone() })
                }
                _ => {}
            }
            for i in 0..FANOUT {
                nibbles.push(i as u8);
                diff_rec(o.children[i].as_ref(), n.children[i].as_ref(), nibbles, out);
                nibbles.pop();
            }
        }
        (Some(o), None) => walk(o, nibbles, &mut |k, v| {
            out.push(DiffEntry::Removed { key: k.to_vec(), value: v.to_vec() })
        }),
        (None, Some(n)) => walk(n, nibbles, &mut |k, v| {
            out.push(DiffEntry::Added { key: k.to_vec(), value: v.to_vec() })
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map_of(pairs: &[(&[u8], &[u8])]) -> PMap {
        let mut m = PMap::new();
        for (k, v) in pairs {
            m = m.insert(k, v);
        }
        m
    }

    #[test]
    fn insert_get_remove() {
        let m = map_of(&[(b"abc", b"1"), (b"abd", b"2"), (b"x", b"3")]);
        assert_eq!(m.len(), 3);
        assert_eq!(m.get(b"abc"), Some(b"1".as_slice()));
        assert_eq!(m.get(b"abd"), Some(b"2".as_slice()));
        assert_eq!(m.get(b"x"), Some(b"3".as_slice()));
        assert_eq!(m.get(b"ab"), None);
        assert_eq!(m.get(b"nope"), None);
        let m2 = m.remove(b"abd");
        assert_eq!(m2.len(), 2);
        assert_eq!(m2.get(b"abd"), None);
        assert_eq!(m.get(b"abd"), Some(b"2".as_slice()), "snapshots are immutable");
    }

    #[test]
    fn prefix_key_coexists_with_extension() {
        let m = map_of(&[(b"ab", b"short"), (b"abcd", b"long")]);
        assert_eq!(m.get(b"ab"), Some(b"short".as_slice()));
        assert_eq!(m.get(b"abcd"), Some(b"long".as_slice()));
        let m2 = m.remove(b"ab");
        assert_eq!(m2.get(b"ab"), None);
        assert_eq!(m2.get(b"abcd"), Some(b"long".as_slice()));
    }

    #[test]
    fn empty_key_is_a_key() {
        let m = PMap::new().insert(b"", b"root-value");
        assert_eq!(m.get(b""), Some(b"root-value".as_slice()));
        assert_eq!(m.len(), 1);
        assert!(m.remove(b"").is_empty());
    }

    #[test]
    fn noop_insert_shares_root() {
        let m = map_of(&[(b"abc", b"1"), (b"xyz", b"2")]);
        let m2 = m.insert(b"abc", b"1");
        assert_eq!(m.root_hash(), m2.root_hash());
        assert!(Arc::ptr_eq(m.root().unwrap(), m2.root().unwrap()), "no-op insert must share");
    }

    #[test]
    fn cow_shares_untouched_subtrees() {
        let m = map_of(&[(b"abc", b"1"), (b"xyz", b"2")]);
        let m2 = m.insert(b"abc", b"changed");
        // The subtree under 'x' is untouched: same child Arc.
        let x = nibble(b"xyz", 0);
        let old = m.root().unwrap().children[x].as_ref().unwrap();
        let new = m2.root().unwrap().children[x].as_ref().unwrap();
        assert!(Arc::ptr_eq(old, new), "COW update must share untouched subtrees");
        assert_ne!(m.root_hash(), m2.root_hash());
    }

    #[test]
    fn absent_remove_shares_everything() {
        let m = map_of(&[(b"abc", b"1")]);
        let m2 = m.remove(b"zzz");
        assert!(Arc::ptr_eq(m.root().unwrap(), m2.root().unwrap()));
    }

    #[test]
    fn remove_prunes_empty_chains() {
        let m = map_of(&[(b"abc", b"1")]);
        assert!(m.remove(b"abc").is_empty(), "chain to the only key must fully prune");
    }

    #[test]
    fn iteration_is_sorted() {
        let m = map_of(&[(b"b", b"2"), (b"a", b"1"), (b"ab", b"3"), (b"aa", b"4")]);
        let keys: Vec<Vec<u8>> = m.entries().into_iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec![b"a".to_vec(), b"aa".to_vec(), b"ab".to_vec(), b"b".to_vec()]);
    }

    #[test]
    fn for_each_under_scopes_to_prefix() {
        let m = map_of(&[(b"aa1", b"1"), (b"aa2", b"2"), (b"ab1", b"3"), (b"aa", b"4")]);
        let mut got = Vec::new();
        m.for_each_under(b"aa", |k, _| got.push(k.to_vec()));
        assert_eq!(got, vec![b"aa".to_vec(), b"aa1".to_vec(), b"aa2".to_vec()]);
        let mut none = Vec::new();
        m.for_each_under(b"zz", |k, _| none.push(k.to_vec()));
        assert!(none.is_empty());
    }

    #[test]
    fn content_address_is_insertion_order_independent() {
        let a = map_of(&[(b"k1", b"v1"), (b"k2", b"v2"), (b"k3", b"v3")]);
        let b = map_of(&[(b"k3", b"v3"), (b"k1", b"v1"), (b"k2", b"v2")]);
        assert_eq!(a.root_hash(), b.root_hash());
        assert_eq!(a, b);
    }

    #[test]
    fn history_independence_through_removal() {
        // A map that took a detour through extra keys converges to the
        // same address once those keys are removed.
        let direct = map_of(&[(b"keep", b"v")]);
        let detour = map_of(&[(b"keep", b"v"), (b"temp", b"t")]).remove(b"temp");
        assert_eq!(direct.root_hash(), detour.root_hash());
    }

    #[test]
    fn diff_reports_adds_removes_changes_sorted() {
        let old = map_of(&[(b"a", b"1"), (b"b", b"2"), (b"c", b"3")]);
        let new = old.remove(b"a").insert(b"b", b"2'").insert(b"d", b"4");
        let d = diff(&old, &new);
        assert_eq!(
            d,
            vec![
                DiffEntry::Removed { key: b"a".to_vec(), value: b"1".to_vec() },
                DiffEntry::Changed { key: b"b".to_vec(), old: b"2".to_vec(), new: b"2'".to_vec() },
                DiffEntry::Added { key: b"d".to_vec(), value: b"4".to_vec() },
            ]
        );
    }

    #[test]
    fn diff_of_snapshots_is_empty() {
        let m = map_of(&[(b"a", b"1"), (b"b", b"2")]);
        let snap = m.clone(); // O(1) snapshot
        assert!(diff(&m, &snap).is_empty());
    }

    #[test]
    fn diff_against_empty() {
        let m = map_of(&[(b"a", b"1")]);
        assert_eq!(
            diff(&PMap::new(), &m),
            vec![DiffEntry::Added { key: b"a".to_vec(), value: b"1".to_vec() }]
        );
        assert_eq!(
            diff(&m, &PMap::new()),
            vec![DiffEntry::Removed { key: b"a".to_vec(), value: b"1".to_vec() }]
        );
    }

    #[test]
    fn empty_map_has_distinguished_hash() {
        assert_ne!(PMap::new().root_hash(), map_of(&[(b"", b"")]).root_hash());
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;
        use std::collections::BTreeMap;

        proptest! {
            #[test]
            fn matches_btreemap(
                ops in proptest::collection::vec(
                    (proptest::collection::vec(any::<u8>(), 0..6),
                     proptest::option::of(proptest::collection::vec(any::<u8>(), 0..4))),
                    0..40,
                )
            ) {
                let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
                let mut m = PMap::new();
                for (key, maybe_value) in ops {
                    match maybe_value {
                        Some(v) => { model.insert(key.clone(), v.clone()); m = m.insert(&key, &v); }
                        None => { model.remove(&key); m = m.remove(&key); }
                    }
                }
                prop_assert_eq!(m.len(), model.len());
                let got = m.entries();
                let want: Vec<(Vec<u8>, Vec<u8>)> =
                    model.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
                prop_assert_eq!(got, want, "entries must match a model BTreeMap, sorted");
                // Content addressing: rebuilding from the model in sorted
                // order produces the identical root hash.
                let mut rebuilt = PMap::new();
                for (k, v) in &model {
                    rebuilt = rebuilt.insert(k, v);
                }
                prop_assert_eq!(rebuilt.root_hash(), m.root_hash());
            }

            #[test]
            fn diff_applied_to_old_yields_new(
                base in proptest::collection::btree_map(
                    proptest::collection::vec(any::<u8>(), 1..4),
                    proptest::collection::vec(any::<u8>(), 0..3), 0..12),
                extra in proptest::collection::btree_map(
                    proptest::collection::vec(any::<u8>(), 1..4),
                    proptest::collection::vec(any::<u8>(), 0..3), 0..12),
            ) {
                let mut old = PMap::new();
                for (k, v) in &base { old = old.insert(k, v); }
                let mut new = old.clone();
                for (k, v) in &extra { new = new.insert(k, v); }
                for (i, k) in base.keys().enumerate() {
                    if i % 3 == 0 { new = new.remove(k); }
                }
                let mut patched = old.clone();
                for entry in diff(&old, &new) {
                    match entry {
                        DiffEntry::Added { key, value } | DiffEntry::Changed { key, new: value, .. } =>
                            patched = patched.insert(&key, &value),
                        DiffEntry::Removed { key, .. } => patched = patched.remove(&key),
                    }
                }
                prop_assert_eq!(patched.root_hash(), new.root_hash());
            }
        }
    }
}
