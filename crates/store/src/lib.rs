//! # pvr-store — content-addressed, copy-on-write persistent RIB store
//!
//! The durability layer under the simulator's RIBs: ROADMAP's
//! "persistent copy-on-write RIB store" grown out of the [`pvr_mht`]
//! sparse-trie construction. Where `pvr-mht` builds a hash tree once to
//! commit to a set of leaves, this crate makes the same
//! domain-separated, content-addressed trie *mutable and persistent*:
//!
//! * [`PMap`] — a 16-ary radix trie over byte keys with `Arc` structural
//!   sharing. Updates are copy-on-write: an insert rebuilds only the
//!   nibble path it touches (`O(key length)` new nodes) and shares every
//!   other subtree with its parent version. Cloning a [`PMap`] is an
//!   **O(1) snapshot** — exactly what a router needs to retain its RIB
//!   at a convergence barrier without stalling the event loop.
//! * [`diff`] — incremental structural diff between two snapshots:
//!   shared subtrees are skipped by content hash, so the cost is
//!   proportional to what actually changed, not to table size.
//! * [`dump_snapshots`] / [`load_snapshots`] — a versioned checkpoint
//!   format in which every node is stored with its SHA-256 content
//!   address and re-verified on load. Truncated, bit-flipped, or
//!   version-bumped files surface as typed [`StoreError`]s — never a
//!   panic, never silently corrupt state. Snapshots dumped together
//!   share nodes on disk, so a checkpoint history costs little more
//!   than its churn.
//! * [`framing`] — the sectioned container format (`tag`, length,
//!   payload, SHA-256 trailer) the full simulator checkpoint files are
//!   built from.
//!
//! [`pvr_mht`]: https://docs.rs/pvr-mht

pub mod dump;
pub mod error;
pub mod framing;
pub mod pmap;

pub use dump::{dump_snapshots, load_snapshots, DUMP_MAGIC, DUMP_VERSION};
pub use error::StoreError;
pub use framing::{read_container, require_section, write_header, write_section, Section};
pub use pmap::{diff, DiffEntry, PMap};
