//! Versioned snapshot dump/load with per-node SHA-256 integrity.
//!
//! A dump holds any number of named snapshot roots over one shared node
//! table. Nodes are written post-order (children strictly before
//! parents) and deduplicated by content address, so a checkpoint
//! history of `k` snapshots costs the *union* of their nodes — the
//! shared bulk of a slowly-churning RIB is stored once.
//!
//! On load every node's content address is recomputed from its decoded
//! payload and compared against the stored address; any mismatch —
//! a flipped bit in a value, a swapped child pointer, a reordered
//! table — is rejected with a typed [`StoreError`] naming the node.
//! Truncations surface as [`StoreError::Truncated`], alien files as
//! [`StoreError::BadMagic`], and future format revisions as
//! [`StoreError::UnsupportedVersion`]. The loader builds its result
//! entirely before returning, so a failed load leaves nothing behind.

use crate::error::StoreError;
use crate::pmap::{content_address, encode_content, Node, PMap, FANOUT};
use pvr_crypto::encoding::{Reader, Wire};
use pvr_crypto::sha256::Digest;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// First 8 bytes of every snapshot dump.
pub const DUMP_MAGIC: &[u8; 8] = b"PVRSTOR1";
/// Format version this build writes and accepts.
pub const DUMP_VERSION: u32 = 1;

/// Serializes `snapshots` (label → map) into a self-contained,
/// integrity-checked byte vector. Labels are caller-defined (the
/// checkpoint layer uses snapshot sim-times); order is preserved.
pub fn dump_snapshots(snapshots: &[(u64, &PMap)]) -> Vec<u8> {
    let mut nodes: Vec<&Arc<Node>> = Vec::new();
    let mut seen: HashSet<Digest> = HashSet::new();
    for (_, map) in snapshots {
        if let Some(root) = map.root() {
            collect_post_order(root, &mut seen, &mut nodes);
        }
    }

    let mut out = Vec::new();
    out.extend_from_slice(DUMP_MAGIC);
    DUMP_VERSION.encode(&mut out);
    (nodes.len() as u32).encode(&mut out);
    for node in &nodes {
        let child_hashes: [Option<Digest>; FANOUT] =
            std::array::from_fn(|i| node.children[i].as_ref().map(|c| c.hash));
        encode_content(&node.value, &child_hashes, &mut out);
        node.hash.encode(&mut out);
    }
    (snapshots.len() as u32).encode(&mut out);
    for (label, map) in snapshots {
        label.encode(&mut out);
        map.root().map(|r| r.hash).encode(&mut out);
    }
    out
}

fn collect_post_order<'a>(
    node: &'a Arc<Node>,
    seen: &mut HashSet<Digest>,
    out: &mut Vec<&'a Arc<Node>>,
) {
    if seen.contains(&node.hash) {
        return;
    }
    for child in node.children.iter().flatten() {
        collect_post_order(child, seen, out);
    }
    // Check again: a diamond (two children with identical content)
    // could have inserted this very hash while we recursed.
    if seen.insert(node.hash) {
        out.push(node);
    }
}

/// Parses and verifies a dump produced by [`dump_snapshots`].
///
/// Every node's content address is recomputed and checked; the whole
/// input must be consumed. On any failure the file's contents are
/// discarded and a typed error is returned — no partial state escapes.
pub fn load_snapshots(bytes: &[u8]) -> Result<Vec<(u64, PMap)>, StoreError> {
    let mut r = Reader::new(bytes);
    if r.take(DUMP_MAGIC.len()).map_err(|_| StoreError::Truncated)? != DUMP_MAGIC {
        return Err(StoreError::BadMagic);
    }
    let version = u32::decode(&mut r)?;
    if version != DUMP_VERSION {
        return Err(StoreError::UnsupportedVersion(version));
    }

    let node_count = u32::decode(&mut r)?;
    if node_count as usize > bytes.len() {
        // A node costs well over one byte; a count exceeding the file
        // size is a corrupt prefix, not a huge table.
        return Err(StoreError::Corrupt("node count exceeds input size"));
    }
    let mut by_hash: HashMap<Digest, Arc<Node>> = HashMap::with_capacity(node_count as usize);
    for index in 0..node_count {
        let value = Option::<Vec<u8>>::decode(&mut r)?;
        let bitmap = u16::decode(&mut r)?;
        let mut child_hashes: [Option<Digest>; FANOUT] = std::array::from_fn(|_| None);
        for (i, slot) in child_hashes.iter_mut().enumerate() {
            if bitmap & (1 << i) != 0 {
                *slot = Some(Digest::decode(&mut r)?);
            }
        }
        let claimed = Digest::decode(&mut r)?;
        if content_address(&value, &child_hashes) != claimed {
            return Err(StoreError::NodeHashMismatch { index });
        }
        let mut children: [Option<Arc<Node>>; FANOUT] = std::array::from_fn(|_| None);
        for (i, h) in child_hashes.iter().enumerate() {
            if let Some(h) = h {
                children[i] = Some(Arc::clone(by_hash.get(h).ok_or(StoreError::MissingChild)?));
            }
        }
        let node = Node::new(value, children);
        debug_assert_eq!(node.hash, claimed);
        by_hash.insert(claimed, Arc::new(node));
    }

    let root_count = u32::decode(&mut r)?;
    if root_count as usize > bytes.len() {
        return Err(StoreError::Corrupt("root count exceeds input size"));
    }
    let mut out = Vec::with_capacity(root_count as usize);
    for _ in 0..root_count {
        let label = u64::decode(&mut r)?;
        let map = match Option::<Digest>::decode(&mut r)? {
            None => PMap::new(),
            Some(h) => {
                PMap::from_root(Some(Arc::clone(by_hash.get(&h).ok_or(StoreError::MissingChild)?)))
            }
        };
        out.push((label, map));
    }
    if r.remaining() > 0 {
        return Err(StoreError::TrailingBytes(r.remaining()));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map_of(pairs: &[(&[u8], &[u8])]) -> PMap {
        let mut m = PMap::new();
        for (k, v) in pairs {
            m = m.insert(k, v);
        }
        m
    }

    #[test]
    fn round_trip_single_snapshot() {
        let m = map_of(&[(b"abc", b"1"), (b"abd", b"2"), (b"zz", b"3")]);
        let bytes = dump_snapshots(&[(7, &m)]);
        let loaded = load_snapshots(&bytes).unwrap();
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded[0].0, 7);
        assert_eq!(loaded[0].1.root_hash(), m.root_hash());
        assert_eq!(loaded[0].1.entries(), m.entries());
    }

    #[test]
    fn round_trip_empty_snapshot() {
        let bytes = dump_snapshots(&[(0, &PMap::new())]);
        let loaded = load_snapshots(&bytes).unwrap();
        assert!(loaded[0].1.is_empty());
    }

    #[test]
    fn history_shares_nodes_on_disk() {
        // 64 keys, then one change: the two-snapshot dump must be far
        // smaller than two independent dumps (shared bulk stored once).
        let mut m = PMap::new();
        for i in 0u32..64 {
            m = m.insert(&i.to_be_bytes(), b"value-payload-of-some-size");
        }
        let m2 = m.insert(&7u32.to_be_bytes(), b"changed");
        let one = dump_snapshots(&[(1, &m)]).len();
        let both = dump_snapshots(&[(1, &m), (2, &m2)]).len();
        let separate = one + dump_snapshots(&[(2, &m2)]).len();
        // The second snapshot must cost only its changed root-to-leaf
        // path (which includes the wide fan-out nodes near the root),
        // not a second copy of the table.
        assert!(
            both < separate - one / 3,
            "shared history must dedup: {both} vs {separate} bytes ({one} for one snapshot)"
        );
        let loaded = load_snapshots(&dump_snapshots(&[(1, &m), (2, &m2)])).unwrap();
        assert_eq!(loaded[0].1.root_hash(), m.root_hash());
        assert_eq!(loaded[1].1.root_hash(), m2.root_hash());
    }

    #[test]
    fn every_truncation_is_a_typed_error() {
        let m = map_of(&[(b"abc", b"1"), (b"x", b"2")]);
        let bytes = dump_snapshots(&[(3, &m)]);
        for cut in 0..bytes.len() {
            let err =
                load_snapshots(&bytes[..cut]).expect_err(&format!("truncation at {cut} must fail"));
            // Any typed error is acceptable; panics/successes are not.
            let _ = err.to_string();
        }
    }

    #[test]
    fn bit_flips_are_detected() {
        let m = map_of(&[(b"abc", b"payload-one"), (b"abd", b"payload-two")]);
        let bytes = dump_snapshots(&[(9, &m)]);
        let mut undetected = 0usize;
        for pos in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[pos] ^= 0x01;
            match load_snapshots(&corrupt) {
                Err(_) => {}
                Ok(loaded) => {
                    // The only acceptable "success" is one that changed
                    // nothing observable (e.g. the root label field,
                    // which carries no integrity claim of its own).
                    undetected += 1;
                    assert_eq!(
                        loaded[0].1.entries(),
                        m.entries(),
                        "flip at {pos} silently corrupted data"
                    );
                }
            }
        }
        // Labels are 8 bytes; everything else must be covered.
        assert!(undetected <= 8, "{undetected} byte flips went undetected");
    }

    #[test]
    fn version_bump_rejected() {
        let bytes = dump_snapshots(&[(0, &PMap::new())]);
        let mut bumped = bytes.clone();
        bumped[11] = 2; // version u32 big-endian lives at offset 8..12
        assert_eq!(load_snapshots(&bumped), Err(StoreError::UnsupportedVersion(2)));
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = dump_snapshots(&[(0, &PMap::new())]);
        bytes[0] = b'X';
        assert_eq!(load_snapshots(&bytes), Err(StoreError::BadMagic));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = dump_snapshots(&[(0, &PMap::new())]);
        bytes.push(0);
        assert_eq!(load_snapshots(&bytes), Err(StoreError::TrailingBytes(1)));
    }

    #[test]
    fn missing_child_rejected() {
        // Dump two snapshots, then drop the node table down to just the
        // leaf-less prefix — parents referencing missing children must
        // be caught. Easiest construction: dump a one-node map and make
        // its root reference a absent hash by rewriting the root list.
        let m = map_of(&[(b"a", b"1")]);
        let mut bytes = dump_snapshots(&[(0, &m)]);
        let n = bytes.len();
        // The final 33 bytes are Option tag + root digest; flip a digest
        // byte so it points at an undefined node. The node table is
        // untouched, so this is MissingChild, not a hash mismatch.
        bytes[n - 1] ^= 0xff;
        assert_eq!(load_snapshots(&bytes), Err(StoreError::MissingChild));
    }
}
