//! Typed errors for checkpoint decode and integrity verification.
//!
//! The contract the robustness tests pin down: feeding a truncated,
//! bit-flipped, or version-bumped file through any loader in this crate
//! returns one of these variants — it never panics and never hands back
//! partially-built state.

use pvr_crypto::encoding::WireError;

/// Everything that can go wrong reading a store dump or checkpoint
/// container.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The file does not start with the expected magic bytes.
    BadMagic,
    /// The file's format version is newer (or older) than this build
    /// understands.
    UnsupportedVersion(u32),
    /// Input ended before a value was complete.
    Truncated,
    /// Bytes were left over after the final value.
    TrailingBytes(usize),
    /// A structural invariant failed (impossible discriminant, bogus
    /// length prefix, duplicate node, ...).
    Corrupt(&'static str),
    /// A node's recomputed SHA-256 content address does not match the
    /// address stored with it — the payload was bit-flipped.
    NodeHashMismatch {
        /// Zero-based index of the offending node in the dump.
        index: u32,
    },
    /// A node references a child hash that is not defined earlier in
    /// the dump (post-order violation or missing data).
    MissingChild,
    /// A section's SHA-256 trailer does not match its payload.
    SectionHashMismatch {
        /// The corrupted section's tag.
        tag: u8,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::BadMagic => write!(f, "bad magic bytes (not a PVR store file)"),
            StoreError::UnsupportedVersion(v) => write!(f, "unsupported format version {v}"),
            StoreError::Truncated => write!(f, "file truncated"),
            StoreError::TrailingBytes(n) => write!(f, "{n} trailing bytes after final value"),
            StoreError::Corrupt(what) => write!(f, "corrupt file: {what}"),
            StoreError::NodeHashMismatch { index } => {
                write!(f, "node {index}: content hash mismatch (bit flip?)")
            }
            StoreError::MissingChild => write!(f, "node references an undefined child hash"),
            StoreError::SectionHashMismatch { tag } => {
                write!(f, "section {tag}: SHA-256 trailer mismatch")
            }
        }
    }
}

impl std::error::Error for StoreError {}

impl From<WireError> for StoreError {
    fn from(e: WireError) -> StoreError {
        match e {
            WireError::Truncated => StoreError::Truncated,
            WireError::Invalid(what) => StoreError::Corrupt(what),
            WireError::TrailingBytes(n) => StoreError::TrailingBytes(n),
        }
    }
}
