//! Per-vertex commitment records for graph navigation (§3.7).
//!
//! "We can enable this by choosing I(x) to be
//! (c(x^p_1, …, x^p_a), c(x^s_1, …, x^s_b), c(x̄)), where the c(·) are
//! commitments and the x^p and x^s are bitstrings identifying
//! predecessor and successor vertices, respectively. x̄ is the route
//! itself (in the case of a variable) or the operator type and the
//! evidence (in the case of an operator). Thus, the three types of
//! information can be revealed independently, depending on the
//! authorization of the querying neighbor."

use pvr_bgp::Route;
use pvr_crypto::commit::{commit, verify as verify_commitment, Commitment, Opening};
use pvr_crypto::drbg::HmacDrbg;
use pvr_crypto::encoding::{decode_seq, encode_seq, Reader, Wire, WireError};
use pvr_mht::Label;
use pvr_rfg::OperatorKind;

/// Commitment domain-separation tags for the three record fields.
const TAG_PREDS: &[u8] = b"pvr.vertex.preds";
const TAG_SUCCS: &[u8] = b"pvr.vertex.succs";
const TAG_CONTENT: &[u8] = b"pvr.vertex.content";

/// The content field x̄ of a vertex.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum VertexContent {
    /// A variable's current value (a set of routes).
    Variable {
        /// The routes held by the variable.
        routes: Vec<Route>,
    },
    /// An operator's function.
    Operator {
        /// The operator type.
        kind: OperatorKind,
    },
}

impl Wire for VertexContent {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            VertexContent::Variable { routes } => {
                buf.push(0);
                encode_seq(routes, buf);
            }
            VertexContent::Operator { kind } => {
                buf.push(1);
                kind.encode(buf);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.take(1)?[0] {
            0 => Ok(VertexContent::Variable { routes: decode_seq(r)? }),
            1 => Ok(VertexContent::Operator { kind: OperatorKind::decode(r)? }),
            _ => Err(WireError::Invalid("vertex content tag")),
        }
    }
}

/// The public record I(x) stored in the MHT leaf for a vertex: three
/// independently-openable commitments.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct VertexRecord {
    /// Commitment to the predecessor label list.
    pub preds: Commitment,
    /// Commitment to the successor label list.
    pub succs: Commitment,
    /// Commitment to the content x̄.
    pub content: Commitment,
}

impl Wire for VertexRecord {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.preds.encode(buf);
        self.succs.encode(buf);
        self.content.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(VertexRecord {
            preds: Commitment::decode(r)?,
            succs: Commitment::decode(r)?,
            content: Commitment::decode(r)?,
        })
    }
}

/// The private openings the committing network retains for a vertex.
#[derive(Clone, Debug)]
pub struct VertexOpenings {
    /// Opens [`VertexRecord::preds`] to the encoded predecessor labels.
    pub preds: Opening,
    /// Opens [`VertexRecord::succs`] to the encoded successor labels.
    pub succs: Opening,
    /// Opens [`VertexRecord::content`] to the encoded [`VertexContent`].
    pub content: Opening,
}

/// Canonical encoding of a label list (the x^p / x^s bitstrings).
pub fn encode_labels(labels: &[Label]) -> Vec<u8> {
    let mut buf = Vec::new();
    encode_seq(labels, &mut buf);
    buf
}

/// Decodes a label list from an opened preds/succs value.
pub fn decode_labels(bytes: &[u8]) -> Result<Vec<Label>, WireError> {
    let mut r = Reader::new(bytes);
    let labels = decode_seq(&mut r)?;
    if r.remaining() > 0 {
        return Err(WireError::TrailingBytes(r.remaining()));
    }
    Ok(labels)
}

/// Builds the record + openings for a vertex.
pub fn make_record(
    preds: &[Label],
    succs: &[Label],
    content: &VertexContent,
    rng: &mut HmacDrbg,
) -> (VertexRecord, VertexOpenings) {
    let (c_preds, o_preds) = commit(TAG_PREDS, &encode_labels(preds), rng);
    let (c_succs, o_succs) = commit(TAG_SUCCS, &encode_labels(succs), rng);
    let (c_content, o_content) = commit(TAG_CONTENT, &content.to_wire(), rng);
    (
        VertexRecord { preds: c_preds, succs: c_succs, content: c_content },
        VertexOpenings { preds: o_preds, succs: o_succs, content: o_content },
    )
}

/// Verifies an opened predecessor list against a record.
pub fn verify_preds(record: &VertexRecord, opening: &Opening) -> Option<Vec<Label>> {
    if !verify_commitment(TAG_PREDS, &record.preds, opening) {
        return None;
    }
    decode_labels(&opening.value).ok()
}

/// Verifies an opened successor list against a record.
pub fn verify_succs(record: &VertexRecord, opening: &Opening) -> Option<Vec<Label>> {
    if !verify_commitment(TAG_SUCCS, &record.succs, opening) {
        return None;
    }
    decode_labels(&opening.value).ok()
}

/// Verifies opened content against a record.
pub fn verify_content(record: &VertexRecord, opening: &Opening) -> Option<VertexContent> {
    if !verify_commitment(TAG_CONTENT, &record.content, opening) {
        return None;
    }
    pvr_crypto::decode_exact(&opening.value).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pvr_bgp::{AsPath, Asn, Prefix};

    fn rng() -> HmacDrbg {
        HmacDrbg::new(b"record tests")
    }

    fn sample_route() -> Route {
        let mut r = Route::originate(Prefix::parse("10.0.0.0/8").unwrap());
        r.path = AsPath::from_slice(&[Asn(1), Asn(2)]);
        r
    }

    #[test]
    fn record_round_trip_all_fields() {
        let mut rng = rng();
        let preds = vec![Label::Var(1), Label::Var(2)];
        let succs = vec![Label::Var(9)];
        let content = VertexContent::Operator { kind: OperatorKind::MinPathLen };
        let (rec, open) = make_record(&preds, &succs, &content, &mut rng);
        assert_eq!(verify_preds(&rec, &open.preds), Some(preds));
        assert_eq!(verify_succs(&rec, &open.succs), Some(succs));
        assert_eq!(verify_content(&rec, &open.content), Some(content));
    }

    #[test]
    fn variable_content_round_trip() {
        let mut rng = rng();
        let content = VertexContent::Variable { routes: vec![sample_route()] };
        let (rec, open) = make_record(&[], &[Label::Rule(0)], &content, &mut rng);
        assert_eq!(verify_content(&rec, &open.content), Some(content));
        assert_eq!(verify_preds(&rec, &open.preds), Some(vec![]));
    }

    #[test]
    fn fields_open_independently() {
        // Structure can be revealed without content: the content opening
        // stays secret and the preds opening reveals nothing about it.
        let mut rng = rng();
        let content = VertexContent::Variable { routes: vec![sample_route()] };
        let (rec, open) = make_record(&[Label::Var(0)], &[], &content, &mut rng);
        // A verifier holding only the preds opening cannot open content
        // with it.
        assert!(verify_content(&rec, &open.preds).is_none());
        assert!(verify_preds(&rec, &open.content).is_none());
    }

    #[test]
    fn swapped_openings_rejected() {
        let mut rng = rng();
        let c1 = VertexContent::Operator { kind: OperatorKind::MinPathLen };
        let c2 = VertexContent::Operator { kind: OperatorKind::Existential };
        let (rec1, _) = make_record(&[], &[], &c1, &mut rng);
        let (_, open2) = make_record(&[], &[], &c2, &mut rng);
        assert!(verify_content(&rec1, &open2.content).is_none());
    }

    #[test]
    fn hiding_identical_structures_differ() {
        // Two vertices with the same edges commit differently (blinding),
        // so a neighbor cannot correlate them.
        let mut rng = rng();
        let content = VertexContent::Operator { kind: OperatorKind::Union };
        let (r1, _) = make_record(&[Label::Var(0)], &[], &content, &mut rng);
        let (r2, _) = make_record(&[Label::Var(0)], &[], &content, &mut rng);
        assert_ne!(r1.preds, r2.preds);
        assert_ne!(r1.content, r2.content);
    }

    #[test]
    fn record_wire_round_trip() {
        let mut rng = rng();
        let content = VertexContent::Operator { kind: OperatorKind::PickOne };
        let (rec, _) = make_record(&[Label::Var(3)], &[Label::Var(4)], &content, &mut rng);
        let back: VertexRecord = pvr_crypto::decode_exact(&rec.to_wire()).unwrap();
        assert_eq!(back, rec);
    }

    #[test]
    fn label_list_encoding_round_trip() {
        let labels = vec![Label::Var(1), Label::Rule(2), Label::Slot(3, 4)];
        assert_eq!(decode_labels(&encode_labels(&labels)).unwrap(), labels);
        assert!(decode_labels(b"garbage!").is_err());
    }
}
