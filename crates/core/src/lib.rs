//! # pvr-core — Private and Verifiable Routing
//!
//! The paper's primary contribution: a protocol by which a network's
//! neighbors can *collectively verify* that it keeps its routing
//! promises, *without learning anything the routing protocol does not
//! already reveal* (§2.3: Detection, Evidence, Accuracy,
//! Confidentiality).
//!
//! * [`bits`] — the §3.2 existential bit and §3.3 bit-vector encodings;
//! * [`record`] — the §3.7 per-vertex records `I(x)` for graph
//!   navigation;
//! * [`session`] — the committing network's round state: evaluation,
//!   bit commitment, the §3.6 MHT, signed roots, selective disclosure;
//! * [`verify`] — provider/receiver checks and gossip cross-checking;
//! * [`evidence`] — transferable evidence and the third-party auditor;
//! * [`adversary`] — Byzantine committer strategies mapped to the checks
//!   that catch them;
//! * [`protocol`] — the end-to-end round driver with per-participant
//!   transcripts;
//! * [`confidential`] — the counterfactual-indistinguishability auditor
//!   (experiment E7);
//! * [`batch`] — §3.8 burst batching with a small MHT (experiment E5);
//! * [`simproto`] — the same protocol run as real message traffic on
//!   `pvr-netsim`;
//! * [`harness`] — Figure-1 test/bench beds with genuine attestation
//!   chains.

pub mod ablation;
pub mod adversary;
pub mod batch;
pub mod bits;
pub mod confidential;
pub mod epochs;
pub mod evidence;
pub mod extended;
pub mod harness;
pub mod navigate;
pub mod protocol;
pub mod record;
pub mod session;
pub mod simproto;
pub mod verify;

pub use ablation::{compare_naive_vs_paper, AblationReport, NaiveCommitter, NaiveDisclosure};
pub use adversary::{Adversary, Misbehavior};
pub use bits::{check_monotone, claimed_min, existential_bit, min_bit_vector};
pub use epochs::{EpochTracker, Freshness, PvrSession};
pub use evidence::{Auditor, Evidence, Suspicion, Verdict};
pub use extended::{
    cross_check_exports, verify_as_receiver_with_epsilon, verify_promise4, UnequalExportsEvidence,
};
pub use harness::Figure1Bed;
pub use navigate::{NavError, VisibleGraph, VisibleVertex};
pub use protocol::{run_min_round, RoundReport, Transcript};
pub use record::{VertexContent, VertexOpenings, VertexRecord};
pub use session::{BitReveal, Committer, Disclosure, GraphReveal, PvrParams, RoundContext};
pub use verify::{
    cross_check_roots, verify_as_provider, verify_as_provider_existential, verify_as_receiver,
    verify_as_receiver_existential, Outcome,
};
