//! Test/bench harness: builds the paper's Figure 1 cast directly
//! (identities, attestation chains, graph) without running a network
//! simulation — the inputs are exactly what BGP + S-BGP would deliver
//! to A, so protocol-level code can be exercised and benchmarked in
//! isolation. The full in-network version lives in [`crate::simproto`].

use crate::session::{Committer, PvrParams, RoundContext};
use pvr_bgp::sbgp::SignedRoute;
use pvr_bgp::{Asn, Prefix, Route};
use pvr_crypto::drbg::HmacDrbg;
use pvr_crypto::keys::{Identity, KeyStore};
use pvr_rfg::{figure1_graph, figure2_graph, RouteFlowGraph, VarId};
use std::collections::BTreeMap;

/// RSA modulus size used by harness identities. 512 keeps unit tests
/// fast; benches regenerate the paper's numbers at 1024.
pub const HARNESS_KEY_BITS: usize = 512;

/// The Figure 1 (and Figure 2) cast with ready-made attested inputs.
pub struct Figure1Bed {
    /// Network A (the committer).
    pub a: Asn,
    /// Network B (the promise receiver).
    pub b: Asn,
    /// The providers N_1..N_k.
    pub ns: Vec<Asn>,
    /// The contested prefix.
    pub prefix: Prefix,
    /// Public keys of every participant (incl. chain ASes).
    pub keys: KeyStore,
    /// Signing identities of every participant.
    pub identities: BTreeMap<Asn, Identity>,
    /// What each N_i advertised to A, with full attestation chains.
    pub inputs: BTreeMap<Asn, Vec<SignedRoute>>,
    /// The route-flow graph (Figure 1 min graph by default).
    pub graph: RouteFlowGraph,
    /// Input variable ids, in N order.
    pub input_vars: Vec<VarId>,
    /// The output variable id.
    pub output_var: VarId,
    /// Round identifier.
    pub round: RoundContext,
    /// Protocol parameters.
    pub params: PvrParams,
    /// The seed everything was derived from.
    pub seed: u64,
}

impl Figure1Bed {
    /// Builds the bed. `path_lens[i]` is the AS-path length of the route
    /// `N_{i+1}` advertises to A (1 = N_i originates the prefix itself;
    /// L > 1 adds a chain of L−1 ASes behind it). All lengths must be
    /// ≥ 1 and ≤ `PvrParams::default().max_path_len`.
    pub fn build(path_lens: &[usize], seed: u64) -> Figure1Bed {
        Self::build_with_graph(path_lens, seed, GraphShape::Figure1)
    }

    /// Builds the bed with the Figure 2 graph ("route via N2..Nk unless
    /// N1 provides a shorter route") instead of the plain min graph.
    pub fn build_figure2(path_lens: &[usize], seed: u64) -> Figure1Bed {
        assert!(path_lens.len() >= 2, "figure 2 needs at least two providers");
        Self::build_with_graph(path_lens, seed, GraphShape::Figure2)
    }

    fn build_with_graph(path_lens: &[usize], seed: u64, shape: GraphShape) -> Figure1Bed {
        assert!(!path_lens.is_empty());
        let params = PvrParams::default();
        assert!(
            path_lens.iter().all(|&l| l >= 1 && l <= params.max_path_len),
            "path lengths must be in 1..=max_path_len"
        );
        let mut rng = HmacDrbg::from_u64_labeled(seed, "figure1-bed");
        let a = Asn(100);
        let b = Asn(200);
        let ns: Vec<Asn> = (0..path_lens.len()).map(|i| Asn(1 + i as u32)).collect();
        let prefix = Prefix::parse("10.0.0.0/8").unwrap();

        let mut identities = BTreeMap::new();
        let mut keys = KeyStore::new();
        let identity_of = |asn: Asn,
                           rng: &mut HmacDrbg,
                           identities: &mut BTreeMap<Asn, Identity>,
                           keys: &mut KeyStore| {
            let id = Identity::generate(asn.principal(), HARNESS_KEY_BITS, rng);
            keys.register_identity(&id);
            identities.insert(asn, id.clone());
            id
        };
        for &asn in ns.iter().chain([&a, &b]) {
            identity_of(asn, &mut rng, &mut identities, &mut keys);
        }

        // Build each N_i's advertised route with its attestation chain.
        let mut inputs: BTreeMap<Asn, Vec<SignedRoute>> = BTreeMap::new();
        for (i, (&n, &len)) in ns.iter().zip(path_lens).enumerate() {
            // Chain ASes behind N_i, bottom (originator) first.
            let chain: Vec<Asn> =
                (0..len - 1).rev().map(|j| Asn(1000 + 100 * i as u32 + j as u32)).collect();
            for &c in &chain {
                identity_of(c, &mut rng, &mut identities, &mut keys);
            }
            // Hop sequence from originator up to A.
            let hops: Vec<Asn> = chain.into_iter().chain([n]).collect();
            let mut sr: Option<SignedRoute> = None;
            for (j, &hop) in hops.iter().enumerate() {
                let next = hops.get(j + 1).copied().unwrap_or(a);
                let identity = &identities[&hop];
                sr = Some(match sr {
                    None => {
                        let mut r = Route::originate(prefix);
                        r.path = r.path.prepend(hop);
                        SignedRoute::originate(identity, r, next)
                    }
                    Some(prev) => {
                        let r = prev.route.clone().propagated_by(hop);
                        SignedRoute::extend(&prev, identity, r, next)
                    }
                });
            }
            let sr = sr.expect("at least one hop");
            debug_assert_eq!(sr.route.path_len(), len);
            inputs.insert(n, vec![sr]);
        }

        let (graph, input_vars, output_var) = match shape {
            GraphShape::Figure1 => {
                let (g, iv, ov, _) = figure1_graph(&ns, b);
                (g, iv, ov)
            }
            GraphShape::Figure2 => {
                let (g, iv, ov, _, _) = figure2_graph(&ns, b);
                (g, iv, ov)
            }
        };

        Figure1Bed {
            a,
            b,
            ns,
            prefix,
            keys,
            identities,
            inputs,
            graph,
            input_vars,
            output_var,
            round: RoundContext { prefix, epoch: 1 },
            params,
            seed,
        }
    }

    /// A's identity.
    pub fn a_identity(&self) -> &Identity {
        &self.identities[&self.a]
    }

    /// Builds an honest committer for this round.
    pub fn honest_committer(&self) -> Committer {
        let mut rng = HmacDrbg::from_u64_labeled(self.seed, "committer");
        Committer::new(
            self.a_identity(),
            self.round.clone(),
            self.params,
            self.graph.clone(),
            self.inputs.clone(),
            &self.ns,
            &mut rng,
        )
    }

    /// The route `n` advertised to A (the harness builds exactly one per
    /// provider).
    pub fn input_of(&self, n: Asn) -> &SignedRoute {
        &self.inputs[&n][0]
    }

    /// The true shortest input length (ground truth for assertions).
    pub fn true_min(&self) -> usize {
        self.inputs.values().flatten().map(|sr| sr.route.path_len()).min().expect("nonempty inputs")
    }
}

enum GraphShape {
    Figure1,
    Figure2,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bed_builds_valid_chains() {
        let bed = Figure1Bed::build(&[1, 3, 2], 7);
        assert_eq!(bed.ns.len(), 3);
        for (i, &n) in bed.ns.iter().enumerate() {
            let sr = bed.input_of(n);
            assert_eq!(sr.route.path_len(), [1, 3, 2][i]);
            assert_eq!(sr.route.path.first_as(), Some(n));
            // The chain verifies as delivered to A.
            assert!(sr.verify(bed.a, &bed.keys).is_ok(), "chain {i}");
        }
        assert_eq!(bed.true_min(), 1);
    }

    #[test]
    fn bed_is_deterministic() {
        let b1 = Figure1Bed::build(&[2, 2], 9);
        let b2 = Figure1Bed::build(&[2, 2], 9);
        assert_eq!(b1.input_of(Asn(1)), b2.input_of(Asn(1)));
    }

    #[test]
    fn figure2_bed_uses_shorter_of_graph() {
        let bed = Figure1Bed::build_figure2(&[2, 3], 11);
        // The figure-2 graph has an internal variable; figure-1 does not.
        assert!(bed.graph.vars().count() > bed.ns.len() + 1);
    }

    #[test]
    #[should_panic(expected = "path lengths")]
    fn zero_length_rejected() {
        Figure1Bed::build(&[0], 1);
    }
}
