//! Neighbor-side graph navigation (§3.7).
//!
//! "We must enable a network's route-flow graph to be navigated by that
//! network's neighbors without learning about the existence of rules or
//! variables they are not authorized to see." A neighbor receives
//! [`GraphReveal`]s — MHT-proven vertex records with a subset of the
//! three openings — reconstructs the *visible* part of the graph, and
//! statically checks that the structure implements the promise (§2.2:
//! "based purely on static inspection of the route-flow graph, tracing
//! connections from input variables to output variables").

use crate::record::{verify_content, verify_preds, verify_succs, VertexContent, VertexRecord};
use crate::session::GraphReveal;
use pvr_crypto::sha256::Digest;
use pvr_mht::Label;
use pvr_rfg::OperatorKind;
use std::collections::BTreeMap;

/// A vertex as visible to one neighbor: only authorized fields are
/// populated.
#[derive(Clone, Debug)]
pub struct VisibleVertex {
    /// The committed record (always proven against the root).
    pub record: VertexRecord,
    /// Opened predecessor labels, if structure was revealed.
    pub preds: Option<Vec<Label>>,
    /// Opened successor labels, if structure was revealed.
    pub succs: Option<Vec<Label>>,
    /// Opened content, if revealed.
    pub content: Option<VertexContent>,
}

/// Errors during reconstruction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NavError {
    /// A reveal's MHT proof does not bind to the signed root.
    BadProof(Label),
    /// A leaf payload failed to parse as a vertex record.
    BadRecord(Label),
    /// An opening did not match its commitment.
    BadOpening(Label),
    /// The same vertex was revealed twice inconsistently.
    Duplicate(Label),
}

/// The graph as visible to one neighbor.
#[derive(Clone, Debug, Default)]
pub struct VisibleGraph {
    vertices: BTreeMap<Label, VisibleVertex>,
}

impl VisibleGraph {
    /// Validates reveals against the committed `root` and assembles the
    /// visible graph. Every proof must verify; every present opening
    /// must open its commitment.
    pub fn reconstruct(reveals: &[GraphReveal], root: &Digest) -> Result<VisibleGraph, NavError> {
        let mut vertices = BTreeMap::new();
        for r in reveals {
            let label = r.proof.label.clone();
            if !r.proof.verify(root) {
                return Err(NavError::BadProof(label));
            }
            let record: VertexRecord = pvr_crypto::decode_exact(&r.proof.payload)
                .map_err(|_| NavError::BadRecord(label.clone()))?;
            let preds = match &r.preds {
                None => None,
                Some(o) => {
                    Some(verify_preds(&record, o).ok_or(NavError::BadOpening(label.clone()))?)
                }
            };
            let succs = match &r.succs {
                None => None,
                Some(o) => {
                    Some(verify_succs(&record, o).ok_or(NavError::BadOpening(label.clone()))?)
                }
            };
            let content = match &r.content {
                None => None,
                Some(o) => {
                    Some(verify_content(&record, o).ok_or(NavError::BadOpening(label.clone()))?)
                }
            };
            let v = VisibleVertex { record, preds, succs, content };
            if vertices.insert(label.clone(), v).is_some() {
                return Err(NavError::Duplicate(label));
            }
        }
        Ok(VisibleGraph { vertices })
    }

    /// The vertex at `label`, if visible.
    pub fn vertex(&self, label: &Label) -> Option<&VisibleVertex> {
        self.vertices.get(label)
    }

    /// Number of visible vertices.
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// True when nothing is visible.
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }

    /// The opened operator kind at `label`, if visible.
    pub fn operator_kind(&self, label: &Label) -> Option<&OperatorKind> {
        match self.vertices.get(label)?.content.as_ref()? {
            VertexContent::Operator { kind } => Some(kind),
            VertexContent::Variable { .. } => None,
        }
    }

    /// §2.2 static check over *committed* data: is the vertex computing
    /// `output` an operator of kind `expected`, reading exactly
    /// `expected_inputs` (order-insensitive)? This is what B runs to
    /// convince itself "that the minimum was computed over routes
    /// provided specifically by N_1, …, N_k, even if it is not
    /// authorized to see what the routes were" (§3.7).
    pub fn check_single_operator_promise(
        &self,
        output: &Label,
        expected: &OperatorKind,
        expected_inputs: &[Label],
    ) -> bool {
        // The output variable's preds must name exactly one operator…
        let Some(out_v) = self.vertices.get(output) else {
            return false;
        };
        let Some(preds) = &out_v.preds else {
            return false;
        };
        let [op_label] = preds.as_slice() else {
            return false;
        };
        // …whose content is the expected kind…
        let Some(op_v) = self.vertices.get(op_label) else {
            return false;
        };
        if self.operator_kind(op_label) != Some(expected) {
            return false;
        }
        // …and whose inputs are exactly the expected input variables.
        let Some(op_preds) = &op_v.preds else {
            return false;
        };
        let mut got: Vec<&Label> = op_preds.iter().collect();
        let mut want: Vec<&Label> = expected_inputs.iter().collect();
        got.sort();
        want.sort();
        if got != want {
            return false;
        }
        // Each input must point back at the operator (consistency), when
        // its structure is visible.
        for input in expected_inputs {
            if let Some(iv) = self.vertices.get(input) {
                if let Some(succs) = &iv.succs {
                    if !succs.contains(op_label) {
                        return false;
                    }
                }
                if let Some(preds) = &iv.preds {
                    if !preds.is_empty() {
                        return false; // inputs are not computed
                    }
                }
            }
        }
        true
    }

    /// Static check for the Figure 2 shape: `output` is computed by
    /// `ShorterOf(fallback_var, v)` where `v` is computed by
    /// `MinPathLen` over `preferred_inputs`.
    pub fn check_figure2_promise(
        &self,
        output: &Label,
        fallback_input: &Label,
        preferred_inputs: &[Label],
    ) -> bool {
        let Some(out_v) = self.vertices.get(output) else {
            return false;
        };
        let Some(preds) = &out_v.preds else {
            return false;
        };
        let [choose_label] = preds.as_slice() else {
            return false;
        };
        if self.operator_kind(choose_label) != Some(&OperatorKind::ShorterOf) {
            return false;
        }
        let Some(choose) = self.vertices.get(choose_label) else {
            return false;
        };
        let Some(choose_preds) = &choose.preds else {
            return false;
        };
        // ShorterOf inputs are ordered: [fallback, preferred-min var].
        let [fb, min_var] = choose_preds.as_slice() else {
            return false;
        };
        if fb != fallback_input {
            return false;
        }
        // The preferred side is the min over the preferred inputs.
        self.check_single_operator_promise(min_var, &OperatorKind::MinPathLen, preferred_inputs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::Figure1Bed;
    use pvr_bgp::Asn;
    use pvr_rfg::AccessPolicy;

    fn everyone(bed: &Figure1Bed) -> Vec<Asn> {
        bed.ns.iter().copied().chain([bed.b]).collect()
    }

    fn input_labels(bed: &Figure1Bed) -> Vec<Label> {
        bed.input_vars.iter().map(|v| Label::Var(v.0)).collect()
    }

    #[test]
    fn b_verifies_min_structure_without_route_values() {
        let bed = Figure1Bed::build(&[2, 3, 4], 101);
        let c = bed.honest_committer();
        let alpha = AccessPolicy::paper_example(&bed.graph, &everyone(&bed));
        let reveals = c.graph_disclosure_for(bed.b, &alpha);
        let g = VisibleGraph::reconstruct(&reveals, &c.signed_root().root).unwrap();
        let out = Label::Var(bed.output_var.0);
        assert!(g.check_single_operator_promise(
            &out,
            &OperatorKind::MinPathLen,
            &input_labels(&bed),
        ));
        // B must NOT see the input route values (only its own output).
        for l in input_labels(&bed) {
            assert!(g.vertex(&l).unwrap().content.is_none(), "{l:?} leaked to B");
        }
    }

    #[test]
    fn wrong_operator_expectation_fails() {
        let bed = Figure1Bed::build(&[2, 3], 102);
        let c = bed.honest_committer();
        let alpha = AccessPolicy::paper_example(&bed.graph, &everyone(&bed));
        let reveals = c.graph_disclosure_for(bed.b, &alpha);
        let g = VisibleGraph::reconstruct(&reveals, &c.signed_root().root).unwrap();
        let out = Label::Var(bed.output_var.0);
        assert!(!g.check_single_operator_promise(
            &out,
            &OperatorKind::Existential,
            &input_labels(&bed),
        ));
    }

    #[test]
    fn wrong_input_set_fails() {
        // If A had wired the min over a subset only, the check against
        // the full expected set must fail.
        let bed = Figure1Bed::build(&[2, 3, 4], 103);
        let c = bed.honest_committer();
        let alpha = AccessPolicy::paper_example(&bed.graph, &everyone(&bed));
        let reveals = c.graph_disclosure_for(bed.b, &alpha);
        let g = VisibleGraph::reconstruct(&reveals, &c.signed_root().root).unwrap();
        let out = Label::Var(bed.output_var.0);
        let missing_one = &input_labels(&bed)[..2];
        assert!(!g.check_single_operator_promise(&out, &OperatorKind::MinPathLen, missing_one));
    }

    #[test]
    fn figure2_structure_verifies() {
        let bed = Figure1Bed::build_figure2(&[2, 3, 4], 104);
        let c = bed.honest_committer();
        let alpha = AccessPolicy::paper_example(&bed.graph, &everyone(&bed));
        let reveals = c.graph_disclosure_for(bed.b, &alpha);
        let g = VisibleGraph::reconstruct(&reveals, &c.signed_root().root).unwrap();
        let out = Label::Var(bed.output_var.0);
        let inputs = input_labels(&bed);
        assert!(g.check_figure2_promise(&out, &inputs[0], &inputs[1..]));
        // Swapping fallback and a preferred input must fail.
        assert!(!g.check_figure2_promise(&out, &inputs[1], &inputs[1..]));
        // And the plain min check must fail on the figure-2 graph.
        assert!(!g.check_single_operator_promise(&out, &OperatorKind::MinPathLen, &inputs));
    }

    #[test]
    fn tampered_proof_rejected() {
        let bed = Figure1Bed::build(&[2, 3], 105);
        let c = bed.honest_committer();
        let alpha = AccessPolicy::paper_example(&bed.graph, &everyone(&bed));
        let mut reveals = c.graph_disclosure_for(bed.b, &alpha);
        reveals[0].proof.payload[0] ^= 1;
        assert!(matches!(
            VisibleGraph::reconstruct(&reveals, &c.signed_root().root),
            Err(NavError::BadProof(_) | NavError::BadRecord(_))
        ));
    }

    #[test]
    fn swapped_opening_rejected() {
        let bed = Figure1Bed::build(&[2, 3], 106);
        let c = bed.honest_committer();
        let alpha = AccessPolicy::paper_example(&bed.graph, &everyone(&bed));
        let mut reveals = c.graph_disclosure_for(bed.b, &alpha);
        // Swap the preds openings of two vertices.
        let stolen = reveals[1].preds.clone();
        reveals[0].preds = stolen;
        assert!(matches!(
            VisibleGraph::reconstruct(&reveals, &c.signed_root().root),
            Err(NavError::BadOpening(_))
        ));
    }

    #[test]
    fn partial_visibility_is_partial() {
        // A provider sees structure but its check with full content
        // expectations fails gracefully for vertices it cannot open.
        let bed = Figure1Bed::build(&[2, 3], 107);
        let c = bed.honest_committer();
        let alpha = AccessPolicy::paper_example(&bed.graph, &everyone(&bed));
        let reveals = c.graph_disclosure_for(bed.ns[0], &alpha);
        let g = VisibleGraph::reconstruct(&reveals, &c.signed_root().root).unwrap();
        // N1 can see its own input's value…
        let own = Label::Var(bed.input_vars[0].0);
        assert!(g.vertex(&own).unwrap().content.is_some());
        // …but not N2's.
        let other = Label::Var(bed.input_vars[1].0);
        assert!(g.vertex(&other).unwrap().content.is_none());
        // And N1 can still verify the min structure.
        let out = Label::Var(bed.output_var.0);
        assert!(g.check_single_operator_promise(&out, &OperatorKind::MinPathLen, &[own, other],));
    }
}
