//! Batched signing of update bursts (§3.8, experiment E5).
//!
//! "A RSA-1024 signature takes about two milliseconds on current
//! hardware. This overhead can be burdensome during BGP message bursts,
//! but it seems feasible to sign messages in batches, perhaps using a
//! small MHT to reveal batched routes individually."
//!
//! The sender builds a [`SeqTree`] over the burst, signs its root once,
//! and ships each receiver its item plus a log-size path. Receivers
//! verify one signature per burst instead of one per update.

use pvr_crypto::keys::{Identity, KeyStore};
use pvr_crypto::CryptoError;
use pvr_mht::{SeqProof, SeqTree, SignedRoot};

/// Context string for batch roots (distinguishes them from PVR round
/// roots in the signature domain).
fn batch_context(batch_id: u64) -> Vec<u8> {
    let mut ctx = b"pvr.batch".to_vec();
    ctx.extend_from_slice(&batch_id.to_be_bytes());
    ctx
}

/// A burst of updates signed with one signature.
pub struct SignedBatch {
    /// The signed tree root.
    pub signed_root: SignedRoot,
    tree: SeqTree,
}

impl SignedBatch {
    /// Signs `items` (serialized updates) as batch number `batch_id`.
    pub fn sign(identity: &Identity, batch_id: u64, items: &[Vec<u8>]) -> SignedBatch {
        let tree = SeqTree::build(items);
        let signed_root = SignedRoot::create(identity, batch_context(batch_id), 0, tree.root());
        SignedBatch { signed_root, tree }
    }

    /// Number of items in the batch.
    pub fn len(&self) -> usize {
        self.tree.len()
    }

    /// True for an empty batch.
    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }

    /// Extracts the deliverable for item `index`: proof + shared root.
    pub fn item(&self, index: usize) -> Option<BatchItem> {
        Some(BatchItem { signed_root: self.signed_root.clone(), proof: self.tree.prove(index)? })
    }
}

/// One update as delivered to a receiver: the item's Merkle proof plus
/// the (shared) signed root.
#[derive(Clone, Debug)]
pub struct BatchItem {
    /// The signed batch root.
    pub signed_root: SignedRoot,
    /// Inclusion proof for this item.
    pub proof: SeqProof,
}

impl BatchItem {
    /// Verifies signature and inclusion; returns the item bytes.
    pub fn verify(&self, keys: &KeyStore) -> Result<&[u8], CryptoError> {
        self.signed_root.verify(keys)?;
        if !self.proof.verify(&self.signed_root.root) {
            return Err(CryptoError::SignatureInvalid);
        }
        Ok(&self.proof.item)
    }

    /// Wire size of the per-item delivery (proof + root), for E5's
    /// bytes-per-update series.
    pub fn byte_size(&self) -> usize {
        use pvr_crypto::Wire;
        self.signed_root.to_wire().len() + self.proof.byte_size()
    }
}

/// Cost accounting for E5: cryptographic operation counts for a burst of
/// `n` updates, batched vs. per-update signing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BatchCost {
    /// Signatures computed by the sender.
    pub signatures: usize,
    /// Hash compressions for tree construction (≈ 2n for a SeqTree).
    pub tree_hashes: usize,
    /// Signature verifications per receiver (assuming it receives all n).
    pub verifications: usize,
}

/// Cost of signing a burst of `n` updates individually.
pub fn per_update_cost(n: usize) -> BatchCost {
    BatchCost { signatures: n, tree_hashes: 0, verifications: n }
}

/// Cost of signing a burst of `n` updates as one batch.
pub fn batched_cost(n: usize) -> BatchCost {
    BatchCost { signatures: 1.min(n), tree_hashes: 2 * n, verifications: 1.min(n) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pvr_crypto::drbg::HmacDrbg;

    fn setup() -> (Identity, KeyStore) {
        let mut rng = HmacDrbg::new(b"batch tests");
        let id = Identity::generate(100, 512, &mut rng);
        let mut keys = KeyStore::new();
        keys.register_identity(&id);
        (id, keys)
    }

    fn updates(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| format!("update {i}").into_bytes()).collect()
    }

    #[test]
    fn batch_items_verify() {
        let (id, keys) = setup();
        let batch = SignedBatch::sign(&id, 7, &updates(10));
        assert_eq!(batch.len(), 10);
        for i in 0..10 {
            let item = batch.item(i).unwrap();
            assert_eq!(item.verify(&keys).unwrap(), format!("update {i}").as_bytes());
        }
        assert!(batch.item(10).is_none());
    }

    #[test]
    fn tampered_item_rejected() {
        let (id, keys) = setup();
        let batch = SignedBatch::sign(&id, 7, &updates(4));
        let mut item = batch.item(2).unwrap();
        item.proof.item = b"forged".to_vec();
        assert!(item.verify(&keys).is_err());
    }

    #[test]
    fn cross_batch_replay_rejected() {
        // An item from batch 1 cannot be presented under batch 2's root.
        let (id, keys) = setup();
        let b1 = SignedBatch::sign(&id, 1, &updates(4));
        let b2 = SignedBatch::sign(&id, 2, &updates(5));
        let mut item = b1.item(0).unwrap();
        item.signed_root = b2.signed_root.clone();
        assert!(item.verify(&keys).is_err());
    }

    #[test]
    fn unknown_signer_rejected() {
        let (id, _) = setup();
        let empty_keys = KeyStore::new();
        let batch = SignedBatch::sign(&id, 1, &updates(2));
        assert!(batch.item(0).unwrap().verify(&empty_keys).is_err());
    }

    #[test]
    fn singleton_and_empty_batches() {
        let (id, keys) = setup();
        let batch = SignedBatch::sign(&id, 1, &updates(1));
        assert!(batch.item(0).unwrap().verify(&keys).is_ok());
        let empty = SignedBatch::sign(&id, 2, &[]);
        assert!(empty.is_empty());
        assert!(empty.item(0).is_none());
    }

    #[test]
    fn cost_model_amortizes() {
        let per = per_update_cost(256);
        let batched = batched_cost(256);
        assert_eq!(per.signatures, 256);
        assert_eq!(batched.signatures, 1);
        assert_eq!(batched.verifications, 1);
        assert!(batched.tree_hashes > 0);
        // Degenerate cases.
        assert_eq!(batched_cost(0).signatures, 0);
        assert_eq!(per_update_cost(1), per_update_cost(1));
    }

    #[test]
    fn item_size_grows_logarithmically() {
        let (id, _) = setup();
        let small = SignedBatch::sign(&id, 1, &updates(4));
        let large = SignedBatch::sign(&id, 2, &updates(1024));
        let s = small.item(0).unwrap().byte_size();
        let l = large.item(0).unwrap().byte_size();
        // 1024 items vs 4: proof grows by ~8 sibling hashes, far less
        // than linear.
        assert!(l < s + 9 * 40, "l={l} s={s}");
    }
}
