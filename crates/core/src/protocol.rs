//! End-to-end execution of one PVR round (the "pure" driver).
//!
//! Runs the four phases of §3 directly — commit, gossip, disclose,
//! verify — against either an honest committer or a Byzantine
//! [`Adversary`], records what every participant received (the raw
//! material for the §2.3 Confidentiality audit), collects outcomes and
//! evidence, and has the third-party [`Auditor`] judge every accusation.
//!
//! The network-simulated version (messages, latency, loss, gossip as
//! actual traffic) lives in [`crate::simproto`]; this driver is the
//! reference semantics and the benchmark target.

use crate::adversary::{Adversary, Misbehavior};
use crate::evidence::{Auditor, Verdict};
use crate::harness::Figure1Bed;
use crate::session::Disclosure;
use crate::verify::{cross_check_roots, verify_as_provider, verify_as_receiver, Outcome};
use pvr_bgp::Asn;
use pvr_crypto::drbg::HmacDrbg;
use pvr_crypto::Wire;
use pvr_mht::SignedRoot;
use std::collections::BTreeMap;

/// What one participant received during a round, as raw bytes — the
/// participant's complete *view* of the protocol, used verbatim by the
/// confidentiality auditor.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Transcript {
    /// (channel label, serialized bytes) in arrival order.
    pub received: Vec<(String, Vec<u8>)>,
}

impl Transcript {
    fn push(&mut self, label: &str, bytes: Vec<u8>) {
        self.received.push((label.to_string(), bytes));
    }

    /// Total bytes received (overhead accounting).
    pub fn total_bytes(&self) -> usize {
        self.received.iter().map(|(_, b)| b.len()).sum()
    }
}

/// The result of one round: outcomes, verdicts, transcripts.
#[derive(Debug)]
pub struct RoundReport {
    /// Each verifier's outcome (providers and the receiver).
    pub outcomes: BTreeMap<Asn, Outcome>,
    /// Gossip-level evidence (equivocation), if any.
    pub gossip_evidence: Option<crate::evidence::Evidence>,
    /// The auditor's verdict on every piece of evidence produced,
    /// with the accusing network.
    pub verdicts: Vec<(Asn, Verdict)>,
    /// Per-participant views.
    pub transcripts: BTreeMap<Asn, Transcript>,
}

impl RoundReport {
    /// Detection property: did at least one correct neighbor notice?
    pub fn detected(&self) -> bool {
        self.gossip_evidence.is_some() || self.outcomes.values().any(|o| o.detected())
    }

    /// Evidence property: did some neighbor obtain evidence the auditor
    /// upholds?
    pub fn convicted(&self) -> bool {
        self.verdicts.iter().any(|(_, v)| *v == Verdict::Guilty)
    }

    /// Accuracy property (honest runs): nobody detected anything and no
    /// verdict was guilty.
    pub fn clean(&self) -> bool {
        !self.detected() && !self.convicted()
    }
}

/// Runs one round of the §3.3 minimum-operator protocol on a
/// [`Figure1Bed`], honestly or with the given misbehavior.
pub fn run_min_round(bed: &Figure1Bed, behavior: Option<Misbehavior>) -> RoundReport {
    let mut transcripts: BTreeMap<Asn, Transcript> = BTreeMap::new();
    let mut outcomes = BTreeMap::new();

    // Phase 1+3 (commit + disclose): build per-neighbor artifacts.
    let (roots, provider_disclosures, receiver_disclosure) = match behavior {
        None => {
            let c = bed.honest_committer();
            let roots: BTreeMap<Asn, SignedRoot> = bed
                .ns
                .iter()
                .copied()
                .chain([bed.b])
                .map(|n| (n, c.signed_root().clone()))
                .collect();
            let pd: BTreeMap<Asn, Disclosure> =
                bed.ns.iter().map(|&n| (n, c.disclosure_for_provider(n))).collect();
            (roots, pd, c.disclosure_for_receiver(bed.b))
        }
        Some(behavior) => {
            let mut rng = HmacDrbg::from_u64_labeled(bed.seed, "adversary");
            let adv = Adversary::new(
                bed.a_identity(),
                bed.round.clone(),
                bed.params,
                bed.graph.clone(),
                bed.inputs.clone(),
                &bed.ns,
                bed.b,
                behavior,
                &mut rng,
            );
            let roots: BTreeMap<Asn, SignedRoot> = bed
                .ns
                .iter()
                .copied()
                .chain([bed.b])
                .map(|n| (n, adv.root_for(n).clone()))
                .collect();
            let pd: BTreeMap<Asn, Disclosure> =
                bed.ns.iter().map(|&n| (n, adv.disclosure_for_provider(n))).collect();
            (roots, pd, adv.disclosure_for_receiver())
        }
    };

    // Record views.
    for (&n, root) in &roots {
        transcripts.entry(n).or_default().push("root", root.to_wire());
    }
    for (&n, d) in &provider_disclosures {
        transcripts.entry(n).or_default().push("disclosure", d.to_wire());
    }
    transcripts.entry(bed.b).or_default().push("disclosure", receiver_disclosure.to_wire());

    // Phase 2 (gossip): all neighbors compare the signed roots they saw.
    // Every neighbor's root reaches every other neighbor, so each
    // transcript grows by the full set (§3.6: "The neighbors can then
    // gossip about the hash value").
    let gossip_set: Vec<SignedRoot> = roots.values().cloned().collect();
    for &n in roots.keys() {
        for root in &gossip_set {
            transcripts.entry(n).or_default().push("gossip", root.to_wire());
        }
    }
    let gossip_evidence = cross_check_roots(&gossip_set, &bed.keys);

    // Phase 4 (verify).
    for &n in &bed.ns {
        let o = verify_as_provider(
            bed.a,
            &bed.round,
            &bed.params,
            &bed.inputs[&n],
            &provider_disclosures[&n],
            &bed.keys,
        );
        outcomes.insert(n, o);
    }
    let ob =
        verify_as_receiver(bed.b, bed.a, &bed.round, &bed.params, &receiver_disclosure, &bed.keys);
    outcomes.insert(bed.b, ob);

    // Third-party judgment of all evidence.
    let auditor = Auditor::new(&bed.keys, bed.params);
    let mut verdicts = Vec::new();
    if let Some(ev) = &gossip_evidence {
        verdicts.push((bed.b, auditor.judge(bed.a, &bed.round, ev)));
    }
    for (&accuser, outcome) in &outcomes {
        if let Some(ev) = outcome.evidence() {
            verdicts.push((accuser, auditor.judge(bed.a, &bed.round, ev)));
        }
    }

    RoundReport { outcomes, gossip_evidence, verdicts, transcripts }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evidence::Suspicion;

    #[test]
    fn honest_round_is_clean() {
        let bed = Figure1Bed::build(&[2, 3, 4], 61);
        let report = run_min_round(&bed, None);
        assert!(report.clean(), "{report:?}");
        assert_eq!(report.outcomes.len(), 4);
    }

    #[test]
    fn export_longer_convicted_by_b() {
        let bed = Figure1Bed::build(&[2, 5], 62);
        let report = run_min_round(&bed, Some(Misbehavior::ExportLonger));
        assert!(report.detected());
        assert!(report.convicted());
        let b_outcome = &report.outcomes[&bed.b];
        assert_eq!(b_outcome.evidence().unwrap().kind(), "export-too-long");
    }

    #[test]
    fn suppress_input_convicted_by_victim() {
        let bed = Figure1Bed::build(&[2, 4], 63);
        let victim = bed.ns[0];
        let report = run_min_round(&bed, Some(Misbehavior::SuppressInput { victim }));
        assert!(report.detected());
        assert!(report.convicted());
        assert_eq!(report.outcomes[&victim].evidence().unwrap().kind(), "ignored-input");
        // The other provider is satisfied (bit at length 4 is still 1).
        assert!(report.outcomes[&bed.ns[1]].is_accept());
    }

    #[test]
    fn deny_all_convicted_by_every_provider() {
        let bed = Figure1Bed::build(&[2, 3], 64);
        let report = run_min_round(&bed, Some(Misbehavior::DenyAll));
        for &n in &bed.ns {
            assert_eq!(
                report.outcomes[&n].evidence().map(|e| e.kind()),
                Some("ignored-input"),
                "{n}"
            );
        }
        assert!(report.convicted());
    }

    #[test]
    fn equivocation_caught_only_by_gossip() {
        let bed = Figure1Bed::build(&[2, 4], 65);
        let victim = bed.ns[0];
        let report = run_min_round(&bed, Some(Misbehavior::Equivocate { victim }));
        // Individual checks pass — that is the attack's design…
        // (B sees a consistent suppressed view; providers see the honest
        // view.)
        assert!(report.outcomes.values().all(|o| o.is_accept()), "{:?}", report.outcomes);
        // …but gossip catches the two roots and the auditor convicts.
        assert!(report.gossip_evidence.is_some());
        assert!(report.convicted());
    }

    #[test]
    fn non_monotone_bits_convicted_by_b() {
        let bed = Figure1Bed::build(&[2, 4], 66);
        let report = run_min_round(&bed, Some(Misbehavior::NonMonotoneBits));
        let b_ev = report.outcomes[&bed.b].evidence().map(|e| e.kind());
        assert_eq!(b_ev, Some("non-monotone"));
        assert!(report.convicted());
    }

    #[test]
    fn fabricated_export_convicted_by_b() {
        let bed = Figure1Bed::build(&[3, 4], 67);
        let report = run_min_round(&bed, Some(Misbehavior::FabricateExport));
        let b_ev = report.outcomes[&bed.b].evidence().map(|e| e.kind());
        assert_eq!(b_ev, Some("fabricated-export"));
        assert!(report.convicted());
    }

    #[test]
    fn refuse_reveal_detected_without_evidence() {
        let bed = Figure1Bed::build(&[2, 4], 68);
        let victim = bed.ns[1];
        let report = run_min_round(&bed, Some(Misbehavior::RefuseReveal { victim }));
        assert!(report.detected());
        assert!(!report.convicted(), "omission is not third-party provable");
        assert!(matches!(
            report.outcomes[&victim],
            Outcome::Suspect(Suspicion::MissingReveal { .. })
        ));
    }

    #[test]
    fn corrupt_opening_detected_without_evidence() {
        let bed = Figure1Bed::build(&[2], 69);
        let victim = bed.ns[0];
        let report = run_min_round(&bed, Some(Misbehavior::CorruptOpening { victim }));
        assert!(matches!(report.outcomes[&victim], Outcome::Suspect(Suspicion::BadReveal { .. })));
        assert!(!report.convicted());
    }

    #[test]
    fn all_verdicts_against_adversary_are_guilty() {
        // Every piece of evidence produced by honest verifiers must stand
        // up in front of the auditor (no weak accusations).
        let bed = Figure1Bed::build(&[2, 3, 5], 70);
        for behavior in [
            Misbehavior::ExportLonger,
            Misbehavior::SuppressInput { victim: bed.ns[0] },
            Misbehavior::DenyAll,
            Misbehavior::Equivocate { victim: bed.ns[0] },
            Misbehavior::NonMonotoneBits,
            Misbehavior::FabricateExport,
        ] {
            let report = run_min_round(&bed, Some(behavior.clone()));
            assert!(!report.verdicts.is_empty(), "{behavior:?} produced no evidence");
            for (accuser, v) in &report.verdicts {
                assert_eq!(*v, Verdict::Guilty, "{behavior:?} accused by {accuser}");
            }
        }
    }

    #[test]
    fn transcripts_record_all_views() {
        let bed = Figure1Bed::build(&[2, 3], 71);
        let report = run_min_round(&bed, None);
        for (&n, t) in &report.transcripts {
            assert!(t.total_bytes() > 0, "{n} received nothing");
        }
        // B's transcript includes the exported route, so it is larger
        // than a provider's.
        assert!(
            report.transcripts[&bed.b].total_bytes() > report.transcripts[&bed.ns[0]].total_bytes()
        );
    }
}
