//! Evidence of promise violations, and the third-party auditor.
//!
//! §2.3 Evidence: "If an incorrect evaluation is detected in an AS A,
//! then at least one AS B can obtain evidence against A that will
//! convince a third party." §2.3 Accuracy: "If an AS A has evaluated its
//! route-flow graph correctly, no correct AS can detect a violation in
//! A, and A can disprove any evidence that is presented against it."
//!
//! Every variant below is *self-contained*: the auditor judges from the
//! evidence bytes plus the public key store alone, trusting neither the
//! accuser nor the accused. Accuracy holds because each variant requires
//! a signature an honest A would never produce (two conflicting roots, a
//! committed bit contradicting an attested route, a non-monotone
//! vector).

use crate::session::{BitReveal, PvrParams, RoundContext};
use pvr_bgp::sbgp::SignedRoute;
use pvr_bgp::Asn;
use pvr_crypto::keys::KeyStore;
use pvr_mht::{EquivocationEvidence, SignedRoot};

/// Transferable evidence that a network misbehaved in one round.
#[derive(Clone, Debug)]
pub enum Evidence {
    /// Two conflicting signed roots for the same round (§3.6 gossip).
    Equivocation(EquivocationEvidence),
    /// A provider's case (§3.3 condition 3): it sent A an attested route
    /// of length `reveal.index` (or shorter), yet A committed
    /// `b_{index} = 0`.
    IgnoredInput {
        /// A's signed commitment.
        signed_root: SignedRoot,
        /// The revealed zero bit with its proof.
        reveal: BitReveal,
        /// The provider's own attested announcement to A.
        provided: SignedRoute,
    },
    /// The receiver's case: A committed that a route of length
    /// `reveal.index` existed (`b = 1`), yet exported a strictly longer
    /// route.
    ExportTooLong {
        /// A's signed commitment.
        signed_root: SignedRoot,
        /// The revealed one bit at the claimed minimum.
        reveal: BitReveal,
        /// The route A attested to the receiver.
        exported: SignedRoute,
        /// The receiver the route was attested to.
        receiver: Asn,
    },
    /// The receiver's case: A exported a route whose (pre-prepend)
    /// length is `reveal.index`, yet committed `b_{index} = 0` — the
    /// commitment denies the very route A exported.
    ExportContradictsBits {
        /// A's signed commitment.
        signed_root: SignedRoot,
        /// The revealed zero bit at the exported route's core length.
        reveal: BitReveal,
        /// The route A attested to the receiver.
        exported: SignedRoute,
        /// The receiver the route was attested to.
        receiver: Asn,
    },
    /// The bit vector violates §3.3 monotonicity: `b_lo = 1` but
    /// `b_hi = 0` for `hi > lo`.
    NonMonotone {
        /// A's signed commitment.
        signed_root: SignedRoot,
        /// The revealed one bit.
        lo: BitReveal,
        /// The revealed zero bit at a higher index.
        hi: BitReveal,
    },
    /// A attested an export whose inner chain is forged: A's own (top)
    /// attestation verifies, the rest does not — A vouched for a route
    /// nobody gave it (§3.2 condition 1).
    FabricatedExport {
        /// The route A attested to the receiver.
        exported: SignedRoute,
        /// The receiver the route was attested to.
        receiver: Asn,
    },
}

impl Evidence {
    /// Short human-readable kind (for reports and tables).
    pub fn kind(&self) -> &'static str {
        match self {
            Evidence::Equivocation(_) => "equivocation",
            Evidence::IgnoredInput { .. } => "ignored-input",
            Evidence::ExportTooLong { .. } => "export-too-long",
            Evidence::ExportContradictsBits { .. } => "export-contradicts-bits",
            Evidence::NonMonotone { .. } => "non-monotone",
            Evidence::FabricatedExport { .. } => "fabricated-export",
        }
    }
}

/// Observable irregularities that are grounds for alarm but are *not*
/// transferable proof (they could equally be caused by the network or
/// the accuser): the paper's Detection property covers them, Evidence
/// does not.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Suspicion {
    /// No disclosure arrived at all.
    MissingDisclosure,
    /// The signed root is absent or its signature is invalid.
    BadRootSignature,
    /// A required bit reveal is missing.
    MissingReveal {
        /// The 1-based bit index that was expected.
        index: u32,
    },
    /// A reveal's proof or payload does not check out against the root.
    BadReveal {
        /// The offending index.
        index: u32,
    },
    /// The exported route's attestation chain is invalid in a way that
    /// does not implicate A specifically.
    BadExportChain,
    /// A committed that a route exists (bit at `index` set, or the
    /// existential bit for `index = 0`) but exported nothing. Omission
    /// is detectable, not third-party-provable.
    WithheldExport {
        /// The bit index whose commitment implies a route exists.
        index: u32,
    },
}

/// The verdict a third party reaches on a piece of evidence.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// The accused provably misbehaved.
    Guilty,
    /// The evidence does not prove misbehavior (Accuracy: honest networks
    /// are never found guilty).
    Rejected(&'static str),
}

/// A third party that judges evidence with only public information.
pub struct Auditor<'a> {
    keys: &'a KeyStore,
    params: PvrParams,
}

impl<'a> Auditor<'a> {
    /// Creates an auditor over the public key store.
    pub fn new(keys: &'a KeyStore, params: PvrParams) -> Auditor<'a> {
        Auditor { keys, params }
    }

    /// Judges evidence accusing `accused` for `round`.
    pub fn judge(&self, accused: Asn, round: &RoundContext, evidence: &Evidence) -> Verdict {
        match evidence {
            Evidence::Equivocation(ev) => match ev.judge(self.keys) {
                Ok(signer) if signer == accused.principal() => Verdict::Guilty,
                Ok(_) => Verdict::Rejected("conflicting roots signed by someone else"),
                Err(_) => Verdict::Rejected("equivocation pair does not verify"),
            },
            Evidence::IgnoredInput { signed_root, reveal, provided } => {
                if let Err(v) = self.check_root(accused, round, signed_root) {
                    return v;
                }
                if let Err(v) = Self::check_reveal(signed_root, reveal, false, self.params) {
                    return v;
                }
                // The provider's chain must verify as delivered to the
                // accused — the accuser cannot fabricate it alone, since
                // it embeds every upstream AS's signature.
                if provided.verify(accused, self.keys).is_err() {
                    return Verdict::Rejected("provided route chain invalid");
                }
                if provided.route.prefix != round.prefix {
                    return Verdict::Rejected("provided route is for another prefix");
                }
                // Index 0 is the existential bit: any provided route
                // contradicts it. Otherwise the route must be at least as
                // short as the denied length bound.
                if reveal.index != 0 && provided.route.path_len() > reveal.index as usize {
                    return Verdict::Rejected("provided route longer than the denied bit");
                }
                Verdict::Guilty
            }
            Evidence::ExportTooLong { signed_root, reveal, exported, receiver } => {
                if let Err(v) = self.check_root(accused, round, signed_root) {
                    return v;
                }
                if let Err(v) = Self::check_reveal(signed_root, reveal, true, self.params) {
                    return v;
                }
                if let Err(v) = self.check_export(accused, round, exported, *receiver) {
                    return v;
                }
                // Core length (minus A's own prepend) must exceed the
                // committed minimum.
                if exported.route.path_len().saturating_sub(1) <= reveal.index as usize {
                    return Verdict::Rejected("exported route is not longer than committed min");
                }
                Verdict::Guilty
            }
            Evidence::ExportContradictsBits { signed_root, reveal, exported, receiver } => {
                if let Err(v) = self.check_root(accused, round, signed_root) {
                    return v;
                }
                if let Err(v) = Self::check_reveal(signed_root, reveal, false, self.params) {
                    return v;
                }
                if let Err(v) = self.check_export(accused, round, exported, *receiver) {
                    return v;
                }
                // Index 0 = existential bit: any export contradicts it.
                if reveal.index != 0
                    && exported.route.path_len().saturating_sub(1) != reveal.index as usize
                {
                    return Verdict::Rejected("bit index does not match exported length");
                }
                Verdict::Guilty
            }
            Evidence::NonMonotone { signed_root, lo, hi } => {
                if let Err(v) = self.check_root(accused, round, signed_root) {
                    return v;
                }
                if lo.index >= hi.index {
                    return Verdict::Rejected("indices not increasing");
                }
                if let Err(v) = Self::check_reveal(signed_root, lo, true, self.params) {
                    return v;
                }
                if let Err(v) = Self::check_reveal(signed_root, hi, false, self.params) {
                    return v;
                }
                Verdict::Guilty
            }
            Evidence::FabricatedExport { exported, receiver } => {
                // A's own attestation must be valid…
                let top = match exported.chain().newest() {
                    Some(t) => t,
                    None => return Verdict::Rejected("no attestations at all"),
                };
                if top.signer != accused {
                    return Verdict::Rejected("top attestation not by the accused");
                }
                if top.target != *receiver || top.path.asns() != exported.route.path.asns() {
                    return Verdict::Rejected("top attestation does not cover this export");
                }
                if top.verify(self.keys).is_err() {
                    return Verdict::Rejected("top attestation signature invalid");
                }
                // …while the chain as a whole must fail.
                match exported.verify(*receiver, self.keys) {
                    Err(_) => Verdict::Guilty,
                    Ok(()) => Verdict::Rejected("chain is actually valid"),
                }
            }
        }
    }

    fn check_root(
        &self,
        accused: Asn,
        round: &RoundContext,
        root: &SignedRoot,
    ) -> Result<(), Verdict> {
        if root.signer != accused.principal() {
            return Err(Verdict::Rejected("root signed by someone else"));
        }
        if root.context != round.context_bytes() || root.epoch != round.epoch {
            return Err(Verdict::Rejected("root is for a different round"));
        }
        root.verify(self.keys).map_err(|_| Verdict::Rejected("root signature invalid"))
    }

    fn check_reveal(
        root: &SignedRoot,
        reveal: &BitReveal,
        expected_bit: bool,
        params: PvrParams,
    ) -> Result<(), Verdict> {
        if reveal.index as usize > params.max_path_len {
            return Err(Verdict::Rejected("bit index out of range"));
        }
        let expected_label = if reveal.index == 0 {
            pvr_mht::Label::Slot(crate::session::SLOT_EXIST, 0)
        } else {
            pvr_mht::Label::Slot(crate::session::SLOT_MIN_BITS, reveal.index)
        };
        if reveal.proof.label != expected_label {
            return Err(Verdict::Rejected("reveal label does not match index"));
        }
        if !reveal.proof.verify(&root.root) {
            return Err(Verdict::Rejected("reveal proof does not match root"));
        }
        match reveal.bit() {
            Some(b) if b == expected_bit => Ok(()),
            Some(_) => Err(Verdict::Rejected("revealed bit has the wrong value")),
            None => Err(Verdict::Rejected("reveal payload malformed")),
        }
    }

    fn check_export(
        &self,
        accused: Asn,
        round: &RoundContext,
        exported: &SignedRoute,
        receiver: Asn,
    ) -> Result<(), Verdict> {
        if exported.route.prefix != round.prefix {
            return Err(Verdict::Rejected("exported route is for another prefix"));
        }
        if exported.route.path.first_as() != Some(accused) {
            return Err(Verdict::Rejected("export does not start at the accused"));
        }
        // Only the accused's own (top) attestation is needed: its
        // signature alone proves A announced this path to this receiver.
        let top =
            exported.chain().newest().ok_or(Verdict::Rejected("export carries no attestation"))?;
        if top.signer != accused
            || top.target != receiver
            || top.path.asns() != exported.route.path.asns()
            || top.prefix != exported.route.prefix
        {
            return Err(Verdict::Rejected("top attestation does not cover this export"));
        }
        top.verify(self.keys).map_err(|_| Verdict::Rejected("top attestation signature invalid"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::Figure1Bed;
    use pvr_mht::SignedRoot;

    /// Honest-run sanity: no honestly-produced artifact can be turned
    /// into a Guilty verdict (Accuracy).
    #[test]
    fn accuracy_honest_artifacts_rejected() {
        let bed = Figure1Bed::build(&[2, 3], 21);
        let c = bed.honest_committer();
        let auditor = Auditor::new(&bed.keys, bed.params);

        // Claiming "ignored input" with an honestly-set bit (it is 1, not
        // 0) must be rejected.
        let reveal = c.reveal_bit(2).unwrap();
        let ev = Evidence::IgnoredInput {
            signed_root: c.signed_root().clone(),
            reveal,
            provided: bed.input_of(bed.ns[0]).clone(),
        };
        assert!(matches!(auditor.judge(bed.a, &bed.round, &ev), Verdict::Rejected(_)));

        // Claiming "export too long" against the honest (shortest) export.
        let reveal = c.reveal_bit(2).unwrap();
        let exported = c.export_route(bed.b).unwrap();
        let ev = Evidence::ExportTooLong {
            signed_root: c.signed_root().clone(),
            reveal,
            exported: exported.clone(),
            receiver: bed.b,
        };
        assert!(matches!(auditor.judge(bed.a, &bed.round, &ev), Verdict::Rejected(_)));

        // Claiming "fabricated" against a valid chain.
        let ev = Evidence::FabricatedExport { exported, receiver: bed.b };
        assert!(matches!(auditor.judge(bed.a, &bed.round, &ev), Verdict::Rejected(_)));
    }

    #[test]
    fn equivocation_judged_guilty() {
        let bed = Figure1Bed::build(&[2], 22);
        let auditor = Auditor::new(&bed.keys, bed.params);
        let a_id = bed.a_identity();
        let r1 = SignedRoot::create(a_id, bed.round.context_bytes(), 1, pvr_crypto::sha256(b"x"));
        let r2 = SignedRoot::create(a_id, bed.round.context_bytes(), 1, pvr_crypto::sha256(b"y"));
        let ev = Evidence::Equivocation(EquivocationEvidence { a: r1, b: r2 });
        assert_eq!(auditor.judge(bed.a, &bed.round, &ev), Verdict::Guilty);
        // Accusing someone else with A's equivocation fails.
        assert!(matches!(auditor.judge(bed.b, &bed.round, &ev), Verdict::Rejected(_)));
    }

    #[test]
    fn wrong_round_rejected() {
        let bed = Figure1Bed::build(&[2, 3], 23);
        let c = bed.honest_committer();
        let auditor = Auditor::new(&bed.keys, bed.params);
        let other_round = RoundContext { prefix: bed.prefix, epoch: 99 };
        let ev = Evidence::NonMonotone {
            signed_root: c.signed_root().clone(),
            lo: c.reveal_bit(2).unwrap(),
            hi: c.reveal_bit(3).unwrap(),
        };
        assert!(matches!(auditor.judge(bed.a, &other_round, &ev), Verdict::Rejected(_)));
    }

    #[test]
    fn honest_vector_cannot_be_framed_as_non_monotone() {
        let bed = Figure1Bed::build(&[2, 4], 24);
        let c = bed.honest_committer();
        let auditor = Auditor::new(&bed.keys, bed.params);
        // Honest bits: 0,1,1,1,… — any (lo=1, hi=0) pair is impossible,
        // so all combinations get rejected.
        for lo in 1..=4u32 {
            for hi in lo + 1..=5u32 {
                let ev = Evidence::NonMonotone {
                    signed_root: c.signed_root().clone(),
                    lo: c.reveal_bit(lo).unwrap(),
                    hi: c.reveal_bit(hi).unwrap(),
                };
                assert!(
                    matches!(auditor.judge(bed.a, &bed.round, &ev), Verdict::Rejected(_)),
                    "lo={lo} hi={hi}"
                );
            }
        }
    }

    #[test]
    fn suspicion_is_not_evidence() {
        // Type-level documentation: Suspicion has no judge() path.
        let s = Suspicion::MissingReveal { index: 3 };
        assert_eq!(s, Suspicion::MissingReveal { index: 3 });
        assert_ne!(s, Suspicion::MissingDisclosure);
    }

    #[test]
    fn evidence_kinds_are_stable() {
        let bed = Figure1Bed::build(&[2], 25);
        let c = bed.honest_committer();
        let ev = Evidence::NonMonotone {
            signed_root: c.signed_root().clone(),
            lo: c.reveal_bit(1).unwrap(),
            hi: c.reveal_bit(2).unwrap(),
        };
        assert_eq!(ev.kind(), "non-monotone");
    }
}
