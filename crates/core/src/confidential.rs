//! The Confidentiality auditor (§2.3, experiment E7).
//!
//! "Confidentiality: No AS will learn information from running PVR that
//! it could not learn in the unsecured system, unless this was
//! explicitly authorized by α."
//!
//! We operationalize this as **counterfactual indistinguishability**:
//! run the protocol twice on inputs that differ only in facts a
//! participant is *not* authorized to learn, and compare that
//! participant's views. Because commitments are hiding, the views can
//! differ in opaque cryptographic material (hashes, blindings,
//! signatures over them) without leaking anything; what must be
//! *identical* is the view's **information content** — every opened
//! value. [`redact`] extracts exactly that content from a transcript,
//! and the audit compares redacted views.
//!
//! The §3.3 construction passes this audit because the bit vector is
//! the monotone closure of the minimum (see [`crate::bits`]): changing
//! a non-minimal route's length changes no opened bit, no exported
//! route, and no revealed index for anyone else.

use crate::harness::Figure1Bed;
use crate::protocol::{run_min_round, Transcript};
use crate::session::Disclosure;
use pvr_bgp::{Asn, Route};
use pvr_crypto::decode_exact;
use pvr_mht::SignedRoot;
use std::collections::BTreeMap;

/// The information content of a participant's view: everything that was
/// actually *opened* to it, with all hiding material (digests,
/// blindings, signatures) stripped.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct RedactedView {
    /// Root messages seen: only (signer, context, epoch) — the root hash
    /// itself is opaque.
    pub roots: Vec<(u64, Vec<u8>, u64)>,
    /// Opened bits: (index, value) pairs per disclosure.
    pub opened_bits: Vec<Vec<(u32, Option<bool>)>>,
    /// Exported routes received (route content is authorized knowledge
    /// for the receiver).
    pub exported_routes: Vec<Option<Route>>,
    /// Which record fields were opened per graph reveal, per disclosure.
    pub graph_openings: Vec<Vec<(bool, bool, bool)>>,
}

/// Extracts the redacted view from a raw transcript.
pub fn redact(transcript: &Transcript) -> RedactedView {
    let mut view = RedactedView::default();
    for (label, bytes) in &transcript.received {
        match label.as_str() {
            "root" | "gossip" => {
                if let Ok(sr) = decode_exact::<SignedRoot>(bytes) {
                    view.roots.push((sr.signer, sr.context.clone(), sr.epoch));
                }
            }
            "disclosure" => {
                if let Ok(d) = decode_exact::<Disclosure>(bytes) {
                    view.opened_bits
                        .push(d.bit_reveals.iter().map(|r| (r.index, r.bit())).collect());
                    view.exported_routes.push(d.exported.map(|sr| sr.route));
                    view.graph_openings.push(
                        d.graph
                            .iter()
                            .map(|g| (g.preds.is_some(), g.succs.is_some(), g.content.is_some()))
                            .collect(),
                    );
                }
            }
            _ => {}
        }
    }
    view
}

/// The outcome of a counterfactual audit for every participant.
#[derive(Debug)]
pub struct AuditOutcome {
    /// Participants whose *information content* changed between runs.
    pub content_changed: BTreeMap<Asn, bool>,
    /// Participants whose raw bytes changed (expected: commitment
    /// material depends on all committed values, so raw changes are
    /// fine — only opened content matters).
    pub raw_changed: BTreeMap<Asn, bool>,
}

impl AuditOutcome {
    /// True if no participant outside `authorized` saw a content change.
    pub fn confidential_except(&self, authorized: &[Asn]) -> bool {
        self.content_changed.iter().all(|(n, &changed)| !changed || authorized.contains(n))
    }
}

/// Runs the honest §3.3 protocol on two input vectors and compares every
/// participant's views. `lens_a` and `lens_b` give the providers' route
/// lengths in each world (same provider count).
pub fn counterfactual_min_audit(lens_a: &[usize], lens_b: &[usize], seed: u64) -> AuditOutcome {
    assert_eq!(lens_a.len(), lens_b.len(), "same provider set in both worlds");
    let bed_a = Figure1Bed::build(lens_a, seed);
    let bed_b = Figure1Bed::build(lens_b, seed);
    let report_a = run_min_round(&bed_a, None);
    let report_b = run_min_round(&bed_b, None);

    let mut content_changed = BTreeMap::new();
    let mut raw_changed = BTreeMap::new();
    for (&n, ta) in &report_a.transcripts {
        let tb = &report_b.transcripts[&n];
        content_changed.insert(n, redact(ta) != redact(tb));
        raw_changed.insert(n, ta != tb);
    }
    AuditOutcome { content_changed, raw_changed }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn non_minimal_change_is_invisible_to_everyone_else() {
        // World A: N2's route has length 3; world B: length 5. The min
        // (N1's length-2 route) is unchanged, so:
        //  * N1's view content must not change (it would otherwise learn
        //    something about N2's route — exactly what α forbids);
        //  * B's view content must not change (same route, same bits);
        //  * N2's own view changes (its revealed index moves) — that is
        //    authorized: N2 knows its own route.
        let outcome = counterfactual_min_audit(&[2, 3], &[2, 5], 81);
        let n1 = Asn(1);
        let n2 = Asn(2);
        let b = Asn(200);
        assert!(!outcome.content_changed[&n1], "N1 learned about N2's change");
        assert!(!outcome.content_changed[&b], "B learned about N2's change");
        assert!(outcome.content_changed[&n2], "N2's own view legitimately changes");
        assert!(outcome.confidential_except(&[n2]));
    }

    #[test]
    fn raw_bytes_may_differ_but_content_not() {
        // The commitment tree differs between worlds (it commits to N2's
        // route), so raw views differ — the point is that only opaque
        // material differs.
        let outcome = counterfactual_min_audit(&[2, 3], &[2, 5], 82);
        let b = Asn(200);
        assert!(outcome.raw_changed[&b], "commitment material should differ");
        assert!(!outcome.content_changed[&b], "but no opened value may differ");
    }

    #[test]
    fn minimal_change_is_visible_to_b_only_through_the_route() {
        // If the *minimum* changes (N1: 2 → 1), B legitimately sees a
        // different route and bit vector; the paper: "B obviously learns
        // the chosen route".
        let outcome = counterfactual_min_audit(&[2, 3], &[1, 3], 83);
        let b = Asn(200);
        let n1 = Asn(1);
        assert!(outcome.content_changed[&b]);
        assert!(outcome.content_changed[&n1], "N1's own route changed");
        // N2's bit at length 3 is 1 in both worlds (min ≤ 3 both times),
        // so N2 sees no content change: it cannot tell whether the
        // shortest route got shorter.
        let n2 = Asn(2);
        assert!(!outcome.content_changed[&n2]);
    }

    #[test]
    fn equal_worlds_have_equal_views() {
        let outcome = counterfactual_min_audit(&[2, 4, 3], &[2, 4, 3], 84);
        for (&n, &changed) in &outcome.content_changed {
            assert!(!changed, "{n} changed in identical worlds");
        }
        for (&n, &changed) in &outcome.raw_changed {
            assert!(!changed, "{n} raw-changed in identical worlds");
        }
    }

    #[test]
    fn adding_longer_alternatives_is_invisible() {
        // Three providers; N3's route goes 6 → 9. Nobody but N3 may
        // notice.
        let outcome = counterfactual_min_audit(&[2, 4, 6], &[2, 4, 9], 85);
        assert!(outcome.confidential_except(&[Asn(3)]));
    }

    #[test]
    fn redaction_extracts_opened_bits() {
        let bed = Figure1Bed::build(&[2, 3], 86);
        let report = run_min_round(&bed, None);
        let view = redact(&report.transcripts[&bed.b]);
        // B gets all bits and the exported route.
        assert_eq!(view.opened_bits[0].len(), bed.params.max_path_len);
        assert_eq!(view.exported_routes.len(), 1);
        assert!(view.exported_routes[0].is_some());
        // Providers get exactly one bit.
        let view = redact(&report.transcripts[&bed.ns[0]]);
        assert_eq!(view.opened_bits[0].len(), 1);
        assert_eq!(view.opened_bits[0][0], (2, Some(true)));
    }
}
