//! The PVR round as real network traffic.
//!
//! [`crate::protocol`] gives the reference semantics with direct calls;
//! this module runs the same four phases as messages over
//! [`pvr_netsim`]: A publishes its signed root(s) and disclosures,
//! neighbors gossip roots among themselves (§3.6: "A's neighbors can
//! gossip about c to ensure that they all have the same view"), and
//! each neighbor verifies asynchronously. Loss and partitions now
//! matter: a dropped disclosure degrades to *suspicion* (detection
//! without evidence), and equivocation is caught as soon as any two
//! conflicting roots meet at one gossip participant.

use crate::adversary::{Adversary, Misbehavior};
use crate::evidence::{Evidence, Suspicion};
use crate::harness::Figure1Bed;
use crate::session::{Disclosure, PvrParams, RoundContext};
use crate::verify::{verify_as_provider, verify_as_receiver, Outcome};
use pvr_bgp::sbgp::SignedRoute;
use pvr_bgp::Asn;
use pvr_crypto::drbg::HmacDrbg;
use pvr_crypto::encoding::{Reader, Wire, WireError};
use pvr_crypto::keys::KeyStore;
use pvr_mht::{EquivocationEvidence, SignedRoot};
use pvr_netsim::{Agent, Context, NodeId, Payload, RunLimits, Simulator};
use std::any::Any;
use std::collections::BTreeMap;
use std::sync::Arc;

/// PVR protocol messages.
#[derive(Clone, Debug)]
pub enum PvrMsg {
    /// A → neighbor: the signed root commitment.
    Root(SignedRoot),
    /// neighbor → neighbor: gossip of a seen root.
    Gossip(SignedRoot),
    /// A → provider: the provider's selective disclosure.
    ToProvider(Disclosure),
    /// A → receiver: the receiver's disclosure (bits + export).
    ToReceiver(Disclosure),
}

impl Wire for PvrMsg {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            PvrMsg::Root(r) => {
                buf.push(0);
                r.encode(buf);
            }
            PvrMsg::Gossip(r) => {
                buf.push(1);
                r.encode(buf);
            }
            PvrMsg::ToProvider(d) => {
                buf.push(2);
                d.encode(buf);
            }
            PvrMsg::ToReceiver(d) => {
                buf.push(3);
                d.encode(buf);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(match r.take(1)?[0] {
            0 => PvrMsg::Root(SignedRoot::decode(r)?),
            1 => PvrMsg::Gossip(SignedRoot::decode(r)?),
            2 => PvrMsg::ToProvider(Disclosure::decode(r)?),
            3 => PvrMsg::ToReceiver(Disclosure::decode(r)?),
            _ => return Err(WireError::Invalid("PvrMsg tag")),
        })
    }
}

impl Payload for PvrMsg {
    fn wire_size(&self) -> usize {
        self.to_wire().len()
    }
}

/// Network A as a simulator agent: sends everything in `on_start`.
pub struct CommitterNode {
    /// (neighbor node, root, disclosure, is_receiver) per neighbor.
    outbox: Vec<(NodeId, SignedRoot, Disclosure, bool)>,
}

impl CommitterNode {
    /// Builds A's agent from prepared artifacts.
    pub fn new(outbox: Vec<(NodeId, SignedRoot, Disclosure, bool)>) -> CommitterNode {
        CommitterNode { outbox }
    }
}

impl Agent<PvrMsg> for CommitterNode {
    fn on_start(&mut self, ctx: &mut Context<PvrMsg>) {
        for (node, root, disclosure, is_receiver) in self.outbox.drain(..) {
            ctx.send(node, PvrMsg::Root(root));
            let msg = if is_receiver {
                PvrMsg::ToReceiver(disclosure)
            } else {
                PvrMsg::ToProvider(disclosure)
            };
            ctx.send(node, msg);
        }
    }

    fn on_message(&mut self, _ctx: &mut Context<PvrMsg>, _from: NodeId, _msg: PvrMsg) {
        // A ignores traffic in this one-round protocol.
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// The verifier's role in the round.
pub enum VerifierRole {
    /// One of the N_i, holding what it advertised to A.
    Provider {
        /// The routes this provider sent to A this round.
        my_routes: Vec<SignedRoute>,
    },
    /// The receiver B.
    Receiver,
}

/// A neighbor of A: stores roots, gossips, verifies its disclosure.
pub struct VerifierNode {
    me: Asn,
    a: Asn,
    round: RoundContext,
    params: PvrParams,
    keys: Arc<KeyStore>,
    role: VerifierRole,
    /// Gossip peers (the other neighbors of A).
    peers: Vec<NodeId>,
    /// Every valid signed root seen (own + gossiped).
    seen_roots: Vec<SignedRoot>,
    /// Verification outcome once the disclosure arrived.
    outcome: Option<Outcome>,
    /// Equivocation evidence from gossip, if found.
    equivocation: Option<Evidence>,
}

impl VerifierNode {
    /// Creates a verifier agent.
    pub fn new(
        me: Asn,
        a: Asn,
        round: RoundContext,
        params: PvrParams,
        keys: Arc<KeyStore>,
        role: VerifierRole,
        peers: Vec<NodeId>,
    ) -> VerifierNode {
        VerifierNode {
            me,
            a,
            round,
            params,
            keys,
            role,
            peers,
            seen_roots: Vec::new(),
            outcome: None,
            equivocation: None,
        }
    }

    /// The verification outcome; `None` means the disclosure never
    /// arrived (callers should treat that as
    /// [`Suspicion::MissingDisclosure`]).
    pub fn outcome(&self) -> Option<&Outcome> {
        self.outcome.as_ref()
    }

    /// The effective outcome, mapping a missing disclosure to suspicion.
    pub fn effective_outcome(&self) -> Outcome {
        match &self.outcome {
            Some(o) => o.clone(),
            None => Outcome::Suspect(Suspicion::MissingDisclosure),
        }
    }

    /// Equivocation evidence gathered via gossip.
    pub fn equivocation(&self) -> Option<&Evidence> {
        self.equivocation.as_ref()
    }

    fn note_root(&mut self, root: SignedRoot) {
        if root.verify(&self.keys).is_err() {
            return;
        }
        for seen in &self.seen_roots {
            if let Some(ev) = EquivocationEvidence::try_from_pair(seen, &root) {
                self.equivocation.get_or_insert(Evidence::Equivocation(ev));
            }
        }
        // Deduplicate to keep gossip storms bounded.
        if !self.seen_roots.contains(&root) {
            self.seen_roots.push(root);
        }
    }
}

impl Agent<PvrMsg> for VerifierNode {
    fn on_message(&mut self, ctx: &mut Context<PvrMsg>, _from: NodeId, msg: PvrMsg) {
        match msg {
            PvrMsg::Root(root) => {
                // Forward A's claim to all peers, then record it.
                let is_new = !self.seen_roots.contains(&root);
                self.note_root(root.clone());
                if is_new {
                    for &p in &self.peers.clone() {
                        ctx.send(p, PvrMsg::Gossip(root.clone()));
                    }
                }
            }
            PvrMsg::Gossip(root) => {
                self.note_root(root);
            }
            PvrMsg::ToProvider(d) => {
                if let VerifierRole::Provider { my_routes } = &self.role {
                    self.outcome = Some(verify_as_provider(
                        self.a,
                        &self.round,
                        &self.params,
                        my_routes,
                        &d,
                        &self.keys,
                    ));
                }
            }
            PvrMsg::ToReceiver(d) => {
                if matches!(self.role, VerifierRole::Receiver) {
                    self.outcome = Some(verify_as_receiver(
                        self.me,
                        self.a,
                        &self.round,
                        &self.params,
                        &d,
                        &self.keys,
                    ));
                }
            }
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// A fully wired simulated round: the simulator plus node ids.
pub struct SimRound {
    /// The simulator, ready to run.
    pub sim: Simulator<PvrMsg>,
    /// Node of network A.
    pub a_node: NodeId,
    /// Node of each verifier.
    pub verifier_nodes: BTreeMap<Asn, NodeId>,
}

impl SimRound {
    /// Runs to quiescence and collects results.
    pub fn run(&mut self) -> SimRoundReport {
        self.sim.run(RunLimits::none());
        let mut outcomes = BTreeMap::new();
        let mut equivocation = None;
        for (&asn, &node) in &self.verifier_nodes {
            let v: &VerifierNode = self.sim.node(node).expect("verifier downcast");
            outcomes.insert(asn, v.effective_outcome());
            if equivocation.is_none() {
                equivocation = v.equivocation().cloned();
            }
        }
        SimRoundReport {
            outcomes,
            equivocation,
            messages: self.sim.stats().delivered,
            bytes: self.sim.stats().bytes_sent,
        }
    }
}

/// Results of a simulated round.
#[derive(Debug)]
pub struct SimRoundReport {
    /// Each verifier's (effective) outcome.
    pub outcomes: BTreeMap<Asn, Outcome>,
    /// First equivocation evidence found by any gossip participant.
    pub equivocation: Option<Evidence>,
    /// Messages delivered during the round.
    pub messages: u64,
    /// Bytes put on the wire.
    pub bytes: u64,
}

impl SimRoundReport {
    /// The paper's Detection property over the whole round.
    pub fn detected(&self) -> bool {
        self.equivocation.is_some() || self.outcomes.values().any(|o| o.detected())
    }
}

/// Builds a simulated round from a [`Figure1Bed`], honest or Byzantine.
pub fn build_sim_round(bed: &Figure1Bed, behavior: Option<Misbehavior>, sim_seed: u64) -> SimRound {
    let mut sim: Simulator<PvrMsg> = Simulator::new(sim_seed);
    let keys = Arc::new(bed.keys.clone());

    // Create verifier agents first (so A knows their node ids), then A.
    // Node ids: providers in order, then B, then A.
    let mut verifier_nodes = BTreeMap::new();
    let n_verifiers = bed.ns.len() + 1;
    let planned_ids: BTreeMap<Asn, NodeId> =
        bed.ns.iter().copied().chain([bed.b]).enumerate().map(|(i, asn)| (asn, i)).collect();
    for (i, &asn) in bed.ns.iter().chain([&bed.b]).enumerate() {
        let peers: Vec<NodeId> = (0..n_verifiers).filter(|&p| p != i).collect();
        let role = if asn == bed.b {
            VerifierRole::Receiver
        } else {
            VerifierRole::Provider { my_routes: bed.inputs[&asn].clone() }
        };
        let node = sim.add_node(Box::new(VerifierNode::new(
            asn,
            bed.a,
            bed.round.clone(),
            bed.params,
            Arc::clone(&keys),
            role,
            peers,
        )));
        assert_eq!(node, planned_ids[&asn]);
        verifier_nodes.insert(asn, node);
    }

    // Prepare A's artifacts.
    let outbox = match behavior {
        None => {
            let c = bed.honest_committer();
            bed.ns
                .iter()
                .map(|&n| {
                    (
                        verifier_nodes[&n],
                        c.signed_root().clone(),
                        c.disclosure_for_provider(n),
                        false,
                    )
                })
                .chain([(
                    verifier_nodes[&bed.b],
                    c.signed_root().clone(),
                    c.disclosure_for_receiver(bed.b),
                    true,
                )])
                .collect()
        }
        Some(behavior) => {
            let mut rng = HmacDrbg::from_u64_labeled(bed.seed, "adversary");
            let adv = Adversary::new(
                bed.a_identity(),
                bed.round.clone(),
                bed.params,
                bed.graph.clone(),
                bed.inputs.clone(),
                &bed.ns,
                bed.b,
                behavior,
                &mut rng,
            );
            bed.ns
                .iter()
                .map(|&n| {
                    (
                        verifier_nodes[&n],
                        adv.root_for(n).clone(),
                        adv.disclosure_for_provider(n),
                        false,
                    )
                })
                .chain([(
                    verifier_nodes[&bed.b],
                    adv.root_for(bed.b).clone(),
                    adv.disclosure_for_receiver(),
                    true,
                )])
                .collect()
        }
    };
    let a_node = sim.add_node(Box::new(CommitterNode::new(outbox)));

    SimRound { sim, a_node, verifier_nodes }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn honest_round_over_network_accepts() {
        let bed = Figure1Bed::build(&[2, 3, 4], 91);
        let mut round = build_sim_round(&bed, None, 1);
        let report = round.run();
        assert!(!report.detected(), "{report:?}");
        assert!(report.messages > 0);
        assert!(report.bytes > 0);
    }

    #[test]
    fn equivocation_detected_via_gossip_traffic() {
        let bed = Figure1Bed::build(&[2, 4], 92);
        let victim = bed.ns[0];
        let mut round = build_sim_round(&bed, Some(Misbehavior::Equivocate { victim }), 2);
        let report = round.run();
        // Individual verifications pass; the gossip layer catches it.
        assert!(report.outcomes.values().all(|o| o.is_accept()));
        assert!(report.equivocation.is_some());
        assert!(report.detected());
    }

    #[test]
    fn suppressed_input_detected_over_network() {
        let bed = Figure1Bed::build(&[2, 4], 93);
        let victim = bed.ns[0];
        let mut round = build_sim_round(&bed, Some(Misbehavior::SuppressInput { victim }), 3);
        let report = round.run();
        assert_eq!(report.outcomes[&victim].evidence().map(|e| e.kind()), Some("ignored-input"));
    }

    #[test]
    fn dropped_disclosure_becomes_suspicion() {
        let bed = Figure1Bed::build(&[2, 3], 94);
        let mut round = build_sim_round(&bed, None, 4);
        // Partition A → N1 before starting.
        let n1_node = round.verifier_nodes[&bed.ns[0]];
        round.sim.set_link_down(round.a_node, n1_node, true);
        let report = round.run();
        assert!(matches!(
            report.outcomes[&bed.ns[0]],
            Outcome::Suspect(Suspicion::MissingDisclosure)
        ));
        // Other participants are unaffected.
        assert!(report.outcomes[&bed.ns[1]].is_accept());
        assert!(report.outcomes[&bed.b].is_accept());
    }

    #[test]
    fn gossip_terminates_with_dedup() {
        // The gossip forward-once rule must not generate unbounded
        // traffic: message count stays polynomial in participants.
        let bed = Figure1Bed::build(&[2, 3, 4, 5, 6], 95);
        let mut round = build_sim_round(&bed, None, 5);
        let report = round.run();
        // 6 verifiers: A sends 12 (root+disclosure each); each verifier
        // forwards its root once to 5 peers = 30 gossip messages.
        assert!(report.messages <= 12 + 30 + 5, "messages = {}", report.messages);
    }

    #[test]
    fn pvr_msg_wire_round_trip() {
        let bed = Figure1Bed::build(&[2], 96);
        let c = bed.honest_committer();
        let msgs = vec![
            PvrMsg::Root(c.signed_root().clone()),
            PvrMsg::Gossip(c.signed_root().clone()),
            PvrMsg::ToProvider(c.disclosure_for_provider(bed.ns[0])),
            PvrMsg::ToReceiver(c.disclosure_for_receiver(bed.b)),
        ];
        for m in msgs {
            let bytes = m.to_wire();
            let back: PvrMsg = pvr_crypto::decode_exact(&bytes).unwrap();
            assert_eq!(back.to_wire(), bytes);
            assert_eq!(m.wire_size(), bytes.len());
        }
    }
}
