//! The committing network's side of one PVR decision round.
//!
//! For one (prefix, epoch) round, network A:
//!
//! 1. evaluates its route-flow graph on the received inputs (§2.1);
//! 2. computes the §3.3 bit vector `b_1..b_k` over the promise's scope;
//! 3. builds the sparse MHT of §3.6 — one leaf per bit slot and one
//!    leaf per graph vertex (the `I(x)` records of §3.7);
//! 4. signs the root and publishes it to all neighbors;
//! 5. answers selective-disclosure queries: each provider N_i gets the
//!    bit at its own route's length, the receiver B gets all bits plus
//!    the exported (attested) route, and graph structure is revealed
//!    per the α policy.

use crate::bits::{existential_bit, min_bit_vector};
use crate::record::{make_record, VertexContent, VertexOpenings};
use pvr_bgp::sbgp::SignedRoute;
use pvr_bgp::{Asn, Prefix, Route};
use pvr_crypto::drbg::HmacDrbg;
use pvr_crypto::encoding::{decode_seq, encode_seq, Reader, Wire, WireError};
use pvr_crypto::keys::Identity;
use pvr_crypto::Opening;
use pvr_mht::{InclusionProof, Label, SignedRoot, SparseMht};
use pvr_rfg::{AccessPolicy, Evaluation, RouteFlowGraph, VertexRef};
use std::collections::BTreeMap;

/// Slot group for the single existential bit (§3.2).
pub const SLOT_EXIST: u32 = 0;
/// Slot group for the minimum operator's bit vector (§3.3).
pub const SLOT_MIN_BITS: u32 = 1;

/// Identifies one decision round: which prefix, which epoch.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RoundContext {
    /// The prefix being decided.
    pub prefix: Prefix,
    /// Monotone epoch (e.g. update sequence number).
    pub epoch: u64,
}

impl RoundContext {
    /// Canonical context bytes used in the signed root.
    pub fn context_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(16);
        buf.extend_from_slice(b"pvr.round");
        self.prefix.encode(&mut buf);
        buf
    }
}

/// Protocol parameters shared by committer and verifiers.
#[derive(Clone, Copy, Debug)]
pub struct PvrParams {
    /// "The maximum AS-path length at A" (§3.3): the bit-vector length.
    pub max_path_len: usize,
}

impl Default for PvrParams {
    fn default() -> Self {
        PvrParams { max_path_len: 16 }
    }
}

/// A revealed bit: its 1-based index and the MHT inclusion proof whose
/// leaf payload is `bit ‖ blinding`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BitReveal {
    /// 1-based index into the bit vector (0 = the existential slot).
    pub index: u32,
    /// Proof against the signed root; payload encodes the bit.
    pub proof: InclusionProof,
}

impl BitReveal {
    /// Parses the revealed bit from the proof payload.
    pub fn bit(&self) -> Option<bool> {
        parse_bit_payload(&self.proof.payload)
    }
}

impl Wire for BitReveal {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.index.encode(buf);
        self.proof.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(BitReveal { index: u32::decode(r)?, proof: InclusionProof::decode(r)? })
    }
}

/// Leaf payload for a bit slot: `bit ‖ 32-byte blinding` (the paper's
/// `b ‖ p` from §3.2).
fn bit_payload(bit: bool, rng: &mut HmacDrbg) -> Vec<u8> {
    let mut payload = Vec::with_capacity(33);
    payload.push(bit as u8);
    payload.extend_from_slice(&rng.bytes(32));
    payload
}

/// Parses a bit-slot payload.
pub fn parse_bit_payload(payload: &[u8]) -> Option<bool> {
    if payload.len() != 33 {
        return None;
    }
    match payload[0] {
        0 => Some(false),
        1 => Some(true),
        _ => None,
    }
}

/// A selectively-revealed graph vertex: the leaf proof (establishing the
/// committed record) plus whichever openings the verifier is authorized
/// to see (§3.7: "the three types of information can be revealed
/// independently").
#[derive(Clone, Debug)]
pub struct GraphReveal {
    /// MHT proof for the vertex leaf; payload is the `VertexRecord`.
    pub proof: InclusionProof,
    /// Opening of the predecessor list, if structure access granted.
    pub preds: Option<Opening>,
    /// Opening of the successor list, if structure access granted.
    pub succs: Option<Opening>,
    /// Opening of the content, if content access granted.
    pub content: Option<Opening>,
}

impl Wire for GraphReveal {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.proof.encode(buf);
        self.preds.encode(buf);
        self.succs.encode(buf);
        self.content.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(GraphReveal {
            proof: InclusionProof::decode(r)?,
            preds: Option::<Opening>::decode(r)?,
            succs: Option::<Opening>::decode(r)?,
            content: Option::<Opening>::decode(r)?,
        })
    }
}

/// Everything one neighbor receives from A in one round.
#[derive(Clone, Debug, Default)]
pub struct Disclosure {
    /// The signed root (also gossiped separately).
    pub signed_root: Option<SignedRoot>,
    /// Revealed bits (provider: own length; receiver: all).
    pub bit_reveals: Vec<BitReveal>,
    /// The exported route with its attestation chain (receiver only).
    pub exported: Option<SignedRoute>,
    /// Graph-navigation reveals per α.
    pub graph: Vec<GraphReveal>,
}

impl Wire for Disclosure {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.signed_root.encode(buf);
        encode_seq(&self.bit_reveals, buf);
        self.exported.encode(buf);
        encode_seq(&self.graph, buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Disclosure {
            signed_root: Option::<SignedRoot>::decode(r)?,
            bit_reveals: decode_seq(r)?,
            exported: Option::<SignedRoute>::decode(r)?,
            graph: decode_seq(r)?,
        })
    }
}

impl pvr_netsim::Payload for Disclosure {
    fn wire_size(&self) -> usize {
        self.to_wire().len()
    }
}

/// A's committer for one round.
pub struct Committer {
    identity: Identity,
    params: PvrParams,
    round: RoundContext,
    graph: RouteFlowGraph,
    eval: Evaluation,
    /// Inputs with their attestation chains, by neighbor.
    inputs: BTreeMap<Asn, Vec<SignedRoute>>,
    bits: Vec<bool>,
    mht: SparseMht,
    vertex_openings: BTreeMap<Label, VertexOpenings>,
    signed_root: SignedRoot,
}

impl Committer {
    /// Builds the round state. `bit_scope` is the promise's neighbor
    /// subset (the N_i); `inputs` maps each neighbor to the signed routes
    /// it advertised. The bit vector and graph evaluation both derive
    /// from these inputs.
    pub fn new(
        identity: &Identity,
        round: RoundContext,
        params: PvrParams,
        graph: RouteFlowGraph,
        inputs: BTreeMap<Asn, Vec<SignedRoute>>,
        bit_scope: &[Asn],
        rng: &mut HmacDrbg,
    ) -> Committer {
        let plain_inputs: BTreeMap<Asn, Vec<Route>> = inputs
            .iter()
            .map(|(&n, srs)| (n, srs.iter().map(|sr| sr.route.clone()).collect()))
            .collect();
        let eval = graph.evaluate(&plain_inputs).expect("graph must validate");

        let scope_routes: Vec<&Route> =
            bit_scope.iter().flat_map(|n| plain_inputs.get(n).into_iter().flatten()).collect();
        let bits = min_bit_vector(&scope_routes, params.max_path_len);
        let exist = existential_bit(&scope_routes);

        let (mht, vertex_openings) = build_mht(&graph, &eval, &bits, exist, rng);
        let signed_root =
            SignedRoot::create(identity, round.context_bytes(), round.epoch, mht.root());

        Committer {
            identity: identity.clone(),
            params,
            round,
            graph,
            eval,
            inputs,
            bits,
            mht,
            vertex_openings,
            signed_root,
        }
    }

    /// Assembles a committer from pre-built parts — crate-internal, used
    /// by the adversary module to commit to *dishonest* bit vectors.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        identity: Identity,
        params: PvrParams,
        round: RoundContext,
        graph: RouteFlowGraph,
        eval: Evaluation,
        inputs: BTreeMap<Asn, Vec<SignedRoute>>,
        bits: Vec<bool>,
        mht: SparseMht,
        vertex_openings: BTreeMap<Label, VertexOpenings>,
        signed_root: SignedRoot,
    ) -> Committer {
        Committer {
            identity,
            params,
            round,
            graph,
            eval,
            inputs,
            bits,
            mht,
            vertex_openings,
            signed_root,
        }
    }

    /// The signed root commitment (published to all neighbors, then
    /// gossiped among them).
    pub fn signed_root(&self) -> &SignedRoot {
        &self.signed_root
    }

    /// The round context.
    pub fn round(&self) -> &RoundContext {
        &self.round
    }

    /// The protocol parameters.
    pub fn params(&self) -> PvrParams {
        self.params
    }

    /// The evaluation (for tests/ablation; a real A keeps this private).
    pub fn evaluation(&self) -> &Evaluation {
        &self.eval
    }

    /// The bit vector (private; exposed for the adversary module and
    /// tests).
    pub(crate) fn bits(&self) -> &[bool] {
        &self.bits
    }

    /// Reveals bit `index` (1-based; 0 = existential slot).
    pub fn reveal_bit(&self, index: u32) -> Option<BitReveal> {
        let label =
            if index == 0 { Label::Slot(SLOT_EXIST, 0) } else { Label::Slot(SLOT_MIN_BITS, index) };
        Some(BitReveal { index, proof: self.mht.prove(&label)? })
    }

    /// The §3.3 disclosure to provider `n`: for each route it advertised,
    /// the bit at that route's length ("To each N_i that has provided a
    /// route r_i to A, A now reveals the bit b_{|r_i|}").
    pub fn disclosure_for_provider(&self, n: Asn) -> Disclosure {
        let mut indices: Vec<u32> = self
            .inputs
            .get(&n)
            .into_iter()
            .flatten()
            .map(|sr| (sr.route.path_len() as u32).min(self.params.max_path_len as u32))
            .filter(|&i| i >= 1)
            .collect();
        indices.sort_unstable();
        indices.dedup();
        Disclosure {
            signed_root: Some(self.signed_root.clone()),
            bit_reveals: indices.iter().filter_map(|&i| self.reveal_bit(i)).collect(),
            exported: None,
            graph: Vec::new(),
        }
    }

    /// The §3.3 disclosure to the receiver `b`: "A also reveals all the
    /// bits b_i to B", plus the exported attested route for the graph's
    /// output to `b`.
    pub fn disclosure_for_receiver(&self, b: Asn) -> Disclosure {
        let reveals: Vec<BitReveal> =
            (1..=self.params.max_path_len as u32).filter_map(|i| self.reveal_bit(i)).collect();
        Disclosure {
            signed_root: Some(self.signed_root.clone()),
            bit_reveals: reveals,
            exported: self.export_route(b),
            graph: Vec::new(),
        }
    }

    /// The §3.2 existential disclosure to provider `n`: the single bit
    /// `b` with its opening ("A can reveal b and p to each N_i that has
    /// provided a route").
    pub fn existential_disclosure_for_provider(&self) -> Disclosure {
        Disclosure {
            signed_root: Some(self.signed_root.clone()),
            bit_reveals: self.reveal_bit(0).into_iter().collect(),
            exported: None,
            graph: Vec::new(),
        }
    }

    /// The §3.2 existential disclosure to the receiver.
    pub fn existential_disclosure_for_receiver(&self, b: Asn) -> Disclosure {
        Disclosure {
            signed_root: Some(self.signed_root.clone()),
            bit_reveals: self.reveal_bit(0).into_iter().collect(),
            exported: self.export_route(b),
            graph: Vec::new(),
        }
    }

    /// Builds the attested export of the graph's output variable for
    /// neighbor `b`: A prepends itself and extends the chosen input's
    /// attestation chain toward `b`.
    pub fn export_route(&self, b: Asn) -> Option<SignedRoute> {
        let (out_var, _) = self.graph.outputs().into_iter().find(|&(_, n)| n == b)?;
        let chosen = self.eval.single(out_var)?.clone();
        let out_route = chosen.propagated_by(Asn(self.identity.id() as u32));
        // Find the matching input's chain to extend.
        let source = chosen.path.first_as()?;
        let received = self
            .inputs
            .get(&source)?
            .iter()
            .find(|sr| sr.route.path == chosen.path && sr.route.prefix == chosen.prefix)?;
        if received.is_signed() {
            Some(SignedRoute::extend(received, &self.identity, out_route, b))
        } else {
            Some(SignedRoute::unsigned(out_route))
        }
    }

    /// A's identity (crate-internal: the adversary module signs extra
    /// artifacts with it).
    pub(crate) fn identity(&self) -> &Identity {
        &self.identity
    }

    /// Extends the chain of the route `n` provided toward `to` — used by
    /// adversaries that export a route other than the graph's output
    /// (the chain is genuine; only the *choice* violates the promise).
    pub(crate) fn export_input_route(&self, n: Asn, to: Asn) -> Option<SignedRoute> {
        let received = self.inputs.get(&n)?.first()?;
        let out_route = received.route.clone().propagated_by(Asn(self.identity.id() as u32));
        if received.is_signed() {
            Some(SignedRoute::extend(received, &self.identity, out_route, to))
        } else {
            Some(SignedRoute::unsigned(out_route))
        }
    }

    /// Graph-navigation disclosure for neighbor `n` under policy `α`
    /// (§3.7): every vertex with structure or content access yields a
    /// [`GraphReveal`] with exactly the authorized openings.
    pub fn graph_disclosure_for(&self, n: Asn, alpha: &AccessPolicy) -> Vec<GraphReveal> {
        let mut reveals = Vec::new();
        for v in self.graph.vars() {
            let access = alpha.access(n, VertexRef::Var(v.id));
            if !access.structure && !access.content {
                continue;
            }
            if let Some(r) =
                self.vertex_reveal(&Label::Var(v.id.0), access.structure, access.content)
            {
                reveals.push(r);
            }
        }
        for op in self.graph.ops() {
            let access = alpha.access(n, VertexRef::Op(op.id));
            if !access.structure && !access.content {
                continue;
            }
            if let Some(r) =
                self.vertex_reveal(&Label::Rule(op.id.0), access.structure, access.content)
            {
                reveals.push(r);
            }
        }
        reveals
    }

    fn vertex_reveal(&self, label: &Label, structure: bool, content: bool) -> Option<GraphReveal> {
        let proof = self.mht.prove(label)?;
        let openings = self.vertex_openings.get(label)?;
        Some(GraphReveal {
            proof,
            preds: structure.then(|| openings.preds.clone()),
            succs: structure.then(|| openings.succs.clone()),
            content: content.then(|| openings.content.clone()),
        })
    }
}

/// Builds the round MHT: bit slots + vertex records.
fn build_mht(
    graph: &RouteFlowGraph,
    eval: &Evaluation,
    bits: &[bool],
    exist: bool,
    rng: &mut HmacDrbg,
) -> (SparseMht, BTreeMap<Label, VertexOpenings>) {
    let mut items: Vec<(Label, Vec<u8>)> = Vec::new();
    // Bit slots (index 1-based to match the paper's b_1..b_k).
    items.push((Label::Slot(SLOT_EXIST, 0), bit_payload(exist, rng)));
    for (i, &b) in bits.iter().enumerate() {
        items.push((Label::Slot(SLOT_MIN_BITS, i as u32 + 1), bit_payload(b, rng)));
    }
    // Vertex records.
    let mut openings = BTreeMap::new();
    for v in graph.vars() {
        let label = Label::Var(v.id.0);
        let preds: Vec<Label> =
            graph.writer_of(v.id).map(|op| vec![Label::Rule(op.id.0)]).unwrap_or_default();
        let succs: Vec<Label> =
            graph.readers_of(v.id).iter().map(|op| Label::Rule(op.id.0)).collect();
        let content = VertexContent::Variable { routes: eval.value(v.id).to_vec() };
        let (record, opens) = make_record(&preds, &succs, &content, rng);
        items.push((label.clone(), record.to_wire()));
        openings.insert(label, opens);
    }
    for op in graph.ops() {
        let label = Label::Rule(op.id.0);
        let preds: Vec<Label> = op.inputs.iter().map(|v| Label::Var(v.0)).collect();
        let succs = vec![Label::Var(op.output.0)];
        let content = VertexContent::Operator { kind: op.kind.clone() };
        let (record, opens) = make_record(&preds, &succs, &content, rng);
        items.push((label.clone(), record.to_wire()));
        openings.insert(label, opens);
    }
    let mut seed = [0u8; 32];
    rng.generate(&mut seed);
    (SparseMht::build(&items, seed), openings)
}

/// Exposes MHT construction for the adversary module (which needs to
/// commit to *dishonest* bit vectors).
pub(crate) fn build_mht_for_adversary(
    graph: &RouteFlowGraph,
    eval: &Evaluation,
    bits: &[bool],
    exist: bool,
    rng: &mut HmacDrbg,
) -> (SparseMht, BTreeMap<Label, VertexOpenings>) {
    build_mht(graph, eval, bits, exist, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::Figure1Bed;

    #[test]
    fn committer_basics() {
        let bed = Figure1Bed::build(&[1, 2, 3], 42);
        let c = bed.honest_committer();
        // Root is signed by A and verifies.
        assert!(c.signed_root().verify(&bed.keys).is_ok());
        // Bits encode min = 1 (N1's route has path length 1).
        assert_eq!(crate::bits::claimed_min(c.bits()), Some(1));
    }

    #[test]
    fn provider_disclosure_contains_own_length_bit() {
        let bed = Figure1Bed::build(&[1, 3], 43);
        let c = bed.honest_committer();
        // N1's route has path length 1.
        let d = c.disclosure_for_provider(bed.ns[0]);
        assert_eq!(d.bit_reveals.len(), 1);
        assert_eq!(d.bit_reveals[0].index, 1);
        assert_eq!(d.bit_reveals[0].bit(), Some(true));
        assert!(d.bit_reveals[0].proof.verify(&c.signed_root().root));
        assert!(d.exported.is_none());
    }

    #[test]
    fn receiver_disclosure_has_all_bits_and_route() {
        let bed = Figure1Bed::build(&[2, 1], 44);
        let c = bed.honest_committer();
        let d = c.disclosure_for_receiver(bed.b);
        assert_eq!(d.bit_reveals.len(), c.params().max_path_len);
        for r in &d.bit_reveals {
            assert!(r.proof.verify(&c.signed_root().root), "bit {}", r.index);
        }
        let exported = d.exported.expect("route to B");
        // Exported route: A prepended to the shortest input (length 1).
        assert_eq!(exported.route.path_len(), 2);
        assert_eq!(exported.route.path.first_as(), Some(bed.a));
        assert!(exported.verify(bed.b, &bed.keys).is_ok());
    }

    #[test]
    fn existential_disclosures() {
        let bed = Figure1Bed::build(&[1], 45);
        let c = bed.honest_committer();
        let d = c.existential_disclosure_for_provider();
        assert_eq!(d.bit_reveals.len(), 1);
        assert_eq!(d.bit_reveals[0].index, 0);
        assert_eq!(d.bit_reveals[0].bit(), Some(true));
        let dr = c.existential_disclosure_for_receiver(bed.b);
        assert!(dr.exported.is_some());
    }

    #[test]
    fn reveal_unknown_bit_is_none() {
        let bed = Figure1Bed::build(&[1], 46);
        let c = bed.honest_committer();
        assert!(c.reveal_bit(999).is_none());
    }

    #[test]
    fn disclosure_wire_round_trip() {
        let bed = Figure1Bed::build(&[1, 2], 47);
        let c = bed.honest_committer();
        let d = c.disclosure_for_receiver(bed.b);
        let bytes = d.to_wire();
        let back: Disclosure = pvr_crypto::decode_exact(&bytes).unwrap();
        assert_eq!(back.bit_reveals, d.bit_reveals);
        assert_eq!(back.exported, d.exported);
        assert_eq!(back.signed_root, d.signed_root);
    }

    #[test]
    fn graph_disclosure_respects_alpha() {
        let bed = Figure1Bed::build(&[1, 2], 48);
        let c = bed.honest_committer();
        let everyone: Vec<Asn> = bed.ns.iter().copied().chain([bed.b]).collect();
        let alpha = AccessPolicy::paper_example(&bed.graph, &everyone);

        // B can navigate: it gets reveals for every vertex, with content
        // only for its output and the operator.
        let reveals = c.graph_disclosure_for(bed.b, &alpha);
        assert_eq!(reveals.len(), bed.graph.vars().count() + bed.graph.ops().count());
        let content_count = reveals.iter().filter(|r| r.content.is_some()).count();
        assert_eq!(content_count, 2, "output var + min operator");
        // All proofs bind to the same root.
        for r in &reveals {
            assert!(r.proof.verify(&c.signed_root().root));
        }

        // N1 gets content for its own input + the operator.
        let reveals = c.graph_disclosure_for(bed.ns[0], &alpha);
        let content_count = reveals.iter().filter(|r| r.content.is_some()).count();
        assert_eq!(content_count, 2, "own input + min operator");
    }

    #[test]
    fn bit_payload_parsing() {
        let mut rng = HmacDrbg::new(b"payload");
        let p = bit_payload(true, &mut rng);
        assert_eq!(parse_bit_payload(&p), Some(true));
        let p = bit_payload(false, &mut rng);
        assert_eq!(parse_bit_payload(&p), Some(false));
        assert_eq!(parse_bit_payload(&[2; 33]), None);
        assert_eq!(parse_bit_payload(&[0; 10]), None);
    }

    #[test]
    fn deterministic_commitment() {
        let bed1 = Figure1Bed::build(&[1, 2], 49);
        let bed2 = Figure1Bed::build(&[1, 2], 49);
        assert_eq!(
            bed1.honest_committer().signed_root().root,
            bed2.honest_committer().signed_root().root
        );
    }
}
