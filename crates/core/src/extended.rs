//! Protocol support for the rest of the §2 promise ladder.
//!
//! §3 constructs protocols for the existential and minimum operators
//! only; §4 ("More operators") leaves the rest as a challenge. This
//! module extends the same three building blocks (§3.4) to:
//!
//! * **Promise 3** — "I will give you a route no more than ε hops
//!   longer than my best route": the receiver reuses the §3.3 bit
//!   vector but accepts any export within `ε` of the committed minimum;
//! * **Promise 4** — "The route you get is no longer than what I tell
//!   anybody else": receivers gossip their *attested exports* (which
//!   standard BGP already reveals to each of them individually) and any
//!   pair showing a shorter route to someone else is self-contained
//!   evidence, exactly like equivocation.

use crate::evidence::{Suspicion, Verdict};
use crate::session::{Disclosure, PvrParams, RoundContext};
use crate::verify::Outcome;
use pvr_bgp::sbgp::SignedRoute;
use pvr_bgp::Asn;
use pvr_crypto::keys::KeyStore;
use std::collections::BTreeMap;

/// Receiver-side verification for promise 3: the exported route may be
/// up to `epsilon` hops longer than the committed minimum. `epsilon = 0`
/// degenerates to the §3.3 shortest-route check.
pub fn verify_as_receiver_with_epsilon(
    me: Asn,
    a: Asn,
    round: &RoundContext,
    params: &PvrParams,
    epsilon: usize,
    disclosure: &Disclosure,
    keys: &KeyStore,
) -> Outcome {
    // Run the strict check first; only the "too long" outcome is
    // relaxed by ε.
    let strict = crate::verify::verify_as_receiver(me, a, round, params, disclosure, keys);
    match &strict {
        Outcome::Accuse(crate::evidence::Evidence::ExportTooLong { reveal, exported, .. }) => {
            let core_len = exported.route.path_len().saturating_sub(1);
            if core_len <= reveal.index as usize + epsilon {
                Outcome::Accept
            } else {
                strict
            }
        }
        _ => strict,
    }
}

/// Transferable evidence for promise 4: A attested a strictly shorter
/// route to `favored` than to `disfavored` in the same round. Both
/// attestations carry A's signature, so the pair convinces any third
/// party — no trust in either receiver needed.
#[derive(Clone, Debug)]
pub struct UnequalExportsEvidence {
    /// The export A attested to the disfavored receiver (longer).
    pub to_disfavored: SignedRoute,
    /// The disfavored receiver.
    pub disfavored: Asn,
    /// The export A attested to the favored receiver (strictly shorter).
    pub to_favored: SignedRoute,
    /// The favored receiver.
    pub favored: Asn,
}

impl UnequalExportsEvidence {
    /// Third-party judgment: both top attestations by `accused` valid,
    /// same prefix, favored strictly shorter ⟹ guilty.
    pub fn judge(&self, accused: Asn, round: &RoundContext, keys: &KeyStore) -> Verdict {
        for (sr, receiver) in
            [(&self.to_disfavored, self.disfavored), (&self.to_favored, self.favored)]
        {
            if sr.route.prefix != round.prefix {
                return Verdict::Rejected("export is for another prefix");
            }
            if sr.route.path.first_as() != Some(accused) {
                return Verdict::Rejected("export does not start at the accused");
            }
            let Some(top) = sr.chain().newest() else {
                return Verdict::Rejected("export carries no attestation");
            };
            if top.signer != accused
                || top.target != receiver
                || top.path.asns() != sr.route.path.asns()
                || top.prefix != sr.route.prefix
            {
                return Verdict::Rejected("top attestation does not cover this export");
            }
            if top.verify(keys).is_err() {
                return Verdict::Rejected("top attestation signature invalid");
            }
        }
        if self.favored == self.disfavored {
            return Verdict::Rejected("same receiver on both sides");
        }
        if self.to_favored.route.path_len() < self.to_disfavored.route.path_len() {
            Verdict::Guilty
        } else {
            Verdict::Rejected("favored route is not shorter")
        }
    }
}

/// Promise-4 gossip check: each receiver contributes the export A
/// attested to it; any receiver whose route is longer than another's
/// obtains [`UnequalExportsEvidence`]. Returns evidence for the first
/// (disfavored, favored) pair found, from the perspective of `me`.
pub fn cross_check_exports(
    me: Asn,
    my_export: &SignedRoute,
    others: &BTreeMap<Asn, SignedRoute>,
) -> Option<UnequalExportsEvidence> {
    let my_len = my_export.route.path_len();
    for (&other, sr) in others {
        if other == me {
            continue;
        }
        if sr.route.path_len() < my_len {
            return Some(UnequalExportsEvidence {
                to_disfavored: my_export.clone(),
                disfavored: me,
                to_favored: sr.clone(),
                favored: other,
            });
        }
    }
    None
}

/// Receiver outcome for promise 4 on top of the per-receiver §3.3
/// checks: verify own disclosure strictly, then cross-check exports.
pub fn verify_promise4(
    me: Asn,
    a: Asn,
    round: &RoundContext,
    params: &PvrParams,
    disclosure: &Disclosure,
    others_exports: &BTreeMap<Asn, SignedRoute>,
    keys: &KeyStore,
) -> (Outcome, Option<UnequalExportsEvidence>) {
    let own = crate::verify::verify_as_receiver(me, a, round, params, disclosure, keys);
    let cross = match &disclosure.exported {
        Some(mine) => cross_check_exports(me, mine, others_exports),
        None => {
            // Receiving nothing while someone else received a route is
            // the "infinitely long" case: detectable but (like other
            // omissions) only as suspicion from this receiver's side —
            // the favored receiver's evidence does the convicting.
            if !others_exports.is_empty() {
                return (Outcome::Suspect(Suspicion::WithheldExport { index: 0 }), None);
            }
            None
        }
    };
    (own, cross)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::Figure1Bed;

    /// Builds the export A would attest when choosing `provider_index`'s
    /// route, toward receiver `to` (for building promise-3/4 scenarios).
    fn export_via(bed: &Figure1Bed, provider_index: usize, to: Asn) -> SignedRoute {
        let n = bed.ns[provider_index];
        let received = bed.input_of(n);
        let out = received.route.clone().propagated_by(bed.a);
        SignedRoute::extend(received, bed.a_identity(), out, to)
    }

    #[test]
    fn epsilon_relaxes_strictness_exactly() {
        // Min is 2; a 3-hop export violates ε=0 but passes ε=1.
        let bed = Figure1Bed::build(&[2, 3], 201);
        let c = bed.honest_committer();
        let mut d = c.disclosure_for_receiver(bed.b);
        d.exported = Some(export_via(&bed, 1, bed.b)); // core length 3
        let strict = verify_as_receiver_with_epsilon(
            bed.b,
            bed.a,
            &bed.round,
            &bed.params,
            0,
            &d,
            &bed.keys,
        );
        assert!(!strict.is_accept(), "{strict:?}");
        let relaxed = verify_as_receiver_with_epsilon(
            bed.b,
            bed.a,
            &bed.round,
            &bed.params,
            1,
            &d,
            &bed.keys,
        );
        assert!(relaxed.is_accept(), "{relaxed:?}");
    }

    #[test]
    fn epsilon_still_catches_gross_violations() {
        // Min is 2; a 6-hop export exceeds ε=1.
        let bed = Figure1Bed::build(&[2, 6], 202);
        let c = bed.honest_committer();
        let mut d = c.disclosure_for_receiver(bed.b);
        d.exported = Some(export_via(&bed, 1, bed.b)); // core length 6
        let o = verify_as_receiver_with_epsilon(
            bed.b,
            bed.a,
            &bed.round,
            &bed.params,
            1,
            &d,
            &bed.keys,
        );
        assert!(!o.is_accept());
        assert_eq!(o.evidence().map(|e| e.kind()), Some("export-too-long"));
    }

    #[test]
    fn epsilon_does_not_mask_other_violations() {
        // Equivocation-adjacent faults (bad root etc.) stay caught.
        let bed = Figure1Bed::build(&[2, 3], 203);
        let c = bed.honest_committer();
        let mut d = c.disclosure_for_receiver(bed.b);
        d.signed_root = None;
        let o = verify_as_receiver_with_epsilon(
            bed.b,
            bed.a,
            &bed.round,
            &bed.params,
            5,
            &d,
            &bed.keys,
        );
        assert!(!o.is_accept());
    }

    #[test]
    fn promise4_unequal_exports_convict() {
        let bed = Figure1Bed::build(&[2, 4], 204);
        let b2 = Asn(300);
        // A sends B the long route and B2 the short one.
        let to_b = export_via(&bed, 1, bed.b); // 4+1 hops
        let to_b2 = export_via(&bed, 0, b2); // 2+1 hops
        let mut others = BTreeMap::new();
        others.insert(b2, to_b2);
        let ev = cross_check_exports(bed.b, &to_b, &others).expect("B is disfavored");
        assert_eq!(ev.judge(bed.a, &bed.round, &bed.keys), Verdict::Guilty);
    }

    #[test]
    fn promise4_equal_exports_are_clean() {
        let bed = Figure1Bed::build(&[2, 4], 205);
        let b2 = Asn(300);
        let to_b = export_via(&bed, 0, bed.b);
        let to_b2 = export_via(&bed, 0, b2);
        let mut others = BTreeMap::new();
        others.insert(b2, to_b2);
        assert!(cross_check_exports(bed.b, &to_b, &others).is_none());
    }

    #[test]
    fn promise4_forged_evidence_rejected() {
        // An accuser cannot fabricate the favored route: its top
        // attestation must be A's valid signature for that receiver.
        let bed = Figure1Bed::build(&[2, 4], 206);
        let b2 = Asn(300);
        let to_b = export_via(&bed, 1, bed.b);
        let mut forged = export_via(&bed, 0, b2);
        // Tamper with the attested path (shorten it further).
        forged.route.path = pvr_bgp::AsPath::from_slice(&[bed.a]);
        let ev = UnequalExportsEvidence {
            to_disfavored: to_b,
            disfavored: bed.b,
            to_favored: forged,
            favored: b2,
        };
        assert!(matches!(ev.judge(bed.a, &bed.round, &bed.keys), Verdict::Rejected(_)));
    }

    #[test]
    fn promise4_same_receiver_rejected() {
        let bed = Figure1Bed::build(&[2, 4], 207);
        let to_b = export_via(&bed, 1, bed.b);
        let to_b_short = export_via(&bed, 0, bed.b);
        let ev = UnequalExportsEvidence {
            to_disfavored: to_b,
            disfavored: bed.b,
            to_favored: to_b_short,
            favored: bed.b,
        };
        assert!(matches!(ev.judge(bed.a, &bed.round, &bed.keys), Verdict::Rejected(_)));
    }

    #[test]
    fn promise4_full_flow() {
        let bed = Figure1Bed::build(&[2, 4], 208);
        let b2 = Asn(300);
        let c = bed.honest_committer();
        // Disfavored B gets the longer route in its disclosure.
        let mut d = c.disclosure_for_receiver(bed.b);
        d.exported = Some(export_via(&bed, 1, bed.b));
        let mut others = BTreeMap::new();
        others.insert(b2, export_via(&bed, 0, b2));
        let (own, cross) =
            verify_promise4(bed.b, bed.a, &bed.round, &bed.params, &d, &others, &bed.keys);
        // Own §3.3 check already catches the non-minimal export…
        assert!(!own.is_accept());
        // …and the cross-check independently yields promise-4 evidence.
        let ev = cross.expect("cross evidence");
        assert_eq!(ev.judge(bed.a, &bed.round, &bed.keys), Verdict::Guilty);
    }

    #[test]
    fn promise4_withheld_export_is_suspicion() {
        let bed = Figure1Bed::build(&[2, 4], 209);
        let b2 = Asn(300);
        let c = bed.honest_committer();
        let mut d = c.disclosure_for_receiver(bed.b);
        d.exported = None;
        let mut others = BTreeMap::new();
        others.insert(b2, export_via(&bed, 0, b2));
        let (own, cross) =
            verify_promise4(bed.b, bed.a, &bed.round, &bed.params, &d, &others, &bed.keys);
        assert!(matches!(own, Outcome::Suspect(_)));
        assert!(cross.is_none());
    }
}
