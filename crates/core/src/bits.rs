//! The bit-vector encodings of §3.2 and §3.3.
//!
//! Existential operator (§3.2): a single bit `b`, "set to 1 whenever A
//! has received at least one route".
//!
//! Minimum operator (§3.3): "Suppose the maximum AS-path length at A is
//! k. Then we can ask A to compute k bits b_1, …, b_k, such that
//! b_i = 1 iff at least one of the input routes has a path length of i
//! or less."
//!
//! The construction's privacy property (exercised by experiment E7): the
//! honest vector is the *monotone closure of the minimum* — it depends
//! only on the shortest input length, so revealing all bits to `B`
//! discloses nothing beyond the route `B` receives anyway, and
//! revealing `b_{|r_i|}` to `N_i` only confirms what §2.3 calls
//! information "already revealed by standard BGP".

use pvr_bgp::Route;

/// The single existential bit of §3.2.
pub fn existential_bit(inputs: &[&Route]) -> bool {
    !inputs.is_empty()
}

/// The §3.3 bit vector: `bits[i-1] = b_i = 1 ⟺ ∃ input with path length
/// ≤ i`, for `i` in `1..=max_len`.
///
/// Routes longer than `max_len` still make the vector well-defined (they
/// set no bit); the committing network's `max_len` must be at least its
/// longest input for the protocol to be complete, mirroring the paper's
/// "maximum AS-path length at A".
pub fn min_bit_vector(inputs: &[&Route], max_len: usize) -> Vec<bool> {
    let min = inputs.iter().map(|r| r.path_len()).min();
    (1..=max_len)
        .map(|i| match min {
            Some(m) => m <= i,
            None => false,
        })
        .collect()
}

/// The index `i` (1-based) of the first set bit, i.e. the shortest input
/// length the vector claims — what `B` must compare the exported route
/// against.
pub fn claimed_min(bits: &[bool]) -> Option<usize> {
    bits.iter().position(|&b| b).map(|p| p + 1)
}

/// Checks the §3.3 monotonicity condition `B` enforces: "if some b_i is
/// set to 1, then all the b_j, j > i, must also be set to 1". Returns
/// the violating index pair on failure.
pub fn check_monotone(bits: &[bool]) -> Result<(), (usize, usize)> {
    let mut first_one = None;
    for (idx, &b) in bits.iter().enumerate() {
        match (first_one, b) {
            (None, true) => first_one = Some(idx),
            (Some(lo), false) => return Err((lo + 1, idx + 1)),
            _ => {}
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use pvr_bgp::{AsPath, Asn, Prefix};

    fn route(len: usize) -> Route {
        let mut r = Route::originate(Prefix::parse("10.0.0.0/8").unwrap());
        r.path = AsPath::from_slice(&(0..len).map(|i| Asn(i as u32 + 1)).collect::<Vec<_>>());
        r
    }

    #[test]
    fn existential_bit_basic() {
        assert!(!existential_bit(&[]));
        let r = route(2);
        assert!(existential_bit(&[&r]));
    }

    #[test]
    fn vector_is_monotone_closure_of_min() {
        let r3 = route(3);
        let r5 = route(5);
        let bits = min_bit_vector(&[&r3, &r5], 8);
        assert_eq!(bits, vec![false, false, true, true, true, true, true, true]);
        assert_eq!(claimed_min(&bits), Some(3));
        assert!(check_monotone(&bits).is_ok());
    }

    #[test]
    fn empty_inputs_give_zero_vector() {
        let bits = min_bit_vector(&[], 5);
        assert_eq!(bits, vec![false; 5]);
        assert_eq!(claimed_min(&bits), None);
        assert!(check_monotone(&bits).is_ok());
    }

    #[test]
    fn privacy_vector_depends_only_on_min() {
        // The paper's confidentiality hinges on this: {3,5} and {3,9,12}
        // (truncated at max_len) produce identical vectors.
        let a = [route(3), route(5)];
        let b = [route(3), route(9), route(12)];
        let va = min_bit_vector(&a.iter().collect::<Vec<_>>(), 16);
        let vb = min_bit_vector(&b.iter().collect::<Vec<_>>(), 16);
        assert_eq!(va, vb);
    }

    #[test]
    fn zero_length_local_route_sets_all_bits() {
        // A locally originated route (0 hops) is ≤ every i ≥ 1.
        let r = route(0);
        let bits = min_bit_vector(&[&r], 4);
        assert_eq!(bits, vec![true; 4]);
        assert_eq!(claimed_min(&bits), Some(1));
    }

    #[test]
    fn route_longer_than_max_len_sets_nothing() {
        let r = route(10);
        let bits = min_bit_vector(&[&r], 4);
        assert_eq!(bits, vec![false; 4]);
    }

    #[test]
    fn monotonicity_violations_detected() {
        assert_eq!(check_monotone(&[false, true, false, true]), Err((2, 3)));
        assert_eq!(check_monotone(&[true, false]), Err((1, 2)));
        assert!(check_monotone(&[false, false]).is_ok());
        assert!(check_monotone(&[true, true]).is_ok());
        assert!(check_monotone(&[]).is_ok());
    }

    proptest! {
        #[test]
        fn prop_honest_vectors_are_monotone(lens in proptest::collection::vec(0usize..20, 0..6),
                                            max_len in 1usize..24) {
            let routes: Vec<Route> = lens.iter().map(|&l| route(l)).collect();
            let refs: Vec<&Route> = routes.iter().collect();
            let bits = min_bit_vector(&refs, max_len);
            prop_assert!(check_monotone(&bits).is_ok());
        }

        #[test]
        fn prop_claimed_min_matches_actual(lens in proptest::collection::vec(1usize..12, 1..6)) {
            let routes: Vec<Route> = lens.iter().map(|&l| route(l)).collect();
            let refs: Vec<&Route> = routes.iter().collect();
            let bits = min_bit_vector(&refs, 16);
            prop_assert_eq!(claimed_min(&bits), lens.iter().min().copied());
        }

        #[test]
        fn prop_bit_at_own_length_is_set(lens in proptest::collection::vec(1usize..12, 1..6)) {
            // The N_i check: every provider's own length bit must be 1.
            let routes: Vec<Route> = lens.iter().map(|&l| route(l)).collect();
            let refs: Vec<&Route> = routes.iter().collect();
            let bits = min_bit_vector(&refs, 16);
            for &l in &lens {
                prop_assert!(bits[l - 1], "bit at length {} must be set", l);
            }
        }
    }
}
