//! Byzantine committers.
//!
//! The paper's threat model (§3): "We adopt a conservative threat model
//! and assume that an unknown subset of the networks is Byzantine and
//! can behave arbitrarily." This module implements the concrete attack
//! strategies the protocol must catch, each mapped to the check that
//! catches it:
//!
//! | misbehavior            | caught by             | via                      |
//! |------------------------|-----------------------|--------------------------|
//! | `ExportLonger`         | B                     | `ExportTooLong` evidence |
//! | `SuppressInput`        | the victim N_i        | `IgnoredInput` evidence  |
//! | `DenyAll`              | every providing N_i   | `IgnoredInput` evidence  |
//! | `Equivocate`           | gossip (any neighbor) | `Equivocation` evidence  |
//! | `NonMonotoneBits`      | B                     | `NonMonotone` evidence   |
//! | `FabricateExport`      | B                     | `FabricatedExport`       |
//! | `RefuseReveal`         | the victim N_i        | suspicion (no evidence)  |
//! | `CorruptOpening`       | the victim N_i        | suspicion (no evidence)  |
//!
//! Colluding networks share state instantaneously per the threat model;
//! collusion scenarios are exercised in the integration tests.

use crate::session::{
    build_mht_for_adversary, BitReveal, Committer, Disclosure, PvrParams, RoundContext,
};
use pvr_bgp::sbgp::{Attestation, SignedRoute};
use pvr_bgp::Asn;
use pvr_crypto::drbg::HmacDrbg;
use pvr_crypto::keys::Identity;
use pvr_mht::SignedRoot;
use pvr_rfg::RouteFlowGraph;
use std::collections::BTreeMap;

/// The attack strategy a Byzantine A executes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Misbehavior {
    /// Commit truthful bits but export the *longest* input to B
    /// (economic lie: steer traffic to a preferred upstream).
    ExportLonger,
    /// Pretend `victim`'s route was never received: bits, evaluation,
    /// and export all computed without it.
    SuppressInput {
        /// The provider whose route is suppressed.
        victim: Asn,
    },
    /// Pretend no route was received at all.
    DenyAll,
    /// Show B a view with `victim` suppressed while showing the honest
    /// view to the providers — each individual check passes; only the
    /// §3.6 gossip catches the two signed roots.
    Equivocate {
        /// The provider suppressed in B's view.
        victim: Asn,
    },
    /// Commit a bit vector that is not monotone (a malformed lie).
    NonMonotoneBits,
    /// Export a route whose inner attestation chain is forged.
    FabricateExport,
    /// Run honestly but refuse to reveal the victim's bit.
    RefuseReveal {
        /// The provider who receives no reveal.
        victim: Asn,
    },
    /// Run honestly but corrupt the opening sent to the victim.
    CorruptOpening {
        /// The provider who receives a corrupted reveal.
        victim: Asn,
    },
}

/// Compile-time completeness guard for [`Misbehavior::catalog`]: adding
/// a variant is a build error here until the catalog learns about it,
/// so a new attack can never silently skip the detection-matrix tests.
const _: fn(&Misbehavior) = |m| match m {
    Misbehavior::ExportLonger
    | Misbehavior::SuppressInput { .. }
    | Misbehavior::DenyAll
    | Misbehavior::Equivocate { .. }
    | Misbehavior::NonMonotoneBits
    | Misbehavior::FabricateExport
    | Misbehavior::RefuseReveal { .. }
    | Misbehavior::CorruptOpening { .. } => {}
};

impl Misbehavior {
    /// Every strategy in the catalog, with `victim` as the target of the
    /// victim-parameterized variants. For the targeted suppressions to
    /// count as promise violations, `victim` should hold the unique
    /// minimum route (see `properties.rs` for why suppressing a longer
    /// route violates nothing).
    pub fn catalog(victim: Asn) -> Vec<Misbehavior> {
        vec![
            Misbehavior::ExportLonger,
            Misbehavior::SuppressInput { victim },
            Misbehavior::DenyAll,
            Misbehavior::Equivocate { victim },
            Misbehavior::NonMonotoneBits,
            Misbehavior::FabricateExport,
            Misbehavior::RefuseReveal { victim },
            Misbehavior::CorruptOpening { victim },
        ]
    }

    /// A short stable label for tables and campaign rows.
    pub fn label(&self) -> &'static str {
        match self {
            Misbehavior::ExportLonger => "export-longer",
            Misbehavior::SuppressInput { .. } => "suppress-input",
            Misbehavior::DenyAll => "deny-all",
            Misbehavior::Equivocate { .. } => "equivocate",
            Misbehavior::NonMonotoneBits => "non-monotone-bits",
            Misbehavior::FabricateExport => "fabricate-export",
            Misbehavior::RefuseReveal { .. } => "refuse-reveal",
            Misbehavior::CorruptOpening { .. } => "corrupt-opening",
        }
    }
}

/// A Byzantine committer: produces per-neighbor roots and disclosures
/// according to its strategy.
pub struct Adversary {
    behavior: Misbehavior,
    /// The view shown to the receiver B.
    main: Committer,
    /// The view shown to providers (differs only under `Equivocate`).
    provider_view: Option<Committer>,
    /// Ground-truth inputs (for indexing reveals even when the doctored
    /// view dropped them).
    true_inputs: BTreeMap<Asn, Vec<SignedRoute>>,
    receiver: Asn,
}

impl Adversary {
    /// Builds the adversary's state for one round.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        identity: &Identity,
        round: RoundContext,
        params: PvrParams,
        graph: RouteFlowGraph,
        inputs: BTreeMap<Asn, Vec<SignedRoute>>,
        bit_scope: &[Asn],
        receiver: Asn,
        behavior: Misbehavior,
        rng: &mut HmacDrbg,
    ) -> Adversary {
        let doctored = |victim: Asn| {
            let mut d = inputs.clone();
            d.remove(&victim);
            d
        };
        let (main, provider_view) = match &behavior {
            Misbehavior::ExportLonger
            | Misbehavior::RefuseReveal { .. }
            | Misbehavior::CorruptOpening { .. }
            | Misbehavior::FabricateExport => (
                Committer::new(identity, round, params, graph, inputs.clone(), bit_scope, rng),
                None,
            ),
            Misbehavior::SuppressInput { victim } => (
                Committer::new(identity, round, params, graph, doctored(*victim), bit_scope, rng),
                None,
            ),
            Misbehavior::DenyAll => (
                Committer::new(identity, round, params, graph, BTreeMap::new(), bit_scope, rng),
                None,
            ),
            Misbehavior::Equivocate { victim } => {
                let for_b = Committer::new(
                    identity,
                    round.clone(),
                    params,
                    graph.clone(),
                    doctored(*victim),
                    bit_scope,
                    rng,
                );
                let for_providers =
                    Committer::new(identity, round, params, graph, inputs.clone(), bit_scope, rng);
                (for_b, Some(for_providers))
            }
            Misbehavior::NonMonotoneBits => {
                // Commit a hand-crafted non-monotone vector: truthful
                // evaluation, lying bits (1 at the true min, then 0s).
                let honest = Committer::new(
                    identity,
                    round.clone(),
                    params,
                    graph.clone(),
                    inputs.clone(),
                    bit_scope,
                    rng,
                );
                let mut bits = honest.bits().to_vec();
                if let Some(first_one) = bits.iter().position(|&b| b) {
                    for b in bits.iter_mut().skip(first_one + 1) {
                        *b = false;
                    }
                } else if bits.len() >= 2 {
                    bits[0] = true; // fabricate 1,0,…
                }
                let (mht, openings) = build_mht_for_adversary(
                    &graph,
                    honest.evaluation(),
                    &bits,
                    bits.iter().any(|&b| b),
                    rng,
                );
                let signed_root =
                    SignedRoot::create(identity, round.context_bytes(), round.epoch, mht.root());
                let c = Committer::from_parts(
                    identity.clone(),
                    params,
                    round,
                    graph,
                    honest.evaluation().clone(),
                    inputs.clone(),
                    bits,
                    mht,
                    openings,
                    signed_root,
                );
                (c, None)
            }
        };
        Adversary { behavior, main, provider_view, true_inputs: inputs, receiver }
    }

    /// The strategy in play.
    pub fn behavior(&self) -> &Misbehavior {
        &self.behavior
    }

    /// The signed root shown to neighbor `n`.
    pub fn root_for(&self, n: Asn) -> &SignedRoot {
        if n == self.receiver {
            self.main.signed_root()
        } else {
            self.provider_view
                .as_ref()
                .map(|c| c.signed_root())
                .unwrap_or_else(|| self.main.signed_root())
        }
    }

    /// The view backing neighbor `n`'s disclosures.
    fn view_for(&self, n: Asn) -> &Committer {
        if n == self.receiver {
            &self.main
        } else {
            self.provider_view.as_ref().unwrap_or(&self.main)
        }
    }

    /// The disclosure sent to provider `n`.
    pub fn disclosure_for_provider(&self, n: Asn) -> Disclosure {
        let view = self.view_for(n);
        match &self.behavior {
            Misbehavior::RefuseReveal { victim } if *victim == n => {
                Disclosure { signed_root: Some(view.signed_root().clone()), ..Default::default() }
            }
            Misbehavior::CorruptOpening { victim } if *victim == n => {
                let mut d = self.reveal_true_lengths(view, n);
                for r in &mut d.bit_reveals {
                    // Flip the committed bit byte: the proof no longer
                    // verifies, which the victim reports as suspicion.
                    if !r.proof.payload.is_empty() {
                        r.proof.payload[0] ^= 1;
                    }
                }
                d
            }
            // Views that dropped the provider's route still must answer
            // its query: reveal the bit at the *true* route length.
            Misbehavior::SuppressInput { .. }
            | Misbehavior::DenyAll
            | Misbehavior::Equivocate { .. } => self.reveal_true_lengths(view, n),
            _ => view.disclosure_for_provider(n),
        }
    }

    /// The disclosure sent to the receiver.
    pub fn disclosure_for_receiver(&self) -> Disclosure {
        let b = self.receiver;
        match &self.behavior {
            Misbehavior::ExportLonger => {
                let mut d = self.main.disclosure_for_receiver(b);
                // Swap the export for the longest input's route.
                let longest = self
                    .true_inputs
                    .iter()
                    .flat_map(|(&n, srs)| srs.iter().map(move |sr| (n, sr.route.path_len())))
                    .max_by_key(|&(_, len)| len)
                    .map(|(n, _)| n);
                d.exported = longest.and_then(|n| self.main.export_input_route(n, b));
                d
            }
            Misbehavior::FabricateExport => {
                let mut d = self.main.disclosure_for_receiver(b);
                // Forge a short route "via" the first provider with a
                // fabricated inner chain: only A's own attestation is
                // genuine.
                if let Some((&n, _)) = self.true_inputs.iter().next() {
                    let a = Asn(self.main.identity().id() as u32);
                    let mut fake = pvr_bgp::Route::originate(self.main.round().prefix);
                    fake.path = fake.path.prepend(n).prepend(a);
                    let top = Attestation::create(self.main.identity(), fake.prefix, &fake.path, b);
                    // Inner attestation forged: self-signed with A's key
                    // instead of n's (signature check will fail for n).
                    let mut inner = top.clone();
                    inner.signer = n;
                    inner.path = fake.path.clone(); // wrong path too
                    let chain = pvr_bgp::AttestationChain::from_attestations(vec![inner, top]);
                    d.exported = Some(SignedRoute::with_chain(fake, chain));
                }
                d
            }
            _ => self.main.disclosure_for_receiver(b),
        }
    }

    /// Reveals, from `view`, the bits at `n`'s *true* route lengths.
    fn reveal_true_lengths(&self, view: &Committer, n: Asn) -> Disclosure {
        let mut indices: Vec<u32> = self
            .true_inputs
            .get(&n)
            .into_iter()
            .flatten()
            .map(|sr| (sr.route.path_len() as u32).min(view.params().max_path_len as u32))
            .filter(|&i| i >= 1)
            .collect();
        indices.sort_unstable();
        indices.dedup();
        Disclosure {
            signed_root: Some(view.signed_root().clone()),
            bit_reveals: indices
                .iter()
                .filter_map(|&i| view.reveal_bit(i))
                .collect::<Vec<BitReveal>>(),
            exported: None,
            graph: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::Figure1Bed;

    fn adversary(bed: &Figure1Bed, behavior: Misbehavior) -> Adversary {
        let mut rng = HmacDrbg::from_u64_labeled(bed.seed, "adversary");
        Adversary::new(
            bed.a_identity(),
            bed.round.clone(),
            bed.params,
            bed.graph.clone(),
            bed.inputs.clone(),
            &bed.ns,
            bed.b,
            behavior,
            &mut rng,
        )
    }

    #[test]
    fn export_longer_swaps_export() {
        let bed = Figure1Bed::build(&[2, 5], 51);
        let adv = adversary(&bed, Misbehavior::ExportLonger);
        let d = adv.disclosure_for_receiver();
        // Exported the length-5 route (+1 for A's prepend).
        assert_eq!(d.exported.unwrap().route.path_len(), 6);
    }

    #[test]
    fn suppress_input_zeroes_victims_bit() {
        let bed = Figure1Bed::build(&[2, 4], 52);
        let victim = bed.ns[0];
        let adv = adversary(&bed, Misbehavior::SuppressInput { victim });
        let d = adv.disclosure_for_provider(victim);
        assert_eq!(d.bit_reveals.len(), 1);
        assert_eq!(d.bit_reveals[0].index, 2);
        assert_eq!(d.bit_reveals[0].bit(), Some(false), "victim's bit denied");
        // The other provider's bit is honest.
        let d2 = adv.disclosure_for_provider(bed.ns[1]);
        assert_eq!(d2.bit_reveals[0].bit(), Some(true));
    }

    #[test]
    fn equivocate_shows_two_roots() {
        let bed = Figure1Bed::build(&[2, 4], 53);
        let victim = bed.ns[0];
        let adv = adversary(&bed, Misbehavior::Equivocate { victim });
        assert_ne!(adv.root_for(bed.b).root, adv.root_for(victim).root);
        assert_eq!(adv.root_for(victim).root, adv.root_for(bed.ns[1]).root);
        // Both roots are genuinely signed (that is the point).
        assert!(adv.root_for(bed.b).verify(&bed.keys).is_ok());
        assert!(adv.root_for(victim).verify(&bed.keys).is_ok());
    }

    #[test]
    fn refuse_reveal_gives_empty_disclosure() {
        let bed = Figure1Bed::build(&[2, 4], 54);
        let victim = bed.ns[1];
        let adv = adversary(&bed, Misbehavior::RefuseReveal { victim });
        assert!(adv.disclosure_for_provider(victim).bit_reveals.is_empty());
        assert!(!adv.disclosure_for_provider(bed.ns[0]).bit_reveals.is_empty());
    }

    #[test]
    fn corrupt_opening_breaks_proof() {
        let bed = Figure1Bed::build(&[2], 55);
        let victim = bed.ns[0];
        let adv = adversary(&bed, Misbehavior::CorruptOpening { victim });
        let d = adv.disclosure_for_provider(victim);
        let root = adv.root_for(victim);
        assert!(!d.bit_reveals[0].proof.verify(&root.root));
    }

    #[test]
    fn deny_all_zeroes_everything() {
        let bed = Figure1Bed::build(&[2, 3], 56);
        let adv = adversary(&bed, Misbehavior::DenyAll);
        for &n in &bed.ns {
            let d = adv.disclosure_for_provider(n);
            assert_eq!(d.bit_reveals[0].bit(), Some(false), "{n}");
        }
        assert!(adv.disclosure_for_receiver().exported.is_none());
    }

    #[test]
    fn fabricate_export_has_bad_inner_chain() {
        let bed = Figure1Bed::build(&[3, 4], 57);
        let adv = adversary(&bed, Misbehavior::FabricateExport);
        let d = adv.disclosure_for_receiver();
        let sr = d.exported.unwrap();
        assert!(sr.verify(bed.b, &bed.keys).is_err(), "chain must be forged");
        // But A's own top attestation is valid.
        let top = sr.chain().newest().unwrap();
        assert!(top.verify(&bed.keys).is_ok());
    }
}
