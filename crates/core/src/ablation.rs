//! Ablations of the paper's design choices (printed by experiment E11).
//!
//! The §3.3 bit-vector construction looks roundabout — why not simply
//! commit to each received route's length and open them all to B? This
//! module implements that **naive variant** so the privacy difference
//! is measurable rather than asserted: the naive protocol verifies the
//! same promise but leaks the *full multiset of path lengths* (and
//! which neighbor supplied which) to B, while the paper's construction
//! reveals only the minimum B already learns from the route itself.
//!
//! Experiment E11 in the harness compares leakage and message sizes.

use crate::session::RoundContext;
use pvr_bgp::sbgp::SignedRoute;
use pvr_bgp::Asn;
use pvr_crypto::commit::{commit, verify as verify_commitment, Commitment, Opening};
use pvr_crypto::drbg::HmacDrbg;
use pvr_crypto::keys::{Identity, KeyStore};
use pvr_crypto::Wire;
use pvr_mht::SignedRoot;
use std::collections::BTreeMap;

/// Commitment tag for naive per-route length commitments.
const TAG: &[u8] = b"pvr.ablation.naive-len";

/// The naive committer: one commitment per (provider, route length).
pub struct NaiveCommitter {
    round: RoundContext,
    commitments: BTreeMap<Asn, Commitment>,
    openings: BTreeMap<Asn, Opening>,
    exported: Option<SignedRoute>,
    signed_root: SignedRoot,
}

impl NaiveCommitter {
    /// Commits to every provider's route length individually.
    pub fn new(
        identity: &Identity,
        round: RoundContext,
        inputs: &BTreeMap<Asn, Vec<SignedRoute>>,
        receiver: Asn,
        rng: &mut HmacDrbg,
    ) -> NaiveCommitter {
        let mut commitments = BTreeMap::new();
        let mut openings = BTreeMap::new();
        for (&n, srs) in inputs {
            if let Some(sr) = srs.first() {
                let len = sr.route.path_len() as u32;
                let (c, o) = commit(TAG, &len.to_be_bytes(), rng);
                commitments.insert(n, c);
                openings.insert(n, o);
            }
        }
        // "Root" = hash over all commitments, signed (flat, no tree).
        let mut buf = Vec::new();
        for (n, c) in &commitments {
            n.encode(&mut buf);
            c.encode(&mut buf);
        }
        let root = pvr_crypto::sha256(&buf);
        let signed_root = SignedRoot::create(identity, round.context_bytes(), round.epoch, root);

        // Export the true minimum, chain-extended.
        let exported = inputs
            .values()
            .filter_map(|srs| srs.first())
            .min_by_key(|sr| (sr.route.path_len(), sr.route.path.asns().to_vec()))
            .map(|sr| {
                let out = sr.route.clone().propagated_by(Asn(identity.id() as u32));
                SignedRoute::extend(sr, identity, out, receiver)
            });
        NaiveCommitter { round, commitments, openings, exported, signed_root }
    }

    /// The signed flat-commitment root.
    pub fn signed_root(&self) -> &SignedRoot {
        &self.signed_root
    }

    /// The naive disclosure to B: **all** openings — this is the leak.
    pub fn disclosure_for_receiver(&self) -> NaiveDisclosure {
        NaiveDisclosure {
            signed_root: self.signed_root.clone(),
            commitments: self.commitments.clone(),
            openings: self.openings.clone(),
            exported: self.exported.clone(),
        }
    }

    /// The round context.
    pub fn round(&self) -> &RoundContext {
        &self.round
    }
}

/// The naive receiver disclosure.
#[derive(Clone, Debug)]
pub struct NaiveDisclosure {
    /// Signed flat root.
    pub signed_root: SignedRoot,
    /// Per-provider commitments.
    pub commitments: BTreeMap<Asn, Commitment>,
    /// Openings for every provider — the leak.
    pub openings: BTreeMap<Asn, Opening>,
    /// The exported route.
    pub exported: Option<SignedRoute>,
}

impl NaiveDisclosure {
    /// What B learns beyond the exported route: the complete
    /// (provider → path length) map. With the paper's construction this
    /// function could not exist.
    pub fn leaked_lengths(&self, keys: &KeyStore) -> Option<BTreeMap<Asn, u32>> {
        self.signed_root.verify(keys).ok()?;
        let mut out = BTreeMap::new();
        for (&n, opening) in &self.openings {
            let c = self.commitments.get(&n)?;
            if !verify_commitment(TAG, c, opening) {
                return None;
            }
            let bytes: [u8; 4] = opening.value.as_slice().try_into().ok()?;
            out.insert(n, u32::from_be_bytes(bytes));
        }
        Some(out)
    }

    /// B's promise check in the naive protocol (works, but at the
    /// privacy cost above).
    pub fn verify_min(&self, keys: &KeyStore) -> bool {
        let Some(lengths) = self.leaked_lengths(keys) else {
            return false;
        };
        match (&self.exported, lengths.values().min()) {
            (None, None) => true,
            (Some(sr), Some(&min)) => sr.route.path_len() as u32 == min + 1,
            _ => false,
        }
    }

    /// Serialized size for the E11 comparison.
    pub fn byte_size(&self) -> usize {
        let mut buf = Vec::new();
        self.signed_root.encode(&mut buf);
        for (n, c) in &self.commitments {
            n.encode(&mut buf);
            c.encode(&mut buf);
        }
        for (n, o) in &self.openings {
            n.encode(&mut buf);
            o.encode(&mut buf);
        }
        self.exported.encode(&mut buf);
        buf.len()
    }
}

/// Summary of the ablation comparison for one scenario.
#[derive(Debug)]
pub struct AblationReport {
    /// Provider path lengths B learns under the naive protocol.
    pub naive_leak: BTreeMap<Asn, u32>,
    /// What B learns under the paper's protocol: only the minimum.
    pub paper_reveals_min_only: usize,
    /// Naive receiver-disclosure bytes.
    pub naive_bytes: usize,
    /// Paper receiver-disclosure bytes.
    pub paper_bytes: usize,
}

/// Runs both protocols over the same bed and reports the difference.
pub fn compare_naive_vs_paper(bed: &crate::harness::Figure1Bed) -> AblationReport {
    let mut rng = HmacDrbg::from_u64_labeled(bed.seed, "ablation-naive");
    let naive =
        NaiveCommitter::new(bed.a_identity(), bed.round.clone(), &bed.inputs, bed.b, &mut rng);
    let nd = naive.disclosure_for_receiver();
    assert!(nd.verify_min(&bed.keys), "naive protocol must still verify");
    let naive_leak = nd.leaked_lengths(&bed.keys).expect("openings verify");

    let c = bed.honest_committer();
    let pd = c.disclosure_for_receiver(bed.b);
    let paper_bytes = pd.to_wire().len();
    let min = bed.true_min();

    AblationReport {
        naive_leak,
        paper_reveals_min_only: min,
        naive_bytes: nd.byte_size(),
        paper_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::confidential::redact;
    use crate::harness::Figure1Bed;
    use crate::protocol::run_min_round;

    #[test]
    fn naive_protocol_verifies_the_promise() {
        let bed = Figure1Bed::build(&[2, 3, 5], 301);
        let report = compare_naive_vs_paper(&bed);
        assert_eq!(report.paper_reveals_min_only, 2);
    }

    #[test]
    fn naive_protocol_leaks_every_length() {
        // The ablation's point: B reconstructs the exact multiset of
        // provider route lengths — business intelligence the paper's
        // design withholds.
        let bed = Figure1Bed::build(&[2, 3, 5], 302);
        let report = compare_naive_vs_paper(&bed);
        let lens: Vec<u32> = report.naive_leak.values().copied().collect();
        assert_eq!(lens, vec![2, 3, 5]);
    }

    #[test]
    fn paper_protocol_does_not_leak_lengths() {
        // Counterfactual over the non-minimal lengths: B's opened
        // content is identical, so B provably cannot reconstruct them.
        let bed_a = Figure1Bed::build(&[2, 3, 5], 303);
        let bed_b = Figure1Bed::build(&[2, 4, 9], 303);
        let ra = run_min_round(&bed_a, None);
        let rb = run_min_round(&bed_b, None);
        assert_eq!(redact(&ra.transcripts[&bed_a.b]), redact(&rb.transcripts[&bed_b.b]));
        // The naive protocol distinguishes the same two worlds.
        let na = compare_naive_vs_paper(&bed_a);
        let nb = compare_naive_vs_paper(&bed_b);
        assert_ne!(na.naive_leak, nb.naive_leak);
    }

    #[test]
    fn naive_tampered_opening_rejected() {
        let bed = Figure1Bed::build(&[2, 3], 304);
        let mut rng = HmacDrbg::from_u64_labeled(bed.seed, "ablation-naive");
        let naive =
            NaiveCommitter::new(bed.a_identity(), bed.round.clone(), &bed.inputs, bed.b, &mut rng);
        let mut nd = naive.disclosure_for_receiver();
        let first = *nd.openings.keys().next().unwrap();
        nd.openings.get_mut(&first).unwrap().value = 9u32.to_be_bytes().to_vec();
        assert!(nd.leaked_lengths(&bed.keys).is_none());
        assert!(!nd.verify_min(&bed.keys));
    }

    #[test]
    fn byte_sizes_reported() {
        let bed = Figure1Bed::build(&[2, 3, 4, 5], 305);
        let report = compare_naive_vs_paper(&bed);
        assert!(report.naive_bytes > 0);
        assert!(report.paper_bytes > 0);
    }
}
