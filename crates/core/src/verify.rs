//! Neighbor-side verification.
//!
//! Implements the checks of §3.2 and §3.3:
//!
//! * each provider N_i "checks the commitment to verify that this bit
//!   is 1 (clearly, the chosen route cannot be longer than N_i's
//!   route)" — condition 3 (and condition 2 for the existential case);
//! * the receiver B "verifies that a) if at least one bit is set to 1,
//!   then it must have received a properly signed route, and b) if some
//!   b_i is set to 1, then all the b_j, j > i, must also be set to 1";
//!   B additionally cross-checks the exported route's length against
//!   the committed minimum — a mismatch in either direction yields
//!   transferable evidence;
//! * all neighbors gossip signed roots and detect equivocation.

use crate::evidence::{Evidence, Suspicion};
use crate::session::{BitReveal, Disclosure, PvrParams, RoundContext};
use pvr_bgp::sbgp::SignedRoute;
use pvr_bgp::Asn;
use pvr_crypto::keys::KeyStore;
use pvr_mht::{EquivocationEvidence, Label, SignedRoot};
use std::collections::BTreeMap;

/// The result of one neighbor's verification.
// `Accuse`/`Suspect` carry full evidence and dwarf `Accept`; boxing them
// would break the nested `Outcome::Accuse(Evidence::...)` patterns used
// throughout (box patterns are unstable), and outcomes are transient.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug)]
pub enum Outcome {
    /// Everything checked out.
    Accept,
    /// Transferable evidence of misbehavior was obtained.
    Accuse(Evidence),
    /// Something is wrong but not third-party-provable.
    Suspect(Suspicion),
}

impl Outcome {
    /// True for [`Outcome::Accept`].
    pub fn is_accept(&self) -> bool {
        matches!(self, Outcome::Accept)
    }

    /// True if the verifier noticed anything wrong (accuse or suspect) —
    /// the paper's Detection property counts both.
    pub fn detected(&self) -> bool {
        !self.is_accept()
    }

    /// The evidence, if any.
    pub fn evidence(&self) -> Option<&Evidence> {
        match self {
            Outcome::Accuse(e) => Some(e),
            _ => None,
        }
    }
}

/// Validates the signed root in a disclosure.
fn check_root<'a>(
    disclosure: &'a Disclosure,
    a: Asn,
    round: &RoundContext,
    keys: &KeyStore,
) -> Result<&'a SignedRoot, Suspicion> {
    let root = disclosure.signed_root.as_ref().ok_or(Suspicion::BadRootSignature)?;
    if root.signer != a.principal()
        || root.context != round.context_bytes()
        || root.epoch != round.epoch
        || root.verify(keys).is_err()
    {
        return Err(Suspicion::BadRootSignature);
    }
    Ok(root)
}

/// Validates one bit reveal against the root; returns the bit.
fn check_reveal(root: &SignedRoot, reveal: &BitReveal) -> Result<bool, Suspicion> {
    let expected_label = if reveal.index == 0 {
        Label::Slot(crate::session::SLOT_EXIST, 0)
    } else {
        Label::Slot(crate::session::SLOT_MIN_BITS, reveal.index)
    };
    if reveal.proof.label != expected_label || !reveal.proof.verify(&root.root) {
        return Err(Suspicion::BadReveal { index: reveal.index });
    }
    reveal.bit().ok_or(Suspicion::BadReveal { index: reveal.index })
}

/// Provider-side verification of the minimum-operator protocol (§3.3
/// condition 3). `my_routes` are the attested routes this provider sent
/// to A in this round.
pub fn verify_as_provider(
    a: Asn,
    round: &RoundContext,
    params: &PvrParams,
    my_routes: &[SignedRoute],
    disclosure: &Disclosure,
    keys: &KeyStore,
) -> Outcome {
    let root = match check_root(disclosure, a, round, keys) {
        Ok(r) => r,
        Err(s) => return Outcome::Suspect(s),
    };
    let reveals: BTreeMap<u32, &BitReveal> =
        disclosure.bit_reveals.iter().map(|r| (r.index, r)).collect();
    for sr in my_routes {
        let len = sr.route.path_len().min(params.max_path_len) as u32;
        if len == 0 {
            continue;
        }
        let reveal = match reveals.get(&len) {
            Some(r) => *r,
            None => return Outcome::Suspect(Suspicion::MissingReveal { index: len }),
        };
        match check_reveal(root, reveal) {
            Err(s) => return Outcome::Suspect(s),
            Ok(true) => {}
            Ok(false) => {
                return Outcome::Accuse(Evidence::IgnoredInput {
                    signed_root: root.clone(),
                    reveal: reveal.clone(),
                    provided: sr.clone(),
                });
            }
        }
    }
    Outcome::Accept
}

/// Provider-side verification of the existential protocol (§3.2
/// condition 2): "if N_i has provided a route to A, then A has revealed
/// b and p to N_i, and b = 1".
pub fn verify_as_provider_existential(
    a: Asn,
    round: &RoundContext,
    my_routes: &[SignedRoute],
    disclosure: &Disclosure,
    keys: &KeyStore,
) -> Outcome {
    if my_routes.is_empty() {
        return Outcome::Accept;
    }
    let root = match check_root(disclosure, a, round, keys) {
        Ok(r) => r,
        Err(s) => return Outcome::Suspect(s),
    };
    let reveal = match disclosure.bit_reveals.iter().find(|r| r.index == 0) {
        Some(r) => r,
        None => return Outcome::Suspect(Suspicion::MissingReveal { index: 0 }),
    };
    match check_reveal(root, reveal) {
        Err(s) => Outcome::Suspect(s),
        Ok(true) => Outcome::Accept,
        Ok(false) => Outcome::Accuse(Evidence::IgnoredInput {
            signed_root: root.clone(),
            reveal: reveal.clone(),
            provided: my_routes[0].clone(),
        }),
    }
}

/// Receiver-side verification of the minimum-operator protocol (§3.3).
/// `me` is B; the disclosure must contain all bits plus the export.
pub fn verify_as_receiver(
    me: Asn,
    a: Asn,
    round: &RoundContext,
    params: &PvrParams,
    disclosure: &Disclosure,
    keys: &KeyStore,
) -> Outcome {
    let root = match check_root(disclosure, a, round, keys) {
        Ok(r) => r,
        Err(s) => return Outcome::Suspect(s),
    };
    // Collect and validate all k bits.
    let reveals: BTreeMap<u32, &BitReveal> =
        disclosure.bit_reveals.iter().map(|r| (r.index, r)).collect();
    let mut bits = Vec::with_capacity(params.max_path_len);
    for i in 1..=params.max_path_len as u32 {
        let reveal = match reveals.get(&i) {
            Some(r) => *r,
            None => return Outcome::Suspect(Suspicion::MissingReveal { index: i }),
        };
        match check_reveal(root, reveal) {
            Ok(b) => bits.push(b),
            Err(s) => return Outcome::Suspect(s),
        }
    }
    // Monotonicity (§3.3 check b): transferable evidence on failure.
    if let Err((lo, hi)) = crate::bits::check_monotone(&bits) {
        return Outcome::Accuse(Evidence::NonMonotone {
            signed_root: root.clone(),
            lo: reveals[&(lo as u32)].clone(),
            hi: reveals[&(hi as u32)].clone(),
        });
    }
    let claimed = crate::bits::claimed_min(&bits);

    match (&disclosure.exported, claimed) {
        (None, None) => Outcome::Accept,
        // A committed that a route exists but exported nothing. Omission
        // is detectable but not third-party-provable (§2.3 Detection
        // without Evidence).
        (None, Some(m)) => Outcome::Suspect(Suspicion::WithheldExport { index: m as u32 }),
        (Some(sr), claimed) => {
            // Chain validation (§3.3 check a: "properly signed route").
            if let Err(_e) = sr.verify(me, keys) {
                // If A's own attestation is good but the chain is not, A
                // vouched for a fabricated route: transferable.
                if top_attestation_by(sr, a, me) {
                    return Outcome::Accuse(Evidence::FabricatedExport {
                        exported: sr.clone(),
                        receiver: me,
                    });
                }
                return Outcome::Suspect(Suspicion::BadExportChain);
            }
            if sr.route.path.first_as() != Some(a) || sr.route.prefix != round.prefix {
                return Outcome::Suspect(Suspicion::BadExportChain);
            }
            let core_len = sr.route.path_len() - 1;
            if core_len == 0 || core_len > params.max_path_len {
                return Outcome::Suspect(Suspicion::BadExportChain);
            }
            match claimed {
                None => Outcome::Accuse(Evidence::ExportContradictsBits {
                    signed_root: root.clone(),
                    reveal: reveals[&(core_len as u32)].clone(),
                    exported: sr.clone(),
                    receiver: me,
                }),
                Some(m) if core_len > m => Outcome::Accuse(Evidence::ExportTooLong {
                    signed_root: root.clone(),
                    reveal: reveals[&(m as u32)].clone(),
                    exported: sr.clone(),
                    receiver: me,
                }),
                Some(m) if core_len < m => Outcome::Accuse(Evidence::ExportContradictsBits {
                    signed_root: root.clone(),
                    reveal: reveals[&(core_len as u32)].clone(),
                    exported: sr.clone(),
                    receiver: me,
                }),
                Some(_) => Outcome::Accept,
            }
        }
    }
}

/// Receiver-side verification of the existential protocol (§3.2
/// condition 1): "B verifies that either b = 0 or it has received a
/// properly signed route".
pub fn verify_as_receiver_existential(
    me: Asn,
    a: Asn,
    round: &RoundContext,
    disclosure: &Disclosure,
    keys: &KeyStore,
) -> Outcome {
    let root = match check_root(disclosure, a, round, keys) {
        Ok(r) => r,
        Err(s) => return Outcome::Suspect(s),
    };
    let reveal = match disclosure.bit_reveals.iter().find(|r| r.index == 0) {
        Some(r) => r,
        None => return Outcome::Suspect(Suspicion::MissingReveal { index: 0 }),
    };
    let bit = match check_reveal(root, reveal) {
        Ok(b) => b,
        Err(s) => return Outcome::Suspect(s),
    };
    match (&disclosure.exported, bit) {
        (None, false) => Outcome::Accept,
        (None, true) => Outcome::Suspect(Suspicion::WithheldExport { index: 0 }),
        (Some(sr), bit) => {
            if let Err(_e) = sr.verify(me, keys) {
                if top_attestation_by(sr, a, me) {
                    return Outcome::Accuse(Evidence::FabricatedExport {
                        exported: sr.clone(),
                        receiver: me,
                    });
                }
                return Outcome::Suspect(Suspicion::BadExportChain);
            }
            if bit {
                Outcome::Accept
            } else {
                // Exported a (valid) route while committing "no route".
                Outcome::Accuse(Evidence::ExportContradictsBits {
                    signed_root: root.clone(),
                    reveal: reveal.clone(),
                    exported: sr.clone(),
                    receiver: me,
                })
            }
        }
    }
}

/// True if the route's top attestation is a valid signature by `a`
/// targeting `receiver` over the route's own path.
fn top_attestation_by(sr: &SignedRoute, a: Asn, receiver: Asn) -> bool {
    match sr.chain().newest() {
        Some(top) => {
            top.signer == a
                && top.target == receiver
                && top.path.asns() == sr.route.path.asns()
                && top.prefix == sr.route.prefix
        }
        None => false,
    }
}

/// Gossip cross-check (§3.6): each neighbor shares the signed root it
/// received; any two valid-but-conflicting roots are equivocation
/// evidence. Returns the first conflict found.
pub fn cross_check_roots(roots: &[SignedRoot], keys: &KeyStore) -> Option<Evidence> {
    for (i, a) in roots.iter().enumerate() {
        if a.verify(keys).is_err() {
            continue;
        }
        for b in roots.iter().skip(i + 1) {
            if b.verify(keys).is_err() {
                continue;
            }
            if let Some(ev) = EquivocationEvidence::try_from_pair(a, b) {
                return Some(Evidence::Equivocation(ev));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::Figure1Bed;

    #[test]
    fn honest_round_accepted_by_everyone() {
        let bed = Figure1Bed::build(&[2, 3, 4], 31);
        let c = bed.honest_committer();
        for &n in &bed.ns {
            let d = c.disclosure_for_provider(n);
            let o =
                verify_as_provider(bed.a, &bed.round, &bed.params, &bed.inputs[&n], &d, &bed.keys);
            assert!(o.is_accept(), "provider {n}: {o:?}");
        }
        let d = c.disclosure_for_receiver(bed.b);
        let o = verify_as_receiver(bed.b, bed.a, &bed.round, &bed.params, &d, &bed.keys);
        assert!(o.is_accept(), "receiver: {o:?}");
    }

    #[test]
    fn honest_existential_accepted() {
        let bed = Figure1Bed::build(&[3, 2], 32);
        let c = bed.honest_committer();
        let dp = c.existential_disclosure_for_provider();
        for &n in &bed.ns {
            let o =
                verify_as_provider_existential(bed.a, &bed.round, &bed.inputs[&n], &dp, &bed.keys);
            assert!(o.is_accept(), "{n}: {o:?}");
        }
        let dr = c.existential_disclosure_for_receiver(bed.b);
        let o = verify_as_receiver_existential(bed.b, bed.a, &bed.round, &dr, &bed.keys);
        assert!(o.is_accept(), "{o:?}");
    }

    #[test]
    fn missing_root_suspected() {
        let bed = Figure1Bed::build(&[2], 33);
        let c = bed.honest_committer();
        let mut d = c.disclosure_for_receiver(bed.b);
        d.signed_root = None;
        let o = verify_as_receiver(bed.b, bed.a, &bed.round, &bed.params, &d, &bed.keys);
        assert!(matches!(o, Outcome::Suspect(Suspicion::BadRootSignature)));
    }

    #[test]
    fn wrong_epoch_root_suspected() {
        let bed = Figure1Bed::build(&[2], 34);
        let c = bed.honest_committer();
        let d = c.disclosure_for_receiver(bed.b);
        let stale = RoundContext { prefix: bed.prefix, epoch: 2 };
        let o = verify_as_receiver(bed.b, bed.a, &stale, &bed.params, &d, &bed.keys);
        assert!(matches!(o, Outcome::Suspect(Suspicion::BadRootSignature)));
    }

    #[test]
    fn missing_bit_suspected() {
        let bed = Figure1Bed::build(&[2, 3], 35);
        let c = bed.honest_committer();
        let mut d = c.disclosure_for_receiver(bed.b);
        d.bit_reveals.retain(|r| r.index != 5);
        let o = verify_as_receiver(bed.b, bed.a, &bed.round, &bed.params, &d, &bed.keys);
        assert!(matches!(o, Outcome::Suspect(Suspicion::MissingReveal { index: 5 })));
    }

    #[test]
    fn tampered_reveal_suspected() {
        let bed = Figure1Bed::build(&[2, 3], 36);
        let c = bed.honest_committer();
        let mut d = c.disclosure_for_receiver(bed.b);
        d.bit_reveals[0].proof.payload[0] ^= 1;
        let o = verify_as_receiver(bed.b, bed.a, &bed.round, &bed.params, &d, &bed.keys);
        assert!(matches!(o, Outcome::Suspect(Suspicion::BadReveal { .. })));
    }

    #[test]
    fn provider_missing_reveal_suspected() {
        let bed = Figure1Bed::build(&[2, 3], 37);
        let c = bed.honest_committer();
        let mut d = c.disclosure_for_provider(bed.ns[0]);
        d.bit_reveals.clear();
        let o = verify_as_provider(
            bed.a,
            &bed.round,
            &bed.params,
            &bed.inputs[&bed.ns[0]],
            &d,
            &bed.keys,
        );
        assert!(matches!(o, Outcome::Suspect(Suspicion::MissingReveal { index: 2 })));
    }

    #[test]
    fn cross_check_detects_equivocation() {
        let bed = Figure1Bed::build(&[2], 38);
        let a_id = bed.a_identity();
        let r1 = pvr_mht::SignedRoot::create(
            a_id,
            bed.round.context_bytes(),
            1,
            pvr_crypto::sha256(b"1"),
        );
        let r2 = pvr_mht::SignedRoot::create(
            a_id,
            bed.round.context_bytes(),
            1,
            pvr_crypto::sha256(b"2"),
        );
        let ev = cross_check_roots(&[r1.clone(), r2], &bed.keys).expect("conflict");
        assert_eq!(ev.kind(), "equivocation");
        // Identical roots do not conflict.
        assert!(cross_check_roots(&[r1.clone(), r1], &bed.keys).is_none());
    }

    #[test]
    fn cross_check_ignores_invalid_signatures() {
        // A root with a corrupted signature cannot be used to frame A.
        let bed = Figure1Bed::build(&[2], 39);
        let a_id = bed.a_identity();
        let r1 = pvr_mht::SignedRoot::create(
            a_id,
            bed.round.context_bytes(),
            1,
            pvr_crypto::sha256(b"1"),
        );
        let mut forged = r1.clone();
        forged.root = pvr_crypto::sha256(b"forged");
        assert!(cross_check_roots(&[r1, forged], &bed.keys).is_none());
    }
}
