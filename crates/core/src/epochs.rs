//! Multi-round PVR sessions: epochs, withdrawals, and replay defense.
//!
//! BGP is a stream of decisions, not a single one. A PVR session
//! advances an epoch per decision change for a prefix: each epoch gets
//! its own commitment round, withdrawals are rounds with empty inputs
//! (all-zero bits, no export — verifiable like any other round), and
//! verifiers reject stale or replayed artifacts by tracking the highest
//! epoch seen per (signer, context). This addresses the freshness gap
//! the single-round protocol leaves open (a §4-style deployment
//! concern the paper does not elaborate).

use crate::session::{Committer, PvrParams, RoundContext};
use pvr_bgp::sbgp::SignedRoute;
use pvr_bgp::{Asn, Prefix};
use pvr_crypto::drbg::HmacDrbg;
use pvr_crypto::keys::Identity;
use pvr_mht::SignedRoot;
use pvr_rfg::RouteFlowGraph;
use std::collections::BTreeMap;

/// The committing side of a long-lived session for one prefix.
pub struct PvrSession {
    identity: Identity,
    prefix: Prefix,
    params: PvrParams,
    graph: RouteFlowGraph,
    bit_scope: Vec<Asn>,
    epoch: u64,
    rng: HmacDrbg,
}

impl PvrSession {
    /// Opens a session. Epochs start at 1 on the first round.
    pub fn new(
        identity: &Identity,
        prefix: Prefix,
        params: PvrParams,
        graph: RouteFlowGraph,
        bit_scope: &[Asn],
        seed: u64,
    ) -> PvrSession {
        PvrSession {
            identity: identity.clone(),
            prefix,
            params,
            graph,
            bit_scope: bit_scope.to_vec(),
            epoch: 0,
            rng: HmacDrbg::from_u64_labeled(seed, "pvr-session"),
        }
    }

    /// The current epoch (0 before the first round).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Runs the next round over the current inputs (empty inputs model a
    /// withdrawal) and returns its committer.
    pub fn next_round(&mut self, inputs: BTreeMap<Asn, Vec<SignedRoute>>) -> Committer {
        self.epoch += 1;
        let round = RoundContext { prefix: self.prefix, epoch: self.epoch };
        Committer::new(
            &self.identity,
            round,
            self.params,
            self.graph.clone(),
            inputs,
            &self.bit_scope,
            &mut self.rng,
        )
    }
}

/// Verifier-side freshness tracking: the highest epoch accepted per
/// (signer, context). Replayed or stale artifacts are rejected before
/// any cryptographic work.
#[derive(Clone, Debug, Default)]
pub struct EpochTracker {
    latest: BTreeMap<(u64, Vec<u8>), u64>,
}

/// Freshness classification of an incoming signed root.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Freshness {
    /// Strictly newer than anything seen: accept and advance.
    Fresh,
    /// Exactly the epoch already accepted (gossip duplicates are fine).
    Current,
    /// Older than the accepted epoch: replay, reject.
    Stale,
}

impl EpochTracker {
    /// An empty tracker.
    pub fn new() -> EpochTracker {
        EpochTracker::default()
    }

    /// Classifies `root` and advances the tracker on `Fresh`.
    pub fn observe(&mut self, root: &SignedRoot) -> Freshness {
        let key = (root.signer, root.context.clone());
        match self.latest.get(&key) {
            None => {
                self.latest.insert(key, root.epoch);
                Freshness::Fresh
            }
            Some(&seen) if root.epoch > seen => {
                self.latest.insert(key, root.epoch);
                Freshness::Fresh
            }
            Some(&seen) if root.epoch == seen => Freshness::Current,
            Some(_) => Freshness::Stale,
        }
    }

    /// The accepted epoch for (signer, context), if any.
    pub fn accepted_epoch(&self, signer: u64, context: &[u8]) -> Option<u64> {
        self.latest.get(&(signer, context.to_vec())).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::Figure1Bed;
    use crate::verify::{verify_as_provider, verify_as_receiver};

    fn session_for(bed: &Figure1Bed) -> PvrSession {
        PvrSession::new(
            bed.a_identity(),
            bed.prefix,
            bed.params,
            bed.graph.clone(),
            &bed.ns,
            bed.seed,
        )
    }

    #[test]
    fn epochs_advance_and_rounds_verify() {
        let bed = Figure1Bed::build(&[2, 4], 401);
        let mut session = session_for(&bed);

        // Epoch 1: both routes present.
        let c1 = session.next_round(bed.inputs.clone());
        assert_eq!(session.epoch(), 1);
        let round1 = c1.round().clone();
        let d = c1.disclosure_for_receiver(bed.b);
        let o = verify_as_receiver(bed.b, bed.a, &round1, &bed.params, &d, &bed.keys);
        assert!(o.is_accept());

        // Epoch 2: N1 withdrew; min moves to 4.
        let mut inputs2 = bed.inputs.clone();
        inputs2.remove(&bed.ns[0]);
        let c2 = session.next_round(inputs2.clone());
        assert_eq!(session.epoch(), 2);
        let round2 = c2.round().clone();
        let d = c2.disclosure_for_receiver(bed.b);
        let o = verify_as_receiver(bed.b, bed.a, &round2, &bed.params, &d, &bed.keys);
        assert!(o.is_accept());
        let exported = c2.export_route(bed.b).unwrap();
        assert_eq!(exported.route.path_len(), 5, "now via N2");

        // Epoch 3: total withdrawal — all-zero bits, no export.
        let c3 = session.next_round(BTreeMap::new());
        let round3 = c3.round().clone();
        let d = c3.disclosure_for_receiver(bed.b);
        assert!(d.exported.is_none());
        let o = verify_as_receiver(bed.b, bed.a, &round3, &bed.params, &d, &bed.keys);
        assert!(o.is_accept(), "{o:?}");
    }

    #[test]
    fn cross_epoch_replay_rejected() {
        // An epoch-1 disclosure presented for the epoch-2 round fails
        // the root check (wrong epoch in the signed context).
        let bed = Figure1Bed::build(&[2, 4], 402);
        let mut session = session_for(&bed);
        let c1 = session.next_round(bed.inputs.clone());
        let stale = c1.disclosure_for_receiver(bed.b);
        let c2 = session.next_round(bed.inputs.clone());
        let o = verify_as_receiver(bed.b, bed.a, c2.round(), &bed.params, &stale, &bed.keys);
        assert!(!o.is_accept(), "replay must fail");
        // Same for providers.
        let stale_p = c1.disclosure_for_provider(bed.ns[0]);
        let o = verify_as_provider(
            bed.a,
            c2.round(),
            &bed.params,
            &bed.inputs[&bed.ns[0]],
            &stale_p,
            &bed.keys,
        );
        assert!(!o.is_accept());
    }

    #[test]
    fn tracker_classifies_freshness() {
        let bed = Figure1Bed::build(&[2], 403);
        let mut session = session_for(&bed);
        let c1 = session.next_round(bed.inputs.clone());
        let c2 = session.next_round(bed.inputs.clone());
        let mut tracker = EpochTracker::new();
        assert_eq!(tracker.observe(c1.signed_root()), Freshness::Fresh);
        assert_eq!(tracker.observe(c1.signed_root()), Freshness::Current);
        assert_eq!(tracker.observe(c2.signed_root()), Freshness::Fresh);
        assert_eq!(tracker.observe(c1.signed_root()), Freshness::Stale);
        assert_eq!(tracker.accepted_epoch(bed.a.principal(), &c2.round().context_bytes()), Some(2));
    }

    #[test]
    fn tracker_separates_contexts() {
        // Epochs are per (signer, context): different prefixes do not
        // interfere.
        let bed = Figure1Bed::build(&[2], 404);
        let mut s1 = session_for(&bed);
        let c1 = s1.next_round(bed.inputs.clone());
        let other_prefix = Prefix::parse("192.168.0.0/16").unwrap();
        let mut s2 = PvrSession::new(
            bed.a_identity(),
            other_prefix,
            bed.params,
            bed.graph.clone(),
            &bed.ns,
            bed.seed + 1,
        );
        let c2 = s2.next_round(BTreeMap::new());
        let mut tracker = EpochTracker::new();
        assert_eq!(tracker.observe(c1.signed_root()), Freshness::Fresh);
        assert_eq!(tracker.observe(c2.signed_root()), Freshness::Fresh);
        assert_eq!(tracker.observe(c1.signed_root()), Freshness::Current);
    }

    #[test]
    fn distinct_epochs_produce_distinct_roots() {
        // Even with identical inputs the blinding stream advances, so
        // roots differ across epochs (no cross-epoch correlation).
        let bed = Figure1Bed::build(&[2, 3], 405);
        let mut session = session_for(&bed);
        let c1 = session.next_round(bed.inputs.clone());
        let c2 = session.next_round(bed.inputs.clone());
        assert_ne!(c1.signed_root().root, c2.signed_root().root);
    }
}
