//! The route-leak gossip audit: PVR's §3.6 gossip applied to export
//! conformance.
//!
//! A route leak is invisible to S-BGP: every attestation in the leaked
//! chain is genuine, so no single receiver can reject it. What exposes
//! the leak is *pooling relationships the neighbors already know*: a
//! provider P of the suspect sees, from the attested path, which
//! neighbor U the suspect learned the route from; U knows (and can
//! attest) its own relationship with the suspect; P knows its own. If
//! both relationships point uphill — the route came *from* a provider
//! or peer and went *to* a provider or peer — the export is a
//! Gao–Rexford valley, and the two attestations plus the two
//! self-declared relationships are transferable evidence. Nobody
//! reveals a relationship the routing protocol's messages did not
//! already imply to that party, which is exactly the paper's
//! confidentiality bar.

use pvr_bgp::{AsPath, Asn, BgpNetwork, Prefix, Role};
use std::collections::BTreeSet;

/// One detected valley: `suspect` exported `prefix`, learned from
/// `upstream`, to `reporter`, with both relationships uphill.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LeakEvidence {
    /// The provider/peer of the suspect that received the leak.
    pub reporter: Asn,
    /// The provider/peer the route was learned from (second hop of the
    /// attested path).
    pub upstream: Asn,
    /// The leaked prefix.
    pub prefix: Prefix,
    /// The leaked route's AS path, as the reporter holds it.
    pub path: AsPath,
}

/// True when `role` (the role the *suspect* plays relative to a
/// neighbor) means that neighbor sits uphill of the suspect — i.e. the
/// neighbor is the suspect's provider or peer.
fn uphill_of_suspect(role: Role) -> bool {
    matches!(role, Role::Customer | Role::PartialTransitCustomer { .. } | Role::Peer)
}

/// Audits `suspect`'s exports for Gao–Rexford valleys using only what
/// each neighbor individually knows, returning every (reporter,
/// upstream, prefix) valley found. Empty for honest ASes in a converged
/// valley-free network (asserted by the accuracy tests).
pub fn leak_gossip_audit(net: &BgpNetwork, suspect: Asn) -> Vec<LeakEvidence> {
    let ases: BTreeSet<Asn> = net.ases().collect();
    let mut out = Vec::new();
    for &reporter in &ases {
        if reporter == suspect {
            continue;
        }
        // The reporter's own (private) relationship with the suspect.
        let suspect_role = match net.router(reporter).policy().role(suspect) {
            Some(r) => r,
            None => continue, // not a neighbor of the suspect
        };
        if !uphill_of_suspect(suspect_role) {
            continue; // exports to the suspect's customers are always legal
        }
        for (prefix, route) in net.router(reporter).routes_from(suspect) {
            let path = route.path.asns();
            // A leaked route reads [suspect, upstream, ...]; a path of
            // length 1 is the suspect's own origination (always legal).
            if path.len() < 2 || path[0] != suspect {
                continue;
            }
            let upstream = path[1];
            if !ases.contains(&upstream) {
                continue;
            }
            // The upstream's own (private) relationship with the suspect.
            let learned_role = match net.router(upstream).policy().role(suspect) {
                Some(r) => r,
                None => continue,
            };
            if uphill_of_suspect(learned_role) {
                out.push(LeakEvidence { reporter, upstream, prefix, path: route.path.clone() });
            }
        }
    }
    out
}
