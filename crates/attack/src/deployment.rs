//! Partial-deployment sweeps: how much of the Internet must run
//! origin validation before a prefix hijack stops paying off — and how
//! hard the attacker still hits the unprotected fringe.
//!
//! Security upgrades to interdomain routing deploy AS by AS, never all
//! at once, so the interesting curve is attack success as a function of
//! the deployed fraction. Each sweep point instantiates the same
//! topology, installs the origin-authorization table on a seeded
//! fraction of ASes, mounts a prefix hijack from a fixed placement, and
//! scores two populations separately: all honest ASes (the headline
//! curve) and the unprotected fringe (targeted interception — the ASes
//! an adaptive attacker would aim at precisely because they skipped the
//! upgrade).
//!
//! Points run on the same deterministic parallel executor as the
//! campaign matrix ([`crate::sweep::sweep`]); results are independent
//! of thread count and scheduling.

use crate::campaign::Placement;
use crate::metrics::via_attacker;
use crate::sweep::{default_parallelism, sweep};
use pvr_bgp::{Asn, InstantiateOptions, RouterStats, Topology};
use pvr_crypto::drbg::HmacDrbg;
use pvr_netsim::RunLimits;
use std::collections::BTreeSet;
use std::sync::Arc;

/// Event budget per sweep point (same rationale as the campaign cell
/// budget: one pathological point must not hang the sweep).
const POINT_EVENT_BUDGET: u64 = 2_000_000;

/// Configuration for one partial-deployment sweep.
#[derive(Clone, Debug)]
pub struct DeploymentSweepConfig {
    /// Deployment seed: drives which ASes deploy at each fraction.
    pub seed: u64,
    /// Deployed fractions to sweep, in percent (x axis).
    pub fractions_pct: Vec<u32>,
    /// Worker threads; 0 = machine parallelism.
    pub parallelism: usize,
}

impl Default for DeploymentSweepConfig {
    fn default() -> DeploymentSweepConfig {
        DeploymentSweepConfig { seed: 0, fractions_pct: vec![0, 25, 50, 75, 100], parallelism: 0 }
    }
}

/// One point on the partial-deployment curve.
#[derive(Clone, Debug, PartialEq)]
pub struct DeploymentPoint {
    /// Fraction of honest ASes running origin validation, percent.
    pub fraction_pct: u32,
    /// How many ASes that fraction came to.
    pub protected: usize,
    /// Hijack success over all honest ASes, percent poisoned.
    pub attack_success_pct: f64,
    /// Hijack success over the unprotected fringe only, percent
    /// poisoned (the targeted-interception column; equals the overall
    /// curve at 0% deployment and is undefined-as-zero at 100%).
    pub fringe_interception_pct: f64,
    /// Malicious announcements dropped by deployed validators.
    pub origin_rejections: u64,
}

/// Sweeps hijack success against deployed fraction for one
/// attacker/victim `placement` on `topology`. Returns one
/// [`DeploymentPoint`] per configured fraction, in input order.
pub fn deployment_sweep(
    topology: &Arc<Topology>,
    placement: Placement,
    config: &DeploymentSweepConfig,
) -> Vec<DeploymentPoint> {
    let threads = if config.parallelism == 0 { default_parallelism() } else { config.parallelism };
    let fractions = config.fractions_pct.clone();
    let topology = Arc::clone(topology);
    let seed = config.seed;
    sweep(fractions.len(), threads, move |i| run_point(&topology, placement, fractions[i], seed))
}

/// Deterministically picks which honest ASes deploy at `fraction_pct`:
/// a seeded shuffle of the AS list, truncated to the rounded count.
/// Larger fractions do *not* necessarily contain smaller ones (each
/// point redraws), matching independent-measurement methodology.
fn choose_protected(
    topology: &Topology,
    attacker: Asn,
    fraction_pct: u32,
    seed: u64,
) -> BTreeSet<Asn> {
    let mut candidates: Vec<Asn> = topology.ases().filter(|&a| a != attacker).collect();
    let goal = (candidates.len() * fraction_pct as usize).div_ceil(100).min(candidates.len());
    let mut rng =
        HmacDrbg::from_u64_labeled(seed, &format!("pvr-attack deployment {fraction_pct}"));
    // Partial Fisher–Yates: only the first `goal` slots need settling.
    for i in 0..goal {
        let j = i + rng.below((candidates.len() - i) as u64) as usize;
        candidates.swap(i, j);
    }
    candidates.truncate(goal);
    candidates.into_iter().collect()
}

fn run_point(
    topology: &Arc<Topology>,
    placement: Placement,
    fraction_pct: u32,
    seed: u64,
) -> DeploymentPoint {
    let limits = RunLimits { deadline: None, max_events: Some(POINT_EVENT_BUDGET) };
    let options = InstantiateOptions { seed, ..Default::default() };

    // Clean baseline: who legitimately routes via the attacker?
    let mut clean = topology.instantiate(options);
    clean.converge(limits);
    let baseline = via_attacker(&clean, placement.attacker, &[placement.victim_prefix]);
    drop(clean);

    // Attacked run: origin validation on the protected subset only
    // (the table works in plain mode — route-origin validation deploys
    // independently of path signing).
    let protected = choose_protected(topology, placement.attacker, fraction_pct, seed);
    let mut net = topology.instantiate(options);
    let table = Arc::new(topology.origin_table());
    for &asn in &protected {
        net.router_mut(asn).set_origin_table(Arc::clone(&table));
    }
    net.router_mut(placement.attacker).originate(placement.victim_prefix);
    net.converge(limits);

    let honest: BTreeSet<Asn> = net.ases().filter(|&a| a != placement.attacker).collect();
    let poisoned: BTreeSet<Asn> =
        via_attacker(&net, placement.attacker, &[placement.victim_prefix])
            .difference(&baseline)
            .copied()
            .collect();
    let fringe: BTreeSet<Asn> = honest.difference(&protected).copied().collect();
    let poisoned_fringe = poisoned.intersection(&fringe).count();
    let pct = |hit: usize, of: usize| if of == 0 { 0.0 } else { 100.0 * hit as f64 / of as f64 };

    let mut totals = RouterStats::default();
    for asn in net.ases() {
        totals.add(net.router(asn).stats());
    }

    DeploymentPoint {
        fraction_pct,
        protected: protected.len(),
        attack_success_pct: pct(poisoned.len(), honest.len()),
        fringe_interception_pct: pct(poisoned_fringe, fringe.len()),
        origin_rejections: totals.origin_failures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pvr_bgp::{internet_like, InternetParams};

    fn bed() -> (Arc<Topology>, Placement) {
        let params = InternetParams {
            tier1: 2,
            tier2: 4,
            stubs: 8,
            t2_peering_prob: 0.3,
            ..InternetParams::default()
        };
        let topology = Arc::new(internet_like(params, 11));
        let placement = crate::campaign::choose_placements(&topology, 1, 11)[0];
        (topology, placement)
    }

    #[test]
    fn full_deployment_blocks_the_hijack() {
        let (topology, placement) = bed();
        let config = DeploymentSweepConfig { seed: 3, fractions_pct: vec![0, 100], parallelism: 1 };
        let points = deployment_sweep(&topology, placement, &config);
        assert_eq!(points.len(), 2);
        assert!(
            points[0].attack_success_pct > 0.0,
            "undefended hijack must poison someone: {points:?}"
        );
        assert_eq!(points[0].origin_rejections, 0, "nobody validates at 0%");
        assert_eq!(
            points[1].attack_success_pct, 0.0,
            "universal origin validation blocks the hijack: {points:?}"
        );
        assert!(points[1].origin_rejections > 0, "validators must have dropped announcements");
        assert_eq!(points[1].fringe_interception_pct, 0.0, "no fringe at 100%");
    }

    #[test]
    fn sweep_is_deterministic_across_thread_counts() {
        let (topology, placement) = bed();
        let mut runs = Vec::new();
        for threads in [1, 4] {
            let config = DeploymentSweepConfig {
                seed: 5,
                fractions_pct: vec![0, 50, 100],
                parallelism: threads,
            };
            runs.push(deployment_sweep(&topology, placement, &config));
        }
        assert_eq!(runs[0], runs[1], "point results must not depend on thread count");
    }

    #[test]
    fn fringe_suffers_at_least_as_much_as_the_average() {
        // The headline deployment claim: at partial deployment the
        // unprotected fringe absorbs a disproportionate share of the
        // interception (protected ASes drop the forged origin, so the
        // poisoned set concentrates in the fringe).
        let (topology, placement) = bed();
        let config =
            DeploymentSweepConfig { seed: 9, fractions_pct: vec![25, 50, 75], parallelism: 1 };
        for point in deployment_sweep(&topology, placement, &config) {
            assert!(
                point.fringe_interception_pct >= point.attack_success_pct,
                "fringe must not be safer than average at {}%: {point:?}",
                point.fraction_pct
            );
        }
    }
}
