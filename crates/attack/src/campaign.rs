//! The campaign runner: strategies × placements × security modes,
//! executed on the parallel sweep and scored into a detection/impact
//! matrix.

use crate::cell::CellContext;
use crate::metrics::AttackOutcome;
use crate::strategy::{catalog, AttackKind, AttackStrategy, SecurityMode};
use crate::sweep::{default_parallelism, sweep};
use pvr_bgp::{internet_like, Asn, InternetParams, Prefix, Role, Topology};
use pvr_crypto::drbg::HmacDrbg;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use std::sync::Arc;

/// Bucket bounds for the detection-latency histogram, sim-time
/// microseconds. The default 10 ms link latency puts in-band
/// detections between one hop (~10 ms) and a few propagation rounds,
/// so the ladder spans 1 ms to 1 s.
pub const DETECTION_LATENCY_BUCKETS_US: &[u64] =
    &[1_000, 5_000, 10_000, 20_000, 50_000, 100_000, 200_000, 500_000, 1_000_000];

/// Campaign-wide configuration.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// Topology generator parameters.
    pub internet: InternetParams,
    /// Campaign seed: drives topology, placements, and per-cell seeds.
    pub seed: u64,
    /// Number of attacker/victim placement pairs to sweep.
    pub placements: usize,
    /// Security modes to sweep (escalation order recommended).
    pub modes: Vec<SecurityMode>,
    /// RSA modulus size for signed modes (small keys keep CI fast).
    pub key_bits: usize,
    /// Worker threads for the sweep; 0 = machine parallelism.
    pub parallelism: usize,
}

impl CampaignConfig {
    /// The CI-smoke configuration: a small Internet, one placement, all
    /// modes — every matrix row exercised in seconds.
    pub fn quick(seed: u64) -> CampaignConfig {
        CampaignConfig {
            internet: InternetParams {
                tier1: 2,
                tier2: 4,
                stubs: 6,
                t2_peering_prob: 0.3,
                ..InternetParams::default()
            },
            seed,
            placements: 1,
            modes: SecurityMode::ALL.to_vec(),
            key_bits: 512,
            parallelism: 0,
        }
    }
}

/// One attacker/victim pairing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Placement {
    /// The malicious AS.
    pub attacker: Asn,
    /// The AS whose prefix is attacked.
    pub victim: Asn,
    /// The victim's originated prefix.
    pub victim_prefix: Prefix,
}

/// One scored cell.
#[derive(Clone, Debug, PartialEq)]
pub struct CellResult {
    /// Strategy row name.
    pub strategy: String,
    /// Strategy family.
    pub kind: AttackKind,
    /// Security mode the cell ran under.
    pub mode: SecurityMode,
    /// The placement used.
    pub placement: Placement,
    /// Impact and detection scores.
    pub outcome: AttackOutcome,
}

/// All cells of a finished campaign, in deterministic cell order.
#[derive(Clone, Debug, PartialEq)]
pub struct CampaignReport {
    /// Scored cells: strategy-major, then placement, then mode.
    pub cells: Vec<CellResult>,
}

/// A configured campaign, ready to run.
pub struct Campaign {
    config: CampaignConfig,
    topology: Arc<Topology>,
    /// Customer-cone sizes, computed once and shared with every cell.
    cones: Arc<BTreeMap<Asn, usize>>,
    placements: Vec<Placement>,
    strategies: Vec<Box<dyn AttackStrategy>>,
}

/// True when `role` (the role `other` plays relative to some AS) marks
/// `other` as sitting uphill (provider or peer).
fn is_provider_or_peer(role: &Role) -> bool {
    matches!(role, Role::Provider | Role::Peer)
}

/// Deterministically chooses attacker/victim pairs. Victims are
/// originating ASes (stubs). Attackers must (1) not be the victim,
/// (2) have at least two uphill neighbors so a route leak has a valley
/// to form, (3) have at least one provider (so hijacks reach a
/// customer-preferring audience), and (4) not be adjacent to the victim
/// (a direct neighbor's "shortcut" would be a legitimate route, not an
/// attack). Preference is given to attackers sharing no neighbor with
/// the victim.
pub fn choose_placements(topology: &Topology, count: usize, seed: u64) -> Vec<Placement> {
    let mut rng = HmacDrbg::from_u64_labeled(seed, "pvr-attack placements");
    let victims: Vec<Asn> =
        topology.ases().filter(|&a| !topology.originated_by(a).is_empty()).collect();
    assert!(!victims.is_empty(), "topology has no originating ASes to victimize");
    let mut out = Vec::with_capacity(count);
    // Bounded retry per placement: the counter resets on every success,
    // so only genuine exhaustion of the (victim, attacker) space — not a
    // large `count` or duplicate draws along the way — trips the assert.
    let mut failed_draws = 0usize;
    while out.len() < count {
        assert!(
            failed_draws < 1000,
            "exhausted eligible attacker/victim placements after {} of {} requested \
             (topology supports fewer distinct pairs)",
            out.len(),
            count
        );
        let victim = victims[rng.below(victims.len() as u64) as usize];
        let victim_prefix = topology.originated_by(victim)[0];
        let victim_neighbors: BTreeSet<Asn> =
            topology.neighbor_roles(victim).into_iter().map(|(n, _)| n).collect();
        let eligible: Vec<Asn> = topology
            .ases()
            .filter(|&a| {
                if a == victim || victim_neighbors.contains(&a) {
                    return false;
                }
                let roles = topology.neighbor_roles(a);
                let uphill = roles.iter().filter(|(_, r)| is_provider_or_peer(r)).count();
                let providers = roles.iter().filter(|(_, r)| matches!(r, Role::Provider)).count();
                uphill >= 2 && providers >= 1
            })
            .collect();
        if eligible.is_empty() {
            failed_draws += 1;
            continue;
        }
        // Prefer attackers whose neighborhood is disjoint from the
        // victim's (cleaner poisoning signal).
        let disjoint: Vec<Asn> = eligible
            .iter()
            .copied()
            .filter(|&a| {
                topology.neighbor_roles(a).iter().all(|(n, _)| !victim_neighbors.contains(n))
            })
            .collect();
        let pool = if disjoint.is_empty() { &eligible } else { &disjoint };
        let attacker = pool[rng.below(pool.len() as u64) as usize];
        let p = Placement { attacker, victim, victim_prefix };
        if out.contains(&p) {
            failed_draws += 1;
        } else {
            out.push(p);
            failed_draws = 0;
        }
    }
    out
}

impl Campaign {
    /// Builds the campaign: generates the topology and chooses
    /// placements deterministically from the configured seed.
    pub fn new(config: CampaignConfig) -> Campaign {
        let topology = internet_like(config.internet, config.seed);
        let placements = choose_placements(&topology, config.placements.max(1), config.seed);
        let cones = Arc::new(topology.customer_cone_sizes());
        Campaign { config, topology: Arc::new(topology), cones, placements, strategies: catalog() }
    }

    /// The chosen attacker/victim pairs.
    pub fn placements(&self) -> &[Placement] {
        &self.placements
    }

    /// Total number of cells a run will score.
    pub fn cell_count(&self) -> usize {
        self.strategies.len() * self.placements.len() * self.config.modes.len()
    }

    /// Runs every cell on the parallel sweep. The report is
    /// byte-identical for any `parallelism`, including 1.
    pub fn run(&self) -> CampaignReport {
        let specs: Vec<(usize, usize, usize)> = {
            let mut v = Vec::with_capacity(self.cell_count());
            for s in 0..self.strategies.len() {
                for p in 0..self.placements.len() {
                    for m in 0..self.config.modes.len() {
                        v.push((s, p, m));
                    }
                }
            }
            v
        };
        let threads = if self.config.parallelism == 0 {
            default_parallelism()
        } else {
            self.config.parallelism
        };
        let cells = sweep(specs.len(), threads, |i| {
            let (s, p, m) = specs[i];
            self.run_cell(i, s, p, m)
        });
        CampaignReport { cells }
    }

    fn run_cell(&self, index: usize, s: usize, p: usize, m: usize) -> CellResult {
        let strategy = &self.strategies[s];
        let placement = self.placements[p];
        let mode = self.config.modes[m];
        // One derived seed per cell: a function of (campaign seed, cell
        // index) only, so results cannot depend on scheduling.
        let cell_seed =
            HmacDrbg::from_u64_labeled(self.config.seed, &format!("pvr-attack cell {index}")).u64();
        let ctx = CellContext {
            topology: Arc::clone(&self.topology),
            cones: Arc::clone(&self.cones),
            attacker: placement.attacker,
            victim: placement.victim,
            victim_prefix: placement.victim_prefix,
            mode,
            seed: cell_seed,
            key_bits: self.config.key_bits,
        };
        CellResult {
            strategy: strategy.name().to_string(),
            kind: strategy.kind(),
            mode,
            placement,
            outcome: strategy.execute(&ctx),
        }
    }
}

impl CampaignReport {
    /// Cells of the given family under the given mode.
    fn select(&self, kinds: &[AttackKind], mode: SecurityMode) -> Vec<&CellResult> {
        self.cells.iter().filter(|c| c.mode == mode && kinds.contains(&c.kind)).collect()
    }

    /// Minimum poisoned fraction across cells of the given kinds/mode.
    /// Returns 0.0 when no cell matches, so `min_poisoned(..) > 0`
    /// assertions cannot pass vacuously on an empty selection.
    pub fn min_poisoned(&self, kinds: &[AttackKind], mode: SecurityMode) -> f64 {
        let cells = self.select(kinds, mode);
        if cells.is_empty() {
            return 0.0;
        }
        cells.iter().map(|c| c.outcome.poisoned_fraction).fold(f64::INFINITY, f64::min)
    }

    /// Fraction of cells of the given kinds/mode whose attack was
    /// detected.
    pub fn detection_rate(&self, kinds: &[AttackKind], mode: SecurityMode) -> f64 {
        let cells = self.select(kinds, mode);
        if cells.is_empty() {
            return 0.0;
        }
        cells.iter().filter(|c| c.outcome.detected).count() as f64 / cells.len() as f64
    }

    /// Network-wide chain-verification statistics summed over the
    /// cells of `mode`: `(verify_calls, cache_hits)`. The E13 hit-rate
    /// source; not part of the rendered matrix (whose bytes are pinned
    /// by the determinism tests).
    pub fn verification_totals(&self, mode: SecurityMode) -> (u64, u64) {
        self.cells.iter().filter(|c| c.mode == mode).fold((0, 0), |(calls, hits), cell| {
            (calls + cell.outcome.verify_calls, hits + cell.outcome.verify_cache_hits)
        })
    }

    /// Exports per-strategy detection-latency histograms into
    /// `registry`: every in-band detection (`detection_time` is
    /// `Some`) lands one observation, in sim-time microseconds, in the
    /// `pvr_attack_detection_latency_us` histogram labelled
    /// `strategy`/`security_mode`. Post-hoc audits and PVR round
    /// verdicts carry no in-band time and add nothing.
    pub fn export_detection_latency(&self, registry: &mut pvr_obs::MetricsRegistry) {
        for cell in &self.cells {
            let Some(t) = cell.outcome.detection_time else { continue };
            let labels: pvr_obs::LabelSet = vec![
                ("strategy", cell.strategy.clone()),
                ("security_mode", cell.mode.label().to_string()),
            ];
            let id = registry.histogram(
                "pvr_attack_detection_latency_us",
                &labels,
                DETECTION_LATENCY_BUCKETS_US,
            );
            registry.observe(id, t.as_micros());
        }
    }

    /// The detection/impact matrix: one row per strategy, one column
    /// group per mode, averaged over placements.
    pub fn render_matrix(&self) -> String {
        let mut modes: Vec<SecurityMode> = Vec::new();
        let mut rows: Vec<(String, AttackKind)> = Vec::new();
        for c in &self.cells {
            if !modes.contains(&c.mode) {
                modes.push(c.mode);
            }
            if !rows.iter().any(|(s, _)| *s == c.strategy) {
                rows.push((c.strategy.clone(), c.kind));
            }
        }
        let mut out = String::new();
        write!(out, "{:<22} {:<12}", "strategy", "family").unwrap();
        for m in &modes {
            write!(out, " | {:^16}", m.label()).unwrap();
        }
        writeln!(out).unwrap();
        write!(out, "{:<22} {:<12}", "", "").unwrap();
        for _ in &modes {
            write!(out, " | {:>7} {:>8}", "poison", "detect").unwrap();
        }
        writeln!(out).unwrap();
        for (strategy, kind) in &rows {
            write!(out, "{:<22} {:<12}", strategy, kind.label()).unwrap();
            for &m in &modes {
                let cells: Vec<&CellResult> =
                    self.cells.iter().filter(|c| c.mode == m && &c.strategy == strategy).collect();
                let n = cells.len().max(1) as f64;
                let poison: f64 =
                    cells.iter().map(|c| c.outcome.poisoned_fraction).sum::<f64>() / n;
                let detected = cells.iter().filter(|c| c.outcome.detected).count();
                let det = if cells.is_empty() {
                    "-".to_string()
                } else if detected == cells.len() {
                    let blocked = cells.iter().all(|c| c.outcome.blocked);
                    if blocked {
                        "blocked".to_string()
                    } else {
                        "yes".to_string()
                    }
                } else if detected == 0 {
                    "no".to_string()
                } else {
                    format!("{}/{}", detected, cells.len())
                };
                write!(out, " | {:>6.1}% {:>8}", poison * 100.0, det).unwrap();
            }
            writeln!(out).unwrap();
        }
        out
    }
}
