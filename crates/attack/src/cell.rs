//! One campaign cell: a (strategy, placement, security mode) triple and
//! the machinery to execute it.

use crate::gossip::leak_gossip_audit;
use crate::metrics::{
    poisoning_scores, substrate_rejections, verification_stats, via_attacker, AttackOutcome,
};
use crate::strategy::SecurityMode;
use pvr_bgp::{Asn, BgpNetwork, InstantiateOptions, Prefix, Topology};
use pvr_core::{run_min_round, Figure1Bed, Misbehavior};
use pvr_crypto::drbg::HmacDrbg;
use pvr_netsim::{RunLimits, StopReason};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Event budget per simulation phase: a leaked or forged route can in
/// principle create a dispute wheel, and a diverging cell must yield a
/// scored (if degenerate) result instead of hanging the sweep.
const CELL_EVENT_BUDGET: u64 = 2_000_000;

/// A post-convergence injection hook: forged announcements that need a
/// settled network (e.g. a genuine chain to truncate) fire through one
/// of these after the first convergence pass.
pub type InjectHook<'a> = &'a dyn Fn(&mut BgpNetwork, &CellContext);

/// Everything one cell needs to execute, self-contained so cells can
/// run on any worker thread in any order.
#[derive(Clone)]
pub struct CellContext {
    /// The clean topology (pre-attack), shared across all cells.
    pub topology: Arc<Topology>,
    /// Customer-cone sizes, precomputed once per campaign (invariant
    /// across cells; recomputing per cell would be O(V·E) × cells).
    pub cones: Arc<BTreeMap<Asn, usize>>,
    /// The malicious AS.
    pub attacker: Asn,
    /// The AS whose prefix is under attack.
    pub victim: Asn,
    /// The victim's originated prefix.
    pub victim_prefix: Prefix,
    /// Security posture for this cell.
    pub mode: SecurityMode,
    /// Cell-local seed, derived from (campaign seed, cell index) so the
    /// result is independent of scheduling.
    pub seed: u64,
    /// RSA modulus size for signed modes.
    pub key_bits: usize,
}

impl CellContext {
    fn limits() -> RunLimits {
        RunLimits { deadline: None, max_events: Some(CELL_EVENT_BUDGET) }
    }

    fn instantiate(&self, signed: bool) -> BgpNetwork {
        let mut net = self.topology.instantiate(InstantiateOptions {
            seed: self.seed,
            signed,
            key_bits: self.key_bits,
            ..Default::default()
        });
        if signed {
            // Signed and Pvr modes deploy route-origin validation along
            // with path attestations.
            net.install_origin_table(Arc::new(self.topology.origin_table()));
        }
        net
    }

    /// Runs a routing-plane attack: `mount` arms the attacker before
    /// the network starts (originations, malice flags); `inject`, if
    /// given, fires after convergence (forged announcements that need a
    /// settled network to copy chains from) and the network is run
    /// again. Scores poisoning over `targets` against a clean baseline.
    pub fn run_topology_attack(
        &self,
        targets: &[Prefix],
        mount: impl FnOnce(&mut BgpNetwork, &CellContext),
        inject: Option<InjectHook<'_>>,
    ) -> AttackOutcome {
        // Clean baseline: which ASes legitimately route via the
        // attacker? (Plain instantiation — route selection is identical
        // across modes when nobody misbehaves, and it skips keygen.)
        let mut clean =
            self.topology.instantiate(InstantiateOptions { seed: self.seed, ..Default::default() });
        clean.converge(Self::limits());
        let baseline = via_attacker(&clean, self.attacker, &[self.victim_prefix]);
        drop(clean);

        // Attacked run.
        let signed = self.mode != SecurityMode::Plain;
        let mut net = self.instantiate(signed);
        mount(&mut net, self);
        // A cell that hits the event budget (a routing dispute wheel)
        // is scored from whatever state it reached — the budget exists
        // so one pathological cell cannot hang the sweep.
        let _stop: StopReason = net.converge(Self::limits());
        if let Some(inject) = inject {
            inject(&mut net, self);
            let _stop: StopReason = net.converge(Self::limits());
        }

        // Impact.
        let honest: BTreeSet<Asn> = net.ases().filter(|&a| a != self.attacker).collect();
        let poisoned: BTreeSet<Asn> =
            via_attacker(&net, self.attacker, targets).difference(&baseline).copied().collect();
        let (poisoned_fraction, cone_share) = poisoning_scores(&poisoned, &honest, &self.cones);

        // Detection.
        let (rejections, first_reject) =
            if signed { substrate_rejections(&net, self.attacker) } else { (0, None) };
        let leak_evidence = if self.mode == SecurityMode::Pvr {
            leak_gossip_audit(&net, self.attacker).len()
        } else {
            0
        };
        let evidence = rejections + leak_evidence;
        let (verify_calls, verify_cache_hits) = verification_stats(&net);
        AttackOutcome {
            poisoned_fraction,
            cone_share,
            detected: evidence > 0,
            evidence,
            detection_time: first_reject,
            blocked: rejections > 0 && poisoned.is_empty(),
            verify_calls,
            verify_cache_hits,
        }
    }

    /// Runs a PVR-round attack (promise or protocol misbehavior) on a
    /// Figure-1 bed derived from this cell's seed. Only the `Pvr` mode
    /// runs the verification round; under `Plain`/`Signed` there is no
    /// PVR machinery, so the violation goes unobserved by construction.
    pub fn run_pvr_round_attack(
        &self,
        make: impl FnOnce(&Figure1Bed) -> Misbehavior,
    ) -> AttackOutcome {
        if self.mode != SecurityMode::Pvr {
            return AttackOutcome::unobserved();
        }
        // Three providers; ns[0] holds the strict minimum so targeted
        // suppressions are genuine promise violations.
        let mut rng = HmacDrbg::from_u64_labeled(self.seed, "pvr-attack round-bed");
        let shortest = 1 + rng.below(2) as usize;
        let lens =
            [shortest, shortest + 1 + rng.below(3) as usize, shortest + 1 + rng.below(4) as usize];
        let bed = Figure1Bed::build(&lens, self.seed);
        let report = run_min_round(&bed, Some(make(&bed)));
        AttackOutcome {
            poisoned_fraction: 0.0,
            cone_share: 0.0,
            detected: report.detected(),
            evidence: report.verdicts.len(),
            detection_time: None,
            blocked: false,
            verify_calls: 0,
            verify_cache_hits: 0,
        }
    }
}
