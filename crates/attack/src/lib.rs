//! # pvr-attack — the adversarial campaign engine
//!
//! The paper argues that PVR lets networks detect policy violations
//! their neighbors cannot see. Arguing it requires an adversary worth
//! detecting: this crate sweeps a catalog of routing attacks — prefix
//! and sub-prefix hijacks, route leaks, forged and truncated
//! attestation chains, bogus promises, and the full Byzantine protocol
//! catalog from `pvr_core::adversary` — across attacker/victim
//! placements on Internet-like topologies, under three escalating
//! security postures ([`SecurityMode::Plain`], [`SecurityMode::Signed`],
//! [`SecurityMode::Pvr`]), and scores every cell for impact (poisoned
//! fraction, customer-cone-weighted traffic share) and detection
//! (substrate rejections, PVR verdicts, the gossip leak audit, and
//! detection latency).
//!
//! * [`strategy`] — the [`AttackStrategy`] trait and the catalog;
//! * [`cell`] — one (strategy, placement, mode) cell and its executor;
//! * [`metrics`] — impact/detection scoring;
//! * [`gossip`] — the §3.6-style gossip audit that exposes route leaks
//!   without revealing private relationships;
//! * [`campaign`] — the sweep runner and the detection/impact matrix;
//! * [`deployment`] — partial-deployment curves: attack success vs
//!   fraction of ASes running origin validation, with the unprotected
//!   fringe scored separately (experiment E16's deployment table);
//! * [`forensic`] — snapshot bisect over the durability layer's COW
//!   RIB history: find the first instant a hijack was visible without
//!   re-running the simulation;
//! * [`mod@sweep`] — the deterministic multi-threaded executor (the
//!   workspace's first parallel path: derived per-cell seeds, results
//!   merged in cell order, output independent of scheduling).
//!
//! ## Quickstart
//!
//! ```no_run
//! use pvr_attack::{Campaign, CampaignConfig};
//!
//! let report = Campaign::new(CampaignConfig::quick(7)).run();
//! println!("{}", report.render_matrix());
//! ```
//!
//! Experiment `e12` in `pvr-bench` prints the full matrix; the
//! integration tests assert its headline claims (plain BGP poisons,
//! signed BGP still misses leaks and promises, PVR detects them all).

pub mod campaign;
pub mod cell;
pub mod deployment;
pub mod forensic;
pub mod gossip;
pub mod metrics;
pub mod strategy;
pub mod sweep;

pub use campaign::{
    choose_placements, Campaign, CampaignConfig, CampaignReport, CellResult, Placement,
    DETECTION_LATENCY_BUCKETS_US,
};
pub use cell::CellContext;
pub use deployment::{deployment_sweep, DeploymentPoint, DeploymentSweepConfig};
pub use forensic::{bisect_first_poisoned, ForensicBisect};
pub use gossip::{leak_gossip_audit, LeakEvidence};
pub use metrics::AttackOutcome;
pub use strategy::{catalog, AttackKind, AttackStrategy, SecurityMode};
pub use sweep::{default_parallelism, sweep};
