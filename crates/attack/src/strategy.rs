//! The attack catalog: every strategy the campaign engine can mount.
//!
//! The taxonomy follows the hijack/interception/leak classification of
//! the routing-attack literature plus the PVR paper's own Byzantine
//! catalog (`pvr_core::adversary`):
//!
//! | strategy            | family      | Plain      | Signed        | Pvr                    |
//! |---------------------|-------------|------------|---------------|------------------------|
//! | prefix hijack       | Hijack      | poisons    | blocked (ROV) | blocked (ROV)          |
//! | sub-prefix hijack   | Hijack      | poisons    | blocked (ROV) | blocked (ROV)          |
//! | route leak          | Leak        | poisons    | **poisons, undetected** | detected (gossip audit) |
//! | forged attestation  | Attestation | poisons    | blocked       | blocked                |
//! | truncated chain     | Attestation | poisons    | blocked       | blocked                |
//! | bogus promise       | Promise     | unobserved | unobserved    | detected (PVR round)   |
//! | protocol misbehavior| Protocol    | unobserved | unobserved    | detected (PVR round)   |
//!
//! The route-leak row is the paper's motivation in one line: S-BGP
//! attests *paths*, not *policies*, so a leak sails through signed
//! infrastructure — only promise verification catches it.

use crate::cell::CellContext;
use crate::metrics::AttackOutcome;
use pvr_bgp::{
    AsPath, Attestation, AttestationChain, BgpNetwork, BgpUpdate, Malice, Route, SignedRoute,
};
use pvr_core::Misbehavior;

/// The security posture a campaign cell runs under.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum SecurityMode {
    /// Plain BGP: no signatures, no origin validation, no PVR.
    Plain,
    /// S-BGP path attestations plus route-origin validation.
    Signed,
    /// `Signed` plus PVR promise verification and the gossip audit.
    Pvr,
}

impl SecurityMode {
    /// All modes, in escalation order.
    pub const ALL: [SecurityMode; 3] =
        [SecurityMode::Plain, SecurityMode::Signed, SecurityMode::Pvr];

    /// Short table label.
    pub fn label(self) -> &'static str {
        match self {
            SecurityMode::Plain => "plain",
            SecurityMode::Signed => "signed",
            SecurityMode::Pvr => "pvr",
        }
    }
}

/// Attack families; detection expectations are per-family.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum AttackKind {
    /// Unauthorized origination of someone else's address space.
    Hijack,
    /// Policy-violating re-export of genuinely learned routes.
    Leak,
    /// Announcements whose attestation chain is forged or truncated.
    Attestation,
    /// A promise the committer does not actually implement.
    Promise,
    /// Byzantine behaviour inside the PVR protocol itself.
    Protocol,
}

impl AttackKind {
    /// Short table label.
    pub fn label(self) -> &'static str {
        match self {
            AttackKind::Hijack => "hijack",
            AttackKind::Leak => "leak",
            AttackKind::Attestation => "attestation",
            AttackKind::Promise => "promise",
            AttackKind::Protocol => "protocol",
        }
    }
}

/// One mountable attack. Implementations are stateless and shared
/// across worker threads; everything cell-specific arrives via the
/// [`CellContext`].
pub trait AttackStrategy: Send + Sync {
    /// Stable row name for tables and JSON.
    fn name(&self) -> &str;
    /// The family this strategy belongs to.
    fn kind(&self) -> AttackKind;
    /// Mounts the attack in `ctx` and scores it.
    fn execute(&self, ctx: &CellContext) -> AttackOutcome;
}

/// The full catalog, in canonical row order: the five routing-plane
/// strategies, the bogus promise, and one protocol strategy per
/// remaining `Misbehavior` variant.
pub fn catalog() -> Vec<Box<dyn AttackStrategy>> {
    let mut out: Vec<Box<dyn AttackStrategy>> = vec![
        Box::new(PrefixHijack),
        Box::new(SubPrefixHijack),
        Box::new(RouteLeak),
        Box::new(ForgedAttestation),
        Box::new(TruncatedChain),
        Box::new(BogusPromise),
    ];
    // `ExportLonger` is the bogus promise above; the rest of the
    // Misbehavior catalog rides in as protocol attacks. The dummy
    // victim is replaced per-cell once the bed (and its minimum-route
    // holder) exists.
    for (index, m) in Misbehavior::catalog(pvr_bgp::Asn(0)).into_iter().enumerate() {
        if matches!(m, Misbehavior::ExportLonger) {
            continue;
        }
        out.push(Box::new(ProtocolAttack { index, name: format!("pvr-{}", m.label()) }));
    }
    out
}

/// Originate the victim's exact prefix from the attacker.
pub struct PrefixHijack;

impl AttackStrategy for PrefixHijack {
    fn name(&self) -> &str {
        "prefix-hijack"
    }
    fn kind(&self) -> AttackKind {
        AttackKind::Hijack
    }
    fn execute(&self, ctx: &CellContext) -> AttackOutcome {
        ctx.run_topology_attack(
            &[ctx.victim_prefix],
            |net, c| net.router_mut(c.attacker).originate(c.victim_prefix),
            None,
        )
    }
}

/// Originate a more-specific prefix inside the victim's block:
/// longest-prefix match steers the covered traffic to the attacker even
/// where the victim's own route survives.
pub struct SubPrefixHijack;

/// The attacker's more-specific: one extra prefix bit.
pub fn sub_prefix_of(p: pvr_bgp::Prefix) -> pvr_bgp::Prefix {
    pvr_bgp::Prefix::new(p.addr(), (p.len() + 1).min(32))
}

impl AttackStrategy for SubPrefixHijack {
    fn name(&self) -> &str {
        "subprefix-hijack"
    }
    fn kind(&self) -> AttackKind {
        AttackKind::Hijack
    }
    fn execute(&self, ctx: &CellContext) -> AttackOutcome {
        let sub = sub_prefix_of(ctx.victim_prefix);
        ctx.run_topology_attack(
            &[ctx.victim_prefix, sub],
            move |net, c| net.router_mut(c.attacker).originate(sub),
            None,
        )
    }
}

/// Re-export everything to everyone: the customer→provider route leak.
pub struct RouteLeak;

impl AttackStrategy for RouteLeak {
    fn name(&self) -> &str {
        "route-leak"
    }
    fn kind(&self) -> AttackKind {
        AttackKind::Leak
    }
    fn execute(&self, ctx: &CellContext) -> AttackOutcome {
        ctx.run_topology_attack(
            &[ctx.victim_prefix],
            |net, c| net.router_mut(c.attacker).set_malice(Malice { leak_all: true }),
            None,
        )
    }
}

/// Builds the attacker's fabricated two-hop route `[attacker, victim]`
/// for the victim prefix and sends one copy to each neighbor. In signed
/// modes the inner "victim" attestation is forged (signed with the
/// attacker's key); in plain mode the announcement is simply unsigned.
fn inject_short_path(net: &mut BgpNetwork, ctx: &CellContext, forged_chain: bool) {
    let mut route = Route::originate(ctx.victim_prefix);
    route.path = AsPath::from_slice(&[ctx.attacker, ctx.victim]);
    let identity = net.router(ctx.attacker).identity().cloned();
    for (neighbor, _) in ctx.topology.neighbor_roles(ctx.attacker) {
        if neighbor == ctx.victim {
            continue; // the victim would loop-reject its own ASN anyway
        }
        let sr = match (&identity, forged_chain) {
            (Some(id), true) => {
                // The attacker's own (outer) attestation is genuine; the
                // inner one impersonates the victim but carries the
                // attacker's signature — exactly what chain verification
                // exists to catch.
                let outer = Attestation::create(id, ctx.victim_prefix, &route.path, neighbor);
                let mut inner = outer.clone();
                inner.signer = ctx.victim;
                inner.path = AsPath::from_slice(&[ctx.victim]);
                inner.target = ctx.attacker;
                SignedRoute::with_chain(
                    route.clone(),
                    AttestationChain::from_attestations(vec![inner, outer]),
                )
            }
            _ => SignedRoute::unsigned(route.clone()),
        };
        let update = BgpUpdate { announces: vec![sr], withdraws: vec![] };
        let (src, dst) = (net.node_of(ctx.attacker), net.node_of(neighbor));
        net.sim.inject(src, dst, update);
    }
}

/// Announce a fabricated short path with a forged attestation chain.
pub struct ForgedAttestation;

impl AttackStrategy for ForgedAttestation {
    fn name(&self) -> &str {
        "forged-attestation"
    }
    fn kind(&self) -> AttackKind {
        AttackKind::Attestation
    }
    fn execute(&self, ctx: &CellContext) -> AttackOutcome {
        ctx.run_topology_attack(
            &[ctx.victim_prefix],
            |_, _| {},
            Some(&|net: &mut BgpNetwork, c: &CellContext| {
                let forged = c.mode != SecurityMode::Plain;
                inject_short_path(net, c, forged);
            }),
        )
    }
}

/// Shorten a genuinely learned route by splicing out the middle of its
/// attestation chain (path-shortening / interception attack).
pub struct TruncatedChain;

impl AttackStrategy for TruncatedChain {
    fn name(&self) -> &str {
        "truncated-chain"
    }
    fn kind(&self) -> AttackKind {
        AttackKind::Attestation
    }
    fn execute(&self, ctx: &CellContext) -> AttackOutcome {
        ctx.run_topology_attack(
            &[ctx.victim_prefix],
            |_, _| {},
            Some(&|net: &mut BgpNetwork, c: &CellContext| {
                if c.mode == SecurityMode::Plain {
                    // No chains to truncate: the plain-mode equivalent is
                    // announcing the shortened path outright.
                    inject_short_path(net, c, false);
                    return;
                }
                // Take the chain the attacker genuinely received and keep
                // only its endpoints: the victim's origination and a fresh
                // attacker attestation over the shortened path. The
                // origination's target still names the victim's real first
                // hop, which is what verification trips on.
                let genuine = {
                    let router = net.router(c.attacker);
                    let Some(best) = router.best_route(c.victim_prefix) else { return };
                    let Some(from) = best.learned_from else { return };
                    let Some(chain) = router.received_chain(from, c.victim_prefix) else { return };
                    chain.clone()
                };
                let Some(origin_att) = genuine.chain().origin().cloned() else { return };
                let Some(identity) = net.router(c.attacker).identity().cloned() else { return };
                let mut route = Route::originate(c.victim_prefix);
                route.path = AsPath::from_slice(&[c.attacker, c.victim]);
                for (neighbor, _) in c.topology.neighbor_roles(c.attacker) {
                    if neighbor == c.victim {
                        continue;
                    }
                    let outer =
                        Attestation::create(&identity, c.victim_prefix, &route.path, neighbor);
                    let sr = SignedRoute::with_chain(
                        route.clone(),
                        AttestationChain::from_attestations(vec![origin_att.clone(), outer]),
                    );
                    let update = BgpUpdate { announces: vec![sr], withdraws: vec![] };
                    let (src, dst) = (net.node_of(c.attacker), net.node_of(neighbor));
                    net.sim.inject(src, dst, update);
                }
            }),
        )
    }
}

/// Promise the shortest route, export a longer one (`ExportLonger`):
/// the paper's Figure-1 violation, undetectable below PVR.
pub struct BogusPromise;

impl AttackStrategy for BogusPromise {
    fn name(&self) -> &str {
        "bogus-promise"
    }
    fn kind(&self) -> AttackKind {
        AttackKind::Promise
    }
    fn execute(&self, ctx: &CellContext) -> AttackOutcome {
        ctx.run_pvr_round_attack(|_| Misbehavior::ExportLonger)
    }
}

/// One Byzantine strategy from `pvr_core::adversary`, mounted inside a
/// PVR round. `index` addresses `Misbehavior::catalog`, re-derived per
/// cell so victim-targeted variants aim at the bed's minimum holder.
pub struct ProtocolAttack {
    pub(crate) index: usize,
    pub(crate) name: String,
}

impl AttackStrategy for ProtocolAttack {
    fn name(&self) -> &str {
        &self.name
    }
    fn kind(&self) -> AttackKind {
        AttackKind::Protocol
    }
    fn execute(&self, ctx: &CellContext) -> AttackOutcome {
        ctx.run_pvr_round_attack(|bed| Misbehavior::catalog(bed.ns[0])[self.index].clone())
    }
}
