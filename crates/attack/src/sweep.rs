//! The deterministic parallel sweep executor.
//!
//! This is the workspace's first parallel execution path, so the rules
//! that keep it reproducible are worth stating explicitly:
//!
//! 1. every cell's computation is a pure function of its index (callers
//!    derive a per-cell [`pvr_crypto::drbg::HmacDrbg`] seed from the
//!    campaign seed and the index, never from shared mutable state);
//! 2. workers pull indices from an atomic counter (work stealing, so a
//!    slow cell does not stall a whole stripe);
//! 3. results land in an index-addressed slot table and are returned in
//!    cell order — the output is byte-identical no matter how the
//!    scheduler interleaved the workers.
//!
//! `e12` and `tests/attack_campaigns.rs` assert property 3 by diffing a
//! single-threaded run against a multi-threaded one.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Runs `run(i)` for every `i` in `0..n` on up to `threads` scoped
/// worker threads and returns the results in index order.
///
/// With `threads <= 1` (or a single cell) the sweep degrades to a plain
/// sequential loop — the reference against which parallel runs are
/// compared. Panics in any cell propagate to the caller.
pub fn sweep<T, F>(n: usize, threads: usize, run: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.max(1).min(n.max(1));
    if threads <= 1 {
        return (0..n).map(run).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<T>>> = Mutex::new((0..n).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let result = run(i);
                slots.lock().expect("sweep slot table poisoned")[i] = Some(result);
            });
        }
    });
    slots
        .into_inner()
        .expect("sweep slot table poisoned")
        .into_iter()
        .map(|slot| slot.expect("every cell index visited"))
        .collect()
}

/// The executor's default thread count: the machine's available
/// parallelism, floored at 1.
pub fn default_parallelism() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_and_parallel_agree() {
        let f = |i: usize| (i as u64).wrapping_mul(0x9e3779b97f4a7c15).to_be_bytes().to_vec();
        let serial = sweep(64, 1, f);
        for threads in [2, 4, 8] {
            assert_eq!(sweep(64, threads, f), serial, "threads={threads}");
        }
    }

    #[test]
    fn empty_and_single_cell() {
        assert!(sweep(0, 4, |i| i).is_empty());
        assert_eq!(sweep(1, 4, |i| i * 2), vec![0]);
    }

    #[test]
    fn oversubscribed_threads_clamp() {
        assert_eq!(sweep(3, 64, |i| i), vec![0, 1, 2]);
    }
}
