//! Impact and detection scoring for one campaign cell.

use pvr_bgp::{Asn, BgpNetwork, BgpRouter, Prefix};
use pvr_netsim::SimTime;
use std::collections::{BTreeMap, BTreeSet};

/// What one mounted attack achieved and what the defenses saw.
///
/// Detection semantics differ by family: substrate rejections
/// (attestation/origin failures) are *preventive* — the poisoned
/// fraction they leave behind is zero — while PVR verdicts and the
/// gossip audit are *detective*: the traffic moved, but the violator
/// is caught with transferable evidence.
#[derive(Clone, Debug, PartialEq)]
pub struct AttackOutcome {
    /// Fraction of honest ASes whose best route to a target prefix
    /// traverses the attacker although it did not in the clean baseline.
    pub poisoned_fraction: f64,
    /// The same set weighted by customer-cone size — a proxy for the
    /// share of Internet traffic the attacker now sees.
    pub cone_share: f64,
    /// Did any honest party detect the attack under this security mode?
    pub detected: bool,
    /// Transferable evidence items (substrate rejections, PVR verdicts,
    /// gossip findings) backing the detection.
    pub evidence: usize,
    /// Simulated time of the first security rejection, when the
    /// substrate caught the attack in-band (`None` for post-hoc audits
    /// and PVR round verdicts).
    pub detection_time: Option<SimTime>,
    /// True when the substrate dropped every malicious announcement —
    /// the attack was not merely detected but never took effect.
    pub blocked: bool,
    /// Attestation-signature checks performed network-wide during the
    /// attacked run (signed modes; 0 under `Plain`).
    pub verify_calls: u64,
    /// How many of those the network-wide verification cache answered
    /// without RSA math — the E13 chain-verify hit-rate source.
    pub verify_cache_hits: u64,
}

impl AttackOutcome {
    /// An outcome for attacks with no routing-plane footprint (PVR
    /// round attacks in modes without PVR verification).
    pub fn unobserved() -> AttackOutcome {
        AttackOutcome {
            poisoned_fraction: 0.0,
            cone_share: 0.0,
            detected: false,
            evidence: 0,
            detection_time: None,
            blocked: false,
            verify_calls: 0,
            verify_cache_hits: 0,
        }
    }
}

/// The set of ASes whose current best route to any of `targets`
/// traverses `attacker` (the attacker itself excluded).
pub fn via_attacker(net: &BgpNetwork, attacker: Asn, targets: &[Prefix]) -> BTreeSet<Asn> {
    let mut out = BTreeSet::new();
    for asn in net.ases() {
        if asn == attacker {
            continue;
        }
        let router: &BgpRouter = net.router(asn);
        for &p in targets {
            if let Some(best) = router.best_route(p) {
                if best.route.path.contains(attacker) {
                    out.insert(asn);
                }
            }
        }
    }
    out
}

/// Aggregates a poisoned set into (fraction of honest ASes, customer-
/// cone-weighted share). `cones` comes from
/// [`pvr_bgp::Topology::customer_cone_sizes`].
pub fn poisoning_scores(
    poisoned: &BTreeSet<Asn>,
    honest: &BTreeSet<Asn>,
    cones: &BTreeMap<Asn, usize>,
) -> (f64, f64) {
    if honest.is_empty() {
        return (0.0, 0.0);
    }
    let weight = |asn: Asn| cones.get(&asn).copied().unwrap_or(1) as f64;
    let total: f64 = honest.iter().map(|&a| weight(a)).sum();
    let hit: f64 = poisoned.iter().map(|&a| weight(a)).sum();
    (poisoned.len() as f64 / honest.len() as f64, if total > 0.0 { hit / total } else { 0.0 })
}

/// Network-wide verification-cache statistics: `(calls, hits)` from
/// the shared [`pvr_bgp::VerifyCache`], or zeros in plain mode.
pub fn verification_stats(net: &BgpNetwork) -> (u64, u64) {
    net.verify_cache().map_or((0, 0), |c| (c.calls(), c.hits()))
}

/// Sums security rejections (attestation + origin failures) across all
/// honest routers and returns `(count, earliest rejection time)`.
pub fn substrate_rejections(net: &BgpNetwork, attacker: Asn) -> (usize, Option<SimTime>) {
    let mut count = 0usize;
    let mut first: Option<SimTime> = None;
    for asn in net.ases() {
        if asn == attacker {
            continue;
        }
        let router = net.router(asn);
        let stats = router.stats();
        count += (stats.attestation_failures + stats.origin_failures) as usize;
        if let Some(t) = router.first_security_reject() {
            first = Some(first.map_or(t, |f| f.min(t)));
        }
    }
    (count, first)
}
