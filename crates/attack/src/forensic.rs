//! Post-incident forensics over the durability layer's RIB history:
//! given a network that converged with copy-on-write snapshots enabled
//! (see `pvr_bgp::checkpoint`), binary-search the retained history for
//! the **first snapshot at which a hijack was visible** — without
//! re-running the simulation.
//!
//! This is the read side of the crash-consistency PR's time-travel
//! queries: `route_at` answers "what did AS x believe about prefix p
//! at time t" from shared-subtree snapshots, so probing a snapshot
//! costs O(poisonable ASes · log history) trie lookups, not a replay.
//!
//! The bisect assumes the predicate is *monotone* over the retained
//! window — once the hijack is visible it stays visible — which holds
//! for an originated hijack that is never withdrawn (the campaign
//! catalog's hijack cells). For flapping incidents, scan linearly.

use pvr_bgp::{Asn, BgpNetwork, Prefix};
use pvr_netsim::SimTime;
use std::collections::BTreeSet;

/// What the snapshot bisect found.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ForensicBisect {
    /// Capture time of the earliest retained snapshot where the
    /// hijack was visible.
    pub first_poisoned_at: SimTime,
    /// ASes whose snapshot route for the prefix went through the
    /// attacker at that instant.
    pub poisoned: BTreeSet<Asn>,
    /// Snapshots the binary search probed (≈ log₂ of history length —
    /// the point of bisecting instead of scanning).
    pub probes: usize,
}

/// Which honest ASes routed `prefix` through `attacker` in the
/// snapshot covering `t`.
fn poisoned_at(net: &BgpNetwork, attacker: Asn, prefix: Prefix, t: SimTime) -> BTreeSet<Asn> {
    let mut out = BTreeSet::new();
    for asn in net.ases() {
        if asn == attacker {
            continue;
        }
        if let Some(cand) = net.route_at(asn, prefix, t) {
            if cand.route.path.contains(attacker) || cand.learned_from == Some(attacker) {
                out.insert(asn);
            }
        }
    }
    out
}

/// Binary-searches the network's snapshot history for the first
/// instant at which any honest AS routed `prefix` through `attacker`.
/// `None` when the history never shows the hijack (or is empty).
pub fn bisect_first_poisoned(
    net: &BgpNetwork,
    attacker: Asn,
    prefix: Prefix,
) -> Option<ForensicBisect> {
    let times = net.snapshot_times();
    if times.is_empty() {
        return None;
    }
    let mut probes = 0;
    let mut probe = |t: SimTime| {
        probes += 1;
        poisoned_at(net, attacker, prefix, t)
    };
    // Invariant: predicate false strictly before `lo`'s snapshot, true
    // at `hi`'s (once established).
    if probe(*times.last().expect("nonempty")).is_empty() {
        return None;
    }
    let (mut lo, mut hi) = (0usize, times.len() - 1);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if probe(times[mid]).is_empty() {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    let first_poisoned_at = times[lo];
    let poisoned = poisoned_at(net, attacker, prefix, first_poisoned_at);
    Some(ForensicBisect { first_poisoned_at, poisoned, probes })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pvr_bgp::{InstantiateOptions, Topology};
    use pvr_netsim::{RunLimits, SimDuration};

    /// Victim and observer hang off a shared transit; the attacker is
    /// the observer's *customer*, so when it originates the victim's
    /// prefix after a delay, Gao–Rexford preference (customer beats
    /// provider) makes the observer switch to the hijacked route —
    /// early snapshots are clean, late ones are poisoned.
    #[test]
    fn bisect_finds_the_first_poisoned_snapshot() {
        let (victim, transit, observer, attacker) = (Asn(1), Asn(2), Asn(3), Asn(66));
        let prefix = Prefix::parse("192.0.2.0/24").expect("parse");
        let mut topology = Topology::new();
        topology.provider_customer(transit, victim);
        topology.provider_customer(transit, observer);
        topology.provider_customer(observer, attacker);
        topology.originate(victim, prefix);
        topology.schedule(
            attacker,
            SimDuration::from_millis(60),
            pvr_bgp::LocalEvent::Announce(prefix),
        );

        let mut net = topology.instantiate(InstantiateOptions { seed: 11, ..Default::default() });
        net.converge_with_snapshots(RunLimits::none(), SimDuration::from_millis(10));

        let hit = bisect_first_poisoned(&net, attacker, prefix).expect("hijack is in history");
        // The hijack fired at 60 ms; the first poisoned snapshot is the
        // first boundary at/after propagation, and certainly after the
        // clean early window.
        assert!(hit.first_poisoned_at > SimTime(50_000), "{:?}", hit.first_poisoned_at);
        assert!(!hit.poisoned.is_empty());
        // The bisect probed fewer snapshots than a linear scan would.
        assert!(hit.probes <= net.snapshot_times().len());
        // And every earlier snapshot is clean.
        let times = net.snapshot_times();
        for &t in times.iter().filter(|&&t| t < hit.first_poisoned_at) {
            assert!(poisoned_at(&net, attacker, prefix, t).is_empty(), "clean before first hit");
        }
    }

    #[test]
    fn bisect_returns_none_without_a_hijack() {
        let (victim, transit) = (Asn(1), Asn(2));
        let prefix = Prefix::parse("192.0.2.0/24").expect("parse");
        let mut topology = Topology::new();
        topology.provider_customer(transit, victim);
        topology.originate(victim, prefix);
        let mut net = topology.instantiate(InstantiateOptions { seed: 12, ..Default::default() });
        net.converge_with_snapshots(RunLimits::none(), SimDuration::from_millis(10));
        assert_eq!(bisect_first_poisoned(&net, Asn(66), prefix), None);
    }
}
