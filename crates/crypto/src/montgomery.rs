//! Montgomery modular arithmetic: the fast path under every RSA
//! operation in the workspace.
//!
//! The schoolbook [`Ubig::modpow_schoolbook`](crate::bignum::Ubig::modpow_schoolbook)
//! costs a full double-width multiplication *plus a Knuth Algorithm D
//! division* per exponent bit. Montgomery's method trades the division
//! for two extra multiplications *once* (at context build), after which
//! every modular multiplication is a single interleaved multiply-reduce
//! pass (REDC) with no division at all. Three further levers stack on
//! top, and together they are where experiment E13's sign/verify/modpow
//! speedups come from:
//!
//! * **fused FIOS multiply** — the `a·b` accumulation and the `m·n`
//!   fold run as one loop with two independent carry chains, which the
//!   CPU overlaps;
//! * **dedicated squaring** — `a²` computes only the upper-triangle
//!   products, doubles them, then reduces (≈1.5k² multiplies instead
//!   of 2k²), with a two-way interleaved reduction at RSA-2048 size;
//! * **adaptive fixed-window exponentiation** — window width 1–5
//!   chosen from the exponent length, so a full-length CRT exponent
//!   gets a 4/5-bit window (¼ the multiplies of square-and-multiply)
//!   while `e = 65537` skips table building entirely.
//!
//! Kernels are monomorphized over the limb count for the sizes RSA
//! actually uses (1–32 limbs in powers of two), with a dynamic-width
//! fallback for everything else.
//!
//! # REDC invariants
//!
//! A [`Montgomery`] context for an odd modulus `n` of `k` 64-bit limbs
//! fixes `R = 2^(64k)` and maintains:
//!
//! * `gcd(R, n) = 1` — guaranteed by `n` odd; this is why even moduli
//!   cannot use this path and fall back to schoolbook arithmetic;
//! * `n0_inv = -n^(-1) mod 2^64` — the per-limb folding constant,
//!   computed by Newton–Hensel lifting from `n`'s low limb;
//! * `r1 = R mod n` — the Montgomery form of 1 (`to_mont(1)`);
//! * `r2 = R² mod n` — the conversion constant: `to_mont(x)` is
//!   `redc(x · r2)` and `from_mont(x̄)` is `redc(x̄ · 1)`.
//!
//! Every kernel takes inputs `< n` and returns a fully reduced result
//! in `[0, n)` (the classic CIOS bound keeps the pre-subtraction value
//! `< 2n`, so one conditional final subtraction suffices). All
//! arithmetic is variable-time, like the rest of this crate: fine for
//! a research simulator, never for production cryptography.

use crate::bignum::Ubig;

/// A precomputed Montgomery context for one odd modulus.
///
/// Build it once per modulus ([`Montgomery::new`]), then every
/// [`mul`](Montgomery::mul), [`square`](Montgomery::square), and
/// [`pow`](Montgomery::pow) runs division-free. [`crate::rsa`] caches
/// one context per key (for `n`, `p`, and `q`) so repeated sign/verify
/// calls pay the precomputation exactly once.
#[derive(Clone, Debug)]
pub struct Montgomery {
    /// The modulus.
    n: Ubig,
    /// The modulus as exactly `k` little-endian limbs.
    n_limbs: Vec<u64>,
    /// Limb count of the modulus; `R = 2^(64k)`.
    k: usize,
    /// `-n^(-1) mod 2^64`.
    n0_inv: u64,
    /// `R mod n`: the Montgomery form of 1.
    r1: Vec<u64>,
    /// `R² mod n`: the to-Montgomery conversion constant.
    r2: Vec<u64>,
}

impl Montgomery {
    /// Builds a context for `n`. Returns `None` when `n` is even or
    /// `n ≤ 1`: REDC requires `gcd(R, n) = 1`, which fails for even
    /// `n`, and a modulus of 0 or 1 has no useful residue ring.
    pub fn new(n: &Ubig) -> Option<Montgomery> {
        if n.is_even() || n.is_one() {
            return None;
        }
        let n_limbs = n.limbs().to_vec();
        let k = n_limbs.len();
        // Newton–Hensel: for odd n0, x = n0 is an inverse mod 2^3;
        // each iteration doubles the valid bit count, so five reach 96
        // ≥ 64 bits. Negate to get the REDC folding constant.
        let n0 = n_limbs[0];
        let mut inv = n0;
        for _ in 0..5 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(n0.wrapping_mul(inv)));
        }
        debug_assert_eq!(n0.wrapping_mul(inv), 1);
        let r1 = Ubig::one().shl(64 * k).rem(n);
        let r2 = r1.mul(&r1).rem(n);
        Some(Montgomery {
            n: n.clone(),
            n_limbs,
            k,
            n0_inv: inv.wrapping_neg(),
            r1: pad_limbs(&r1, k),
            r2: pad_limbs(&r2, k),
        })
    }

    /// The modulus this context reduces by.
    pub fn modulus(&self) -> &Ubig {
        &self.n
    }

    /// Montgomery product `out = a·b·R^(-1) mod n`, dispatching to the
    /// monomorphized kernel for this modulus width. `a`, `b`, `out`
    /// are `k` limbs; `t` is the `k + 1`-limb scratch.
    fn mont_mul_buf(&self, a: &[u64], b: &[u64], t: &mut [u64], out: &mut [u64]) {
        let n = &self.n_limbs[..];
        let inv = self.n0_inv;
        match self.k {
            1 => fios::<1>(cvt(a), cvt(b), cvt(n), inv, t),
            2 => fios::<2>(cvt(a), cvt(b), cvt(n), inv, t),
            4 => fios::<4>(cvt(a), cvt(b), cvt(n), inv, t),
            8 => fios::<8>(cvt(a), cvt(b), cvt(n), inv, t),
            16 => fios::<16>(cvt(a), cvt(b), cvt(n), inv, t),
            32 => fios::<32>(cvt(a), cvt(b), cvt(n), inv, t),
            k => fios_dyn(a, b, n, inv, t, k),
        }
        final_sub(t[self.k], &t[..self.k], n, out);
    }

    /// Montgomery square `out = a²·R^(-1) mod n`. `u` is the
    /// `2k + 1`-limb scratch.
    fn mont_sqr_buf(&self, a: &[u64], u: &mut [u64], out: &mut [u64]) {
        let n = &self.n_limbs[..];
        let inv = self.n0_inv;
        match self.k {
            1 => sqr::<1>(cvt(a), cvt(n), inv, u),
            2 => sqr::<2>(cvt(a), cvt(n), inv, u),
            4 => sqr::<4>(cvt(a), cvt(n), inv, u),
            8 => sqr::<8>(cvt(a), cvt(n), inv, u),
            16 => sqr::<16>(cvt(a), cvt(n), inv, u),
            32 => sqr::<32>(cvt(a), cvt(n), inv, u),
            k => sqr_dyn(a, n, inv, u, k),
        }
        final_sub(u[2 * self.k], &u[self.k..2 * self.k], n, out);
    }

    /// `(a · b) mod n`, division-free: `redc(redc(a·b), r2)` — the
    /// first pass yields `a·b·R^(-1)`, the second multiplies the `R`
    /// back in.
    pub fn mul(&self, a: &Ubig, b: &Ubig) -> Ubig {
        let k = self.k;
        let a = pad_limbs(&a.rem(&self.n), k);
        let b = pad_limbs(&b.rem(&self.n), k);
        let mut t = vec![0u64; k + 1];
        let mut lo = vec![0u64; k];
        let mut out = vec![0u64; k];
        self.mont_mul_buf(&a, &b, &mut t, &mut lo);
        self.mont_mul_buf(&lo, &self.r2, &mut t, &mut out);
        Ubig::from_limbs(out)
    }

    /// `a² mod n`, division-free, on the dedicated squaring kernel.
    pub fn square(&self, a: &Ubig) -> Ubig {
        let k = self.k;
        let a = pad_limbs(&a.rem(&self.n), k);
        let mut u = vec![0u64; 2 * k + 1];
        let mut t = vec![0u64; k + 1];
        let mut lo = vec![0u64; k];
        let mut out = vec![0u64; k];
        self.mont_sqr_buf(&a, &mut u, &mut lo);
        self.mont_mul_buf(&lo, &self.r2, &mut t, &mut out);
        Ubig::from_limbs(out)
    }

    /// `base^exp mod n` by fixed-window exponentiation over Montgomery
    /// products: `2^w` precomputed powers, then `w` squarings plus at
    /// most one table multiply per exponent window, with `w` chosen
    /// from the exponent length (so `e = 65537` degenerates to plain
    /// square-and-multiply with no table at all).
    pub fn pow(&self, base: &Ubig, exp: &Ubig) -> Ubig {
        let k = self.k;
        if exp.is_zero() {
            return Ubig::one(); // n > 1, so 1 mod n = 1
        }
        let bits = exp.bit_len();
        let w = window_width(bits);
        let mut t = vec![0u64; k + 1];
        let mut u = vec![0u64; 2 * k + 1];
        let mut tmp = vec![0u64; k];

        // table[d] = base^d in Montgomery form, d < 2^w.
        let base_red = pad_limbs(&base.rem(&self.n), k);
        let mut table: Vec<Vec<u64>> = vec![vec![0u64; k]; 1 << w];
        table[0].copy_from_slice(&self.r1);
        self.mont_mul_buf(&base_red, &self.r2, &mut t, &mut tmp);
        table[1].copy_from_slice(&tmp);
        for d in 2..1 << w {
            let (lo, hi) = table.split_at_mut(d);
            self.mont_mul_buf(&lo[d - 1], &lo[1], &mut t, &mut hi[0]);
        }

        let exp_limbs = exp.limbs();
        // The w-bit window at position widx (bits widx·w .. widx·w+w).
        let digit = |widx: usize| -> usize {
            let bit = widx * w;
            let (limb, off) = (bit / 64, bit % 64);
            let lo = exp_limbs.get(limb).copied().unwrap_or(0) >> off;
            let hi = if off + w > 64 {
                exp_limbs.get(limb + 1).copied().unwrap_or(0) << (64 - off)
            } else {
                0
            };
            ((lo | hi) as usize) & ((1 << w) - 1)
        };

        let nwin = bits.div_ceil(w);
        let mut acc = table[digit(nwin - 1)].clone();
        for widx in (0..nwin - 1).rev() {
            for _ in 0..w {
                self.mont_sqr_buf(&acc, &mut u, &mut tmp);
                std::mem::swap(&mut acc, &mut tmp);
            }
            let d = digit(widx);
            if d != 0 {
                self.mont_mul_buf(&acc, &table[d], &mut t, &mut tmp);
                std::mem::swap(&mut acc, &mut tmp);
            }
        }

        // from_mont: one REDC against the plain value 1.
        let mut one = vec![0u64; k];
        one[0] = 1;
        self.mont_mul_buf(&acc, &one, &mut t, &mut tmp);
        Ubig::from_limbs(tmp)
    }
}

/// Window width for an exponent of `bits` bits: balances the `2^w - 2`
/// table multiplies against the `bits/w` saved window multiplies.
fn window_width(bits: usize) -> usize {
    match bits {
        0..=32 => 1,
        33..=96 => 2,
        97..=288 => 3,
        289..=768 => 4,
        _ => 5,
    }
}

/// Slice → fixed-size array reference (lengths are checked by the
/// dispatcher's match on `k`).
fn cvt<const K: usize>(s: &[u64]) -> &[u64; K] {
    s[..K].try_into().expect("kernel width matches modulus width")
}

/// One fused FIOS pass: `t[0..k]` ← `a·b·R^(-1)` before the final
/// subtraction, top carry (0 or 1) in `t[k]`. The `a·b` accumulation
/// and the `m·n` fold share the loop but carry independently, which
/// keeps both multiply chains in flight.
///
/// `#[inline(always)]` so the monomorphized [`fios`] wrappers
/// const-propagate `k` and get the fully unrolled codegen; the same
/// body serves [`fios_dyn`] at runtime widths.
#[inline(always)]
fn fios_core(a: &[u64], b: &[u64], n: &[u64], n0_inv: u64, t: &mut [u64], k: usize) {
    t[..k + 1].fill(0);
    for &ai in a[..k].iter() {
        let s = t[0] as u128 + ai as u128 * b[0] as u128;
        let mut c_ab = (s >> 64) as u64;
        let m = (s as u64).wrapping_mul(n0_inv);
        let s2 = (s as u64) as u128 + m as u128 * n[0] as u128;
        let mut c_mn = (s2 >> 64) as u64;
        for j in 1..k {
            let s = t[j] as u128 + ai as u128 * b[j] as u128 + c_ab as u128;
            c_ab = (s >> 64) as u64;
            let s2 = (s as u64) as u128 + m as u128 * n[j] as u128 + c_mn as u128;
            t[j - 1] = s2 as u64;
            c_mn = (s2 >> 64) as u64;
        }
        let s = t[k] as u128 + c_ab as u128 + c_mn as u128;
        t[k - 1] = s as u64;
        t[k] = (s >> 64) as u64;
    }
}

/// Monomorphized [`fios_core`] (array inputs pin the width for the
/// optimizer).
fn fios<const K: usize>(a: &[u64; K], b: &[u64; K], n: &[u64; K], n0_inv: u64, t: &mut [u64]) {
    fios_core(a, b, n, n0_inv, t, K);
}

/// Dynamic-width [`fios_core`] for limb counts without a monomorphized
/// kernel.
fn fios_dyn(a: &[u64], b: &[u64], n: &[u64], n0_inv: u64, t: &mut [u64], k: usize) {
    fios_core(a, b, n, n0_inv, t, k);
}

/// Montgomery squaring, SOS-style: upper-triangle products, doubled,
/// diagonal added, then the `m·n` reduction sweep. `u[k..2k]` holds
/// the pre-subtraction result, top carry in `u[2k]`. At `k ≥ 32`
/// (even) the reduction processes two rows per pass (two independent
/// carry chains); below that the plain sweep wins.
///
/// `#[inline(always)]` so the monomorphized [`sqr`] wrappers
/// const-propagate `k` (folding the reduction-strategy branch away);
/// the same body serves [`sqr_dyn`] at runtime widths.
#[inline(always)]
fn sqr_core(a: &[u64], n: &[u64], n0_inv: u64, u: &mut [u64], k: usize) {
    u[..2 * k + 1].fill(0);
    // Off-diagonal half products.
    for i in 0..k {
        let ai = a[i];
        let mut carry = 0u64;
        for j in i + 1..k {
            let s = u[i + j] as u128 + ai as u128 * a[j] as u128 + carry as u128;
            u[i + j] = s as u64;
            carry = (s >> 64) as u64;
        }
        u[i + k] = carry;
    }
    // Double, then add the diagonal a[i]².
    let mut top = 0u64;
    for x in u[..2 * k].iter_mut() {
        let nt = *x >> 63;
        *x = (*x << 1) | top;
        top = nt;
    }
    let mut carry = 0u64;
    for i in 0..k {
        let s = u[2 * i] as u128 + a[i] as u128 * a[i] as u128 + carry as u128;
        u[2 * i] = s as u64;
        let s2 = u[2 * i + 1] as u128 + (s >> 64);
        u[2 * i + 1] = s2 as u64;
        carry = (s2 >> 64) as u64;
    }
    // Reduction: fold rows m[i]·n into u.
    if k >= 32 && k % 2 == 0 {
        // Two rows per pass. Row i's m0 is known immediately; row
        // i+1's m1 needs u[i+1] after m0's j=1 term, computed in the
        // preamble; the joint loop then runs both carry chains.
        let mut carry2 = 0u64;
        let mut i = 0;
        while i < k {
            let m0 = u[i].wrapping_mul(n0_inv);
            let s = u[i] as u128 + m0 as u128 * n[0] as u128;
            let mut c0 = (s >> 64) as u64;
            let s = u[i + 1] as u128 + m0 as u128 * n[1] as u128 + c0 as u128;
            let u_i1 = s as u64;
            c0 = (s >> 64) as u64;
            let m1 = u_i1.wrapping_mul(n0_inv);
            let s = u_i1 as u128 + m1 as u128 * n[0] as u128;
            let mut c1 = (s >> 64) as u64;
            for j in 2..k {
                let s = u[i + j] as u128 + m0 as u128 * n[j] as u128 + c0 as u128;
                c0 = (s >> 64) as u64;
                let s2 = (s as u64) as u128 + m1 as u128 * n[j - 1] as u128 + c1 as u128;
                u[i + j] = s2 as u64;
                c1 = (s2 >> 64) as u64;
            }
            let s = u[i + k] as u128
                + c0 as u128
                + m1 as u128 * n[k - 1] as u128
                + c1 as u128
                + carry2 as u128;
            u[i + k] = s as u64;
            let s2 = u[i + k + 1] as u128 + (s >> 64);
            u[i + k + 1] = s2 as u64;
            carry2 = (s2 >> 64) as u64;
            i += 2;
        }
        u[2 * k] = u[2 * k].wrapping_add(carry2);
    } else {
        let mut carry2 = 0u64;
        for i in 0..k {
            let m = u[i].wrapping_mul(n0_inv);
            let mut carry = 0u64;
            for j in 0..k {
                let s = u[i + j] as u128 + m as u128 * n[j] as u128 + carry as u128;
                u[i + j] = s as u64;
                carry = (s >> 64) as u64;
            }
            let s = u[i + k] as u128 + carry as u128 + carry2 as u128;
            u[i + k] = s as u64;
            carry2 = (s >> 64) as u64;
        }
        u[2 * k] = carry2;
    }
}

/// Monomorphized [`sqr_core`] (array inputs pin the width for the
/// optimizer).
fn sqr<const K: usize>(a: &[u64; K], n: &[u64; K], n0_inv: u64, u: &mut [u64]) {
    sqr_core(a, n, n0_inv, u, K);
}

/// Dynamic-width [`sqr_core`] for limb counts without a monomorphized
/// kernel.
fn sqr_dyn(a: &[u64], n: &[u64], n0_inv: u64, u: &mut [u64], k: usize) {
    sqr_core(a, n, n0_inv, u, k);
}

/// `out = (top·2^(64k) + limbs) - n` if that value is `≥ n`, else a
/// copy of `limbs`. Callers guarantee the value is `< 2n`.
fn final_sub(top: u64, limbs: &[u64], n: &[u64], out: &mut [u64]) {
    let ge = top != 0 || geq(limbs, n);
    if ge {
        let mut borrow = 0u64;
        for j in 0..n.len() {
            let (d1, b1) = limbs[j].overflowing_sub(n[j]);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out[j] = d2;
            borrow = (b1 as u64) + (b2 as u64);
        }
    } else {
        out.copy_from_slice(limbs);
    }
}

/// `a >= b` over equal-length limb slices.
fn geq(a: &[u64], b: &[u64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    for j in (0..a.len()).rev() {
        if a[j] != b[j] {
            return a[j] > b[j];
        }
    }
    true
}

/// `x`'s limbs zero-extended to exactly `k` limbs (`x` must fit).
fn pad_limbs(x: &Ubig, k: usize) -> Vec<u64> {
    let limbs = x.limbs();
    debug_assert!(limbs.len() <= k);
    let mut out = vec![0u64; k];
    out[..limbs.len()].copy_from_slice(limbs);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drbg::HmacDrbg;
    use proptest::prelude::*;

    fn big(hex: &str) -> Ubig {
        Ubig::from_hex(hex).unwrap()
    }

    /// An odd modulus ≥ 3 built from arbitrary bytes.
    fn odd_modulus(bytes: &[u8]) -> Ubig {
        let mut m = Ubig::from_bytes_be(bytes);
        if m.is_even() {
            m = m.add(&Ubig::one());
        }
        if m.is_one() || m.is_zero() {
            m = Ubig::from_u64(3);
        }
        m
    }

    #[test]
    fn rejects_even_and_degenerate_moduli() {
        assert!(Montgomery::new(&Ubig::from_u64(4)).is_none());
        assert!(Montgomery::new(&Ubig::zero()).is_none());
        assert!(Montgomery::new(&Ubig::one()).is_none());
        assert!(Montgomery::new(&Ubig::from_u64(3)).is_some());
    }

    #[test]
    fn known_values() {
        let m = Ubig::from_u64(497);
        let ctx = Montgomery::new(&m).unwrap();
        assert_eq!(ctx.pow(&Ubig::from_u64(4), &Ubig::from_u64(13)).low_u64(), 445);
        assert_eq!(ctx.mul(&Ubig::from_u64(20), &Ubig::from_u64(30)).low_u64(), 600 % 497);
        assert_eq!(ctx.square(&Ubig::from_u64(100)).low_u64(), 10_000 % 497);
    }

    #[test]
    fn operands_larger_than_modulus_are_reduced() {
        let m = big("10000000000000001"); // odd, 65 bits
        let ctx = Montgomery::new(&m).unwrap();
        let a = big("123456789abcdef0123456789abcdef0123");
        let b = big("fedcba9876543210fedcba9876543210fed");
        assert_eq!(ctx.mul(&a, &b), a.mul(&b).rem(&m));
        assert_eq!(ctx.square(&a), a.mul(&a).rem(&m));
    }

    #[test]
    fn pow_edge_exponents() {
        let m = big("f000000000000000000000000000000d"); // odd 128-bit
        let ctx = Montgomery::new(&m).unwrap();
        let a = big("deadbeefcafebabe");
        assert_eq!(ctx.pow(&a, &Ubig::zero()), Ubig::one());
        assert_eq!(ctx.pow(&a, &Ubig::one()), a.rem(&m));
        assert_eq!(ctx.pow(&Ubig::zero(), &big("ff")), Ubig::zero());
        assert_eq!(ctx.pow(&Ubig::one(), &big("ffffffffffffffffffffffff")), Ubig::one());
        // Fermat on a word-sized prime (the one-limb kernel).
        let p = Ubig::from_u64(1_000_000_007);
        let ctx_p = Montgomery::new(&p).unwrap();
        let base = Ubig::from_u64(123_456_789);
        assert_eq!(ctx_p.pow(&base, &p.sub(&Ubig::one())), Ubig::one());
    }

    #[test]
    fn fermat_at_rsa_scale() {
        // A 256-bit probable prime: a^(p-1) ≡ 1 must hold through the
        // full multi-limb kernel path.
        let mut rng = HmacDrbg::new(b"montgomery fermat");
        let p = crate::prime::gen_prime(256, &mut rng);
        let ctx = Montgomery::new(&p).unwrap();
        let a = Ubig::random_below(&p, &mut rng);
        assert_eq!(ctx.pow(&a, &p.sub(&Ubig::one())), Ubig::one());
    }

    /// Every kernel width — each monomorphized size (1, 2, 4, 8, 16,
    /// 32 limbs) and dynamic widths around them — agrees with the
    /// schoolbook path on mul, square, and pow.
    #[test]
    fn kernel_dispatch_widths_match_schoolbook() {
        let mut rng = HmacDrbg::new(b"kernel widths");
        for limbs in [1usize, 2, 3, 4, 5, 8, 12, 16, 24, 32, 33] {
            let mut m = Ubig::random_bits(limbs * 64, &mut rng);
            if m.is_even() {
                m = m.add(&Ubig::one());
            }
            let ctx = Montgomery::new(&m).unwrap();
            let a = Ubig::random_below(&m, &mut rng);
            let b = Ubig::random_below(&m, &mut rng);
            let e = Ubig::from_u64(rng.u64() | 1);
            assert_eq!(ctx.mul(&a, &b), a.mul(&b).rem(&m), "mul at {limbs} limbs");
            assert_eq!(ctx.square(&a), a.mul(&a).rem(&m), "square at {limbs} limbs");
            assert_eq!(ctx.pow(&a, &e), a.modpow_schoolbook(&e, &m), "pow at {limbs} limbs");
        }
    }

    /// The adaptive window must produce identical results at every
    /// width boundary (1/2/3/4/5-bit windows).
    #[test]
    fn window_widths_agree() {
        let mut rng = HmacDrbg::new(b"window widths");
        let mut m = Ubig::random_bits(192, &mut rng);
        if m.is_even() {
            m = m.add(&Ubig::one());
        }
        let ctx = Montgomery::new(&m).unwrap();
        let a = Ubig::random_below(&m, &mut rng);
        for bits in [1usize, 17, 32, 33, 96, 97, 288, 289, 768, 769, 1024] {
            let e = Ubig::random_bits(bits, &mut rng);
            assert_eq!(ctx.pow(&a, &e), a.modpow_schoolbook(&e, &m), "exponent of {bits} bits");
        }
    }

    proptest! {
        /// Montgomery mul == schoolbook mul-then-divide, across random
        /// odd moduli and operand sizes (operands may exceed the
        /// modulus; zero and one included via the 0-length vectors).
        #[test]
        fn prop_mul_matches_schoolbook(
            a in proptest::collection::vec(any::<u8>(), 0..48),
            b in proptest::collection::vec(any::<u8>(), 0..48),
            m in proptest::collection::vec(any::<u8>(), 1..40),
        ) {
            let m = odd_modulus(&m);
            let (a, b) = (Ubig::from_bytes_be(&a), Ubig::from_bytes_be(&b));
            let ctx = Montgomery::new(&m).unwrap();
            prop_assert_eq!(ctx.mul(&a, &b), a.mul(&b).rem(&m));
        }

        /// Montgomery square == schoolbook, including the
        /// `bit_len(m)`-edge operands m-1, m, and m+1.
        #[test]
        fn prop_square_matches_schoolbook(
            m in proptest::collection::vec(any::<u8>(), 1..40),
        ) {
            let m = odd_modulus(&m);
            let ctx = Montgomery::new(&m).unwrap();
            for a in [
                Ubig::zero(),
                Ubig::one(),
                m.sub(&Ubig::one()),
                m.clone(),
                m.add(&Ubig::one()),
            ] {
                prop_assert_eq!(ctx.square(&a), a.mul(&a).rem(&m));
            }
        }

        /// Montgomery windowed pow == schoolbook square-and-multiply,
        /// across random odd moduli, bases, and exponents (covering
        /// zero/one exponents and bases by construction).
        #[test]
        fn prop_pow_matches_schoolbook(
            base in proptest::collection::vec(any::<u8>(), 0..32),
            exp in proptest::collection::vec(any::<u8>(), 0..16),
            m in proptest::collection::vec(any::<u8>(), 1..32),
        ) {
            let m = odd_modulus(&m);
            let (base, exp) = (Ubig::from_bytes_be(&base), Ubig::from_bytes_be(&exp));
            let ctx = Montgomery::new(&m).unwrap();
            prop_assert_eq!(ctx.pow(&base, &exp), base.modpow_schoolbook(&exp, &m));
        }

        /// The public dispatchers agree with the schoolbook reference.
        #[test]
        fn prop_dispatch_consistency(
            a in proptest::collection::vec(any::<u8>(), 0..32),
            e in 0u64..200,
            m in proptest::collection::vec(any::<u8>(), 1..24),
        ) {
            let m = odd_modulus(&m);
            let a = Ubig::from_bytes_be(&a);
            let e = Ubig::from_u64(e);
            prop_assert_eq!(a.modpow(&e, &m), a.modpow_schoolbook(&e, &m));
            prop_assert_eq!(a.mul_mod(&a, &m), a.mul(&a).rem(&m));
        }
    }
}
