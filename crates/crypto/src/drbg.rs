//! HMAC-DRBG (NIST SP 800-90A) — deterministic random bit generator.
//!
//! Every source of randomness in the workspace (key generation,
//! commitment blinding, simulator jitter, workload generation) flows
//! through this DRBG so that entire end-to-end experiments are
//! reproducible from a single `u64` seed. The generator also implements
//! a local [`RngCore`] trait (a signature-compatible subset of
//! `rand::RngCore`, kept in-tree because this workspace builds without
//! registry access) so it can drive generic samplers where convenient.

use crate::hmac::hmac_sha256;
use crate::sha256::DIGEST_LEN;

/// HMAC-SHA-256 deterministic random bit generator.
///
/// State is the standard `(K, V)` pair from SP 800-90A §10.1.2. Reseeding
/// and per-request additional input are supported via [`HmacDrbg::reseed`].
#[derive(Clone)]
pub struct HmacDrbg {
    key: [u8; DIGEST_LEN],
    value: [u8; DIGEST_LEN],
    /// Number of `generate` calls since instantiation (diagnostics only;
    /// we do not enforce SP 800-90A's reseed interval in a simulator).
    reseed_counter: u64,
}

impl HmacDrbg {
    /// Instantiates the DRBG from seed material.
    pub fn new(seed: &[u8]) -> HmacDrbg {
        let mut drbg =
            HmacDrbg { key: [0u8; DIGEST_LEN], value: [1u8; DIGEST_LEN], reseed_counter: 0 };
        drbg.update(Some(seed));
        drbg
    }

    /// Convenience constructor: seeds from a `u64` plus a domain-separation
    /// label, so different subsystems derive independent streams from the
    /// same experiment seed.
    pub fn from_u64_labeled(seed: u64, label: &str) -> HmacDrbg {
        let mut material = Vec::with_capacity(8 + label.len());
        material.extend_from_slice(&seed.to_be_bytes());
        material.extend_from_slice(label.as_bytes());
        HmacDrbg::new(&material)
    }

    /// Mixes additional entropy/input into the state.
    pub fn reseed(&mut self, input: &[u8]) {
        self.update(Some(input));
    }

    /// The SP 800-90A `HMAC_DRBG_Update` function.
    fn update(&mut self, provided: Option<&[u8]>) {
        let mut msg = Vec::with_capacity(DIGEST_LEN + 1 + provided.map_or(0, |p| p.len()));
        msg.extend_from_slice(&self.value);
        msg.push(0x00);
        if let Some(p) = provided {
            msg.extend_from_slice(p);
        }
        self.key = hmac_sha256(&self.key, &msg).0;
        self.value = hmac_sha256(&self.key, &self.value).0;
        if let Some(p) = provided {
            let mut msg = Vec::with_capacity(DIGEST_LEN + 1 + p.len());
            msg.extend_from_slice(&self.value);
            msg.push(0x01);
            msg.extend_from_slice(p);
            self.key = hmac_sha256(&self.key, &msg).0;
            self.value = hmac_sha256(&self.key, &self.value).0;
        }
    }

    /// Fills `out` with pseudorandom bytes.
    pub fn generate(&mut self, out: &mut [u8]) {
        let mut offset = 0;
        while offset < out.len() {
            self.value = hmac_sha256(&self.key, &self.value).0;
            let take = (out.len() - offset).min(DIGEST_LEN);
            out[offset..offset + take].copy_from_slice(&self.value[..take]);
            offset += take;
        }
        self.update(None);
        self.reseed_counter += 1;
    }

    /// Returns a fresh vector of `len` pseudorandom bytes.
    pub fn bytes(&mut self, len: usize) -> Vec<u8> {
        let mut v = vec![0u8; len];
        self.generate(&mut v);
        v
    }

    /// Uniform `u64`.
    pub fn u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.generate(&mut b);
        u64::from_be_bytes(b)
    }

    /// Uniform `u32`.
    pub fn u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.generate(&mut b);
        u32::from_be_bytes(b)
    }

    /// Uniform value in `[0, bound)` via rejection sampling (no modulo
    /// bias). `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        // Rejection zone: multiples of bound that fit in u64.
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let x = self.u64();
            if x < zone {
                return x % bound;
            }
        }
    }

    /// Uniform value in the inclusive range `[lo, hi]`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi);
        if lo == hi {
            return lo;
        }
        lo + self.below(hi - lo + 1)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0,1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        // 53-bit uniform in [0,1).
        let x = (self.u64() >> 11) as f64 / (1u64 << 53) as f64;
        x < p
    }

    /// Chooses a uniformly random element index for a slice of length `n`.
    pub fn index(&mut self, n: usize) -> usize {
        self.below(n as u64) as usize
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.index(i + 1);
            xs.swap(i, j);
        }
    }

    /// Number of `generate` calls so far.
    pub fn generate_count(&self) -> u64 {
        self.reseed_counter
    }

    /// Serializes the full generator state — `K ‖ V ‖ reseed_counter`
    /// (big-endian) — so a checkpointed simulation can resume its random
    /// stream exactly where it stopped. The state is *not* secret-safe
    /// to publish (it determines all future output); checkpoint files
    /// are trusted local artifacts.
    pub fn state_bytes(&self) -> [u8; Self::STATE_LEN] {
        let mut out = [0u8; Self::STATE_LEN];
        out[..DIGEST_LEN].copy_from_slice(&self.key);
        out[DIGEST_LEN..2 * DIGEST_LEN].copy_from_slice(&self.value);
        out[2 * DIGEST_LEN..].copy_from_slice(&self.reseed_counter.to_be_bytes());
        out
    }

    /// Rebuilds a generator from [`HmacDrbg::state_bytes`] output. The
    /// restored generator continues the original's stream bit-for-bit.
    pub fn from_state_bytes(state: &[u8; Self::STATE_LEN]) -> HmacDrbg {
        let mut key = [0u8; DIGEST_LEN];
        let mut value = [0u8; DIGEST_LEN];
        key.copy_from_slice(&state[..DIGEST_LEN]);
        value.copy_from_slice(&state[DIGEST_LEN..2 * DIGEST_LEN]);
        let mut ctr = [0u8; 8];
        ctr.copy_from_slice(&state[2 * DIGEST_LEN..]);
        HmacDrbg { key, value, reseed_counter: u64::from_be_bytes(ctr) }
    }

    /// Byte length of [`HmacDrbg::state_bytes`].
    pub const STATE_LEN: usize = 2 * DIGEST_LEN + 8;
}

/// Signature-compatible subset of `rand::RngCore`, defined locally so
/// the workspace builds without the external `rand` crate. Swapping to
/// the real trait is a matter of deleting this definition and importing
/// `rand::RngCore` instead.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl RngCore for HmacDrbg {
    fn next_u32(&mut self) -> u32 {
        self.u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.generate(dest);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = HmacDrbg::new(b"seed");
        let mut b = HmacDrbg::new(b"seed");
        assert_eq!(a.bytes(100), b.bytes(100));
        assert_eq!(a.u64(), b.u64());
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = HmacDrbg::new(b"seed-a");
        let mut b = HmacDrbg::new(b"seed-b");
        assert_ne!(a.bytes(32), b.bytes(32));
    }

    #[test]
    fn labels_domain_separate() {
        let mut a = HmacDrbg::from_u64_labeled(7, "crypto");
        let mut b = HmacDrbg::from_u64_labeled(7, "netsim");
        assert_ne!(a.bytes(32), b.bytes(32));
    }

    #[test]
    fn reseed_changes_stream() {
        let mut a = HmacDrbg::new(b"seed");
        let mut b = HmacDrbg::new(b"seed");
        b.reseed(b"extra");
        assert_ne!(a.bytes(32), b.bytes(32));
    }

    #[test]
    fn below_respects_bound() {
        let mut d = HmacDrbg::new(b"bound");
        for _ in 0..1000 {
            assert!(d.below(7) < 7);
        }
        // bound 1 always yields 0
        assert_eq!(d.below(1), 0);
    }

    #[test]
    fn range_inclusive() {
        let mut d = HmacDrbg::new(b"range");
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..2000 {
            let x = d.range(3, 5);
            assert!((3..=5).contains(&x));
            seen_lo |= x == 3;
            seen_hi |= x == 5;
        }
        assert!(seen_lo && seen_hi, "range endpoints should both occur");
    }

    #[test]
    fn chance_extremes() {
        let mut d = HmacDrbg::new(b"chance");
        for _ in 0..100 {
            assert!(!d.chance(0.0));
            assert!(d.chance(1.0));
        }
    }

    #[test]
    fn chance_roughly_uniform() {
        let mut d = HmacDrbg::new(b"uniform");
        let hits = (0..10_000).filter(|_| d.chance(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits} hits for p=0.25");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut d = HmacDrbg::new(b"shuffle");
        let mut v: Vec<u32> = (0..50).collect();
        d.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn rng_core_integration() {
        use super::RngCore;
        let mut d = HmacDrbg::new(b"rngcore");
        let mut buf = [0u8; 16];
        d.fill_bytes(&mut buf);
        assert_ne!(buf, [0u8; 16]);
        let _ = d.next_u32();
        let _ = d.next_u64();
    }

    #[test]
    fn state_round_trip_continues_stream() {
        let mut a = HmacDrbg::from_u64_labeled(42, "ckpt");
        let _ = a.bytes(100); // advance the stream
        let saved = a.state_bytes();
        let mut b = HmacDrbg::from_state_bytes(&saved);
        assert_eq!(a.generate_count(), b.generate_count());
        assert_eq!(a.bytes(64), b.bytes(64), "restored DRBG must continue identically");
        assert_eq!(a.u64(), b.u64());
    }

    #[test]
    fn state_bytes_capture_counter() {
        let mut a = HmacDrbg::new(b"ctr");
        let _ = a.u64();
        let _ = a.u64();
        let b = HmacDrbg::from_state_bytes(&a.state_bytes());
        assert_eq!(b.generate_count(), 2);
    }

    #[test]
    fn generate_spans_multiple_blocks() {
        let mut d = HmacDrbg::new(b"blocks");
        let long = d.bytes(1000);
        // No obvious repetition of the 32-byte block.
        assert_ne!(&long[0..32], &long[32..64]);
    }
}
