//! RSA key generation, PKCS#1 v1.5 signatures, and the raw trapdoor
//! permutation used by the ring-signature scheme.
//!
//! The paper's overhead argument (§3.8) is built on "a public-key
//! signature scheme (such as RSA); a RSA-1024 signature takes about two
//! milliseconds on current hardware". We implement RSA from scratch on
//! top of [`crate::bignum`]: key generation with `e = 65537`, CRT-based
//! private-key operations, and EMSA-PKCS1-v1_5 signature encoding with a
//! SHA-256 `DigestInfo`. Benchmark E3 regenerates the 2 ms claim.
//!
//! **Not production crypto**: arithmetic is variable-time and there is no
//! blinding. Fine for a research simulator, never for deployment.

use crate::bignum::Ubig;
use crate::drbg::HmacDrbg;
use crate::error::CryptoError;
use crate::montgomery::Montgomery;
use crate::prime::gen_rsa_prime;
use crate::sha256::sha256;
use std::sync::OnceLock;

/// ASN.1 DER `DigestInfo` prefix for SHA-256 (RFC 8017 §9.2 note 1).
const SHA256_DIGEST_INFO: [u8; 19] = [
    0x30, 0x31, 0x30, 0x0d, 0x06, 0x09, 0x60, 0x86, 0x48, 0x01, 0x65, 0x03, 0x04, 0x02, 0x01, 0x05,
    0x00, 0x04, 0x20,
];

/// An RSA public key `(n, e)`.
#[derive(Clone)]
pub struct RsaPublicKey {
    n: Ubig,
    e: Ubig,
    /// Modulus size in bytes, cached for encoding.
    k: usize,
    /// Montgomery context for `n`, built on first use so repeated
    /// verifies pay the REDC precomputation once per key.
    mont: OnceLock<Montgomery>,
}

// Key identity is `(n, e)`; the lazily built Montgomery cache is
// derived state and must not affect equality (a key that has verified
// something equals a fresh copy that has not).
impl PartialEq for RsaPublicKey {
    fn eq(&self, other: &Self) -> bool {
        self.n == other.n && self.e == other.e
    }
}

impl Eq for RsaPublicKey {}

impl std::fmt::Debug for RsaPublicKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RsaPublicKey").field("n", &self.n).field("e", &self.e).finish()
    }
}

/// An RSA private key with CRT parameters.
#[derive(Clone)]
pub struct RsaPrivateKey {
    public: RsaPublicKey,
    /// Retained for cross-checking the CRT path in tests; the CRT
    /// parameters below are what `raw_private` actually uses.
    #[cfg_attr(not(test), allow(dead_code))]
    d: Ubig,
    p: Ubig,
    q: Ubig,
    d_p: Ubig,
    d_q: Ubig,
    q_inv: Ubig,
    /// Montgomery contexts for `p` and `q`, built on first use so
    /// repeated signs pay the REDC precomputation once per key.
    mont_p: OnceLock<Montgomery>,
    mont_q: OnceLock<Montgomery>,
}

/// A detached RSA signature (always exactly modulus-size bytes).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct RsaSignature(pub Vec<u8>);

impl std::fmt::Debug for RsaSignature {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "RsaSignature({} bytes)", self.0.len())
    }
}

impl RsaPublicKey {
    /// Modulus.
    pub fn n(&self) -> &Ubig {
        &self.n
    }

    /// Public exponent.
    pub fn e(&self) -> &Ubig {
        &self.e
    }

    /// Modulus size in bytes.
    pub fn modulus_len(&self) -> usize {
        self.k
    }

    /// Modulus size in bits.
    pub fn modulus_bits(&self) -> usize {
        self.n.bit_len()
    }

    /// The cached Montgomery context for `n` (every RSA modulus is a
    /// product of odd primes, hence odd).
    fn mont(&self) -> &Montgomery {
        self.mont.get_or_init(|| Montgomery::new(&self.n).expect("RSA modulus is odd"))
    }

    /// Raw RSA public operation `m^e mod n` (textbook; used by the ring
    /// signature's trapdoor permutation, not directly for signing).
    pub fn raw_public(&self, m: &Ubig) -> Ubig {
        self.mont().pow(m, &self.e)
    }

    /// Raw public operation on the pre-Montgomery schoolbook path.
    /// Kept as the measured baseline for experiment E13 and the
    /// crypto benches, and as the equivalence oracle in tests.
    pub fn raw_public_schoolbook(&self, m: &Ubig) -> Ubig {
        m.modpow_schoolbook(&self.e, &self.n)
    }

    /// Verifies a PKCS#1 v1.5 SHA-256 signature over `message`.
    pub fn verify(&self, message: &[u8], sig: &RsaSignature) -> Result<(), CryptoError> {
        self.verify_with(message, sig, |s| self.raw_public(s))
    }

    /// [`RsaPublicKey::verify`] on the schoolbook exponentiation path
    /// (the E13/bench baseline; verdicts are always identical).
    pub fn verify_schoolbook(&self, message: &[u8], sig: &RsaSignature) -> Result<(), CryptoError> {
        self.verify_with(message, sig, |s| self.raw_public_schoolbook(s))
    }

    fn verify_with(
        &self,
        message: &[u8],
        sig: &RsaSignature,
        raw: impl Fn(&Ubig) -> Ubig,
    ) -> Result<(), CryptoError> {
        if sig.0.len() != self.k {
            return Err(CryptoError::SignatureInvalid);
        }
        let s = Ubig::from_bytes_be(&sig.0);
        if s >= self.n {
            return Err(CryptoError::SignatureInvalid);
        }
        let em = raw(&s).to_bytes_be_padded(self.k);
        let expected = emsa_pkcs1_v15(message, self.k)?;
        if em == expected {
            Ok(())
        } else {
            Err(CryptoError::SignatureInvalid)
        }
    }

    /// A short fingerprint of the key (hash of `n || e`), used as a key
    /// identifier in key stores and evidence records.
    pub fn fingerprint(&self) -> [u8; 8] {
        let d = crate::sha256::sha256_concat(&[&self.n.to_bytes_be(), &self.e.to_bytes_be()]);
        let mut out = [0u8; 8];
        out.copy_from_slice(&d.as_bytes()[..8]);
        out
    }
}

impl RsaPrivateKey {
    /// Generates a fresh RSA key pair with a modulus of `bits` bits.
    ///
    /// `bits` must be even and ≥ 128 (tests use small keys for speed; the
    /// benchmarks use 1024/2048 to regenerate the paper's numbers).
    pub fn generate(bits: usize, rng: &mut HmacDrbg) -> RsaPrivateKey {
        assert!(bits >= 128 && bits % 2 == 0, "unsupported RSA size {bits}");
        let e = Ubig::from_u64(65537);
        loop {
            let p = gen_rsa_prime(bits / 2, &e, rng);
            let q = gen_rsa_prime(bits / 2, &e, rng);
            if p == q {
                continue;
            }
            let n = p.mul(&q);
            if n.bit_len() != bits {
                continue;
            }
            let one = Ubig::one();
            let phi = p.sub(&one).mul(&q.sub(&one));
            let d = match e.modinv(&phi) {
                Some(d) => d,
                None => continue,
            };
            let d_p = d.rem(&p.sub(&one));
            let d_q = d.rem(&q.sub(&one));
            let q_inv = match q.modinv(&p) {
                Some(qi) => qi,
                None => continue,
            };
            let k = bits / 8;
            return RsaPrivateKey {
                public: RsaPublicKey { n, e, k, mont: OnceLock::new() },
                d,
                p,
                q,
                d_p,
                d_q,
                q_inv,
                mont_p: OnceLock::new(),
                mont_q: OnceLock::new(),
            };
        }
    }

    /// The corresponding public key.
    pub fn public(&self) -> &RsaPublicKey {
        &self.public
    }

    /// The cached Montgomery contexts for the (odd) CRT primes.
    fn mont_p(&self) -> &Montgomery {
        self.mont_p.get_or_init(|| Montgomery::new(&self.p).expect("RSA prime is odd"))
    }

    fn mont_q(&self) -> &Montgomery {
        self.mont_q.get_or_init(|| Montgomery::new(&self.q).expect("RSA prime is odd"))
    }

    /// Raw RSA private operation `c^d mod n`, accelerated with the CRT.
    pub fn raw_private(&self, c: &Ubig) -> Ubig {
        // m1 = c^dP mod p ; m2 = c^dQ mod q ; h = qInv (m1 - m2) mod p
        let m1 = self.mont_p().pow(c, &self.d_p);
        let m2 = self.mont_q().pow(c, &self.d_q);
        let diff = if m1 >= m2 {
            m1.sub(&m2)
        } else {
            // (m1 - m2) mod p with wraparound.
            self.p.sub(&m2.sub(&m1).rem(&self.p))
        };
        let h = self.mont_p().mul(&self.q_inv, &diff);
        m2.add(&h.mul(&self.q))
    }

    /// Raw private operation on the pre-Montgomery schoolbook path
    /// (same CRT structure, full division per exponent bit). The E13
    /// and bench baseline.
    pub fn raw_private_schoolbook(&self, c: &Ubig) -> Ubig {
        let m1 = c.rem(&self.p).modpow_schoolbook(&self.d_p, &self.p);
        let m2 = c.rem(&self.q).modpow_schoolbook(&self.d_q, &self.q);
        let diff = if m1 >= m2 { m1.sub(&m2) } else { self.p.sub(&m2.sub(&m1).rem(&self.p)) };
        let h = self.q_inv.mul(&diff.rem(&self.p)).rem(&self.p);
        m2.add(&h.mul(&self.q))
    }

    /// Signs `message` with PKCS#1 v1.5 / SHA-256.
    pub fn sign(&self, message: &[u8]) -> RsaSignature {
        let em = emsa_pkcs1_v15(message, self.public.k)
            .expect("modulus too small for SHA-256 DigestInfo");
        let m = Ubig::from_bytes_be(&em);
        let s = self.raw_private(&m);
        RsaSignature(s.to_bytes_be_padded(self.public.k))
    }

    /// [`RsaPrivateKey::sign`] on the schoolbook path (the E13/bench
    /// baseline; signatures are always byte-identical to `sign`).
    pub fn sign_schoolbook(&self, message: &[u8]) -> RsaSignature {
        let em = emsa_pkcs1_v15(message, self.public.k)
            .expect("modulus too small for SHA-256 DigestInfo");
        let m = Ubig::from_bytes_be(&em);
        let s = self.raw_private_schoolbook(&m);
        RsaSignature(s.to_bytes_be_padded(self.public.k))
    }

    /// Exposes `d` for tests that cross-check CRT against the direct
    /// computation.
    #[cfg(test)]
    pub(crate) fn d(&self) -> &Ubig {
        &self.d
    }
}

impl std::fmt::Debug for RsaPrivateKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print private material.
        write!(f, "RsaPrivateKey(n={} bits)", self.public.modulus_bits())
    }
}

/// EMSA-PKCS1-v1_5 encoding of SHA-256(message) into `k` bytes:
/// `0x00 0x01 FF..FF 0x00 DigestInfo || H(m)`.
fn emsa_pkcs1_v15(message: &[u8], k: usize) -> Result<Vec<u8>, CryptoError> {
    let h = sha256(message);
    let t_len = SHA256_DIGEST_INFO.len() + h.as_bytes().len();
    if k < t_len + 11 {
        return Err(CryptoError::KeyTooSmall);
    }
    let mut em = Vec::with_capacity(k);
    em.push(0x00);
    em.push(0x01);
    em.resize(k - t_len - 1, 0xff);
    em.push(0x00);
    em.extend_from_slice(&SHA256_DIGEST_INFO);
    em.extend_from_slice(h.as_bytes());
    debug_assert_eq!(em.len(), k);
    Ok(em)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_key(bits: usize) -> RsaPrivateKey {
        let mut rng = HmacDrbg::from_u64_labeled(42, &format!("rsa-test-{bits}"));
        RsaPrivateKey::generate(bits, &mut rng)
    }

    #[test]
    fn sign_verify_round_trip() {
        let key = test_key(512);
        let sig = key.sign(b"the shortest route");
        assert!(key.public().verify(b"the shortest route", &sig).is_ok());
    }

    #[test]
    fn verify_rejects_wrong_message() {
        let key = test_key(512);
        let sig = key.sign(b"message one");
        assert!(key.public().verify(b"message two", &sig).is_err());
    }

    #[test]
    fn verify_rejects_tampered_signature() {
        let key = test_key(512);
        let mut sig = key.sign(b"message");
        sig.0[10] ^= 0x01;
        assert!(key.public().verify(b"message", &sig).is_err());
    }

    #[test]
    fn verify_rejects_wrong_key() {
        let key1 = test_key(512);
        let mut rng = HmacDrbg::from_u64_labeled(43, "rsa-other");
        let key2 = RsaPrivateKey::generate(512, &mut rng);
        let sig = key1.sign(b"message");
        assert!(key2.public().verify(b"message", &sig).is_err());
    }

    #[test]
    fn verify_rejects_wrong_length() {
        let key = test_key(512);
        let sig = key.sign(b"m");
        let short = RsaSignature(sig.0[1..].to_vec());
        assert!(key.public().verify(b"m", &short).is_err());
    }

    #[test]
    fn verify_rejects_oversize_value() {
        let key = test_key(512);
        // s >= n must be rejected outright.
        let too_big = RsaSignature(key.public().n().to_bytes_be_padded(key.public().modulus_len()));
        assert!(key.public().verify(b"m", &too_big).is_err());
    }

    #[test]
    fn montgomery_and_schoolbook_paths_agree() {
        let key = test_key(512);
        let msg = b"equivalence";
        assert_eq!(key.sign(msg).0, key.sign_schoolbook(msg).0);
        let sig = key.sign(msg);
        assert!(key.public().verify(msg, &sig).is_ok());
        assert!(key.public().verify_schoolbook(msg, &sig).is_ok());
        let mut bad = sig.clone();
        bad.0[9] ^= 1;
        assert!(key.public().verify(msg, &bad).is_err());
        assert!(key.public().verify_schoolbook(msg, &bad).is_err());
        let mut rng = HmacDrbg::new(b"raw-paths");
        for _ in 0..3 {
            let m = Ubig::random_below(key.public().n(), &mut rng);
            assert_eq!(key.public().raw_public(&m), key.public().raw_public_schoolbook(&m));
            assert_eq!(key.raw_private(&m), key.raw_private_schoolbook(&m));
        }
    }

    #[test]
    fn equality_ignores_montgomery_cache() {
        // A key that has verified something (cache built) must still
        // equal a fresh copy of itself.
        let key = test_key(512);
        let warm = key.public().clone();
        let sig = key.sign(b"m");
        assert!(warm.verify(b"m", &sig).is_ok());
        assert_eq!(&warm, key.public());
    }

    #[test]
    fn crt_matches_direct_exponentiation() {
        let key = test_key(256);
        let mut rng = HmacDrbg::new(b"crt");
        for _ in 0..5 {
            let m = Ubig::random_below(key.public().n(), &mut rng);
            let direct = m.modpow(key.d(), key.public().n());
            assert_eq!(key.raw_private(&m), direct);
        }
    }

    #[test]
    fn raw_ops_are_inverse() {
        let key = test_key(256);
        let mut rng = HmacDrbg::new(b"inv");
        for _ in 0..5 {
            let m = Ubig::random_below(key.public().n(), &mut rng);
            assert_eq!(key.raw_private(&key.public().raw_public(&m)), m);
            assert_eq!(key.public().raw_public(&key.raw_private(&m)), m);
        }
    }

    #[test]
    fn signature_length_is_modulus_length() {
        let key = test_key(512);
        assert_eq!(key.sign(b"x").0.len(), 64);
    }

    #[test]
    fn fingerprints_differ_across_keys() {
        let key1 = test_key(256);
        let mut rng = HmacDrbg::from_u64_labeled(99, "fp");
        let key2 = RsaPrivateKey::generate(256, &mut rng);
        assert_ne!(key1.public().fingerprint(), key2.public().fingerprint());
    }

    #[test]
    fn deterministic_keygen() {
        let mut a = HmacDrbg::from_u64_labeled(7, "same");
        let mut b = HmacDrbg::from_u64_labeled(7, "same");
        let k1 = RsaPrivateKey::generate(256, &mut a);
        let k2 = RsaPrivateKey::generate(256, &mut b);
        assert_eq!(k1.public(), k2.public());
    }

    #[test]
    fn emsa_structure() {
        let em = emsa_pkcs1_v15(b"hello", 128).unwrap();
        assert_eq!(em[0], 0x00);
        assert_eq!(em[1], 0x01);
        assert_eq!(em[128 - 51 - 1], 0x00); // separator before the 51-byte T
        assert!(em[2..128 - 52].iter().all(|&b| b == 0xff));
    }

    #[test]
    fn emsa_rejects_tiny_modulus() {
        assert!(emsa_pkcs1_v15(b"hello", 32).is_err());
    }
}
