//! Key management: principals, key pairs, and a public-key store.
//!
//! The paper assumes every network can sign messages and that neighbors
//! know each other's public keys (needed for S-BGP-style attestations in
//! §3.2 and for the signed MHT roots in §3.6). Principals are identified
//! by an opaque `u64` — the BGP layer maps AS numbers onto principal ids.

use crate::drbg::HmacDrbg;
use crate::error::CryptoError;
use crate::rsa::{RsaPrivateKey, RsaPublicKey, RsaSignature};
use std::collections::HashMap;

/// An opaque principal identifier (the BGP crate maps ASNs to these).
pub type PrincipalId = u64;

/// A principal's signing identity: id + RSA key pair.
#[derive(Clone, Debug)]
pub struct Identity {
    id: PrincipalId,
    key: RsaPrivateKey,
}

impl Identity {
    /// Creates an identity with a freshly generated key of `bits` bits.
    pub fn generate(id: PrincipalId, bits: usize, rng: &mut HmacDrbg) -> Identity {
        Identity { id, key: RsaPrivateKey::generate(bits, rng) }
    }

    /// The principal id.
    pub fn id(&self) -> PrincipalId {
        self.id
    }

    /// The public half.
    pub fn public(&self) -> &RsaPublicKey {
        self.key.public()
    }

    /// Signs a message, binding in the signer id so signatures cannot be
    /// replayed as coming from another principal.
    pub fn sign(&self, message: &[u8]) -> RsaSignature {
        self.key.sign(&Self::bound_message(self.id, message))
    }

    /// Access to the raw private key (the ring-signature scheme needs the
    /// trapdoor directly).
    pub fn private_key(&self) -> &RsaPrivateKey {
        &self.key
    }

    /// Message-with-signer-id framing shared by sign and verify.
    fn bound_message(id: PrincipalId, message: &[u8]) -> Vec<u8> {
        let mut m = Vec::with_capacity(8 + message.len());
        m.extend_from_slice(&id.to_be_bytes());
        m.extend_from_slice(message);
        m
    }
}

/// A registry of public keys, indexed by principal id.
///
/// Models the out-of-band PKI the paper assumes (e.g. RPKI-style key
/// distribution for S-BGP \[13\]).
#[derive(Clone, Debug, Default)]
pub struct KeyStore {
    keys: HashMap<PrincipalId, RsaPublicKey>,
}

impl KeyStore {
    /// An empty store.
    pub fn new() -> KeyStore {
        KeyStore::default()
    }

    /// Registers a principal's public key, replacing any previous key.
    pub fn register(&mut self, id: PrincipalId, key: RsaPublicKey) {
        self.keys.insert(id, key);
    }

    /// Registers directly from an identity.
    pub fn register_identity(&mut self, identity: &Identity) {
        self.register(identity.id(), identity.public().clone());
    }

    /// Looks up a principal's public key.
    pub fn get(&self, id: PrincipalId) -> Result<&RsaPublicKey, CryptoError> {
        self.keys.get(&id).ok_or(CryptoError::UnknownKey)
    }

    /// Verifies that `sig` is `id`'s signature over `message`.
    pub fn verify(
        &self,
        id: PrincipalId,
        message: &[u8],
        sig: &RsaSignature,
    ) -> Result<(), CryptoError> {
        self.get(id)?.verify(&Identity::bound_message(id, message), sig)
    }

    /// Number of registered principals.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True if no keys are registered.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Iterates over registered `(id, key)` pairs (order unspecified).
    pub fn iter(&self) -> impl Iterator<Item = (PrincipalId, &RsaPublicKey)> {
        self.keys.iter().map(|(&id, k)| (id, k))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Identity, Identity, KeyStore) {
        let mut rng = HmacDrbg::new(b"keys tests");
        let a = Identity::generate(1, 512, &mut rng);
        let b = Identity::generate(2, 512, &mut rng);
        let mut store = KeyStore::new();
        store.register_identity(&a);
        store.register_identity(&b);
        (a, b, store)
    }

    #[test]
    fn sign_verify_through_store() {
        let (a, _, store) = setup();
        let sig = a.sign(b"route announcement");
        assert!(store.verify(1, b"route announcement", &sig).is_ok());
    }

    #[test]
    fn signature_bound_to_signer_id() {
        // A signature by principal 1 must not verify as principal 2, even
        // if someone registered the same public key under both ids.
        let (a, _, mut store) = setup();
        store.register(2, a.public().clone());
        let sig = a.sign(b"msg");
        assert!(store.verify(1, b"msg", &sig).is_ok());
        assert!(store.verify(2, b"msg", &sig).is_err());
    }

    #[test]
    fn unknown_principal_rejected() {
        let (a, _, store) = setup();
        let sig = a.sign(b"msg");
        assert_eq!(store.verify(99, b"msg", &sig).unwrap_err(), CryptoError::UnknownKey);
    }

    #[test]
    fn cross_principal_verification_fails() {
        let (a, _, store) = setup();
        let sig = a.sign(b"msg");
        assert!(store.verify(2, b"msg", &sig).is_err());
    }

    #[test]
    fn store_bookkeeping() {
        let (_, _, store) = setup();
        assert_eq!(store.len(), 2);
        assert!(!store.is_empty());
        assert!(store.get(1).is_ok());
        assert!(store.get(3).is_err());
        assert_eq!(store.iter().count(), 2);
    }

    #[test]
    fn reregistration_replaces_key() {
        let (a, b, mut store) = setup();
        store.register(1, b.public().clone());
        // Old signatures by a no longer verify under id 1.
        let sig = a.sign(b"m");
        assert!(store.verify(1, b"m", &sig).is_err());
    }
}
