//! Probabilistic primality testing and prime generation.
//!
//! Miller–Rabin with random bases plus a small-prime trial-division
//! prefilter, which is the standard recipe for RSA key generation. The
//! error probability after `MILLER_RABIN_ROUNDS` rounds is at most
//! 4^-rounds, far below any simulation-relevant threshold.

use crate::bignum::Ubig;
use crate::drbg::HmacDrbg;
use crate::montgomery::Montgomery;

/// Number of Miller–Rabin rounds used by [`is_probable_prime`].
pub const MILLER_RABIN_ROUNDS: usize = 32;

/// Small primes used for trial division before Miller–Rabin.
/// Generated once via a sieve of Eratosthenes.
fn small_primes() -> &'static [u64] {
    use std::sync::OnceLock;
    static PRIMES: OnceLock<Vec<u64>> = OnceLock::new();
    PRIMES.get_or_init(|| {
        const LIMIT: usize = 8192;
        let mut is_comp = vec![false; LIMIT];
        let mut primes = Vec::new();
        for n in 2..LIMIT {
            if !is_comp[n] {
                primes.push(n as u64);
                let mut m = n * n;
                while m < LIMIT {
                    is_comp[m] = true;
                    m += n;
                }
            }
        }
        primes
    })
}

/// Returns true if `n` is divisible by any sieved small prime (and is not
/// that prime itself).
fn has_small_factor(n: &Ubig) -> bool {
    for &p in small_primes() {
        let pb = Ubig::from_u64(p);
        if &pb > n {
            return false;
        }
        if n.rem(&pb).is_zero() {
            // Divisible: composite unless n == p.
            return n != &pb;
        }
    }
    false
}

/// Miller–Rabin probable-prime test with `rounds` random bases.
pub fn is_probable_prime(n: &Ubig, rounds: usize, rng: &mut HmacDrbg) -> bool {
    if n < &Ubig::from_u64(2) {
        return false;
    }
    if n == &Ubig::from_u64(2) || n == &Ubig::from_u64(3) {
        return true;
    }
    if n.is_even() || has_small_factor(n) {
        return false;
    }
    // Write n-1 = d * 2^s with d odd.
    let one = Ubig::one();
    let two = Ubig::from_u64(2);
    let n_minus_1 = n.sub(&one);
    let mut d = n_minus_1.clone();
    let mut s = 0usize;
    while d.is_even() {
        d = d.shr(1);
        s += 1;
    }
    let n_minus_3 = n.sub(&Ubig::from_u64(3));
    // One Montgomery context per candidate: every witness shares the
    // modulus, so the REDC precomputation amortizes over all rounds.
    let ctx = Montgomery::new(n).expect("candidate is odd and > 3 here");
    'witness: for _ in 0..rounds {
        // a uniform in [2, n-2].
        let a = Ubig::random_below(&n_minus_3, rng).add(&two);
        let mut x = ctx.pow(&a, &d);
        if x.is_one() || x == n_minus_1 {
            continue 'witness;
        }
        for _ in 0..s - 1 {
            x = ctx.square(&x);
            if x == n_minus_1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Generates a random probable prime with exactly `bits` bits.
///
/// The candidate has its two top bits set (so products of two such primes
/// have exactly `2*bits` bits, as RSA key generation requires) and its
/// low bit set (odd).
pub fn gen_prime(bits: usize, rng: &mut HmacDrbg) -> Ubig {
    assert!(bits >= 8, "prime sizes below 8 bits are not useful here");
    loop {
        let mut candidate = Ubig::random_bits(bits, rng);
        candidate.set_bit(0);
        candidate.set_bit(bits - 2); // ensure the product of two primes fills 2*bits
        if is_probable_prime(&candidate, MILLER_RABIN_ROUNDS, rng) {
            return candidate;
        }
    }
}

/// Generates a probable prime `p` with `gcd(p-1, e) == 1`, as needed for
/// an RSA public exponent `e`.
pub fn gen_rsa_prime(bits: usize, e: &Ubig, rng: &mut HmacDrbg) -> Ubig {
    loop {
        let p = gen_prime(bits, rng);
        if p.sub(&Ubig::one()).gcd(e).is_one() {
            return p;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> HmacDrbg {
        HmacDrbg::new(b"prime tests")
    }

    #[test]
    fn small_known_primes() {
        let mut r = rng();
        for p in [2u64, 3, 5, 7, 11, 13, 8191, 524287, 2147483647] {
            assert!(is_probable_prime(&Ubig::from_u64(p), 16, &mut r), "{p} should be prime");
        }
    }

    #[test]
    fn small_known_composites() {
        let mut r = rng();
        for c in [0u64, 1, 4, 6, 9, 15, 21, 561, 1105, 6601, 8911, 2147483647 + 2] {
            assert!(!is_probable_prime(&Ubig::from_u64(c), 16, &mut r), "{c} should be composite");
        }
    }

    #[test]
    fn carmichael_numbers_rejected() {
        // Carmichael numbers fool Fermat but not Miller–Rabin.
        let mut r = rng();
        for c in [561u64, 41041, 825265, 321197185] {
            assert!(!is_probable_prime(&Ubig::from_u64(c), 16, &mut r));
        }
    }

    #[test]
    fn large_known_prime() {
        // 2^127 - 1 is a Mersenne prime.
        let mut r = rng();
        let p = Ubig::from_hex("7fffffffffffffffffffffffffffffff").unwrap();
        assert!(is_probable_prime(&p, 16, &mut r));
        // Its neighbor is even, hence composite.
        assert!(!is_probable_prime(&p.add(&Ubig::one()), 16, &mut r));
    }

    #[test]
    fn generated_prime_has_requested_size() {
        let mut r = rng();
        for bits in [64usize, 96, 128] {
            let p = gen_prime(bits, &mut r);
            assert_eq!(p.bit_len(), bits);
            assert!(!p.is_even());
            assert!(p.bit(bits - 2), "second-highest bit forced");
        }
    }

    #[test]
    fn rsa_prime_coprime_to_e() {
        let mut r = rng();
        let e = Ubig::from_u64(65537);
        let p = gen_rsa_prime(96, &e, &mut r);
        assert!(p.sub(&Ubig::one()).gcd(&e).is_one());
    }

    #[test]
    fn deterministic_generation() {
        let mut a = HmacDrbg::new(b"det");
        let mut b = HmacDrbg::new(b"det");
        assert_eq!(gen_prime(80, &mut a), gen_prime(80, &mut b));
    }
}
