//! Canonical wire encoding.
//!
//! Commitments and signatures are only meaningful over a *canonical* byte
//! representation: two honest implementations must serialize the same
//! route/vertex/message to the same bytes, or hashes will not match. This
//! module defines a small, deterministic, length-prefixed binary codec
//! used for (a) everything that gets hashed or signed and (b) simulator
//! message payloads, whose byte sizes feed the overhead accounting in
//! experiment E8.
//!
//! All integers are big-endian; variable-length data is prefixed with a
//! `u32` length. There is deliberately no self-description or versioning
//! — the codec is internal to the workspace.

/// Errors raised when decoding malformed bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Input ended before the value was complete.
    Truncated,
    /// A length prefix or discriminant had an impossible value.
    Invalid(&'static str),
    /// Decoding finished but bytes were left over (when using
    /// [`decode_exact`]).
    TrailingBytes(usize),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "input truncated"),
            WireError::Invalid(what) => write!(f, "invalid encoding: {what}"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after value"),
        }
    }
}

impl std::error::Error for WireError {}

/// A cursor over input bytes for decoding.
pub struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader over `data`.
    pub fn new(data: &'a [u8]) -> Reader<'a> {
        Reader { data, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Takes `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let out = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads a fixed-size array.
    pub fn take_array<const N: usize>(&mut self) -> Result<[u8; N], WireError> {
        let slice = self.take(N)?;
        let mut out = [0u8; N];
        out.copy_from_slice(slice);
        Ok(out)
    }
}

/// Canonical serialization to/from bytes.
pub trait Wire: Sized {
    /// Appends the canonical encoding of `self` to `buf`.
    fn encode(&self, buf: &mut Vec<u8>);

    /// Decodes a value from the reader.
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError>;

    /// Convenience: encodes into a fresh vector.
    fn to_wire(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.encode(&mut buf);
        buf
    }

    /// Exact length of [`Wire::encode`]'s output, in bytes.
    ///
    /// The default encodes into a scratch vector; types on hot
    /// accounting paths (simulator `wire_size`, disclosure overhead)
    /// override it with pure arithmetic so that *measuring* a payload
    /// never costs an allocation plus a full encode. Implementations
    /// must keep the invariant `encoded_len() == to_wire().len()`
    /// (pinned by tests wherever an override exists).
    fn encoded_len(&self) -> usize {
        let mut buf = Vec::new();
        self.encode(&mut buf);
        buf.len()
    }
}

/// Decodes a value and requires the input to be fully consumed.
pub fn decode_exact<T: Wire>(data: &[u8]) -> Result<T, WireError> {
    let mut r = Reader::new(data);
    let v = T::decode(&mut r)?;
    if r.remaining() > 0 {
        return Err(WireError::TrailingBytes(r.remaining()));
    }
    Ok(v)
}

macro_rules! impl_wire_uint {
    ($($t:ty),*) => {$(
        impl Wire for $t {
            fn encode(&self, buf: &mut Vec<u8>) {
                buf.extend_from_slice(&self.to_be_bytes());
            }
            fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
                let bytes = r.take(std::mem::size_of::<$t>())?;
                let mut arr = [0u8; std::mem::size_of::<$t>()];
                arr.copy_from_slice(bytes);
                Ok(<$t>::from_be_bytes(arr))
            }
            fn encoded_len(&self) -> usize {
                std::mem::size_of::<$t>()
            }
        }
    )*};
}

impl_wire_uint!(u8, u16, u32, u64, u128);

impl Wire for bool {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(*self as u8);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.take(1)?[0] {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::Invalid("bool must be 0 or 1")),
        }
    }
    fn encoded_len(&self) -> usize {
        1
    }
}

impl Wire for Vec<u8> {
    fn encode(&self, buf: &mut Vec<u8>) {
        (self.len() as u32).encode(buf);
        buf.extend_from_slice(self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let len = u32::decode(r)? as usize;
        Ok(r.take(len)?.to_vec())
    }
    fn encoded_len(&self) -> usize {
        4 + self.len()
    }
}

impl Wire for String {
    fn encode(&self, buf: &mut Vec<u8>) {
        (self.len() as u32).encode(buf);
        buf.extend_from_slice(self.as_bytes());
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let len = u32::decode(r)? as usize;
        let bytes = r.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::Invalid("non-UTF-8 string"))
    }
    fn encoded_len(&self) -> usize {
        4 + self.len()
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            None => buf.push(0),
            Some(v) => {
                buf.push(1);
                v.encode(buf);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.take(1)?[0] {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            _ => Err(WireError::Invalid("Option discriminant")),
        }
    }
    fn encoded_len(&self) -> usize {
        match self {
            None => 1,
            Some(v) => 1 + v.encoded_len(),
        }
    }
}

// Blanket Vec<T> would conflict with Vec<u8>; provide explicit helpers.

/// Encodes a slice of `Wire` values with a `u32` count prefix.
pub fn encode_seq<T: Wire>(items: &[T], buf: &mut Vec<u8>) {
    (items.len() as u32).encode(buf);
    for it in items {
        it.encode(buf);
    }
}

/// Exact byte length [`encode_seq`] would produce for `items`.
pub fn seq_encoded_len<T: Wire>(items: &[T]) -> usize {
    4 + items.iter().map(Wire::encoded_len).sum::<usize>()
}

/// Decodes a vector of `Wire` values with a `u32` count prefix.
pub fn decode_seq<T: Wire>(r: &mut Reader<'_>) -> Result<Vec<T>, WireError> {
    let n = u32::decode(r)? as usize;
    // Guard against absurd allocations from corrupt prefixes.
    if n > r.remaining() {
        return Err(WireError::Invalid("sequence count exceeds input size"));
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(T::decode(r)?);
    }
    Ok(out)
}

impl Wire for crate::sha256::Digest {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.0);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(crate::sha256::Digest(r.take_array()?))
    }
    fn encoded_len(&self) -> usize {
        32
    }
}

impl Wire for crate::rsa::RsaSignature {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(crate::rsa::RsaSignature(Vec::<u8>::decode(r)?))
    }
    fn encoded_len(&self) -> usize {
        self.0.encoded_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::sha256;
    use proptest::prelude::*;

    fn round_trip<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = v.to_wire();
        let back: T = decode_exact(&bytes).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn primitive_round_trips() {
        round_trip(0u8);
        round_trip(255u8);
        round_trip(0xdeadu16);
        round_trip(0xdeadbeefu32);
        round_trip(u64::MAX);
        round_trip(true);
        round_trip(false);
        round_trip(vec![1u8, 2, 3]);
        round_trip(Vec::<u8>::new());
        round_trip("héllo wörld".to_string());
        round_trip(Some(42u32));
        round_trip(Option::<u32>::None);
        round_trip(sha256(b"digest"));
    }

    #[test]
    fn big_endian_layout() {
        assert_eq!(0x0102u16.to_wire(), vec![0x01, 0x02]);
        assert_eq!(vec![0xaau8].to_wire(), vec![0, 0, 0, 1, 0xaa]);
    }

    #[test]
    fn truncation_detected() {
        let bytes = 0xdeadbeefu32.to_wire();
        assert_eq!(decode_exact::<u32>(&bytes[..3]).unwrap_err(), WireError::Truncated);
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut bytes = 7u8.to_wire();
        bytes.push(0);
        assert_eq!(decode_exact::<u8>(&bytes).unwrap_err(), WireError::TrailingBytes(1));
    }

    #[test]
    fn invalid_bool_rejected() {
        assert!(decode_exact::<bool>(&[2]).is_err());
    }

    #[test]
    fn invalid_option_rejected() {
        assert!(decode_exact::<Option<u8>>(&[9, 1]).is_err());
    }

    #[test]
    fn corrupt_length_prefix_rejected() {
        // Claims 2^31 bytes follow; only 2 do.
        let bytes = [0x80, 0, 0, 0, 1, 2];
        assert!(decode_exact::<Vec<u8>>(&bytes).is_err());
    }

    #[test]
    fn seq_round_trip() {
        let items = vec![1u64, 2, 3, u64::MAX];
        let mut buf = Vec::new();
        encode_seq(&items, &mut buf);
        let mut r = Reader::new(&buf);
        assert_eq!(decode_seq::<u64>(&mut r).unwrap(), items);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn seq_guard_against_bogus_count() {
        let bytes = [0xff, 0xff, 0xff, 0xff];
        let mut r = Reader::new(&bytes);
        assert!(decode_seq::<u64>(&mut r).is_err());
    }

    #[test]
    fn non_utf8_string_rejected() {
        let mut bytes = Vec::new();
        2u32.encode(&mut bytes);
        bytes.extend_from_slice(&[0xff, 0xfe]);
        assert!(decode_exact::<String>(&bytes).is_err());
    }

    proptest! {
        #[test]
        fn prop_bytes_round_trip(v in proptest::collection::vec(any::<u8>(), 0..200)) {
            round_trip(v);
        }

        #[test]
        fn prop_u64_round_trip(v in any::<u64>()) {
            round_trip(v);
        }

        #[test]
        fn prop_encoding_is_deterministic(v in proptest::collection::vec(any::<u8>(), 0..64)) {
            prop_assert_eq!(v.to_wire(), v.to_wire());
        }
    }
}
