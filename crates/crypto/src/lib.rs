//! # pvr-crypto — cryptographic substrate for Private and Verifiable Routing
//!
//! Every cryptographic mechanism the PVR paper relies on, implemented
//! from scratch (the workspace's offline crate set contains no crypto
//! crates):
//!
//! * [`mod@sha256`] — SHA-256 (FIPS 180-4), the paper's commitment/MHT hash (§3.8);
//! * [`hmac`] — HMAC-SHA-256, used for keyed derivation;
//! * [`drbg`] — HMAC-DRBG (SP 800-90A): all randomness in the workspace is
//!   deterministic from a seed, so whole experiments replay bit-for-bit;
//! * [`bignum`] / [`montgomery`] / [`prime`] / [`rsa`] — arbitrary-precision
//!   arithmetic, Montgomery REDC with windowed exponentiation (the fast
//!   path under every RSA operation, measured in E13), Miller–Rabin, and
//!   RSA with PKCS#1 v1.5 signatures (the paper budgets "about two
//!   milliseconds" per RSA-1024 signature, reproduced in E3);
//! * [`mod@commit`] — blinded hash commitments `H(b ‖ p)` (§3.2, footnote 2);
//! * [`ring`] — Rivest–Shamir–Tauman ring signatures for the link-state
//!   existential variant (§3.2, citing \[20\]);
//! * [`keys`] — principal identities and the out-of-band PKI;
//! * [`encoding`] — the canonical wire codec everything is hashed/signed
//!   over.
//!
//! ## Security caveat
//!
//! This is **research-simulator cryptography**: correct, tested against
//! standard vectors where they exist, but variable-time and unhardened.
//! It must never be used outside experimentation.

pub mod bignum;
pub mod commit;
pub mod drbg;
pub mod encoding;
pub mod error;
pub mod hmac;
pub mod keys;
pub mod montgomery;
pub mod prime;
pub mod ring;
pub mod rsa;
pub mod sha256;

pub use bignum::Ubig;
pub use commit::{commit, commit_with, verify as verify_commitment, Blinding, Commitment, Opening};
pub use drbg::HmacDrbg;
pub use encoding::{decode_exact, decode_seq, encode_seq, Reader, Wire, WireError};
pub use error::CryptoError;
pub use hmac::{hmac_sha256, HmacSha256};
pub use keys::{Identity, KeyStore, PrincipalId};
pub use montgomery::Montgomery;
pub use ring::{ring_sign, ring_verify, RingSignature};
pub use rsa::{RsaPrivateKey, RsaPublicKey, RsaSignature};
pub use sha256::{sha256, sha256_concat, Digest, Sha256};
