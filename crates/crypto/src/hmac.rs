//! HMAC-SHA-256 (RFC 2104 / FIPS 198-1).
//!
//! Used by the HMAC-DRBG deterministic random bit generator
//! ([`crate::drbg`]) and for keyed blinding derivation in the Merkle hash
//! tree crate. Verified against the RFC 4231 test vectors.

use crate::sha256::{Digest, Sha256, BLOCK_LEN, DIGEST_LEN};

/// Incremental HMAC-SHA-256 computation.
#[derive(Clone)]
pub struct HmacSha256 {
    inner: Sha256,
    /// Key XOR opad, retained for the outer hash at finalization.
    opad_key: [u8; BLOCK_LEN],
}

impl HmacSha256 {
    /// Starts an HMAC computation with the given key (any length).
    pub fn new(key: &[u8]) -> HmacSha256 {
        // Keys longer than the block size are hashed first, per RFC 2104.
        let mut k = [0u8; BLOCK_LEN];
        if key.len() > BLOCK_LEN {
            let d = crate::sha256::sha256(key);
            k[..DIGEST_LEN].copy_from_slice(d.as_bytes());
        } else {
            k[..key.len()].copy_from_slice(key);
        }
        let mut ipad_key = [0u8; BLOCK_LEN];
        let mut opad_key = [0u8; BLOCK_LEN];
        for i in 0..BLOCK_LEN {
            ipad_key[i] = k[i] ^ 0x36;
            opad_key[i] = k[i] ^ 0x5c;
        }
        let mut inner = Sha256::new();
        inner.update(&ipad_key);
        HmacSha256 { inner, opad_key }
    }

    /// Absorbs message data.
    pub fn update(&mut self, data: &[u8]) -> &mut Self {
        self.inner.update(data);
        self
    }

    /// Completes the MAC.
    pub fn finalize(self) -> Digest {
        let inner_digest = self.inner.finalize();
        let mut outer = Sha256::new();
        outer.update(&self.opad_key);
        outer.update(inner_digest.as_bytes());
        outer.finalize()
    }
}

/// One-shot HMAC-SHA-256.
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> Digest {
    let mut h = HmacSha256::new(key);
    h.update(message);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    // RFC 4231 test vectors for HMAC-SHA-256.
    #[test]
    fn rfc4231_case_1() {
        let key = [0x0bu8; 20];
        assert_eq!(
            hmac_sha256(&key, b"Hi There").to_hex(),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2() {
        assert_eq!(
            hmac_sha256(b"Jefe", b"what do ya want for nothing?").to_hex(),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_3() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        assert_eq!(
            hmac_sha256(&key, &data).to_hex(),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case_6_long_key() {
        // 131-byte key: exercises the hash-the-key path.
        let key = [0xaau8; 131];
        assert_eq!(
            hmac_sha256(&key, b"Test Using Larger Than Block-Size Key - Hash Key First").to_hex(),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let key = b"some key";
        let msg: Vec<u8> = (0..997u32).map(|i| (i % 251) as u8).collect();
        let oneshot = hmac_sha256(key, &msg);
        let mut h = HmacSha256::new(key);
        for c in msg.chunks(13) {
            h.update(c);
        }
        assert_eq!(h.finalize(), oneshot);
    }

    #[test]
    fn distinct_keys_distinct_macs() {
        assert_ne!(hmac_sha256(b"k1", b"m"), hmac_sha256(b"k2", b"m"));
        assert_ne!(hmac_sha256(b"k", b"m1"), hmac_sha256(b"k", b"m2"));
    }
}
