//! Error types for the cryptographic substrate.

/// Errors produced by cryptographic operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CryptoError {
    /// A signature failed verification (wrong message, key, or bytes).
    SignatureInvalid,
    /// The key modulus is too small for the requested encoding.
    KeyTooSmall,
    /// An input could not be parsed or had an invalid structure.
    Malformed(&'static str),
    /// A referenced key is not present in the key store.
    UnknownKey,
    /// A ring signature was structurally invalid (size mismatch, etc.).
    RingInvalid(&'static str),
}

impl std::fmt::Display for CryptoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CryptoError::SignatureInvalid => write!(f, "signature verification failed"),
            CryptoError::KeyTooSmall => write!(f, "key modulus too small for this operation"),
            CryptoError::Malformed(what) => write!(f, "malformed input: {what}"),
            CryptoError::UnknownKey => write!(f, "key not found in key store"),
            CryptoError::RingInvalid(what) => write!(f, "invalid ring signature: {what}"),
        }
    }
}

impl std::error::Error for CryptoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(CryptoError::SignatureInvalid.to_string().contains("signature"));
        assert!(CryptoError::Malformed("x").to_string().contains("x"));
        assert!(CryptoError::RingInvalid("size").to_string().contains("size"));
    }
}
