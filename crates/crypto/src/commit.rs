//! Hash commitments with random blinding.
//!
//! This is the paper's first building block (§3.4): "a commitment
//! mechanism to ensure that a network cannot change its mind about its
//! decisions after the fact". The concrete construction follows §3.2:
//! `c := H(b || p)` where `p` is a random bitstring — the paper's own
//! footnote 2 explains why the blinding is mandatory ("If p were not
//! included in the hash, any neighbor could simply check whether
//! c = H(0) or c = H(1)"). We add a domain-separation tag so commitments
//! from different protocol contexts can never be confused.

use crate::drbg::HmacDrbg;
use crate::encoding::{Reader, Wire, WireError};
use crate::sha256::{sha256_concat, Digest};

/// Length of the blinding string in bytes (256 bits, matching the hash).
pub const BLIND_LEN: usize = 32;

/// The random blinding value `p` from the paper.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct Blinding(pub [u8; BLIND_LEN]);

impl Blinding {
    /// Draws a fresh blinding from the DRBG.
    pub fn random(rng: &mut HmacDrbg) -> Blinding {
        let mut b = [0u8; BLIND_LEN];
        rng.generate(&mut b);
        Blinding(b)
    }
}

impl std::fmt::Debug for Blinding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Blindings are secrets until opened; avoid printing them fully.
        write!(f, "Blinding(…)")
    }
}

/// A hiding, binding commitment `H(tag || value || blind)`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Commitment(pub Digest);

/// The data needed to open a commitment: the committed value plus the
/// blinding.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Opening {
    /// The committed byte string.
    pub value: Vec<u8>,
    /// The blinding `p`.
    pub blind: Blinding,
}

/// Computes the commitment digest for `(tag, value, blind)`.
fn commit_digest(tag: &[u8], value: &[u8], blind: &Blinding) -> Digest {
    // Length-prefix tag and value so (tag, value) pairs cannot collide
    // across boundaries.
    let tag_len = (tag.len() as u32).to_be_bytes();
    let val_len = (value.len() as u32).to_be_bytes();
    sha256_concat(&[b"pvr.commit.v1", &tag_len, tag, &val_len, value, &blind.0])
}

/// Commits to `value` under domain-separation `tag`, drawing the blinding
/// from `rng`. Returns the public commitment and the private opening.
pub fn commit(tag: &[u8], value: &[u8], rng: &mut HmacDrbg) -> (Commitment, Opening) {
    let blind = Blinding::random(rng);
    let c = Commitment(commit_digest(tag, value, &blind));
    (c, Opening { value: value.to_vec(), blind })
}

/// Commits with a caller-supplied blinding (used where blindings must be
/// derived deterministically, e.g. per-vertex in the MHT).
pub fn commit_with(tag: &[u8], value: &[u8], blind: Blinding) -> Commitment {
    Commitment(commit_digest(tag, value, &blind))
}

/// Verifies that `opening` opens `commitment` under `tag`.
pub fn verify(tag: &[u8], commitment: &Commitment, opening: &Opening) -> bool {
    commit_digest(tag, &opening.value, &opening.blind) == commitment.0
}

impl Wire for Commitment {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Commitment(Digest::decode(r)?))
    }
}

impl Wire for Blinding {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.0);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Blinding(r.take_array()?))
    }
}

impl Wire for Opening {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.value.encode(buf);
        self.blind.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Opening { value: Vec::<u8>::decode(r)?, blind: Blinding::decode(r)? })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn rng() -> HmacDrbg {
        HmacDrbg::new(b"commit tests")
    }

    #[test]
    fn commit_open_round_trip() {
        let mut r = rng();
        let (c, o) = commit(b"bit", &[1], &mut r);
        assert!(verify(b"bit", &c, &o));
    }

    #[test]
    fn wrong_value_rejected() {
        let mut r = rng();
        let (c, mut o) = commit(b"bit", &[1], &mut r);
        o.value = vec![0];
        assert!(!verify(b"bit", &c, &o));
    }

    #[test]
    fn wrong_blind_rejected() {
        let mut r = rng();
        let (c, mut o) = commit(b"bit", &[1], &mut r);
        o.blind.0[0] ^= 1;
        assert!(!verify(b"bit", &c, &o));
    }

    #[test]
    fn wrong_tag_rejected() {
        let mut r = rng();
        let (c, o) = commit(b"bit", &[1], &mut r);
        assert!(!verify(b"other", &c, &o));
    }

    #[test]
    fn hiding_same_value_different_commitments() {
        // The paper's footnote-2 property: committing to the same bit twice
        // must produce different commitments, or neighbors could test
        // candidate values by hashing them.
        let mut r = rng();
        let (c1, _) = commit(b"bit", &[1], &mut r);
        let (c2, _) = commit(b"bit", &[1], &mut r);
        assert_ne!(c1, c2);
    }

    #[test]
    fn tag_value_boundary_cannot_collide() {
        // ("ab", "c") and ("a", "bc") must commit differently even with the
        // same blinding, thanks to length prefixes.
        let blind = Blinding([7u8; BLIND_LEN]);
        let c1 = commit_with(b"ab", b"c", blind);
        let c2 = commit_with(b"a", b"bc", blind);
        assert_ne!(c1, c2);
    }

    #[test]
    fn deterministic_with_fixed_blinding() {
        let blind = Blinding([9u8; BLIND_LEN]);
        assert_eq!(commit_with(b"t", b"v", blind), commit_with(b"t", b"v", blind));
    }

    #[test]
    fn wire_round_trips() {
        let mut r = rng();
        let (c, o) = commit(b"t", b"some value", &mut r);
        let c2: Commitment = crate::encoding::decode_exact(&c.to_wire()).unwrap();
        let o2: Opening = crate::encoding::decode_exact(&o.to_wire()).unwrap();
        assert_eq!(c, c2);
        assert_eq!(o, o2);
        assert!(verify(b"t", &c2, &o2));
    }

    proptest! {
        #[test]
        fn prop_round_trip(tag in proptest::collection::vec(any::<u8>(), 0..16),
                           value in proptest::collection::vec(any::<u8>(), 0..64),
                           seed in any::<u64>()) {
            let mut r = HmacDrbg::from_u64_labeled(seed, "prop-commit");
            let (c, o) = commit(&tag, &value, &mut r);
            prop_assert!(verify(&tag, &c, &o));
        }

        #[test]
        fn prop_binding(tag in proptest::collection::vec(any::<u8>(), 0..8),
                        v1 in proptest::collection::vec(any::<u8>(), 0..32),
                        v2 in proptest::collection::vec(any::<u8>(), 0..32),
                        seed in any::<u64>()) {
            prop_assume!(v1 != v2);
            let mut r = HmacDrbg::from_u64_labeled(seed, "prop-bind");
            let (c, o) = commit(&tag, &v1, &mut r);
            let forged = Opening { value: v2, blind: o.blind };
            prop_assert!(!verify(&tag, &c, &forged));
        }
    }
}
