//! Rivest–Shamir–Tauman ring signatures ("How to leak a secret",
//! ASIACRYPT 2001) over RSA trapdoor permutations.
//!
//! §3.2 of the PVR paper: "Suppose we apply PVR to a link-state protocol
//! that only exports whether a path exists. Then the N_i can use a ring
//! signature scheme, such as \[20\], to sign the statement 'A route
//! exists'. Thus, B could tell that some N_i had provided a route, but it
//! could not tell which one." This module implements that scheme \[20\]:
//!
//! * each ring member's RSA permutation `f_i(x) = x^{e_i} mod n_i` is
//!   extended to a common domain `{0,1}^b` (the paper's trick: apply `f`
//!   within each full-size coset of `n_i`, identity on the remainder);
//! * a keyed symmetric permutation `E_k` (a 16-round balanced Feistel
//!   network with an HMAC-style SHA-256 round function) combines the ring;
//! * the signer closes the ring equation
//!   `E_k(y_n ⊕ E_k(y_{n-1} ⊕ … E_k(y_1 ⊕ v)…)) = v` using its trapdoor.
//!
//! Verification checks the ring equation; nothing in a valid signature
//! identifies which member signed.

use crate::bignum::Ubig;
use crate::drbg::HmacDrbg;
use crate::error::CryptoError;
use crate::rsa::{RsaPrivateKey, RsaPublicKey};
use crate::sha256::{sha256_concat, Digest};

/// Number of Feistel rounds in the combining permutation.
const FEISTEL_ROUNDS: usize = 16;

/// Extra headroom bits above the largest modulus for the common domain.
const DOMAIN_SLACK_BITS: usize = 64;

/// A ring signature: the glue value `v` and one `x_i` per ring member.
#[derive(Clone, PartialEq, Eq)]
pub struct RingSignature {
    /// Glue value, `domain_bytes` long.
    pub v: Vec<u8>,
    /// Per-member values, each `domain_bytes` long, in ring order.
    pub xs: Vec<Vec<u8>>,
}

impl std::fmt::Debug for RingSignature {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "RingSignature(ring of {}, {} bytes each)", self.xs.len(), self.v.len())
    }
}

/// Common-domain size in bytes for a given ring: enough to contain every
/// modulus plus slack, rounded up so the Feistel halves are equal.
fn domain_bytes(ring: &[RsaPublicKey]) -> usize {
    let max_bits = ring.iter().map(|k| k.modulus_bits()).max().unwrap_or(0);
    let bytes = (max_bits + DOMAIN_SLACK_BITS).div_ceil(8);
    bytes + (bytes % 2) // even, so halves split cleanly
}

/// Binds the message to the ring membership: k = H(msg, all public keys).
/// Including the ring prevents a signature from being re-interpreted
/// against a different ring.
fn ring_key(message: &[u8], ring: &[RsaPublicKey]) -> Digest {
    let mut parts: Vec<Vec<u8>> = Vec::with_capacity(1 + 2 * ring.len());
    parts.push(message.to_vec());
    for k in ring {
        parts.push(k.n().to_bytes_be());
        parts.push(k.e().to_bytes_be());
    }
    let refs: Vec<&[u8]> = parts.iter().map(|p| p.as_slice()).collect();
    sha256_concat(&refs)
}

/// Keystream of `len` bytes derived from (key, round, half), used as the
/// Feistel round function.
fn round_keystream(key: &Digest, round: usize, half: &[u8], len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(len);
    let mut counter = 0u32;
    while out.len() < len {
        let d = sha256_concat(&[
            b"pvr.ring.feistel",
            key.as_bytes(),
            &(round as u32).to_be_bytes(),
            &counter.to_be_bytes(),
            half,
        ]);
        let take = (len - out.len()).min(32);
        out.extend_from_slice(&d.as_bytes()[..take]);
        counter += 1;
    }
    out
}

fn xor_into(dst: &mut [u8], src: &[u8]) {
    for (d, s) in dst.iter_mut().zip(src) {
        *d ^= s;
    }
}

/// The keyed combining permutation `E_k` (forward).
fn feistel_forward(key: &Digest, block: &[u8]) -> Vec<u8> {
    let half = block.len() / 2;
    let mut l = block[..half].to_vec();
    let mut r = block[half..].to_vec();
    for round in 0..FEISTEL_ROUNDS {
        let ks = round_keystream(key, round, &r, half);
        xor_into(&mut l, &ks);
        std::mem::swap(&mut l, &mut r);
    }
    let mut out = l;
    out.extend_from_slice(&r);
    out
}

/// The inverse permutation `E_k^{-1}`.
fn feistel_backward(key: &Digest, block: &[u8]) -> Vec<u8> {
    let half = block.len() / 2;
    let mut l = block[..half].to_vec();
    let mut r = block[half..].to_vec();
    for round in (0..FEISTEL_ROUNDS).rev() {
        std::mem::swap(&mut l, &mut r);
        let ks = round_keystream(key, round, &r, half);
        xor_into(&mut l, &ks);
    }
    let mut out = l;
    out.extend_from_slice(&r);
    out
}

/// The RST extended permutation `g_i` over `{0,1}^b`: applies the RSA
/// permutation within each complete coset of `n_i`, identity on the
/// incomplete top coset.
fn g_forward(key: &RsaPublicKey, x: &[u8], dom: usize) -> Vec<u8> {
    let m = Ubig::from_bytes_be(x);
    let n = key.n();
    let (q, r) = m.divrem(n);
    let two_b = Ubig::one().shl(dom * 8);
    if q.add(&Ubig::one()).mul(n) <= two_b {
        q.mul(n).add(&key.raw_public(&r)).to_bytes_be_padded(dom)
    } else {
        x.to_vec()
    }
}

/// Trapdoor inverse of [`g_forward`].
fn g_backward(key: &RsaPrivateKey, y: &[u8], dom: usize) -> Vec<u8> {
    let m = Ubig::from_bytes_be(y);
    let n = key.public().n();
    let (q, r) = m.divrem(n);
    let two_b = Ubig::one().shl(dom * 8);
    if q.add(&Ubig::one()).mul(n) <= two_b {
        q.mul(n).add(&key.raw_private(&r)).to_bytes_be_padded(dom)
    } else {
        y.to_vec()
    }
}

/// Signs `message` on behalf of the ring, using `signer`'s trapdoor.
/// `signer_index` is the signer's position within `ring`, whose key must
/// equal `signer.public()`.
pub fn ring_sign(
    message: &[u8],
    ring: &[RsaPublicKey],
    signer_index: usize,
    signer: &RsaPrivateKey,
    rng: &mut HmacDrbg,
) -> Result<RingSignature, CryptoError> {
    if ring.is_empty() {
        return Err(CryptoError::RingInvalid("empty ring"));
    }
    if signer_index >= ring.len() {
        return Err(CryptoError::RingInvalid("signer index out of range"));
    }
    if &ring[signer_index] != signer.public() {
        return Err(CryptoError::RingInvalid("signer key not at claimed index"));
    }
    let dom = domain_bytes(ring);
    let k = ring_key(message, ring);
    let n = ring.len();

    // Random x_i for everyone but the signer.
    let mut xs: Vec<Vec<u8>> = (0..n).map(|_| rng.bytes(dom)).collect();
    let mut ys: Vec<Vec<u8>> = Vec::with_capacity(n);
    for (i, x) in xs.iter().enumerate() {
        if i == signer_index {
            ys.push(vec![0u8; dom]); // placeholder, solved below
        } else {
            ys.push(g_forward(&ring[i], x, dom));
        }
    }

    // Random glue value v.
    let v = rng.bytes(dom);

    // Forward pass: z_s = fold of y_0..y_{s-1} starting from v.
    let mut z_fwd = v.clone();
    for y in ys.iter().take(signer_index) {
        xor_into(&mut z_fwd, y);
        z_fwd = feistel_forward(&k, &z_fwd);
    }
    // Backward pass from z_n = v down to z_{s+1}.
    let mut z_bwd = v.clone();
    for y in ys.iter().skip(signer_index + 1).rev() {
        let mut t = feistel_backward(&k, &z_bwd);
        xor_into(&mut t, y);
        z_bwd = t;
    }
    // Close the ring: z_{s+1} = E(z_s ⊕ y_s)  ⇒  y_s = E^{-1}(z_{s+1}) ⊕ z_s.
    let mut y_s = feistel_backward(&k, &z_bwd);
    xor_into(&mut y_s, &z_fwd);
    xs[signer_index] = g_backward(signer, &y_s, dom);

    Ok(RingSignature { v, xs })
}

/// Verifies a ring signature: recomputes all `y_i = g_i(x_i)` and checks
/// the ring equation closes at the glue value.
pub fn ring_verify(
    message: &[u8],
    ring: &[RsaPublicKey],
    sig: &RingSignature,
) -> Result<(), CryptoError> {
    if ring.is_empty() || sig.xs.len() != ring.len() {
        return Err(CryptoError::RingInvalid("ring/signature size mismatch"));
    }
    let dom = domain_bytes(ring);
    if sig.v.len() != dom || sig.xs.iter().any(|x| x.len() != dom) {
        return Err(CryptoError::RingInvalid("wrong domain size"));
    }
    let k = ring_key(message, ring);
    let mut z = sig.v.clone();
    for (i, x) in sig.xs.iter().enumerate() {
        let y = g_forward(&ring[i], x, dom);
        xor_into(&mut z, &y);
        z = feistel_forward(&k, &z);
    }
    if z == sig.v {
        Ok(())
    } else {
        Err(CryptoError::SignatureInvalid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make_ring(n: usize, bits: usize) -> (Vec<RsaPrivateKey>, Vec<RsaPublicKey>) {
        let mut rng = HmacDrbg::from_u64_labeled(1234, "ring tests");
        let privs: Vec<RsaPrivateKey> =
            (0..n).map(|_| RsaPrivateKey::generate(bits, &mut rng)).collect();
        let pubs = privs.iter().map(|k| k.public().clone()).collect();
        (privs, pubs)
    }

    #[test]
    fn feistel_is_a_permutation() {
        let k = crate::sha256::sha256(b"key");
        let mut rng = HmacDrbg::new(b"feistel");
        for len in [16usize, 32, 64, 130] {
            let block = rng.bytes(len);
            let enc = feistel_forward(&k, &block);
            assert_eq!(feistel_backward(&k, &enc), block);
            assert_ne!(enc, block);
        }
    }

    #[test]
    fn g_round_trips_under_trapdoor() {
        let (privs, pubs) = make_ring(1, 256);
        let dom = domain_bytes(&pubs);
        let mut rng = HmacDrbg::new(b"g perm");
        for _ in 0..5 {
            let x = rng.bytes(dom);
            let y = g_forward(&pubs[0], &x, dom);
            assert_eq!(g_backward(&privs[0], &y, dom), x);
        }
    }

    #[test]
    fn sign_verify_each_position() {
        let (privs, pubs) = make_ring(4, 256);
        let mut rng = HmacDrbg::new(b"each position");
        for (s, private) in privs.iter().enumerate() {
            let sig = ring_sign(b"a route exists", &pubs, s, private, &mut rng).unwrap();
            assert!(ring_verify(b"a route exists", &pubs, &sig).is_ok(), "signer {s}");
        }
    }

    #[test]
    fn singleton_ring_works() {
        let (privs, pubs) = make_ring(1, 256);
        let mut rng = HmacDrbg::new(b"single");
        let sig = ring_sign(b"m", &pubs, 0, &privs[0], &mut rng).unwrap();
        assert!(ring_verify(b"m", &pubs, &sig).is_ok());
    }

    #[test]
    fn wrong_message_rejected() {
        let (privs, pubs) = make_ring(3, 256);
        let mut rng = HmacDrbg::new(b"wrong msg");
        let sig = ring_sign(b"message A", &pubs, 1, &privs[1], &mut rng).unwrap();
        assert!(ring_verify(b"message B", &pubs, &sig).is_err());
    }

    #[test]
    fn different_ring_rejected() {
        let (privs, pubs) = make_ring(3, 256);
        let (_, other_pubs) = {
            let mut rng = HmacDrbg::from_u64_labeled(777, "other ring");
            let privs: Vec<RsaPrivateKey> =
                (0..3).map(|_| RsaPrivateKey::generate(256, &mut rng)).collect();
            let pubs: Vec<RsaPublicKey> = privs.iter().map(|k| k.public().clone()).collect();
            (privs, pubs)
        };
        let mut rng = HmacDrbg::new(b"diff ring");
        let sig = ring_sign(b"m", &pubs, 0, &privs[0], &mut rng).unwrap();
        assert!(ring_verify(b"m", &other_pubs, &sig).is_err());
    }

    #[test]
    fn tampered_signature_rejected() {
        let (privs, pubs) = make_ring(3, 256);
        let mut rng = HmacDrbg::new(b"tamper");
        let mut sig = ring_sign(b"m", &pubs, 2, &privs[2], &mut rng).unwrap();
        sig.xs[0][5] ^= 0xff;
        assert!(ring_verify(b"m", &pubs, &sig).is_err());
        let mut sig2 = ring_sign(b"m", &pubs, 2, &privs[2], &mut rng).unwrap();
        sig2.v[0] ^= 1;
        assert!(ring_verify(b"m", &pubs, &sig2).is_err());
    }

    #[test]
    fn structural_errors_rejected() {
        let (privs, pubs) = make_ring(3, 256);
        let mut rng = HmacDrbg::new(b"structural");
        // Wrong signer index.
        assert!(ring_sign(b"m", &pubs, 5, &privs[0], &mut rng).is_err());
        // Key not at claimed index.
        assert!(ring_sign(b"m", &pubs, 0, &privs[1], &mut rng).is_err());
        // Empty ring.
        assert!(ring_sign(b"m", &[], 0, &privs[0], &mut rng).is_err());
        // Signature size mismatch.
        let sig = ring_sign(b"m", &pubs, 0, &privs[0], &mut rng).unwrap();
        let short = RingSignature { v: sig.v.clone(), xs: sig.xs[..2].to_vec() };
        assert!(ring_verify(b"m", &pubs, &short).is_err());
    }

    #[test]
    fn mixed_key_sizes_in_ring() {
        // Members may have different modulus sizes; the common domain must
        // cover the largest.
        let mut rng = HmacDrbg::from_u64_labeled(55, "mixed");
        let k1 = RsaPrivateKey::generate(256, &mut rng);
        let k2 = RsaPrivateKey::generate(384, &mut rng);
        let pubs = vec![k1.public().clone(), k2.public().clone()];
        let sig = ring_sign(b"m", &pubs, 0, &k1, &mut rng).unwrap();
        assert!(ring_verify(b"m", &pubs, &sig).is_ok());
        let sig = ring_sign(b"m", &pubs, 1, &k2, &mut rng).unwrap();
        assert!(ring_verify(b"m", &pubs, &sig).is_ok());
    }

    #[test]
    fn signatures_are_randomized() {
        let (privs, pubs) = make_ring(2, 256);
        let mut rng = HmacDrbg::new(b"randomized");
        let s1 = ring_sign(b"m", &pubs, 0, &privs[0], &mut rng).unwrap();
        let s2 = ring_sign(b"m", &pubs, 0, &privs[0], &mut rng).unwrap();
        assert_ne!(s1, s2, "two signatures over the same message must differ");
    }
}
