//! Arbitrary-precision unsigned integers, from scratch.
//!
//! The workspace's offline crate set has no bignum library, and RSA
//! (needed for the paper's signatures, §3.8, and the RST ring signatures,
//! §3.2) requires one. This module implements the minimal-but-complete
//! set of operations RSA needs: schoolbook multiplication, Knuth
//! Algorithm D division, binary modular exponentiation, extended
//! Euclidean inversion, and uniform random sampling.
//!
//! Representation: little-endian `u64` limbs, always normalized (no
//! trailing zero limbs; zero is the empty limb vector). All arithmetic is
//! variable-time — acceptable for a research simulator, never for
//! production cryptography (see crate-level docs).

use crate::drbg::HmacDrbg;
use crate::montgomery::Montgomery;
use std::cmp::Ordering;

/// An arbitrary-precision unsigned integer.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Ubig {
    /// Little-endian limbs; invariant: `limbs.last() != Some(&0)`.
    limbs: Vec<u64>,
}

impl Ubig {
    /// The value 0.
    pub fn zero() -> Ubig {
        Ubig { limbs: Vec::new() }
    }

    /// The value 1.
    pub fn one() -> Ubig {
        Ubig { limbs: vec![1] }
    }

    /// Constructs from a `u64`.
    pub fn from_u64(v: u64) -> Ubig {
        if v == 0 {
            Ubig::zero()
        } else {
            Ubig { limbs: vec![v] }
        }
    }

    /// Constructs from big-endian bytes (leading zeros permitted).
    pub fn from_bytes_be(bytes: &[u8]) -> Ubig {
        let mut limbs = Vec::with_capacity(bytes.len() / 8 + 1);
        let mut acc: u64 = 0;
        let mut shift = 0u32;
        for &b in bytes.iter().rev() {
            acc |= (b as u64) << shift;
            shift += 8;
            if shift == 64 {
                limbs.push(acc);
                acc = 0;
                shift = 0;
            }
        }
        if shift > 0 {
            limbs.push(acc);
        }
        let mut n = Ubig { limbs };
        n.normalize();
        n
    }

    /// Serializes to big-endian bytes with no leading zeros (zero → empty).
    pub fn to_bytes_be(&self) -> Vec<u8> {
        if self.is_zero() {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(self.limbs.len() * 8);
        for (i, &limb) in self.limbs.iter().enumerate().rev() {
            let bytes = limb.to_be_bytes();
            if i == self.limbs.len() - 1 {
                // Skip leading zero bytes of the top limb.
                let first = bytes.iter().position(|&b| b != 0).unwrap_or(7);
                out.extend_from_slice(&bytes[first..]);
            } else {
                out.extend_from_slice(&bytes);
            }
        }
        out
    }

    /// Serializes to exactly `len` big-endian bytes, left-padded with
    /// zeros. Panics if the value does not fit.
    pub fn to_bytes_be_padded(&self, len: usize) -> Vec<u8> {
        let raw = self.to_bytes_be();
        assert!(raw.len() <= len, "value does not fit in {len} bytes");
        let mut out = vec![0u8; len - raw.len()];
        out.extend_from_slice(&raw);
        out
    }

    /// Parses a (case-insensitive) hex string.
    pub fn from_hex(s: &str) -> Option<Ubig> {
        let s = s.trim_start_matches("0x");
        if s.is_empty() {
            return None;
        }
        let mut bytes = Vec::with_capacity(s.len() / 2 + 1);
        let chars: Vec<char> = s.chars().collect();
        let mut i = 0;
        // Odd-length strings have an implicit leading nibble.
        if chars.len() % 2 == 1 {
            bytes.push(chars[0].to_digit(16)? as u8);
            i = 1;
        }
        while i < chars.len() {
            let hi = chars[i].to_digit(16)?;
            let lo = chars[i + 1].to_digit(16)?;
            bytes.push(((hi << 4) | lo) as u8);
            i += 2;
        }
        Some(Ubig::from_bytes_be(&bytes))
    }

    /// Lowercase hex rendering (no leading zeros; zero → "0").
    pub fn to_hex(&self) -> String {
        if self.is_zero() {
            return "0".to_string();
        }
        let bytes = self.to_bytes_be();
        let mut s: String = bytes.iter().map(|b| format!("{b:02x}")).collect();
        while s.len() > 1 && s.starts_with('0') {
            s.remove(0);
        }
        s
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// The little-endian limbs (no trailing zeros).
    pub(crate) fn limbs(&self) -> &[u64] {
        &self.limbs
    }

    /// Constructs from little-endian limbs (trailing zeros permitted).
    pub(crate) fn from_limbs(limbs: Vec<u64>) -> Ubig {
        let mut n = Ubig { limbs };
        n.normalize();
        n
    }

    /// True iff the value is 0.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// True iff the value is 1.
    pub fn is_one(&self) -> bool {
        self.limbs.len() == 1 && self.limbs[0] == 1
    }

    /// True iff the value is even (0 is even).
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|&l| l & 1 == 0)
    }

    /// Number of significant bits (0 for the value 0).
    pub fn bit_len(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => (self.limbs.len() - 1) * 64 + (64 - top.leading_zeros() as usize),
        }
    }

    /// Returns bit `i` (little-endian bit numbering).
    pub fn bit(&self, i: usize) -> bool {
        let limb = i / 64;
        if limb >= self.limbs.len() {
            return false;
        }
        (self.limbs[limb] >> (i % 64)) & 1 == 1
    }

    /// Sets bit `i` to 1.
    pub fn set_bit(&mut self, i: usize) {
        let limb = i / 64;
        if limb >= self.limbs.len() {
            self.limbs.resize(limb + 1, 0);
        }
        self.limbs[limb] |= 1u64 << (i % 64);
    }

    /// Returns the low 64 bits.
    pub fn low_u64(&self) -> u64 {
        self.limbs.first().copied().unwrap_or(0)
    }

    /// Addition.
    pub fn add(&self, rhs: &Ubig) -> Ubig {
        let (longer, shorter) = if self.limbs.len() >= rhs.limbs.len() {
            (&self.limbs, &rhs.limbs)
        } else {
            (&rhs.limbs, &self.limbs)
        };
        let mut out = Vec::with_capacity(longer.len() + 1);
        let mut carry = 0u64;
        for (i, &a) in longer.iter().enumerate() {
            let b = shorter.get(i).copied().unwrap_or(0);
            let (s1, c1) = a.overflowing_add(b);
            let (s2, c2) = s1.overflowing_add(carry);
            out.push(s2);
            carry = (c1 as u64) + (c2 as u64);
        }
        if carry > 0 {
            out.push(carry);
        }
        let mut n = Ubig { limbs: out };
        n.normalize();
        n
    }

    /// Subtraction; returns `None` on underflow.
    pub fn checked_sub(&self, rhs: &Ubig) -> Option<Ubig> {
        if self < rhs {
            return None;
        }
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let a = self.limbs[i];
            let b = rhs.limbs.get(i).copied().unwrap_or(0);
            let (d1, b1) = a.overflowing_sub(b);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out.push(d2);
            borrow = (b1 as u64) + (b2 as u64);
        }
        debug_assert_eq!(borrow, 0);
        let mut n = Ubig { limbs: out };
        n.normalize();
        Some(n)
    }

    /// Subtraction; panics on underflow.
    pub fn sub(&self, rhs: &Ubig) -> Ubig {
        self.checked_sub(rhs).expect("Ubig::sub underflow (use checked_sub)")
    }

    /// Schoolbook multiplication.
    pub fn mul(&self, rhs: &Ubig) -> Ubig {
        if self.is_zero() || rhs.is_zero() {
            return Ubig::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + rhs.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            if a == 0 {
                continue;
            }
            let mut carry = 0u128;
            for (j, &b) in rhs.limbs.iter().enumerate() {
                let t = out[i + j] as u128 + (a as u128) * (b as u128) + carry;
                out[i + j] = t as u64;
                carry = t >> 64;
            }
            let mut k = i + rhs.limbs.len();
            while carry > 0 {
                let t = out[k] as u128 + carry;
                out[k] = t as u64;
                carry = t >> 64;
                k += 1;
            }
        }
        let mut n = Ubig { limbs: out };
        n.normalize();
        n
    }

    /// Multiplication by a `u64`.
    pub fn mul_u64(&self, rhs: u64) -> Ubig {
        if rhs == 0 || self.is_zero() {
            return Ubig::zero();
        }
        let mut out = Vec::with_capacity(self.limbs.len() + 1);
        let mut carry = 0u128;
        for &a in &self.limbs {
            let t = (a as u128) * (rhs as u128) + carry;
            out.push(t as u64);
            carry = t >> 64;
        }
        if carry > 0 {
            out.push(carry as u64);
        }
        let mut n = Ubig { limbs: out };
        n.normalize();
        n
    }

    /// Left shift by `bits`.
    pub fn shl(&self, bits: usize) -> Ubig {
        if self.is_zero() || bits == 0 {
            return self.clone();
        }
        let limb_shift = bits / 64;
        let bit_shift = bits % 64;
        let mut out = vec![0u64; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &l in &self.limbs {
                out.push((l << bit_shift) | carry);
                carry = l >> (64 - bit_shift);
            }
            if carry > 0 {
                out.push(carry);
            }
        }
        let mut n = Ubig { limbs: out };
        n.normalize();
        n
    }

    /// Right shift by `bits`.
    pub fn shr(&self, bits: usize) -> Ubig {
        let limb_shift = bits / 64;
        if limb_shift >= self.limbs.len() {
            return Ubig::zero();
        }
        let bit_shift = bits % 64;
        let mut out = Vec::with_capacity(self.limbs.len() - limb_shift);
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs[limb_shift..]);
        } else {
            let src = &self.limbs[limb_shift..];
            for i in 0..src.len() {
                let mut v = src[i] >> bit_shift;
                if i + 1 < src.len() {
                    v |= src[i + 1] << (64 - bit_shift);
                }
                out.push(v);
            }
        }
        let mut n = Ubig { limbs: out };
        n.normalize();
        n
    }

    /// Division with remainder (Knuth TAOCP vol. 2, Algorithm D).
    /// Returns `(quotient, remainder)`. Panics if `divisor` is zero.
    pub fn divrem(&self, divisor: &Ubig) -> (Ubig, Ubig) {
        assert!(!divisor.is_zero(), "division by zero");
        if self < divisor {
            return (Ubig::zero(), self.clone());
        }
        if divisor.limbs.len() == 1 {
            let d = divisor.limbs[0];
            let mut q = Vec::with_capacity(self.limbs.len());
            let mut rem = 0u128;
            for &l in self.limbs.iter().rev() {
                let cur = (rem << 64) | l as u128;
                q.push((cur / d as u128) as u64);
                rem = cur % d as u128;
            }
            q.reverse();
            let mut quot = Ubig { limbs: q };
            quot.normalize();
            return (quot, Ubig::from_u64(rem as u64));
        }

        // Normalize: shift so the divisor's top limb has its high bit set.
        let shift = divisor.limbs.last().unwrap().leading_zeros() as usize;
        let u = self.shl(shift);
        let v = divisor.shl(shift);
        let n = v.limbs.len();
        let m = u.limbs.len() - n;

        // Working copy of the dividend with one extra high limb.
        let mut un = u.limbs.clone();
        un.push(0);
        let vn = &v.limbs;
        let v_top = vn[n - 1];
        let v_next = vn[n - 2];

        let mut q = vec![0u64; m + 1];
        for j in (0..=m).rev() {
            // Estimate the quotient digit from the top two limbs.
            let num = ((un[j + n] as u128) << 64) | un[j + n - 1] as u128;
            let mut qhat = num / v_top as u128;
            let mut rhat = num % v_top as u128;
            while qhat >= 1u128 << 64
                || qhat * v_next as u128 > ((rhat << 64) | un[j + n - 2] as u128)
            {
                qhat -= 1;
                rhat += v_top as u128;
                if rhat >= 1u128 << 64 {
                    break;
                }
            }
            // Multiply-and-subtract qhat * v from un[j..j+n+1].
            let mut borrow: i128 = 0;
            let mut carry: u128 = 0;
            for i in 0..n {
                let p = qhat * vn[i] as u128 + carry;
                carry = p >> 64;
                let t = un[i + j] as i128 - (p as u64) as i128 + borrow;
                un[i + j] = t as u64;
                borrow = t >> 64; // arithmetic shift: 0 or -1
            }
            let t = un[j + n] as i128 - carry as i128 + borrow;
            un[j + n] = t as u64;
            borrow = t >> 64;

            q[j] = qhat as u64;
            if borrow < 0 {
                // qhat was one too large: add v back.
                q[j] -= 1;
                let mut carry = 0u128;
                for i in 0..n {
                    let t = un[i + j] as u128 + vn[i] as u128 + carry;
                    un[i + j] = t as u64;
                    carry = t >> 64;
                }
                un[j + n] = un[j + n].wrapping_add(carry as u64);
            }
        }

        let mut quot = Ubig { limbs: q };
        quot.normalize();
        let mut rem = Ubig { limbs: un[..n].to_vec() };
        rem.normalize();
        (quot, rem.shr(shift))
    }

    /// `self mod m`.
    pub fn rem(&self, m: &Ubig) -> Ubig {
        self.divrem(m).1
    }

    /// Modular multiplication `(self * rhs) mod m`.
    ///
    /// Odd moduli go through the division-free [`Montgomery`] path
    /// (two REDC passes instead of a double-width product plus a Knuth
    /// Algorithm D quotient). Even moduli keep the schoolbook
    /// multiply-then-divide fallback: REDC requires `gcd(R, m) = 1`
    /// with `R` a power of two, which an even `m` can never satisfy.
    /// Hot loops that reduce by one modulus repeatedly (RSA, Miller–
    /// Rabin) should build a [`Montgomery`] context once instead of
    /// paying its precomputation on every call here.
    pub fn mul_mod(&self, rhs: &Ubig, m: &Ubig) -> Ubig {
        assert!(!m.is_zero(), "mul_mod with zero modulus");
        match Montgomery::new(m) {
            Some(ctx) => ctx.mul(self, rhs),
            None => self.mul(rhs).rem(m),
        }
    }

    /// Modular exponentiation `self^exp mod m`.
    ///
    /// Odd moduli (the only kind RSA and Miller–Rabin ever reduce by)
    /// use Montgomery REDC with 4-bit windowed exponentiation; even
    /// moduli fall back to [`Ubig::modpow_schoolbook`] since REDC
    /// requires an odd modulus.
    pub fn modpow(&self, exp: &Ubig, m: &Ubig) -> Ubig {
        assert!(!m.is_zero(), "modpow with zero modulus");
        if m.is_one() {
            return Ubig::zero();
        }
        match Montgomery::new(m) {
            Some(ctx) => ctx.pow(self, exp),
            None => self.modpow_schoolbook(exp, m),
        }
    }

    /// Modular exponentiation by left-to-right binary square-and-
    /// multiply with a full division per step.
    ///
    /// This is the pre-Montgomery reference path: the even-modulus
    /// fallback of [`Ubig::modpow`], the equivalence oracle for the
    /// Montgomery property tests, and the baseline that experiment E13
    /// and `benches/crypto.rs` measure the fast path against.
    pub fn modpow_schoolbook(&self, exp: &Ubig, m: &Ubig) -> Ubig {
        assert!(!m.is_zero(), "modpow with zero modulus");
        if m.is_one() {
            return Ubig::zero();
        }
        let base = self.rem(m);
        if exp.is_zero() {
            return Ubig::one();
        }
        let mut acc = Ubig::one();
        for i in (0..exp.bit_len()).rev() {
            acc = acc.mul(&acc).rem(m);
            if exp.bit(i) {
                acc = acc.mul(&base).rem(m);
            }
        }
        acc
    }

    /// Greatest common divisor (binary-free Euclid; division is cheap
    /// enough at RSA sizes).
    pub fn gcd(&self, other: &Ubig) -> Ubig {
        let mut a = self.clone();
        let mut b = other.clone();
        while !b.is_zero() {
            let r = a.rem(&b);
            a = b;
            b = r;
        }
        a
    }

    /// Modular inverse `self^-1 mod m` via the extended Euclidean
    /// algorithm; `None` if `gcd(self, m) != 1`.
    pub fn modinv(&self, m: &Ubig) -> Option<Ubig> {
        if m.is_zero() || m.is_one() {
            return None;
        }
        // Track Bézout coefficient for `self` with an explicit sign.
        let mut old_r = self.rem(m);
        let mut r = m.clone();
        let mut old_s = (Ubig::one(), false); // (magnitude, negative?)
        let mut s = (Ubig::zero(), false);
        // Signed subtract helper: a - b where a,b are (mag, neg) pairs.
        fn signed_sub(a: &(Ubig, bool), b: &(Ubig, bool)) -> (Ubig, bool) {
            match (a.1, b.1) {
                (false, false) => {
                    if a.0 >= b.0 {
                        (a.0.sub(&b.0), false)
                    } else {
                        (b.0.sub(&a.0), true)
                    }
                }
                (true, true) => {
                    if b.0 >= a.0 {
                        (b.0.sub(&a.0), false)
                    } else {
                        (a.0.sub(&b.0), true)
                    }
                }
                (false, true) => (a.0.add(&b.0), false),
                (true, false) => (a.0.add(&b.0), true),
            }
        }
        while !r.is_zero() {
            let (q, rem) = old_r.divrem(&r);
            old_r = std::mem::replace(&mut r, rem);
            let qs = (q.mul(&s.0), s.1);
            let new_s = signed_sub(&old_s, &qs);
            old_s = std::mem::replace(&mut s, new_s);
        }
        if !old_r.is_one() {
            return None;
        }
        let mag = old_s.0.rem(m);
        if old_s.1 && !mag.is_zero() {
            Some(m.sub(&mag))
        } else {
            Some(mag)
        }
    }

    /// Uniform random value with exactly `bits` bits (top bit set).
    /// `bits` must be ≥ 1.
    pub fn random_bits(bits: usize, rng: &mut HmacDrbg) -> Ubig {
        assert!(bits >= 1);
        let nbytes = bits.div_ceil(8);
        let mut bytes = rng.bytes(nbytes);
        // Clear excess high bits, then force the top bit.
        let excess = nbytes * 8 - bits;
        bytes[0] &= 0xffu8 >> excess;
        bytes[0] |= 0x80u8 >> excess;
        Ubig::from_bytes_be(&bytes)
    }

    /// Uniform random value in `[0, bound)` by rejection sampling.
    pub fn random_below(bound: &Ubig, rng: &mut HmacDrbg) -> Ubig {
        assert!(!bound.is_zero());
        let bits = bound.bit_len();
        let nbytes = bits.div_ceil(8);
        let excess = nbytes * 8 - bits;
        loop {
            let mut bytes = rng.bytes(nbytes);
            bytes[0] &= 0xffu8 >> excess;
            let candidate = Ubig::from_bytes_be(&bytes);
            if &candidate < bound {
                return candidate;
            }
        }
    }
}

impl PartialOrd for Ubig {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ubig {
    fn cmp(&self, other: &Self) -> Ordering {
        if self.limbs.len() != other.limbs.len() {
            return self.limbs.len().cmp(&other.limbs.len());
        }
        for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
            match a.cmp(b) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }
}

impl std::fmt::Debug for Ubig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Ubig(0x{})", self.to_hex())
    }
}

impl std::fmt::Display for Ubig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "0x{}", self.to_hex())
    }
}

impl From<u64> for Ubig {
    fn from(v: u64) -> Self {
        Ubig::from_u64(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn big(hex: &str) -> Ubig {
        Ubig::from_hex(hex).unwrap()
    }

    #[test]
    fn construction_and_rendering() {
        assert_eq!(Ubig::zero().to_hex(), "0");
        assert_eq!(Ubig::from_u64(0xdeadbeef).to_hex(), "deadbeef");
        assert_eq!(big("deadbeef").low_u64(), 0xdeadbeef);
        assert_eq!(big("0xff").low_u64(), 255);
        // Odd-length hex.
        assert_eq!(big("f00").low_u64(), 0xf00);
    }

    #[test]
    fn byte_round_trip() {
        let n = big("0123456789abcdef0123456789abcdef01");
        assert_eq!(Ubig::from_bytes_be(&n.to_bytes_be()), n);
        assert_eq!(Ubig::from_bytes_be(&[]), Ubig::zero());
        assert_eq!(Ubig::from_bytes_be(&[0, 0, 5]).low_u64(), 5);
    }

    #[test]
    fn padded_bytes() {
        let n = Ubig::from_u64(0x1234);
        assert_eq!(n.to_bytes_be_padded(4), vec![0, 0, 0x12, 0x34]);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn padded_bytes_too_small() {
        Ubig::from_u64(0x123456).to_bytes_be_padded(2);
    }

    #[test]
    fn comparison() {
        assert!(big("100") > big("ff"));
        assert!(big("ff") < big("100"));
        assert_eq!(big("abc"), big("0abc"));
        assert!(Ubig::zero() < Ubig::one());
    }

    #[test]
    fn addition_with_carry_chain() {
        let a = big("ffffffffffffffffffffffffffffffff");
        assert_eq!(a.add(&Ubig::one()).to_hex(), "100000000000000000000000000000000");
        assert_eq!(Ubig::zero().add(&Ubig::zero()), Ubig::zero());
    }

    #[test]
    fn subtraction() {
        let a = big("100000000000000000000000000000000");
        assert_eq!(a.sub(&Ubig::one()).to_hex(), "ffffffffffffffffffffffffffffffff");
        assert_eq!(big("5").checked_sub(&big("7")), None);
        assert_eq!(big("7").sub(&big("7")), Ubig::zero());
    }

    #[test]
    fn multiplication_known_values() {
        assert_eq!(
            big("ffffffffffffffff").mul(&big("ffffffffffffffff")).to_hex(),
            "fffffffffffffffe0000000000000001"
        );
        assert_eq!(big("abc").mul(&Ubig::zero()), Ubig::zero());
        assert_eq!(big("abc").mul(&Ubig::one()), big("abc"));
    }

    #[test]
    fn mul_u64_matches_mul() {
        let a = big("123456789abcdef0123456789abcdef");
        assert_eq!(a.mul_u64(0xcafe), a.mul(&Ubig::from_u64(0xcafe)));
        assert_eq!(a.mul_u64(0), Ubig::zero());
    }

    #[test]
    fn shifts() {
        let a = big("1");
        assert_eq!(a.shl(64).to_hex(), "10000000000000000");
        assert_eq!(a.shl(65).shr(65), a);
        assert_eq!(big("ff00").shr(8).to_hex(), "ff");
        assert_eq!(big("ff").shr(100), Ubig::zero());
        assert_eq!(big("ff").shl(0), big("ff"));
    }

    #[test]
    fn division_single_limb() {
        let (q, r) = big("deadbeefcafebabe").divrem(&big("10"));
        assert_eq!(q.to_hex(), "deadbeefcafebab");
        assert_eq!(r.to_hex(), "e");
    }

    #[test]
    fn division_multi_limb() {
        // (a * b + r) / b == a with remainder r, constructed explicitly.
        let a = big("123456789abcdef00fedcba987654321");
        let b = big("fedcba9876543210123456789");
        let r = big("abc");
        let n = a.mul(&b).add(&r);
        let (q, rem) = n.divrem(&b);
        assert_eq!(q, a);
        assert_eq!(rem, r);
    }

    #[test]
    fn division_needs_addback() {
        // A case class that historically exercises the rare add-back branch
        // of Algorithm D: dividend just below a multiple of the divisor.
        let v = big("80000000000000000000000000000001");
        let u = v.mul(&big("ffffffffffffffff")).sub(&Ubig::one());
        let (q, r) = u.divrem(&v);
        assert_eq!(q.to_hex(), "fffffffffffffffe");
        assert_eq!(r, v.sub(&Ubig::one()));
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn division_by_zero_panics() {
        let _ = big("5").divrem(&Ubig::zero());
    }

    #[test]
    fn bit_access() {
        let mut n = Ubig::zero();
        n.set_bit(0);
        n.set_bit(64);
        n.set_bit(129);
        assert!(n.bit(0) && n.bit(64) && n.bit(129));
        assert!(!n.bit(1) && !n.bit(128) && !n.bit(1000));
        assert_eq!(n.bit_len(), 130);
        assert_eq!(Ubig::zero().bit_len(), 0);
        assert_eq!(Ubig::one().bit_len(), 1);
    }

    #[test]
    fn modpow_known_values() {
        // 4^13 mod 497 = 445 (classic textbook example).
        let b = Ubig::from_u64(4);
        let e = Ubig::from_u64(13);
        let m = Ubig::from_u64(497);
        assert_eq!(b.modpow(&e, &m).low_u64(), 445);
        // Fermat: a^(p-1) = 1 mod p for prime p.
        let p = Ubig::from_u64(1_000_000_007);
        let a = Ubig::from_u64(123456789);
        assert_eq!(a.modpow(&p.sub(&Ubig::one()), &p), Ubig::one());
        // x^0 = 1, x^1 = x mod m.
        assert_eq!(b.modpow(&Ubig::zero(), &m), Ubig::one());
        assert_eq!(b.modpow(&Ubig::one(), &m), b);
        // Modulus 1 → 0.
        assert_eq!(b.modpow(&e, &Ubig::one()), Ubig::zero());
    }

    #[test]
    fn gcd_known_values() {
        assert_eq!(Ubig::from_u64(48).gcd(&Ubig::from_u64(18)).low_u64(), 6);
        assert_eq!(Ubig::from_u64(17).gcd(&Ubig::from_u64(5)).low_u64(), 1);
        assert_eq!(Ubig::zero().gcd(&Ubig::from_u64(7)).low_u64(), 7);
    }

    #[test]
    fn modinv_known_values() {
        // 3^-1 mod 11 = 4.
        assert_eq!(Ubig::from_u64(3).modinv(&Ubig::from_u64(11)).unwrap().low_u64(), 4);
        // Non-invertible.
        assert_eq!(Ubig::from_u64(6).modinv(&Ubig::from_u64(9)), None);
        // Inverse of large value.
        let m = big("fffffffffffffffffffffffffffffffeffffffffffffffff"); // not nec. prime; just coprime check
        let a = big("deadbeef");
        if let Some(inv) = a.modinv(&m) {
            assert_eq!(a.mul_mod(&inv, &m), Ubig::one());
        }
    }

    #[test]
    fn random_bits_has_exact_length() {
        let mut rng = HmacDrbg::new(b"bits");
        for bits in [1usize, 7, 8, 9, 63, 64, 65, 512, 1024] {
            let n = Ubig::random_bits(bits, &mut rng);
            assert_eq!(n.bit_len(), bits, "requested {bits} bits");
        }
    }

    #[test]
    fn random_below_in_range() {
        let mut rng = HmacDrbg::new(b"below");
        let bound = big("10000000000000000000001");
        for _ in 0..50 {
            assert!(Ubig::random_below(&bound, &mut rng) < bound);
        }
    }

    proptest! {
        #[test]
        fn prop_add_sub_round_trip(a in proptest::collection::vec(any::<u8>(), 0..40),
                                   b in proptest::collection::vec(any::<u8>(), 0..40)) {
            let x = Ubig::from_bytes_be(&a);
            let y = Ubig::from_bytes_be(&b);
            prop_assert_eq!(x.add(&y).sub(&y), x);
        }

        #[test]
        fn prop_divrem_invariant(a in proptest::collection::vec(any::<u8>(), 0..48),
                                 b in proptest::collection::vec(any::<u8>(), 1..32)) {
            let x = Ubig::from_bytes_be(&a);
            let mut y = Ubig::from_bytes_be(&b);
            if y.is_zero() { y = Ubig::one(); }
            let (q, r) = x.divrem(&y);
            prop_assert!(r < y);
            prop_assert_eq!(q.mul(&y).add(&r), x);
        }

        #[test]
        fn prop_mul_commutative(a in proptest::collection::vec(any::<u8>(), 0..32),
                                b in proptest::collection::vec(any::<u8>(), 0..32)) {
            let x = Ubig::from_bytes_be(&a);
            let y = Ubig::from_bytes_be(&b);
            prop_assert_eq!(x.mul(&y), y.mul(&x));
        }

        #[test]
        fn prop_shift_round_trip(a in proptest::collection::vec(any::<u8>(), 0..32),
                                 s in 0usize..200) {
            let x = Ubig::from_bytes_be(&a);
            prop_assert_eq!(x.shl(s).shr(s), x);
        }

        #[test]
        fn prop_hex_round_trip(a in proptest::collection::vec(any::<u8>(), 1..32)) {
            let x = Ubig::from_bytes_be(&a);
            prop_assert_eq!(Ubig::from_hex(&x.to_hex()).unwrap(), x);
        }

        #[test]
        fn prop_modpow_matches_naive(base in 0u64..1000, exp in 0u64..64, m in 2u64..10_000) {
            let naive = {
                let mut acc: u128 = 1;
                for _ in 0..exp { acc = acc * base as u128 % m as u128; }
                acc as u64
            };
            let got = Ubig::from_u64(base)
                .modpow(&Ubig::from_u64(exp), &Ubig::from_u64(m))
                .low_u64();
            prop_assert_eq!(got, naive);
        }
    }
}
