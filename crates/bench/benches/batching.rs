//! E5 — burst batching (§3.8): one signature per burst vs one per update.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pvr_core::batch::SignedBatch;
use pvr_crypto::{drbg::HmacDrbg, Identity};
use std::hint::black_box;

fn bench_batching(c: &mut Criterion) {
    let mut rng = HmacDrbg::from_u64_labeled(5, "bench-batch");
    let identity = Identity::generate(100, 1024, &mut rng);
    let mut g = c.benchmark_group("e5_batching");
    g.sample_size(10);
    for n in [1usize, 16, 256] {
        let items: Vec<Vec<u8>> = (0..n).map(|i| format!("update {i}").into_bytes()).collect();
        g.throughput(Throughput::Elements(n as u64));
        g.bench_function(BenchmarkId::new("individual", n), |b| {
            b.iter(|| {
                for it in &items {
                    black_box(identity.sign(it));
                }
            });
        });
        g.bench_function(BenchmarkId::new("batched", n), |b| {
            b.iter(|| black_box(SignedBatch::sign(&identity, 1, &items)));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_batching);
criterion_main!(benches);
