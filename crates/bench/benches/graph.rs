//! E2 — multi-operator graph navigation (§3.5–3.7): reconstruct +
//! structural promise check at the receiver.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pvr_bgp::Asn;
use pvr_core::{Figure1Bed, VisibleGraph};
use pvr_mht::Label;
use pvr_rfg::AccessPolicy;
use std::hint::black_box;

fn bench_navigation(c: &mut Criterion) {
    let mut g = c.benchmark_group("e2_navigation");
    g.sample_size(10);
    for k in [2usize, 8, 32] {
        let lens: Vec<usize> = (0..k).map(|i| 2 + (i % 8)).collect();
        let bed = Figure1Bed::build_figure2(&lens, 7);
        let committer = bed.honest_committer();
        let everyone: Vec<Asn> = bed.ns.iter().copied().chain([bed.b]).collect();
        let alpha = AccessPolicy::paper_example(&bed.graph, &everyone);
        let reveals = committer.graph_disclosure_for(bed.b, &alpha);
        let root = committer.signed_root().root;
        let out = Label::Var(bed.output_var.0);
        let inputs: Vec<Label> = bed.input_vars.iter().map(|v| Label::Var(v.0)).collect();
        g.bench_function(BenchmarkId::from_parameter(k), |b| {
            b.iter(|| {
                let vg = VisibleGraph::reconstruct(&reveals, &root).unwrap();
                assert!(vg.check_figure2_promise(&out, &inputs[0], &inputs[1..]));
                black_box(vg.len())
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_navigation);
criterion_main!(benches);
