//! Bit-sliced batch GMW vs the serial engine (e17's tentpole claim).
//!
//! Gate throughput: one `BatchGmw::run` at batch width 1/8/64 against
//! 64 serial `run_gmw` calls over the same circuit — per-lane outputs
//! are identical (the randomness-independence argument in
//! `pvr_smc::batch`), so the ratio is an honest speedup. Plus the two
//! end-to-end circuits the network's private verifier actually runs:
//! min and majority over a full batch.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pvr_crypto::drbg::HmacDrbg;
use pvr_smc::{
    majority_circuit, min_circuit, pack_lane_inputs, run_gmw, to_bits, BatchGmw, MAX_LANES,
};
use std::hint::black_box;

/// The verifier's workload shape: 4-party 8-bit minimum.
const PARTIES: usize = 4;
const WIDTH: usize = 8;

/// Per-lane serial inputs: lane `l`, party `p` holds `2 + (l + p) % 11`.
fn lane_inputs(lanes: usize) -> Vec<Vec<Vec<bool>>> {
    (0..lanes)
        .map(|l| (0..PARTIES).map(|p| to_bits(2 + ((l + p) % 11) as u64, WIDTH)).collect())
        .collect()
}

fn bench_gate_throughput(c: &mut Criterion) {
    let circuit = min_circuit(PARTIES, WIDTH);
    let mut g = c.benchmark_group("smc_gate_throughput");

    // Serial baseline: 64 independent evaluations, one per lane.
    let serial = lane_inputs(MAX_LANES);
    g.throughput(Throughput::Elements((circuit.len() * MAX_LANES) as u64));
    g.bench_function("serial_x64", |b| {
        let mut rng = HmacDrbg::from_u64_labeled(17, "bench-smc-serial");
        b.iter(|| {
            for inputs in &serial {
                black_box(run_gmw(&circuit, inputs, &mut rng).outputs);
            }
        });
    });

    // Batch engine at increasing widths: same gates-per-lane, one word
    // op per gate regardless of width.
    for lanes in [1usize, 8, 64] {
        let packed = pack_lane_inputs(&lane_inputs(lanes));
        g.throughput(Throughput::Elements((circuit.len() * lanes) as u64));
        g.bench_with_input(BenchmarkId::new("batch", lanes), &packed, |b, packed| {
            let mut rng = HmacDrbg::from_u64_labeled(17, "bench-smc-batch");
            b.iter(|| {
                let runner = BatchGmw::new(&circuit);
                black_box(runner.run(packed, &mut rng).outputs);
            });
        });
    }
    g.finish();
}

fn bench_verifier_circuits(c: &mut Criterion) {
    let mut g = c.benchmark_group("smc_verifier_e2e");
    // A full-width batch through both circuits the private verifier
    // chains per batch: min over the candidates, then the per-party
    // majority vote.
    let min = min_circuit(PARTIES, WIDTH);
    let min_in = pack_lane_inputs(&lane_inputs(MAX_LANES));
    g.bench_function("min_x64", |b| {
        let mut rng = HmacDrbg::from_u64_labeled(17, "bench-smc-min");
        b.iter(|| black_box(BatchGmw::new(&min).run(&min_in, &mut rng).outputs));
    });

    let majority = majority_circuit(PARTIES);
    let votes: Vec<Vec<Vec<bool>>> =
        (0..MAX_LANES).map(|l| (0..PARTIES).map(|p| vec![(l + p) % 3 != 0]).collect()).collect();
    let maj_in = pack_lane_inputs(&votes);
    g.bench_function("majority_x64", |b| {
        let mut rng = HmacDrbg::from_u64_labeled(17, "bench-smc-majority");
        b.iter(|| black_box(BatchGmw::new(&majority).run(&maj_in, &mut rng).outputs));
    });
    g.finish();
}

criterion_group!(benches, bench_gate_throughput, bench_verifier_circuits);
criterion_main!(benches);
