//! E4 — PVR vs the GMW strawman (§3.1), measured side by side.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pvr_core::{run_min_round, Figure1Bed};
use pvr_crypto::drbg::HmacDrbg;
use pvr_smc::{min_circuit, run_gmw, to_bits};
use std::hint::black_box;

fn bench_pvr_round(c: &mut Criterion) {
    let mut g = c.benchmark_group("e4_pvr_round");
    g.sample_size(10);
    let bed = Figure1Bed::build(&[2, 3, 4, 5, 6], 4);
    g.bench_function("k5", |b| {
        b.iter(|| {
            let r = run_min_round(&bed, None);
            assert!(r.clean());
        });
    });
    g.finish();
}

fn bench_gmw_local(c: &mut Criterion) {
    let mut g = c.benchmark_group("e4_gmw_local");
    for k in [2usize, 5, 10] {
        let circuit = min_circuit(k, 8);
        let inputs: Vec<Vec<bool>> = (0..k).map(|i| to_bits(i as u64 + 2, 8)).collect();
        g.bench_with_input(BenchmarkId::from_parameter(k), &circuit, |b, circuit| {
            let mut rng = HmacDrbg::from_u64_labeled(4, "bench-gmw");
            b.iter(|| black_box(run_gmw(circuit, &inputs, &mut rng).outputs));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_pvr_round, bench_gmw_local);
criterion_main!(benches);
