//! E6 — sparse-MHT scaling (§3.6): build, prove, verify.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pvr_mht::{Label, SparseMht};
use std::hint::black_box;

fn items(n: u32) -> Vec<(Label, Vec<u8>)> {
    (0..n).map(|i| (Label::Var(i), vec![i as u8; 32])).collect()
}

fn bench_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("e6_mht_build");
    g.sample_size(10);
    for n in [16u32, 256, 1024] {
        let xs = items(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &xs, |b, xs| {
            b.iter(|| black_box(SparseMht::build(xs, [7; 32])));
        });
    }
    g.finish();
}

fn bench_prove_verify(c: &mut Criterion) {
    let mut g = c.benchmark_group("e6_mht_proofs");
    for n in [16u32, 1024] {
        let tree = SparseMht::build(&items(n), [7; 32]);
        g.bench_function(BenchmarkId::new("prove", n), |b| {
            b.iter(|| black_box(tree.prove(&Label::Var(0)).unwrap()));
        });
        let proof = tree.prove(&Label::Var(0)).unwrap();
        let root = tree.root();
        g.bench_function(BenchmarkId::new("verify", n), |b| {
            b.iter(|| assert!(proof.verify(&root)));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_build, bench_prove_verify);
criterion_main!(benches);
