//! E14 — propagation-substrate microbenchmarks: the costs the
//! structural-sharing refactor targets. Chain prepends and per-neighbor
//! fan-out clones are the per-hop unit work; the `internet_like`
//! convergence group measures the end-to-end effect at the default
//! 56-AS topology (the full ladder lives in harness experiment e14).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pvr_bench::e14_params;
use pvr_bgp::{
    demo_chain, internet_like, AsPath, Asn, BgpUpdate, InstantiateOptions, Prefix, Route,
    SignedRoute,
};
use pvr_netsim::{Payload, RunLimits};
use std::hint::black_box;

/// Prepending to an AS path: the one allocation a propagated route
/// makes. Downstream clones are refcount bumps, benchmarked alongside.
fn bench_chain_prepend(c: &mut Criterion) {
    let mut g = c.benchmark_group("e14_path");
    for hops in [2usize, 8, 32] {
        let asns: Vec<Asn> = (1..=hops as u32).map(Asn).collect();
        let path = AsPath::from_slice(&asns);
        g.bench_with_input(BenchmarkId::new("prepend", hops), &path, |b, p| {
            b.iter(|| black_box(p.prepend(Asn(9999))));
        });
        g.bench_with_input(BenchmarkId::new("clone", hops), &path, |b, p| {
            b.iter(|| black_box(p.clone()));
        });
    }
    g.finish();
}

/// Per-neighbor fan-out: what a router pays to hand one selected route
/// to each neighbor. With shared payloads this is clone-of-`Arc`s; the
/// signed variant clones a full 5-hop attestation chain too.
fn bench_fanout_clone(c: &mut Criterion) {
    let mut g = c.benchmark_group("e14_fanout");
    let mut route = Route::originate(Prefix::parse("10.1.0.0/16").unwrap());
    route.path = AsPath::from_slice(&[Asn(1), Asn(2), Asn(3), Asn(4)]);
    let plain = SignedRoute::unsigned(route);
    g.bench_function("clone_unsigned_route", |b| {
        b.iter(|| black_box(plain.clone()));
    });
    let (chain, _, _) = demo_chain(5, 512, b"bench fanout");
    g.bench_function("clone_5hop_chain", |b| {
        b.iter(|| black_box(chain.clone()));
    });
    let update = BgpUpdate { announces: vec![chain], withdraws: vec![] };
    g.bench_function("wire_size_signed_update", |b| {
        b.iter(|| black_box(update.wire_size()));
    });
    g.finish();
}

/// Full `internet_like` convergence at the default 56-AS parameters —
/// the end-to-end number the sharing refactor moves.
fn bench_convergence(c: &mut Criterion) {
    let mut g = c.benchmark_group("e14_convergence");
    g.sample_size(10);
    let topology = internet_like(e14_params(56), 14);
    g.bench_function("internet_like_56_plain", |b| {
        b.iter(|| {
            let mut net =
                topology.instantiate(InstantiateOptions { seed: 14, ..Default::default() });
            net.converge(RunLimits::none());
            black_box(net.sim.stats().events)
        });
    });
    g.finish();
}

criterion_group!(propagation, bench_chain_prepend, bench_fanout_clone, bench_convergence);
criterion_main!(propagation);
