//! E1 scaling — the §3.3 minimum-operator protocol as the provider
//! count k grows: commitment, disclosure, verification.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pvr_core::{verify_as_receiver, Figure1Bed};
use std::hint::black_box;

fn bench_commit(c: &mut Criterion) {
    let mut g = c.benchmark_group("e1_commit");
    g.sample_size(10);
    for k in [2usize, 8, 32] {
        let lens: Vec<usize> = (0..k).map(|i| 2 + (i % 8)).collect();
        let bed = Figure1Bed::build(&lens, 1);
        g.bench_with_input(BenchmarkId::from_parameter(k), &bed, |b, bed| {
            b.iter(|| black_box(bed.honest_committer().signed_root().root));
        });
    }
    g.finish();
}

fn bench_verify(c: &mut Criterion) {
    let mut g = c.benchmark_group("e1_verify");
    g.sample_size(10);
    for k in [2usize, 8, 32] {
        let lens: Vec<usize> = (0..k).map(|i| 2 + (i % 8)).collect();
        let bed = Figure1Bed::build(&lens, 1);
        let committer = bed.honest_committer();
        let d = committer.disclosure_for_receiver(bed.b);
        g.bench_function(BenchmarkId::new("receiver", k), |b| {
            b.iter(|| {
                let o = verify_as_receiver(bed.b, bed.a, &bed.round, &bed.params, &d, &bed.keys);
                assert!(o.is_accept());
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_commit, bench_verify);
criterion_main!(benches);
