//! E3 — primitive costs (§3.8): SHA-256 vs RSA sign/verify.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pvr_crypto::{drbg::HmacDrbg, sha256, RsaPrivateKey};
use std::hint::black_box;

fn bench_sha256(c: &mut Criterion) {
    let mut g = c.benchmark_group("e3_sha256");
    for size in [64usize, 1024, 4096] {
        let data = vec![0xabu8; size];
        g.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, d| {
            b.iter(|| black_box(sha256(d)));
        });
    }
    g.finish();
}

fn bench_rsa(c: &mut Criterion) {
    let mut g = c.benchmark_group("e3_rsa");
    g.sample_size(10);
    let msg = vec![0xabu8; 1024];
    for bits in [512usize, 1024] {
        let mut rng = HmacDrbg::from_u64_labeled(1, "bench-rsa");
        let key = RsaPrivateKey::generate(bits, &mut rng);
        g.bench_function(BenchmarkId::new("sign", bits), |b| {
            b.iter(|| black_box(key.sign(&msg)));
        });
        let sig = key.sign(&msg);
        g.bench_function(BenchmarkId::new("verify", bits), |b| {
            b.iter(|| key.public().verify(&msg, &sig).unwrap());
        });
    }
    g.finish();
}

criterion_group!(benches, bench_sha256, bench_rsa);
criterion_main!(benches);
