//! E3/E13 — primitive costs (§3.8): SHA-256 vs RSA sign/verify, plus
//! the fast-crypto path cases: Montgomery vs schoolbook modpow, the
//! sign/verify baselines, and attestation chain verification with and
//! without the network-wide cache.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pvr_bgp::{demo_chain, VerifyCache};
use pvr_crypto::{drbg::HmacDrbg, sha256, RsaPrivateKey, Ubig};
use std::hint::black_box;

fn bench_sha256(c: &mut Criterion) {
    let mut g = c.benchmark_group("e3_sha256");
    for size in [64usize, 1024, 4096] {
        let data = vec![0xabu8; size];
        g.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, d| {
            b.iter(|| black_box(sha256(d)));
        });
    }
    g.finish();
}

fn bench_rsa(c: &mut Criterion) {
    let mut g = c.benchmark_group("e3_rsa");
    g.sample_size(10);
    let msg = vec![0xabu8; 1024];
    for bits in [512usize, 1024] {
        let mut rng = HmacDrbg::from_u64_labeled(1, "bench-rsa");
        let key = RsaPrivateKey::generate(bits, &mut rng);
        g.bench_function(BenchmarkId::new("sign", bits), |b| {
            b.iter(|| black_box(key.sign(&msg)));
        });
        let sig = key.sign(&msg);
        g.bench_function(BenchmarkId::new("verify", bits), |b| {
            b.iter(|| key.public().verify(&msg, &sig).unwrap());
        });
    }
    g.finish();
}

/// E13: Montgomery modpow vs the schoolbook baseline it replaced, at a
/// full-width exponent (the core of CRT signing).
fn bench_modpow(c: &mut Criterion) {
    let mut g = c.benchmark_group("e13_modpow");
    g.sample_size(10);
    for bits in [1024usize, 2048] {
        let mut rng = HmacDrbg::from_u64_labeled(2, "bench-modpow");
        let key = RsaPrivateKey::generate(bits, &mut rng);
        let n = key.public().n().clone();
        let base = Ubig::random_below(&n, &mut rng);
        let exp = Ubig::random_bits(bits - 1, &mut rng);
        g.bench_function(BenchmarkId::new("montgomery", bits), |b| {
            b.iter(|| black_box(base.modpow(&exp, &n)));
        });
        g.bench_function(BenchmarkId::new("schoolbook", bits), |b| {
            b.iter(|| black_box(base.modpow_schoolbook(&exp, &n)));
        });
    }
    g.finish();
}

/// E13: sign/verify on the fast path vs the pre-PR schoolbook path, at
/// the acceptance size (2048 bits).
fn bench_sign_verify_baseline(c: &mut Criterion) {
    let mut g = c.benchmark_group("e13_rsa2048");
    g.sample_size(10);
    let msg = b"attestation-sized message";
    let mut rng = HmacDrbg::from_u64_labeled(3, "bench-2048");
    let key = RsaPrivateKey::generate(2048, &mut rng);
    g.bench_function("sign/montgomery", |b| {
        b.iter(|| black_box(key.sign(msg)));
    });
    g.bench_function("sign/schoolbook", |b| {
        b.iter(|| black_box(key.sign_schoolbook(msg)));
    });
    let sig = key.sign(msg);
    g.bench_function("verify/montgomery", |b| {
        b.iter(|| key.public().verify(msg, &sig).unwrap());
    });
    g.bench_function("verify/schoolbook", |b| {
        b.iter(|| key.public().verify_schoolbook(msg, &sig).unwrap());
    });
    g.finish();
}

/// E13: verifying a full attestation chain, uncached vs through a warm
/// network-wide cache (the per-hop import cost in `sbgp`).
fn bench_chain_verify(c: &mut Criterion) {
    let mut g = c.benchmark_group("e13_chain_verify");
    g.sample_size(10);
    let (chain, keys, receiver) = demo_chain(5, 1024, b"bench-chain");
    g.bench_function("uncached", |b| {
        b.iter(|| chain.verify(receiver, &keys).unwrap());
    });
    let warm = VerifyCache::new();
    chain.verify_cached(receiver, &keys, Some(&warm)).unwrap();
    g.bench_function("warm_cache", |b| {
        b.iter(|| chain.verify_cached(receiver, &keys, Some(&warm)).unwrap());
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_sha256,
    bench_rsa,
    bench_modpow,
    bench_sign_verify_baseline,
    bench_chain_verify
);
criterion_main!(benches);
