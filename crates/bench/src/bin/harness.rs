//! The experiment harness: regenerates every table in EXPERIMENTS.md.
//!
//! Usage:
//!   cargo run --release -p pvr-bench --bin harness           # all
//!   cargo run --release -p pvr-bench --bin harness e3 e4     # subset
//!   cargo run --release -p pvr-bench --bin harness -- --quick   # CI smoke

/// One experiment: renders its table as a string.
type Runner = fn() -> String;

/// The subset `--quick` runs: the cheapest experiment per subsystem, so
/// a CI smoke pass exercises the harness end-to-end in seconds.
const QUICK: &[&str] = &["e1", "e2", "e5"];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    if let Some(flag) = args.iter().find(|a| a.starts_with("--") && *a != "--quick") {
        eprintln!("error: unknown flag `{flag}` (the only flag is --quick)");
        std::process::exit(2);
    }
    let explicit: Vec<&str> =
        args.iter().filter(|a| !a.starts_with("--")).map(|s| s.as_str()).collect();
    if quick && !explicit.is_empty() {
        eprintln!("error: --quick cannot be combined with explicit experiment ids {explicit:?}");
        std::process::exit(2);
    }
    let wanted: Vec<&str> = if quick { QUICK.to_vec() } else { explicit };

    println!("PVR reproduction — experiment harness");
    println!("paper: Gurney et al., HotNets-X 2011 (see EXPERIMENTS.md)\n");

    let runners: Vec<(&str, Runner)> = vec![
        // Keep ids in sync with EXPERIMENTS.md; unknown ids are rejected
        // below so a typo'd CI invocation cannot silently run nothing.
        ("e1", pvr_bench::e1_detection_matrix),
        ("e2", pvr_bench::e2_graph_navigation),
        ("e3", pvr_bench::e3_crypto_costs),
        ("e4", pvr_bench::e4_strawman_comparison),
        ("e5", pvr_bench::e5_batching),
        ("e6", pvr_bench::e6_mht_scaling),
        ("e7", pvr_bench::e7_confidentiality),
        ("e8", pvr_bench::e8_internet_overhead),
        ("e9", pvr_bench::e9_ring_scaling),
        ("e10", pvr_bench::e10_promise_ladder),
        ("e11", pvr_bench::e11_ablations),
    ];

    let known: Vec<&str> = runners.iter().map(|&(id, _)| id).collect();
    if let Some(bad) = wanted.iter().find(|w| !known.contains(w)) {
        eprintln!("error: unknown experiment id `{bad}` (known: {})", known.join(", "));
        std::process::exit(2);
    }

    for (id, run) in runners {
        if !wanted.is_empty() && !wanted.contains(&id) {
            continue;
        }
        let t = std::time::Instant::now();
        let table = run();
        println!("{table}");
        println!("[{id} completed in {:.2} s]\n{}", t.elapsed().as_secs_f64(), "=".repeat(72));
    }
}
