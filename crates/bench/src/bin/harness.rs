//! The experiment harness: regenerates every experiment table (see the
//! doc comments on `pvr_bench`'s `eN` functions for the figure/section
//! each one reproduces).
//!
//! Usage:
//!   cargo run --release -p pvr-bench --bin harness             # all
//!   cargo run --release -p pvr-bench --bin harness e3 e4       # subset
//!   cargo run --release -p pvr-bench --bin harness -- --quick  # CI smoke
//!   cargo run --release -p pvr-bench --bin harness -- --json   # machine-readable
//!   cargo run --release -p pvr-bench --bin harness -- --scale 5000 e14
//!   cargo run --release -p pvr-bench --bin harness -- --shards 1,4 e14
//!   cargo run --release -p pvr-bench --bin harness -- --metrics-out m.prom e15
//!   cargo run --release -p pvr-bench --bin harness -- --churn 128 e16
//!   cargo run --release -p pvr-bench --bin harness -- --smc-batch 8 e17
//!   cargo run --release -p pvr-bench --bin harness -- --checkpoint-dir ckpts e18
//!   cargo run --release -p pvr-bench --bin harness -- --restore ckpts/s1/ckpt-00000050.pvr e18
//!
//! `--scale N` sets the largest AS count the scale experiments (e14,
//! e15, e16, e17, e18) converge: default 5000, or 500 under `--quick`
//! so CI smoke stays within budget. E15 and e18 additionally cap their
//! ladders at 1000 ASes — their artifacts are meant for operator
//! inspection, not internet-scale stress.
//!
//! `--shards LIST` (comma-separated, e.g. `--shards 1,2,4`) selects the
//! engine(s) e14, e15, e16, e17, and e18 run on: 1 is the serial
//! engine, >1 the sharded engine with that many worker calendars.
//! Defaults to `1`, or `1,2` under `--quick` so CI smoke covers both
//! engines. Deterministic e14/e15/e16/e17/e18 fields are identical at
//! every shard count; the CI determinism job diffs them.
//!
//! `--checkpoint-every MS` sets e18's checkpoint cadence in sim-time
//! milliseconds (default 10); `--checkpoint-dir DIR` keeps e18's
//! checkpoint files under DIR (per-shard-count subdirectories `s<N>/`)
//! instead of a deleted temp directory; `--restore FILE` adds e18's
//! operator drill — restore FILE (either engine) and replay it to
//! quiescence. All three require e18 to be selected and are validated
//! up front (exit 2).
//!
//! `--smc-batch N` sets e17's GMW batch width (lanes per word, 1–64;
//! default 64). Requires e17 to be selected.
//!
//! `--churn N` sets e16's continuous-churn event count (default 64);
//! `--fault-seed N` seeds its fault plan, degradation edge choice, and
//! deployment sweep (default 16). Both require e16 to be selected —
//! like every flag, they are validated up front (exit 2) before any
//! experiment burns CPU.
//!
//! `--metrics-out FILE` writes e15's Prometheus text exposition to
//! FILE; `--trace-out FILE` writes its JSONL event trace. Both require
//! e15 to be selected and their directory to exist (checked up front,
//! before any experiment runs).
//!
//! `--json` replaces the human tables with one JSON document on stdout:
//! `{schema, quick, experiments: [{id, wall_secs, rows}], total_wall_secs}`
//! — the format CI archives as the `BENCH_*.json` perf trajectory. The
//! e14 record additionally carries a `metrics` array with one object
//! per (scale, shards, mode) cell: `{scale, mode, shards, ases, edges,
//! origins, events, wall_secs, events_per_sec, peak_rib_entries,
//! bytes_on_wire, short_circuits, final_rib_sha256}`. The e15 record
//! carries a `metrics`
//! array (the pvr-obs JSON exposition of the merged snapshot) and a
//! `timeline` array (the signed run's convergence-timeline windows).
//! The e16 record carries a `metrics` object with the churn run's
//! settle-time percentiles, withdraw fan-out, dampening suppressions,
//! fault counts, and the degradation/deployment tables — all sim-time
//! deterministic. The e17 record carries a `metrics` array with one
//! object per (scale, shards) pair: the signed-baseline and private-run
//! events/sim-time/wall-clock, the sim-time privacy-overhead
//! multiplier, batch occupancy, and the verifier's full `smc` bill
//! (requests, batches, AND gates, rounds, triples, OTs, bits
//! broadcast, modeled latency, verdict tally). The e18 record carries
//! a `metrics` object with one row per shard count — convergence
//! events, snapshot/checkpoint counts, checkpoint bytes, the
//! kill-and-recover drill's replayed events and `recovered_identical`
//! verdict, and the converged RIB's SHA-256 — plus the hijack-bisect
//! forensic row. `ci/normalize_e14.py` strips the `verify_cache_hit*`
//! series/fields — the engine-local carve-out — plus all wall-clock
//! fields and e18's engine-local checkpoint byte size, and diffs the
//! rest across shard counts.

/// One experiment: renders its table as a string.
type Runner = fn() -> String;

/// The subset `--quick` runs: the cheapest experiment per subsystem, so
/// a CI smoke pass exercises the harness end-to-end in seconds. E14
/// and e15 ride along at a reduced `--scale` (500 ASes): small enough
/// for CI, large enough that a propagation regression shows.
const QUICK: &[&str] = &["e1", "e2", "e5", "e12", "e13", "e14", "e15", "e16", "e17", "e18"];

/// Default largest AS count for e14 (overridable with `--scale`).
const DEFAULT_SCALE: usize = 5000;
/// E14/e15 scale under `--quick`.
const QUICK_SCALE: usize = 500;
/// E15 never converges past this many ASes regardless of `--scale`:
/// its journals and timelines are operator-inspection artifacts, not a
/// stress test (e14 covers internet scale).
const E15_MAX_SCALE: usize = 1000;
/// E14/e15 shard counts under `--quick`: serial plus one sharded run,
/// so CI smoke exercises both engines.
const QUICK_SHARDS: &[usize] = &[1, 2];
/// E16's default continuous-churn event count (`--churn` overrides).
const DEFAULT_CHURN: usize = 64;
/// E16's default fault seed (`--fault-seed` overrides).
const DEFAULT_FAULT_SEED: u64 = 16;
/// E17's default GMW batch width (`--smc-batch` overrides): the full
/// 64-lane word.
const DEFAULT_SMC_BATCH: usize = 64;
/// E18 never converges past this many ASes regardless of `--scale`:
/// its checkpoint/restore cycles are durability drills, not a stress
/// test (e14 covers internet scale).
const E18_MAX_SCALE: usize = 1000;

/// Validates an output-file flag up front: the file's directory must
/// exist before any experiment burns CPU.
fn validate_out_path(flag: &str, path: &str) {
    let parent = std::path::Path::new(path)
        .parent()
        .filter(|p| !p.as_os_str().is_empty())
        .unwrap_or_else(|| std::path::Path::new("."));
    if !parent.is_dir() {
        eprintln!("error: {flag} directory `{}` does not exist", parent.display());
        std::process::exit(2);
    }
}

/// Minimal JSON string escaping (the tables are ASCII plus `µ`/`×`/`→`;
/// everything below 0x20 is control-escaped).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json = args.iter().any(|a| a == "--json");
    // `--scale N` / `--shards LIST`: consume each flag and its value
    // before flag/id checks.
    let mut scale: Option<usize> = None;
    let mut shards: Option<Vec<usize>> = None;
    let mut churn: Option<usize> = None;
    let mut fault_seed: Option<u64> = None;
    let mut smc_batch: Option<usize> = None;
    let mut metrics_out: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut checkpoint_every: Option<u64> = None;
    let mut checkpoint_dir: Option<String> = None;
    let mut restore: Option<String> = None;
    let mut rest: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--metrics-out" || a == "--trace-out" {
            let Some(path) = it.next().filter(|p| !p.starts_with("--") && !p.is_empty()) else {
                eprintln!("error: {a} needs a file path");
                std::process::exit(2);
            };
            validate_out_path(a, path);
            if a == "--metrics-out" {
                metrics_out = Some(path.clone());
            } else {
                trace_out = Some(path.clone());
            }
        } else if a == "--scale" {
            let v = it.next().and_then(|v| v.parse::<usize>().ok());
            match v {
                Some(n) if (56..=90_000).contains(&n) => scale = Some(n),
                _ => {
                    eprintln!("error: --scale needs an AS count between 56 and 90000");
                    std::process::exit(2);
                }
            }
        } else if a == "--churn" {
            let v = it.next().and_then(|v| v.parse::<usize>().ok());
            match v {
                Some(n) if (1..=100_000).contains(&n) => churn = Some(n),
                _ => {
                    eprintln!("error: --churn needs an event count between 1 and 100000");
                    std::process::exit(2);
                }
            }
        } else if a == "--smc-batch" {
            let v = it.next().and_then(|v| v.parse::<usize>().ok());
            match v {
                Some(n) if (1..=64).contains(&n) => smc_batch = Some(n),
                _ => {
                    eprintln!("error: --smc-batch needs a lane count between 1 and 64");
                    std::process::exit(2);
                }
            }
        } else if a == "--checkpoint-every" {
            let v = it.next().and_then(|v| v.parse::<u64>().ok());
            match v {
                Some(n) if (1..=60_000).contains(&n) => checkpoint_every = Some(n),
                _ => {
                    eprintln!(
                        "error: --checkpoint-every needs a sim-time cadence between \
                         1 and 60000 milliseconds"
                    );
                    std::process::exit(2);
                }
            }
        } else if a == "--checkpoint-dir" {
            let Some(path) = it.next().filter(|p| !p.starts_with("--") && !p.is_empty()) else {
                eprintln!("error: --checkpoint-dir needs a directory path");
                std::process::exit(2);
            };
            // The directory itself is created on demand; its parent
            // must already exist (same contract as the output files).
            let p = std::path::Path::new(path);
            if !p.is_dir() {
                validate_out_path(a, path);
            }
            checkpoint_dir = Some(path.clone());
        } else if a == "--restore" {
            let Some(path) = it.next().filter(|p| !p.starts_with("--") && !p.is_empty()) else {
                eprintln!("error: --restore needs a checkpoint file path");
                std::process::exit(2);
            };
            if !std::path::Path::new(path).is_file() {
                eprintln!("error: --restore checkpoint `{path}` does not exist");
                std::process::exit(2);
            }
            restore = Some(path.clone());
        } else if a == "--fault-seed" {
            let Some(v) = it.next().and_then(|v| v.parse::<u64>().ok()) else {
                eprintln!("error: --fault-seed needs an unsigned integer");
                std::process::exit(2);
            };
            fault_seed = Some(v);
        } else if a == "--shards" {
            let parsed: Option<Vec<usize>> = it
                .next()
                .map(|v| v.split(',').map(|p| p.trim().parse::<usize>()).collect::<Result<_, _>>())
                .and_then(Result::ok);
            match parsed {
                Some(list) if !list.is_empty() && list.iter().all(|&n| (1..=64).contains(&n)) => {
                    shards = Some(list);
                }
                _ => {
                    eprintln!(
                        "error: --shards needs a comma-separated list of counts between 1 and 64"
                    );
                    std::process::exit(2);
                }
            }
        } else {
            rest.push(a.clone());
        }
    }
    let args = rest;
    if let Some(flag) =
        args.iter().find(|a| a.starts_with("--") && *a != "--quick" && *a != "--json")
    {
        eprintln!(
            "error: unknown flag `{flag}` (flags: --quick, --json, --scale N, --shards LIST, \
             --churn N, --fault-seed N, --smc-batch N, --metrics-out FILE, --trace-out FILE, \
             --checkpoint-every MS, --checkpoint-dir DIR, --restore FILE)"
        );
        std::process::exit(2);
    }
    let explicit: Vec<&str> =
        args.iter().filter(|a| !a.starts_with("--")).map(|s| s.as_str()).collect();
    if quick && !explicit.is_empty() {
        eprintln!("error: --quick cannot be combined with explicit experiment ids {explicit:?}");
        std::process::exit(2);
    }
    let wanted: Vec<&str> = if quick { QUICK.to_vec() } else { explicit };
    // --scale/--shards parameterize e14/e15/e16/e17/e18 only, --churn/
    // --fault-seed are e16 knobs, --smc-batch is an e17 knob,
    // --metrics-out/--trace-out are e15 artifacts, and
    // --checkpoint-every/--checkpoint-dir/--restore are e18 knobs;
    // silently ignoring them on a selection without those experiments
    // would contradict the strict flag validation above.
    let scale_exp = |w: &[&str]| {
        w.is_empty()
            || w.contains(&"e14")
            || w.contains(&"e15")
            || w.contains(&"e16")
            || w.contains(&"e17")
            || w.contains(&"e18")
    };
    if scale.is_some() && !scale_exp(&wanted) {
        eprintln!("error: --scale only applies to e14/e15/e16/e17/e18, none of which is selected");
        std::process::exit(2);
    }
    if shards.is_some() && !scale_exp(&wanted) {
        eprintln!("error: --shards only applies to e14/e15/e16/e17/e18, none of which is selected");
        std::process::exit(2);
    }
    if (checkpoint_every.is_some() || checkpoint_dir.is_some() || restore.is_some())
        && !wanted.is_empty()
        && !wanted.contains(&"e18")
    {
        eprintln!(
            "error: --checkpoint-every/--checkpoint-dir/--restore need e18, \
             which is not selected"
        );
        std::process::exit(2);
    }
    if (churn.is_some() || fault_seed.is_some()) && !wanted.is_empty() && !wanted.contains(&"e16") {
        eprintln!("error: --churn/--fault-seed need e16, which is not selected");
        std::process::exit(2);
    }
    if smc_batch.is_some() && !wanted.is_empty() && !wanted.contains(&"e17") {
        eprintln!("error: --smc-batch needs e17, which is not selected");
        std::process::exit(2);
    }
    if (metrics_out.is_some() || trace_out.is_some())
        && !wanted.is_empty()
        && !wanted.contains(&"e15")
    {
        eprintln!("error: --metrics-out/--trace-out need e15, which is not selected");
        std::process::exit(2);
    }
    let scale = scale.unwrap_or(if quick { QUICK_SCALE } else { DEFAULT_SCALE });
    let shards = shards.unwrap_or_else(|| if quick { QUICK_SHARDS.to_vec() } else { vec![1] });
    let churn = churn.unwrap_or(DEFAULT_CHURN);
    let fault_seed = fault_seed.unwrap_or(DEFAULT_FAULT_SEED);
    let smc_batch = smc_batch.unwrap_or(DEFAULT_SMC_BATCH);
    let checkpoint_every = checkpoint_every.unwrap_or(pvr_bench::E18_DEFAULT_EVERY_MS);

    if !json {
        println!("PVR reproduction — experiment harness");
        println!("paper: Gurney et al., HotNets-X 2011\n");
    }

    let runners: Vec<(&str, Runner)> = vec![
        // Unknown ids are rejected below so a typo'd CI invocation
        // cannot silently run nothing.
        ("e1", pvr_bench::e1_detection_matrix),
        ("e2", pvr_bench::e2_graph_navigation),
        ("e3", pvr_bench::e3_crypto_costs),
        ("e4", pvr_bench::e4_strawman_comparison),
        ("e5", pvr_bench::e5_batching),
        ("e6", pvr_bench::e6_mht_scaling),
        ("e7", pvr_bench::e7_confidentiality),
        ("e8", pvr_bench::e8_internet_overhead),
        ("e9", pvr_bench::e9_ring_scaling),
        ("e10", pvr_bench::e10_promise_ladder),
        ("e11", pvr_bench::e11_ablations),
        ("e12", pvr_bench::e12_attack_campaigns),
        ("e13", pvr_bench::e13_crypto_perf),
    ];

    let mut known: Vec<&str> = runners.iter().map(|&(id, _)| id).collect();
    known.push("e14");
    known.push("e15");
    known.push("e16");
    known.push("e17");
    known.push("e18");
    if let Some(bad) = wanted.iter().find(|w| !known.contains(w)) {
        eprintln!("error: unknown experiment id `{bad}` (known: {})", known.join(", "));
        std::process::exit(2);
    }

    let total = std::time::Instant::now();
    // (id, wall, table, extra): `extra` is a pre-rendered JSON fragment
    // appended inside the record's object — e14's per-cell metrics,
    // e15's metrics/timeline sections, empty for everything else.
    let mut records: Vec<(&str, f64, String, String)> = Vec::new();
    for (id, run) in runners {
        if !wanted.is_empty() && !wanted.contains(&id) {
            continue;
        }
        let t = std::time::Instant::now();
        let table = run();
        let wall = t.elapsed().as_secs_f64();
        if json {
            records.push((id, wall, table, String::new()));
        } else {
            println!("{table}");
            println!("[{id} completed in {wall:.2} s]\n{}", "=".repeat(72));
        }
    }
    // E14 and e15 run last and take the scale/shards parameters (every
    // other runner is a plain nullary table generator).
    if wanted.is_empty() || wanted.contains(&"e14") {
        let t = std::time::Instant::now();
        let (table, cells) = pvr_bench::e14_scale(scale, &shards);
        let wall = t.elapsed().as_secs_f64();
        if json {
            let mut extra = String::from(",\"metrics\":[");
            for (k, c) in cells.iter().enumerate() {
                if k > 0 {
                    extra.push(',');
                }
                extra.push_str(&format!(
                    "{{\"scale\":{},\"mode\":\"{}\",\"shards\":{},\"ases\":{},\"edges\":{},\"origins\":{},\"events\":{},\"wall_secs\":{:.4},\"events_per_sec\":{:.1},\"peak_rib_entries\":{},\"bytes_on_wire\":{},\"short_circuits\":{},\"final_rib_sha256\":\"{}\"}}",
                    c.scale,
                    c.mode,
                    c.shards,
                    c.ases,
                    c.edges,
                    c.origins,
                    c.events,
                    c.wall_secs,
                    c.events_per_sec,
                    c.peak_rib_entries,
                    c.bytes_on_wire,
                    c.short_circuits,
                    c.final_rib_sha256,
                ));
            }
            extra.push(']');
            records.push(("e14", wall, table, extra));
        } else {
            println!("{table}");
            println!("[e14 completed in {wall:.2} s]\n{}", "=".repeat(72));
        }
    }
    if wanted.is_empty() || wanted.contains(&"e15") {
        let t = std::time::Instant::now();
        let (table, artifacts) = pvr_bench::e15_observability(scale.min(E15_MAX_SCALE), &shards);
        let wall = t.elapsed().as_secs_f64();
        if let Some(path) = &metrics_out {
            if let Err(e) = std::fs::write(path, &artifacts.prometheus) {
                eprintln!("error: writing --metrics-out `{path}`: {e}");
                std::process::exit(2);
            }
        }
        if let Some(path) = &trace_out {
            if let Err(e) = std::fs::write(path, &artifacts.trace_jsonl) {
                eprintln!("error: writing --trace-out `{path}`: {e}");
                std::process::exit(2);
            }
        }
        if json {
            let extra = format!(
                ",\"metrics\":{},\"timeline\":{}",
                artifacts.metrics_json, artifacts.timeline_json
            );
            records.push(("e15", wall, table, extra));
        } else {
            println!("{table}");
            println!("[e15 completed in {wall:.2} s]\n{}", "=".repeat(72));
        }
    }
    if wanted.is_empty() || wanted.contains(&"e16") {
        let t = std::time::Instant::now();
        let (table, m) = pvr_bench::e16_churn(scale, &shards, churn, fault_seed);
        let wall = t.elapsed().as_secs_f64();
        if json {
            let degradation: Vec<String> = m
                .degradation
                .iter()
                .map(|&(pct, links, correct)| {
                    format!(
                        "{{\"flap_pct\":{pct},\"links_flapping\":{links},\
                         \"routes_correct_pct\":{correct:.3}}}"
                    )
                })
                .collect();
            let deployment: Vec<String> = m
                .deployment
                .iter()
                .map(|p| {
                    format!(
                        "{{\"fraction_pct\":{},\"protected\":{},\"attack_success_pct\":{:.3},\
                         \"fringe_interception_pct\":{:.3},\"origin_rejections\":{}}}",
                        p.fraction_pct,
                        p.protected,
                        p.attack_success_pct,
                        p.fringe_interception_pct,
                        p.origin_rejections
                    )
                })
                .collect();
            let extra = format!(
                ",\"metrics\":{{\"scale\":{},\"churn_events\":{},\"settle_p50_us\":{},\
                 \"settle_p99_us\":{},\"withdraws_sent\":{},\"withdraw_fanout\":{:.3},\
                 \"dampening_suppressed\":{},\"session_resets\":{},\"link_down\":{},\
                 \"degradation\":[{}],\"deployment\":[{}]}}",
                m.scale,
                m.churn_events,
                m.settle_p50_us,
                m.settle_p99_us,
                m.withdraws_sent,
                m.withdraw_fanout,
                m.dampening_suppressed,
                m.session_resets,
                m.link_down,
                degradation.join(","),
                deployment.join(","),
            );
            records.push(("e16", wall, table, extra));
        } else {
            println!("{table}");
            println!("[e16 completed in {wall:.2} s]\n{}", "=".repeat(72));
        }
    }
    if wanted.is_empty() || wanted.contains(&"e17") {
        let t = std::time::Instant::now();
        let (table, rows) = pvr_bench::e17_private_path(scale, &shards, smc_batch);
        let wall = t.elapsed().as_secs_f64();
        if json {
            let mut extra = String::from(",\"metrics\":[");
            for (k, r) in rows.iter().enumerate() {
                if k > 0 {
                    extra.push(',');
                }
                let smc: Vec<String> =
                    r.smc.fields().iter().map(|(name, v)| format!("\"{name}\":{v}")).collect();
                extra.push_str(&format!(
                    "{{\"scale\":{},\"shards\":{},\"lane_cap\":{},\"ases\":{},\
                     \"baseline_events\":{},\"baseline_sim_us\":{},\"baseline_wall_secs\":{:.4},\
                     \"private_events\":{},\"private_sim_us\":{},\"private_wall_secs\":{:.4},\
                     \"sim_time_overhead\":{:.4},\"wall_overhead\":{:.4},\
                     \"occupancy_pct\":{:.2},\"smc\":{{{}}}}}",
                    r.scale,
                    r.shards,
                    r.lane_cap,
                    r.ases,
                    r.baseline_events,
                    r.baseline_sim_us,
                    r.baseline_wall_secs,
                    r.private_events,
                    r.private_sim_us,
                    r.private_wall_secs,
                    r.sim_time_overhead,
                    r.wall_overhead,
                    r.occupancy_pct,
                    smc.join(","),
                ));
            }
            extra.push(']');
            records.push(("e17", wall, table, extra));
        } else {
            println!("{table}");
            println!("[e17 completed in {wall:.2} s]\n{}", "=".repeat(72));
        }
    }
    if wanted.is_empty() || wanted.contains(&"e18") {
        let t = std::time::Instant::now();
        let (table, m) = pvr_bench::e18_durability(
            scale.min(E18_MAX_SCALE),
            &shards,
            checkpoint_every,
            checkpoint_dir.as_deref().map(std::path::Path::new),
            restore.as_deref().map(std::path::Path::new),
        );
        let wall = t.elapsed().as_secs_f64();
        if json {
            let rows: Vec<String> = m
                .rows
                .iter()
                .map(|r| {
                    format!(
                        "{{\"shards\":{},\"events\":{},\"baseline_wall_secs\":{:.4},\
                         \"checkpointed_wall_secs\":{:.4},\"snapshot_overhead_pct\":{:.2},\
                         \"snapshots_retained\":{},\"checkpoints_written\":{},\
                         \"last_checkpoint_bytes\":{},\"checkpoint_write_secs\":{:.6},\
                         \"write_mb_per_sec\":{:.2},\"recovery_wall_secs\":{:.4},\
                         \"replay_events\":{},\"recovered_identical\":{},\
                         \"final_rib_sha256\":\"{}\"}}",
                        r.shards,
                        r.events,
                        r.baseline_wall_secs,
                        r.checkpointed_wall_secs,
                        r.snapshot_overhead_pct,
                        r.snapshots_retained,
                        r.checkpoints_written,
                        r.last_checkpoint_bytes,
                        r.checkpoint_write_secs,
                        r.write_mb_per_sec,
                        r.recovery_wall_secs,
                        r.replay_events,
                        r.recovered_identical,
                        r.final_rib_sha256,
                    )
                })
                .collect();
            let extra = format!(
                ",\"metrics\":{{\"scale\":{},\"ases\":{},\"checkpoint_every_ms\":{},\
                 \"rows\":[{}],\"forensic\":{{\"snapshots\":{},\"probes\":{},\
                 \"first_poisoned_ms\":{},\"poisoned_ases\":{}}}}}",
                m.scale,
                m.ases,
                m.checkpoint_every_ms,
                rows.join(","),
                m.forensic.snapshots,
                m.forensic.probes,
                m.forensic.first_poisoned_ms,
                m.forensic.poisoned_ases,
            );
            records.push(("e18", wall, table, extra));
        } else {
            println!("{table}");
            println!("[e18 completed in {wall:.2} s]\n{}", "=".repeat(72));
        }
    }

    if json {
        let mut out = String::from("{\"schema\":\"pvr-bench-v1\",");
        out.push_str(&format!("\"quick\":{quick},\"scale\":{scale},\"experiments\":["));
        for (i, (id, wall, table, extra)) in records.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{{\"id\":\"{id}\",\"wall_secs\":{wall:.4},\"rows\":["));
            for (j, line) in table.lines().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push('"');
                out.push_str(&json_escape(line));
                out.push('"');
            }
            out.push(']');
            out.push_str(extra);
            out.push('}');
        }
        out.push_str(&format!("],\"total_wall_secs\":{:.4}}}", total.elapsed().as_secs_f64()));
        println!("{out}");
    }
}
