//! The experiment harness: regenerates every table in EXPERIMENTS.md.
//!
//! Usage:
//!   cargo run --release -p pvr-bench --bin harness           # all
//!   cargo run --release -p pvr-bench --bin harness e3 e4     # subset

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let wanted: Vec<&str> = args.iter().map(|s| s.as_str()).collect();

    println!("PVR reproduction — experiment harness");
    println!("paper: Gurney et al., HotNets-X 2011 (see EXPERIMENTS.md)\n");

    let runners: Vec<(&str, fn() -> String)> = vec![
        ("e1", pvr_bench::e1_detection_matrix),
        ("e2", pvr_bench::e2_graph_navigation),
        ("e3", pvr_bench::e3_crypto_costs),
        ("e4", pvr_bench::e4_strawman_comparison),
        ("e5", pvr_bench::e5_batching),
        ("e6", pvr_bench::e6_mht_scaling),
        ("e7", pvr_bench::e7_confidentiality),
        ("e8", pvr_bench::e8_internet_overhead),
        ("e9", pvr_bench::e9_ring_scaling),
        ("e10", pvr_bench::e10_promise_ladder),
        ("e11", pvr_bench::e11_ablations),
    ];

    for (id, run) in runners {
        if !wanted.is_empty() && !wanted.contains(&id) {
            continue;
        }
        let t = std::time::Instant::now();
        let table = run();
        println!("{table}");
        println!("[{id} completed in {:.2} s]\n{}", t.elapsed().as_secs_f64(), "=".repeat(72));
    }
}
