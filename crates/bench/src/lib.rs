//! Experiment implementations for the PVR reproduction.
//!
//! Each `eN` function regenerates one experiment table. The paper has
//! no numbered tables; the experiments map its figures and quantitative
//! prose claims — the doc comment on each `eN` function names the
//! figure/section it reproduces, and the README's "Build, test, bench"
//! section shows how to run them. The `harness` binary prints them
//! (`--json` for machine-readable rows); integration tests assert on
//! the returned rows.

use pvr_bgp::{internet_like, Asn, InstantiateOptions, InternetParams};
use pvr_core::{
    batch, claimed_min, run_min_round, verify_as_provider, verify_as_receiver, Figure1Bed,
    Misbehavior, Verdict,
};
use pvr_crypto::{drbg::HmacDrbg, ring_sign, ring_verify, sha256, Identity, RsaPrivateKey};
use pvr_mht::{Label, SparseMht};
use pvr_netsim::{FaultPlan, RunLimits, SimDuration};
use pvr_rfg::{AccessPolicy, Promise};
use pvr_smc::{majority_circuit, min_circuit, run_gmw, to_bits, SmcCostModel, ZkpCostModel};
use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::time::Instant;

/// Median wall-clock of `n` runs of `f`, in seconds.
pub fn median_secs<F: FnMut()>(n: usize, mut f: F) -> f64 {
    let mut samples: Vec<f64> = (0..n)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.2} s")
    } else if secs >= 1e-3 {
        format!("{:.2} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.2} µs", secs * 1e6)
    } else {
        format!("{:.0} ns", secs * 1e9)
    }
}

/// E1 — Figure 1 / §3.3: detection matrix for the minimum operator.
/// Rows: behavior → detected? evidence? guilty verdicts? false
/// positives are counted across honest seeds.
pub fn e1_detection_matrix() -> String {
    let mut out = String::new();
    writeln!(out, "E1: minimum-operator detection matrix (Figure 1, §3.3)").unwrap();
    writeln!(out, "{:<22} {:>9} {:>9} {:>8}", "behavior", "detected", "evidence", "guilty")
        .unwrap();

    // Honest runs across seeds: false-positive rate must be 0.
    let mut false_positives = 0;
    let honest_runs = 10;
    for seed in 0..honest_runs {
        let bed = Figure1Bed::build(&[2, 3, 5], 1000 + seed);
        if !run_min_round(&bed, None).clean() {
            false_positives += 1;
        }
    }
    writeln!(out, "{:<22} {:>9} {:>9} {:>8}", "honest (10 seeds)", false_positives, 0, 0).unwrap();

    let bed = Figure1Bed::build(&[2, 3, 5], 42);
    let behaviors = vec![
        ("export-longer", Misbehavior::ExportLonger),
        ("suppress-min-input", Misbehavior::SuppressInput { victim: bed.ns[0] }),
        ("deny-all", Misbehavior::DenyAll),
        ("equivocate", Misbehavior::Equivocate { victim: bed.ns[0] }),
        ("non-monotone-bits", Misbehavior::NonMonotoneBits),
        ("fabricate-export", Misbehavior::FabricateExport),
        ("refuse-reveal", Misbehavior::RefuseReveal { victim: bed.ns[0] }),
        ("corrupt-opening", Misbehavior::CorruptOpening { victim: bed.ns[0] }),
    ];
    for (name, b) in behaviors {
        let report = run_min_round(&bed, Some(b));
        let guilty = report.verdicts.iter().filter(|(_, v)| *v == Verdict::Guilty).count();
        writeln!(
            out,
            "{:<22} {:>9} {:>9} {:>8}",
            name,
            report.detected(),
            report.verdicts.len(),
            guilty
        )
        .unwrap();
    }
    writeln!(out, "(expected: honest row all zeros; every row below detected=true;").unwrap();
    writeln!(out, " omission faults — refuse/corrupt — detected without evidence)").unwrap();
    out
}

/// E2 — Figure 2 / §3.5–3.7: multi-operator graph verification and
/// disclosure sizes as the provider count grows.
pub fn e2_graph_navigation() -> String {
    let mut out = String::new();
    writeln!(out, "E2: multi-operator graph navigation (Figure 2, §3.5-3.7)").unwrap();
    writeln!(
        out,
        "{:>4} {:>9} {:>12} {:>14} {:>12}",
        "k", "vertices", "reveals→B", "bytes→B", "verify time"
    )
    .unwrap();
    for k in [2usize, 4, 8, 16, 32] {
        let lens: Vec<usize> = (0..k).map(|i| 2 + (i % 8)).collect();
        let bed = Figure1Bed::build_figure2(&lens, 7);
        let c = bed.honest_committer();
        let everyone: Vec<Asn> = bed.ns.iter().copied().chain([bed.b]).collect();
        let alpha = AccessPolicy::paper_example(&bed.graph, &everyone);
        let reveals = c.graph_disclosure_for(bed.b, &alpha);
        let bytes: usize = {
            use pvr_crypto::Wire;
            reveals.iter().map(|r| r.to_wire().len()).sum()
        };
        let out_label = Label::Var(bed.output_var.0);
        let inputs: Vec<Label> = bed.input_vars.iter().map(|v| Label::Var(v.0)).collect();
        let root = c.signed_root().root;
        let t = median_secs(5, || {
            let g = pvr_core::VisibleGraph::reconstruct(&reveals, &root).unwrap();
            assert!(g.check_figure2_promise(&out_label, &inputs[0], &inputs[1..]));
        });
        writeln!(
            out,
            "{:>4} {:>9} {:>12} {:>14} {:>12}",
            k,
            bed.graph.vars().count() + bed.graph.ops().count(),
            reveals.len(),
            bytes,
            fmt_time(t)
        )
        .unwrap();
    }
    writeln!(out, "(expected: reveals and bytes linear in k; verify time ~linear)").unwrap();
    out
}

/// E3 — §3.8: "a cryptographic hash-function (such as SHA-256), which
/// are relatively cheap, and a public-key signature scheme (such as
/// RSA). A RSA-1024 signature takes about two milliseconds."
pub fn e3_crypto_costs() -> String {
    let mut out = String::new();
    writeln!(out, "E3: primitive costs (§3.8)").unwrap();

    // SHA-256 over a BGP-update-sized message.
    let msg = vec![0xabu8; 4096];
    let t_hash = median_secs(51, || {
        std::hint::black_box(sha256(&msg));
    });
    writeln!(out, "{:<28} {:>12}", "SHA-256 (4 KiB)", fmt_time(t_hash)).unwrap();

    for bits in [512usize, 1024, 2048] {
        let mut rng = HmacDrbg::from_u64_labeled(3, "e3-keys");
        let key = RsaPrivateKey::generate(bits, &mut rng);
        let t_sign = median_secs(11, || {
            std::hint::black_box(key.sign(&msg));
        });
        let sig = key.sign(&msg);
        let t_verify = median_secs(11, || {
            key.public().verify(&msg, &sig).unwrap();
        });
        writeln!(
            out,
            "{:<28} {:>12}   verify {:>10}",
            format!("RSA-{bits} sign"),
            fmt_time(t_sign),
            fmt_time(t_verify)
        )
        .unwrap();
        if bits == 1024 {
            writeln!(
                out,
                "  paper claim: RSA-1024 ≈ 2 ms (2011 hardware); measured {}",
                fmt_time(t_sign)
            )
            .unwrap();
        }
    }
    writeln!(out, "(expected shape: hash µs-scale, signatures ms-scale, quadratic-ish in bits)")
        .unwrap();
    out
}

/// E4 — §3.1: the strawman comparison. "even with only five players,
/// state-of-the-art SMC systems take about 15 seconds … for a simple
/// task like voting \[2\]".
pub fn e4_strawman_comparison() -> String {
    let mut out = String::new();
    writeln!(out, "E4: PVR vs. the SMC/ZKP strawmen (§3.1), k = 5 providers").unwrap();

    // PVR: one full min-operator round (commit + all disclosures + all
    // verifications), measured.
    let bed = Figure1Bed::build(&[2, 3, 4, 5, 6], 4);
    let t_pvr = median_secs(5, || {
        let report = run_min_round(&bed, None);
        assert!(report.clean());
    });

    // GMW on the equivalent min circuit (8-bit lengths), measured
    // locally and modeled on a WAN.
    let circuit = min_circuit(5, 8);
    let inputs: Vec<Vec<bool>> = [2u64, 3, 4, 5, 6].iter().map(|&v| to_bits(v, 8)).collect();
    let mut rng = HmacDrbg::from_u64_labeled(4, "e4-gmw");
    let t_gmw_local = median_secs(5, || {
        let r = run_gmw(&circuit, &inputs, &mut rng);
        std::hint::black_box(r.outputs);
    });
    let gmw_stats = run_gmw(&circuit, &inputs, &mut rng).stats;
    let model = SmcCostModel::fairplay_calibrated();
    let t_gmw_wan = model.estimate_seconds(&gmw_stats);

    // FairplayMP calibration point: majority vote, 5 players.
    let vote = majority_circuit(5);
    let vote_inputs: Vec<Vec<bool>> = (0..5).map(|i| vec![i % 2 == 0]).collect();
    let vote_stats = run_gmw(&vote, &vote_inputs, &mut rng).stats;
    let t_vote_wan = model.estimate_seconds(&vote_stats);

    // Generic ZKP strawman over the min circuit.
    let zkp = ZkpCostModel::generic();
    let t_zkp = zkp.estimate_seconds(&circuit);

    writeln!(out, "{:<44} {:>12}", "PVR full round (measured)", fmt_time(t_pvr)).unwrap();
    writeln!(
        out,
        "{:<44} {:>12}",
        "GMW min-circuit, local compute (measured)",
        fmt_time(t_gmw_local)
    )
    .unwrap();
    writeln!(
        out,
        "{:<44} {:>12}   ({} ANDs, {} rounds, {} OTs)",
        "GMW min-circuit, WAN model",
        fmt_time(t_gmw_wan),
        gmw_stats.and_gates,
        gmw_stats.rounds,
        gmw_stats.equivalent_ots
    )
    .unwrap();
    writeln!(
        out,
        "{:<44} {:>12}   (paper cites ≈15 s)",
        "FairplayMP calibration: 5-player voting",
        fmt_time(t_vote_wan)
    )
    .unwrap();
    writeln!(out, "{:<44} {:>12}", "generic ZKP model, min circuit", fmt_time(t_zkp)).unwrap();
    writeln!(
        out,
        "PVR vs SMC-on-WAN speedup: {:.0}×   (expected: ≥3 orders of magnitude)",
        t_gmw_wan / t_pvr
    )
    .unwrap();
    out
}

/// E5 — §3.8: batched signing of update bursts with a small MHT.
pub fn e5_batching() -> String {
    let mut out = String::new();
    writeln!(out, "E5: batched signing of BGP bursts (§3.8), RSA-1024").unwrap();
    writeln!(
        out,
        "{:>6} {:>16} {:>16} {:>10} {:>14}",
        "burst", "per-update sign", "batched sign", "speedup", "bytes/update"
    )
    .unwrap();
    let mut rng = HmacDrbg::from_u64_labeled(5, "e5-key");
    let identity = Identity::generate(100, 1024, &mut rng);
    for n in [1usize, 4, 16, 64, 256, 1024] {
        let items: Vec<Vec<u8>> = (0..n).map(|i| format!("update {i}").into_bytes()).collect();
        let t_individual = median_secs(3, || {
            for it in &items {
                std::hint::black_box(identity.sign(it));
            }
        }) / n as f64;
        let t_batched = median_secs(3, || {
            std::hint::black_box(batch::SignedBatch::sign(&identity, 1, &items));
        }) / n as f64;
        let b = batch::SignedBatch::sign(&identity, 1, &items);
        let bytes = b.item(0).unwrap().byte_size();
        writeln!(
            out,
            "{:>6} {:>16} {:>16} {:>9.1}x {:>14}",
            n,
            fmt_time(t_individual),
            fmt_time(t_batched),
            t_individual / t_batched,
            bytes
        )
        .unwrap();
    }
    writeln!(out, "(expected: per-update cost flat; batched cost ~1/n toward the hash floor;")
        .unwrap();
    writeln!(out, " bytes/update grows only logarithmically)").unwrap();
    out
}

/// E6 — §3.6: commitment and selective-disclosure scaling.
pub fn e6_mht_scaling() -> String {
    let mut out = String::new();
    writeln!(out, "E6: sparse-MHT commitment & disclosure scaling (§3.6)").unwrap();
    writeln!(
        out,
        "{:>7} {:>12} {:>12} {:>12} {:>12}",
        "leaves", "build", "proof bytes", "verify", "nodes"
    )
    .unwrap();
    for n in [1usize, 16, 64, 256, 1024, 4096] {
        let items: Vec<(Label, Vec<u8>)> =
            (0..n as u32).map(|i| (Label::Var(i), vec![i as u8; 32])).collect();
        let t_build = median_secs(3, || {
            std::hint::black_box(SparseMht::build(&items, [7; 32]));
        });
        let tree = SparseMht::build(&items, [7; 32]);
        let proof = tree.prove(&Label::Var(0)).unwrap();
        let root = tree.root();
        let t_verify = median_secs(11, || {
            assert!(proof.verify(&root));
        });
        writeln!(
            out,
            "{:>7} {:>12} {:>12} {:>12} {:>12}",
            n,
            fmt_time(t_build),
            proof.byte_size(),
            fmt_time(t_verify),
            tree.node_count()
        )
        .unwrap();
    }
    writeln!(out, "(expected: build ~linear; proof size and verify time ~flat —").unwrap();
    writeln!(out, " bounded by the label bit-length, not the leaf count)").unwrap();
    out
}

/// E7 — §2.3 Confidentiality: counterfactual audit summary.
pub fn e7_confidentiality() -> String {
    use pvr_core::confidential::counterfactual_min_audit;
    let mut out = String::new();
    writeln!(out, "E7: counterfactual indistinguishability audit (§2.3)").unwrap();
    writeln!(
        out,
        "{:<28} {:<14} {:>10} {:>14}",
        "worlds (lens A vs B)", "authorized", "leaks", "raw-differs"
    )
    .unwrap();
    let cases: Vec<(&[usize], &[usize], Vec<Asn>)> = vec![
        (&[2, 3], &[2, 5], vec![Asn(2)]),
        (&[2, 9, 12, 5], &[2, 3, 4, 16], vec![Asn(2), Asn(3), Asn(4)]),
        (&[2, 4, 6], &[2, 4, 9], vec![Asn(3)]),
        (&[3, 3], &[3, 3], vec![]),
    ];
    for (a, b, authorized) in cases {
        let outcome = counterfactual_min_audit(a, b, 7);
        let leaks =
            outcome.content_changed.iter().filter(|(n, &c)| c && !authorized.contains(n)).count();
        let raw = outcome.raw_changed.values().filter(|&&c| c).count();
        writeln!(
            out,
            "{:<28} {:<14} {:>10} {:>14}",
            format!("{a:?} vs {b:?}"),
            format!("{authorized:?}"),
            leaks,
            raw
        )
        .unwrap();
    }
    writeln!(out, "(expected: leaks column all zeros — only opaque commitment").unwrap();
    writeln!(out, " material may differ, never opened content)").unwrap();
    out
}

/// E8 — §1/§3.8: PVR on an Internet-like topology: substrate overhead
/// with and without signatures, plus per-decision PVR costs.
pub fn e8_internet_overhead() -> String {
    let mut out = String::new();
    writeln!(out, "E8: Internet-like topology overhead (§3.8)").unwrap();
    let params = InternetParams {
        tier1: 3,
        tier2: 8,
        stubs: 20,
        t2_peering_prob: 0.25,
        ..InternetParams::default()
    };
    let topology = internet_like(params, 11);
    writeln!(out, "topology: {} ASes, {} edges", topology.as_count(), topology.edge_count())
        .unwrap();
    writeln!(
        out,
        "{:<10} {:>10} {:>10} {:>14} {:>14}",
        "mode", "events", "updates", "bytes", "bytes/update"
    )
    .unwrap();
    let mut plain_per_update = 0f64;
    for signed in [false, true] {
        let mut net = topology.instantiate(InstantiateOptions {
            seed: 11,
            signed,
            key_bits: 512,
            ..Default::default()
        });
        net.converge(RunLimits::none());
        let stats = net.sim.stats();
        let per_update = stats.bytes_sent as f64 / stats.delivered.max(1) as f64;
        if !signed {
            plain_per_update = per_update;
        }
        writeln!(
            out,
            "{:<10} {:>10} {:>10} {:>14} {:>14.0}",
            if signed { "S-BGP" } else { "plain" },
            stats.events,
            stats.delivered,
            stats.bytes_sent,
            per_update
        )
        .unwrap();
        if signed {
            writeln!(
                out,
                "attestation overhead: {:.1}× bytes per update",
                per_update / plain_per_update
            )
            .unwrap();
        }
    }

    // Per-decision PVR round cost at k = 4 providers.
    let bed = Figure1Bed::build(&[2, 3, 4, 5], 11);
    let report = run_min_round(&bed, None);
    let total: usize = report.transcripts.values().map(|t| t.total_bytes()).sum();
    writeln!(out, "PVR round (k=4): {} bytes of roots+gossip+disclosures per decision", total)
        .unwrap();
    out
}

/// E9 — §3.2: ring-signature link-state variant scaling.
pub fn e9_ring_scaling() -> String {
    let mut out = String::new();
    writeln!(out, "E9: ring signatures for the link-state variant (§3.2)").unwrap();
    writeln!(out, "{:>6} {:>12} {:>12} {:>12}", "ring", "sign", "verify", "sig bytes").unwrap();
    let mut rng = HmacDrbg::from_u64_labeled(9, "e9-ring");
    let keys: Vec<RsaPrivateKey> =
        (0..16).map(|_| RsaPrivateKey::generate(512, &mut rng)).collect();
    for k in [2usize, 4, 8, 16] {
        let ring: Vec<_> = keys[..k].iter().map(|x| x.public().clone()).collect();
        let t_sign = median_secs(3, || {
            std::hint::black_box(
                ring_sign(b"a route exists", &ring, 0, &keys[0], &mut rng).unwrap(),
            );
        });
        let sig = ring_sign(b"a route exists", &ring, 0, &keys[0], &mut rng).unwrap();
        let t_verify = median_secs(3, || {
            ring_verify(b"a route exists", &ring, &sig).unwrap();
        });
        let bytes = sig.v.len() * (1 + sig.xs.len());
        writeln!(out, "{:>6} {:>12} {:>12} {:>12}", k, fmt_time(t_sign), fmt_time(t_verify), bytes)
            .unwrap();
    }
    writeln!(out, "(expected: sign ≈ 1 private op + k-1 public ops; verify k public ops;").unwrap();
    writeln!(out, " size linear in k)").unwrap();
    out
}

/// E10 — §2: the promise ladder; static implementation and
/// minimum-access checks for every promise type.
pub fn e10_promise_ladder() -> String {
    let mut out = String::new();
    writeln!(out, "E10: promise ladder static checks (§2)").unwrap();
    writeln!(
        out,
        "{:<34} {:>12} {:>12} {:>12}",
        "promise", "fig1 graph", "fig2 graph", "verifiable"
    )
    .unwrap();
    let bed1 = Figure1Bed::build(&[2, 3, 4], 10);
    let bed2 = Figure1Bed::build_figure2(&[2, 3, 4], 10);
    let everyone: Vec<Asn> = bed1.ns.iter().copied().chain([bed1.b]).collect();
    let alpha1 = AccessPolicy::paper_example(&bed1.graph, &everyone);
    let subset: BTreeSet<Asn> = bed1.ns.iter().copied().collect();
    let promises: Vec<(&str, Promise)> = vec![
        ("1: shortest overall", Promise::ShortestOverall),
        ("2: shortest of subset", Promise::ShortestOfSubset { subset: subset.clone() }),
        ("3: within ε=2 of best", Promise::WithinHopsOfBest { epsilon: 2 }),
        ("4: no longer than others", Promise::NoLongerThanOthers),
        ("exists (§3.2)", Promise::Existential { subset: subset.clone() }),
        (
            "fig2: prefer unless shorter",
            Promise::PreferUnlessShorter {
                fallback: bed1.ns[0],
                preferred: bed1.ns[1..].iter().copied().collect(),
            },
        ),
    ];
    for (name, p) in promises {
        writeln!(
            out,
            "{:<34} {:>12} {:>12} {:>12}",
            name,
            p.implemented_by(&bed1.graph, bed1.b),
            p.implemented_by(&bed2.graph, bed2.b),
            p.verifiable_under(&bed1.graph, &alpha1, bed1.b)
        )
        .unwrap();
    }
    writeln!(out, "(expected: the min graph implements 1,2,3,4,∃ — not fig2's promise;").unwrap();
    writeln!(out, " the fig2 graph implements only its own promise)").unwrap();
    out
}

/// E11 — ablations of the repo's design choices: the naive per-route
/// commitment strawman vs the paper's bit vector, and blinded vs
/// unblinded MHT siblings.
pub fn e11_ablations() -> String {
    use pvr_core::compare_naive_vs_paper;
    use pvr_mht::{unblinded_phantom, SiblingBlinding, SparseMht};

    let mut out = String::new();
    writeln!(out, "E11: design-choice ablations").unwrap();

    // Ablation 1: naive per-route commitments leak the length multiset.
    writeln!(out, "\n-- bit vector (paper) vs per-route commitments (naive) --").unwrap();
    writeln!(
        out,
        "{:<8} {:>22} {:>14} {:>14}",
        "k", "naive leak (lengths)", "naive bytes", "paper bytes"
    )
    .unwrap();
    for lens in [vec![2usize, 5], vec![2, 3, 5, 7], vec![2, 3, 4, 5, 6, 7, 8, 9]] {
        let bed = Figure1Bed::build(&lens, 21);
        let report = compare_naive_vs_paper(&bed);
        let leaked: Vec<u32> = report.naive_leak.values().copied().collect();
        writeln!(
            out,
            "{:<8} {:>22} {:>14} {:>14}",
            lens.len(),
            format!("{leaked:?}"),
            report.naive_bytes,
            report.paper_bytes
        )
        .unwrap();
    }
    writeln!(out, "(paper protocol reveals only the minimum — already visible via the route)")
        .unwrap();

    // Ablation 2: blinded vs unblinded phantom siblings.
    writeln!(out, "\n-- blinded (paper) vs unblinded phantom siblings --").unwrap();
    let xs = vec![(Label::Var(0), b"leaf".to_vec())];
    let path = Label::Var(0).to_bits();
    let mut detected = [0usize; 2];
    for (i, mode) in [SiblingBlinding::Unblinded, SiblingBlinding::Blinded].into_iter().enumerate()
    {
        let tree = SparseMht::build_with(&xs, [9; 32], mode);
        let proof = tree.prove(&Label::Var(0)).unwrap();
        for (j, sib) in proof.siblings.iter().enumerate() {
            let depth = path.len() - 1 - j;
            let sib_path = path.prefix(depth).push(!path.bit(depth));
            if *sib == unblinded_phantom(&sib_path) {
                detected[i] += 1;
            }
        }
    }
    writeln!(
        out,
        "unblinded: attacker identifies {}/{} siblings as empty subtrees",
        detected[0],
        path.len()
    )
    .unwrap();
    writeln!(
        out,
        "blinded:   attacker identifies {}/{} (expected 0 — absence is hidden)",
        detected[1],
        path.len()
    )
    .unwrap();

    // Ablation 3: MRAI batching interacts with burst signing (E5).
    writeln!(out, "\n-- MRAI churn damping (substrate, feeds §3.8 batching) --").unwrap();
    {
        use pvr_bgp::{workload, LocalEvent, Topology};
        use pvr_netsim::SimDuration;
        let build = || {
            let mut t = Topology::new();
            let origin = Asn(1);
            let provider = Asn(2);
            let prefix = pvr_bgp::Prefix::parse("10.0.0.0/8").unwrap();
            t.provider_customer(provider, origin);
            t.originate(origin, prefix);
            workload::flap(
                &mut t,
                origin,
                prefix,
                SimDuration::from_millis(50),
                SimDuration::from_millis(1),
                20,
            );
            let _ = LocalEvent::Announce(prefix);
            (t, provider)
        };
        for (label, mrai) in
            [("no MRAI", None), ("MRAI 100 ms", Some(SimDuration::from_millis(100)))]
        {
            let (t, provider) = build();
            let mut net = t.instantiate(InstantiateOptions { mrai, ..Default::default() });
            net.converge(RunLimits::none());
            writeln!(
                out,
                "{:<12} updates delivered to provider: {}",
                label,
                net.router(provider).stats().updates_rx
            )
            .unwrap();
        }
    }
    out
}

/// E12 — adversarial campaigns: the attack catalog (hijacks, leaks,
/// forged chains, bogus promises, Byzantine protocol behaviors) swept
/// over attacker/victim placements on an Internet-like topology, under
/// Plain / Signed / Pvr security, scored for impact and detection, and
/// executed on the deterministic parallel sweep.
pub fn e12_attack_campaigns() -> String {
    use pvr_attack::{Campaign, CampaignConfig, SecurityMode};

    let mut out = String::new();
    writeln!(out, "E12: adversarial campaign matrix (attack × security mode)").unwrap();
    let config = CampaignConfig::quick(12);
    let campaign = Campaign::new(config.clone());
    let p = campaign.placements()[0];
    writeln!(
        out,
        "topology: {:?} seed {}; attacker {} vs victim {} ({}); {} cells",
        config.internet,
        config.seed,
        p.attacker,
        p.victim,
        p.victim_prefix,
        campaign.cell_count()
    )
    .unwrap();
    let report = campaign.run();
    out.push_str(&report.render_matrix());

    // Determinism of the parallel executor, demonstrated on a cheap
    // Plain-only sub-campaign (no keygen): one thread vs many.
    let mini = CampaignConfig {
        modes: vec![SecurityMode::Plain],
        parallelism: 1,
        ..CampaignConfig::quick(12)
    };
    let serial = Campaign::new(mini.clone()).run();
    let parallel = Campaign::new(CampaignConfig { parallelism: 8, ..mini }).run();
    writeln!(
        out,
        "parallel sweep == single-threaded sweep (same seed): {}",
        serial == parallel && serial.render_matrix() == parallel.render_matrix()
    )
    .unwrap();
    writeln!(out, "(expected: plain column poisons on every hijack/leak/attestation row").unwrap();
    writeln!(out, " with zero detection; signed blocks hijacks and chain forgeries via").unwrap();
    writeln!(out, " ROV+attestations but misses the leak and every promise/protocol row;").unwrap();
    writeln!(out, " pvr detects all of them; sweep output independent of thread count)").unwrap();
    out
}

/// E13 — the fast-crypto path: Montgomery REDC with windowed
/// exponentiation vs the schoolbook baseline (`modpow`/`sign`/`verify`
/// at RSA-1024/2048), plus the network-wide attestation verification
/// cache (chain verify cold vs warm, and per-`SecurityMode` totals on
/// a converged Internet-like topology). Only the timings vary between
/// runs; every count, hit rate, and verdict is deterministic.
pub fn e13_crypto_perf() -> String {
    use pvr_attack::metrics::verification_stats;
    use pvr_attack::SecurityMode;
    use pvr_bgp::{demo_chain, InstantiateOptions, VerifyCache};
    use pvr_crypto::Ubig;
    use std::hint::black_box;

    let mut out = String::new();
    writeln!(out, "E13: fast-crypto path (Montgomery REDC + windowed exp + verify cache)").unwrap();

    // -- raw crypto: schoolbook vs Montgomery -------------------------
    writeln!(
        out,
        "{:<20} {:>6} {:>12} {:>12} {:>9}",
        "op", "bits", "schoolbook", "montgomery", "speedup"
    )
    .unwrap();
    let msg = b"e13: update-sized message";
    for bits in [1024usize, 2048] {
        let mut rng = HmacDrbg::from_u64_labeled(13, "e13-keys");
        let key = RsaPrivateKey::generate(bits, &mut rng);
        // Full-width-exponent modpow: the core of CRT signing.
        let base = Ubig::random_below(key.public().n(), &mut rng);
        let exp = Ubig::random_bits(bits - 1, &mut rng);
        let n = key.public().n();
        let t_school = median_secs(3, || {
            black_box(base.modpow_schoolbook(&exp, n));
        });
        let t_fast = median_secs(3, || {
            black_box(base.modpow(&exp, n));
        });
        writeln!(
            out,
            "{:<20} {:>6} {:>12} {:>12} {:>8.1}x",
            "modpow (full exp)",
            bits,
            fmt_time(t_school),
            fmt_time(t_fast),
            t_school / t_fast
        )
        .unwrap();
        let t_school = median_secs(3, || {
            black_box(key.sign_schoolbook(msg));
        });
        let t_fast = median_secs(5, || {
            black_box(key.sign(msg));
        });
        writeln!(
            out,
            "{:<20} {:>6} {:>12} {:>12} {:>8.1}x",
            "sign",
            bits,
            fmt_time(t_school),
            fmt_time(t_fast),
            t_school / t_fast
        )
        .unwrap();
        let sig = key.sign(msg);
        let t_school = median_secs(11, || {
            key.public().verify_schoolbook(msg, &sig).unwrap();
        });
        let t_fast = median_secs(11, || {
            key.public().verify(msg, &sig).unwrap();
        });
        writeln!(
            out,
            "{:<20} {:>6} {:>12} {:>12} {:>8.1}x",
            "verify",
            bits,
            fmt_time(t_school),
            fmt_time(t_fast),
            t_school / t_fast
        )
        .unwrap();
    }

    // -- chain verify: cold vs warm shared cache ----------------------
    let hops = 5u32;
    let (chain, keys, receiver) = demo_chain(hops, 1024, b"e13-chain");
    assert!(chain.verify(receiver, &keys).is_ok());
    let t_cold = median_secs(5, || {
        let cache = VerifyCache::new();
        chain.verify_cached(receiver, &keys, Some(&cache)).unwrap();
    });
    let warm = VerifyCache::new();
    chain.verify_cached(receiver, &keys, Some(&warm)).unwrap();
    let t_warm = median_secs(11, || {
        chain.verify_cached(receiver, &keys, Some(&warm)).unwrap();
    });
    writeln!(
        out,
        "chain verify ({hops} hops, RSA-1024): cold {} -> warm {} ({:.0}x; {} of {} checks cached)",
        fmt_time(t_cold),
        fmt_time(t_warm),
        t_cold / t_warm,
        warm.hits(),
        warm.calls()
    )
    .unwrap();

    // -- network-wide totals per security mode ------------------------
    let params = InternetParams {
        tier1: 2,
        tier2: 4,
        stubs: 6,
        t2_peering_prob: 0.3,
        ..InternetParams::default()
    };
    let topology = internet_like(params, 13);
    writeln!(
        out,
        "converged internet-like topology ({} ASes, {} edges), RSA-512:",
        topology.as_count(),
        topology.edge_count()
    )
    .unwrap();
    writeln!(
        out,
        "{:<8} {:>13} {:>11} {:>9} {:>13}",
        "mode", "verify calls", "cache hits", "hit rate", "verifies/sec"
    )
    .unwrap();
    // The Signed and Pvr substrates are identical on the import path
    // (Pvr adds post-hoc audits, not import-time crypto), so each
    // distinct substrate converges once and the pvr row reuses the
    // signed measurement.
    let mut measured: Vec<(SecurityMode, u64, u64, f64)> = Vec::new();
    for (mode, signed) in [(SecurityMode::Plain, false), (SecurityMode::Signed, true)] {
        let mut net = topology.instantiate(InstantiateOptions {
            seed: 13,
            signed,
            key_bits: 512,
            ..Default::default()
        });
        if signed {
            net.install_origin_table(std::sync::Arc::new(topology.origin_table()));
        }
        let t = Instant::now();
        net.converge(RunLimits::none());
        let wall = t.elapsed().as_secs_f64();
        let (calls, hits) = verification_stats(&net);
        measured.push((mode, calls, hits, wall));
    }
    let signed_row = measured[1];
    measured.push((SecurityMode::Pvr, signed_row.1, signed_row.2, signed_row.3));
    for (mode, calls, hits, wall) in measured {
        let (rate, per_sec) = if calls > 0 {
            (
                format!("{:.1}%", hits as f64 * 100.0 / calls as f64),
                format!("{:.0}", calls as f64 / wall.max(1e-9)),
            )
        } else {
            ("-".to_string(), "-".to_string())
        };
        writeln!(out, "{:<8} {:>13} {:>11} {:>9} {:>13}", mode.label(), calls, hits, rate, per_sec)
            .unwrap();
    }
    writeln!(out, "(expected: modpow/sign well past 3x — windowed REDC beats a division per")
        .unwrap();
    writeln!(out, " bit; verify bounded by the 17-bit public exponent; warm chain verify is")
        .unwrap();
    writeln!(out, " structural checks only; signed modes show a large, deterministic hit rate)")
        .unwrap();
    out
}

/// One measured cell of E14: a (scale, shard-count, security-mode)
/// convergence run.
#[derive(Clone, Debug)]
pub struct E14Cell {
    /// Requested AS-count scale.
    pub scale: usize,
    /// Security mode label (`plain` / `signed` / `pvr`).
    pub mode: &'static str,
    /// Shard count the run used (1 = the serial engine). Every
    /// deterministic field in this cell is identical across shard
    /// counts — the CI determinism gate diffs exactly that.
    pub shards: usize,
    /// Actual AS count of the generated topology.
    pub ases: usize,
    /// Relationship edges.
    pub edges: usize,
    /// Originated /24s.
    pub origins: usize,
    /// Convergence events processed (deterministic).
    pub events: u64,
    /// Wall-clock of the convergence run (timing field).
    pub wall_secs: f64,
    /// `events / wall_secs` (timing field).
    pub events_per_sec: f64,
    /// Network-wide Adj-RIB-In + Loc-RIB entries at quiescence — the
    /// peak, since a converging network only accumulates reachability
    /// (deterministic).
    pub peak_rib_entries: u64,
    /// Sum of payload wire sizes for all sent messages (deterministic).
    pub bytes_on_wire: u64,
    /// Decision runs resolved O(1) by the incremental path
    /// (deterministic).
    pub short_circuits: u64,
    /// Content hash (hex SHA-256) of the converged network-wide
    /// Loc-RIB, from the durability layer's COW snapshot trie.
    /// Deterministic and identical across shard counts — the CI
    /// crash-recovery gate diffs exactly this (deterministic).
    pub final_rib_sha256: String,
}

/// The topology a given E14 scale runs on. At the seed scale (≤56) this
/// is the stock [`InternetParams::default`] with every stub
/// originating; larger scales grow the tier-2 layer with the AS count
/// and cap originations at 256 so RIB growth measures propagation, not
/// workload size. Internet scale (>20 000 ASes) tightens the cap to 64:
/// RIB state grows with ASes × origins, and 80k × 256 would spend the
/// run's memory on workload rather than topology. Scales at or below
/// 20 000 are untouched, so the existing ladder's numbers are stable.
pub fn e14_params(ases: usize) -> InternetParams {
    if ases <= 56 {
        return InternetParams::default();
    }
    let tier1 = 8;
    // Clamped at 900: the generator's tier-2 ASN range (100..) must
    // stay clear of the stub range (1000..).
    let tier2 = (ases / 40).clamp(12, 900);
    InternetParams {
        tier1,
        tier2,
        stubs: ases - tier1 - tier2,
        t2_peering_prob: 0.2,
        originating_stubs: if ases > 20_000 { 64 } else { 256 },
        ..InternetParams::default()
    }
}

/// A converged network on either engine — the dispatch E14 uses so one
/// measurement loop covers serial (`shards == 1`) and sharded runs.
enum E14Net {
    Serial(pvr_bgp::BgpNetwork),
    Sharded(pvr_bgp::ShardedBgpNetwork),
}

impl E14Net {
    fn build(topology: &pvr_bgp::Topology, options: InstantiateOptions, shards: usize) -> E14Net {
        if shards <= 1 {
            E14Net::Serial(topology.instantiate(options))
        } else {
            E14Net::Sharded(topology.instantiate_sharded(options, shards))
        }
    }

    fn install_origin_table(&mut self, table: std::sync::Arc<pvr_bgp::OriginTable>) {
        match self {
            E14Net::Serial(n) => n.install_origin_table(table),
            E14Net::Sharded(n) => n.install_origin_table(table),
        }
    }

    fn install_fault_plan(&mut self, plan: pvr_netsim::FaultPlan) {
        match self {
            E14Net::Serial(n) => n.install_fault_plan(plan),
            E14Net::Sharded(n) => n.install_fault_plan(plan),
        }
    }

    fn node_of(&self, asn: Asn) -> pvr_netsim::NodeId {
        match self {
            E14Net::Serial(n) => n.node_of(asn),
            E14Net::Sharded(n) => n.node_of(asn),
        }
    }

    fn router_totals(&self) -> pvr_bgp::RouterStats {
        match self {
            E14Net::Serial(n) => n.router_totals(),
            E14Net::Sharded(n) => n.router_totals(),
        }
    }

    fn converge(&mut self, limits: RunLimits) -> pvr_netsim::StopReason {
        match self {
            E14Net::Serial(n) => n.converge(limits),
            E14Net::Sharded(n) => n.converge(limits),
        }
    }

    fn sim_stats(&self) -> pvr_netsim::SimStats {
        match self {
            E14Net::Serial(n) => n.sim.stats().clone(),
            E14Net::Sharded(n) => n.sim.stats().clone(),
        }
    }

    fn ases(&self) -> Vec<Asn> {
        match self {
            E14Net::Serial(n) => n.ases().collect(),
            E14Net::Sharded(n) => n.ases().collect(),
        }
    }

    fn router(&self, asn: Asn) -> &pvr_bgp::BgpRouter {
        match self {
            E14Net::Serial(n) => n.router(asn),
            E14Net::Sharded(n) => n.router(asn),
        }
    }

    fn metrics_snapshot(&self, security_mode: &str) -> pvr_obs::Snapshot {
        match self {
            E14Net::Serial(n) => n.metrics_snapshot(security_mode),
            E14Net::Sharded(n) => n.metrics_snapshot(security_mode),
        }
    }

    fn convergence_timeline(&self) -> Option<pvr_obs::ConvergenceTimeline> {
        match self {
            E14Net::Serial(n) => n.convergence_timeline(),
            E14Net::Sharded(n) => n.convergence_timeline(),
        }
    }

    fn trace_jsonl(&self) -> String {
        match self {
            E14Net::Serial(n) => n.trace_jsonl(),
            E14Net::Sharded(n) => n.trace_jsonl(),
        }
    }

    fn now_us(&self) -> u64 {
        match self {
            E14Net::Serial(n) => n.sim.now().as_micros(),
            E14Net::Sharded(n) => n.sim.now().as_micros(),
        }
    }

    fn private_verifier(&self) -> Option<&std::sync::Arc<pvr_bgp::PrivateVerifier>> {
        match self {
            E14Net::Serial(n) => n.private_verifier(),
            E14Net::Sharded(n) => n.private_verifier(),
        }
    }

    fn rib_fingerprint_hex(&self) -> String {
        match self {
            E14Net::Serial(n) => n.rib_fingerprint().to_hex(),
            E14Net::Sharded(n) => n.rib_fingerprint().to_hex(),
        }
    }

    fn snapshot_times(&self) -> Vec<pvr_netsim::SimTime> {
        match self {
            E14Net::Serial(n) => n.snapshot_times(),
            E14Net::Sharded(n) => n.snapshot_times(),
        }
    }

    fn checkpoint(&mut self, path: &std::path::Path) -> Result<u64, pvr_bgp::CheckpointError> {
        match self {
            E14Net::Serial(n) => n.checkpoint(path),
            E14Net::Sharded(n) => n.checkpoint(path),
        }
    }

    fn converge_checkpointed(
        &mut self,
        limits: RunLimits,
        every: SimDuration,
        dir: &std::path::Path,
    ) -> Result<(pvr_netsim::StopReason, std::path::PathBuf), pvr_bgp::CheckpointError> {
        match self {
            E14Net::Serial(n) => n.converge_checkpointed(limits, every, dir),
            E14Net::Sharded(n) => n.converge_checkpointed(limits, every, dir),
        }
    }

    /// Restores from a checkpoint file onto the engine the file was
    /// written by (`shards` picks the variant, matching `build`).
    fn restore(shards: usize, path: &std::path::Path) -> Result<E14Net, pvr_bgp::CheckpointError> {
        if shards <= 1 {
            pvr_bgp::BgpNetwork::restore(path).map(E14Net::Serial)
        } else {
            pvr_bgp::ShardedBgpNetwork::restore(path).map(E14Net::Sharded)
        }
    }
}

/// E14 — internet-scale route propagation: converged `internet_like`
/// runs at a ladder of AS counts (56 → 1 000 → `max_scale`) under
/// `Plain`/`Signed`/`Pvr`, at each requested shard count (1 = the
/// serial engine, >1 = the sharded engine), reporting topology size,
/// convergence events, events/sec, peak RIB entries, bytes on the wire,
/// and the incremental decision path's short-circuit count. Everything
/// except the timing columns is deterministic *and identical across
/// shard counts* — the property the CI determinism gate enforces. The
/// `Signed` and `Pvr` substrates are identical on the import path (PVR
/// adds post-hoc audits, not import-time crypto), so each (scale,
/// shards) converges two substrates and the pvr row reuses the signed
/// measurement, exactly as E13 does.
pub fn e14_scale(max_scale: usize, shard_counts: &[usize]) -> (String, Vec<E14Cell>) {
    use pvr_bgp::BgpRouter;

    let mut scales: Vec<usize> = [56usize, 1000, max_scale]
        .into_iter()
        .filter(|&s| s <= max_scale)
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect();
    scales.sort_unstable();
    let mut shard_counts: Vec<usize> =
        if shard_counts.is_empty() { vec![1] } else { shard_counts.to_vec() };
    shard_counts.sort_unstable();
    shard_counts.dedup();

    let mut out = String::new();
    let mut cells = Vec::new();
    writeln!(out, "E14: internet-scale route propagation (max scale {max_scale})").unwrap();
    writeln!(out, "(scales >56 originate one /24 from each of the first min(stubs,256) stubs,")
        .unwrap();
    writeln!(out, " capped at 64 past 20k ASes; signed rows use RSA-512 attestations + ROV;")
        .unwrap();
    writeln!(out, " pvr shares the signed substrate — its import path is identical, audits")
        .unwrap();
    writeln!(out, " are post-hoc; shards=1 is the serial engine, >1 the sharded engine)").unwrap();
    writeln!(
        out,
        "{:>6} {:<7} {:>6} {:>6} {:>7} {:>8} {:>10} {:>10} {:>10} {:>14} {:>11} {:>12}",
        "scale",
        "mode",
        "shards",
        "ases",
        "edges",
        "origins",
        "events",
        "events/s",
        "peak RIB",
        "bytes",
        "O(1) skips",
        "rib sha256"
    )
    .unwrap();
    // (scale, shards) → signed wall-clock, for the speedup footer.
    let mut signed_walls: Vec<(usize, usize, f64)> = Vec::new();
    for &scale in &scales {
        let params = e14_params(scale);
        let topology = internet_like(params, 14);
        let origins: usize = topology.ases().map(|a| topology.originated_by(a).len()).sum();
        for &shards in &shard_counts {
            let mut signed_cell: Option<E14Cell> = None;
            for (mode, signed) in [("plain", false), ("signed", true)] {
                let mut net = E14Net::build(
                    &topology,
                    InstantiateOptions { seed: 14, signed, key_bits: 512, ..Default::default() },
                    shards,
                );
                if signed {
                    net.install_origin_table(std::sync::Arc::new(topology.origin_table()));
                }
                let t = Instant::now();
                let stop = net.converge(RunLimits::none());
                let wall = t.elapsed().as_secs_f64();
                assert_eq!(
                    stop,
                    pvr_netsim::StopReason::Quiescent,
                    "e14 scale {scale} {mode} shards {shards}"
                );
                let stats = net.sim_stats();
                let mut rib = 0u64;
                let mut shorts = 0u64;
                for asn in net.ases() {
                    let r: &BgpRouter = net.router(asn);
                    let (adj_in, loc) = r.rib_entry_counts();
                    rib += (adj_in + loc) as u64;
                    shorts += r.stats().reselect_short_circuits;
                }
                let cell = E14Cell {
                    scale,
                    mode,
                    shards,
                    ases: topology.as_count(),
                    edges: topology.edge_count(),
                    origins,
                    events: stats.events,
                    wall_secs: wall,
                    events_per_sec: stats.events as f64 / wall.max(1e-9),
                    peak_rib_entries: rib,
                    bytes_on_wire: stats.bytes_sent,
                    short_circuits: shorts,
                    final_rib_sha256: net.rib_fingerprint_hex(),
                };
                write_e14_row(&mut out, &cell);
                if signed {
                    signed_walls.push((scale, shards, wall));
                    signed_cell = Some(cell.clone());
                }
                cells.push(cell);
            }
            let pvr = E14Cell { mode: "pvr", ..signed_cell.expect("signed cell measured") };
            write_e14_row(&mut out, &pvr);
            cells.push(pvr);
        }
    }
    writeln!(out, "(expected: events/peak-RIB/bytes identical across modes and shard counts")
        .unwrap();
    writeln!(out, " at each scale — signatures change bytes only, sharding changes timing")
        .unwrap();
    writeln!(out, " only; plain events/s far above signed, which is RSA-bound — see E13;").unwrap();
    writeln!(out, " short-circuits cover a third of decision runs)").unwrap();
    // Speedup footer: only rendered when several shard counts ran in
    // this invocation (the CI determinism gate runs one count per
    // invocation, so its normalized output never contains this block).
    if shard_counts.len() > 1 {
        for &scale in &scales {
            let serial =
                signed_walls.iter().find(|&&(s, sh, _)| s == scale && sh == shard_counts[0]);
            if let Some(&(_, base_shards, base_wall)) = serial {
                for &(s, sh, wall) in &signed_walls {
                    if s == scale && sh != base_shards {
                        writeln!(
                            out,
                            "speedup scale {s} signed: {sh} shards vs {base_shards}: {:.2}x",
                            base_wall / wall.max(1e-9)
                        )
                        .unwrap();
                    }
                }
            }
        }
    }
    (out, cells)
}

/// Renders one E14 table row (the RIB hash column is truncated for
/// width; the JSON record carries the full 64 hex digits).
fn write_e14_row(out: &mut String, c: &E14Cell) {
    writeln!(
        out,
        "{:>6} {:<7} {:>6} {:>6} {:>7} {:>8} {:>10} {:>10.0} {:>10} {:>14} {:>11} {:>12}",
        c.scale,
        c.mode,
        c.shards,
        c.ases,
        c.edges,
        c.origins,
        c.events,
        c.events_per_sec,
        c.peak_rib_entries,
        c.bytes_on_wire,
        c.short_circuits,
        &c.final_rib_sha256[..12]
    )
    .unwrap();
}

/// E15's timeline window width, sim-time milliseconds: half the
/// default 10 ms link latency, so propagation rounds land in distinct
/// windows.
const E15_WINDOW_MS: u64 = 5;
/// E15's per-router event-journal ring capacity (most recent events).
const E15_JOURNAL_CAP: usize = 64;

/// Everything E15 produces beyond the human table: the merged metrics
/// snapshot in both expositions, the signed-run convergence timeline
/// as JSON, and the forensic JSONL trace. The harness embeds the JSON
/// pieces in the `pvr-bench-v1` document and writes the Prometheus and
/// trace artifacts behind `--metrics-out`/`--trace-out`.
#[derive(Clone, Debug)]
pub struct E15Artifacts {
    /// pvr-obs compact-JSON exposition (a JSON array) of the merged
    /// snapshot. Deterministic and engine-independent modulo the
    /// `verify_cache_hit*` series.
    pub metrics_json: String,
    /// The signed-substrate convergence timeline at the largest scale,
    /// as a JSON array of windows (`verify_cache_hits` is the
    /// engine-local field).
    pub timeline_json: String,
    /// Prometheus text exposition of the same snapshot.
    pub prometheus: String,
    /// Per-router event journals merged into one JSONL trace.
    /// Byte-identical across engines: journals record verify *calls*,
    /// never cache hits.
    pub trace_jsonl: String,
}

/// E15 — the observability layer end-to-end: converges the
/// `internet_like` ladder (56 → `max_scale` ASes) under
/// `plain`/`signed` with the telemetry layer on (`pvr` shares the
/// signed substrate, as in E13/E14), prints per-run telemetry
/// summaries and the largest scale's convergence-timeline tables, runs
/// the quick attack campaign to populate the per-strategy
/// detection-latency histograms, and returns the merged artifacts.
/// Every printed number is sim-time-derived and deterministic; across
/// shard counts everything is identical except the verify-cache hit
/// columns/series (the workspace-wide carve-out).
pub fn e15_observability(max_scale: usize, shard_counts: &[usize]) -> (String, E15Artifacts) {
    use pvr_attack::{Campaign, CampaignConfig};
    use pvr_netsim::SimDuration;

    let scales: Vec<usize> = [56usize, max_scale]
        .into_iter()
        .filter(|&s| s <= max_scale)
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect();
    let mut shard_counts: Vec<usize> =
        if shard_counts.is_empty() { vec![1] } else { shard_counts.to_vec() };
    shard_counts.sort_unstable();
    shard_counts.dedup();
    let largest = *scales.last().expect("at least one scale");
    let first_shards = shard_counts[0];

    let mut out = String::new();
    writeln!(out, "E15: deterministic telemetry — timelines and metrics (max scale {max_scale})")
        .unwrap();
    writeln!(out, "(every timestamp is simulator virtual time, {E15_WINDOW_MS} ms windows; the")
        .unwrap();
    writeln!(out, " verify-cache hit columns/series are the engine-local carve-out, all other")
        .unwrap();
    writeln!(out, " telemetry is identical at every shard count; pvr shares the signed").unwrap();
    writeln!(out, " substrate — import-path telemetry is the signed run's)").unwrap();
    writeln!(
        out,
        "{:>6} {:<7} {:>6} {:>8} {:>10} {:>10} {:>10} {:>12}",
        "scale", "mode", "shards", "windows", "events", "rib-churn", "verifies", "trace-lines"
    )
    .unwrap();

    let mut combined = pvr_obs::Snapshot::default();
    let mut sel_timeline: Option<pvr_obs::ConvergenceTimeline> = None;
    let mut sel_trace = String::new();
    let mut timeline_tables: Vec<(&'static str, String)> = Vec::new();
    // (scale, signed-run snapshot/timeline at the base shard count) for
    // the cross-engine footer.
    let mut base_telemetry: Vec<(usize, pvr_obs::Snapshot, pvr_obs::ConvergenceTimeline)> =
        Vec::new();
    let mut engine_checks: Vec<String> = Vec::new();
    let hit_series = |name: &str| name.contains("verify_cache_hit");
    for &scale in &scales {
        let params = e14_params(scale);
        let topology = internet_like(params, 14);
        for &shards in &shard_counts {
            for (mode, signed) in [("plain", false), ("signed", true)] {
                let mut net = E14Net::build(
                    &topology,
                    InstantiateOptions {
                        seed: 14,
                        signed,
                        key_bits: 512,
                        timeline_window: Some(SimDuration::from_millis(E15_WINDOW_MS)),
                        journal_capacity: E15_JOURNAL_CAP,
                        ..Default::default()
                    },
                    shards,
                );
                if signed {
                    net.install_origin_table(std::sync::Arc::new(topology.origin_table()));
                }
                let stop = net.converge(RunLimits::none());
                assert_eq!(
                    stop,
                    pvr_netsim::StopReason::Quiescent,
                    "e15 scale {scale} {mode} shards {shards}"
                );
                let timeline = net.convergence_timeline().expect("timeline enabled");
                let snap = net.metrics_snapshot(mode);
                let trace = net.trace_jsonl();
                let events: u64 = timeline.windows.iter().map(|w| w.events).sum();
                let churn: u64 = timeline.windows.iter().map(|w| w.rib_churn).sum();
                let verifies: u64 = timeline.windows.iter().map(|w| w.verify_calls).sum();
                writeln!(
                    out,
                    "{:>6} {:<7} {:>6} {:>8} {:>10} {:>10} {:>10} {:>12}",
                    scale,
                    mode,
                    shards,
                    timeline.windows.len(),
                    events,
                    churn,
                    verifies,
                    trace.lines().count()
                )
                .unwrap();
                if signed {
                    if shards == first_shards {
                        base_telemetry.push((scale, snap.clone(), timeline.clone()));
                    } else if let Some((_, base_snap, base_tl)) =
                        base_telemetry.iter().find(|(s, _, _)| *s == scale)
                    {
                        let same = snap.without(hit_series) == base_snap.without(hit_series)
                            && timeline.zero_cache_hits() == base_tl.zero_cache_hits();
                        engine_checks.push(format!(
                            "scale {scale} signed: shards {shards} telemetry == shards \
                             {first_shards} (modulo cache-hit carve-out): {same}"
                        ));
                    }
                }
                if scale == largest && shards == first_shards {
                    timeline_tables.push((mode, timeline.render_table()));
                    combined.merge(&snap);
                    if signed {
                        // The pvr row shares the signed substrate: same
                        // counters, re-labelled.
                        combined.merge(&net.metrics_snapshot("pvr"));
                        sel_timeline = Some(timeline);
                        sel_trace = trace;
                    }
                }
            }
        }
    }

    // Per-strategy detection latency, read straight off the campaign's
    // histogram export (sim-time microseconds).
    let report = Campaign::new(CampaignConfig::quick(15)).run();
    let mut detect_reg = pvr_obs::MetricsRegistry::new();
    report.export_detection_latency(&mut detect_reg);
    let detect_snap = detect_reg.snapshot();
    writeln!(out, "\nin-band detection latency (sim-time, from the seed-15 quick campaign):")
        .unwrap();
    for s in &detect_snap.series {
        if let pvr_obs::Value::Histogram(h) = &s.value {
            let labels: Vec<String> = s.labels.iter().map(|(k, v)| format!("{k}={v}")).collect();
            writeln!(
                out,
                "  {} {{{}}}: n={}, mean={} µs",
                s.name,
                labels.join(","),
                h.count(),
                h.sum() / h.count().max(1)
            )
            .unwrap();
        }
    }
    combined.merge(&detect_snap);

    for (mode, table) in &timeline_tables {
        writeln!(out, "\nconvergence timeline — scale {largest}, {mode}, shards {first_shards}:")
            .unwrap();
        out.push_str(table);
    }
    for line in &engine_checks {
        writeln!(out, "{line}").unwrap();
    }
    writeln!(out, "(expected: signed runs verify on import so their verifies column is busy")
        .unwrap();
    writeln!(out, " while plain stays 0; churn concentrates in the first propagation rounds;")
        .unwrap();
    writeln!(out, " detection latency ≈ one 10 ms hop — the first honest neighbor rejects)")
        .unwrap();

    let timeline = sel_timeline.expect("signed run selected");
    let artifacts = E15Artifacts {
        metrics_json: pvr_obs::expo::to_json(&combined),
        timeline_json: timeline.to_json(),
        prometheus: pvr_obs::expo::to_prometheus(&combined),
        trace_jsonl: sel_trace,
    };
    (out, artifacts)
}

/// E16's timeline window width, sim-time milliseconds (E15's rationale:
/// half the 10 ms link latency, so propagation rounds land in distinct
/// windows).
const E16_WINDOW_MS: u64 = 5;
/// E16's churn spacing: the withdraw/announce halves of each cycle sit
/// `spacing/2` apart, which must comfortably exceed the MRAI interval —
/// otherwise both halves merge inside one batching window and no flap
/// ever crosses the wire.
const E16_CHURN_SPACING_MS: u64 = 30;
/// MRAI interval and jitter bound for the churn runs: jittered batch
/// timers are part of the failure-semantics surface under test, kept
/// well under half the churn spacing (see [`E16_CHURN_SPACING_MS`]).
const E16_MRAI_MS: u64 = 5;
const E16_MRAI_JITTER_MS: u64 = 1;
/// Churn concentrates on this many origination pairs so per-pair flap
/// rates outrun the dampening half-life and suppressions are non-zero
/// (the CI smoke asserts it).
const E16_CHURN_CANDIDATES: usize = 4;
/// When the churn schedule starts: initial convergence is long over.
const E16_CHURN_START_MS: u64 = 1_000;
/// E16 never runs its degradation probes past this many ASes (five
/// deadline-limited converges per invocation).
const E16_DEGRADATION_MAX_SCALE: usize = 1000;
/// E16's partial-deployment sweep scale cap (ten converges: a clean
/// baseline plus an attacked run per fraction).
const E16_DEPLOYMENT_MAX_SCALE: usize = 500;

/// E16's structured results — everything the harness embeds as the
/// `metrics` object of the `e16` JSON record. Every field is sim-time
/// derived and identical at every shard count (plain substrate, so not
/// even the verify-cache carve-out applies); the CI determinism gate
/// diffs the whole object.
#[derive(Clone, Debug)]
pub struct E16Metrics {
    /// AS count of the churn run.
    pub scale: usize,
    /// Churn events measured (withdraw + re-announce cycles).
    pub churn_events: usize,
    /// Median per-event route-settle time, sim-time µs.
    pub settle_p50_us: u64,
    /// 99th-percentile settle time, sim-time µs.
    pub settle_p99_us: u64,
    /// Total withdraw messages routers decided to send (pre-MRAI-merge:
    /// the fan-out of the withdraw storms).
    pub withdraws_sent: u64,
    /// `withdraws_sent / churn_events` — average storm fan-out.
    pub withdraw_fanout: f64,
    /// Announcements parked by RFC 2439-style dampening.
    pub dampening_suppressed: u64,
    /// Session-reset faults the plan applied.
    pub session_resets: u64,
    /// Link-down faults the plan applied.
    pub link_down: u64,
    /// Graceful degradation: (flap %, links flapping, % of baseline
    /// route selections still intact when probed mid-storm).
    pub degradation: Vec<(u32, usize, f64)>,
    /// Partial-deployment curve (see [`pvr_attack::deployment_sweep`]).
    pub deployment: Vec<pvr_attack::DeploymentPoint>,
}

/// The two endpoints of a topology edge, whichever flavor.
fn edge_endpoints(edge: &pvr_bgp::Edge) -> (Asn, Asn) {
    match *edge {
        pvr_bgp::Edge::ProviderCustomer { provider, customer } => (provider, customer),
        pvr_bgp::Edge::Peering(a, b) => (a, b),
        pvr_bgp::Edge::PartialTransit { provider, customer, .. } => (provider, customer),
    }
}

/// E16's seeded fault plan over real topology links: two flapping links
/// (down/up ramps through the churn window) and one session that resets
/// twice. Node ids come from `net`, but both engines assign them
/// identically, so the plan is engine-independent.
fn e16_fault_plan(topology: &pvr_bgp::Topology, net: &E14Net, fault_seed: u64) -> FaultPlan {
    use pvr_netsim::{Fault, SimTime};
    let edges = topology.edges();
    let mut rng = HmacDrbg::from_u64_labeled(fault_seed, "e16-faults");
    let mut picks: Vec<usize> = Vec::new();
    while picks.len() < 3.min(edges.len()) {
        let i = rng.index(edges.len());
        if !picks.contains(&i) {
            picks.push(i);
        }
    }
    let mut plan = FaultPlan::new();
    for (k, &i) in picks.iter().enumerate() {
        let (a, b) = edge_endpoints(&edges[i]);
        let (na, nb) = (net.node_of(a), net.node_of(b));
        if k < 2 {
            // Three down/up cycles, 100 ms apart: with a 200 ms
            // dampening half-life, per-prefix penalties on the flushed
            // neighbor ratchet past the suppress threshold on the
            // third teardown.
            plan.flap_link(
                na,
                nb,
                SimTime::ZERO + SimDuration::from_millis(1_200 + 150 * k as u64),
                SimDuration::from_millis(40),
                SimDuration::from_millis(100),
                3,
            );
        } else {
            plan.push(
                SimTime::ZERO + SimDuration::from_millis(1_500),
                Fault::SessionReset { a: na, b: nb },
            );
            plan.push(
                SimTime::ZERO + SimDuration::from_millis(1_900),
                Fault::SessionReset { a: na, b: nb },
            );
        }
    }
    plan
}

/// Per-event route-settle times against the churn schedule: for event
/// `k` at `t_k`, the time from `t_k` to the end of the last timeline
/// window carrying RIB churn before the next event starts. An event
/// whose re-announce is parked by dampening settles when the reuse
/// timer releases it — possibly inside a neighboring event's range,
/// the usual attribution blur of windowed telemetry. Events with no
/// churned window (fully suppressed) floor at one window width.
fn settle_times_us(
    schedule: &[(SimDuration, Asn, pvr_bgp::Prefix)],
    timeline: &pvr_obs::ConvergenceTimeline,
) -> Vec<u64> {
    let window = timeline.window_us;
    let mut out = Vec::with_capacity(schedule.len());
    for (k, &(at, _, _)) in schedule.iter().enumerate() {
        let t0 = at.as_micros();
        let t1 = schedule.get(k + 1).map_or(u64::MAX, |&(next, _, _)| next.as_micros());
        let settle = timeline
            .windows
            .iter()
            .filter(|w| w.rib_churn > 0 && w.start_us + window > t0 && w.start_us < t1)
            .map(|w| (w.start_us + window).saturating_sub(t0))
            .next_back()
            .unwrap_or(window);
        out.push(settle);
    }
    out
}

/// Nearest-rank percentile over an ascending-sorted slice.
fn percentile(sorted: &[u64], p: usize) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    sorted[(sorted.len() - 1) * p / 100]
}

/// E16's graceful-degradation table: at each flap fraction, a seeded
/// subset of links flaps continuously and the network is probed
/// mid-storm (sim-time deadline) against a never-faulted baseline's
/// route selections. Serial engine; the numbers are sim-time
/// deterministic, so they are identical however `--shards` is set.
fn e16_degradation(scale: usize, fault_seed: u64) -> Vec<(u32, usize, f64)> {
    use pvr_netsim::SimTime;
    let topology = internet_like(e14_params(scale), 16);
    let options = InstantiateOptions { seed: 16, ..Default::default() };

    let mut baseline_net = topology.instantiate(options);
    assert_eq!(
        baseline_net.converge(RunLimits::none()),
        pvr_netsim::StopReason::Quiescent,
        "e16 degradation baseline"
    );
    let mut baseline: Vec<(Asn, pvr_bgp::Prefix, Vec<Asn>)> = Vec::new();
    for asn in topology.ases() {
        let r = baseline_net.router(asn);
        for p in r.selected_prefixes() {
            let c = r.best_route(p).expect("selected prefix has a best route");
            baseline.push((asn, p, c.route.path.asns().to_vec()));
        }
    }
    drop(baseline_net);

    let mut rows = Vec::new();
    for flap_pct in [0u32, 5, 10, 20] {
        let n = (topology.edge_count() * flap_pct as usize).div_ceil(100);
        let mut rng =
            HmacDrbg::from_u64_labeled(fault_seed, &format!("e16-degradation {flap_pct}"));
        let mut idx: Vec<usize> = (0..topology.edge_count()).collect();
        // Partial Fisher–Yates: only the first `n` slots need settling.
        for i in 0..n {
            let j = i + rng.below((idx.len() - i) as u64) as usize;
            idx.swap(i, j);
        }
        let mut net = topology.instantiate(options);
        let mut plan = FaultPlan::new();
        for (i, &e) in idx[..n].iter().enumerate() {
            let (a, b) = edge_endpoints(&topology.edges()[e]);
            // Staggered so the storm has no global phase: eight cycles
            // covering 1.0–1.9 s, probed at 1.5 s — mid-storm.
            plan.flap_link(
                net.node_of(a),
                net.node_of(b),
                SimTime::ZERO + SimDuration::from_millis(1_000 + 25 * (i as u64 % 4)),
                SimDuration::from_millis(50),
                SimDuration::from_millis(100),
                8,
            );
        }
        net.install_fault_plan(plan);
        net.converge(RunLimits {
            deadline: Some(SimTime::ZERO + SimDuration::from_millis(1_500)),
            max_events: None,
        });
        let intact = baseline
            .iter()
            .filter(|(asn, p, path)| {
                net.router(*asn)
                    .best_route(*p)
                    .map(|c| c.route.path.asns() == path.as_slice())
                    .unwrap_or(false)
            })
            .count();
        rows.push((flap_pct, n, 100.0 * intact as f64 / baseline.len().max(1) as f64));
    }
    rows
}

/// E16 — churn, fault injection, and graceful degradation. Three
/// phases, all plain-substrate (route security under churn is E12/E16's
/// deployment phase; the engines' byte-identity needs no carve-out
/// here):
///
/// 1. **Steady-state churn under faults** — `churn_events` continuous
///    withdraw/re-announce cycles over a converged `internet_like`
///    topology with MRAI batching (jittered timers), RFC 2439 route-
///    flap dampening, and a seeded [`FaultPlan`] (two flapping links,
///    one twice-reset session). Reports per-event route-settle p50/p99
///    off the convergence timeline, withdraw-storm fan-out, and
///    dampening suppressions — per shard count, with full telemetry
///    equality asserted across engines.
/// 2. **Graceful degradation** — fraction of baseline route selections
///    still intact when 0/5/10/20 % of links flap, probed mid-storm.
/// 3. **Partial deployment** — the [`pvr_attack::deployment_sweep`]
///    curve: hijack success vs fraction of ASes validating origins,
///    with the unprotected fringe scored separately.
pub fn e16_churn(
    max_scale: usize,
    shard_counts: &[usize],
    churn_events: usize,
    fault_seed: u64,
) -> (String, E16Metrics) {
    use pvr_attack::{choose_placements, deployment_sweep, DeploymentSweepConfig};
    use pvr_bgp::workload::continuous_churn;
    use pvr_bgp::DampeningPolicy;
    use std::sync::Arc;

    let scale = max_scale.max(56);
    let mut shard_counts: Vec<usize> =
        if shard_counts.is_empty() { vec![1] } else { shard_counts.to_vec() };
    shard_counts.sort_unstable();
    shard_counts.dedup();
    let first_shards = shard_counts[0];

    // The churned topology: steady-state cycles concentrated on a few
    // origination pairs so per-pair flap rates outrun the dampening
    // half-life.
    let mut topology = internet_like(e14_params(scale), 16);
    let candidates: Vec<(Asn, pvr_bgp::Prefix)> = topology
        .ases()
        .flat_map(|a| topology.originated_by(a).iter().map(move |&p| (a, p)))
        .take(E16_CHURN_CANDIDATES)
        .collect();
    assert!(!candidates.is_empty(), "e16 needs originating ASes");
    let schedule = continuous_churn(
        &mut topology,
        &candidates,
        churn_events,
        SimDuration::from_millis(E16_CHURN_START_MS),
        SimDuration::from_millis(E16_CHURN_SPACING_MS),
        fault_seed,
    );

    let options = InstantiateOptions {
        seed: 16,
        mrai: Some(SimDuration::from_millis(E16_MRAI_MS)),
        mrai_jitter: Some(SimDuration::from_millis(E16_MRAI_JITTER_MS)),
        dampening: Some(DampeningPolicy::default()),
        timeline_window: Some(SimDuration::from_millis(E16_WINDOW_MS)),
        ..Default::default()
    };

    let mut out = String::new();
    writeln!(
        out,
        "E16: churn, fault injection, graceful degradation (scale {scale}, {} churn events, \
         fault seed {fault_seed})",
        schedule.len()
    )
    .unwrap();
    writeln!(out, "(plain substrate; MRAI {E16_MRAI_MS} ms +{E16_MRAI_JITTER_MS} ms jitter; RFC")
        .unwrap();
    writeln!(out, " 2439 dampening at default thresholds; fault plan: 2 flapping links + 1")
        .unwrap();
    writeln!(out, " twice-reset session; every number is sim-time-derived and identical at")
        .unwrap();
    writeln!(out, " every shard count — no carve-out applies in plain mode)").unwrap();
    writeln!(
        out,
        "{:>6} {:>6} {:>8} {:>10} {:>10} {:>7} {:>9} {:>12} {:>12}",
        "scale",
        "shards",
        "windows",
        "withdraws",
        "suppressed",
        "resets",
        "link-down",
        "settle-p50",
        "settle-p99"
    )
    .unwrap();

    let mut base: Option<(pvr_obs::Snapshot, pvr_obs::ConvergenceTimeline, pvr_netsim::SimStats)> =
        None;
    let mut engine_checks: Vec<String> = Vec::new();
    let mut metrics: Option<E16Metrics> = None;
    for &shards in &shard_counts {
        let mut net = E14Net::build(&topology, options, shards);
        net.install_fault_plan(e16_fault_plan(&topology, &net, fault_seed));
        let stop = net.converge(RunLimits::none());
        assert_eq!(
            stop,
            pvr_netsim::StopReason::Quiescent,
            "e16 scale {scale} shards {shards}: churn run must recover to quiescence"
        );
        let timeline = net.convergence_timeline().expect("timeline enabled");
        let snap = net.metrics_snapshot("plain");
        let stats = net.sim_stats();
        let totals = net.router_totals();
        let mut settles = settle_times_us(&schedule, &timeline);
        settles.sort_unstable();
        let (p50, p99) = (percentile(&settles, 50), percentile(&settles, 99));
        writeln!(
            out,
            "{:>6} {:>6} {:>8} {:>10} {:>10} {:>7} {:>9} {:>9} µs {:>9} µs",
            scale,
            shards,
            timeline.windows.len(),
            totals.withdraws_sent,
            totals.dampening_suppressed,
            stats.session_resets,
            stats.link_down,
            p50,
            p99
        )
        .unwrap();
        if shards == first_shards {
            metrics = Some(E16Metrics {
                scale,
                churn_events: schedule.len(),
                settle_p50_us: p50,
                settle_p99_us: p99,
                withdraws_sent: totals.withdraws_sent,
                withdraw_fanout: totals.withdraws_sent as f64 / schedule.len().max(1) as f64,
                dampening_suppressed: totals.dampening_suppressed,
                session_resets: stats.session_resets,
                link_down: stats.link_down,
                degradation: Vec::new(),
                deployment: Vec::new(),
            });
            base = Some((snap, timeline, stats));
        } else if let Some((base_snap, base_tl, base_stats)) = &base {
            let same = snap == *base_snap && timeline == *base_tl && stats == *base_stats;
            assert!(same, "e16 scale {scale}: shards {shards} diverged from shards {first_shards}");
            engine_checks.push(format!(
                "scale {scale}: shards {shards} telemetry == shards {first_shards} \
                               (bit-exact, no carve-out): {same}"
            ));
        }
    }
    let mut metrics = metrics.expect("at least one shard count ran");
    for line in &engine_checks {
        writeln!(out, "{line}").unwrap();
    }

    // Phase 2: graceful degradation.
    let deg_scale = scale.min(E16_DEGRADATION_MAX_SCALE);
    metrics.degradation = e16_degradation(deg_scale, fault_seed);
    writeln!(out, "\ngraceful degradation — {deg_scale} ASes, probed mid-storm at 1.5 s sim-time:")
        .unwrap();
    writeln!(out, "{:>6} {:>15} {:>16}", "flap%", "links-flapping", "routes-correct%").unwrap();
    for &(pct, links, correct) in &metrics.degradation {
        writeln!(out, "{pct:>6} {links:>15} {correct:>15.1}%").unwrap();
    }

    // Phase 3: partial deployment.
    let dep_scale = scale.min(E16_DEPLOYMENT_MAX_SCALE);
    let dep_topology = Arc::new(internet_like(e14_params(dep_scale), 16));
    let placement = choose_placements(&dep_topology, 1, fault_seed)[0];
    let config = DeploymentSweepConfig {
        seed: fault_seed,
        fractions_pct: vec![0, 25, 50, 75, 100],
        parallelism: 0,
    };
    metrics.deployment = deployment_sweep(&dep_topology, placement, &config);
    writeln!(
        out,
        "\npartial deployment — {dep_scale} ASes, AS{} hijacking AS{}'s prefix:",
        placement.attacker.0, placement.victim.0
    )
    .unwrap();
    writeln!(
        out,
        "{:>9} {:>9} {:>15} {:>18} {:>17}",
        "deployed%", "protected", "attack-success%", "fringe-intercept%", "origin-rejections"
    )
    .unwrap();
    for p in &metrics.deployment {
        writeln!(
            out,
            "{:>9} {:>9} {:>14.1}% {:>17.1}% {:>17}",
            p.fraction_pct,
            p.protected,
            p.attack_success_pct,
            p.fringe_interception_pct,
            p.origin_rejections
        )
        .unwrap();
    }
    writeln!(out, "(expected: suppressed > 0 — dampening parks the fastest flappers; settle-p99")
        .unwrap();
    writeln!(out, " well above p50 — fault windows stretch the tail; routes-correct falls as")
        .unwrap();
    writeln!(out, " the flapping fraction grows; attack success falls with deployment while")
        .unwrap();
    writeln!(out, " the unprotected fringe stays at least as exposed as the average)").unwrap();
    (out, metrics)
}

/// One measured row of E17: a (scale, shard-count) pair converged twice
/// on the signed substrate — once plain, once with private verification
/// — so the privacy overhead is a like-for-like ratio on the same
/// engine. Every field except the wall-clock ones is sim-time derived
/// and identical across shard counts (the CI determinism gate diffs
/// exactly that).
#[derive(Clone, Debug)]
pub struct E17Row {
    /// Requested AS-count scale.
    pub scale: usize,
    /// Shard count (1 = the serial engine).
    pub shards: usize,
    /// Batch width the verifier packed requests into (≤ 64 lanes).
    pub lane_cap: usize,
    /// Actual AS count of the generated topology.
    pub ases: usize,
    /// Signed-baseline convergence events (deterministic).
    pub baseline_events: u64,
    /// Signed-baseline sim-time at quiescence, µs (deterministic).
    pub baseline_sim_us: u64,
    /// Signed-baseline wall-clock (timing field).
    pub baseline_wall_secs: f64,
    /// Private-run convergence events — baseline plus the verdict
    /// timers the verifier schedules (deterministic).
    pub private_events: u64,
    /// Private-run sim-time at quiescence, µs: the baseline plus the
    /// modeled SMC latency charged at barriers (deterministic).
    pub private_sim_us: u64,
    /// Private-run wall-clock (timing field).
    pub private_wall_secs: f64,
    /// `private_sim_us / baseline_sim_us` — the privacy overhead in
    /// sim-time (deterministic).
    pub sim_time_overhead: f64,
    /// `private_wall_secs / baseline_wall_secs` (timing field).
    pub wall_overhead: f64,
    /// `lanes_occupied / lane_slots`, percent (deterministic).
    pub occupancy_pct: f64,
    /// The verifier's full SMC accounting (deterministic).
    pub smc: pvr_bgp::SmcBatchStats,
}

/// E17 — private verification as a first-class network mode. The
/// `internet_like` ladder (1000 → `max_scale` ASes) converges on the
/// signed substrate twice per shard count: once bare, once with the
/// batched-GMW [`pvr_bgp::PrivateVerifier`] enabled, which runs every
/// contested route selection (≥ 2 candidates in the winning
/// LOCAL_PREF tier) through bit-sliced min + majority circuits at
/// calendar-queue barriers and charges the FairplayMP-calibrated
/// latency back into sim-time. Reports the privacy overhead as
/// multipliers against the signed baseline — sim-time convergence,
/// events/sec — plus the SMC bill itself: bits broadcast, AND rounds,
/// batch occupancy, and the verdict tally (all passes on honest
/// topologies). Everything except wall-clock is deterministic and
/// byte-identical across shard counts; the run asserts that itself and
/// the CI determinism gate re-checks it from the JSON.
pub fn e17_private_path(
    max_scale: usize,
    shard_counts: &[usize],
    lane_cap: usize,
) -> (String, Vec<E17Row>) {
    let scales: Vec<usize> = [1000usize, max_scale]
        .into_iter()
        .filter(|&s| s <= max_scale)
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect();
    let scales = if scales.is_empty() { vec![max_scale] } else { scales };
    let mut shard_counts: Vec<usize> =
        if shard_counts.is_empty() { vec![1] } else { shard_counts.to_vec() };
    shard_counts.sort_unstable();
    shard_counts.dedup();
    let first_shards = shard_counts[0];

    let mut out = String::new();
    let mut rows = Vec::new();
    writeln!(
        out,
        "E17: private verification as a network mode (max scale {max_scale}, lane cap {lane_cap})"
    )
    .unwrap();
    writeln!(out, "(signed substrate ± batched-GMW verification of contested selections; min +")
        .unwrap();
    writeln!(out, " majority circuits run bit-sliced at calendar barriers, latency charged from")
        .unwrap();
    writeln!(out, " the FairplayMP-calibrated model; all non-timing columns are sim-time").unwrap();
    writeln!(out, " deterministic and identical at every shard count)").unwrap();
    writeln!(
        out,
        "{:>6} {:<8} {:>6} {:>9} {:>10} {:>10} {:>9} {:>8} {:>6} {:>13} {:>9}",
        "scale",
        "mode",
        "shards",
        "events",
        "events/s",
        "sim-ms",
        "requests",
        "batches",
        "occ%",
        "bits-bcast",
        "verdicts"
    )
    .unwrap();

    // The base shard count's private-run fingerprint per scale, for the
    // cross-engine assertion.
    let mut base_runs: Vec<(usize, pvr_bgp::SmcBatchStats, pvr_obs::TimelineRecorder, u64, u64)> =
        Vec::new();
    for &scale in &scales {
        let params = e14_params(scale);
        let topology = internet_like(params, 17);
        let origin_table = std::sync::Arc::new(topology.origin_table());
        for &shards in &shard_counts {
            let mut measured: Vec<(bool, u64, u64, f64)> = Vec::new();
            for private in [false, true] {
                let mut net = E14Net::build(
                    &topology,
                    InstantiateOptions {
                        seed: 17,
                        signed: true,
                        key_bits: 512,
                        private_verification: private,
                        smc_lane_cap: lane_cap,
                        ..Default::default()
                    },
                    shards,
                );
                net.install_origin_table(std::sync::Arc::clone(&origin_table));
                let t = Instant::now();
                let stop = net.converge(RunLimits::none());
                let wall = t.elapsed().as_secs_f64();
                assert_eq!(
                    stop,
                    pvr_netsim::StopReason::Quiescent,
                    "e17 scale {scale} shards {shards} private={private}"
                );
                let events = net.sim_stats().events;
                let sim_us = net.now_us();
                measured.push((private, events, sim_us, wall));
                let (requests, batches, occ, bits, verdicts) = if private {
                    let verifier = net.private_verifier().expect("private verifier wired");
                    let s = verifier.stats();
                    assert_eq!(s.verdict_fail, 0, "honest selections must all verify");
                    assert_eq!(s.verdicts_delivered, s.requests, "all verdicts delivered");
                    let occ = 100.0 * s.lanes_occupied as f64 / s.lane_slots.max(1) as f64;
                    if shards == first_shards {
                        base_runs.push((scale, s.clone(), verifier.timeline(), events, sim_us));
                    } else {
                        let (_, base_stats, base_tl, base_events, base_sim) = base_runs
                            .iter()
                            .find(|(sc, ..)| *sc == scale)
                            .expect("base shard count ran first");
                        assert_eq!(&s, base_stats, "e17 scale {scale}: SMC stats diverged");
                        assert_eq!(
                            &verifier.timeline(),
                            base_tl,
                            "e17 scale {scale}: SMC timeline diverged"
                        );
                        assert_eq!(events, *base_events, "e17 scale {scale}: events diverged");
                        assert_eq!(sim_us, *base_sim, "e17 scale {scale}: sim-time diverged");
                    }
                    (
                        s.requests.to_string(),
                        s.batches.to_string(),
                        format!("{occ:.1}"),
                        s.bits_broadcast.to_string(),
                        format!("{}+{}", s.verdict_pass, s.verdict_fail),
                    )
                } else {
                    let dash = || "-".to_string();
                    (dash(), dash(), dash(), dash(), dash())
                };
                writeln!(
                    out,
                    "{:>6} {:<8} {:>6} {:>9} {:>10.0} {:>10.1} {:>9} {:>8} {:>6} {:>13} {:>9}",
                    scale,
                    if private { "private" } else { "signed" },
                    shards,
                    events,
                    events as f64 / wall.max(1e-9),
                    sim_us as f64 / 1e3,
                    requests,
                    batches,
                    occ,
                    bits,
                    verdicts
                )
                .unwrap();
            }
            let (_, base_events, base_sim, base_wall) = measured[0];
            let (_, priv_events, priv_sim, priv_wall) = measured[1];
            let (_, s, _, _, _) =
                base_runs.iter().find(|(sc, ..)| *sc == scale).expect("private run recorded");
            let row = E17Row {
                scale,
                shards,
                lane_cap,
                ases: topology.as_count(),
                baseline_events: base_events,
                baseline_sim_us: base_sim,
                baseline_wall_secs: base_wall,
                private_events: priv_events,
                private_sim_us: priv_sim,
                private_wall_secs: priv_wall,
                sim_time_overhead: priv_sim as f64 / base_sim.max(1) as f64,
                wall_overhead: priv_wall / base_wall.max(1e-9),
                occupancy_pct: 100.0 * s.lanes_occupied as f64 / s.lane_slots.max(1) as f64,
                smc: s.clone(),
            };
            writeln!(
                out,
                "       overhead vs signed: sim-time {:.2}x, events {:.2}x, wall {:.2}x \
                 (modeled SMC {:.1} s over {} rounds)",
                row.sim_time_overhead,
                priv_events as f64 / base_events.max(1) as f64,
                row.wall_overhead,
                s.modeled_micros as f64 / 1e6,
                s.rounds_charged
            )
            .unwrap();
            rows.push(row);
        }
    }
    writeln!(out, "(expected: every verdict passes — honest routers always pick a tier-minimal")
        .unwrap();
    writeln!(out, " path; occupancy rises with topology contention; sim-time overhead is the")
        .unwrap();
    writeln!(out, " paper's trade made concrete — full SMC on every contested selection costs")
        .unwrap();
    writeln!(out, " seconds of modeled WAN latency where PVR's commitments cost milliseconds)")
        .unwrap();
    (out, rows)
}

/// Sanity used by tests: E1 claims must hold programmatically.
pub fn e1_invariants_hold() -> bool {
    let bed = Figure1Bed::build(&[2, 3, 5], 42);
    let honest = run_min_round(&bed, None);
    let cheat = run_min_round(&bed, Some(Misbehavior::ExportLonger));
    honest.clean() && cheat.detected() && cheat.convicted()
}

/// Quick numeric check for E4 used by tests: PVR beats modeled SMC by
/// at least 100× on the k=5 task.
pub fn e4_speedup() -> f64 {
    let bed = Figure1Bed::build(&[2, 3, 4, 5, 6], 4);
    let t_pvr = median_secs(3, || {
        let _ = run_min_round(&bed, None);
    });
    let circuit = min_circuit(5, 8);
    let inputs: Vec<Vec<bool>> = [2u64, 3, 4, 5, 6].iter().map(|&v| to_bits(v, 8)).collect();
    let mut rng = HmacDrbg::from_u64_labeled(4, "e4-check");
    let stats = run_gmw(&circuit, &inputs, &mut rng).stats;
    SmcCostModel::fairplay_calibrated().estimate_seconds(&stats) / t_pvr
}

/// Verifies one provider/receiver pair quickly (used by bench warmups).
pub fn verify_round_once(bed: &Figure1Bed) {
    let c = bed.honest_committer();
    let d = c.disclosure_for_provider(bed.ns[0]);
    let o =
        verify_as_provider(bed.a, &bed.round, &bed.params, &bed.inputs[&bed.ns[0]], &d, &bed.keys);
    assert!(o.is_accept());
    let d = c.disclosure_for_receiver(bed.b);
    let o = verify_as_receiver(bed.b, bed.a, &bed.round, &bed.params, &d, &bed.keys);
    assert!(o.is_accept());
}

/// The committed minimum for a bed (used in bench assertions).
pub fn committed_min(bed: &Figure1Bed) -> Option<usize> {
    let c = bed.honest_committer();
    let bits: Vec<bool> = (1..=bed.params.max_path_len as u32)
        .map(|i| c.reveal_bit(i).unwrap().bit().unwrap())
        .collect();
    claimed_min(&bits)
}

/// E18's default checkpoint cadence, sim-time milliseconds
/// (`--checkpoint-every` overrides via the harness).
pub const E18_DEFAULT_EVERY_MS: u64 = 10;

/// One measured shard-count row of E18: an uninterrupted baseline, a
/// checkpoint-every-boundary run, and a kill-and-recover cycle from the
/// middle checkpoint. The wall-clock fields and the checkpoint byte
/// size are engine-local (the file encodes per-engine scheduler state);
/// everything else is deterministic and identical across shard counts.
#[derive(Clone, Debug)]
pub struct E18Row {
    /// Shard count (1 = the serial engine). Run parameter.
    pub shards: usize,
    /// Convergence events of the uninterrupted run (deterministic).
    pub events: u64,
    /// Wall-clock of the uninterrupted baseline (timing).
    pub baseline_wall_secs: f64,
    /// Wall-clock of the checkpoint-every-boundary run (timing).
    pub checkpointed_wall_secs: f64,
    /// `(checkpointed - baseline) / baseline`, percent (timing).
    pub snapshot_overhead_pct: f64,
    /// COW RIB snapshots retained at quiescence (deterministic).
    pub snapshots_retained: usize,
    /// Checkpoint files the sliced run wrote (deterministic).
    pub checkpoints_written: usize,
    /// Size of the final checkpoint file (engine-local: the ENGINE
    /// section encodes per-shard scheduler state).
    pub last_checkpoint_bytes: u64,
    /// Wall-clock of one explicit `checkpoint()` call (timing).
    pub checkpoint_write_secs: f64,
    /// Checkpoint serialization + write throughput (timing).
    pub write_mb_per_sec: f64,
    /// Restore-from-middle-checkpoint + replay-to-quiescence wall
    /// clock (timing).
    pub recovery_wall_secs: f64,
    /// Events replayed between the kill point and quiescence
    /// (deterministic).
    pub replay_events: u64,
    /// Recovered run's RIB fingerprint and simulator stats equal the
    /// uninterrupted run's — the crash-consistency contract
    /// (deterministic, must be true).
    pub recovered_identical: bool,
    /// Hex SHA-256 of the converged Loc-RIB (deterministic).
    pub final_rib_sha256: String,
}

/// E18's forensic row: the snapshot bisect over a hijack run's COW
/// history (serial engine; all fields sim-time deterministic).
#[derive(Clone, Debug)]
pub struct E18Forensic {
    /// Snapshots the hijack run retained.
    pub snapshots: usize,
    /// Snapshots the binary search probed (≈ log₂ of the history).
    pub probes: usize,
    /// Capture time of the first poisoned snapshot, sim ms.
    pub first_poisoned_ms: u64,
    /// Honest ASes routing through the attacker at that instant.
    pub poisoned_ases: usize,
}

/// Everything E18 returns beyond the human table — the harness embeds
/// it as the record's `metrics` object.
#[derive(Clone, Debug)]
pub struct E18Metrics {
    /// Requested AS-count scale.
    pub scale: usize,
    /// Actual AS count of the generated topology.
    pub ases: usize,
    /// Checkpoint cadence, sim-time milliseconds.
    pub checkpoint_every_ms: u64,
    /// One row per shard count.
    pub rows: Vec<E18Row>,
    /// The hijack-bisect forensic row.
    pub forensic: E18Forensic,
}

/// E18 — durability: crash-consistent checkpoint/restore and
/// deterministic replay recovery (ISSUE 10's tentpole, measured). Per
/// shard count: converge an `internet_like` run (signed substrate,
/// MRAI + dampening, a scheduled flap) uninterrupted, then again
/// writing a checkpoint at every `every_ms` slice boundary; then
/// simulate a crash by restoring the *middle* checkpoint and replaying
/// to quiescence, asserting the recovered RIB fingerprint and
/// simulator stats equal the uninterrupted run's. The forensic section
/// runs a delayed prefix hijack under COW snapshots and bisects the
/// history for the first poisoned instant (`pvr_attack::forensic`).
///
/// `checkpoint_dir` keeps the checkpoint files (per-shard-count
/// subdirectories `s<N>/`); by default they go to a temp directory
/// that is removed afterwards. `restore` adds an operator drill: the
/// given checkpoint file is restored (either engine) and replayed to
/// quiescence, reported in the table only.
pub fn e18_durability(
    max_scale: usize,
    shard_counts: &[usize],
    every_ms: u64,
    checkpoint_dir: Option<&std::path::Path>,
    restore: Option<&std::path::Path>,
) -> (String, E18Metrics) {
    use pvr_netsim::StopReason;

    let scale = max_scale;
    let every = SimDuration::from_millis(every_ms.max(1));
    let mut shard_counts: Vec<usize> =
        if shard_counts.is_empty() { vec![1] } else { shard_counts.to_vec() };
    shard_counts.sort_unstable();
    shard_counts.dedup();

    // The same dynamic-state surface the crash-recovery property tests
    // cover: signed substrate, MRAI + jitter, dampening, and a
    // scheduled flap so the kill point crosses pending local events.
    let mut topology = internet_like(e14_params(scale), 18);
    let ases: Vec<Asn> = topology.ases().collect();
    let flapper = ases[ases.len() / 2];
    let flap_prefix = pvr_bgp::Prefix::parse("203.0.113.0/24").expect("parse");
    topology.originate(flapper, flap_prefix);
    topology.schedule(
        flapper,
        SimDuration::from_millis(40),
        pvr_bgp::LocalEvent::Withdraw(flap_prefix),
    );
    topology.schedule(
        flapper,
        SimDuration::from_millis(90),
        pvr_bgp::LocalEvent::Announce(flap_prefix),
    );
    let options = InstantiateOptions {
        seed: 18,
        signed: true,
        key_bits: 512,
        mrai: Some(SimDuration::from_millis(5)),
        mrai_jitter: Some(SimDuration::from_millis(1)),
        dampening: Some(pvr_bgp::DampeningPolicy::default()),
        ..Default::default()
    };
    let origin_table = std::sync::Arc::new(topology.origin_table());

    let temp_base = std::env::temp_dir().join(format!("pvr-e18-{}", std::process::id()));
    let keep_files = checkpoint_dir.is_some();
    let base_dir = checkpoint_dir.map(|d| d.to_path_buf()).unwrap_or_else(|| temp_base.clone());

    let mut out = String::new();
    writeln!(
        out,
        "E18: durability — COW snapshots, checkpoint/restore, replay recovery \
         (scale {scale}, checkpoint every {every_ms} ms)"
    )
    .unwrap();
    writeln!(out, "(signed substrate + MRAI + dampening + a scheduled flap; per row: baseline")
        .unwrap();
    writeln!(out, " vs checkpoint-at-every-boundary run, then kill at the middle checkpoint,")
        .unwrap();
    writeln!(out, " restore, replay; `identical` = RIB fingerprint + SimStats equality with")
        .unwrap();
    writeln!(out, " the never-crashed run — the crash-consistency contract)").unwrap();
    writeln!(
        out,
        "{:>6} {:>9} {:>6} {:>6} {:>11} {:>6} {:>10} {:>11} {:>9} {:>9} {:>12}",
        "shards",
        "events",
        "snaps",
        "ckpts",
        "last-ckpt-B",
        "ovh%",
        "write-MB/s",
        "recovery-ms",
        "replayed",
        "identical",
        "rib sha256"
    )
    .unwrap();

    let mut rows = Vec::new();
    let mut ases_actual = topology.as_count();
    for &shards in &shard_counts {
        // Uninterrupted baseline.
        let mut baseline = E14Net::build(&topology, options, shards);
        baseline.install_origin_table(std::sync::Arc::clone(&origin_table));
        let t = Instant::now();
        let stop = baseline.converge(RunLimits::none());
        let baseline_wall_secs = t.elapsed().as_secs_f64();
        assert_eq!(stop, StopReason::Quiescent, "e18 baseline shards {shards}");
        let base_stats = baseline.sim_stats();
        let final_rib_sha256 = baseline.rib_fingerprint_hex();
        ases_actual = topology.as_count();

        // The same run, checkpointed at every slice boundary.
        let dir = base_dir.join(format!("s{shards}"));
        let mut ck = E14Net::build(&topology, options, shards);
        ck.install_origin_table(std::sync::Arc::clone(&origin_table));
        let t = Instant::now();
        let (stop, _last) = ck
            .converge_checkpointed(RunLimits::none(), every, &dir)
            .expect("e18 checkpointed converge");
        let checkpointed_wall_secs = t.elapsed().as_secs_f64();
        assert_eq!(stop, StopReason::Quiescent, "e18 checkpointed shards {shards}");
        assert_eq!(ck.sim_stats().events, base_stats.events, "e18 slicing changed the run");
        let snapshots_retained = ck.snapshot_times().len();

        // One explicit checkpoint, timed in isolation for throughput.
        let final_path = dir.join("final.pvr");
        let t = Instant::now();
        let final_bytes = ck.checkpoint(&final_path).expect("e18 final checkpoint");
        let checkpoint_write_secs = t.elapsed().as_secs_f64();

        let mut files: Vec<std::path::PathBuf> = std::fs::read_dir(&dir)
            .expect("e18 checkpoint dir")
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| {
                p.extension().is_some_and(|x| x == "pvr")
                    && p.file_name()
                        .and_then(|n| n.to_str())
                        .is_some_and(|n| n.starts_with("ckpt-"))
            })
            .collect();
        files.sort();
        let checkpoints_written = files.len();
        let kill_point = &files[files.len() / 2];
        let last_checkpoint_bytes = std::fs::metadata(files.last().expect("e18 wrote checkpoints"))
            .expect("e18 checkpoint metadata")
            .len();

        // The crash: restore the middle checkpoint, replay, compare.
        let t = Instant::now();
        let mut recovered = E14Net::restore(shards, kill_point).expect("e18 restore");
        let events_at_kill = recovered.sim_stats().events;
        let stop = recovered.converge(RunLimits::none());
        let recovery_wall_secs = t.elapsed().as_secs_f64();
        assert_eq!(stop, StopReason::Quiescent, "e18 recovery shards {shards}");
        let recovered_identical = recovered.rib_fingerprint_hex() == final_rib_sha256
            && recovered.sim_stats() == base_stats;
        let replay_events = recovered.sim_stats().events - events_at_kill;

        let row = E18Row {
            shards,
            events: base_stats.events,
            baseline_wall_secs,
            checkpointed_wall_secs,
            snapshot_overhead_pct: (checkpointed_wall_secs - baseline_wall_secs)
                / baseline_wall_secs.max(1e-9)
                * 100.0,
            snapshots_retained,
            checkpoints_written,
            last_checkpoint_bytes,
            checkpoint_write_secs,
            write_mb_per_sec: final_bytes as f64 / 1e6 / checkpoint_write_secs.max(1e-9),
            recovery_wall_secs,
            replay_events,
            recovered_identical,
            final_rib_sha256,
        };
        writeln!(
            out,
            "{:>6} {:>9} {:>6} {:>6} {:>11} {:>6.1} {:>10.1} {:>11.1} {:>9} {:>9} {:>12}",
            row.shards,
            row.events,
            row.snapshots_retained,
            row.checkpoints_written,
            row.last_checkpoint_bytes,
            row.snapshot_overhead_pct,
            row.write_mb_per_sec,
            row.recovery_wall_secs * 1e3,
            row.replay_events,
            if row.recovered_identical { "yes" } else { "NO" },
            &row.final_rib_sha256[..12]
        )
        .unwrap();
        assert!(row.recovered_identical, "e18 shards {shards}: recovered run diverged");
        rows.push(row);
        if !keep_files {
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
    if !keep_files {
        let _ = std::fs::remove_dir_all(&temp_base);
    }

    // Forensic bisect: a delayed hijack under COW snapshots, then
    // binary-search the history for the first poisoned instant. Plain
    // substrate (no origin validation — the hijack must land) on the
    // serial engine (the bisect reads `BgpNetwork` history).
    let mut hijack_top = internet_like(e14_params(scale), 18);
    let victim_prefix = hijack_top
        .ases()
        .collect::<Vec<_>>()
        .iter()
        .find_map(|&a| hijack_top.originated_by(a).first().copied())
        .expect("e18 forensic: an originated prefix");
    let transit = hijack_top.ases().next().expect("e18 forensic: a transit");
    let attacker = Asn(65_001);
    hijack_top.provider_customer(transit, attacker);
    hijack_top.schedule(
        attacker,
        SimDuration::from_millis(60),
        pvr_bgp::LocalEvent::Announce(victim_prefix),
    );
    let mut hijacked =
        hijack_top.instantiate(InstantiateOptions { seed: 18, ..Default::default() });
    let stop = hijacked.converge_with_snapshots(RunLimits::none(), every);
    assert_eq!(stop, StopReason::Quiescent, "e18 forensic run");
    let hit = pvr_attack::bisect_first_poisoned(&hijacked, attacker, victim_prefix)
        .expect("e18 forensic: hijack must appear in the history");
    let forensic = E18Forensic {
        snapshots: hijacked.snapshot_times().len(),
        probes: hit.probes,
        first_poisoned_ms: hit.first_poisoned_at.as_micros() / 1000,
        poisoned_ases: hit.poisoned.len(),
    };
    writeln!(
        out,
        "forensic bisect: hijack first visible at {} ms ({} of {} snapshots probed; \
         {} ASes poisoned)",
        forensic.first_poisoned_ms, forensic.probes, forensic.snapshots, forensic.poisoned_ases
    )
    .unwrap();

    // Operator drill (`--restore`): bring an arbitrary checkpoint file
    // back and replay it to quiescence. Reported in the table only —
    // it parameterizes the run, so it stays out of the metrics record.
    if let Some(path) = restore {
        let t = Instant::now();
        let mut net = E14Net::restore(1, path)
            .or_else(|_| E14Net::restore(2, path))
            .unwrap_or_else(|e| panic!("e18 --restore {}: {e}", path.display()));
        let before = net.sim_stats().events;
        let stop = net.converge(RunLimits::none());
        writeln!(
            out,
            "restore drill: {}: replayed {} events to {:?} in {:.1} ms, rib sha256={}",
            path.display(),
            net.sim_stats().events - before,
            stop,
            t.elapsed().as_secs_f64() * 1e3,
            &net.rib_fingerprint_hex()[..12]
        )
        .unwrap();
    }

    writeln!(out, "(expected: every row identical=yes — restore+replay is byte-equal to the")
        .unwrap();
    writeln!(out, " uninterrupted run; events/snaps/ckpts/replayed/sha identical across shard")
        .unwrap();
    writeln!(out, " counts; checkpoint bytes and all wall-clock columns are engine-local)")
        .unwrap();
    let metrics = E18Metrics {
        scale,
        ases: ases_actual,
        checkpoint_every_ms: every_ms.max(1),
        rows,
        forensic,
    };
    (out, metrics)
}

/// All experiments in order, as (id, output) pairs.
pub fn all_experiments() -> Vec<(&'static str, String)> {
    vec![
        ("e1", e1_detection_matrix()),
        ("e2", e2_graph_navigation()),
        ("e3", e3_crypto_costs()),
        ("e4", e4_strawman_comparison()),
        ("e5", e5_batching()),
        ("e6", e6_mht_scaling()),
        ("e7", e7_confidentiality()),
        ("e8", e8_internet_overhead()),
        ("e9", e9_ring_scaling()),
        ("e10", e10_promise_ladder()),
        ("e11", e11_ablations()),
        ("e12", e12_attack_campaigns()),
        ("e13", e13_crypto_perf()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_properties() {
        assert!(e1_invariants_hold());
    }

    #[test]
    fn e4_speedup_is_large() {
        assert!(e4_speedup() > 100.0, "PVR must beat modeled SMC by ≥100×");
    }

    #[test]
    fn quick_experiments_produce_tables() {
        for (id, table) in
            [("e7", e7_confidentiality()), ("e10", e10_promise_ladder()), ("e11", e11_ablations())]
        {
            assert!(table.lines().count() >= 4, "{id} table too small:\n{table}");
        }
    }
}
