//! Exposition: rendering a [`Snapshot`] as Prometheus text format or
//! as a `pvr-bench-v1`-compatible JSON fragment.
//!
//! Both renderers are pure functions of the canonical snapshot, so
//! their output inherits its determinism: same traffic, same bytes,
//! whatever engine produced the numbers. Counters render with a
//! `_total` suffix already baked into their names, histograms render
//! cumulatively with Prometheus `le` semantics plus the implicit
//! `+Inf` bucket, and gauges render with Rust's shortest-roundtrip
//! float formatting (deterministic for a given bit pattern).

use crate::registry::{Snapshot, Value};
use std::fmt::Write;

fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn label_block(labels: &[(String, String)], extra: Option<(&str, String)>) -> String {
    let mut pairs: Vec<String> =
        labels.iter().map(|(k, v)| format!("{k}=\"{}\"", escape_label(v))).collect();
    if let Some((k, v)) = extra {
        pairs.push(format!("{k}=\"{v}\""));
    }
    if pairs.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", pairs.join(","))
    }
}

fn fmt_gauge(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

/// Renders the snapshot in Prometheus text exposition format: one
/// `# TYPE` line per metric name (the snapshot is sorted, so series of
/// a metric are consecutive), then one sample line per series.
pub fn to_prometheus(snap: &Snapshot) -> String {
    let mut out = String::new();
    let mut last_name: Option<&str> = None;
    for s in &snap.series {
        if last_name != Some(s.name.as_str()) {
            let kind = match s.value {
                Value::Counter(_) => "counter",
                Value::Gauge(_) => "gauge",
                Value::Histogram(_) => "histogram",
            };
            writeln!(out, "# TYPE {} {}", s.name, kind).expect("write to String cannot fail");
            last_name = Some(s.name.as_str());
        }
        match &s.value {
            Value::Counter(v) => {
                writeln!(out, "{}{} {}", s.name, label_block(&s.labels, None), v)
                    .expect("write to String cannot fail");
            }
            Value::Gauge(v) => {
                writeln!(out, "{}{} {}", s.name, label_block(&s.labels, None), fmt_gauge(*v))
                    .expect("write to String cannot fail");
            }
            Value::Histogram(h) => {
                for (le, cum) in h.bounds().iter().zip(h.cumulative()) {
                    writeln!(
                        out,
                        "{}_bucket{} {}",
                        s.name,
                        label_block(&s.labels, Some(("le", le.to_string()))),
                        cum
                    )
                    .expect("write to String cannot fail");
                }
                writeln!(
                    out,
                    "{}_bucket{} {}",
                    s.name,
                    label_block(&s.labels, Some(("le", "+Inf".to_string()))),
                    h.count()
                )
                .expect("write to String cannot fail");
                writeln!(out, "{}_sum{} {}", s.name, label_block(&s.labels, None), h.sum())
                    .expect("write to String cannot fail");
                writeln!(out, "{}_count{} {}", s.name, label_block(&s.labels, None), h.count())
                    .expect("write to String cannot fail");
            }
        }
    }
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the snapshot as a compact JSON array of series objects, the
/// shape embedded under `"series"` in the harness's `pvr-bench-v1`
/// output. Counters/gauges carry `"value"`; histograms carry
/// cumulative `"buckets"` (`[le, count]` pairs), `"sum"`, `"count"`.
pub fn to_json(snap: &Snapshot) -> String {
    let mut out = String::from("[");
    for (i, s) in snap.series.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write!(out, "{{\"name\":\"{}\",\"labels\":{{", json_escape(&s.name))
            .expect("write to String cannot fail");
        for (j, (k, v)) in s.labels.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            write!(out, "\"{}\":\"{}\"", json_escape(k), json_escape(v))
                .expect("write to String cannot fail");
        }
        out.push_str("},");
        match &s.value {
            Value::Counter(v) => {
                write!(out, "\"type\":\"counter\",\"value\":{v}")
                    .expect("write to String cannot fail");
            }
            Value::Gauge(v) => {
                write!(out, "\"type\":\"gauge\",\"value\":{}", fmt_gauge(*v))
                    .expect("write to String cannot fail");
            }
            Value::Histogram(h) => {
                out.push_str("\"type\":\"histogram\",\"buckets\":[");
                for (j, (le, cum)) in h.bounds().iter().zip(h.cumulative()).enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    write!(out, "[{le},{cum}]").expect("write to String cannot fail");
                }
                write!(out, "],\"sum\":{},\"count\":{}", h.sum(), h.count())
                    .expect("write to String cannot fail");
            }
        }
        out.push('}');
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{LabelSet, MetricsRegistry};

    fn demo_snapshot() -> Snapshot {
        let mut r = MetricsRegistry::new();
        let signed: LabelSet = vec![("security_mode", "signed".to_string())];
        let plain: LabelSet = vec![("security_mode", "plain".to_string())];
        let c = r.counter("pvr_router_updates_rx_total", &signed);
        r.inc(c, 42);
        let c = r.counter("pvr_router_updates_rx_total", &plain);
        r.inc(c, 40);
        let g = r.gauge("pvr_verify_cache_hit_ratio", &signed);
        r.set_gauge(g, 0.25);
        let h = r.histogram(
            "pvr_attack_detection_latency_us",
            &vec![("strategy", "route-leak".to_string())],
            &[1_000, 100_000],
        );
        r.observe(h, 500);
        r.observe(h, 50_000);
        r.observe(h, 200_000);
        r.snapshot()
    }

    /// The Prometheus golden test: exact bytes, so any formatting
    /// drift (ordering, le semantics, +Inf bucket) fails loudly.
    #[test]
    fn prometheus_golden() {
        let expected = "\
# TYPE pvr_attack_detection_latency_us histogram
pvr_attack_detection_latency_us_bucket{strategy=\"route-leak\",le=\"1000\"} 1
pvr_attack_detection_latency_us_bucket{strategy=\"route-leak\",le=\"100000\"} 2
pvr_attack_detection_latency_us_bucket{strategy=\"route-leak\",le=\"+Inf\"} 3
pvr_attack_detection_latency_us_sum{strategy=\"route-leak\"} 250500
pvr_attack_detection_latency_us_count{strategy=\"route-leak\"} 3
# TYPE pvr_router_updates_rx_total counter
pvr_router_updates_rx_total{security_mode=\"plain\"} 40
pvr_router_updates_rx_total{security_mode=\"signed\"} 42
# TYPE pvr_verify_cache_hit_ratio gauge
pvr_verify_cache_hit_ratio{security_mode=\"signed\"} 0.25
";
        assert_eq!(to_prometheus(&demo_snapshot()), expected);
    }

    #[test]
    fn json_golden() {
        let expected = "[\
{\"name\":\"pvr_attack_detection_latency_us\",\"labels\":{\"strategy\":\"route-leak\"},\
\"type\":\"histogram\",\"buckets\":[[1000,1],[100000,2]],\"sum\":250500,\"count\":3},\
{\"name\":\"pvr_router_updates_rx_total\",\"labels\":{\"security_mode\":\"plain\"},\
\"type\":\"counter\",\"value\":40},\
{\"name\":\"pvr_router_updates_rx_total\",\"labels\":{\"security_mode\":\"signed\"},\
\"type\":\"counter\",\"value\":42},\
{\"name\":\"pvr_verify_cache_hit_ratio\",\"labels\":{\"security_mode\":\"signed\"},\
\"type\":\"gauge\",\"value\":0.25}]";
        assert_eq!(to_json(&demo_snapshot()), expected);
    }

    #[test]
    fn label_values_are_escaped() {
        let mut r = MetricsRegistry::new();
        let c = r.counter("pvr_x_total", &vec![("router", "a\"b\\c".to_string())]);
        r.inc(c, 1);
        let text = to_prometheus(&r.snapshot());
        assert!(text.contains("router=\"a\\\"b\\\\c\""));
    }
}
