//! Sim-time event journal: a bounded ring buffer of `(virtual time,
//! kind, value)` records, one per router.
//!
//! The journal is the forensic layer: where the registry answers "how
//! many", the journal answers "in what order, and when (in sim-time)".
//! It follows the crate's sim-time-only tracing rule — entries are
//! stamped with the simulator's virtual clock, never the wall clock —
//! so a journal dump from a deterministic run is itself deterministic
//! and can be diffed across replays.
//!
//! Capacity is a hard bound: when full, the oldest entry is evicted
//! and counted in [`EventJournal::evicted`]. That makes the journal
//! safe to leave enabled on big runs (memory is `O(capacity)` per
//! router) at the price of keeping only the *most recent* window —
//! exactly what forensic replay of an attack wants, since the
//! interesting events are the ones nearest the incident.

use std::collections::VecDeque;

/// One journal record. `kind` is a static label (`"best_change"`,
/// `"verify"`, ...); `value` is a kind-specific magnitude (count,
/// latency, prefix index — the emitter documents it).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JournalEntry {
    /// Simulator virtual time, microseconds.
    pub t_us: u64,
    /// Static event label.
    pub kind: &'static str,
    /// Kind-specific magnitude.
    pub value: u64,
}

/// A bounded, per-router ring buffer of [`JournalEntry`] records.
#[derive(Clone, Debug, Default)]
pub struct EventJournal {
    cap: usize,
    entries: VecDeque<JournalEntry>,
    evicted: u64,
}

impl EventJournal {
    /// A journal holding at most `capacity` entries. `capacity == 0`
    /// builds a disabled journal that records nothing.
    pub fn new(capacity: usize) -> EventJournal {
        EventJournal { cap: capacity, entries: VecDeque::with_capacity(capacity), evicted: 0 }
    }

    /// Appends a point event, evicting the oldest entry when full.
    pub fn record(&mut self, t_us: u64, kind: &'static str, value: u64) {
        if self.cap == 0 {
            return;
        }
        if self.entries.len() == self.cap {
            self.entries.pop_front();
            self.evicted += 1;
        }
        self.entries.push_back(JournalEntry { t_us, kind, value });
    }

    /// Appends a span as a begin/end event pair (both sim-time
    /// stamped). `value` is attached to the end event, where the
    /// span's outcome is known.
    pub fn record_span(&mut self, start_us: u64, end_us: u64, kind: &'static str, value: u64) {
        debug_assert!(start_us <= end_us, "span ends before it starts");
        self.record(start_us, kind, 0);
        self.record(end_us, kind, value);
    }

    /// The retained entries, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &JournalEntry> {
        self.entries.iter()
    }

    /// The configured ring capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Rebuilds a journal from checkpointed state: `entries` oldest
    /// first, with the eviction counter restored. Oversized inputs keep
    /// the newest `capacity` entries (without bumping the counter —
    /// the counter is part of the restored state, not of this call).
    /// `kind` labels are static strings, so checkpoint codecs must
    /// re-intern decoded labels against the emitting crate's kind
    /// table before calling.
    pub fn restore(capacity: usize, evicted: u64, entries: Vec<JournalEntry>) -> EventJournal {
        let keep = entries.len().min(capacity);
        let skip = entries.len() - keep;
        let mut j = EventJournal::new(capacity);
        j.evicted = evicted;
        j.entries.extend(entries.into_iter().skip(skip));
        j
    }

    /// Number of entries evicted by the ring bound.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the journal holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Appends this journal's entries to `out` as JSON Lines, one
    /// object per entry, tagged with `router`. The format is stable:
    /// `{"t_us":N,"router":N,"event":"...","value":N}`.
    pub fn dump_jsonl(&self, router: u32, out: &mut String) {
        use std::fmt::Write;
        for e in &self.entries {
            // kind is a static identifier chosen in code — no escaping
            // needed beyond being plain ASCII.
            writeln!(
                out,
                "{{\"t_us\":{},\"router\":{},\"event\":\"{}\",\"value\":{}}}",
                e.t_us, router, e.kind, e.value
            )
            .expect("write to String cannot fail");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_evicts_oldest() {
        let mut j = EventJournal::new(2);
        j.record(1, "a", 0);
        j.record(2, "b", 0);
        j.record(3, "c", 0);
        let kinds: Vec<_> = j.entries().map(|e| e.kind).collect();
        assert_eq!(kinds, vec!["b", "c"]);
        assert_eq!(j.evicted(), 1);
        assert_eq!(j.len(), 2);
    }

    #[test]
    fn zero_capacity_is_disabled() {
        let mut j = EventJournal::new(0);
        j.record(1, "a", 0);
        assert!(j.is_empty());
        assert_eq!(j.evicted(), 0);
    }

    #[test]
    fn span_emits_begin_and_end() {
        let mut j = EventJournal::new(8);
        j.record_span(10, 30, "verify", 1);
        let got: Vec<_> = j.entries().copied().collect();
        assert_eq!(
            got,
            vec![
                JournalEntry { t_us: 10, kind: "verify", value: 0 },
                JournalEntry { t_us: 30, kind: "verify", value: 1 },
            ]
        );
    }

    #[test]
    fn jsonl_is_stable() {
        let mut j = EventJournal::new(4);
        j.record(7, "best_change", 2);
        let mut out = String::new();
        j.dump_jsonl(64, &mut out);
        assert_eq!(out, "{\"t_us\":7,\"router\":64,\"event\":\"best_change\",\"value\":2}\n");
    }
}
