//! The metrics registry: typed counters, gauges, and fixed-bucket
//! histograms, addressed by `(name, label set)`.
//!
//! Registration interns the series and returns a `Copy` handle
//! ([`CounterId`], [`GaugeId`], [`HistogramId`]) that call sites cache;
//! the hot-path operations ([`MetricsRegistry::inc`],
//! [`MetricsRegistry::observe`]) are a bounds-checked array index and
//! an add — no hashing, no allocation, no locks. Registries are plain
//! values: per-shard code builds its own registry and the coordinator
//! folds the [`Snapshot`]s together afterwards, which keeps the
//! determinism story trivial (sums commute) instead of relying on
//! atomic-ordering arguments.
//!
//! Snapshots are canonical: series sorted by `(name, labels)`, label
//! pairs in registration order. Two registries that saw the same
//! traffic — in any order, folded any way — snapshot to the same bytes.

use crate::histogram::Histogram;

/// A label set: `(key, value)` pairs. Keys are static (label schemas
/// are code, not data); values are runtime strings (`router="64"`,
/// `security_mode="signed"`, `strategy="route-leak"`, `shard="3"`).
pub type LabelSet = Vec<(&'static str, String)>;

/// Handle to a registered counter. Cheap to copy, cache at call sites.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to a registered gauge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GaugeId(usize);

/// Handle to a registered histogram.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistogramId(usize);

struct SeriesMeta {
    name: &'static str,
    labels: LabelSet,
}

/// The registry. See the module docs for the design contract.
#[derive(Default)]
pub struct MetricsRegistry {
    counter_meta: Vec<SeriesMeta>,
    counter_vals: Vec<u64>,
    gauge_meta: Vec<SeriesMeta>,
    gauge_vals: Vec<f64>,
    hist_meta: Vec<SeriesMeta>,
    hist_vals: Vec<Histogram>,
}

fn find(meta: &[SeriesMeta], name: &'static str, labels: &LabelSet) -> Option<usize> {
    meta.iter().position(|m| m.name == name && &m.labels == labels)
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Interns (or finds) the counter `name{labels}` and returns its
    /// handle. Registration is linear in the series count — do it once
    /// and cache the id, not per increment.
    pub fn counter(&mut self, name: &'static str, labels: &LabelSet) -> CounterId {
        if let Some(i) = find(&self.counter_meta, name, labels) {
            return CounterId(i);
        }
        self.counter_meta.push(SeriesMeta { name, labels: labels.clone() });
        self.counter_vals.push(0);
        CounterId(self.counter_vals.len() - 1)
    }

    /// Adds `by` to a counter.
    pub fn inc(&mut self, id: CounterId, by: u64) {
        self.counter_vals[id.0] += by;
    }

    /// Interns (or finds) the gauge `name{labels}`.
    pub fn gauge(&mut self, name: &'static str, labels: &LabelSet) -> GaugeId {
        if let Some(i) = find(&self.gauge_meta, name, labels) {
            return GaugeId(i);
        }
        self.gauge_meta.push(SeriesMeta { name, labels: labels.clone() });
        self.gauge_vals.push(0.0);
        GaugeId(self.gauge_vals.len() - 1)
    }

    /// Sets a gauge to `v` (last write wins).
    pub fn set_gauge(&mut self, id: GaugeId, v: f64) {
        self.gauge_vals[id.0] = v;
    }

    /// Interns (or finds) the histogram `name{labels}` with the given
    /// inclusive bucket bounds.
    ///
    /// # Panics
    /// If the series already exists with different bounds.
    pub fn histogram(
        &mut self,
        name: &'static str,
        labels: &LabelSet,
        bounds: &[u64],
    ) -> HistogramId {
        if let Some(i) = find(&self.hist_meta, name, labels) {
            assert_eq!(
                self.hist_vals[i].bounds(),
                bounds,
                "histogram {name} re-registered with different bounds"
            );
            return HistogramId(i);
        }
        self.hist_meta.push(SeriesMeta { name, labels: labels.clone() });
        self.hist_vals.push(Histogram::new(bounds));
        HistogramId(self.hist_vals.len() - 1)
    }

    /// Records one observation into a histogram.
    pub fn observe(&mut self, id: HistogramId, v: u64) {
        self.hist_vals[id.0].observe(v);
    }

    /// The canonical snapshot: every series, sorted by `(name, labels)`.
    pub fn snapshot(&self) -> Snapshot {
        let mut series = Vec::with_capacity(
            self.counter_vals.len() + self.gauge_vals.len() + self.hist_vals.len(),
        );
        for (m, &v) in self.counter_meta.iter().zip(&self.counter_vals) {
            series.push(Series::new(m, Value::Counter(v)));
        }
        for (m, &v) in self.gauge_meta.iter().zip(&self.gauge_vals) {
            series.push(Series::new(m, Value::Gauge(v)));
        }
        for (m, h) in self.hist_meta.iter().zip(&self.hist_vals) {
            series.push(Series::new(m, Value::Histogram(h.clone())));
        }
        let mut snap = Snapshot { series };
        snap.canonicalize();
        snap
    }
}

/// One series in a [`Snapshot`].
#[derive(Clone, Debug, PartialEq)]
pub struct Series {
    /// Metric name (`pvr_router_updates_rx_total`, ...).
    pub name: String,
    /// Label pairs, in registration order.
    pub labels: Vec<(String, String)>,
    /// The sampled value.
    pub value: Value,
}

impl Series {
    fn new(meta: &SeriesMeta, value: Value) -> Series {
        Series {
            name: meta.name.to_string(),
            labels: meta.labels.iter().map(|(k, v)| (k.to_string(), v.clone())).collect(),
            value,
        }
    }
}

/// A sampled value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// Monotonic count; merges by addition.
    Counter(u64),
    /// Point-in-time value; merges by addition (derived ratios are
    /// computed at exposition time from counters, not merged).
    Gauge(f64),
    /// Fixed-bucket histogram; merges bucket-for-bucket.
    Histogram(Histogram),
}

/// A canonical, order-independent view of a registry: series sorted by
/// `(name, labels)`. This is the unit of comparison in determinism
/// tests and the input to the exposition formats.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Snapshot {
    /// The series, in canonical order.
    pub series: Vec<Series>,
}

impl Snapshot {
    fn canonicalize(&mut self) {
        self.series.sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
    }

    /// Folds `other` into `self`: matching `(name, labels)` series
    /// combine (counters and histograms add, gauges add), new series
    /// are inserted. Because every combine rule is commutative and
    /// associative and the result is re-canonicalized, folding
    /// per-shard snapshots in any order yields the same bytes as the
    /// serial engine's single registry.
    ///
    /// # Panics
    /// If a series appears with two different value types or histogram
    /// shapes.
    pub fn merge(&mut self, other: &Snapshot) {
        for s in &other.series {
            match self.series.iter_mut().find(|m| m.name == s.name && m.labels == s.labels) {
                Some(mine) => match (&mut mine.value, &s.value) {
                    (Value::Counter(a), Value::Counter(b)) => *a += b,
                    (Value::Gauge(a), Value::Gauge(b)) => *a += b,
                    (Value::Histogram(a), Value::Histogram(b)) => a.merge(b),
                    _ => panic!("series {} merged with a different type", s.name),
                },
                None => self.series.push(s.clone()),
            }
        }
        self.canonicalize();
    }

    /// A copy without the series whose *name* matches `pred`. Used by
    /// the determinism tests to drop the documented verify-cache-hit
    /// carve-out before comparing serial and sharded snapshots.
    pub fn without(&self, pred: impl Fn(&str) -> bool) -> Snapshot {
        Snapshot { series: self.series.iter().filter(|s| !pred(&s.name)).cloned().collect() }
    }

    /// Convenience for tests: the value of the unique counter `name`
    /// (any labels), summed across label sets.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        let mut found = None;
        for s in &self.series {
            if s.name == name {
                if let Value::Counter(v) = s.value {
                    *found.get_or_insert(0) += v;
                }
            }
        }
        found
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels(mode: &str) -> LabelSet {
        vec![("security_mode", mode.to_string())]
    }

    #[test]
    fn handles_are_stable_and_interned() {
        let mut r = MetricsRegistry::new();
        let a = r.counter("pvr_x_total", &labels("plain"));
        let b = r.counter("pvr_x_total", &labels("plain"));
        let c = r.counter("pvr_x_total", &labels("signed"));
        assert_eq!(a, b);
        assert_ne!(a, c);
        r.inc(a, 2);
        r.inc(b, 3);
        assert_eq!(r.snapshot().counter_value("pvr_x_total"), Some(5));
    }

    #[test]
    fn snapshot_order_is_canonical() {
        // Register in one order...
        let mut r1 = MetricsRegistry::new();
        let x = r1.counter("pvr_b_total", &labels("plain"));
        let y = r1.counter("pvr_a_total", &labels("plain"));
        r1.inc(x, 1);
        r1.inc(y, 2);
        // ...and the reverse order.
        let mut r2 = MetricsRegistry::new();
        let y = r2.counter("pvr_a_total", &labels("plain"));
        let x = r2.counter("pvr_b_total", &labels("plain"));
        r2.inc(y, 2);
        r2.inc(x, 1);
        assert_eq!(r1.snapshot(), r2.snapshot());
    }

    #[test]
    fn merge_folds_shards_into_the_serial_view() {
        // "Serial": one registry sees everything.
        let mut serial = MetricsRegistry::new();
        let id = serial.counter("pvr_events_total", &labels("plain"));
        serial.inc(id, 10);
        let h = serial.histogram("pvr_lat", &labels("plain"), &[10, 100]);
        serial.observe(h, 5);
        serial.observe(h, 50);

        // "Sharded": two registries split the same traffic.
        let mut s0 = MetricsRegistry::new();
        let id = s0.counter("pvr_events_total", &labels("plain"));
        s0.inc(id, 4);
        let h = s0.histogram("pvr_lat", &labels("plain"), &[10, 100]);
        s0.observe(h, 5);
        let mut s1 = MetricsRegistry::new();
        let id = s1.counter("pvr_events_total", &labels("plain"));
        s1.inc(id, 6);
        let h = s1.histogram("pvr_lat", &labels("plain"), &[10, 100]);
        s1.observe(h, 50);

        let mut folded = s0.snapshot();
        folded.merge(&s1.snapshot());
        assert_eq!(folded, serial.snapshot());

        // Fold order does not matter.
        let mut folded_rev = s1.snapshot();
        folded_rev.merge(&s0.snapshot());
        assert_eq!(folded_rev, serial.snapshot());
    }

    #[test]
    fn without_drops_the_carve_out() {
        let mut r = MetricsRegistry::new();
        let a = r.counter("pvr_router_verify_cache_hits_total", &labels("signed"));
        let b = r.counter("pvr_router_verify_calls_total", &labels("signed"));
        r.inc(a, 1);
        r.inc(b, 2);
        let snap = r.snapshot().without(|n| n.contains("verify_cache_hit"));
        assert_eq!(snap.counter_value("pvr_router_verify_cache_hits_total"), None);
        assert_eq!(snap.counter_value("pvr_router_verify_calls_total"), Some(2));
    }
}
