//! # pvr-obs — deterministic telemetry for the PVR workspace
//!
//! Counters tell you *what* happened; this crate also records *when*,
//! without ever consulting a wall clock. Everything here is built
//! around one rule, stated once and enforced everywhere:
//!
//! > **The sim-time-only tracing rule.** Every timestamp on the
//! > determinism-critical path is simulator virtual time (`u64`
//! > microseconds, as produced by `pvr_netsim::SimTime::as_micros`).
//! > Wall-clock time may appear only in fields the CI determinism gate
//! > already strips (`wall_secs`, `events_per_sec`), never in a metric
//! > sample, journal entry, or timeline window.
//!
//! Under that rule, two runs of the same workload — serial or sharded,
//! one thread or sixteen — produce byte-identical telemetry, so the
//! observability layer inherits the engine's determinism contract
//! instead of eroding it. The one documented exception is the
//! verify-cache hit family (`*verify_cache_hit*`): per-shard caches
//! legitimately see fewer hits than the serial engine's network-wide
//! cache, so those series are excluded from cross-engine comparisons
//! (see [`Snapshot::without`]).
//!
//! The pieces:
//!
//! * [`registry`] — typed counters, gauges, and fixed-bucket
//!   histograms with label sets; allocation-light [`CounterId`]-style
//!   handles cached at call sites; deterministic [`Snapshot`] and
//!   merge so per-shard registries fold into one network view in the
//!   same order as the serial engine.
//! * [`histogram`] — the fixed-bucket histogram behind the registry
//!   (`le` buckets are inclusive upper bounds, Prometheus-style).
//! * [`journal`] — per-router ring-buffered event journal stamped
//!   with sim-time; dumps to JSONL for forensic replay.
//! * [`timeline`] — per-window accumulators (events, queue depth, RIB
//!   churn, verify traffic) rendered as a convergence timeline table.
//! * [`expo`] — Prometheus text format and `pvr-bench-v1`-compatible
//!   JSON exposition of a [`Snapshot`].
//!
//! The [`metric_struct!`] macro declares a stats struct's fields once
//! and generates the struct, its `add` fold, and its registry export,
//! keeping legacy views (`RouterStats`, `SimStats`) in lockstep with
//! the registry by construction.

pub mod expo;
pub mod histogram;
pub mod journal;
pub mod registry;
pub mod timeline;

pub use histogram::Histogram;
pub use journal::{EventJournal, JournalEntry};
pub use registry::{
    CounterId, GaugeId, HistogramId, LabelSet, MetricsRegistry, Series, Snapshot, Value,
};
pub use timeline::{ConvergenceTimeline, TimelineRecorder, TimelineWindow};

/// Declares a stats struct once and derives everything the workspace
/// needs from the single field list: the struct itself (all fields
/// `pub u64`, with docs), the commutative [`add`](MetricsRegistry)
/// fold, a `fields()` reflection used by tests and expositions, and
/// `export_metrics`, which registers every field as a
/// `<prefix>_<field>_total` counter in a [`MetricsRegistry`].
///
/// Struct-specific projections (e.g. `RouterStats::shard_invariant`,
/// the verify-cache carve-out) stay handwritten next to the macro
/// invocation — the macro guarantees field parity between the struct
/// and the registry, not policy.
#[macro_export]
macro_rules! metric_struct {
    (
        $(#[$meta:meta])*
        pub struct $name:ident, prefix = $prefix:literal {
            $(
                $(#[$fmeta:meta])*
                pub $field:ident: u64,
            )*
        }
    ) => {
        $(#[$meta])*
        #[derive(Clone, Debug, Default, PartialEq, Eq)]
        pub struct $name {
            $(
                $(#[$fmeta])*
                pub $field: u64,
            )*
        }

        impl $name {
            /// Accumulates `other` into `self`, field by field. The
            /// fold is commutative and associative, so totals are
            /// independent of visit order (serial ASN order or
            /// per-shard then across shards).
            pub fn add(&mut self, other: &$name) {
                $( self.$field += other.$field; )*
            }

            /// Every field as a `(name, value)` pair, in declaration
            /// order. This is the parity contract between the struct
            /// and the registry: expositions and tests enumerate
            /// fields through here, so a field added to the struct
            /// cannot be silently missing from the metrics.
            pub fn fields(&self) -> ::std::vec::Vec<(&'static str, u64)> {
                ::std::vec![ $( (stringify!($field), self.$field), )* ]
            }

            /// Rebuilds the struct from `(name, value)` pairs — the
            /// inverse of [`fields`](Self::fields). Every declared
            /// field must appear exactly once and no unknown names may
            /// appear, so a checkpoint written by a build with a
            /// different field list is rejected instead of silently
            /// zero-filled or misassigned.
            pub fn from_fields<'a, I>(pairs: I) -> ::std::option::Option<$name>
            where
                I: ::std::iter::IntoIterator<Item = (&'a str, u64)>,
            {
                const FIELD_COUNT: usize = [$(stringify!($field)),*].len();
                let mut out = <$name as ::std::default::Default>::default();
                let mut seen = [false; FIELD_COUNT];
                for (name, value) in pairs {
                    let mut matched = false;
                    let mut slot = 0usize;
                    $(
                        if name == stringify!($field) {
                            if seen[slot] {
                                return ::std::option::Option::None;
                            }
                            seen[slot] = true;
                            out.$field = value;
                            matched = true;
                        }
                        slot += 1;
                    )*
                    let _ = slot;
                    if !matched {
                        return ::std::option::Option::None;
                    }
                }
                if seen.iter().all(|s| *s) {
                    ::std::option::Option::Some(out)
                } else {
                    ::std::option::Option::None
                }
            }

            /// Registers every field as a counter named
            /// `<prefix>_<field>_total` under `labels` and adds the
            /// current values. Safe to call repeatedly (counters
            /// accumulate), so per-shard views can be folded straight
            /// into one registry.
            pub fn export_metrics(
                &self,
                registry: &mut $crate::MetricsRegistry,
                labels: &$crate::LabelSet,
            ) {
                $(
                    let id = registry.counter(
                        concat!($prefix, "_", stringify!($field), "_total"),
                        labels,
                    );
                    registry.inc(id, self.$field);
                )*
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::registry::{LabelSet, MetricsRegistry};

    metric_struct! {
        /// A test stats struct.
        pub struct DemoStats, prefix = "pvr_demo" {
            /// Things seen.
            pub seen: u64,
            /// Things kept.
            pub kept: u64,
        }
    }

    #[test]
    fn macro_generates_fields_add_and_export() {
        let mut a = DemoStats { seen: 3, kept: 1 };
        let b = DemoStats { seen: 2, kept: 5 };
        a.add(&b);
        assert_eq!(a, DemoStats { seen: 5, kept: 6 });
        assert_eq!(a.fields(), vec![("seen", 5), ("kept", 6)]);

        let mut reg = MetricsRegistry::new();
        let labels: LabelSet = vec![("security_mode", "plain".to_string())];
        a.export_metrics(&mut reg, &labels);
        a.export_metrics(&mut reg, &labels); // accumulates
        let snap = reg.snapshot();
        assert_eq!(snap.counter_value("pvr_demo_seen_total"), Some(10));
        assert_eq!(snap.counter_value("pvr_demo_kept_total"), Some(12));
    }

    #[test]
    fn from_fields_inverts_fields() {
        let a = DemoStats { seen: 3, kept: 9 };
        let pairs = a.fields();
        assert_eq!(DemoStats::from_fields(pairs.iter().copied()), Some(a));
        // Unknown, missing, and duplicate names are all rejected.
        assert_eq!(DemoStats::from_fields([("seen", 1), ("bogus", 2)]), None);
        assert_eq!(DemoStats::from_fields([("seen", 1)]), None);
        assert_eq!(DemoStats::from_fields([("seen", 1), ("seen", 2), ("kept", 0)]), None);
    }
}
