//! Fixed-bucket histograms.
//!
//! Buckets are declared once, at registration time, as a sorted list
//! of inclusive upper bounds (`le`, Prometheus semantics): an
//! observation `v` lands in the first bucket with `v <= le`, and every
//! histogram carries an implicit `+Inf` bucket so no observation is
//! lost. Values are `u64` in the caller's native unit — sim-time
//! microseconds for latencies, counts for sizes — which keeps the
//! merge arithmetic exact and platform-independent (no floats on the
//! determinism path).

/// A fixed-bucket histogram: cumulative-style rendering is left to the
/// exposition layer; internally each bucket stores only its own count.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    /// Inclusive upper bounds, strictly increasing. The implicit
    /// `+Inf` bucket is `overflow`, not an entry here.
    bounds: Vec<u64>,
    /// `counts[i]` = observations with `v <= bounds[i]` and
    /// `v > bounds[i-1]`.
    counts: Vec<u64>,
    /// Observations above the last bound (the `+Inf` bucket).
    overflow: u64,
    /// Sum of all observed values (exact, saturating).
    sum: u64,
    /// Total number of observations.
    count: u64,
}

impl Histogram {
    /// Creates a histogram with the given inclusive upper bounds.
    ///
    /// # Panics
    /// If `bounds` is empty or not strictly increasing.
    pub fn new(bounds: &[u64]) -> Histogram {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len()],
            overflow: 0,
            sum: 0,
            count: 0,
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, v: u64) {
        match self.bounds.iter().position(|&le| v <= le) {
            Some(i) => self.counts[i] += 1,
            None => self.overflow += 1,
        }
        self.sum = self.sum.saturating_add(v);
        self.count += 1;
    }

    /// Folds `other` into `self`.
    ///
    /// # Panics
    /// If the bucket bounds differ — merging histograms with different
    /// shapes silently misattributes observations, so it is a bug.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.bounds, other.bounds, "merging histograms with different bounds");
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.overflow += other.overflow;
        self.sum = self.sum.saturating_add(other.sum);
        self.count += other.count;
    }

    /// The configured inclusive upper bounds (without `+Inf`).
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Cumulative counts per bound, Prometheus `le` semantics: entry
    /// `i` is the number of observations `<= bounds[i]`. The final
    /// `+Inf` count equals [`count`](Histogram::count).
    pub fn cumulative(&self) -> Vec<u64> {
        let mut acc = 0;
        self.counts
            .iter()
            .map(|c| {
                acc += c;
                acc
            })
            .collect()
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundary_values_land_in_the_lower_bucket() {
        // `le` is inclusive: an observation exactly on a bound belongs
        // to that bound's bucket, not the next one up.
        let mut h = Histogram::new(&[10, 100, 1000]);
        h.observe(10);
        h.observe(11);
        h.observe(100);
        h.observe(1000);
        h.observe(1001);
        assert_eq!(h.cumulative(), vec![1, 3, 4]);
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 10 + 11 + 100 + 1000 + 1001);
    }

    #[test]
    fn zero_lands_in_the_first_bucket() {
        let mut h = Histogram::new(&[1, 2]);
        h.observe(0);
        assert_eq!(h.cumulative(), vec![1, 1]);
    }

    #[test]
    fn overflow_goes_to_inf_only() {
        let mut h = Histogram::new(&[5]);
        h.observe(6);
        assert_eq!(h.cumulative(), vec![0]);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn merge_adds_bucket_for_bucket() {
        let mut a = Histogram::new(&[10, 20]);
        let mut b = Histogram::new(&[10, 20]);
        a.observe(5);
        b.observe(15);
        b.observe(25);
        a.merge(&b);
        assert_eq!(a.cumulative(), vec![1, 2]);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum(), 45);
    }

    #[test]
    #[should_panic(expected = "different bounds")]
    fn merge_rejects_mismatched_bounds() {
        let mut a = Histogram::new(&[10]);
        let b = Histogram::new(&[20]);
        a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn bounds_must_increase() {
        Histogram::new(&[10, 10]);
    }
}
