//! Convergence timelines: fixed sim-time windows, a handful of
//! channels per window, and a renderer.
//!
//! A [`TimelineRecorder`] is the raw accumulator — `channels` parallel
//! `u64` values per window, where a window is `[k*window_us,
//! (k+1)*window_us)` of *simulator virtual time* (the crate's
//! sim-time-only tracing rule: wall-clock never appears here).
//! Channels are either counted into ([`TimelineRecorder::add`]) or
//! sampled ([`TimelineRecorder::set`], last write wins — used for
//! queue depth, which both engines sample at the same deterministic
//! points: whenever a sim-time instant fully drains).
//!
//! Recorders are per-owner (the simulator keeps one, each router keeps
//! one) and merge by channel-wise addition, so the sharded engine's
//! per-router recorders fold to exactly the serial engine's view. The
//! merged channels are then assembled into a [`ConvergenceTimeline`] —
//! the operator-facing table of events/sec, queue depth, RIB churn and
//! verify-cache traffic per window. As everywhere in the workspace,
//! `verify_cache_hits` is the one engine-dependent column; comparisons
//! across engines go through [`ConvergenceTimeline::zero_cache_hits`].

use std::collections::BTreeMap;
use std::fmt::Write;

/// Simulator channel: events processed (counted).
pub const SIM_EVENTS: usize = 0;
/// Simulator channel: payload deliveries (counted).
pub const SIM_DELIVERED: usize = 1;
/// Simulator channel: pending-event queue depth (sampled, last wins).
pub const SIM_QUEUE_DEPTH: usize = 2;
/// Number of simulator channels.
pub const SIM_CHANNELS: usize = 3;

/// Router channel: best-route changes, i.e. RIB churn (counted).
pub const RT_RIB_CHURN: usize = 0;
/// Router channel: attestation verifications requested (counted).
pub const RT_VERIFY_CALLS: usize = 1;
/// Router channel: verifications answered by the cache (counted).
/// Engine-dependent — see the carve-out in the module docs.
pub const RT_VERIFY_HITS: usize = 2;
/// Router channel: withdraws flooded to neighbors (counted) — the
/// churn channel: fault-driven teardowns and workload withdrawals both
/// land here, making withdraw storms visible per window.
pub const RT_WITHDRAWS: usize = 3;
/// Number of router channels.
pub const RT_CHANNELS: usize = 4;

/// SMC channel: private-verification requests flushed (counted).
/// These channels feed the *verifier-owned* recorder (one per
/// `PrivateVerifier`), kept deliberately separate from the simulator
/// and router recorders so enabling private verification never changes
/// the channel layout — or the bytes — of the e15 timeline.
pub const SMC_REQUESTS: usize = 0;
/// SMC channel: batches executed (counted).
pub const SMC_BATCHES: usize = 1;
/// SMC channel: lane slots provisioned across those batches (counted;
/// batches × lane capacity) — [`SMC_REQUESTS`]` / `[`SMC_LANES`] is
/// the per-window batch occupancy.
pub const SMC_LANES: usize = 2;
/// SMC channel: communication rounds charged to the cost model
/// (counted; rounds are shared across a batch's lanes — the win
/// bit-slicing buys).
pub const SMC_ROUNDS: usize = 3;
/// Number of SMC channels.
pub const SMC_CHANNELS: usize = 4;

/// Per-window accumulator. See the module docs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TimelineRecorder {
    window_us: u64,
    channels: usize,
    cells: BTreeMap<u64, Vec<u64>>,
}

impl TimelineRecorder {
    /// A recorder with `channels` channels and `window_us`-wide
    /// windows of sim-time.
    ///
    /// # Panics
    /// If `window_us` or `channels` is zero.
    pub fn new(window_us: u64, channels: usize) -> TimelineRecorder {
        assert!(window_us > 0, "timeline window must be positive");
        assert!(channels > 0, "timeline needs at least one channel");
        TimelineRecorder { window_us, channels, cells: BTreeMap::new() }
    }

    fn cell(&mut self, t_us: u64) -> &mut Vec<u64> {
        let start = t_us - t_us % self.window_us;
        let channels = self.channels;
        self.cells.entry(start).or_insert_with(|| vec![0; channels])
    }

    /// Adds `n` to channel `ch` in the window containing sim-time
    /// `t_us`.
    pub fn add(&mut self, t_us: u64, ch: usize, n: u64) {
        self.cell(t_us)[ch] += n;
    }

    /// Samples channel `ch` in the window containing `t_us` (last
    /// write wins). Use for level-style channels like queue depth.
    pub fn set(&mut self, t_us: u64, ch: usize, v: u64) {
        self.cell(t_us)[ch] = v;
    }

    /// Channel-wise addition of `other` into `self`.
    ///
    /// # Panics
    /// If window widths or channel counts differ.
    pub fn merge(&mut self, other: &TimelineRecorder) {
        assert_eq!(self.window_us, other.window_us, "merging recorders with different windows");
        assert_eq!(self.channels, other.channels, "merging recorders with different channels");
        for (&start, vals) in &other.cells {
            let channels = self.channels;
            let cell = self.cells.entry(start).or_insert_with(|| vec![0; channels]);
            for (c, v) in cell.iter_mut().zip(vals) {
                *c += v;
            }
        }
    }

    /// Window width in sim-time microseconds.
    pub fn window_us(&self) -> u64 {
        self.window_us
    }

    /// Number of channels per window.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// The raw cells: window start (µs) → per-channel values.
    pub fn cells(&self) -> &BTreeMap<u64, Vec<u64>> {
        &self.cells
    }

    /// Rebuilds a recorder from checkpointed state, the inverse of
    /// reading [`window_us`](Self::window_us),
    /// [`channels`](Self::channels) and [`cells`](Self::cells).
    ///
    /// # Panics
    /// Under the same conditions as [`new`](Self::new), or when a cell
    /// disagrees with `channels` — checkpoint codecs must validate
    /// shapes before constructing (their integrity layer rejects
    /// corrupt bytes first).
    pub fn from_cells(
        window_us: u64,
        channels: usize,
        cells: BTreeMap<u64, Vec<u64>>,
    ) -> TimelineRecorder {
        assert!(window_us > 0, "timeline window must be positive");
        assert!(channels > 0, "timeline needs at least one channel");
        for cell in cells.values() {
            assert_eq!(cell.len(), channels, "cell width disagrees with channel count");
        }
        TimelineRecorder { window_us, channels, cells }
    }
}

/// One rendered timeline window.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TimelineWindow {
    /// Window start, sim-time microseconds.
    pub start_us: u64,
    /// Simulator events processed in the window.
    pub events: u64,
    /// Payload deliveries in the window.
    pub delivered: u64,
    /// Queue depth when the window's last sim-instant drained.
    pub queue_depth: u64,
    /// Best-route changes (RIB churn) across all routers.
    pub rib_churn: u64,
    /// Attestation verifications requested.
    pub verify_calls: u64,
    /// Verifications served from cache (engine-dependent; excluded
    /// from cross-engine comparisons).
    pub verify_cache_hits: u64,
    /// Withdraws flooded to neighbors across all routers.
    pub withdraws: u64,
}

/// The operator-facing convergence timeline: sim/router channels
/// joined per window, in ascending window order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConvergenceTimeline {
    /// Window width, sim-time microseconds.
    pub window_us: u64,
    /// The windows, ascending by `start_us`. Windows with no activity
    /// on any channel are absent, not zero-filled.
    pub windows: Vec<TimelineWindow>,
}

impl ConvergenceTimeline {
    /// Joins a simulator recorder ([`SIM_CHANNELS`]) and the merged
    /// router recorder ([`RT_CHANNELS`]) into one timeline.
    ///
    /// # Panics
    /// If the recorders disagree on window width or were built with
    /// the wrong channel counts.
    pub fn assemble(sim: &TimelineRecorder, routers: &TimelineRecorder) -> ConvergenceTimeline {
        assert_eq!(sim.window_us, routers.window_us, "sim/router timeline windows differ");
        assert_eq!(sim.channels, SIM_CHANNELS, "sim recorder has wrong channel count");
        assert_eq!(routers.channels, RT_CHANNELS, "router recorder has wrong channel count");
        let mut by_start: BTreeMap<u64, TimelineWindow> = BTreeMap::new();
        for (&start, v) in &sim.cells {
            let w = by_start
                .entry(start)
                .or_insert(TimelineWindow { start_us: start, ..Default::default() });
            w.events = v[SIM_EVENTS];
            w.delivered = v[SIM_DELIVERED];
            w.queue_depth = v[SIM_QUEUE_DEPTH];
        }
        for (&start, v) in &routers.cells {
            let w = by_start
                .entry(start)
                .or_insert(TimelineWindow { start_us: start, ..Default::default() });
            w.rib_churn = v[RT_RIB_CHURN];
            w.verify_calls = v[RT_VERIFY_CALLS];
            w.verify_cache_hits = v[RT_VERIFY_HITS];
            w.withdraws = v[RT_WITHDRAWS];
        }
        ConvergenceTimeline { window_us: sim.window_us, windows: by_start.into_values().collect() }
    }

    /// The carve-out projection: a copy with `verify_cache_hits`
    /// zeroed in every window, suitable for byte-identity assertions
    /// between the serial and sharded engines.
    pub fn zero_cache_hits(&self) -> ConvergenceTimeline {
        let mut t = self.clone();
        for w in &mut t.windows {
            w.verify_cache_hits = 0;
        }
        t
    }

    /// Events per *sim-time* second in `w` — a deterministic rate,
    /// unlike wall-clock events/sec.
    pub fn events_per_sim_sec(&self, w: &TimelineWindow) -> u64 {
        w.events * 1_000_000 / self.window_us
    }

    /// Renders the timeline as a fixed-width table. The `hit%` column
    /// derives from the carve-out channel and is the only column that
    /// may differ between engines.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        writeln!(
            out,
            "{:>10}  {:>8}  {:>10}  {:>7}  {:>9}  {:>9}  {:>8}  {:>5}",
            "window(ms)",
            "events",
            "ev/simsec",
            "queue",
            "rib-churn",
            "withdraws",
            "verifies",
            "hit%"
        )
        .expect("write to String cannot fail");
        for w in &self.windows {
            let hit_pct = match (w.verify_cache_hits * 100).checked_div(w.verify_calls) {
                None => "-".to_string(),
                Some(pct) => pct.to_string(),
            };
            writeln!(
                out,
                "{:>10}  {:>8}  {:>10}  {:>7}  {:>9}  {:>9}  {:>8}  {:>5}",
                w.start_us / 1000,
                w.events,
                self.events_per_sim_sec(w),
                w.queue_depth,
                w.rib_churn,
                w.withdraws,
                w.verify_calls,
                hit_pct
            )
            .expect("write to String cannot fail");
        }
        out
    }

    /// Compact JSON array of the windows, for the harness's
    /// `pvr-bench-v1` metrics section. All fields are sim-time-derived
    /// and deterministic except `verify_cache_hits` (the carve-out,
    /// stripped by `ci/normalize_e14.py`).
    pub fn to_json(&self) -> String {
        let mut out = String::from("[");
        for (i, w) in self.windows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write!(
                out,
                "{{\"start_us\":{},\"events\":{},\"delivered\":{},\"queue_depth\":{},\
                 \"rib_churn\":{},\"withdraws\":{},\"verify_calls\":{},\"verify_cache_hits\":{}}}",
                w.start_us,
                w.events,
                w.delivered,
                w.queue_depth,
                w.rib_churn,
                w.withdraws,
                w.verify_calls,
                w.verify_cache_hits
            )
            .expect("write to String cannot fail");
        }
        out.push(']');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_bucket_by_sim_time() {
        let mut r = TimelineRecorder::new(1000, SIM_CHANNELS);
        r.add(0, SIM_EVENTS, 1);
        r.add(999, SIM_EVENTS, 1);
        r.add(1000, SIM_EVENTS, 1);
        assert_eq!(r.cells().get(&0).unwrap()[SIM_EVENTS], 2);
        assert_eq!(r.cells().get(&1000).unwrap()[SIM_EVENTS], 1);
    }

    #[test]
    fn set_is_last_write_wins() {
        let mut r = TimelineRecorder::new(1000, SIM_CHANNELS);
        r.set(10, SIM_QUEUE_DEPTH, 5);
        r.set(20, SIM_QUEUE_DEPTH, 3);
        assert_eq!(r.cells().get(&0).unwrap()[SIM_QUEUE_DEPTH], 3);
    }

    #[test]
    fn merge_is_channel_wise_addition() {
        let mut a = TimelineRecorder::new(1000, RT_CHANNELS);
        let mut b = TimelineRecorder::new(1000, RT_CHANNELS);
        a.add(100, RT_RIB_CHURN, 2);
        b.add(150, RT_RIB_CHURN, 3);
        b.add(2500, RT_VERIFY_CALLS, 1);
        a.merge(&b);
        assert_eq!(a.cells().get(&0).unwrap()[RT_RIB_CHURN], 5);
        assert_eq!(a.cells().get(&2000).unwrap()[RT_VERIFY_CALLS], 1);
    }

    #[test]
    fn assemble_joins_sim_and_router_channels() {
        let mut sim = TimelineRecorder::new(1000, SIM_CHANNELS);
        sim.add(100, SIM_EVENTS, 4);
        sim.set(100, SIM_QUEUE_DEPTH, 2);
        let mut rt = TimelineRecorder::new(1000, RT_CHANNELS);
        rt.add(100, RT_RIB_CHURN, 1);
        rt.add(1500, RT_VERIFY_CALLS, 2);
        rt.add(1500, RT_VERIFY_HITS, 1);
        let t = ConvergenceTimeline::assemble(&sim, &rt);
        assert_eq!(t.windows.len(), 2);
        assert_eq!(t.windows[0].events, 4);
        assert_eq!(t.windows[0].queue_depth, 2);
        assert_eq!(t.windows[0].rib_churn, 1);
        assert_eq!(t.windows[1].verify_calls, 2);
        assert_eq!(t.zero_cache_hits().windows[1].verify_cache_hits, 0);
        assert_eq!(t.events_per_sim_sec(&t.windows[0]), 4000);
        // Table and JSON render without panicking and mention the data.
        assert!(t.render_table().contains("rib-churn"));
        assert!(t.to_json().starts_with("[{\"start_us\":0,"));
    }
}
