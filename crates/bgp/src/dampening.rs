//! RFC 2439-style route-flap dampening: a per-`(neighbor, prefix)`
//! figure of merit that grows on flaps and decays exponentially.
//!
//! The state machine is the classic one — a penalty accumulates
//! [`DampeningPolicy::penalty_flap`] per flap, decays with half-life
//! [`DampeningPolicy::half_life`], suppresses the route while the
//! penalty sits *above* [`DampeningPolicy::suppress_threshold`], and
//! releases it once the penalty falls *below*
//! [`DampeningPolicy::reuse_threshold`] — but the arithmetic is pure
//! integer math: whole half-lives are right-shifts and the fractional
//! remainder is a piecewise-linear interpolation, so every router in
//! both engines computes bit-identical penalties (no floating-point
//! `exp`, no rounding-mode drift).

use pvr_crypto::encoding::{Reader, Wire, WireError};
use pvr_netsim::{SimDuration, SimTime};

/// Per-router dampening configuration, in RFC 2439's vocabulary.
/// `Copy` so it can ride inside `InstantiateOptions`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DampeningPolicy {
    /// Penalty added per flap (a withdraw of an installed route, or a
    /// session loss covering it).
    pub penalty_flap: u64,
    /// Penalties strictly above this suppress the route.
    pub suppress_threshold: u64,
    /// A suppressed route is released once its penalty falls strictly
    /// below this.
    pub reuse_threshold: u64,
    /// Time for the penalty to halve.
    pub half_life: SimDuration,
    /// Penalty ceiling (RFC 2439's "maximum penalty"); accumulation
    /// saturates here instead of overflowing.
    pub max_penalty: u64,
    /// How often a router with suppressed routes re-evaluates decay
    /// (the reuse-list timer granularity).
    pub reuse_tick: SimDuration,
}

impl Default for DampeningPolicy {
    /// Cisco-flavored defaults, time-scaled to the simulator: classic
    /// dampening thinks in minutes, our churn experiments in hundreds
    /// of milliseconds, so the half-life defaults to 200 ms.
    fn default() -> DampeningPolicy {
        DampeningPolicy {
            penalty_flap: 1000,
            suppress_threshold: 2000,
            reuse_threshold: 750,
            half_life: SimDuration::from_millis(200),
            max_penalty: 16_000,
            reuse_tick: SimDuration::from_millis(50),
        }
    }
}

/// The policy rides inside checkpoint META sections (as part of
/// `InstantiateOptions`), so a restored run dampens identically.
impl Wire for DampeningPolicy {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.penalty_flap.encode(buf);
        self.suppress_threshold.encode(buf);
        self.reuse_threshold.encode(buf);
        self.half_life.encode(buf);
        self.max_penalty.encode(buf);
        self.reuse_tick.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(DampeningPolicy {
            penalty_flap: u64::decode(r)?,
            suppress_threshold: u64::decode(r)?,
            reuse_threshold: u64::decode(r)?,
            half_life: SimDuration::decode(r)?,
            max_penalty: u64::decode(r)?,
            reuse_tick: SimDuration::decode(r)?,
        })
    }
    fn encoded_len(&self) -> usize {
        6 * 8
    }
}

/// Dampening state for one `(neighbor, prefix)` pair.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DampState {
    /// Current figure of merit (post-decay as of `last_decay`).
    pub penalty: u64,
    /// When `penalty` was last decayed.
    pub last_decay: SimTime,
    /// Whether announcements of this pair are currently suppressed.
    pub suppressed: bool,
}

impl DampState {
    /// Fresh state anchored at `now`.
    pub fn new(now: SimTime) -> DampState {
        DampState { penalty: 0, last_decay: now, suppressed: false }
    }

    /// Decays the penalty from `last_decay` to `now`: one right-shift
    /// per whole half-life, then a linear interpolation across the
    /// fractional remainder (`p · (2h − f) / 2h`, exact at `f = 0` and
    /// `f = h`). Integer-only, so identical on every engine.
    pub fn decay_to(&mut self, now: SimTime, policy: &DampeningPolicy) {
        let elapsed = now.since(self.last_decay).as_micros();
        self.last_decay = now;
        if elapsed == 0 || self.penalty == 0 {
            return;
        }
        let h = policy.half_life.as_micros().max(1);
        let whole = elapsed / h;
        let frac = elapsed % h;
        self.penalty = if whole >= 64 { 0 } else { self.penalty >> whole };
        if frac > 0 && self.penalty > 0 {
            // u128 keeps `p · (2h − f)` exact for any h the sim can
            // express (the figure-of-merit overflow case in the tests).
            let num = self.penalty as u128 * (2 * h - frac) as u128;
            self.penalty = (num / (2 * h) as u128) as u64;
        }
    }

    /// Records one flap at `now`: decay, add
    /// [`DampeningPolicy::penalty_flap`] saturating at
    /// [`DampeningPolicy::max_penalty`], and suppress when the result
    /// exceeds the suppress threshold.
    pub fn penalize(&mut self, now: SimTime, policy: &DampeningPolicy) {
        self.decay_to(now, policy);
        self.penalty = self.penalty.saturating_add(policy.penalty_flap).min(policy.max_penalty);
        if self.penalty > policy.suppress_threshold {
            self.suppressed = true;
        }
    }

    /// Decays to `now` and applies the release rule (penalty strictly
    /// below the reuse threshold clears suppression). Returns whether
    /// the pair is suppressed *after* the refresh.
    pub fn refresh(&mut self, now: SimTime, policy: &DampeningPolicy) -> bool {
        self.decay_to(now, policy);
        if self.suppressed && self.penalty < policy.reuse_threshold {
            self.suppressed = false;
        }
        self.suppressed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> DampeningPolicy {
        DampeningPolicy::default()
    }

    #[test]
    fn penalty_accumulates_and_suppresses() {
        let p = policy();
        let mut s = DampState::new(SimTime::ZERO);
        s.penalize(SimTime::ZERO, &p);
        assert_eq!(s.penalty, 1000);
        assert!(!s.suppressed, "one flap stays below the threshold");
        s.penalize(SimTime::ZERO, &p);
        assert_eq!(s.penalty, 2000);
        assert!(!s.suppressed, "penalty exactly at suppress threshold does not suppress");
        s.penalize(SimTime::ZERO, &p);
        assert_eq!(s.penalty, 3000);
        assert!(s.suppressed, "crossing the threshold suppresses");
    }

    #[test]
    fn whole_half_life_halves_exactly() {
        let p = policy();
        let mut s = DampState { penalty: 4000, last_decay: SimTime::ZERO, suppressed: true };
        s.decay_to(SimTime::ZERO + p.half_life, &p);
        assert_eq!(s.penalty, 2000);
        s.decay_to(SimTime(2 * p.half_life.as_micros()), &p);
        assert_eq!(s.penalty, 1000);
    }

    #[test]
    fn fractional_decay_is_linear_between_half_lives() {
        let p = policy();
        let mut s = DampState { penalty: 4000, last_decay: SimTime::ZERO, suppressed: false };
        // Half of one half-life: p · (2h − h/2) / 2h = p · 3/4.
        s.decay_to(SimTime(p.half_life.as_micros() / 2), &p);
        assert_eq!(s.penalty, 3000);
    }

    #[test]
    fn decay_rounding_truncates_deterministically() {
        let p = policy();
        let mut s = DampState { penalty: 3, last_decay: SimTime::ZERO, suppressed: false };
        // 1 µs into a 200 ms half-life: 3 · (400000 − 1) / 400000
        // truncates to 2 — the documented round-toward-zero rule.
        s.decay_to(SimTime(1), &p);
        assert_eq!(s.penalty, 2);
    }

    #[test]
    fn reuse_boundary_is_strict() {
        let p = policy();
        let mut s =
            DampState { penalty: p.reuse_threshold, last_decay: SimTime(5), suppressed: true };
        assert!(s.refresh(SimTime(5), &p), "exactly at reuse threshold stays suppressed");
        s.penalty = p.reuse_threshold - 1;
        assert!(!s.refresh(SimTime(5), &p), "strictly below reuse releases");
    }

    #[test]
    fn figure_of_merit_saturates_at_max() {
        let p = policy();
        let mut s =
            DampState { penalty: p.max_penalty, last_decay: SimTime::ZERO, suppressed: true };
        s.penalize(SimTime::ZERO, &p);
        assert_eq!(s.penalty, p.max_penalty, "penalty saturates, never overflows");
    }

    #[test]
    fn huge_gaps_decay_to_zero_without_shift_overflow() {
        let p = policy();
        let mut s = DampState { penalty: u64::MAX, last_decay: SimTime::ZERO, suppressed: true };
        // > 64 half-lives: a naive `>> whole` would be UB-adjacent; we
        // clamp to zero.
        s.decay_to(SimTime(100 * p.half_life.as_micros()), &p);
        assert_eq!(s.penalty, 0);
        assert!(!s.refresh(SimTime(100 * p.half_life.as_micros()), &p));
    }

    #[test]
    fn decay_is_time_anchored_not_call_anchored() {
        let p = policy();
        let mut a = DampState { penalty: 4000, last_decay: SimTime::ZERO, suppressed: false };
        let mut b = a;
        // One big decay vs. two half-steps must agree at half-life
        // boundaries (the shift is exact there).
        a.decay_to(SimTime(2 * p.half_life.as_micros()), &p);
        b.decay_to(SimTime(p.half_life.as_micros()), &p);
        b.decay_to(SimTime(2 * p.half_life.as_micros()), &p);
        assert_eq!(a.penalty, b.penalty);
    }
}
