//! Routing information bases: Adj-RIB-In, Loc-RIB, Adj-RIB-Out.
//!
//! The Adj-RIB-In is exactly the "set of input routes the AS might
//! receive" against which the paper defines promise violations (§2); the
//! Adj-RIB-Out is what it actually emitted. Keeping all three explicit
//! lets PVR's verifier and the experiments compare permitted vs. actual
//! outputs directly.

use crate::decision::{prefer_refs, Candidate};
use crate::route::Route;
use crate::sorted::SortedMap;
use crate::types::{Asn, Prefix};
use std::cmp::Ordering;
use std::collections::{BTreeSet, HashMap};

/// Routes received from each neighbor, per prefix (post-import-policy).
///
/// Storage shape is chosen for the hot path: the outer per-prefix index
/// is a hash map (hit on every UPDATE, never iterated during event
/// processing — accessors that expose it sort first), while the inner
/// per-neighbor candidate set is a tiny sorted vector, because its
/// ASN-ascending order is what makes the decision process and its
/// tie-breaking deterministic.
#[derive(Clone, Debug, Default)]
pub struct AdjRibIn {
    routes: HashMap<Prefix, SortedMap<Asn, Route>>,
}

impl AdjRibIn {
    /// Creates an empty RIB.
    pub fn new() -> AdjRibIn {
        AdjRibIn::default()
    }

    /// Records `route` from `neighbor`, replacing any previous route for
    /// the same prefix from that neighbor (BGP implicit withdraw).
    pub fn insert(&mut self, neighbor: Asn, route: Route) {
        self.routes.entry(route.prefix).or_default().insert(neighbor, route);
    }

    /// Removes `neighbor`'s route for `prefix`; returns whether one existed.
    pub fn remove(&mut self, neighbor: Asn, prefix: Prefix) -> bool {
        if let Some(per_neighbor) = self.routes.get_mut(&prefix) {
            let removed = per_neighbor.remove(neighbor).is_some();
            if per_neighbor.is_empty() {
                self.routes.remove(&prefix);
            }
            removed
        } else {
            false
        }
    }

    /// All candidates for `prefix`, in deterministic (ASN) order.
    ///
    /// Clones each route; the decision process itself uses
    /// [`AdjRibIn::candidate_refs`] and never materializes this vector.
    /// Kept for tests and external inspection.
    pub fn candidates(&self, prefix: Prefix) -> Vec<Candidate> {
        self.candidate_refs(prefix).map(|(n, r)| Candidate::from_neighbor(r.clone(), n)).collect()
    }

    /// Borrowed candidates for `prefix`, in deterministic (ASN) order.
    pub fn candidate_refs(&self, prefix: Prefix) -> impl Iterator<Item = (Asn, &Route)> {
        self.routes.get(&prefix).into_iter().flat_map(|per| per.iter())
    }

    /// The route `neighbor` currently advertises for `prefix`, if any.
    pub fn get(&self, neighbor: Asn, prefix: Prefix) -> Option<&Route> {
        self.routes.get(&prefix)?.get(neighbor)
    }

    /// All (prefix, route) entries held from `neighbor`, in prefix order.
    pub fn from_neighbor(&self, neighbor: Asn) -> Vec<(Prefix, &Route)> {
        let mut out: Vec<(Prefix, &Route)> =
            self.routes.iter().filter_map(|(&p, per)| per.get(neighbor).map(|r| (p, r))).collect();
        out.sort_by_key(|&(p, _)| p);
        out
    }

    /// All prefixes with at least one route, in prefix order.
    pub fn prefixes(&self) -> impl Iterator<Item = Prefix> + '_ {
        let mut keys: Vec<Prefix> = self.routes.keys().copied().collect();
        keys.sort_unstable();
        keys.into_iter()
    }

    /// Total number of (neighbor, prefix) entries.
    pub fn len(&self) -> usize {
        self.routes.values().map(SortedMap::len).sum()
    }

    /// Number of distinct prefixes with at least one candidate.
    pub fn prefix_count(&self) -> usize {
        self.routes.len()
    }

    /// True if no routes are stored.
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }
}

/// Why a reselection is being run — the incremental decision path's
/// license to skip work.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReselectHint {
    /// Anything may have changed: scan every candidate.
    Full,
    /// Only `neighbor`'s Adj-RIB-In entry for the prefix changed
    /// (inserted, replaced, or removed); every other candidate — the
    /// local one included — is exactly as the last selection left it.
    Neighbor(Asn),
}

/// What a reselection did (statistics for the scale experiment E14).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReselectOutcome {
    /// Selection unchanged after a full candidate scan.
    UnchangedScanned,
    /// Selection unchanged, decided in O(1) from the hint — the new or
    /// removed route loses to the standing best without a rescan.
    UnchangedShortCircuit,
    /// Selection changed.
    Changed,
}

impl ReselectOutcome {
    /// True when the selection changed (the trigger for
    /// re-advertisement).
    pub fn changed(self) -> bool {
        matches!(self, ReselectOutcome::Changed)
    }
}

/// The selected best route per prefix, plus locally originated routes.
#[derive(Clone, Debug, Default)]
pub struct LocRib {
    best: HashMap<Prefix, Candidate>,
}

impl LocRib {
    /// Creates an empty Loc-RIB.
    pub fn new() -> LocRib {
        LocRib::default()
    }

    /// Recomputes the best route for `prefix` from `adj_in` plus any
    /// locally originated candidate. Returns `true` if the selection
    /// changed (the trigger for re-advertisement).
    pub fn reselect(
        &mut self,
        prefix: Prefix,
        adj_in: &AdjRibIn,
        local: Option<&Candidate>,
    ) -> bool {
        self.reselect_with_hint(prefix, adj_in, local, ReselectHint::Full).changed()
    }

    /// [`LocRib::reselect`] with an incremental hint.
    ///
    /// With [`ReselectHint::Neighbor`], an arrival that *loses* to the
    /// standing best (or a withdrawal of a non-best route) is decided
    /// with one comparison and no candidate scan — the common case on a
    /// converged or converging network, where most announcements are
    /// longer-path alternatives to an already-selected route. An
    /// arrival that *beats* the standing best is installed directly:
    /// every other candidate already lost to the old best, so by
    /// transitivity of the ranking none of them needs re-examining.
    ///
    /// The full scan compares candidates by reference (in Adj-RIB-In
    /// order, local candidate last, ties resolved toward the later
    /// candidate exactly like `max_by` over the materialized vector
    /// used to) and clones a route only when the selection actually
    /// changes.
    pub fn reselect_with_hint(
        &mut self,
        prefix: Prefix,
        adj_in: &AdjRibIn,
        local: Option<&Candidate>,
        hint: ReselectHint,
    ) -> ReselectOutcome {
        if let ReselectHint::Neighbor(n) = hint {
            if let Some(cur) = self.best.get(&prefix) {
                // The incremental path applies only when the standing
                // best is *not* the changed neighbor's route (that case
                // needs a rescan: its replacement may have weakened).
                if cur.learned_from != Some(n) {
                    match adj_in.get(n, prefix) {
                        None => return ReselectOutcome::UnchangedShortCircuit,
                        Some(r) => {
                            match prefer_refs(r, Some(n), &cur.route, cur.learned_from) {
                                Ordering::Less => {
                                    return ReselectOutcome::UnchangedShortCircuit;
                                }
                                Ordering::Greater => {
                                    self.best
                                        .insert(prefix, Candidate::from_neighbor(r.clone(), n));
                                    return ReselectOutcome::Changed;
                                }
                                // A tie against the standing best can
                                // only involve degenerate neighbor keys;
                                // resolve it with the full scan's
                                // deterministic order.
                                Ordering::Equal => {}
                            }
                        }
                    }
                }
            }
        }

        // Full scan by reference: later candidates win ties, matching
        // `Iterator::max_by` over [neighbors ascending, local last].
        let mut new_best: Option<(&Route, Option<Asn>)> = None;
        for (n, r) in adj_in.candidate_refs(prefix) {
            new_best = match new_best {
                Some((br, bf)) if prefer_refs(r, Some(n), br, bf) == Ordering::Less => {
                    Some((br, bf))
                }
                _ => Some((r, Some(n))),
            };
        }
        if let Some(l) = local {
            new_best = match new_best {
                Some((br, bf))
                    if prefer_refs(&l.route, l.learned_from, br, bf) == Ordering::Less =>
                {
                    Some((br, bf))
                }
                _ => Some((&l.route, l.learned_from)),
            };
        }
        match new_best {
            Some((route, learned_from)) => {
                let unchanged = self
                    .best
                    .get(&prefix)
                    .is_some_and(|cur| cur.learned_from == learned_from && cur.route == *route);
                if unchanged {
                    ReselectOutcome::UnchangedScanned
                } else {
                    self.best.insert(prefix, Candidate { route: route.clone(), learned_from });
                    ReselectOutcome::Changed
                }
            }
            None => {
                if self.best.remove(&prefix).is_some() {
                    ReselectOutcome::Changed
                } else {
                    ReselectOutcome::UnchangedScanned
                }
            }
        }
    }

    /// The current selection for `prefix`.
    pub fn get(&self, prefix: Prefix) -> Option<&Candidate> {
        self.best.get(&prefix)
    }

    /// Installs a selection directly, bypassing the decision process.
    /// Checkpoint restore only: the candidate must be what a reselect
    /// over the restored Adj-RIB-In would have produced.
    pub(crate) fn install(&mut self, prefix: Prefix, cand: Candidate) {
        self.best.insert(prefix, cand);
    }

    /// All selected prefixes, in prefix order.
    pub fn prefixes(&self) -> impl Iterator<Item = Prefix> + '_ {
        let mut keys: Vec<Prefix> = self.best.keys().copied().collect();
        keys.sort_unstable();
        keys.into_iter()
    }

    /// Number of selected routes.
    pub fn len(&self) -> usize {
        self.best.len()
    }

    /// True when nothing is selected.
    pub fn is_empty(&self) -> bool {
        self.best.is_empty()
    }
}

/// What we last advertised to each neighbor (needed to generate
/// withdrawals and to audit our own promises).
/// Hash-mapped on both levels: the export path reads and writes one
/// (neighbor, prefix) cell at a time and never iterates (the
/// [`AdjRibOut::neighbors`] accessor sorts on the way out).
#[derive(Clone, Debug, Default)]
pub struct AdjRibOut {
    routes: HashMap<Asn, HashMap<Prefix, Route>>,
}

impl AdjRibOut {
    /// Creates an empty RIB.
    pub fn new() -> AdjRibOut {
        AdjRibOut::default()
    }

    /// Records an advertisement of `route` to `neighbor`; returns the
    /// replaced route, if any.
    pub fn advertise(&mut self, neighbor: Asn, route: Route) -> Option<Route> {
        self.routes.entry(neighbor).or_default().insert(route.prefix, route)
    }

    /// Records a withdrawal; returns the withdrawn route, if any.
    pub fn withdraw(&mut self, neighbor: Asn, prefix: Prefix) -> Option<Route> {
        let per = self.routes.get_mut(&neighbor)?;
        let r = per.remove(&prefix);
        if per.is_empty() {
            self.routes.remove(&neighbor);
        }
        r
    }

    /// What `neighbor` currently believes we advertise for `prefix`.
    pub fn get(&self, neighbor: Asn, prefix: Prefix) -> Option<&Route> {
        self.routes.get(&neighbor)?.get(&prefix)
    }

    /// Neighbors with at least one advertised route, in ASN order.
    pub fn neighbors(&self) -> BTreeSet<Asn> {
        self.routes.keys().copied().collect()
    }

    /// Every `(neighbor, prefix, route)` cell in `(neighbor, prefix)`
    /// order — the deterministic iteration the checkpoint codec needs
    /// (the export hot path never calls this).
    pub(crate) fn entries(&self) -> Vec<(Asn, Prefix, &Route)> {
        let mut out: Vec<(Asn, Prefix, &Route)> = self
            .routes
            .iter()
            .flat_map(|(&n, per)| per.iter().map(move |(&p, r)| (n, p, r)))
            .collect();
        out.sort_by_key(|&(n, p, _)| (n, p));
        out
    }

    /// Forgets everything advertised to `neighbor` (session teardown:
    /// the peer's view of us is gone, so recovery must re-announce from
    /// scratch). Returns how many advertisements were dropped.
    pub fn flush_neighbor(&mut self, neighbor: Asn) -> usize {
        self.routes.remove(&neighbor).map_or(0, |per| per.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::AsPath;

    fn prefix() -> Prefix {
        Prefix::parse("10.0.0.0/8").unwrap()
    }

    fn route(path: &[u32], lp: u32) -> Route {
        let mut r = Route::originate(prefix());
        r.path = AsPath::from_slice(&path.iter().map(|&a| Asn(a)).collect::<Vec<_>>());
        r.local_pref = lp;
        r
    }

    #[test]
    fn adj_in_implicit_withdraw() {
        let mut rib = AdjRibIn::new();
        rib.insert(Asn(1), route(&[1, 9], 100));
        rib.insert(Asn(1), route(&[1], 100)); // replaces
        assert_eq!(rib.len(), 1);
        assert_eq!(rib.get(Asn(1), prefix()).unwrap().path_len(), 1);
    }

    #[test]
    fn adj_in_remove() {
        let mut rib = AdjRibIn::new();
        rib.insert(Asn(1), route(&[1], 100));
        assert!(rib.remove(Asn(1), prefix()));
        assert!(!rib.remove(Asn(1), prefix()));
        assert!(rib.is_empty());
        assert_eq!(rib.prefixes().count(), 0);
    }

    #[test]
    fn adj_in_candidates_deterministic_order() {
        let mut rib = AdjRibIn::new();
        rib.insert(Asn(5), route(&[5], 100));
        rib.insert(Asn(1), route(&[1], 100));
        rib.insert(Asn(3), route(&[3], 100));
        let c = rib.candidates(prefix());
        let order: Vec<u32> = c.iter().map(|c| c.learned_from.unwrap().0).collect();
        assert_eq!(order, vec![1, 3, 5]);
    }

    #[test]
    fn loc_rib_selection_and_change_detection() {
        let mut adj = AdjRibIn::new();
        let mut loc = LocRib::new();
        adj.insert(Asn(1), route(&[1, 8, 9], 100));
        assert!(loc.reselect(prefix(), &adj, None), "first selection is a change");
        assert_eq!(loc.get(prefix()).unwrap().route.path_len(), 3);

        // A better route arrives.
        adj.insert(Asn(2), route(&[2], 100));
        assert!(loc.reselect(prefix(), &adj, None));
        assert_eq!(loc.get(prefix()).unwrap().learned_from, Some(Asn(2)));

        // Re-running with no change reports no change.
        assert!(!loc.reselect(prefix(), &adj, None));

        // Withdraw everything.
        adj.remove(Asn(1), prefix());
        adj.remove(Asn(2), prefix());
        assert!(loc.reselect(prefix(), &adj, None));
        assert!(loc.get(prefix()).is_none());
        assert!(loc.is_empty());
    }

    #[test]
    fn loc_rib_local_candidate_participates() {
        let adj = AdjRibIn::new();
        let mut loc = LocRib::new();
        let local = Candidate::local(route(&[], 100));
        assert!(loc.reselect(prefix(), &adj, Some(&local)));
        assert_eq!(loc.get(prefix()).unwrap().learned_from, None);
        assert_eq!(loc.len(), 1);
    }

    #[test]
    fn hinted_reselect_short_circuits_losing_arrivals() {
        let mut adj = AdjRibIn::new();
        let mut loc = LocRib::new();
        adj.insert(Asn(1), route(&[1], 100));
        assert!(loc.reselect(prefix(), &adj, None));

        // A longer-path arrival from another neighbor: O(1) rejection.
        adj.insert(Asn(2), route(&[2, 8, 9], 100));
        let out = loc.reselect_with_hint(prefix(), &adj, None, ReselectHint::Neighbor(Asn(2)));
        assert_eq!(out, ReselectOutcome::UnchangedShortCircuit);
        assert_eq!(loc.get(prefix()).unwrap().learned_from, Some(Asn(1)));

        // Withdrawal of the losing route: O(1) no-change.
        adj.remove(Asn(2), prefix());
        let out = loc.reselect_with_hint(prefix(), &adj, None, ReselectHint::Neighbor(Asn(2)));
        assert_eq!(out, ReselectOutcome::UnchangedShortCircuit);

        // A winning arrival installs directly.
        adj.insert(Asn(3), route(&[3], 200));
        let out = loc.reselect_with_hint(prefix(), &adj, None, ReselectHint::Neighbor(Asn(3)));
        assert_eq!(out, ReselectOutcome::Changed);
        assert_eq!(loc.get(prefix()).unwrap().learned_from, Some(Asn(3)));

        // The best route's own neighbor changing forces a rescan.
        adj.insert(Asn(3), route(&[3, 7, 8, 9], 100));
        let out = loc.reselect_with_hint(prefix(), &adj, None, ReselectHint::Neighbor(Asn(3)));
        assert_eq!(out, ReselectOutcome::Changed);
        assert_eq!(loc.get(prefix()).unwrap().learned_from, Some(Asn(1)));
    }

    /// Whatever the hint, the selection must equal what a full scan
    /// produces — driven through a randomized insert/remove schedule.
    #[test]
    fn hinted_reselect_matches_full_scan() {
        use pvr_crypto::drbg::HmacDrbg;
        let mut rng = HmacDrbg::new(b"rib hint equivalence");
        let mut adj = AdjRibIn::new();
        let mut hinted = LocRib::new();
        let mut scanned = LocRib::new();
        let local = Candidate::local(route(&[], 100));
        // The local candidate's presence is fixed across the schedule:
        // the Neighbor hint promises only the named neighbor's entry
        // changed since the last selection.
        for step in 0..500 {
            let n = Asn(1 + rng.below(6) as u32);
            let local_opt = Some(&local);
            if rng.chance(0.3) {
                adj.remove(n, prefix());
            } else {
                let len = rng.below(5) as usize;
                let path: Vec<u32> = (0..=len).map(|h| n.0 * 10 + h as u32).collect();
                adj.insert(n, route(&path, 100 + 10 * rng.below(3) as u32));
            }
            let h = hinted.reselect_with_hint(prefix(), &adj, local_opt, ReselectHint::Neighbor(n));
            let s = scanned.reselect_with_hint(prefix(), &adj, local_opt, ReselectHint::Full);
            assert_eq!(h.changed(), s.changed(), "step {step}");
            assert_eq!(hinted.get(prefix()), scanned.get(prefix()), "step {step}");
        }
    }

    #[test]
    fn adj_out_tracks_advertisements() {
        let mut out = AdjRibOut::new();
        assert!(out.advertise(Asn(1), route(&[100], 100)).is_none());
        assert!(out.advertise(Asn(1), route(&[100, 2], 100)).is_some());
        assert_eq!(out.get(Asn(1), prefix()).unwrap().path_len(), 2);
        assert_eq!(out.neighbors().len(), 1);
        assert!(out.withdraw(Asn(1), prefix()).is_some());
        assert!(out.withdraw(Asn(1), prefix()).is_none());
        assert!(out.get(Asn(1), prefix()).is_none());
        assert!(out.neighbors().is_empty());
    }
}
