//! Routing information bases: Adj-RIB-In, Loc-RIB, Adj-RIB-Out.
//!
//! The Adj-RIB-In is exactly the "set of input routes the AS might
//! receive" against which the paper defines promise violations (§2); the
//! Adj-RIB-Out is what it actually emitted. Keeping all three explicit
//! lets PVR's verifier and the experiments compare permitted vs. actual
//! outputs directly.

use crate::decision::{best, Candidate};
use crate::route::Route;
use crate::types::{Asn, Prefix};
use std::collections::{BTreeMap, BTreeSet};

/// Routes received from each neighbor, per prefix (post-import-policy).
#[derive(Clone, Debug, Default)]
pub struct AdjRibIn {
    routes: BTreeMap<Prefix, BTreeMap<Asn, Route>>,
}

impl AdjRibIn {
    /// Creates an empty RIB.
    pub fn new() -> AdjRibIn {
        AdjRibIn::default()
    }

    /// Records `route` from `neighbor`, replacing any previous route for
    /// the same prefix from that neighbor (BGP implicit withdraw).
    pub fn insert(&mut self, neighbor: Asn, route: Route) {
        self.routes.entry(route.prefix).or_default().insert(neighbor, route);
    }

    /// Removes `neighbor`'s route for `prefix`; returns whether one existed.
    pub fn remove(&mut self, neighbor: Asn, prefix: Prefix) -> bool {
        if let Some(per_neighbor) = self.routes.get_mut(&prefix) {
            let removed = per_neighbor.remove(&neighbor).is_some();
            if per_neighbor.is_empty() {
                self.routes.remove(&prefix);
            }
            removed
        } else {
            false
        }
    }

    /// All candidates for `prefix`, in deterministic (ASN) order.
    pub fn candidates(&self, prefix: Prefix) -> Vec<Candidate> {
        self.routes
            .get(&prefix)
            .map(|per| per.iter().map(|(&n, r)| Candidate::from_neighbor(r.clone(), n)).collect())
            .unwrap_or_default()
    }

    /// The route `neighbor` currently advertises for `prefix`, if any.
    pub fn get(&self, neighbor: Asn, prefix: Prefix) -> Option<&Route> {
        self.routes.get(&prefix)?.get(&neighbor)
    }

    /// All (prefix, route) entries held from `neighbor`, in prefix order.
    pub fn from_neighbor(&self, neighbor: Asn) -> Vec<(Prefix, &Route)> {
        self.routes.iter().filter_map(|(&p, per)| per.get(&neighbor).map(|r| (p, r))).collect()
    }

    /// All prefixes with at least one route.
    pub fn prefixes(&self) -> impl Iterator<Item = Prefix> + '_ {
        self.routes.keys().copied()
    }

    /// Total number of (neighbor, prefix) entries.
    pub fn len(&self) -> usize {
        self.routes.values().map(|m| m.len()).sum()
    }

    /// True if no routes are stored.
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }
}

/// The selected best route per prefix, plus locally originated routes.
#[derive(Clone, Debug, Default)]
pub struct LocRib {
    best: BTreeMap<Prefix, Candidate>,
}

impl LocRib {
    /// Creates an empty Loc-RIB.
    pub fn new() -> LocRib {
        LocRib::default()
    }

    /// Recomputes the best route for `prefix` from `adj_in` plus any
    /// locally originated candidate. Returns `true` if the selection
    /// changed (the trigger for re-advertisement).
    pub fn reselect(
        &mut self,
        prefix: Prefix,
        adj_in: &AdjRibIn,
        local: Option<&Candidate>,
    ) -> bool {
        let mut candidates = adj_in.candidates(prefix);
        if let Some(l) = local {
            candidates.push(l.clone());
        }
        let new_best = best(&candidates).cloned();
        let changed = self.best.get(&prefix) != new_best.as_ref();
        match new_best {
            Some(b) => {
                self.best.insert(prefix, b);
            }
            None => {
                self.best.remove(&prefix);
            }
        }
        changed
    }

    /// The current selection for `prefix`.
    pub fn get(&self, prefix: Prefix) -> Option<&Candidate> {
        self.best.get(&prefix)
    }

    /// All selected prefixes.
    pub fn prefixes(&self) -> impl Iterator<Item = Prefix> + '_ {
        self.best.keys().copied()
    }

    /// Number of selected routes.
    pub fn len(&self) -> usize {
        self.best.len()
    }

    /// True when nothing is selected.
    pub fn is_empty(&self) -> bool {
        self.best.is_empty()
    }
}

/// What we last advertised to each neighbor (needed to generate
/// withdrawals and to audit our own promises).
#[derive(Clone, Debug, Default)]
pub struct AdjRibOut {
    routes: BTreeMap<Asn, BTreeMap<Prefix, Route>>,
}

impl AdjRibOut {
    /// Creates an empty RIB.
    pub fn new() -> AdjRibOut {
        AdjRibOut::default()
    }

    /// Records an advertisement of `route` to `neighbor`; returns the
    /// replaced route, if any.
    pub fn advertise(&mut self, neighbor: Asn, route: Route) -> Option<Route> {
        self.routes.entry(neighbor).or_default().insert(route.prefix, route)
    }

    /// Records a withdrawal; returns the withdrawn route, if any.
    pub fn withdraw(&mut self, neighbor: Asn, prefix: Prefix) -> Option<Route> {
        let per = self.routes.get_mut(&neighbor)?;
        let r = per.remove(&prefix);
        if per.is_empty() {
            self.routes.remove(&neighbor);
        }
        r
    }

    /// What `neighbor` currently believes we advertise for `prefix`.
    pub fn get(&self, neighbor: Asn, prefix: Prefix) -> Option<&Route> {
        self.routes.get(&neighbor)?.get(&prefix)
    }

    /// Neighbors with at least one advertised route.
    pub fn neighbors(&self) -> BTreeSet<Asn> {
        self.routes.keys().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::AsPath;

    fn prefix() -> Prefix {
        Prefix::parse("10.0.0.0/8").unwrap()
    }

    fn route(path: &[u32], lp: u32) -> Route {
        let mut r = Route::originate(prefix());
        r.path = AsPath::from_slice(&path.iter().map(|&a| Asn(a)).collect::<Vec<_>>());
        r.local_pref = lp;
        r
    }

    #[test]
    fn adj_in_implicit_withdraw() {
        let mut rib = AdjRibIn::new();
        rib.insert(Asn(1), route(&[1, 9], 100));
        rib.insert(Asn(1), route(&[1], 100)); // replaces
        assert_eq!(rib.len(), 1);
        assert_eq!(rib.get(Asn(1), prefix()).unwrap().path_len(), 1);
    }

    #[test]
    fn adj_in_remove() {
        let mut rib = AdjRibIn::new();
        rib.insert(Asn(1), route(&[1], 100));
        assert!(rib.remove(Asn(1), prefix()));
        assert!(!rib.remove(Asn(1), prefix()));
        assert!(rib.is_empty());
        assert_eq!(rib.prefixes().count(), 0);
    }

    #[test]
    fn adj_in_candidates_deterministic_order() {
        let mut rib = AdjRibIn::new();
        rib.insert(Asn(5), route(&[5], 100));
        rib.insert(Asn(1), route(&[1], 100));
        rib.insert(Asn(3), route(&[3], 100));
        let c = rib.candidates(prefix());
        let order: Vec<u32> = c.iter().map(|c| c.learned_from.unwrap().0).collect();
        assert_eq!(order, vec![1, 3, 5]);
    }

    #[test]
    fn loc_rib_selection_and_change_detection() {
        let mut adj = AdjRibIn::new();
        let mut loc = LocRib::new();
        adj.insert(Asn(1), route(&[1, 8, 9], 100));
        assert!(loc.reselect(prefix(), &adj, None), "first selection is a change");
        assert_eq!(loc.get(prefix()).unwrap().route.path_len(), 3);

        // A better route arrives.
        adj.insert(Asn(2), route(&[2], 100));
        assert!(loc.reselect(prefix(), &adj, None));
        assert_eq!(loc.get(prefix()).unwrap().learned_from, Some(Asn(2)));

        // Re-running with no change reports no change.
        assert!(!loc.reselect(prefix(), &adj, None));

        // Withdraw everything.
        adj.remove(Asn(1), prefix());
        adj.remove(Asn(2), prefix());
        assert!(loc.reselect(prefix(), &adj, None));
        assert!(loc.get(prefix()).is_none());
        assert!(loc.is_empty());
    }

    #[test]
    fn loc_rib_local_candidate_participates() {
        let adj = AdjRibIn::new();
        let mut loc = LocRib::new();
        let local = Candidate::local(route(&[], 100));
        assert!(loc.reselect(prefix(), &adj, Some(&local)));
        assert_eq!(loc.get(prefix()).unwrap().learned_from, None);
        assert_eq!(loc.len(), 1);
    }

    #[test]
    fn adj_out_tracks_advertisements() {
        let mut out = AdjRibOut::new();
        assert!(out.advertise(Asn(1), route(&[100], 100)).is_none());
        assert!(out.advertise(Asn(1), route(&[100, 2], 100)).is_some());
        assert_eq!(out.get(Asn(1), prefix()).unwrap().path_len(), 2);
        assert_eq!(out.neighbors().len(), 1);
        assert!(out.withdraw(Asn(1), prefix()).is_some());
        assert!(out.withdraw(Asn(1), prefix()).is_none());
        assert!(out.get(Asn(1), prefix()).is_none());
        assert!(out.neighbors().is_empty());
    }
}
