//! Core identifiers: AS numbers and IPv4 prefixes.

use pvr_crypto::encoding::{Reader, Wire, WireError};
use pvr_crypto::keys::PrincipalId;

/// An Autonomous System number.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Asn(pub u32);

impl Asn {
    /// The principal id used for this AS's keys and signatures.
    pub fn principal(self) -> PrincipalId {
        self.0 as PrincipalId
    }
}

impl std::fmt::Debug for Asn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

impl std::fmt::Display for Asn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

impl Wire for Asn {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Asn(u32::decode(r)?))
    }
    fn encoded_len(&self) -> usize {
        4
    }
}

/// An IPv4 CIDR prefix.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Prefix {
    /// Network address with host bits zeroed (enforced by constructors).
    addr: u32,
    /// Prefix length, 0..=32.
    len: u8,
}

// `len` is a prefix length in bits, not a container length; an
// `is_empty` counterpart would be meaningless (see `is_default`).
#[allow(clippy::len_without_is_empty)]
impl Prefix {
    /// Creates a prefix, zeroing any host bits.
    pub fn new(addr: u32, len: u8) -> Prefix {
        assert!(len <= 32, "prefix length {len} > 32");
        Prefix { addr: addr & Self::mask(len), len }
    }

    /// Parses `"a.b.c.d/len"`.
    pub fn parse(s: &str) -> Option<Prefix> {
        let (ip, len) = s.split_once('/')?;
        let len: u8 = len.parse().ok()?;
        if len > 32 {
            return None;
        }
        let mut octets = [0u8; 4];
        let mut parts = ip.split('.');
        for o in &mut octets {
            *o = parts.next()?.parse().ok()?;
        }
        if parts.next().is_some() {
            return None;
        }
        Some(Prefix::new(u32::from_be_bytes(octets), len))
    }

    fn mask(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - len)
        }
    }

    /// The network address.
    pub fn addr(&self) -> u32 {
        self.addr
    }

    /// The prefix length.
    pub fn len(&self) -> u8 {
        self.len
    }

    /// True for the default route `0.0.0.0/0`.
    pub fn is_default(&self) -> bool {
        self.len == 0
    }

    /// True if `self` covers `other` (is an equal-or-less-specific
    /// superset).
    pub fn covers(&self, other: &Prefix) -> bool {
        self.len <= other.len && (other.addr & Self::mask(self.len)) == self.addr
    }

    /// True if the address ranges overlap at all.
    pub fn overlaps(&self, other: &Prefix) -> bool {
        self.covers(other) || other.covers(self)
    }
}

impl std::fmt::Debug for Prefix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Display::fmt(self, f)
    }
}

impl std::fmt::Display for Prefix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let o = self.addr.to_be_bytes();
        write!(f, "{}.{}.{}.{}/{}", o[0], o[1], o[2], o[3], self.len)
    }
}

impl Wire for Prefix {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.addr.encode(buf);
        self.len.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let addr = u32::decode(r)?;
        let len = u8::decode(r)?;
        if len > 32 {
            return Err(WireError::Invalid("prefix length > 32"));
        }
        Ok(Prefix::new(addr, len))
    }
    fn encoded_len(&self) -> usize {
        5
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn parse_and_display() {
        let p = Prefix::parse("10.1.2.0/24").unwrap();
        assert_eq!(p.to_string(), "10.1.2.0/24");
        assert_eq!(p.len(), 24);
        assert_eq!(Prefix::parse("0.0.0.0/0").unwrap().to_string(), "0.0.0.0/0");
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in ["", "10.1.2.0", "10.1.2.0/33", "10.1.2/24", "10.1.2.3.4/8", "a.b.c.d/8"] {
            assert!(Prefix::parse(bad).is_none(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn host_bits_zeroed() {
        let p = Prefix::parse("10.1.2.255/24").unwrap();
        assert_eq!(p.to_string(), "10.1.2.0/24");
        assert_eq!(Prefix::new(u32::MAX, 0).addr(), 0);
    }

    #[test]
    fn covers_and_overlaps() {
        let p8 = Prefix::parse("10.0.0.0/8").unwrap();
        let p24 = Prefix::parse("10.1.2.0/24").unwrap();
        let other = Prefix::parse("192.168.0.0/16").unwrap();
        assert!(p8.covers(&p24));
        assert!(!p24.covers(&p8));
        assert!(p8.overlaps(&p24) && p24.overlaps(&p8));
        assert!(!p8.overlaps(&other));
        assert!(p8.covers(&p8));
        assert!(Prefix::parse("0.0.0.0/0").unwrap().covers(&other));
    }

    #[test]
    fn is_default() {
        assert!(Prefix::parse("0.0.0.0/0").unwrap().is_default());
        assert!(!Prefix::parse("10.0.0.0/8").unwrap().is_default());
    }

    #[test]
    fn wire_round_trip() {
        for s in ["0.0.0.0/0", "10.1.2.0/24", "255.255.255.255/32"] {
            let p = Prefix::parse(s).unwrap();
            let back: Prefix = pvr_crypto::decode_exact(&p.to_wire()).unwrap();
            assert_eq!(back, p);
        }
        let a = Asn(64512);
        let back: Asn = pvr_crypto::decode_exact(&a.to_wire()).unwrap();
        assert_eq!(back, a);
    }

    #[test]
    fn wire_rejects_bad_length() {
        let mut bytes = Vec::new();
        0u32.encode(&mut bytes);
        40u8.encode(&mut bytes);
        assert!(pvr_crypto::decode_exact::<Prefix>(&bytes).is_err());
    }

    #[test]
    fn asn_principal_mapping() {
        assert_eq!(Asn(7018).principal(), 7018u64);
    }

    proptest! {
        #[test]
        fn prop_cover_transitive(addr in any::<u32>(), l1 in 0u8..=32, l2 in 0u8..=32, l3 in 0u8..=32) {
            let mut ls = [l1, l2, l3];
            ls.sort_unstable();
            let a = Prefix::new(addr, ls[0]);
            let b = Prefix::new(addr, ls[1]);
            let c = Prefix::new(addr, ls[2]);
            // Same base address: shorter always covers longer.
            prop_assert!(a.covers(&b) && b.covers(&c) && a.covers(&c));
        }

        #[test]
        fn prop_wire_round_trip(addr in any::<u32>(), len in 0u8..=32) {
            let p = Prefix::new(addr, len);
            prop_assert_eq!(pvr_crypto::decode_exact::<Prefix>(&p.to_wire()).unwrap(), p);
        }
    }
}
