//! AS-level topologies: builder, instantiation, and generators.
//!
//! Provides the scenarios the paper's figures describe (Figure 1's star
//! around network A, with provider chains of configurable length so the
//! minimum operator has something to minimize) and Internet-like
//! topologies (tier-1 clique / tier-2 / stubs with Gao–Rexford roles)
//! for the scale experiment E8.

use crate::dampening::DampeningPolicy;
use crate::messages::BgpUpdate;
use crate::partition::partition_by_degree;
use crate::policy::{PolicyConfig, Role};
use crate::private::PrivateVerifier;
use crate::route::Community;
use crate::router::{BgpRouter, LocalEvent, RouterStats, SecurityMode};
use crate::sbgp::VerifyCache;
use crate::types::{Asn, Prefix};
use pvr_crypto::drbg::HmacDrbg;
use pvr_crypto::encoding::{Reader, Wire, WireError};
use pvr_crypto::keys::{Identity, KeyStore};
use pvr_netsim::{
    FaultPlan, LinkConfig, NodeId, RunLimits, ShardedSimulator, SimDuration, SimTime, Simulator,
    StopReason,
};
use pvr_store::PMap;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Key material generated for signed mode: the shared verifying store
/// plus each AS's private identity.
type SignedKeys = (Arc<KeyStore>, BTreeMap<Asn, Identity>);

/// An AS-to-AS business relationship edge.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Edge {
    /// `provider` sells full transit to `customer`.
    ProviderCustomer {
        /// Transit seller.
        provider: Asn,
        /// Transit buyer.
        customer: Asn,
    },
    /// Settlement-free peering.
    Peering(Asn, Asn),
    /// `provider` sells *partial* transit to `customer`, limited to
    /// routes tagged with `region`.
    PartialTransit {
        /// Transit seller.
        provider: Asn,
        /// Partial-transit buyer.
        customer: Asn,
        /// Contracted route subset.
        region: Community,
    },
}

/// Edges travel inside checkpoint META sections so a restored run can
/// re-instantiate the exact network it was saved from.
impl Wire for Edge {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            Edge::ProviderCustomer { provider, customer } => {
                buf.push(0);
                provider.encode(buf);
                customer.encode(buf);
            }
            Edge::Peering(a, b) => {
                buf.push(1);
                a.encode(buf);
                b.encode(buf);
            }
            Edge::PartialTransit { provider, customer, region } => {
                buf.push(2);
                provider.encode(buf);
                customer.encode(buf);
                region.encode(buf);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.take(1)?[0] {
            0 => {
                Ok(Edge::ProviderCustomer { provider: Asn::decode(r)?, customer: Asn::decode(r)? })
            }
            1 => Ok(Edge::Peering(Asn::decode(r)?, Asn::decode(r)?)),
            2 => Ok(Edge::PartialTransit {
                provider: Asn::decode(r)?,
                customer: Asn::decode(r)?,
                region: Community::decode(r)?,
            }),
            _ => Err(WireError::Invalid("edge discriminant")),
        }
    }
    fn encoded_len(&self) -> usize {
        1 + match self {
            Edge::ProviderCustomer { provider, customer } => {
                provider.encoded_len() + customer.encoded_len()
            }
            Edge::Peering(a, b) => a.encoded_len() + b.encoded_len(),
            Edge::PartialTransit { provider, customer, region } => {
                provider.encoded_len() + customer.encoded_len() + region.encoded_len()
            }
        }
    }
}

/// A declarative AS-level topology.
#[derive(Clone, Debug, Default)]
pub struct Topology {
    ases: BTreeSet<Asn>,
    edges: Vec<Edge>,
    originations: BTreeMap<Asn, Vec<Prefix>>,
    /// (local, neighbor, community): local tags routes imported from
    /// neighbor with the community (enables partial-transit selections).
    region_tags: Vec<(Asn, Asn, Community)>,
    schedules: Vec<(Asn, SimDuration, LocalEvent)>,
}

impl Topology {
    /// An empty topology.
    pub fn new() -> Topology {
        Topology::default()
    }

    /// Adds an AS (idempotent).
    pub fn add_as(&mut self, asn: Asn) -> &mut Self {
        self.ases.insert(asn);
        self
    }

    /// Declares `provider` → `customer` transit.
    pub fn provider_customer(&mut self, provider: Asn, customer: Asn) -> &mut Self {
        self.add_as(provider).add_as(customer);
        self.edges.push(Edge::ProviderCustomer { provider, customer });
        self
    }

    /// Declares peering between `a` and `b`.
    pub fn peering(&mut self, a: Asn, b: Asn) -> &mut Self {
        self.add_as(a).add_as(b);
        self.edges.push(Edge::Peering(a, b));
        self
    }

    /// Declares partial transit from `provider` to `customer` covering
    /// `region`.
    pub fn partial_transit(
        &mut self,
        provider: Asn,
        customer: Asn,
        region: Community,
    ) -> &mut Self {
        self.add_as(provider).add_as(customer);
        self.edges.push(Edge::PartialTransit { provider, customer, region });
        self
    }

    /// `asn` originates `prefix` at simulation start.
    pub fn originate(&mut self, asn: Asn, prefix: Prefix) -> &mut Self {
        self.add_as(asn);
        self.originations.entry(asn).or_default().push(prefix);
        self
    }

    /// `local` stamps routes imported from `neighbor` with `region`.
    pub fn tag_region(&mut self, local: Asn, neighbor: Asn, region: Community) -> &mut Self {
        self.region_tags.push((local, neighbor, region));
        self
    }

    /// Schedules a local event at `asn` after `delay`.
    pub fn schedule(&mut self, asn: Asn, delay: SimDuration, event: LocalEvent) -> &mut Self {
        self.add_as(asn);
        self.schedules.push((asn, delay, event));
        self
    }

    /// All declared ASes.
    pub fn ases(&self) -> impl Iterator<Item = Asn> + '_ {
        self.ases.iter().copied()
    }

    /// Number of ASes.
    pub fn as_count(&self) -> usize {
        self.ases.len()
    }

    /// Number of relationship edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// All relationship edges, in declaration order.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// The prefixes `asn` originates at simulation start.
    pub fn originated_by(&self, asn: Asn) -> &[Prefix] {
        self.originations.get(&asn).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Builds the RPKI-style origin-authorization table for this
    /// topology's declared originations: each origination authorizes
    /// its AS for the prefix *and everything it covers* (ROA maxLength
    /// semantics), so an unauthorized sub-prefix announcement is
    /// invalid, not unknown.
    pub fn origin_table(&self) -> OriginTable {
        let mut entries = Vec::new();
        for (&asn, prefixes) in &self.originations {
            for &p in prefixes {
                entries.push((p, asn));
            }
        }
        OriginTable { entries }
    }

    /// Customer-cone sizes: for each AS, the number of ASes (itself
    /// included) reachable by walking provider→customer edges downward.
    /// The standard proxy for how much traffic an AS carries; E12
    /// weights hijacked-traffic share by it.
    pub fn customer_cone_sizes(&self) -> BTreeMap<Asn, usize> {
        let mut down: BTreeMap<Asn, Vec<Asn>> = BTreeMap::new();
        for e in &self.edges {
            match *e {
                Edge::ProviderCustomer { provider, customer }
                | Edge::PartialTransit { provider, customer, .. } => {
                    down.entry(provider).or_default().push(customer);
                }
                Edge::Peering(..) => {}
            }
        }
        let mut cones = BTreeMap::new();
        for &asn in &self.ases {
            let mut seen = BTreeSet::new();
            let mut stack = vec![asn];
            while let Some(x) = stack.pop() {
                if seen.insert(x) {
                    stack.extend(down.get(&x).into_iter().flatten().copied());
                }
            }
            cones.insert(asn, seen.len());
        }
        cones
    }

    /// The neighbors of `asn` with the role each plays *relative to
    /// `asn`*.
    pub fn neighbor_roles(&self, asn: Asn) -> Vec<(Asn, Role)> {
        let mut out = Vec::new();
        for e in &self.edges {
            match *e {
                Edge::ProviderCustomer { provider, customer } => {
                    if provider == asn {
                        out.push((customer, Role::Customer));
                    } else if customer == asn {
                        out.push((provider, Role::Provider));
                    }
                }
                Edge::Peering(a, b) => {
                    if a == asn {
                        out.push((b, Role::Peer));
                    } else if b == asn {
                        out.push((a, Role::Peer));
                    }
                }
                Edge::PartialTransit { provider, customer, region } => {
                    if provider == asn {
                        out.push((customer, Role::PartialTransitCustomer { region }));
                    } else if customer == asn {
                        // From the customer's side a partial-transit seller
                        // is just a (limited) provider.
                        out.push((provider, Role::Provider));
                    }
                }
            }
        }
        out
    }

    /// Generates per-AS RSA identities for signed mode — always from
    /// the single `"bgp-identities"` DRBG stream in ascending-ASN
    /// order, so both engines (and every shard count) derive identical
    /// keys for the same seed.
    fn generate_identities(&self, options: InstantiateOptions) -> Option<SignedKeys> {
        if !options.signed {
            return None;
        }
        let mut rng = HmacDrbg::from_u64_labeled(options.seed, "bgp-identities");
        let mut ks = KeyStore::new();
        let mut ids = BTreeMap::new();
        for &asn in &self.ases {
            let id = Identity::generate(asn.principal(), options.key_bits, &mut rng);
            ks.register_identity(&id);
            ids.insert(asn, id);
        }
        Some((Arc::new(ks), ids))
    }

    /// Builds `asn`'s router (policy, security mode, MRAI, originations,
    /// scheduled events) — everything except neighbor wiring and
    /// verify-cache installation, which depend on the engine.
    fn build_router(
        &self,
        asn: Asn,
        keystore: &Option<SignedKeys>,
        options: InstantiateOptions,
    ) -> BgpRouter {
        let mut policy = PolicyConfig::new();
        for (neighbor, role) in self.neighbor_roles(asn) {
            policy.set_role(neighbor, role);
        }
        for &(local, neighbor, region) in &self.region_tags {
            if local == asn {
                policy.set_region_tag(neighbor, region);
            }
        }
        let security = match keystore {
            Some((ks, ids)) => {
                SecurityMode::Signed { identity: Box::new(ids[&asn].clone()), keys: Arc::clone(ks) }
            }
            None => SecurityMode::Plain,
        };
        let mut router = BgpRouter::new(asn, policy, security);
        if let Some(interval) = options.mrai {
            router.set_mrai(interval);
        }
        if let Some(jitter) = options.mrai_jitter {
            // Router-owned jitter DRBG, seeded per AS: identical draws
            // in the serial and sharded engines regardless of shard
            // layout (the engine's own DRBGs are per-shard and must not
            // leak into agent behaviour).
            let rng = HmacDrbg::from_u64_labeled(options.seed, &format!("bgp-mrai-{}", asn.0));
            router.set_mrai_jitter(jitter, rng);
        }
        if let Some(policy) = options.dampening {
            router.set_dampening(policy);
        }
        if let Some(window) = options.timeline_window {
            router.enable_timeline(window);
        }
        if options.journal_capacity > 0 {
            router.enable_journal(options.journal_capacity);
        }
        for p in self.originations.get(&asn).into_iter().flatten() {
            router.originate(*p);
        }
        for (s_asn, delay, event) in &self.schedules {
            if *s_asn == asn {
                router.schedule_event(*delay, event.clone());
            }
        }
        router
    }

    /// Instantiates the topology into a simulator.
    ///
    /// `options` controls link behaviour, signing, and key size. Returns
    /// the network handle used by experiments and examples.
    pub fn instantiate(&self, options: InstantiateOptions) -> BgpNetwork {
        let mut sim: Simulator<BgpUpdate> = Simulator::new(options.seed);
        sim.set_default_link(options.link);
        if let Some(window) = options.timeline_window {
            sim.enable_timeline(window);
        }

        // Key material (signed mode only).
        let keystore = self.generate_identities(options);

        // One attestation-verification memo for the whole network: a
        // chain already checked upstream is not re-verified limb by
        // limb at every subsequent hop.
        let verify_cache = keystore.as_ref().map(|_| Arc::new(VerifyCache::new()));

        // Private verification: one shared verifier flushed at engine
        // barriers (the sharded path installs the identical service,
        // so outputs match across engines).
        let private_verifier = new_private_verifier(options);

        // First pass: create routers so node ids are known.
        let mut node_of = BTreeMap::new();
        for &asn in &self.ases {
            let mut router = self.build_router(asn, &keystore, options);
            if let Some(cache) = &verify_cache {
                router.set_verify_cache(Arc::clone(cache));
            }
            if let Some(verifier) = &private_verifier {
                router.set_private_verifier(Arc::clone(verifier));
            }
            let node = sim.add_node(Box::new(router));
            node_of.insert(asn, node);
        }

        // Second pass: wire neighbors.
        for &asn in &self.ases {
            let node = node_of[&asn];
            let neighbors = self.neighbor_roles(asn);
            let router = sim.node_mut::<BgpRouter>(node).expect("router downcast");
            for (neighbor, _) in neighbors {
                router.add_neighbor(neighbor, node_of[&neighbor]);
            }
        }

        if let Some(verifier) = &private_verifier {
            verifier.set_node_map(node_of.clone());
            sim.set_barrier_hook(PrivateVerifier::hook(verifier));
        }

        BgpNetwork {
            sim,
            node_of,
            keystore: keystore.map(|(ks, _)| ks),
            verify_cache,
            private_verifier,
            topology: self.clone(),
            options,
            rib_history: Vec::new(),
        }
    }

    /// Instantiates the topology into the sharded engine, partitioning
    /// the AS graph across `shards` worker calendars (see
    /// [`crate::partition`]). Node ids, key material, and all
    /// deterministic run outputs are identical to
    /// [`Topology::instantiate`]'s for the same options — at any shard
    /// count.
    ///
    /// Signed mode installs one [`VerifyCache`] *per shard* rather than
    /// the serial engine's network-wide memo: a shard's routers only
    /// ever run on that shard's worker thread, so per-router counter
    /// attribution stays exact with no cross-shard contention. The
    /// trade is reuse scope — sharded cache hits can only be fewer than
    /// serial hits, never different verdicts.
    pub fn instantiate_sharded(
        &self,
        options: InstantiateOptions,
        shards: usize,
    ) -> ShardedBgpNetwork {
        let shards = shards.max(1);
        let mut sim: ShardedSimulator<BgpUpdate> = ShardedSimulator::new(options.seed, shards);
        sim.set_default_link(options.link);
        if let Some(window) = options.timeline_window {
            sim.enable_timeline(window);
        }
        if options.signed {
            // RSA verification dominates per-event cost in signed mode;
            // even small windows amortize a thread spawn.
            sim.set_spawn_threshold(4);
        }

        let keystore = self.generate_identities(options);
        let verify_caches: Vec<Arc<VerifyCache>> = if keystore.is_some() {
            (0..shards).map(|_| Arc::new(VerifyCache::new())).collect()
        } else {
            Vec::new()
        };

        // Unlike the verify cache, the private verifier stays
        // network-wide even under sharding: its flush sorts requests
        // by the engine-invariant `(asn, seq)` key, so one shared
        // service produces byte-identical outputs at any shard count
        // (no per-shard carve-out needed).
        let private_verifier = new_private_verifier(options);

        let assignment = partition_by_degree(self, shards);
        let mut node_of = BTreeMap::new();
        for &asn in &self.ases {
            let mut router = self.build_router(asn, &keystore, options);
            let shard = assignment[&asn];
            if let Some(cache) = verify_caches.get(shard) {
                router.set_verify_cache(Arc::clone(cache));
            }
            if let Some(verifier) = &private_verifier {
                router.set_private_verifier(Arc::clone(verifier));
            }
            let node = sim.add_node_to_shard(Box::new(router), shard);
            node_of.insert(asn, node);
        }

        for &asn in &self.ases {
            let node = node_of[&asn];
            let neighbors = self.neighbor_roles(asn);
            let router = sim.node_mut::<BgpRouter>(node).expect("router downcast");
            for (neighbor, _) in neighbors {
                router.add_neighbor(neighbor, node_of[&neighbor]);
            }
        }

        if let Some(verifier) = &private_verifier {
            verifier.set_node_map(node_of.clone());
            sim.set_barrier_hook(PrivateVerifier::hook(verifier));
        }

        ShardedBgpNetwork {
            sim,
            node_of,
            keystore: keystore.map(|(ks, _)| ks),
            verify_caches,
            private_verifier,
            topology: self.clone(),
            options,
            rib_history: Vec::new(),
        }
    }
}

/// A checkpoint embeds the full topology (META section), so
/// `restore(path)` is self-contained: static router state regenerates
/// from this declaration and only dynamic state rides in the file.
impl Wire for Topology {
    fn encode(&self, buf: &mut Vec<u8>) {
        (self.ases.len() as u32).encode(buf);
        for &asn in &self.ases {
            asn.encode(buf);
        }
        (self.edges.len() as u32).encode(buf);
        for edge in &self.edges {
            edge.encode(buf);
        }
        (self.originations.len() as u32).encode(buf);
        for (&asn, prefixes) in &self.originations {
            asn.encode(buf);
            (prefixes.len() as u32).encode(buf);
            for p in prefixes {
                p.encode(buf);
            }
        }
        (self.region_tags.len() as u32).encode(buf);
        for &(local, neighbor, region) in &self.region_tags {
            local.encode(buf);
            neighbor.encode(buf);
            region.encode(buf);
        }
        (self.schedules.len() as u32).encode(buf);
        for (asn, delay, event) in &self.schedules {
            asn.encode(buf);
            delay.encode(buf);
            event.encode(buf);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let mut topo = Topology::new();
        for _ in 0..u32::decode(r)? {
            topo.ases.insert(Asn::decode(r)?);
        }
        for _ in 0..u32::decode(r)? {
            topo.edges.push(Edge::decode(r)?);
        }
        for _ in 0..u32::decode(r)? {
            let asn = Asn::decode(r)?;
            let mut prefixes = Vec::new();
            for _ in 0..u32::decode(r)? {
                prefixes.push(Prefix::decode(r)?);
            }
            if topo.originations.insert(asn, prefixes).is_some() {
                return Err(WireError::Invalid("duplicate origination AS"));
            }
        }
        for _ in 0..u32::decode(r)? {
            topo.region_tags.push((Asn::decode(r)?, Asn::decode(r)?, Community::decode(r)?));
        }
        for _ in 0..u32::decode(r)? {
            topo.schedules.push((Asn::decode(r)?, SimDuration::decode(r)?, LocalEvent::decode(r)?));
        }
        Ok(topo)
    }
    fn encoded_len(&self) -> usize {
        let mut buf = Vec::new();
        self.encode(&mut buf);
        buf.len()
    }
}

/// Builds the shared [`PrivateVerifier`] when the options ask for one.
/// The verifier's SMC timeline uses the observability window when set
/// (so e17's SMC timeline aligns with the e15-style windows), falling
/// back to 5 ms.
fn new_private_verifier(options: InstantiateOptions) -> Option<Arc<PrivateVerifier>> {
    options.private_verification.then(|| {
        Arc::new(PrivateVerifier::new(
            options.seed,
            options.smc_lane_cap,
            options.timeline_window.unwrap_or_else(|| SimDuration::from_millis(5)),
        ))
    })
}

/// Options for [`Topology::instantiate`].
#[derive(Clone, Copy, Debug)]
pub struct InstantiateOptions {
    /// Simulation seed (drives jitter, drops, key generation).
    pub seed: u64,
    /// Default link configuration.
    pub link: LinkConfig,
    /// Enable S-BGP attestations.
    pub signed: bool,
    /// RSA modulus size when signing (tests use small keys for speed;
    /// benchmarks use 1024 to reproduce the paper's §3.8 numbers).
    pub key_bits: usize,
    /// Optional MRAI batching interval applied to every router.
    pub mrai: Option<SimDuration>,
    /// Optional upper bound on the per-arm random MRAI delay; each
    /// router draws from its own `(seed, asn)`-labeled DRBG so the
    /// jitter is identical across engines and shard counts.
    pub mrai_jitter: Option<SimDuration>,
    /// Optional route-flap dampening policy applied to every router.
    pub dampening: Option<DampeningPolicy>,
    /// Enables the observability layer: convergence-timeline recorders
    /// on the simulator and on every router, with sim-time windows of
    /// this width. `None` (the default) records nothing and adds no
    /// per-event work.
    pub timeline_window: Option<SimDuration>,
    /// Per-router event-journal ring capacity (most recent events kept
    /// for forensic JSONL dumps); `0` (the default) disables the
    /// journal.
    pub journal_capacity: usize,
    /// Enables private (SMC-based) verification of route selections:
    /// one shared [`PrivateVerifier`] across the network, flushed at
    /// engine barriers through bit-sliced GMW passes and charged as
    /// sim-time latency. The paper's PVR mode combines this with
    /// `signed: true` (attestations remain the integrity substrate).
    pub private_verification: bool,
    /// Lanes per SMC batch (1..=64; clamped). Only read when
    /// `private_verification` is set.
    pub smc_lane_cap: usize,
}

impl Default for InstantiateOptions {
    fn default() -> Self {
        InstantiateOptions {
            seed: 0,
            link: LinkConfig::default(),
            signed: false,
            key_bits: 512,
            mrai: None,
            mrai_jitter: None,
            dampening: None,
            timeline_window: None,
            journal_capacity: 0,
            private_verification: false,
            smc_lane_cap: pvr_smc::MAX_LANES,
        }
    }
}

/// Options ride inside checkpoint META sections: restore re-runs
/// `instantiate` with the saved options, so key generation, jitter
/// DRBG seeding, and every policy knob come back identical.
impl Wire for InstantiateOptions {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.seed.encode(buf);
        self.link.encode(buf);
        self.signed.encode(buf);
        (self.key_bits as u64).encode(buf);
        self.mrai.encode(buf);
        self.mrai_jitter.encode(buf);
        self.dampening.encode(buf);
        self.timeline_window.encode(buf);
        (self.journal_capacity as u64).encode(buf);
        self.private_verification.encode(buf);
        (self.smc_lane_cap as u64).encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(InstantiateOptions {
            seed: u64::decode(r)?,
            link: LinkConfig::decode(r)?,
            signed: bool::decode(r)?,
            key_bits: u64::decode(r)? as usize,
            mrai: Option::<SimDuration>::decode(r)?,
            mrai_jitter: Option::<SimDuration>::decode(r)?,
            dampening: Option::<DampeningPolicy>::decode(r)?,
            timeline_window: Option::<SimDuration>::decode(r)?,
            journal_capacity: u64::decode(r)? as usize,
            private_verification: bool::decode(r)?,
            smc_lane_cap: u64::decode(r)? as usize,
        })
    }
    fn encoded_len(&self) -> usize {
        let mut buf = Vec::new();
        self.encode(&mut buf);
        buf.len()
    }
}

/// RPKI-style origin authorizations: which AS may originate each
/// prefix. An announcement is *invalid* when some entry covers its
/// prefix but no covering entry matches its origin AS; announcements
/// of prefixes no entry covers are *unknown* and accepted, mirroring
/// route-origin validation deployment reality.
#[derive(Clone, Debug, Default)]
pub struct OriginTable {
    /// (authorized prefix, authorized origin) pairs.
    entries: Vec<(Prefix, Asn)>,
}

impl OriginTable {
    /// Builds a table from explicit (prefix, origin) authorizations.
    pub fn new(entries: Vec<(Prefix, Asn)>) -> OriginTable {
        OriginTable { entries }
    }

    /// May `origin` announce `announced`?
    pub fn permits(&self, announced: Prefix, origin: Asn) -> bool {
        let mut covered = false;
        for &(p, asn) in &self.entries {
            if p.covers(&announced) {
                if asn == origin {
                    return true;
                }
                covered = true;
            }
        }
        !covered
    }

    /// Number of authorization entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the table holds no authorizations.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Origin tables are installed imperatively (not part of the topology
/// declaration), so checkpoints embed them in the META section to keep
/// restored networks rejecting unauthorized origins.
impl Wire for OriginTable {
    fn encode(&self, buf: &mut Vec<u8>) {
        (self.entries.len() as u32).encode(buf);
        for &(prefix, asn) in &self.entries {
            prefix.encode(buf);
            asn.encode(buf);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let mut entries = Vec::new();
        for _ in 0..u32::decode(r)? {
            entries.push((Prefix::decode(r)?, Asn::decode(r)?));
        }
        Ok(OriginTable { entries })
    }
    fn encoded_len(&self) -> usize {
        4 + self.entries.iter().map(|(p, a)| p.encoded_len() + a.encoded_len()).sum::<usize>()
    }
}

/// Label set shared by every network-level metric series.
fn metric_labels(security_mode: &str) -> pvr_obs::LabelSet {
    vec![("security_mode", security_mode.to_string())]
}

/// Network-level gauge series shared by both engines: RIB sizes and
/// the verify-cache hit ratio. The hit ratio derives from
/// `verify_cache_hits` — the one counter the sharded engine is allowed
/// to disagree on (see [`RouterStats::shard_invariant`]) — so
/// engine-equality comparisons must drop it alongside the counter.
fn export_network_gauges(
    registry: &mut pvr_obs::MetricsRegistry,
    labels: &pvr_obs::LabelSet,
    totals: &RouterStats,
    adj_rib_in: u64,
    loc_rib: u64,
) {
    let g = registry.gauge("pvr_adj_rib_in_entries", labels);
    registry.set_gauge(g, adj_rib_in as f64);
    let g = registry.gauge("pvr_loc_rib_entries", labels);
    registry.set_gauge(g, loc_rib as f64);
    let ratio = if totals.verify_calls > 0 {
        totals.verify_cache_hits as f64 / totals.verify_calls as f64
    } else {
        0.0
    };
    let g = registry.gauge("pvr_verify_cache_hit_ratio", labels);
    registry.set_gauge(g, ratio);
}

/// Merges per-router event journals into one globally time-ordered
/// JSONL stream. Ties at the same instant break by ASN; within one
/// router the journal's own order is kept (the sort is stable).
fn merge_trace_jsonl<'a>(routers: impl Iterator<Item = (Asn, &'a BgpRouter)>) -> String {
    use std::fmt::Write as _;
    let mut entries: Vec<(u64, u32, &'static str, u64)> = Vec::new();
    for (asn, router) in routers {
        for e in router.journal().entries() {
            entries.push((e.t_us, asn.0, e.kind, e.value));
        }
    }
    entries.sort_by_key(|&(t, asn, _, _)| (t, asn));
    let mut out = String::new();
    for (t, asn, kind, value) in entries {
        writeln!(out, "{{\"t_us\":{t},\"router\":{asn},\"event\":\"{kind}\",\"value\":{value}}}")
            .expect("write to String");
    }
    out
}

/// An instantiated network: simulator plus AS → node mapping.
pub struct BgpNetwork {
    /// The underlying simulator.
    pub sim: Simulator<BgpUpdate>,
    node_of: BTreeMap<Asn, NodeId>,
    keystore: Option<Arc<KeyStore>>,
    verify_cache: Option<Arc<VerifyCache>>,
    private_verifier: Option<Arc<PrivateVerifier>>,
    /// The declaration this network was instantiated from; embedded in
    /// checkpoints so restore is self-contained.
    pub(crate) topology: Topology,
    /// The options this network was instantiated with.
    pub(crate) options: InstantiateOptions,
    /// Copy-on-write RIB snapshots, ascending by capture time (see
    /// [`crate::checkpoint`]).
    pub(crate) rib_history: Vec<(SimTime, PMap)>,
}

impl BgpNetwork {
    /// Runs the network to quiescence (or the given limits).
    pub fn converge(&mut self, limits: RunLimits) -> StopReason {
        self.sim.run(limits)
    }

    /// The simulator node hosting `asn`.
    pub fn node_of(&self, asn: Asn) -> NodeId {
        self.node_of[&asn]
    }

    /// Read access to `asn`'s router.
    pub fn router(&self, asn: Asn) -> &BgpRouter {
        self.sim.node::<BgpRouter>(self.node_of[&asn]).expect("router downcast")
    }

    /// Mutable access to `asn`'s router.
    pub fn router_mut(&mut self, asn: Asn) -> &mut BgpRouter {
        let node = self.node_of[&asn];
        self.sim.node_mut::<BgpRouter>(node).expect("router downcast")
    }

    /// The shared key store in signed mode.
    pub fn keystore(&self) -> Option<&Arc<KeyStore>> {
        self.keystore.as_ref()
    }

    /// The network-wide attestation-verification cache in signed mode.
    pub fn verify_cache(&self) -> Option<&Arc<VerifyCache>> {
        self.verify_cache.as_ref()
    }

    /// The network-wide private-verification service when the network
    /// was instantiated with
    /// [`InstantiateOptions::private_verification`] set.
    pub fn private_verifier(&self) -> Option<&Arc<PrivateVerifier>> {
        self.private_verifier.as_ref()
    }

    /// Installs an origin-authorization table on every router. Call
    /// before running: the check applies to announcements received
    /// afterwards.
    pub fn install_origin_table(&mut self, table: Arc<OriginTable>) {
        let ases: Vec<Asn> = self.node_of.keys().copied().collect();
        for asn in ases {
            self.router_mut(asn).set_origin_table(Arc::clone(&table));
        }
    }

    /// All ASes in the network.
    pub fn ases(&self) -> impl Iterator<Item = Asn> + '_ {
        self.node_of.keys().copied()
    }

    /// Network-wide router-counter totals. Built by commutative
    /// addition, so the result is independent of iteration order.
    pub fn router_totals(&self) -> RouterStats {
        let mut total = RouterStats::default();
        for asn in self.ases() {
            total.add(self.router(asn).stats());
        }
        total
    }

    /// Network-wide RIB entry totals `(adj_rib_in, loc_rib)`.
    fn rib_totals(&self) -> (u64, u64) {
        let mut adj = 0u64;
        let mut loc = 0u64;
        for asn in self.ases() {
            let (a, l) = self.router(asn).rib_entry_counts();
            adj += a as u64;
            loc += l as u64;
        }
        (adj, loc)
    }

    /// One deterministic network-wide metrics snapshot: simulator and
    /// router counters plus RIB-size and verify-cache-hit-ratio
    /// gauges, every series labelled `security_mode=<mode>`.
    pub fn metrics_snapshot(&self, security_mode: &str) -> pvr_obs::Snapshot {
        let labels = metric_labels(security_mode);
        let mut registry = pvr_obs::MetricsRegistry::new();
        self.sim.stats().export_metrics(&mut registry, &labels);
        let totals = self.router_totals();
        totals.export_metrics(&mut registry, &labels);
        let (adj, loc) = self.rib_totals();
        export_network_gauges(&mut registry, &labels, &totals, adj, loc);
        registry.snapshot()
    }

    /// Assembles the per-window convergence timeline from the
    /// simulator and router recorders. `None` unless the network was
    /// instantiated with [`InstantiateOptions::timeline_window`] set.
    pub fn convergence_timeline(&self) -> Option<pvr_obs::ConvergenceTimeline> {
        let sim_tl = self.sim.timeline()?;
        let mut routers =
            pvr_obs::TimelineRecorder::new(sim_tl.window_us(), pvr_obs::timeline::RT_CHANNELS);
        for asn in self.ases() {
            if let Some(tl) = self.router(asn).timeline() {
                routers.merge(tl);
            }
        }
        Some(pvr_obs::ConvergenceTimeline::assemble(sim_tl, &routers))
    }

    /// Per-router event journals merged into one time-ordered JSONL
    /// trace; empty unless the network was instantiated with a nonzero
    /// [`InstantiateOptions::journal_capacity`].
    pub fn trace_jsonl(&self) -> String {
        merge_trace_jsonl(self.ases().map(|asn| (asn, self.router(asn))))
    }

    /// Installs a scheduled fault plan into the simulator (node ids
    /// from [`BgpNetwork::node_of`]). Faults fire at exact sim times,
    /// identically on the sharded engine for the same plan.
    pub fn install_fault_plan(&mut self, plan: FaultPlan) {
        self.sim.set_fault_plan(plan);
    }
}

/// An instantiated network running on the sharded engine: the parallel
/// counterpart of [`BgpNetwork`], with the same accessor surface.
pub struct ShardedBgpNetwork {
    /// The underlying sharded simulator.
    pub sim: ShardedSimulator<BgpUpdate>,
    node_of: BTreeMap<Asn, NodeId>,
    keystore: Option<Arc<KeyStore>>,
    verify_caches: Vec<Arc<VerifyCache>>,
    private_verifier: Option<Arc<PrivateVerifier>>,
    /// The declaration this network was instantiated from; embedded in
    /// checkpoints so restore is self-contained.
    pub(crate) topology: Topology,
    /// The options this network was instantiated with.
    pub(crate) options: InstantiateOptions,
    /// Copy-on-write RIB snapshots, ascending by capture time (see
    /// [`crate::checkpoint`]).
    pub(crate) rib_history: Vec<(SimTime, PMap)>,
}

impl ShardedBgpNetwork {
    /// Runs the network to quiescence (or the given limits).
    pub fn converge(&mut self, limits: RunLimits) -> StopReason {
        self.sim.run(limits)
    }

    /// The simulator node hosting `asn`.
    pub fn node_of(&self, asn: Asn) -> NodeId {
        self.node_of[&asn]
    }

    /// Read access to `asn`'s router.
    pub fn router(&self, asn: Asn) -> &BgpRouter {
        self.sim.node::<BgpRouter>(self.node_of[&asn]).expect("router downcast")
    }

    /// Mutable access to `asn`'s router.
    pub fn router_mut(&mut self, asn: Asn) -> &mut BgpRouter {
        let node = self.node_of[&asn];
        self.sim.node_mut::<BgpRouter>(node).expect("router downcast")
    }

    /// The shared key store in signed mode.
    pub fn keystore(&self) -> Option<&Arc<KeyStore>> {
        self.keystore.as_ref()
    }

    /// The per-shard attestation-verification caches in signed mode
    /// (empty in plain mode), indexed by shard.
    pub fn verify_caches(&self) -> &[Arc<VerifyCache>] {
        &self.verify_caches
    }

    /// The network-wide private-verification service when the network
    /// was instantiated with
    /// [`InstantiateOptions::private_verification`] set. One verifier
    /// serves every shard: flush order is keyed on `(asn, seq)`, not on
    /// shard scheduling, so its outputs are shard-count invariant.
    pub fn private_verifier(&self) -> Option<&Arc<PrivateVerifier>> {
        self.private_verifier.as_ref()
    }

    /// Installs an origin-authorization table on every router. Call
    /// before running: the check applies to announcements received
    /// afterwards.
    pub fn install_origin_table(&mut self, table: Arc<OriginTable>) {
        let ases: Vec<Asn> = self.node_of.keys().copied().collect();
        for asn in ases {
            self.router_mut(asn).set_origin_table(Arc::clone(&table));
        }
    }

    /// All ASes in the network.
    pub fn ases(&self) -> impl Iterator<Item = Asn> + '_ {
        self.node_of.keys().copied()
    }

    /// Network-wide router-counter totals; see
    /// [`BgpNetwork::router_totals`].
    pub fn router_totals(&self) -> RouterStats {
        let mut total = RouterStats::default();
        for asn in self.ases() {
            total.add(self.router(asn).stats());
        }
        total
    }

    /// Network-wide RIB entry totals `(adj_rib_in, loc_rib)`.
    fn rib_totals(&self) -> (u64, u64) {
        let mut adj = 0u64;
        let mut loc = 0u64;
        for asn in self.ases() {
            let (a, l) = self.router(asn).rib_entry_counts();
            adj += a as u64;
            loc += l as u64;
        }
        (adj, loc)
    }

    /// The sharded counterpart of [`BgpNetwork::metrics_snapshot`]:
    /// each shard's routers fold into that shard's own registry
    /// (ascending ASN within the shard), the shard snapshots merge in
    /// ascending shard order, and the network-level series layer on
    /// top — the same fold order the serial engine's single pass
    /// produces. The result is identical to the serial snapshot except
    /// for series derived from `verify_cache_hits` (the carve-out).
    pub fn metrics_snapshot(&self, security_mode: &str) -> pvr_obs::Snapshot {
        let labels = metric_labels(security_mode);
        let mut per_shard: Vec<pvr_obs::MetricsRegistry> =
            (0..self.sim.shard_count()).map(|_| pvr_obs::MetricsRegistry::new()).collect();
        for asn in self.ases() {
            let shard = self.sim.shard_of(self.node_of[&asn]);
            self.router(asn).stats().export_metrics(&mut per_shard[shard], &labels);
        }
        let mut snap = pvr_obs::Snapshot::default();
        for registry in &per_shard {
            snap.merge(&registry.snapshot());
        }
        let mut network = pvr_obs::MetricsRegistry::new();
        self.sim.stats().export_metrics(&mut network, &labels);
        let totals = self.router_totals();
        let (adj, loc) = self.rib_totals();
        export_network_gauges(&mut network, &labels, &totals, adj, loc);
        snap.merge(&network.snapshot());
        snap
    }

    /// Assembles the per-window convergence timeline; see
    /// [`BgpNetwork::convergence_timeline`]. Identical to the serial
    /// timeline except for the `verify_cache_hits` channel.
    pub fn convergence_timeline(&self) -> Option<pvr_obs::ConvergenceTimeline> {
        let sim_tl = self.sim.timeline()?;
        let mut routers =
            pvr_obs::TimelineRecorder::new(sim_tl.window_us(), pvr_obs::timeline::RT_CHANNELS);
        for asn in self.ases() {
            if let Some(tl) = self.router(asn).timeline() {
                routers.merge(tl);
            }
        }
        Some(pvr_obs::ConvergenceTimeline::assemble(sim_tl, &routers))
    }

    /// Per-router event journals merged into one time-ordered JSONL
    /// trace; see [`BgpNetwork::trace_jsonl`]. Byte-identical to the
    /// serial trace (journals record verify *calls*, never cache
    /// hits).
    pub fn trace_jsonl(&self) -> String {
        merge_trace_jsonl(self.ases().map(|asn| (asn, self.router(asn))))
    }

    /// Installs a scheduled fault plan; see
    /// [`BgpNetwork::install_fault_plan`]. The same plan produces
    /// byte-identical runs at any shard count.
    pub fn install_fault_plan(&mut self, plan: FaultPlan) {
        self.sim.set_fault_plan(plan);
    }
}

/// The Figure 1 scenario: "Network A is connected to neighbors
/// N1, …, Nk and B … N1 through Nk each advertise to network A a route
/// r_i to some prefix, and A has promised to network B that it would
/// export the shortest of these routes."
///
/// Each N_i sits atop a provider chain of length `chain_lens[i]` leading
/// down to a common origin AS, so the routes r_i arrive at A with
/// different AS-path lengths. Returns the topology plus the cast of
/// characters.
pub fn figure1(chain_lens: &[usize]) -> (Topology, Figure1Cast) {
    assert!(!chain_lens.is_empty());
    let a = Asn(100);
    let b = Asn(200);
    let origin = Asn(999);
    let prefix = Prefix::parse("10.0.0.0/8").unwrap();
    let mut t = Topology::new();
    let mut ns = Vec::with_capacity(chain_lens.len());
    for (i, &len) in chain_lens.iter().enumerate() {
        let n_i = Asn(1 + i as u32);
        ns.push(n_i);
        // Chain: origin → c_1 → … → c_{len} → N_i, customer upward.
        // chain_lens[i] = number of intermediate ASes, so r_i's path
        // length at A is len + 2 (N_i + intermediates + origin).
        let mut below = origin;
        for j in 0..len {
            let c = Asn(1000 + (i as u32) * 100 + j as u32);
            t.provider_customer(c, below);
            below = c;
        }
        t.provider_customer(n_i, below);
        // N_i sells transit to A.
        t.provider_customer(n_i, a);
    }
    // A sells transit to B.
    t.provider_customer(a, b);
    t.originate(origin, prefix);
    (t, Figure1Cast { a, b, ns, origin, prefix })
}

/// The participants of the [`figure1`] scenario.
#[derive(Clone, Debug)]
pub struct Figure1Cast {
    /// The committing network A.
    pub a: Asn,
    /// The customer B receiving A's promise.
    pub b: Asn,
    /// The upstream neighbors N_1..N_k.
    pub ns: Vec<Asn>,
    /// The common origin AS behind the chains.
    pub origin: Asn,
    /// The contested prefix.
    pub prefix: Prefix,
}

/// Parameters for [`internet_like`].
#[derive(Clone, Copy)]
pub struct InternetParams {
    /// Number of tier-1 (clique) ASes.
    pub tier1: usize,
    /// Number of tier-2 ASes.
    pub tier2: usize,
    /// Number of stub ASes (at most 65 536 may *originate*, the /24
    /// numbering scheme's limit; silent stubs are unbounded).
    pub stubs: usize,
    /// Probability of tier-2 ↔ tier-2 peering.
    pub t2_peering_prob: f64,
    /// Maximum tier-1 providers per tier-2 AS (each draws 1..=max,
    /// clamped to the tier-1 count). The pre-E14 constant was 3.
    pub t2_max_providers: usize,
    /// Maximum tier-2 providers per stub. The pre-E14 constant was 2.
    pub stub_max_providers: usize,
    /// How many stubs originate a /24 (the first `n` by index; the rest
    /// are silent multihomed leaves). Workload knob for the scale
    /// experiment E14: propagation cost grows with ASes × origins, so
    /// internet-scale topologies cap origins to keep RIBs bounded.
    /// Defaults to `usize::MAX` (every stub originates, the pre-E14
    /// behavior).
    pub originating_stubs: usize,
}

impl Default for InternetParams {
    fn default() -> Self {
        InternetParams {
            tier1: 4,
            tier2: 12,
            stubs: 40,
            t2_peering_prob: 0.2,
            t2_max_providers: 3,
            stub_max_providers: 2,
            originating_stubs: usize::MAX,
        }
    }
}

impl std::fmt::Debug for InternetParams {
    /// Prints the size/shape fields always, and the E14 fan-out and
    /// origination knobs only when they differ from the defaults — so
    /// experiment headers that predate those knobs (E12's matrix
    /// banner) render byte-identically.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut d = f.debug_struct("InternetParams");
        d.field("tier1", &self.tier1)
            .field("tier2", &self.tier2)
            .field("stubs", &self.stubs)
            .field("t2_peering_prob", &self.t2_peering_prob);
        let defaults = InternetParams::default();
        if self.t2_max_providers != defaults.t2_max_providers {
            d.field("t2_max_providers", &self.t2_max_providers);
        }
        if self.stub_max_providers != defaults.stub_max_providers {
            d.field("stub_max_providers", &self.stub_max_providers);
        }
        if self.originating_stubs != defaults.originating_stubs {
            d.field("originating_stubs", &self.originating_stubs);
        }
        d.finish()
    }
}

/// Generates an Internet-like topology: a tier-1 peering clique, tier-2
/// ASes multihomed to tier-1 providers with some lateral peering, and
/// stub ASes multihomed to tier-2 providers. The first
/// `originating_stubs` stubs originate one /24 each. Deterministic in
/// `seed`; with the fan-out knobs at their defaults, the generated
/// topology is identical to the pre-E14 generator's for any seed.
pub fn internet_like(params: InternetParams, seed: u64) -> Topology {
    // Only *originating* stubs consume the /24 numbering space; silent
    // multihomed leaves are unconstrained, which is what lets the 80k-AS
    // scale ladder exist (80k stubs, a capped origination budget).
    assert!(
        params.stubs.min(params.originating_stubs) <= 65_536,
        "stub /24 numbering supports at most 65 536 originating stubs"
    );
    assert!(params.t2_max_providers >= 1 && params.stub_max_providers >= 1);
    let mut rng = HmacDrbg::from_u64_labeled(seed, "internet-topology");
    let mut t = Topology::new();
    let t1: Vec<Asn> = (0..params.tier1).map(|i| Asn(10 + i as u32)).collect();
    let t2: Vec<Asn> = (0..params.tier2).map(|i| Asn(100 + i as u32)).collect();
    // Stub ASNs start at 1000; tier-2 ASNs (100+) stay clear of them
    // as long as tier2 ≤ 900, which `as_count` scales never exceed.
    assert!(params.tier2 <= 900, "tier-2 ASN range would collide with stub ASNs");
    let stubs: Vec<Asn> = (0..params.stubs).map(|i| Asn(1000 + i as u32)).collect();

    // Tier-1 full-mesh peering.
    for i in 0..t1.len() {
        for j in i + 1..t1.len() {
            t.peering(t1[i], t1[j]);
        }
    }
    // Tier-2: multihomed to tier-1 providers; lateral peering by coin
    // flip.
    for &x in &t2 {
        let nprov = 1 + rng.below((params.t2_max_providers as u64).min(t1.len() as u64));
        let mut provs = t1.clone();
        rng.shuffle(&mut provs);
        for &p in provs.iter().take(nprov as usize) {
            t.provider_customer(p, x);
        }
    }
    for i in 0..t2.len() {
        for j in i + 1..t2.len() {
            if rng.chance(params.t2_peering_prob) {
                t.peering(t2[i], t2[j]);
            }
        }
    }
    // Stubs: multihomed to tier-2 providers; one /24 each while the
    // origination budget lasts.
    for (i, &s) in stubs.iter().enumerate() {
        let nprov = 1 + rng.below((params.stub_max_providers as u64).min(t2.len() as u64));
        let mut provs = t2.clone();
        rng.shuffle(&mut provs);
        for &p in provs.iter().take(nprov as usize) {
            t.provider_customer(p, s);
        }
        if i < params.originating_stubs {
            let prefix = Prefix::new(
                (10u32 << 24) | (((i as u32 >> 8) & 0xff) << 16) | ((i as u32 & 0xff) << 8),
                24,
            );
            t.originate(s, prefix);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates() {
        let mut t = Topology::new();
        t.provider_customer(Asn(1), Asn(2))
            .peering(Asn(2), Asn(3))
            .partial_transit(Asn(3), Asn(4), Community(65000, 1))
            .originate(Asn(4), Prefix::parse("10.0.0.0/8").unwrap());
        assert_eq!(t.as_count(), 4);
        assert_eq!(t.edge_count(), 3);
        let roles = t.neighbor_roles(Asn(2));
        assert!(roles.contains(&(Asn(1), Role::Provider)));
        assert!(roles.contains(&(Asn(3), Role::Peer)));
        // Partial-transit seller looks like a provider from below.
        let roles4 = t.neighbor_roles(Asn(4));
        assert_eq!(roles4, vec![(Asn(3), Role::Provider)]);
        let roles3 = t.neighbor_roles(Asn(3));
        assert!(roles3
            .contains(&(Asn(4), Role::PartialTransitCustomer { region: Community(65000, 1) })));
    }

    #[test]
    fn figure1_shape() {
        let (t, cast) = figure1(&[0, 1, 2]);
        assert_eq!(cast.ns.len(), 3);
        // A's neighbors: N1..N3 as providers, B as customer.
        let roles = t.neighbor_roles(cast.a);
        assert_eq!(roles.len(), 4);
        assert!(roles.contains(&(cast.b, Role::Customer)));
        for &n in &cast.ns {
            assert!(roles.contains(&(n, Role::Provider)));
        }
    }

    #[test]
    fn figure1_converges_with_correct_path_lengths() {
        let (t, cast) = figure1(&[0, 1, 2]);
        let mut net = t.instantiate(InstantiateOptions::default());
        assert_eq!(net.converge(RunLimits::none()), StopReason::Quiescent);
        // A hears one route per N_i with path length chain+2.
        for (i, &n) in cast.ns.iter().enumerate() {
            let r = net.router(cast.a).route_from(n, cast.prefix).expect("route from N_i");
            assert_eq!(r.path_len(), i + 2, "N{} chain", i + 1);
        }
        // A's best is via N1 (shortest), and B received it.
        let best = net.router(cast.a).best_route(cast.prefix).unwrap();
        assert_eq!(best.learned_from, Some(cast.ns[0]));
        let at_b = net.router(cast.b).route_from(cast.a, cast.prefix).expect("B's route");
        assert_eq!(at_b.path.first_as(), Some(cast.a));
        assert_eq!(at_b.path_len(), 3); // A, N1, origin
    }

    #[test]
    fn internet_like_is_deterministic() {
        let a = internet_like(InternetParams::default(), 42);
        let b = internet_like(InternetParams::default(), 42);
        assert_eq!(a.as_count(), b.as_count());
        assert_eq!(a.edge_count(), b.edge_count());
        let c = internet_like(InternetParams::default(), 43);
        // Different seeds virtually always differ in edge count.
        assert!(a.edge_count() != c.edge_count() || a.as_count() == c.as_count());
    }

    #[test]
    fn internet_like_converges() {
        let params = InternetParams {
            tier1: 3,
            tier2: 5,
            stubs: 8,
            t2_peering_prob: 0.3,
            ..InternetParams::default()
        };
        let t = internet_like(params, 7);
        let mut net = t.instantiate(InstantiateOptions::default());
        assert_eq!(net.converge(RunLimits::none()), StopReason::Quiescent);
        // Every stub prefix must be reachable from every tier-1.
        let stub_prefixes: Vec<Prefix> =
            (0..8).map(|i| Prefix::new((10u32 << 24) | ((i as u32 & 0xff) << 8), 24)).collect();
        for t1 in [Asn(10), Asn(11), Asn(12)] {
            for &p in &stub_prefixes {
                assert!(net.router(t1).best_route(p).is_some(), "{t1} missing {p}");
            }
        }
    }

    #[test]
    fn sharded_instantiation_matches_serial() {
        let params = InternetParams {
            tier1: 3,
            tier2: 5,
            stubs: 12,
            t2_peering_prob: 0.3,
            ..InternetParams::default()
        };
        let t = internet_like(params, 21);
        let options = InstantiateOptions { seed: 21, ..Default::default() };

        let mut serial = t.instantiate(options);
        assert_eq!(serial.converge(RunLimits::none()), StopReason::Quiescent);

        for shards in [1, 2, 3, 5] {
            let mut sharded = t.instantiate_sharded(options, shards);
            // Node ids must be assigned identically regardless of shard
            // placement.
            for asn in t.ases() {
                assert_eq!(serial.node_of(asn), sharded.node_of(asn));
            }
            assert_eq!(sharded.converge(RunLimits::none()), StopReason::Quiescent);
            assert_eq!(serial.sim.stats(), sharded.sim.stats(), "{shards} shards");
            assert_eq!(serial.sim.now(), sharded.sim.now(), "{shards} shards");
            assert_eq!(serial.router_totals(), sharded.router_totals(), "{shards} shards");
            for asn in t.ases() {
                assert_eq!(
                    serial.router(asn).stats(),
                    sharded.router(asn).stats(),
                    "{asn} at {shards} shards"
                );
            }
        }
    }

    #[test]
    fn private_verification_serial_matches_sharded() {
        let params = InternetParams {
            tier1: 3,
            tier2: 5,
            stubs: 12,
            t2_peering_prob: 0.3,
            ..InternetParams::default()
        };
        let t = internet_like(params, 21);
        let options = InstantiateOptions {
            seed: 21,
            private_verification: true,
            smc_lane_cap: 8,
            ..Default::default()
        };

        let mut serial = t.instantiate(options);
        assert_eq!(serial.converge(RunLimits::none()), StopReason::Quiescent);
        let serial_stats = serial.private_verifier().expect("verifier").stats();
        // Honest routers always select a shortest top-preference path,
        // so every private verdict passes; multi-candidate ties do
        // occur in this topology, so the service actually ran.
        assert!(serial_stats.requests > 0);
        assert!(serial_stats.batches > 0);
        assert_eq!(serial_stats.verdict_fail, 0);
        assert_eq!(serial_stats.verdicts_delivered, serial_stats.requests);

        for shards in [2, 4] {
            let mut sharded = t.instantiate_sharded(options, shards);
            assert_eq!(sharded.converge(RunLimits::none()), StopReason::Quiescent);
            let sharded_stats = sharded.private_verifier().expect("verifier").stats();
            assert_eq!(serial_stats, sharded_stats, "{shards} shards");
            assert_eq!(serial.sim.now(), sharded.sim.now(), "{shards} shards");
            assert_eq!(serial.router_totals(), sharded.router_totals(), "{shards} shards");
            assert_eq!(
                serial.private_verifier().unwrap().timeline(),
                sharded.private_verifier().unwrap().timeline(),
                "{shards} shards"
            );
        }
    }

    #[test]
    fn private_verification_leaves_routing_outcomes_unchanged() {
        let (t, cast) = figure1(&[0, 1, 2]);
        let mut plain = t.instantiate(InstantiateOptions::default());
        assert_eq!(plain.converge(RunLimits::none()), StopReason::Quiescent);
        let mut private =
            t.instantiate(InstantiateOptions { private_verification: true, ..Default::default() });
        assert_eq!(private.converge(RunLimits::none()), StopReason::Quiescent);
        // The verifier observes selections and charges time; it never
        // changes which route wins.
        for asn in t.ases() {
            assert_eq!(
                plain.router(asn).best_route(cast.prefix),
                private.router(asn).best_route(cast.prefix),
                "{asn}"
            );
        }
    }

    #[test]
    fn signed_mode_end_to_end() {
        let (t, cast) = figure1(&[0, 1]);
        let mut net =
            t.instantiate(InstantiateOptions { signed: true, key_bits: 512, ..Default::default() });
        net.converge(RunLimits::none());
        // Convergence must match plain mode and no attestation failures.
        let best = net.router(cast.a).best_route(cast.prefix).unwrap();
        assert_eq!(best.learned_from, Some(cast.ns[0]));
        for asn in net.ases().collect::<Vec<_>>() {
            assert_eq!(net.router(asn).stats().attestation_failures, 0, "{asn}");
        }
        assert!(net.keystore().is_some());
    }
}
