//! Update workloads: flaps, bursts, and randomized churn.
//!
//! §3.8 motivates batching with "BGP message bursts"; experiment E8
//! measures PVR overhead under realistic churn. These helpers attach
//! scheduled announce/withdraw events to a [`Topology`].

use crate::router::LocalEvent;
use crate::topology::Topology;
use crate::types::{Asn, Prefix};
use pvr_crypto::drbg::HmacDrbg;
use pvr_netsim::SimDuration;

/// Schedules `count` announce/withdraw flap cycles of `prefix` at `asn`,
/// starting at `start` with `period` between state changes.
pub fn flap(
    topology: &mut Topology,
    asn: Asn,
    prefix: Prefix,
    start: SimDuration,
    period: SimDuration,
    count: usize,
) {
    let mut at = start;
    for i in 0..count * 2 {
        let event =
            if i % 2 == 0 { LocalEvent::Withdraw(prefix) } else { LocalEvent::Announce(prefix) };
        topology.schedule(asn, at, event);
        at = at + period;
    }
}

/// Schedules a burst: `n` fresh prefixes announced by `asn` at `at`.
/// Prefixes are carved from `10.200.x.y/24`. Returns the prefixes.
pub fn burst(topology: &mut Topology, asn: Asn, at: SimDuration, n: usize) -> Vec<Prefix> {
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let prefix = if i < 256 {
            // One /24 per index.
            Prefix::new((10u32 << 24) | (200u32 << 16) | ((i as u32 & 0xff) << 8), 24)
        } else {
            // Beyond 256 the /24 space is exhausted: widen into /32 host
            // routes, keeping the low bits of `i` so every index still
            // yields a distinct prefix.
            Prefix::new(
                (10u32 << 24)
                    | (200u32 << 16)
                    | (((i as u32 >> 8) & 0xff) << 8)
                    | (i as u32 & 0xff),
                32,
            )
        };
        topology.schedule(asn, at, LocalEvent::Announce(prefix));
        out.push(prefix);
    }
    out
}

/// Randomized churn: each event re-announces or withdraws a random
/// origination from `candidates`. Deterministic in `seed`.
pub fn churn(
    topology: &mut Topology,
    candidates: &[(Asn, Prefix)],
    events: usize,
    start: SimDuration,
    spacing: SimDuration,
    seed: u64,
) {
    assert!(!candidates.is_empty());
    let mut rng = HmacDrbg::from_u64_labeled(seed, "workload-churn");
    let mut at = start;
    for _ in 0..events {
        let (asn, prefix) = candidates[rng.index(candidates.len())];
        let event = if rng.chance(0.5) {
            LocalEvent::Withdraw(prefix)
        } else {
            LocalEvent::Announce(prefix)
        };
        topology.schedule(asn, at, event);
        at = at + spacing;
    }
}

/// Sustained steady-state churn: each event withdraws a random
/// origination and re-announces it half a `spacing` later, so every
/// event is a guaranteed RIB change (unlike [`churn`], whose random
/// re-announcements of an already-announced prefix are no-ops) and the
/// network ends in the same state as a never-churned baseline.
///
/// Returns the `(time, origin, prefix)` withdraw schedule — the
/// reference points experiment E16 measures per-event route-settle
/// times against. Deterministic in `seed`.
pub fn continuous_churn(
    topology: &mut Topology,
    candidates: &[(Asn, Prefix)],
    events: usize,
    start: SimDuration,
    spacing: SimDuration,
    seed: u64,
) -> Vec<(SimDuration, Asn, Prefix)> {
    assert!(!candidates.is_empty());
    assert!(spacing.as_micros() >= 2, "spacing must fit a withdraw/announce pair");
    let mut rng = HmacDrbg::from_u64_labeled(seed, "workload-continuous-churn");
    let half = SimDuration::from_micros(spacing.as_micros() / 2);
    let mut at = start;
    let mut schedule = Vec::with_capacity(events);
    for _ in 0..events {
        let (asn, prefix) = candidates[rng.index(candidates.len())];
        topology.schedule(asn, at, LocalEvent::Withdraw(prefix));
        topology.schedule(asn, at + half, LocalEvent::Announce(prefix));
        schedule.push((at, asn, prefix));
        at = at + spacing;
    }
    schedule
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::InstantiateOptions;
    use pvr_netsim::RunLimits;

    #[test]
    fn burst_prefixes_are_distinct_past_256() {
        let mut t = Topology::new();
        let prefixes = burst(&mut t, Asn(1), SimDuration::from_micros(0), 600);
        assert_eq!(prefixes.len(), 600);
        let unique: std::collections::BTreeSet<_> = prefixes.iter().copied().collect();
        assert_eq!(unique.len(), 600, "burst() must return fresh, non-colliding prefixes");
    }

    fn base() -> (Topology, Asn, Asn, Prefix) {
        // AS1 (origin, customer) — AS2 (provider) — observes updates.
        let mut t = Topology::new();
        let origin = Asn(1);
        let provider = Asn(2);
        let prefix = Prefix::parse("10.0.0.0/8").unwrap();
        t.provider_customer(provider, origin);
        t.originate(origin, prefix);
        (t, origin, provider, prefix)
    }

    #[test]
    fn flap_generates_withdraw_announce_cycles() {
        let (mut t, origin, provider, prefix) = base();
        flap(
            &mut t,
            origin,
            prefix,
            SimDuration::from_millis(100),
            SimDuration::from_millis(100),
            3,
        );
        let mut net = t.instantiate(InstantiateOptions::default());
        net.converge(RunLimits::none());
        // After an odd number of flips… we scheduled withdraw,announce ×3,
        // so the route ends announced and the provider has it.
        assert!(net.router(provider).route_from(origin, prefix).is_some());
        // The provider saw at least initial + 6 updates.
        assert!(net.router(provider).stats().updates_rx >= 7);
    }

    #[test]
    fn burst_announces_n_prefixes() {
        let (mut t, origin, provider, _) = base();
        let ps = burst(&mut t, origin, SimDuration::from_millis(50), 10);
        assert_eq!(ps.len(), 10);
        let mut net = t.instantiate(InstantiateOptions::default());
        net.converge(RunLimits::none());
        for p in ps {
            assert!(net.router(provider).route_from(origin, p).is_some(), "{p}");
        }
    }

    #[test]
    fn churn_is_deterministic_and_converges() {
        let (mut t, origin, _, prefix) = base();
        churn(
            &mut t,
            &[(origin, prefix)],
            20,
            SimDuration::from_millis(10),
            SimDuration::from_millis(20),
            99,
        );
        let mut net = t.instantiate(InstantiateOptions::default());
        net.converge(RunLimits::none());
        let stats_a = net.router(Asn(2)).stats().clone();

        // Re-run identically: byte-for-byte the same.
        let (mut t2, origin2, _, prefix2) = base();
        churn(
            &mut t2,
            &[(origin2, prefix2)],
            20,
            SimDuration::from_millis(10),
            SimDuration::from_millis(20),
            99,
        );
        let mut net2 = t2.instantiate(InstantiateOptions::default());
        net2.converge(RunLimits::none());
        assert_eq!(net2.router(Asn(2)).stats(), &stats_a);
    }

    #[test]
    fn continuous_churn_recovers_to_baseline() {
        let (t_base, _, _, _) = base();
        let mut baseline = t_base.instantiate(InstantiateOptions::default());
        baseline.converge(RunLimits::none());

        let (mut t, origin, provider, prefix) = base();
        let schedule = continuous_churn(
            &mut t,
            &[(origin, prefix)],
            12,
            SimDuration::from_millis(100),
            SimDuration::from_millis(40),
            7,
        );
        assert_eq!(schedule.len(), 12);
        let mut churned = t.instantiate(InstantiateOptions::default());
        churned.converge(RunLimits::none());
        // Every cycle re-announces, so the steady state matches the
        // never-churned baseline...
        assert_eq!(
            churned.router(provider).route_from(origin, prefix),
            baseline.router(provider).route_from(origin, prefix),
        );
        // ...and every event really flapped (withdraw + re-announce
        // both crossed the wire).
        assert!(churned.router(provider).stats().updates_rx > 2 * 12);
    }
}

#[cfg(test)]
mod dampening_tests {
    use super::*;
    use crate::dampening::DampeningPolicy;
    use crate::topology::InstantiateOptions;
    use pvr_netsim::RunLimits;

    #[test]
    fn dampening_suppresses_persistent_flapping_then_recovers() {
        let mut t = Topology::new();
        let origin = Asn(1);
        let provider = Asn(2);
        let prefix = Prefix::parse("10.0.0.0/8").unwrap();
        t.provider_customer(provider, origin);
        t.originate(origin, prefix);
        // 8 rapid flap cycles, 5 ms apart — far inside the 200 ms
        // half-life, so the penalty ratchets past suppression.
        flap(&mut t, origin, prefix, SimDuration::from_millis(50), SimDuration::from_millis(5), 8);

        let mut net = t.instantiate(InstantiateOptions {
            dampening: Some(DampeningPolicy::default()),
            ..Default::default()
        });
        net.converge(RunLimits::none());
        let stats = net.router(provider).stats().clone();
        assert!(stats.dampening_suppressed > 0, "rapid flaps must trip suppression");
        // The flap schedule ends announced: once the penalty decays
        // below reuse, the parked announcement installs and the steady
        // state matches an undamped run — and the reuse timer stops
        // re-arming, or converge() would never return.
        assert!(net.router(provider).route_from(origin, prefix).is_some());
    }
}

#[cfg(test)]
mod mrai_tests {
    use super::*;
    use crate::messages::BgpUpdate;
    use crate::route::Route;
    use crate::sbgp::SignedRoute;
    use crate::topology::InstantiateOptions;
    use crate::types::{Asn, Prefix};
    use pvr_netsim::RunLimits;

    fn flappy_topology() -> (Topology, Asn, Asn, Prefix) {
        let mut t = Topology::new();
        let origin = Asn(1);
        let provider = Asn(2);
        let prefix = Prefix::parse("10.0.0.0/8").unwrap();
        t.provider_customer(provider, origin);
        t.originate(origin, prefix);
        // 10 rapid flaps, 1 ms apart — well inside a 100 ms MRAI window.
        flap(&mut t, origin, prefix, SimDuration::from_millis(50), SimDuration::from_millis(1), 10);
        (t, origin, provider, prefix)
    }

    #[test]
    fn mrai_suppresses_flap_churn() {
        let (t, origin, provider, prefix) = flappy_topology();

        let mut fast = t.instantiate(InstantiateOptions::default());
        fast.converge(RunLimits::none());
        let updates_without = fast.router(provider).stats().updates_rx;

        let mut damped = t.instantiate(InstantiateOptions {
            mrai: Some(SimDuration::from_millis(100)),
            ..Default::default()
        });
        damped.converge(RunLimits::none());
        let updates_with = damped.router(provider).stats().updates_rx;

        assert!(
            updates_with < updates_without,
            "MRAI should reduce updates: {updates_with} vs {updates_without}"
        );
        // Final state must agree: the route ends up announced either way.
        assert!(fast.router(provider).route_from(origin, prefix).is_some());
        assert!(damped.router(provider).route_from(origin, prefix).is_some());
    }

    #[test]
    fn mrai_preserves_final_state_on_withdrawal() {
        // End on a withdrawal: the damped router must converge to
        // "no route" too (the merge logic must not lose the withdraw).
        let mut t = Topology::new();
        let origin = Asn(1);
        let provider = Asn(2);
        let prefix = Prefix::parse("10.0.0.0/8").unwrap();
        t.provider_customer(provider, origin);
        t.originate(origin, prefix);
        t.schedule(origin, SimDuration::from_millis(50), LocalEvent::Withdraw(prefix));
        t.schedule(origin, SimDuration::from_millis(51), LocalEvent::Announce(prefix));
        t.schedule(origin, SimDuration::from_millis(52), LocalEvent::Withdraw(prefix));

        let mut net = t.instantiate(InstantiateOptions {
            mrai: Some(SimDuration::from_millis(100)),
            ..Default::default()
        });
        net.converge(RunLimits::none());
        assert!(net.router(provider).route_from(origin, prefix).is_none());
    }

    #[test]
    fn update_merge_semantics() {
        let prefix = Prefix::parse("10.0.0.0/8").unwrap();
        let mk = |asns: &[u32]| {
            let mut r = Route::originate(prefix);
            for &a in asns.iter().rev() {
                r = r.propagated_by(Asn(a));
            }
            SignedRoute::unsigned(r)
        };
        // announce then withdraw → withdraw only.
        let mut u = BgpUpdate { announces: vec![mk(&[1])], withdraws: vec![] };
        u.merge(BgpUpdate { announces: vec![], withdraws: vec![prefix] });
        assert!(u.announces.is_empty());
        assert_eq!(u.withdraws, vec![prefix]);
        // withdraw then announce → announce only.
        u.merge(BgpUpdate { announces: vec![mk(&[2])], withdraws: vec![] });
        assert!(u.withdraws.is_empty());
        assert_eq!(u.announces.len(), 1);
        assert_eq!(u.announces[0].route.path.asns(), &[Asn(2)]);
        // newer announcement replaces older for the same prefix.
        u.merge(BgpUpdate { announces: vec![mk(&[3])], withdraws: vec![] });
        assert_eq!(u.announces.len(), 1);
        assert_eq!(u.announces[0].route.path.asns(), &[Asn(3)]);
    }
}
