//! S-BGP-style route attestations.
//!
//! The paper builds on secure BGP (§1, citing Kent et al. \[13\]): "Secure
//! variants of BGP, such as S-BGP, have been proposed as mechanisms for
//! ISPs to check that a routing announcement does correspond to the
//! claimed path and destination" — and PVR's condition 1 (§3.2) relies on
//! exactly this: "To support condition 1, we can sign all the routing
//! announcements."
//!
//! Construction: when AS `s` announces prefix `p` with path `P` to
//! neighbor `t`, it appends an attestation — its signature over
//! `(p, P, t)`. The chain of attestations, one per AS on the path, proves
//! that every hop authorized the announcement to the next hop, so a
//! receiver can check that the route "was provided to A by some N_i".
//!
//! Not covered by signatures (as in real S-BGP): LOCAL_PREF, MED, and
//! communities — they are non-transitive or locally meaningful.

use crate::path::AsPath;
use crate::route::Route;
use crate::types::{Asn, Prefix};
use pvr_crypto::encoding::{decode_seq, Reader, Wire, WireError};
use pvr_crypto::keys::{Identity, KeyStore};
use pvr_crypto::rsa::RsaSignature;
use pvr_crypto::sha256::sha256_concat;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One hop's signature over (prefix, path-so-far, intended receiver).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Attestation {
    /// The announced prefix.
    pub prefix: Prefix,
    /// The path at signing time, nearest AS (the signer) first.
    pub path: AsPath,
    /// The AS the announcement was directed to.
    pub target: Asn,
    /// The signing AS (must equal `path.first_as()`).
    pub signer: Asn,
    /// Signature over the canonical encoding of the above.
    pub signature: RsaSignature,
}

impl Attestation {
    /// Writes the canonical signing payload into `buf` (which is
    /// cleared first). Chain verification reuses one growable buffer
    /// across all attestations instead of allocating per hop.
    fn signed_bytes_into(
        buf: &mut Vec<u8>,
        prefix: &Prefix,
        path: &AsPath,
        target: Asn,
        signer: Asn,
    ) {
        buf.clear();
        buf.extend_from_slice(b"pvr.sbgp.v1");
        prefix.encode(buf);
        path.encode(buf);
        target.encode(buf);
        signer.encode(buf);
    }

    fn signed_bytes(prefix: &Prefix, path: &AsPath, target: Asn, signer: Asn) -> Vec<u8> {
        let mut buf = Vec::with_capacity(64);
        Self::signed_bytes_into(&mut buf, prefix, path, target, signer);
        buf
    }

    /// Creates `identity`'s attestation for announcing (`prefix`, `path`)
    /// to `target`.
    pub fn create(identity: &Identity, prefix: Prefix, path: &AsPath, target: Asn) -> Attestation {
        let signer = Asn(identity.id() as u32);
        debug_assert_eq!(path.first_as(), Some(signer), "signer must head the path");
        let bytes = Self::signed_bytes(&prefix, path, target, signer);
        Attestation { prefix, path: path.clone(), target, signer, signature: identity.sign(&bytes) }
    }

    /// Verifies the signature.
    pub fn verify(&self, keys: &KeyStore) -> Result<(), SbgpError> {
        let bytes = Self::signed_bytes(&self.prefix, &self.path, self.target, self.signer);
        keys.verify(self.signer.principal(), &bytes, &self.signature)
            .map_err(|_| SbgpError::BadSignature(self.signer))
    }
}

impl Wire for Attestation {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.prefix.encode(buf);
        self.path.encode(buf);
        self.target.encode(buf);
        self.signer.encode(buf);
        self.signature.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Attestation {
            prefix: Prefix::decode(r)?,
            path: AsPath::decode(r)?,
            target: Asn::decode(r)?,
            signer: Asn::decode(r)?,
            signature: RsaSignature::decode(r)?,
        })
    }
    fn encoded_len(&self) -> usize {
        self.prefix.encoded_len()
            + self.path.encoded_len()
            + 4 // target
            + 4 // signer
            + self.signature.encoded_len()
    }
}

/// A persistent (structurally shared) attestation chain.
///
/// Propagating a signed route appends exactly one attestation to the
/// chain it arrived with, so chains across a network form a tree of
/// shared prefixes. The pre-E14 representation (`Vec<Attestation>`)
/// deep-copied the whole prefix — path slices and signature bytes — at
/// every hop and for every per-neighbor clone. This cons list shares
/// the parent instead: [`AttestationChain::push`] allocates one node,
/// and every clone anywhere downstream is a reference-count bump.
///
/// The newest attestation (last hop's) is the list head; origin-first
/// order — the canonical wire and verification order — is recovered by
/// collecting references, which chains are short enough (path length)
/// to make free compared to one RSA verify.
#[derive(Clone, Default)]
pub struct AttestationChain(Option<Arc<ChainNode>>);

#[derive(Debug)]
struct ChainNode {
    att: Attestation,
    parent: Option<Arc<ChainNode>>,
    /// Number of attestations up to and including this node.
    len: u32,
}

impl AttestationChain {
    /// The empty chain (an unsigned route).
    pub fn empty() -> AttestationChain {
        AttestationChain(None)
    }

    /// Builds a chain from origin-first attestations (wire order). Used
    /// by decoding, tests, and attack strategies that forge chains
    /// explicitly.
    pub fn from_attestations(atts: Vec<Attestation>) -> AttestationChain {
        let mut chain = AttestationChain::empty();
        for att in atts {
            chain = chain.push(att);
        }
        chain
    }

    /// A new chain extending `self` with `att` (the newest hop's
    /// attestation). `self` is shared, never copied.
    pub fn push(&self, att: Attestation) -> AttestationChain {
        let len = self.len() as u32 + 1;
        AttestationChain(Some(Arc::new(ChainNode { att, parent: self.0.clone(), len })))
    }

    /// Number of attestations.
    pub fn len(&self) -> usize {
        self.0.as_ref().map_or(0, |n| n.len as usize)
    }

    /// True when the chain holds no attestations.
    pub fn is_empty(&self) -> bool {
        self.0.is_none()
    }

    /// The most recent attestation (the last signer's), if any.
    pub fn newest(&self) -> Option<&Attestation> {
        self.0.as_deref().map(|n| &n.att)
    }

    /// The origin AS's attestation (the oldest), if any.
    pub fn origin(&self) -> Option<&Attestation> {
        let mut node = self.0.as_deref()?;
        while let Some(parent) = node.parent.as_deref() {
            node = parent;
        }
        Some(&node.att)
    }

    /// Iterates newest-first (list order; O(1) per step).
    pub fn iter_newest_first(&self) -> impl Iterator<Item = &Attestation> {
        std::iter::successors(self.0.as_deref(), |n| n.parent.as_deref()).map(|n| &n.att)
    }

    /// References to all attestations in canonical origin-first order.
    pub fn to_refs(&self) -> Vec<&Attestation> {
        let mut refs: Vec<&Attestation> = self.iter_newest_first().collect();
        refs.reverse();
        refs
    }

    /// Clones all attestations in canonical origin-first order.
    pub fn to_vec(&self) -> Vec<Attestation> {
        self.to_refs().into_iter().cloned().collect()
    }
}

impl PartialEq for AttestationChain {
    fn eq(&self, other: &Self) -> bool {
        if self.len() != other.len() {
            return false;
        }
        let mut a = self.0.as_deref();
        let mut b = other.0.as_deref();
        while let (Some(x), Some(y)) = (a, b) {
            // Shared suffixes compare in O(1); a chain equals itself or
            // a clone without walking.
            if std::ptr::eq(x, y) {
                return true;
            }
            if x.att != y.att {
                return false;
            }
            a = x.parent.as_deref();
            b = y.parent.as_deref();
        }
        true
    }
}

impl Eq for AttestationChain {}

impl std::fmt::Debug for AttestationChain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.to_refs()).finish()
    }
}

/// A network-wide RSA-verification memo for attestation signatures.
///
/// `sbgp` re-verifies the *entire* chain at every import hop, so a
/// route that crosses `h` ASes costs `O(h²)` RSA verifies network-wide
/// — and every prefix-suffix attestation past the first hop is one
/// some router already checked. One cache shared per
/// [`crate::BgpNetwork`] collapses that: the verdict for an
/// attestation depends only on the signer, the signed payload, and
/// the signature bytes, all captured in the cache key.
///
/// The key is `(signer, sha256(signed_bytes ‖ signature))`. Hashing
/// the signature *with* the payload is load-bearing: a forged
/// attestation carries the same signed bytes as the genuine one but a
/// different (invalid) signature, and a payload-only key would let the
/// genuine chain's cached `true` launder the forgery (pinned by the
/// cache regression tests in `tests/detection_matrix.rs`).
///
/// A cache memo exported for checkpointing: sorted
/// `(signer, digest, verdict)` entries plus the call/hit counters.
pub(crate) type CacheState = (Vec<(Asn, [u8; 32], bool)>, u64, u64);

/// Interior mutability is a `Mutex` so the cache can be shared
/// read-only across router agents; a simulation is single-threaded,
/// so the lock is never contended.
#[derive(Debug, Default)]
pub struct VerifyCache {
    verdicts: Mutex<HashMap<(Asn, [u8; 32]), bool>>,
    calls: AtomicU64,
    hits: AtomicU64,
}

impl VerifyCache {
    /// An empty cache.
    pub fn new() -> VerifyCache {
        VerifyCache::default()
    }

    /// Total attestation-signature checks requested through the cache.
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    /// How many of those were answered from the memo (no RSA math).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Exports the memo for checkpointing: `(entries, calls, hits)`
    /// with entries in `(signer, digest)` order, so the same cache
    /// state always serializes to the same bytes.
    pub(crate) fn export_state(&self) -> CacheState {
        let mut entries: Vec<(Asn, [u8; 32], bool)> = self
            .verdicts
            .lock()
            .unwrap()
            .iter()
            .map(|(&(signer, digest), &verdict)| (signer, digest, verdict))
            .collect();
        entries.sort_unstable_by_key(|&(signer, digest, _)| (signer, digest));
        (entries, self.calls(), self.hits())
    }

    /// Replaces the memo with a checkpointed state. Restore only: the
    /// cache is shared by `Arc`, so this goes through the interior
    /// mutability the hot path already uses.
    pub(crate) fn load_state(&self, entries: Vec<(Asn, [u8; 32], bool)>, calls: u64, hits: u64) {
        let mut verdicts = self.verdicts.lock().unwrap();
        verdicts.clear();
        for (signer, digest, verdict) in entries {
            verdicts.insert((signer, digest), verdict);
        }
        drop(verdicts);
        self.calls.store(calls, Ordering::Relaxed);
        self.hits.store(hits, Ordering::Relaxed);
    }

    /// Checks `signer`'s signature over `signed_bytes`, consulting the
    /// memo first. The verdict (valid or not) is cached either way —
    /// a forged chain replayed at every hop would otherwise cost the
    /// full RSA verify each time it is rejected.
    fn check(&self, signer: Asn, signed_bytes: &[u8], sig: &RsaSignature, keys: &KeyStore) -> bool {
        self.calls.fetch_add(1, Ordering::Relaxed);
        let digest = sha256_concat(&[signed_bytes, &sig.0]);
        let mut key = [0u8; 32];
        key.copy_from_slice(digest.as_bytes());
        if let Some(&verdict) = self.verdicts.lock().unwrap().get(&(signer, key)) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return verdict;
        }
        let verdict = keys.verify(signer.principal(), signed_bytes, sig).is_ok();
        self.verdicts.lock().unwrap().insert((signer, key), verdict);
        verdict
    }
}

/// A route bundled with its attestation chain (origin's attestation
/// first on the wire). An empty chain means the route is unsigned
/// (plain BGP mode).
///
/// The chain is a shared persistent list: cloning a `SignedRoute` — as
/// per-neighbor fan-out, RIB storage, and delivery tracing all do —
/// never copies attestation bytes, and [`SignedRoute::extend`] shares
/// the received chain rather than re-copying its prefix. Forged or
/// hand-built chains are constructed explicitly via
/// [`AttestationChain::from_attestations`] and
/// [`SignedRoute::with_chain`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SignedRoute {
    /// The route as announced.
    pub route: Route,
    /// Attestation chain; length equals the path length when signed,
    /// zero when unsigned.
    chain: AttestationChain,
}

impl SignedRoute {
    /// Wraps a route without signatures (plain BGP).
    pub fn unsigned(route: Route) -> SignedRoute {
        SignedRoute { route, chain: AttestationChain::empty() }
    }

    /// Bundles a route with an explicitly built chain (decoders, tests,
    /// and attack strategies forging or splicing chains).
    pub fn with_chain(route: Route, chain: AttestationChain) -> SignedRoute {
        SignedRoute { route, chain }
    }

    /// The attestation chain.
    pub fn chain(&self) -> &AttestationChain {
        &self.chain
    }

    /// True if the route carries an attestation chain.
    pub fn is_signed(&self) -> bool {
        !self.chain.is_empty()
    }

    /// Originates a signed route: `identity`'s AS announces its own
    /// prefix to `target`. The route's path must be exactly `[signer]`.
    pub fn originate(identity: &Identity, route: Route, target: Asn) -> SignedRoute {
        assert_eq!(
            route.path.asns(),
            &[Asn(identity.id() as u32)],
            "origination path must be [self]"
        );
        let att = Attestation::create(identity, route.prefix, &route.path, target);
        SignedRoute { route, chain: AttestationChain::empty().push(att) }
    }

    /// Extends a received signed route for re-announcement: `identity`'s
    /// AS prepends itself (already done in `route`) and signs toward
    /// `target`. `route.path` must start with the signer and continue
    /// with the received chain's path. The received chain is shared,
    /// not copied.
    pub fn extend(
        received: &SignedRoute,
        identity: &Identity,
        route: Route,
        target: Asn,
    ) -> SignedRoute {
        debug_assert_eq!(route.path.first_as(), Some(Asn(identity.id() as u32)));
        let att = Attestation::create(identity, route.prefix, &route.path, target);
        SignedRoute { route, chain: received.chain.push(att) }
    }

    /// Verifies the whole chain for an announcement delivered to
    /// `receiver`. Checks, per §1's S-BGP description, that the
    /// announcement corresponds to the claimed path and destination:
    ///
    /// * one attestation per AS on the path, origin first;
    /// * each attestation's path is the correct suffix of the route path;
    /// * each attestation's target is the next AS (the last one's is
    ///   `receiver`);
    /// * every signature verifies.
    pub fn verify(&self, receiver: Asn, keys: &KeyStore) -> Result<(), SbgpError> {
        self.verify_cached(receiver, keys, None)
    }

    /// [`SignedRoute::verify`] with an optional network-wide
    /// [`VerifyCache`]: verdicts are identical with or without the
    /// cache, only the number of RSA operations differs.
    pub fn verify_cached(
        &self,
        receiver: Asn,
        keys: &KeyStore,
        cache: Option<&VerifyCache>,
    ) -> Result<(), SbgpError> {
        let path = self.route.path.asns();
        if path.is_empty() {
            return Err(SbgpError::EmptyPath);
        }
        if self.route.path.has_loop() {
            return Err(SbgpError::PathLoop);
        }
        if self.chain.len() != path.len() {
            return Err(SbgpError::ChainLength { expected: path.len(), got: self.chain.len() });
        }
        let m = path.len();
        // One signing-payload buffer for the whole chain; the ref
        // collection restores origin-first order so error precedence
        // matches the pre-sharing implementation exactly.
        let mut buf = Vec::with_capacity(64);
        for (j, att) in self.chain.to_refs().into_iter().enumerate() {
            // Attestation j (origin first) was made by path[m-1-j].
            let signer_idx = m - 1 - j;
            let expected_signer = path[signer_idx];
            let expected_target = if signer_idx == 0 { receiver } else { path[signer_idx - 1] };
            if att.signer != expected_signer {
                return Err(SbgpError::WrongSigner { expected: expected_signer, got: att.signer });
            }
            if att.prefix != self.route.prefix {
                return Err(SbgpError::PrefixMismatch);
            }
            if att.path.asns() != &path[signer_idx..] {
                return Err(SbgpError::PathMismatch(att.signer));
            }
            if att.target != expected_target {
                return Err(SbgpError::WrongTarget { expected: expected_target, got: att.target });
            }
            Attestation::signed_bytes_into(
                &mut buf,
                &att.prefix,
                &att.path,
                att.target,
                att.signer,
            );
            let ok = match cache {
                Some(cache) => cache.check(att.signer, &buf, &att.signature, keys),
                None => keys.verify(att.signer.principal(), &buf, &att.signature).is_ok(),
            };
            if !ok {
                return Err(SbgpError::BadSignature(att.signer));
            }
        }
        Ok(())
    }
}

impl Wire for SignedRoute {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.route.encode(buf);
        let refs = self.chain.to_refs();
        (refs.len() as u32).encode(buf);
        for att in refs {
            att.encode(buf);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(SignedRoute {
            route: Route::decode(r)?,
            chain: AttestationChain::from_attestations(decode_seq(r)?),
        })
    }
    fn encoded_len(&self) -> usize {
        self.route.encoded_len()
            + 4
            + self.chain.iter_newest_first().map(Wire::encoded_len).sum::<usize>()
    }
}

/// Builds a genuine `hops`-long attestation chain AS1 → … → AS`hops`,
/// announced toward AS`hops+1`, plus the populated key store. The
/// shared fixture behind the E13 experiment, the chain-verify bench,
/// and the cache regression tests — one place to change if chain
/// conventions ever do.
pub fn demo_chain(
    hops: u32,
    key_bits: usize,
    seed: &[u8],
) -> (SignedRoute, KeyStore, /* receiver */ Asn) {
    use pvr_crypto::drbg::HmacDrbg;
    assert!(hops >= 1, "a chain needs at least an origin");
    let mut rng = HmacDrbg::new(seed);
    let ids: Vec<Identity> =
        (1..=hops as u64).map(|a| Identity::generate(a, key_bits, &mut rng)).collect();
    let mut keys = KeyStore::new();
    for id in &ids {
        keys.register_identity(id);
    }
    let prefix = Prefix::parse("10.77.0.0/16").unwrap();
    let mut route = Route::originate(prefix);
    route.path = AsPath::from_slice(&[Asn(1)]);
    let mut chain = SignedRoute::originate(&ids[0], route, Asn(2));
    for hop in 2..=hops {
        let next = chain.route.clone().propagated_by(Asn(hop));
        chain = SignedRoute::extend(&chain, &ids[hop as usize - 1], next, Asn(hop + 1));
    }
    (chain, keys, Asn(hops + 1))
}

/// Attestation-chain verification failures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SbgpError {
    /// Route has no path (locally originated routes are not announced).
    EmptyPath,
    /// Path contains a repeated AS.
    PathLoop,
    /// Number of attestations does not match path length.
    ChainLength {
        /// Path length.
        expected: usize,
        /// Attestation count.
        got: usize,
    },
    /// An attestation was made by the wrong AS.
    WrongSigner {
        /// AS that should have signed at this position.
        expected: Asn,
        /// AS that actually signed.
        got: Asn,
    },
    /// An attestation covers a different prefix.
    PrefixMismatch,
    /// An attestation's path is not the expected suffix.
    PathMismatch(Asn),
    /// An attestation was directed at the wrong next hop.
    WrongTarget {
        /// Required target.
        expected: Asn,
        /// Actual target.
        got: Asn,
    },
    /// A signature failed.
    BadSignature(Asn),
}

impl std::fmt::Display for SbgpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SbgpError::EmptyPath => write!(f, "empty AS path"),
            SbgpError::PathLoop => write!(f, "AS path contains a loop"),
            SbgpError::ChainLength { expected, got } => {
                write!(f, "attestation chain length {got}, expected {expected}")
            }
            SbgpError::WrongSigner { expected, got } => {
                write!(f, "attestation signed by {got}, expected {expected}")
            }
            SbgpError::PrefixMismatch => write!(f, "attestation prefix mismatch"),
            SbgpError::PathMismatch(asn) => write!(f, "attestation path mismatch at {asn}"),
            SbgpError::WrongTarget { expected, got } => {
                write!(f, "attestation targeted {got}, expected {expected}")
            }
            SbgpError::BadSignature(asn) => write!(f, "bad signature from {asn}"),
        }
    }
}

impl std::error::Error for SbgpError {}

#[cfg(test)]
mod tests {
    use super::*;
    use pvr_crypto::drbg::HmacDrbg;

    fn prefix() -> Prefix {
        Prefix::parse("10.0.0.0/8").unwrap()
    }

    /// Identities for AS 1..=4 plus a populated key store.
    fn setup() -> (Vec<Identity>, KeyStore) {
        let mut rng = HmacDrbg::new(b"sbgp tests");
        let ids: Vec<Identity> = (1..=4).map(|a| Identity::generate(a, 512, &mut rng)).collect();
        let mut keys = KeyStore::new();
        for id in &ids {
            keys.register_identity(id);
        }
        (ids, keys)
    }

    /// Builds the chain AS1 → AS2 → AS3 (receiver AS3).
    fn two_hop_chain(ids: &[Identity]) -> SignedRoute {
        let mut r1 = Route::originate(prefix());
        r1.path = AsPath::from_slice(&[Asn(1)]);
        let sr1 = SignedRoute::originate(&ids[0], r1, Asn(2));
        // AS2 re-announces to AS3.
        let r2 = {
            let mut r = sr1.route.clone().propagated_by(Asn(2));
            r.prefix = sr1.route.prefix;
            r
        };
        SignedRoute::extend(&sr1, &ids[1], r2, Asn(3))
    }

    #[test]
    fn valid_chain_verifies() {
        let (ids, keys) = setup();
        let sr = two_hop_chain(&ids);
        assert!(sr.verify(Asn(3), &keys).is_ok());
    }

    #[test]
    fn wrong_receiver_rejected() {
        // AS3 forwarding AS2's announcement to AS4 unchanged must fail:
        // the top attestation targets AS3, not AS4 (cut-and-paste attack).
        let (ids, keys) = setup();
        let sr = two_hop_chain(&ids);
        assert_eq!(
            sr.verify(Asn(4), &keys),
            Err(SbgpError::WrongTarget { expected: Asn(4), got: Asn(3) })
        );
    }

    #[test]
    fn truncated_chain_rejected() {
        // Path shortening attack: AS3 strips AS2 from the path.
        let (ids, keys) = setup();
        let sr = two_hop_chain(&ids);
        let mut forged = sr.clone();
        forged.route.path = AsPath::from_slice(&[Asn(2)]);
        assert!(matches!(forged.verify(Asn(3), &keys), Err(SbgpError::ChainLength { .. })));
    }

    #[test]
    fn path_insertion_rejected() {
        // AS3 invents a shorter-looking path it never received.
        let (ids, keys) = setup();
        let sr = two_hop_chain(&ids);
        let mut forged = sr.clone();
        forged.route.path = AsPath::from_slice(&[Asn(4), Asn(2), Asn(1)]);
        assert!(forged.verify(Asn(3), &keys).is_err());
    }

    #[test]
    fn tampered_prefix_rejected() {
        let (ids, keys) = setup();
        let mut sr = two_hop_chain(&ids);
        sr.route.prefix = Prefix::parse("192.168.0.0/16").unwrap();
        assert!(sr.verify(Asn(3), &keys).is_err());
    }

    #[test]
    fn tampered_signature_rejected() {
        let (ids, keys) = setup();
        let sr = two_hop_chain(&ids);
        let mut atts = sr.chain().to_vec();
        atts[0].signature.0[5] ^= 1;
        let sr = SignedRoute::with_chain(sr.route, AttestationChain::from_attestations(atts));
        assert_eq!(sr.verify(Asn(3), &keys), Err(SbgpError::BadSignature(Asn(1))));
    }

    #[test]
    fn looped_path_rejected() {
        let (ids, keys) = setup();
        let mut sr = two_hop_chain(&ids);
        sr.route.path = AsPath::from_slice(&[Asn(2), Asn(1), Asn(2)]);
        let repeat = sr.chain().newest().unwrap().clone();
        sr = SignedRoute::with_chain(sr.route.clone(), sr.chain().push(repeat));
        assert_eq!(sr.verify(Asn(3), &keys), Err(SbgpError::PathLoop));
    }

    #[test]
    fn empty_path_rejected() {
        let (_, keys) = setup();
        let sr = SignedRoute::unsigned(Route::originate(prefix()));
        assert_eq!(sr.verify(Asn(3), &keys), Err(SbgpError::EmptyPath));
    }

    #[test]
    fn attributes_not_covered_by_signature() {
        // LOCAL_PREF changes must not invalidate the chain (non-transitive
        // attributes are outside the attestation, as in real S-BGP).
        let (ids, keys) = setup();
        let mut sr = two_hop_chain(&ids);
        sr.route.local_pref = 999;
        sr.route.med = 7;
        assert!(sr.verify(Asn(3), &keys).is_ok());
    }

    #[test]
    fn unsigned_round_trip() {
        let sr = SignedRoute::unsigned(Route::originate(prefix()));
        assert!(!sr.is_signed());
        let back: SignedRoute = pvr_crypto::decode_exact(&sr.to_wire()).unwrap();
        assert_eq!(back, sr);
    }

    #[test]
    fn signed_wire_round_trip() {
        let (ids, keys) = setup();
        let sr = two_hop_chain(&ids);
        let back: SignedRoute = pvr_crypto::decode_exact(&sr.to_wire()).unwrap();
        assert_eq!(back, sr);
        assert!(back.verify(Asn(3), &keys).is_ok());
    }

    #[test]
    fn cached_verify_matches_uncached() {
        let (ids, keys) = setup();
        let sr = two_hop_chain(&ids);
        let cache = VerifyCache::new();
        assert_eq!(sr.verify(Asn(3), &keys), sr.verify_cached(Asn(3), &keys, Some(&cache)));
        assert_eq!(cache.calls(), 2);
        assert_eq!(cache.hits(), 0);
        // Second pass: every signature check answered from the memo.
        assert!(sr.verify_cached(Asn(3), &keys, Some(&cache)).is_ok());
        assert_eq!(cache.calls(), 4);
        assert_eq!(cache.hits(), 2);
    }

    #[test]
    fn cache_does_not_launder_forged_signatures() {
        // Same signed bytes, different signature: the genuine chain's
        // cached `true` must not validate the forgery (the cache key
        // covers the signature, not just the payload).
        let (ids, keys) = setup();
        let sr = two_hop_chain(&ids);
        let cache = VerifyCache::new();
        assert!(sr.verify_cached(Asn(3), &keys, Some(&cache)).is_ok());
        let mut atts = sr.chain().to_vec();
        atts[0].signature.0[5] ^= 1;
        let forged =
            SignedRoute::with_chain(sr.route.clone(), AttestationChain::from_attestations(atts));
        assert_eq!(
            forged.verify_cached(Asn(3), &keys, Some(&cache)),
            Err(SbgpError::BadSignature(Asn(1)))
        );
        // And the rejection itself is memoized on replay.
        let calls = cache.calls();
        assert_eq!(
            forged.verify_cached(Asn(3), &keys, Some(&cache)),
            Err(SbgpError::BadSignature(Asn(1)))
        );
        assert_eq!(cache.calls(), calls + 1);
        assert!(cache.hits() >= 1);
    }

    /// The persistent chain must be observationally identical to the
    /// owned `Vec<Attestation>` it replaced: construction by `push` or
    /// `from_attestations`, accessors, equality, wire round-trips, and
    /// encoded length all behave as if the chain were the vector.
    /// Attestations here carry dummy signatures — representation
    /// equivalence is independent of signature validity.
    /// Derives an attestation deterministically from one seed (the
    /// vendored proptest shim has no tuple strategies). Signatures are
    /// dummies — representation equivalence does not depend on
    /// signature validity.
    fn dummy_attestations(seeds: &[u64]) -> Vec<Attestation> {
        seeds
            .iter()
            .map(|&seed| Attestation {
                prefix: Prefix::parse("10.0.0.0/8").unwrap(),
                path: AsPath::from_slice(&[Asn(1 + (seed % 97) as u32)]),
                target: Asn(1 + ((seed >> 8) % 97) as u32),
                signer: Asn(1 + (seed % 97) as u32),
                signature: pvr_crypto::rsa::RsaSignature(
                    (0..4 + (seed % 28) as u8).map(|i| i ^ (seed >> 16) as u8).collect(),
                ),
            })
            .collect()
    }

    use proptest::prelude::*;

    proptest! {
        #[test]
        fn chain_matches_owned_vec_semantics(
            seeds in proptest::collection::vec(any::<u64>(), 0..6),
        ) {
            let atts = dummy_attestations(&seeds);
            // from_attestations == repeated push.
            let chain = AttestationChain::from_attestations(atts.clone());
            let mut pushed = AttestationChain::empty();
            for a in &atts {
                pushed = pushed.push(a.clone());
            }
            prop_assert_eq!(&chain, &pushed);
            // Accessors mirror the vector.
            prop_assert_eq!(chain.len(), atts.len());
            prop_assert_eq!(chain.is_empty(), atts.is_empty());
            prop_assert_eq!(chain.origin(), atts.first());
            prop_assert_eq!(chain.newest(), atts.last());
            prop_assert_eq!(chain.to_vec(), atts.clone());
            let newest_first: Vec<Attestation> =
                chain.iter_newest_first().cloned().collect();
            let mut rev = atts.clone();
            rev.reverse();
            prop_assert_eq!(newest_first, rev);
            // Clones share structure but compare equal; an extended
            // clone diverges without disturbing the parent.
            let shared = chain.clone();
            prop_assert_eq!(&shared, &chain);
            if let Some(first) = atts.first() {
                let longer = chain.push(first.clone());
                prop_assert_eq!(longer.len(), chain.len() + 1);
                prop_assert_ne!(&longer, &chain);
                prop_assert_eq!(chain.to_vec(), atts.clone());
            }
            // Wire bytes equal the origin-first sequence encoding, and
            // the arithmetic length matches (SignedRoute carries the
            // chain on the wire).
            let sr = SignedRoute::with_chain(
                Route::originate(Prefix::parse("10.0.0.0/8").unwrap()),
                chain.clone(),
            );
            let mut expect = sr.route.to_wire();
            pvr_crypto::encoding::encode_seq(&atts, &mut expect);
            prop_assert_eq!(sr.to_wire(), expect);
            prop_assert_eq!(sr.encoded_len(), sr.to_wire().len());
            let back: SignedRoute = pvr_crypto::decode_exact(&sr.to_wire()).unwrap();
            prop_assert_eq!(back, sr);
        }
    }

    #[test]
    fn three_hop_chain() {
        let (ids, keys) = setup();
        let sr = two_hop_chain(&ids);
        // AS3 extends to AS4.
        let r3 = sr.route.clone().propagated_by(Asn(3));
        let sr3 = SignedRoute::extend(&sr, &ids[2], r3, Asn(4));
        assert!(sr3.verify(Asn(4), &keys).is_ok());
        assert_eq!(sr3.chain().len(), 3);
        // And the intermediate receiver can no longer be claimed.
        assert!(sr3.verify(Asn(3), &keys).is_err());
    }
}
