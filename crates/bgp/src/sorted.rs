//! A flat sorted-vector map for the RIB hot path.
//!
//! Router RIBs are small per key-space (a few hundred prefixes, a
//! handful of neighbors) but are hit on every delivered UPDATE across
//! millions of events. At that shape a contiguous sorted vector beats a
//! `BTreeMap`: lookups are a binary search over adjacent memory with no
//! pointer chasing or per-node allocation, replacement (the dominant
//! write — BGP implicit withdraw) is in place, and iteration — which
//! must stay key-ordered for the simulator's determinism guarantees —
//! is a linear walk. Inserts of *new* keys memmove the tail, which is
//! O(n) but happens once per (router, key) over a whole convergence
//! run.

/// A map over `Copy + Ord` keys stored as a sorted vector of pairs.
#[derive(Clone, Debug)]
pub struct SortedMap<K, V> {
    entries: Vec<(K, V)>,
}

impl<K, V> Default for SortedMap<K, V> {
    fn default() -> Self {
        SortedMap { entries: Vec::new() }
    }
}

impl<K: Ord + Copy, V> SortedMap<K, V> {
    /// An empty map.
    pub fn new() -> SortedMap<K, V> {
        SortedMap { entries: Vec::new() }
    }

    fn position(&self, key: K) -> Result<usize, usize> {
        self.entries.binary_search_by_key(&key, |&(k, _)| k)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The value for `key`, if present.
    pub fn get(&self, key: K) -> Option<&V> {
        self.position(key).ok().map(|i| &self.entries[i].1)
    }

    /// Mutable access to the value for `key`, if present.
    pub fn get_mut(&mut self, key: K) -> Option<&mut V> {
        self.position(key).ok().map(|i| &mut self.entries[i].1)
    }

    /// Inserts or replaces; returns the previous value if any.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        match self.position(key) {
            Ok(i) => Some(std::mem::replace(&mut self.entries[i].1, value)),
            Err(i) => {
                self.entries.insert(i, (key, value));
                None
            }
        }
    }

    /// Removes `key`; returns its value if it was present.
    pub fn remove(&mut self, key: K) -> Option<V> {
        match self.position(key) {
            Ok(i) => Some(self.entries.remove(i).1),
            Err(_) => None,
        }
    }

    /// The value for `key`, inserting a default first if absent.
    pub fn get_or_default(&mut self, key: K) -> &mut V
    where
        V: Default,
    {
        let i = match self.position(key) {
            Ok(i) => i,
            Err(i) => {
                self.entries.insert(i, (key, V::default()));
                i
            }
        };
        &mut self.entries[i].1
    }

    /// Key-ordered iteration.
    pub fn iter(&self) -> impl Iterator<Item = (K, &V)> {
        self.entries.iter().map(|(k, v)| (*k, v))
    }

    /// Key-ordered keys.
    pub fn keys(&self) -> impl Iterator<Item = K> + '_ {
        self.entries.iter().map(|&(k, _)| k)
    }

    /// Key-ordered values.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.entries.iter().map(|(_, v)| v)
    }

    /// Removes and yields all entries in key order, leaving the
    /// allocation in place for reuse.
    pub fn drain(&mut self) -> impl Iterator<Item = (K, V)> + '_ {
        self.entries.drain(..)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_round_trip() {
        let mut m: SortedMap<u32, &str> = SortedMap::new();
        assert!(m.is_empty());
        assert_eq!(m.insert(5, "five"), None);
        assert_eq!(m.insert(1, "one"), None);
        assert_eq!(m.insert(3, "three"), None);
        assert_eq!(m.insert(3, "THREE"), Some("three"));
        assert_eq!(m.len(), 3);
        assert_eq!(m.get(3), Some(&"THREE"));
        assert_eq!(m.get(2), None);
        assert_eq!(m.keys().collect::<Vec<_>>(), vec![1, 3, 5]);
        assert_eq!(m.remove(1), Some("one"));
        assert_eq!(m.remove(1), None);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn iteration_is_key_ordered_regardless_of_insertion() {
        let mut m: SortedMap<u32, u32> = SortedMap::new();
        for k in [9, 2, 7, 1, 8, 3] {
            m.insert(k, k * 10);
        }
        let keys: Vec<u32> = m.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec![1, 2, 3, 7, 8, 9]);
        assert_eq!(m.values().copied().collect::<Vec<_>>(), vec![10, 20, 30, 70, 80, 90]);
    }

    #[test]
    fn get_or_default_inserts_once() {
        let mut m: SortedMap<u32, Vec<u32>> = SortedMap::new();
        m.get_or_default(4).push(1);
        m.get_or_default(4).push(2);
        assert_eq!(m.get(4), Some(&vec![1, 2]));
        assert_eq!(m.len(), 1);
    }
}
