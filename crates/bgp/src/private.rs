//! Private path verification as a first-class network mode (§3.1 run
//! for real, at topology scale).
//!
//! The paper's tentpole claim is that routing can be verified *with
//! privacy*: no AS reveals its candidate routes, yet everyone learns
//! whether the selected route was the policy-best one. This module
//! wires the bit-sliced GMW engine ([`pvr_smc::batch`]) into
//! convergence:
//!
//! 1. **Enqueue.** Whenever a router in private-verification mode
//!    changes its best route and holds ≥ 2 candidates in the winning
//!    LOCAL_PREF tier, it enqueues a [`PrivateRequest`]: the claimed
//!    (selected) path length plus each tier candidate's length, one
//!    per neighbor — the per-party secret inputs of an SMC session.
//! 2. **Flush.** At every calendar-queue barrier (a drained sim-time
//!    instant — the one point both engines provably share state, see
//!    [`pvr_netsim::BarrierHook`]), pending requests are sorted by the
//!    engine-invariant key `(asn, router-local sequence)`, grouped by
//!    party count, packed ≤ `lane_cap` per batch, and pushed through
//!    one batched [`min_circuit`] pass (is the claim really the tier
//!    minimum?) and one batched [`majority_circuit`] pass (do a
//!    majority of neighbors find the claim plausible — the §3.6-style
//!    gossip aggregation) per batch.
//! 3. **Charge.** Each batch's cost is priced by the FairplayMP-
//!    calibrated [`SmcCostModel`] on the batch-aggregate
//!    [`pvr_smc::GmwStats`] — rounds paid once per batch,
//!    OTs/bits per lane — and charged as sim-time latency on a
//!    reserved verdict timer, so e17's convergence wall-clock includes
//!    the privacy overhead.
//!
//! ## Determinism
//!
//! Requests are enqueued from shard worker threads in nondeterministic
//! *arrival* order, but every flush sorts by `(asn, seq)`; a router's
//! own event order is engine-invariant, so flush content and order
//! are too. Batch DRBGs derive from the verifier seed with a per-flush
//! label (the sharded engine's `from_u64_labeled` recipe) — and per
//! the randomness-independence argument in [`pvr_smc::batch`], GMW
//! verdicts and stats don't depend on that randomness at all. Verdict
//! timers are emitted in batch order, nodes ascending. The result:
//! every counter, timeline window, and verdict below is byte-identical
//! across engines and shard counts — *no* carve-out, unlike the
//! verify-cache hit family.

use crate::types::{Asn, Prefix};
use pvr_crypto::drbg::HmacDrbg;
use pvr_netsim::{BarrierHook, NodeId, SimDuration, SimTime};
use pvr_smc::{
    from_bits, majority_circuit, min_circuit, pack_lane_inputs, to_bits, BatchGmw, Circuit,
    GmwStats, SmcCostModel,
};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Path lengths are encoded in this many bits for the min circuit
/// (clamped; interdomain paths are far shorter than 255 hops).
const LEN_BITS: usize = 8;

pvr_obs::metric_struct! {
    /// Network-wide private-verification counters, owned by the
    /// [`PrivateVerifier`] — deliberately *not* part of
    /// [`RouterStats`](crate::RouterStats), so enabling private
    /// verification never adds series to the e15 metrics export.
    /// Exported (e17 only) as `pvr_smc_<field>_total`.
    pub struct SmcBatchStats, prefix = "pvr_smc" {
        /// Verification requests enqueued by routers.
        pub requests: u64,
        /// Barrier flushes that found pending requests.
        pub flushes: u64,
        /// Batched circuit passes executed (one min + one majority
        /// evaluation each).
        pub batches: u64,
        /// Lanes occupied across all batches (= requests served).
        pub lanes_occupied: u64,
        /// Lane slots provisioned (batches × lane capacity);
        /// `lanes_occupied / lane_slots` is the batch occupancy.
        pub lane_slots: u64,
        /// AND gates in the evaluated circuits (per batch, not per
        /// lane — one word-wide pass covers every lane).
        pub and_gates: u64,
        /// Communication rounds charged to the cost model (shared
        /// across each batch's lanes — the bit-slicing win).
        pub rounds_charged: u64,
        /// Beaver triples consumed, per lane.
        pub triples: u64,
        /// Equivalent 1-out-of-2 OTs, per lane.
        pub equivalent_ots: u64,
        /// Bits broadcast, per lane.
        pub bits_broadcast: u64,
        /// Modeled SMC latency charged as sim-time, in microseconds.
        pub modeled_micros: u64,
        /// Verdicts where the claim passed both circuits.
        pub verdict_pass: u64,
        /// Verdicts where the claim failed the min or majority check.
        pub verdict_fail: u64,
        /// Verdicts delivered back to their requesting router (timer
        /// fired and the mailbox was drained).
        pub verdicts_delivered: u64,
    }
}

/// One pending verification request (see the module docs).
#[derive(Clone, Debug)]
pub struct PrivateRequest {
    /// Requesting AS.
    pub asn: Asn,
    /// Router-local sequence number — with `asn`, the engine-invariant
    /// flush ordering key.
    pub seq: u64,
    /// Prefix whose selection is being verified.
    pub prefix: Prefix,
    /// Claimed (selected) path length.
    pub claimed_len: u64,
    /// Path length held by each party (the winning-tier candidates,
    /// neighbor-ASN ascending). `len() >= 2` — a single candidate has
    /// nothing to hide the comparison from.
    pub candidate_lens: Vec<u64>,
}

/// An undelivered verdict parked in a router's mailbox.
struct PendingVerdict {
    deliver_at_us: u64,
    ok: bool,
}

struct VerifierInner {
    seed: u64,
    lane_cap: usize,
    model: SmcCostModel,
    /// ASN → simulator node, for addressing verdict timers. Installed
    /// by `Topology::instantiate*` once node ids exist.
    node_of: BTreeMap<Asn, NodeId>,
    pending: Vec<PrivateRequest>,
    mailboxes: BTreeMap<Asn, Vec<PendingVerdict>>,
    /// Per-party-count circuit cache: `k → (min, majority)`.
    circuits: BTreeMap<usize, (Circuit, Circuit)>,
    stats: SmcBatchStats,
    timeline: pvr_obs::TimelineRecorder,
}

/// The shared private-verification service: one per network, held by
/// every router (like the [`VerifyCache`](crate::VerifyCache)) and by
/// the engine's barrier hook. All state sits behind one mutex; shard
/// workers only ever push requests or drain their own mailbox, and the
/// flush runs on the coordinator with the network quiesced at the
/// barrier instant.
pub struct PrivateVerifier {
    inner: Mutex<VerifierInner>,
}

impl PrivateVerifier {
    /// Creates a verifier. `lane_cap` (1..=64) bounds lanes per batch;
    /// `timeline_window` sizes the verifier-owned SMC timeline.
    pub fn new(seed: u64, lane_cap: usize, timeline_window: SimDuration) -> PrivateVerifier {
        let lane_cap = lane_cap.clamp(1, pvr_smc::MAX_LANES);
        PrivateVerifier {
            inner: Mutex::new(VerifierInner {
                seed,
                lane_cap,
                model: SmcCostModel::fairplay_calibrated(),
                node_of: BTreeMap::new(),
                pending: Vec::new(),
                mailboxes: BTreeMap::new(),
                circuits: BTreeMap::new(),
                stats: SmcBatchStats::default(),
                timeline: pvr_obs::TimelineRecorder::new(
                    timeline_window.as_micros().max(1),
                    pvr_obs::timeline::SMC_CHANNELS,
                ),
            }),
        }
    }

    /// Installs the ASN → node map (topology wiring, before the run).
    pub fn set_node_map(&self, node_of: BTreeMap<Asn, NodeId>) {
        self.inner.lock().expect("verifier poisoned").node_of = node_of;
    }

    /// The configured lanes-per-batch cap.
    pub fn lane_cap(&self) -> usize {
        self.inner.lock().expect("verifier poisoned").lane_cap
    }

    /// Queues a verification request (router → verifier, during
    /// dispatch; any thread).
    pub fn enqueue(&self, request: PrivateRequest) {
        debug_assert!(request.candidate_lens.len() >= 2, "nothing to verify below 2 parties");
        let mut inner = self.inner.lock().expect("verifier poisoned");
        inner.stats.requests += 1;
        inner.pending.push(request);
    }

    /// Delivers any verdicts due at `now` to `asn`'s mailbox owner;
    /// called from the router's verdict-timer handler. Returns the
    /// delivered `(ok)` verdict count as `(pass, fail)`.
    pub fn deliver(&self, asn: Asn, now: SimTime) -> (u64, u64) {
        let mut inner = self.inner.lock().expect("verifier poisoned");
        let now_us = now.as_micros();
        let Some(mailbox) = inner.mailboxes.get_mut(&asn) else { return (0, 0) };
        let mut pass = 0;
        let mut fail = 0;
        mailbox.retain(|v| {
            if v.deliver_at_us <= now_us {
                if v.ok {
                    pass += 1;
                } else {
                    fail += 1;
                }
                false
            } else {
                true
            }
        });
        inner.stats.verdicts_delivered += pass + fail;
        (pass, fail)
    }

    /// Snapshot of the network-wide counters.
    pub fn stats(&self) -> SmcBatchStats {
        self.inner.lock().expect("verifier poisoned").stats.clone()
    }

    /// A copy of the verifier-owned SMC timeline.
    pub fn timeline(&self) -> pvr_obs::TimelineRecorder {
        self.inner.lock().expect("verifier poisoned").timeline.clone()
    }

    /// Wraps an `Arc`'d verifier as an engine barrier hook.
    pub fn hook(verifier: &Arc<PrivateVerifier>) -> Box<dyn BarrierHook> {
        Box::new(VerifierHook { verifier: Arc::clone(verifier) })
    }

    /// Flushes all pending requests through batched circuit passes;
    /// returns the verdict timers to schedule. See the module docs for
    /// the ordering and determinism argument.
    fn flush(&self, now: SimTime) -> Vec<(NodeId, SimDuration, u64)> {
        let mut inner = self.inner.lock().expect("verifier poisoned");
        if inner.pending.is_empty() {
            return Vec::new();
        }
        let inner = &mut *inner;
        let mut pending = std::mem::take(&mut inner.pending);
        pending.sort_by_key(|r| (r.asn, r.seq));
        let flush_idx = inner.stats.flushes;
        inner.stats.flushes += 1;
        let now_us = now.as_micros();

        // Group by party count (each count runs a different circuit),
        // preserving the sorted order within each group.
        let mut by_parties: BTreeMap<usize, Vec<PrivateRequest>> = BTreeMap::new();
        for req in pending {
            by_parties.entry(req.candidate_lens.len()).or_default().push(req);
        }

        let mut timers: Vec<(NodeId, SimDuration, u64)> = Vec::new();
        let mut batch_idx = 0u64;
        for (k, reqs) in by_parties {
            let (min_c, maj_c) = inner
                .circuits
                .entry(k)
                .or_insert_with(|| (min_circuit(k, LEN_BITS), majority_circuit(k)));
            for chunk in reqs.chunks(inner.lane_cap) {
                let lanes = chunk.len();
                let mut rng = HmacDrbg::from_u64_labeled(
                    inner.seed ^ (flush_idx << 20 | batch_idx),
                    "pvr-smc-batch",
                );
                batch_idx += 1;

                // Pass 1: k-way min over the tier candidates.
                let min_inputs: Vec<Vec<Vec<bool>>> = chunk
                    .iter()
                    .map(|r| {
                        r.candidate_lens
                            .iter()
                            .map(|&len| to_bits(len.min(255), LEN_BITS))
                            .collect()
                    })
                    .collect();
                let min_run = BatchGmw::new(min_c).run(&pack_lane_inputs(&min_inputs), &mut rng);

                // Pass 2: majority of "claim ≤ my candidate" votes.
                let maj_inputs: Vec<Vec<Vec<bool>>> = chunk
                    .iter()
                    .map(|r| {
                        r.candidate_lens.iter().map(|&len| vec![r.claimed_len <= len]).collect()
                    })
                    .collect();
                let maj_run = BatchGmw::new(maj_c).run(&pack_lane_inputs(&maj_inputs), &mut rng);

                // One SMC session computes both verdicts: setup once,
                // rounds and traffic summed.
                let min_agg = min_run.aggregate_stats();
                let maj_agg = maj_run.aggregate_stats();
                let combined = GmwStats {
                    parties: k,
                    gates: min_agg.gates + maj_agg.gates,
                    and_gates: min_agg.and_gates + maj_agg.and_gates,
                    rounds: min_agg.rounds + maj_agg.rounds,
                    triples: min_agg.triples + maj_agg.triples,
                    equivalent_ots: min_agg.equivalent_ots + maj_agg.equivalent_ots,
                    bits_broadcast: min_agg.bits_broadcast + maj_agg.bits_broadcast,
                };
                let secs = inner.model.estimate_seconds(&combined);
                let delay_us = ((secs * 1e6).ceil() as u64).max(1);

                for (lane, req) in chunk.iter().enumerate() {
                    let tier_min = from_bits(&min_run.lane_outputs(lane));
                    let min_ok = tier_min == req.claimed_len.min(255);
                    let maj_ok = maj_run.lane_outputs(lane)[0];
                    let ok = min_ok && maj_ok;
                    if ok {
                        inner.stats.verdict_pass += 1;
                    } else {
                        inner.stats.verdict_fail += 1;
                    }
                    inner
                        .mailboxes
                        .entry(req.asn)
                        .or_default()
                        .push(PendingVerdict { deliver_at_us: now_us + delay_us, ok });
                }

                // One verdict timer per distinct requester, ascending
                // node id (chunks are ASN-sorted; dedup adjacent).
                let mut nodes: Vec<NodeId> =
                    chunk.iter().filter_map(|r| inner.node_of.get(&r.asn).copied()).collect();
                nodes.sort_unstable();
                nodes.dedup();
                for node in nodes {
                    timers.push((node, SimDuration::from_micros(delay_us), PVR_VERDICT_TIMER));
                }

                inner.stats.batches += 1;
                inner.stats.lanes_occupied += lanes as u64;
                inner.stats.lane_slots += inner.lane_cap as u64;
                inner.stats.and_gates += combined.and_gates as u64;
                inner.stats.rounds_charged += combined.rounds as u64;
                inner.stats.triples += combined.triples as u64;
                inner.stats.equivalent_ots += combined.equivalent_ots;
                inner.stats.bits_broadcast += combined.bits_broadcast;
                inner.stats.modeled_micros += delay_us;

                use pvr_obs::timeline::{SMC_BATCHES, SMC_LANES, SMC_REQUESTS, SMC_ROUNDS};
                inner.timeline.add(now_us, SMC_REQUESTS, lanes as u64);
                inner.timeline.add(now_us, SMC_BATCHES, 1);
                inner.timeline.add(now_us, SMC_LANES, inner.lane_cap as u64);
                inner.timeline.add(now_us, SMC_ROUNDS, combined.rounds as u64);
            }
        }
        timers
    }
}

/// Reserved timer id for verdict delivery (`MRAI = MAX`,
/// `DAMP = MAX-1`; router schedules can never reach these values).
pub const PVR_VERDICT_TIMER: u64 = u64::MAX - 2;

struct VerifierHook {
    verifier: Arc<PrivateVerifier>,
}

impl BarrierHook for VerifierHook {
    fn on_barrier(&mut self, now: SimTime) -> Vec<(NodeId, SimDuration, u64)> {
        self.verifier.flush(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prefix(s: &str) -> Prefix {
        Prefix::parse(s).unwrap()
    }

    fn verifier(lane_cap: usize) -> Arc<PrivateVerifier> {
        let v = Arc::new(PrivateVerifier::new(42, lane_cap, SimDuration::from_millis(5)));
        v.set_node_map((1..=16u32).map(|a| (Asn(a), a as NodeId)).collect());
        v
    }

    fn request(asn: u32, seq: u64, claimed: u64, lens: &[u64]) -> PrivateRequest {
        PrivateRequest {
            asn: Asn(asn),
            seq,
            prefix: prefix("10.0.0.0/8"),
            claimed_len: claimed,
            candidate_lens: lens.to_vec(),
        }
    }

    #[test]
    fn honest_claim_passes_both_circuits() {
        let v = verifier(64);
        v.enqueue(request(1, 0, 2, &[2, 3, 5]));
        let timers = v.flush(SimTime::ZERO);
        assert_eq!(timers.len(), 1);
        assert_eq!(timers[0].2, PVR_VERDICT_TIMER);
        let stats = v.stats();
        assert_eq!(stats.verdict_pass, 1);
        assert_eq!(stats.verdict_fail, 0);
        assert_eq!(stats.batches, 1);
        // Latency is charged: well past setup (2 s) in sim-time.
        assert!(timers[0].1.as_micros() >= 2_000_000);
    }

    #[test]
    fn dishonest_claim_fails() {
        let v = verifier(64);
        // Claims length 2 but the tier minimum is 3 → min check fails.
        v.enqueue(request(1, 0, 2, &[3, 4]));
        // Claims length 9, longer than every candidate → majority of
        // "claim ≤ mine" votes fails (and so does the min check).
        v.enqueue(request(2, 0, 9, &[3, 4]));
        v.flush(SimTime::ZERO);
        let stats = v.stats();
        assert_eq!(stats.verdict_pass, 0);
        assert_eq!(stats.verdict_fail, 2);
    }

    #[test]
    fn zero_pending_flush_is_free() {
        let v = verifier(64);
        let timers = v.flush(SimTime::ZERO);
        assert!(timers.is_empty());
        let stats = v.stats();
        assert_eq!(stats.flushes, 0);
        assert_eq!(stats.batches, 0);
        assert_eq!(stats.lane_slots, 0);
    }

    #[test]
    fn partial_last_batch_occupancy() {
        let v = verifier(8);
        // 19 requests at cap 8 → batches of 8, 8, 3.
        for i in 0..19 {
            v.enqueue(request(1 + (i % 16) as u32, i, 2, &[2, 5]));
        }
        v.flush(SimTime::ZERO);
        let stats = v.stats();
        assert_eq!(stats.batches, 3);
        assert_eq!(stats.lanes_occupied, 19);
        assert_eq!(stats.lane_slots, 24);
        assert_eq!(stats.verdict_pass, 19);
    }

    #[test]
    fn flush_order_is_arrival_independent() {
        // Same requests, opposite arrival order → identical stats,
        // timeline, and timers (the sharded-engine invariance).
        let reqs: Vec<PrivateRequest> =
            (0..10).map(|i| request(1 + (i % 5) as u32, i / 5, 2 + i % 3, &[2, 3, 4])).collect();
        let a = verifier(4);
        let b = verifier(4);
        for r in &reqs {
            a.enqueue(r.clone());
        }
        for r in reqs.iter().rev() {
            b.enqueue(r.clone());
        }
        let ta = a.flush(SimTime::ZERO);
        let tb = b.flush(SimTime::ZERO);
        assert_eq!(ta, tb);
        assert_eq!(a.stats(), b.stats());
        assert_eq!(a.timeline().cells(), b.timeline().cells());
    }

    #[test]
    fn verdicts_deliver_at_their_time() {
        let v = verifier(64);
        v.enqueue(request(3, 0, 1, &[1, 2]));
        let timers = v.flush(SimTime::ZERO);
        let delay = timers[0].1;
        // Too early: nothing delivered.
        assert_eq!(v.deliver(Asn(3), SimTime::ZERO), (0, 0));
        let at = SimTime::ZERO + delay;
        assert_eq!(v.deliver(Asn(3), at), (1, 0));
        // Drained: second delivery finds nothing.
        assert_eq!(v.deliver(Asn(3), at), (0, 0));
        assert_eq!(v.stats().verdicts_delivered, 1);
    }

    #[test]
    fn mixed_party_counts_run_separate_batches() {
        let v = verifier(64);
        v.enqueue(request(1, 0, 2, &[2, 3]));
        v.enqueue(request(2, 0, 2, &[2, 3, 4]));
        v.enqueue(request(3, 0, 2, &[2, 5]));
        v.flush(SimTime::ZERO);
        let stats = v.stats();
        // Two party counts → two batches even under one cap.
        assert_eq!(stats.batches, 2);
        assert_eq!(stats.lanes_occupied, 3);
        assert_eq!(stats.verdict_pass, 3);
    }
}
