//! Deterministic AS → shard assignment for the sharded engine.
//!
//! The sharded simulator's outputs are identical for *any* node
//! placement (see `pvr_netsim::shard`), so the partitioner only has to
//! optimize load balance — and be a pure function of the topology, so
//! that every run at a given shard count dispatches the same windows.
//!
//! Strategy: order ASes by degree (descending, ASN ascending as the
//! tie-break) and deal them round-robin. Degree tracks per-node event
//! load in BGP convergence — a tier-1 hub receives and fans out a
//! multiple of a stub's updates — so dealing the heavy hitters first
//! spreads both node count (within one per shard) and expected work.
//! Edge locality is deliberately not optimized: every action crosses
//! the exchange phase regardless of whether its endpoints share a
//! shard, so a min-cut layout would buy nothing.

use crate::topology::{Edge, Topology};
use crate::types::Asn;
use std::collections::BTreeMap;

/// Assigns every AS in `topology` to a shard in `0..shards`.
/// Deterministic in the topology alone; shard sizes differ by at most
/// one.
pub fn partition_by_degree(topology: &Topology, shards: usize) -> BTreeMap<Asn, usize> {
    assert!(shards >= 1, "at least one shard required");
    let mut degree: BTreeMap<Asn, usize> = topology.ases().map(|a| (a, 0usize)).collect();
    let mut bump = |asn: Asn| {
        if let Some(d) = degree.get_mut(&asn) {
            *d += 1;
        }
    };
    for edge in topology.edges() {
        match *edge {
            Edge::ProviderCustomer { provider, customer }
            | Edge::PartialTransit { provider, customer, .. } => {
                bump(provider);
                bump(customer);
            }
            Edge::Peering(a, b) => {
                bump(a);
                bump(b);
            }
        }
    }
    let mut order: Vec<(Asn, usize)> = degree.into_iter().collect();
    order.sort_by(|&(a, da), &(b, db)| db.cmp(&da).then(a.cmp(&b)));
    order.into_iter().enumerate().map(|(i, (asn, _))| (asn, i % shards)).collect()
}

/// Number of relationship edges whose endpoints land on different
/// shards under `assignment` — the boundary traffic the exchange phase
/// re-injects. Diagnostic only; correctness never depends on it.
pub fn cut_edges(topology: &Topology, assignment: &BTreeMap<Asn, usize>) -> usize {
    topology
        .edges()
        .iter()
        .filter(|edge| {
            let (a, b) = match **edge {
                Edge::ProviderCustomer { provider, customer }
                | Edge::PartialTransit { provider, customer, .. } => (provider, customer),
                Edge::Peering(a, b) => (a, b),
            };
            assignment[&a] != assignment[&b]
        })
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{internet_like, InternetParams};

    fn sample() -> Topology {
        internet_like(
            InternetParams { tier1: 3, tier2: 6, stubs: 20, ..InternetParams::default() },
            7,
        )
    }

    #[test]
    fn covers_every_as_exactly_once() {
        let t = sample();
        let m = partition_by_degree(&t, 4);
        assert_eq!(m.len(), t.as_count());
        assert!(m.values().all(|&s| s < 4));
    }

    #[test]
    fn balanced_within_one() {
        let t = sample();
        for shards in 1..=8 {
            let m = partition_by_degree(&t, shards);
            let mut counts = vec![0usize; shards];
            for &s in m.values() {
                counts[s] += 1;
            }
            let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
            assert!(max - min <= 1, "{shards} shards: {counts:?}");
        }
    }

    #[test]
    fn deterministic() {
        let t = sample();
        assert_eq!(partition_by_degree(&t, 3), partition_by_degree(&t, 3));
    }

    #[test]
    fn spreads_the_tier1_clique() {
        // The highest-degree ASes (tier-1s) must not pile onto one
        // shard: round-robin over the degree ordering deals them out
        // first.
        let t = sample();
        let m = partition_by_degree(&t, 3);
        let t1_shards: Vec<usize> = [10, 11, 12].iter().map(|&a| m[&Asn(a)]).collect();
        let mut unique = t1_shards.clone();
        unique.sort_unstable();
        unique.dedup();
        assert!(unique.len() >= 2, "tier-1s all landed on one shard: {t1_shards:?}");
    }

    #[test]
    fn single_shard_is_total() {
        let t = sample();
        let m = partition_by_degree(&t, 1);
        assert!(m.values().all(|&s| s == 0));
        assert_eq!(cut_edges(&t, &m), 0);
    }

    #[test]
    fn cut_edges_counts_boundaries() {
        let t = sample();
        let m = partition_by_degree(&t, 4);
        let cut = cut_edges(&t, &m);
        assert!(cut > 0 && cut <= t.edge_count());
    }
}
