//! Import/export policy and business relationships.
//!
//! The paper's motivating setting (§1): "network A might promise network
//! B that it will act as B's provider, or it might enter into a 'partial
//! transit' relationship [24, 21] with network B and promise to deliver
//! routes from, e.g., European peers in preference to other routes."
//!
//! We implement the standard Gao–Rexford policy frame:
//! * **import**: LOCAL_PREF by relationship (customer > peer > provider),
//!   region tagging of peer routes (so partial transit can select them),
//!   and loop rejection;
//! * **export**: routes learned from customers (or originated locally)
//!   go to everyone; routes learned from peers/providers go only to
//!   customers; **partial-transit customers** additionally receive routes
//!   carrying their contracted region community.
//!
//! These concrete policies are what the PVR layer's promises are checked
//! against — the policy is the secret, the promise is its public
//! over-approximation (§2).

use crate::route::{Community, Route};
use crate::types::Asn;
use std::collections::HashMap;

/// The role a *neighbor* plays relative to the local AS.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Role {
    /// The neighbor buys full transit from us.
    Customer,
    /// The neighbor sells us transit.
    Provider,
    /// Settlement-free peer.
    Peer,
    /// The neighbor buys *partial* transit: besides our customer cone, it
    /// receives only routes tagged with this region community
    /// (the paper's "routes from European peers" example).
    PartialTransitCustomer {
        /// Community selecting the contracted route subset.
        region: Community,
    },
}

impl Role {
    /// LOCAL_PREF assigned on import, encoding the standard economic
    /// preference: customer routes > peer routes > provider routes.
    pub fn import_local_pref(&self) -> u32 {
        match self {
            Role::Customer | Role::PartialTransitCustomer { .. } => 200,
            Role::Peer => 150,
            Role::Provider => 100,
        }
    }

    /// True if routes learned from a neighbor in this role may be
    /// exported to peers and providers (Gao–Rexford valley-freedom).
    pub fn is_customer_learned(&self) -> bool {
        matches!(self, Role::Customer | Role::PartialTransitCustomer { .. })
    }
}

/// Per-AS policy configuration.
#[derive(Clone, Debug, Default)]
pub struct PolicyConfig {
    /// Role of each neighbor.
    pub relationships: HashMap<Asn, Role>,
    /// Region community stamped on routes imported from each neighbor
    /// (e.g. tag all routes from European peers `65000:1`).
    pub region_tags: HashMap<Asn, Community>,
}

impl PolicyConfig {
    /// Creates an empty policy.
    pub fn new() -> PolicyConfig {
        PolicyConfig::default()
    }

    /// Declares `neighbor`'s role.
    pub fn set_role(&mut self, neighbor: Asn, role: Role) -> &mut Self {
        self.relationships.insert(neighbor, role);
        self
    }

    /// Stamps routes from `neighbor` with `region` on import.
    pub fn set_region_tag(&mut self, neighbor: Asn, region: Community) -> &mut Self {
        self.region_tags.insert(neighbor, region);
        self
    }

    /// The neighbor's role, if configured.
    pub fn role(&self, neighbor: Asn) -> Option<Role> {
        self.relationships.get(&neighbor).copied()
    }

    /// Import processing for a route received from `neighbor` by
    /// `local_asn`. Returns `None` if the route is rejected.
    pub fn import(&self, local_asn: Asn, neighbor: Asn, mut route: Route) -> Option<Route> {
        // Loop rejection is mandatory, not policy.
        if route.path.contains(local_asn) {
            return None;
        }
        // Unknown neighbors get nothing (strict: sessions are configured).
        let role = self.role(neighbor)?;
        // NO_EXPORT routes are accepted but never propagated; the export
        // side enforces that.
        route.local_pref = role.import_local_pref();
        if let Some(&region) = self.region_tags.get(&neighbor) {
            route = route.with_community(region);
        }
        Some(route)
    }

    /// Export decision: may `route` (learned from `learned_from`, `None`
    /// for locally originated) be advertised to `target`?
    pub fn may_export(&self, route: &Route, learned_from: Option<Asn>, target: Asn) -> bool {
        // Never export back to the neighbor we learned it from.
        if learned_from == Some(target) {
            return false;
        }
        if route.has_community(Community::NO_EXPORT) {
            return false;
        }
        let target_role = match self.role(target) {
            Some(r) => r,
            None => return false,
        };
        // Locally originated: export to everyone.
        let source_role = match learned_from {
            None => return true,
            Some(n) => match self.role(n) {
                Some(r) => r,
                None => return false,
            },
        };
        match target_role {
            // Full-transit customers get the whole table.
            Role::Customer => true,
            // Partial-transit customers get the customer cone plus the
            // contracted region.
            Role::PartialTransitCustomer { region } => {
                source_role.is_customer_learned() || route.has_community(region)
            }
            // Peers and providers get only the customer cone.
            Role::Peer | Role::Provider => source_role.is_customer_learned(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::AsPath;
    use crate::types::Prefix;

    const EU: Community = Community(65000, 1);

    fn route_via(asns: &[u32]) -> Route {
        let mut r = Route::originate(Prefix::parse("10.0.0.0/8").unwrap());
        r.path = AsPath::from_slice(&asns.iter().map(|&a| Asn(a)).collect::<Vec<_>>());
        r
    }

    /// Local AS 100 with: customer 1, provider 2, peer 3 (EU-tagged),
    /// partial-transit customer 4 (EU region).
    fn policy() -> PolicyConfig {
        let mut p = PolicyConfig::new();
        p.set_role(Asn(1), Role::Customer)
            .set_role(Asn(2), Role::Provider)
            .set_role(Asn(3), Role::Peer)
            .set_role(Asn(4), Role::PartialTransitCustomer { region: EU })
            .set_region_tag(Asn(3), EU);
        p
    }

    #[test]
    fn import_sets_local_pref_by_role() {
        let p = policy();
        assert_eq!(p.import(Asn(100), Asn(1), route_via(&[1])).unwrap().local_pref, 200);
        assert_eq!(p.import(Asn(100), Asn(3), route_via(&[3])).unwrap().local_pref, 150);
        assert_eq!(p.import(Asn(100), Asn(2), route_via(&[2])).unwrap().local_pref, 100);
        assert_eq!(p.import(Asn(100), Asn(4), route_via(&[4])).unwrap().local_pref, 200);
    }

    #[test]
    fn import_rejects_loops() {
        let p = policy();
        assert!(p.import(Asn(100), Asn(1), route_via(&[1, 100, 7])).is_none());
    }

    #[test]
    fn import_rejects_unknown_neighbor() {
        let p = policy();
        assert!(p.import(Asn(100), Asn(99), route_via(&[99])).is_none());
    }

    #[test]
    fn import_tags_region() {
        let p = policy();
        let r = p.import(Asn(100), Asn(3), route_via(&[3])).unwrap();
        assert!(r.has_community(EU));
        let r = p.import(Asn(100), Asn(2), route_via(&[2])).unwrap();
        assert!(!r.has_community(EU));
    }

    #[test]
    fn gao_rexford_export_matrix() {
        let p = policy();
        let customer_route = route_via(&[1]);
        let peer_route = route_via(&[3]);
        let provider_route = route_via(&[2]);

        // Customer-learned exports to everyone (except the source).
        assert!(p.may_export(&customer_route, Some(Asn(1)), Asn(2)));
        assert!(p.may_export(&customer_route, Some(Asn(1)), Asn(3)));
        assert!(p.may_export(&customer_route, Some(Asn(1)), Asn(4)));
        assert!(!p.may_export(&customer_route, Some(Asn(1)), Asn(1)), "no re-export to source");

        // Peer-learned: only to customers (and PT customers via region).
        assert!(!p.may_export(&peer_route, Some(Asn(3)), Asn(2)), "peer→provider is a valley");
        assert!(p.may_export(&peer_route, Some(Asn(3)), Asn(1)));

        // Provider-learned: only to customers.
        assert!(p.may_export(&provider_route, Some(Asn(2)), Asn(1)));
        assert!(!p.may_export(&provider_route, Some(Asn(2)), Asn(3)), "provider→peer is a valley");
    }

    #[test]
    fn partial_transit_gets_region_routes_only() {
        let p = policy();
        // Route imported from the EU peer carries the EU tag.
        let eu_route = p.import(Asn(100), Asn(3), route_via(&[3])).unwrap();
        assert!(p.may_export(&eu_route, Some(Asn(3)), Asn(4)), "EU peer route → PT customer");
        // Provider-learned, untagged: not in the PT contract.
        let provider_route = p.import(Asn(100), Asn(2), route_via(&[2])).unwrap();
        assert!(!p.may_export(&provider_route, Some(Asn(2)), Asn(4)));
        // Customer cone always flows.
        let cust_route = p.import(Asn(100), Asn(1), route_via(&[1])).unwrap();
        assert!(p.may_export(&cust_route, Some(Asn(1)), Asn(4)));
    }

    #[test]
    fn local_routes_export_everywhere() {
        let p = policy();
        let local = route_via(&[]);
        for n in [1, 2, 3, 4] {
            assert!(p.may_export(&local, None, Asn(n)), "to AS{n}");
        }
    }

    #[test]
    fn no_export_community_respected() {
        let p = policy();
        let r = route_via(&[1]).with_community(Community::NO_EXPORT);
        assert!(!p.may_export(&r, Some(Asn(1)), Asn(2)));
        assert!(!p.may_export(&r, Some(Asn(1)), Asn(1)));
    }

    #[test]
    fn export_to_unknown_neighbor_denied() {
        let p = policy();
        assert!(!p.may_export(&route_via(&[1]), Some(Asn(1)), Asn(99)));
    }

    #[test]
    fn routes_from_unknown_source_denied() {
        let p = policy();
        assert!(!p.may_export(&route_via(&[99]), Some(Asn(99)), Asn(1)));
    }
}
