//! Routes and their attributes.
//!
//! A `Route` is the unit PVR's route-flow graphs operate on: the paper's
//! operators consume "routes and sets of routes, but also communities,
//! AS paths, prefixes, etc." (§2.1). We carry the attributes the
//! standard decision process ranks, plus communities for policy tagging.

use crate::path::AsPath;
use crate::types::{Asn, Prefix};
use pvr_crypto::encoding::{decode_seq, encode_seq, seq_encoded_len, Reader, Wire, WireError};
use std::sync::{Arc, OnceLock};

/// BGP ORIGIN attribute (ranked IGP < EGP < INCOMPLETE).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub enum Origin {
    /// Learned from an interior protocol.
    #[default]
    Igp,
    /// Learned via EGP.
    Egp,
    /// Unknown provenance.
    Incomplete,
}

impl Wire for Origin {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(match self {
            Origin::Igp => 0,
            Origin::Egp => 1,
            Origin::Incomplete => 2,
        });
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.take(1)?[0] {
            0 => Ok(Origin::Igp),
            1 => Ok(Origin::Egp),
            2 => Ok(Origin::Incomplete),
            _ => Err(WireError::Invalid("origin discriminant")),
        }
    }
    fn encoded_len(&self) -> usize {
        1
    }
}

/// A BGP community value `asn:tag`, used by export policies (e.g.
/// region tagging for partial transit).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Community(pub u16, pub u16);

impl Community {
    /// Well-known NO_EXPORT.
    pub const NO_EXPORT: Community = Community(0xffff, 0xff01);
}

impl std::fmt::Debug for Community {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.0, self.1)
    }
}

impl Wire for Community {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
        self.1.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Community(u16::decode(r)?, u16::decode(r)?))
    }
    fn encoded_len(&self) -> usize {
        4
    }
}

/// A route to a prefix with its path attributes.
///
/// Cloning is O(1)-ish: the path and community set are `Arc`-shared,
/// so per-neighbor fan-out, RIB entries, and delivery traces bump
/// reference counts instead of copying attribute bytes.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Route {
    /// Destination prefix.
    pub prefix: Prefix,
    /// AS-level path, nearest AS first.
    pub path: AsPath,
    /// LOCAL_PREF (import policy sets this; higher wins).
    pub local_pref: u32,
    /// Multi-exit discriminator (lower wins).
    pub med: u32,
    /// ORIGIN attribute.
    pub origin: Origin,
    /// Communities, kept sorted and deduplicated (shared storage;
    /// [`Route::with_community`] builds a new set).
    pub communities: Arc<[Community]>,
}

/// The shared empty community set (the common case: most routes carry
/// no communities, and this avoids one allocation per route).
fn no_communities() -> Arc<[Community]> {
    static EMPTY: OnceLock<Arc<[Community]>> = OnceLock::new();
    EMPTY.get_or_init(|| Arc::from([])).clone()
}

impl Route {
    /// Default LOCAL_PREF applied when no import policy overrides it.
    pub const DEFAULT_LOCAL_PREF: u32 = 100;

    /// A locally originated route for `prefix`.
    pub fn originate(prefix: Prefix) -> Route {
        Route {
            prefix,
            path: AsPath::empty(),
            local_pref: Self::DEFAULT_LOCAL_PREF,
            med: 0,
            origin: Origin::Igp,
            communities: no_communities(),
        }
    }

    /// Hop count of the AS path.
    pub fn path_len(&self) -> usize {
        self.path.len()
    }

    /// Adds a community (idempotent, keeps order canonical). Builds a
    /// fresh shared set; existing clones of the route are unaffected.
    pub fn with_community(mut self, c: Community) -> Route {
        if let Err(pos) = self.communities.binary_search(&c) {
            let mut v = Vec::with_capacity(self.communities.len() + 1);
            v.extend_from_slice(&self.communities);
            v.insert(pos, c);
            self.communities = v.into();
        }
        self
    }

    /// True if the route carries `c`.
    pub fn has_community(&self, c: Community) -> bool {
        self.communities.binary_search(&c).is_ok()
    }

    /// The route as propagated by `asn` to a neighbor: path prepended,
    /// LOCAL_PREF and MED reset (they are not transitive across eBGP).
    pub fn propagated_by(&self, asn: Asn) -> Route {
        Route {
            prefix: self.prefix,
            path: self.path.prepend(asn),
            local_pref: Self::DEFAULT_LOCAL_PREF,
            med: 0,
            origin: self.origin,
            communities: self.communities.clone(),
        }
    }
}

impl std::fmt::Display for Route {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} via [{}] lp={}", self.prefix, self.path, self.local_pref)
    }
}

impl Wire for Route {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.prefix.encode(buf);
        self.path.encode(buf);
        self.local_pref.encode(buf);
        self.med.encode(buf);
        self.origin.encode(buf);
        encode_seq(&self.communities, buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Route {
            prefix: Prefix::decode(r)?,
            path: AsPath::decode(r)?,
            local_pref: u32::decode(r)?,
            med: u32::decode(r)?,
            origin: Origin::decode(r)?,
            communities: decode_seq::<Community>(r)?.into(),
        })
    }
    fn encoded_len(&self) -> usize {
        self.prefix.encoded_len()
            + self.path.encoded_len()
            + 4 // local_pref
            + 4 // med
            + 1 // origin
            + seq_encoded_len(&self.communities)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prefix() -> Prefix {
        Prefix::parse("10.0.0.0/8").unwrap()
    }

    #[test]
    fn origination() {
        let r = Route::originate(prefix());
        assert_eq!(r.path_len(), 0);
        assert_eq!(r.local_pref, 100);
        assert!(r.communities.is_empty());
    }

    #[test]
    fn propagation_prepends_and_resets() {
        let mut r = Route::originate(prefix());
        r.local_pref = 500;
        r.med = 9;
        let p = r.propagated_by(Asn(1)).propagated_by(Asn(2));
        assert_eq!(p.path.asns(), &[Asn(2), Asn(1)]);
        assert_eq!(p.local_pref, Route::DEFAULT_LOCAL_PREF);
        assert_eq!(p.med, 0);
    }

    #[test]
    fn communities_canonical() {
        let r = Route::originate(prefix())
            .with_community(Community(65000, 2))
            .with_community(Community(65000, 1))
            .with_community(Community(65000, 2)); // duplicate
        assert_eq!(&r.communities[..], &[Community(65000, 1), Community(65000, 2)]);
        assert!(r.has_community(Community(65000, 1)));
        assert!(!r.has_community(Community(65000, 3)));
    }

    #[test]
    fn communities_survive_propagation() {
        let r = Route::originate(prefix()).with_community(Community::NO_EXPORT);
        assert!(r.propagated_by(Asn(5)).has_community(Community::NO_EXPORT));
    }

    #[test]
    fn origin_ranking_order() {
        assert!(Origin::Igp < Origin::Egp);
        assert!(Origin::Egp < Origin::Incomplete);
    }

    #[test]
    fn wire_round_trip() {
        let r = Route::originate(prefix()).with_community(Community(1, 2)).propagated_by(Asn(7));
        let back: Route = pvr_crypto::decode_exact(&r.to_wire()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn wire_rejects_bad_origin() {
        let mut bytes = Route::originate(prefix()).to_wire();
        // origin is right after prefix(5) + path(4 for empty) + lp(4) + med(4)
        bytes[5 + 4 + 4 + 4] = 9;
        assert!(pvr_crypto::decode_exact::<Route>(&bytes).is_err());
    }

    #[test]
    fn display_is_readable() {
        let r = Route::originate(prefix()).propagated_by(Asn(3));
        assert!(r.to_string().contains("10.0.0.0/8"));
        assert!(r.to_string().contains('3'));
    }
}
