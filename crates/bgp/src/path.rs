//! AS paths.
//!
//! The AS path is the attribute PVR's minimum operator reasons about
//! (§3.3 verifies "the route A has exported to B is not longer than
//! r_i"). We implement the `AS_SEQUENCE` form only — `AS_SET`
//! aggregation is a documented omission (it is rare in the modern
//! Internet and orthogonal to the paper's mechanisms).

use crate::types::Asn;
use pvr_crypto::encoding::{decode_seq, encode_seq, seq_encoded_len, Reader, Wire, WireError};
use std::sync::Arc;

/// An ordered AS-level path, nearest AS first (as in BGP updates).
///
/// Backed by an `Arc<[Asn]>`: cloning a path — which happens on every
/// per-neighbor export, every Adj-RIB entry, every attestation, and
/// every traced delivery — is a reference-count bump, never a copy of
/// the AS sequence. The single allocation happens in [`AsPath::prepend`]
/// (or [`AsPath::from_slice`]); all downstream clones share it. The
/// backing storage is immutable, so equality, ordering, and hashing are
/// observationally identical to the owned-`Vec` representation (pinned
/// by property tests).
#[derive(Clone, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct AsPath(Arc<[Asn]>);

impl AsPath {
    /// The empty path (a locally originated route).
    pub fn empty() -> AsPath {
        AsPath::default()
    }

    /// Builds from a slice, nearest AS first.
    pub fn from_slice(asns: &[Asn]) -> AsPath {
        AsPath(Arc::from(asns))
    }

    /// Path length in AS hops — the quantity the minimum operator
    /// compares.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True for a locally originated route.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The ASes in order, nearest first.
    pub fn asns(&self) -> &[Asn] {
        &self.0
    }

    /// The AS that originated the route (last element), if any.
    pub fn origin_as(&self) -> Option<Asn> {
        self.0.last().copied()
    }

    /// The neighbor the route was learned from (first element), if any.
    pub fn first_as(&self) -> Option<Asn> {
        self.0.first().copied()
    }

    /// Returns a new path with `asn` prepended (what an AS does when it
    /// propagates a route). This is the one place a propagated path is
    /// materialized; every subsequent clone shares the result.
    pub fn prepend(&self, asn: Asn) -> AsPath {
        let mut v = Vec::with_capacity(self.0.len() + 1);
        v.push(asn);
        v.extend_from_slice(&self.0);
        AsPath(v.into())
    }

    /// True if `asn` appears anywhere on the path (BGP loop detection).
    pub fn contains(&self, asn: Asn) -> bool {
        self.0.contains(&asn)
    }

    /// True if any AS appears more than once.
    pub fn has_loop(&self) -> bool {
        let mut seen = std::collections::HashSet::with_capacity(self.0.len());
        self.0.iter().any(|a| !seen.insert(a))
    }
}

impl std::fmt::Debug for AsPath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Display::fmt(self, f)
    }
}

impl std::fmt::Display for AsPath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.0.is_empty() {
            return write!(f, "(local)");
        }
        let parts: Vec<String> = self.0.iter().map(|a| a.0.to_string()).collect();
        write!(f, "{}", parts.join(" "))
    }
}

impl Wire for AsPath {
    fn encode(&self, buf: &mut Vec<u8>) {
        encode_seq(&self.0, buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(AsPath(decode_seq::<Asn>(r)?.into()))
    }
    fn encoded_len(&self) -> usize {
        seq_encoded_len(&self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn path(asns: &[u32]) -> AsPath {
        AsPath::from_slice(&asns.iter().map(|&a| Asn(a)).collect::<Vec<_>>())
    }

    #[test]
    fn construction_and_accessors() {
        let p = path(&[3, 2, 1]);
        assert_eq!(p.len(), 3);
        assert_eq!(p.first_as(), Some(Asn(3)));
        assert_eq!(p.origin_as(), Some(Asn(1)));
        assert!(!p.is_empty());
        assert!(AsPath::empty().is_empty());
        assert_eq!(AsPath::empty().origin_as(), None);
    }

    #[test]
    fn prepend_preserves_original() {
        let p = path(&[2, 1]);
        let q = p.prepend(Asn(3));
        assert_eq!(q, path(&[3, 2, 1]));
        assert_eq!(p, path(&[2, 1]));
    }

    #[test]
    fn loop_detection() {
        assert!(!path(&[3, 2, 1]).has_loop());
        assert!(path(&[3, 2, 3]).has_loop());
        assert!(path(&[1, 2, 3]).contains(Asn(2)));
        assert!(!path(&[1, 2, 3]).contains(Asn(9)));
    }

    #[test]
    fn display_forms() {
        assert_eq!(path(&[3, 2, 1]).to_string(), "3 2 1");
        assert_eq!(AsPath::empty().to_string(), "(local)");
    }

    #[test]
    fn wire_round_trip() {
        let p = path(&[65001, 65002, 65003]);
        let back: AsPath = pvr_crypto::decode_exact(&p.to_wire()).unwrap();
        assert_eq!(back, p);
        let back: AsPath = pvr_crypto::decode_exact(&AsPath::empty().to_wire()).unwrap();
        assert_eq!(back, AsPath::empty());
    }

    proptest! {
        #[test]
        fn prop_prepend_grows_by_one(asns in proptest::collection::vec(any::<u32>(), 0..12),
                                     head in any::<u32>()) {
            let p = path(&asns);
            let q = p.prepend(Asn(head));
            prop_assert_eq!(q.len(), p.len() + 1);
            prop_assert_eq!(q.first_as(), Some(Asn(head)));
            prop_assert!(q.contains(Asn(head)));
        }

        #[test]
        fn prop_wire_round_trip(asns in proptest::collection::vec(any::<u32>(), 0..16)) {
            let p = path(&asns);
            prop_assert_eq!(pvr_crypto::decode_exact::<AsPath>(&p.to_wire()).unwrap(), p);
            prop_assert_eq!(p.encoded_len(), p.to_wire().len());
        }

        // The Arc-backed representation must be observationally
        // identical to the owned-Vec one it replaced: content, clones,
        // equality/ordering/hashing, and wire bytes all behave as if
        // the path were a plain `Vec<Asn>`.
        #[test]
        fn prop_shared_repr_matches_owned(
            a in proptest::collection::vec(any::<u32>(), 0..12),
            b in proptest::collection::vec(any::<u32>(), 0..12),
            head in any::<u32>(),
        ) {
            let pa = path(&a);
            let pb = path(&b);
            let va: Vec<Asn> = a.iter().map(|&x| Asn(x)).collect();
            let vb: Vec<Asn> = b.iter().map(|&x| Asn(x)).collect();
            // Eq/Ord delegate to content, exactly as Vec's would.
            prop_assert_eq!(pa == pb, va == vb);
            prop_assert_eq!(pa.cmp(&pb), va.cmp(&vb));
            // Hashing is content-based: equal paths hash equal.
            use std::hash::{BuildHasher, RandomState};
            let s = RandomState::new();
            prop_assert_eq!(s.hash_one(&pa) == s.hash_one(&pb), (pa == pb));
            // Prepend materializes exactly the reference sequence, and
            // the shared clone is indistinguishable from the original.
            let q = pa.prepend(Asn(head));
            let mut reference = vec![Asn(head)];
            reference.extend_from_slice(&va);
            prop_assert_eq!(q.asns(), &reference[..]);
            let shared = q.clone();
            prop_assert_eq!(&shared, &q);
            prop_assert_eq!(shared.to_wire(), q.to_wire());
            // Wire bytes equal the encoding of the underlying sequence.
            let mut expect = Vec::new();
            pvr_crypto::encoding::encode_seq(&reference, &mut expect);
            prop_assert_eq!(q.to_wire(), expect);
            prop_assert_eq!(pvr_crypto::decode_exact::<AsPath>(&q.to_wire()).unwrap(), q);
        }
    }
}
