//! AS paths.
//!
//! The AS path is the attribute PVR's minimum operator reasons about
//! (§3.3 verifies "the route A has exported to B is not longer than
//! r_i"). We implement the `AS_SEQUENCE` form only — `AS_SET`
//! aggregation is a documented omission (it is rare in the modern
//! Internet and orthogonal to the paper's mechanisms).

use crate::types::Asn;
use pvr_crypto::encoding::{decode_seq, encode_seq, Reader, Wire, WireError};

/// An ordered AS-level path, nearest AS first (as in BGP updates).
#[derive(Clone, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct AsPath(Vec<Asn>);

impl AsPath {
    /// The empty path (a locally originated route).
    pub fn empty() -> AsPath {
        AsPath(Vec::new())
    }

    /// Builds from a slice, nearest AS first.
    pub fn from_slice(asns: &[Asn]) -> AsPath {
        AsPath(asns.to_vec())
    }

    /// Path length in AS hops — the quantity the minimum operator
    /// compares.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True for a locally originated route.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The ASes in order, nearest first.
    pub fn asns(&self) -> &[Asn] {
        &self.0
    }

    /// The AS that originated the route (last element), if any.
    pub fn origin_as(&self) -> Option<Asn> {
        self.0.last().copied()
    }

    /// The neighbor the route was learned from (first element), if any.
    pub fn first_as(&self) -> Option<Asn> {
        self.0.first().copied()
    }

    /// Returns a new path with `asn` prepended (what an AS does when it
    /// propagates a route).
    pub fn prepend(&self, asn: Asn) -> AsPath {
        let mut v = Vec::with_capacity(self.0.len() + 1);
        v.push(asn);
        v.extend_from_slice(&self.0);
        AsPath(v)
    }

    /// True if `asn` appears anywhere on the path (BGP loop detection).
    pub fn contains(&self, asn: Asn) -> bool {
        self.0.contains(&asn)
    }

    /// True if any AS appears more than once.
    pub fn has_loop(&self) -> bool {
        let mut seen = std::collections::HashSet::with_capacity(self.0.len());
        self.0.iter().any(|a| !seen.insert(a))
    }
}

impl std::fmt::Debug for AsPath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Display::fmt(self, f)
    }
}

impl std::fmt::Display for AsPath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.0.is_empty() {
            return write!(f, "(local)");
        }
        let parts: Vec<String> = self.0.iter().map(|a| a.0.to_string()).collect();
        write!(f, "{}", parts.join(" "))
    }
}

impl Wire for AsPath {
    fn encode(&self, buf: &mut Vec<u8>) {
        encode_seq(&self.0, buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(AsPath(decode_seq(r)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn path(asns: &[u32]) -> AsPath {
        AsPath::from_slice(&asns.iter().map(|&a| Asn(a)).collect::<Vec<_>>())
    }

    #[test]
    fn construction_and_accessors() {
        let p = path(&[3, 2, 1]);
        assert_eq!(p.len(), 3);
        assert_eq!(p.first_as(), Some(Asn(3)));
        assert_eq!(p.origin_as(), Some(Asn(1)));
        assert!(!p.is_empty());
        assert!(AsPath::empty().is_empty());
        assert_eq!(AsPath::empty().origin_as(), None);
    }

    #[test]
    fn prepend_preserves_original() {
        let p = path(&[2, 1]);
        let q = p.prepend(Asn(3));
        assert_eq!(q, path(&[3, 2, 1]));
        assert_eq!(p, path(&[2, 1]));
    }

    #[test]
    fn loop_detection() {
        assert!(!path(&[3, 2, 1]).has_loop());
        assert!(path(&[3, 2, 3]).has_loop());
        assert!(path(&[1, 2, 3]).contains(Asn(2)));
        assert!(!path(&[1, 2, 3]).contains(Asn(9)));
    }

    #[test]
    fn display_forms() {
        assert_eq!(path(&[3, 2, 1]).to_string(), "3 2 1");
        assert_eq!(AsPath::empty().to_string(), "(local)");
    }

    #[test]
    fn wire_round_trip() {
        let p = path(&[65001, 65002, 65003]);
        let back: AsPath = pvr_crypto::decode_exact(&p.to_wire()).unwrap();
        assert_eq!(back, p);
        let back: AsPath = pvr_crypto::decode_exact(&AsPath::empty().to_wire()).unwrap();
        assert_eq!(back, AsPath::empty());
    }

    proptest! {
        #[test]
        fn prop_prepend_grows_by_one(asns in proptest::collection::vec(any::<u32>(), 0..12),
                                     head in any::<u32>()) {
            let p = path(&asns);
            let q = p.prepend(Asn(head));
            prop_assert_eq!(q.len(), p.len() + 1);
            prop_assert_eq!(q.first_as(), Some(Asn(head)));
            prop_assert!(q.contains(Asn(head)));
        }

        #[test]
        fn prop_wire_round_trip(asns in proptest::collection::vec(any::<u32>(), 0..16)) {
            let p = path(&asns);
            prop_assert_eq!(pvr_crypto::decode_exact::<AsPath>(&p.to_wire()).unwrap(), p);
        }
    }
}
