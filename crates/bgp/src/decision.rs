//! The BGP decision process.
//!
//! This is the pipeline the paper's §2.1 describes operator-by-operator:
//! "An example would be an operator for selecting, from a given set of
//! routes, the routes with minimal AS path length (the second step in
//! BGP). A pipeline of such operators, one for each attribute, makes up
//! the usual route selection process."
//!
//! Ranking implemented (standard order, minus iBGP-only steps):
//! 1. highest LOCAL_PREF;
//! 2. shortest AS path;
//! 3. lowest ORIGIN (IGP < EGP < INCOMPLETE);
//! 4. lowest MED (compared across all neighbors — "always-compare-med",
//!    a common router knob; documented simplification);
//! 5. lowest neighbor ASN (deterministic stand-in for the router-id
//!    tiebreak).
//!
//! Omissions (documented, smoltcp-style): no iBGP/eBGP preference step
//! (there is no iBGP), no IGP-metric step, no route age.

use crate::route::Route;
use crate::types::Asn;
use pvr_crypto::encoding::{Reader, Wire, WireError};
use std::cmp::Ordering;

/// A candidate in the decision process: a route plus the neighbor it was
/// learned from (`None` for locally originated routes).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Candidate {
    /// The route under consideration.
    pub route: Route,
    /// Which neighbor advertised it.
    pub learned_from: Option<Asn>,
}

impl Candidate {
    /// Wraps a route learned from `neighbor`.
    pub fn from_neighbor(route: Route, neighbor: Asn) -> Candidate {
        Candidate { route, learned_from: Some(neighbor) }
    }

    /// Wraps a locally originated route.
    pub fn local(route: Route) -> Candidate {
        Candidate { route, learned_from: None }
    }
}

/// Candidates are what the checkpoint layer persists per Loc-RIB entry
/// (and what the copy-on-write RIB store keeps per snapshot cell), so
/// they carry the same canonical encoding routes do on the wire.
impl Wire for Candidate {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.route.encode(buf);
        self.learned_from.encode(buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Candidate { route: Route::decode(r)?, learned_from: Option::<Asn>::decode(r)? })
    }
    fn encoded_len(&self) -> usize {
        self.route.encoded_len() + self.learned_from.encoded_len()
    }
}

/// Compares two candidates; `Ordering::Greater` means `a` is preferred.
pub fn prefer(a: &Candidate, b: &Candidate) -> Ordering {
    prefer_refs(&a.route, a.learned_from, &b.route, b.learned_from)
}

/// [`prefer`] over borrowed parts: the RIB's reselection compares
/// candidates in place (straight out of the Adj-RIB-In) without
/// materializing owned [`Candidate`]s.
pub fn prefer_refs(
    a_route: &Route,
    a_from: Option<Asn>,
    b_route: &Route,
    b_from: Option<Asn>,
) -> Ordering {
    // 1. Highest LOCAL_PREF.
    match a_route.local_pref.cmp(&b_route.local_pref) {
        Ordering::Equal => {}
        ord => return ord,
    }
    // 2. Shortest AS path (fewer hops preferred ⇒ reverse compare).
    match b_route.path_len().cmp(&a_route.path_len()) {
        Ordering::Equal => {}
        ord => return ord,
    }
    // 3. Lowest origin.
    match b_route.origin.cmp(&a_route.origin) {
        Ordering::Equal => {}
        ord => return ord,
    }
    // 4. Lowest MED.
    match b_route.med.cmp(&a_route.med) {
        Ordering::Equal => {}
        ord => return ord,
    }
    // 5. Local routes beat learned ones; then lowest neighbor ASN.
    let a_key = a_from.map(|n| n.0).unwrap_or(0);
    let b_key = b_from.map(|n| n.0).unwrap_or(0);
    b_key.cmp(&a_key)
}

/// Selects the best candidate, or `None` if the set is empty.
///
/// Deterministic: ties are fully broken by [`prefer`], so the result
/// does not depend on input order (asserted by property tests).
pub fn best<'a, I>(candidates: I) -> Option<&'a Candidate>
where
    I: IntoIterator<Item = &'a Candidate>,
{
    candidates.into_iter().max_by(|a, b| prefer(a, b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::AsPath;
    use crate::route::Origin;
    use crate::types::Prefix;
    use proptest::prelude::*;

    fn route(path: &[u32], lp: u32) -> Route {
        let mut r = Route::originate(Prefix::parse("10.0.0.0/8").unwrap());
        r.path = AsPath::from_slice(&path.iter().map(|&a| Asn(a)).collect::<Vec<_>>());
        r.local_pref = lp;
        r
    }

    #[test]
    fn local_pref_dominates_path_length() {
        let long_but_preferred = Candidate::from_neighbor(route(&[1, 2, 3], 200), Asn(1));
        let short = Candidate::from_neighbor(route(&[4], 100), Asn(4));
        let c = [long_but_preferred.clone(), short];
        assert_eq!(best(&c), Some(&long_but_preferred));
    }

    #[test]
    fn shorter_path_wins_at_equal_pref() {
        let short = Candidate::from_neighbor(route(&[4], 100), Asn(4));
        let long = Candidate::from_neighbor(route(&[1, 2, 3], 100), Asn(1));
        let c = [long, short.clone()];
        assert_eq!(best(&c), Some(&short));
    }

    #[test]
    fn origin_breaks_path_ties() {
        let mut egp = route(&[1], 100);
        egp.origin = Origin::Egp;
        let igp = route(&[2], 100);
        let a = Candidate::from_neighbor(egp, Asn(1));
        let b = Candidate::from_neighbor(igp, Asn(2));
        let c = [a, b.clone()];
        assert_eq!(best(&c), Some(&b));
    }

    #[test]
    fn med_breaks_remaining_ties() {
        let mut hi = route(&[1], 100);
        hi.med = 50;
        let mut lo = route(&[2], 100);
        lo.med = 10;
        let a = Candidate::from_neighbor(hi, Asn(1));
        let b = Candidate::from_neighbor(lo, Asn(2));
        let c = [a, b.clone()];
        assert_eq!(best(&c), Some(&b));
    }

    #[test]
    fn neighbor_asn_is_final_tiebreak() {
        let a = Candidate::from_neighbor(route(&[9], 100), Asn(9));
        let b = Candidate::from_neighbor(route(&[5], 100), Asn(5));
        let c = [a, b.clone()];
        assert_eq!(best(&c), Some(&b));
    }

    #[test]
    fn local_route_beats_learned_all_else_equal() {
        let learned = Candidate::from_neighbor(route(&[], 100), Asn(5));
        let local = Candidate::local(route(&[], 100));
        let c = [learned, local.clone()];
        assert_eq!(best(&c), Some(&local));
    }

    #[test]
    fn empty_set_has_no_best() {
        assert_eq!(best(&[]), None);
    }

    proptest! {
        #[test]
        fn prop_order_independent(
            lens in proptest::collection::vec(0usize..6, 1..8),
            prefs in proptest::collection::vec(90u32..110, 1..8),
        ) {
            let n = lens.len().min(prefs.len());
            let mut cands: Vec<Candidate> = (0..n).map(|i| {
                let path: Vec<u32> = (0..lens[i]).map(|h| (100 + i * 10 + h) as u32).collect();
                Candidate::from_neighbor(route(&path, prefs[i]), Asn(i as u32 + 1))
            }).collect();
            let forward = best(&cands).cloned();
            cands.reverse();
            let backward = best(&cands).cloned();
            prop_assert_eq!(forward, backward);
        }

        #[test]
        fn prop_prefer_is_antisymmetric(
            l1 in 0usize..5, l2 in 0usize..5,
            p1 in 90u32..110, p2 in 90u32..110,
        ) {
            let a = Candidate::from_neighbor(route(&vec![11; l1], p1), Asn(1));
            let b = Candidate::from_neighbor(route(&vec![22; l2], p2), Asn(2));
            prop_assert_eq!(prefer(&a, &b), prefer(&b, &a).reverse());
        }
    }
}
