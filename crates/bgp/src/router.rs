//! The BGP speaker: a [`pvr_netsim::Agent`] that maintains RIBs, runs
//! the decision process, applies policy, and (optionally) signs and
//! verifies route attestations.
//!
//! Implemented features: UPDATE processing with implicit withdraw,
//! per-neighbor export with Gao–Rexford/partial-transit policy,
//! loop rejection, S-BGP attestation signing/verification, scheduled
//! originations/withdrawals (for workloads), per-router statistics.
//!
//! ## Propagation cost model (post-E14)
//!
//! The hot path is structurally shared end to end: per-neighbor export
//! no longer copies attribute bytes. The propagated route (path
//! prepended once) is built a single time per selection change and
//! cloned per neighbor as reference-count bumps; extending an
//! attestation chain shares the received chain rather than re-copying
//! its prefix; and message `wire_size` accounting is arithmetic, never
//! an encode. Announcements that lose to the standing best route are
//! rejected in O(1) by the incremental decision path
//! ([`crate::rib::ReselectHint`]) without rescanning the Adj-RIB-In.
//!
//! ## Failure semantics (post-E16)
//!
//! The router implements proper session teardown and recovery through
//! the fault layer's [`Agent::on_session`] callback: a session loss
//! flushes both Adj-RIBs for the peer and floods withdraws for every
//! route learned over it; recovery re-announces the full Loc-RIB per
//! export policy. RFC 2439-style route-flap dampening
//! ([`crate::dampening`]) suppresses persistently flapping
//! `(neighbor, prefix)` pairs, and MRAI batching supports a jittered
//! re-arm delay drawn from a router-owned seeded DRBG (never the
//! engine's — per-shard engine DRBGs would break the cross-engine
//! byte-identity the determinism gate asserts).
//!
//! Documented omissions: no OPEN/KEEPALIVE exchange (session state is
//! driven by the fault layer, not a peer FSM), no iBGP, no aggregation.

use crate::dampening::{DampState, DampeningPolicy};
use crate::decision::Candidate;
use crate::messages::BgpUpdate;
use crate::policy::PolicyConfig;
use crate::private::{PrivateRequest, PrivateVerifier, PVR_VERDICT_TIMER};
use crate::rib::{AdjRibIn, AdjRibOut, LocRib, ReselectHint, ReselectOutcome};
use crate::route::Route;
use crate::sbgp::{SignedRoute, VerifyCache};
use crate::sorted::SortedMap;
use crate::topology::OriginTable;
use crate::types::{Asn, Prefix};
use pvr_crypto::drbg::HmacDrbg;
use pvr_crypto::encoding::{Reader, Wire, WireError};
use pvr_crypto::keys::{Identity, KeyStore};
use pvr_netsim::{Agent, Context, NodeId, SimDuration, SimTime};
use std::any::Any;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

/// A scheduled local action (drives workloads without an extra agent).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LocalEvent {
    /// Start originating `prefix`.
    Announce(Prefix),
    /// Stop originating `prefix`.
    Withdraw(Prefix),
}

impl Wire for LocalEvent {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            LocalEvent::Announce(p) => {
                buf.push(0);
                p.encode(buf);
            }
            LocalEvent::Withdraw(p) => {
                buf.push(1);
                p.encode(buf);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.take(1)?[0] {
            0 => Ok(LocalEvent::Announce(Prefix::decode(r)?)),
            1 => Ok(LocalEvent::Withdraw(Prefix::decode(r)?)),
            _ => Err(WireError::Invalid("local event discriminant")),
        }
    }
}

/// Security mode for a router.
pub enum SecurityMode {
    /// Plain BGP: no signatures.
    Plain,
    /// S-BGP mode: sign own announcements, verify received chains, drop
    /// announcements that fail verification.
    Signed {
        /// This AS's signing identity (boxed: an RSA identity is far
        /// larger than the `Plain` variant).
        identity: Box<Identity>,
        /// Public keys of all ASes.
        keys: Arc<KeyStore>,
    },
}

pvr_obs::metric_struct! {
    /// Per-router counters (inputs to experiment E8's overhead table and
    /// E12's detection columns).
    ///
    /// Declared through [`pvr_obs::metric_struct!`], which also derives
    /// the commutative `add` fold (network-wide totals independent of
    /// router iteration order and shard layout) and the registry export
    /// (counters named `pvr_router_<field>_total`) from the same field
    /// list — the struct and the metrics registry cannot drift apart.
    pub struct RouterStats, prefix = "pvr_router" {
        /// UPDATE messages received.
        pub updates_rx: u64,
        /// UPDATE messages sent.
        pub updates_tx: u64,
        /// Routes accepted into Adj-RIB-In.
        pub routes_accepted: u64,
        /// Routes rejected by import policy (incl. loops).
        pub routes_rejected: u64,
        /// Announcements dropped due to attestation failures.
        pub attestation_failures: u64,
        /// Announcements dropped because the origin AS is not authorized
        /// for the prefix (RPKI-style check, see [`OriginTable`]).
        pub origin_failures: u64,
        /// Attestation-signature checks this router requested (signed
        /// mode with the network-wide cache installed; one per attestation
        /// of each received chain).
        pub verify_calls: u64,
        /// How many of those were answered by the network-wide
        /// [`VerifyCache`] without running RSA.
        pub verify_cache_hits: u64,
        /// Decision-process runs that changed the best route.
        pub best_changes: u64,
        /// Decision-process runs resolved in O(1) by the incremental path:
        /// the arrival lost to the standing best (or withdrew a non-best
        /// route), so no candidate rescan, no clone, no export ran.
        pub reselect_short_circuits: u64,
        /// Explicit withdraws this router queued for transmission
        /// (counted pre-MRAI-merge: the fan-out of a withdraw storm, not
        /// the post-batching wire count).
        pub withdraws_sent: u64,
        /// Announcements parked by route-flap dampening because the
        /// `(neighbor, prefix)` pair was suppressed on arrival.
        pub dampening_suppressed: u64,
    }
}

impl RouterStats {
    /// A copy with the cache-locality-dependent counter cleared.
    /// `verify_cache_hits` is the one statistic that legitimately
    /// depends on cache scope (a per-shard cache sees fewer reuse
    /// opportunities than a network-wide one, so sharded hits ≤ serial
    /// hits); every other counter — including `verify_calls` — must be
    /// identical between the serial and sharded engines, which the
    /// determinism tests assert on this projection.
    pub fn shard_invariant(&self) -> RouterStats {
        RouterStats { verify_cache_hits: 0, ..self.clone() }
    }
}

/// Hooks that turn a router into a malicious agent. Used by the
/// `pvr-attack` campaign engine; every flag defaults to honest
/// behaviour.
#[derive(Clone, Debug, Default)]
pub struct Malice {
    /// Ignore export policy: advertise every selected route to every
    /// neighbor regardless of where it was learned — the classic
    /// customer→provider route leak (a Gao–Rexford valley).
    pub leak_all: bool,
}

/// Reserved timer id for the MRAI flush (schedule timers use indices,
/// which can never reach this value).
const MRAI_TIMER: u64 = u64::MAX;

/// Reserved timer id for the dampening reuse-list tick.
const DAMP_TIMER: u64 = u64::MAX - 1;

/// A BGP speaker for one AS.
pub struct BgpRouter {
    asn: Asn,
    policy: PolicyConfig,
    security: SecurityMode,
    /// Neighbor AS → simulator node.
    neighbor_nodes: BTreeMap<Asn, NodeId>,
    /// Reverse lookup for message attribution (built alongside
    /// `neighbor_nodes`; avoids a per-message linear scan).
    asn_of_node: HashMap<NodeId, Asn>,
    /// Neighbors in ascending-ASN order, for allocation-free iteration
    /// during the per-prefix export loop.
    neighbor_list: Vec<(Asn, NodeId)>,
    /// Scheduled announce/withdraw actions: (delay, event).
    schedule: Vec<(SimDuration, LocalEvent)>,
    /// Prefixes originated at start.
    originate_at_start: Vec<Prefix>,

    adj_in: AdjRibIn,
    loc_rib: LocRib,
    adj_out: AdjRibOut,
    /// Attestation chains for routes in Adj-RIB-In (signed mode).
    chains_in: BTreeMap<(Asn, Prefix), SignedRoute>,
    /// Currently originated prefixes.
    local: BTreeMap<Prefix, Candidate>,
    /// Minimum route advertisement interval: when set, outgoing updates
    /// are buffered and flushed at most once per interval (RFC 4271
    /// §9.2.1.1, simplified to a router-level timer).
    mrai: Option<SimDuration>,
    /// Buffered updates awaiting the next MRAI tick.
    mrai_buffer: BTreeMap<NodeId, BgpUpdate>,
    /// Whether an MRAI flush timer is currently armed.
    mrai_armed: bool,
    /// Upper bound on the random extra delay added each time the MRAI
    /// timer is armed (RFC 4271's jitter, §9.2.1.1 / §10).
    mrai_jitter: Option<SimDuration>,
    /// Router-owned DRBG the MRAI jitter draws from. Deliberately not
    /// the engine's `ctx.rng()`: the sharded engine hands each shard
    /// its own DRBG, so engine randomness consumed inside agents would
    /// diverge between the serial and sharded runs.
    jitter_rng: Option<HmacDrbg>,
    /// Route-flap dampening policy (`None` = dampening off).
    dampening: Option<DampeningPolicy>,
    /// Dampening figure-of-merit per `(neighbor, prefix)`.
    damp_states: BTreeMap<(Asn, Prefix), DampState>,
    /// Latest announcement parked per suppressed `(neighbor, prefix)`,
    /// re-processed when the pair's penalty decays below reuse.
    parked: BTreeMap<(Asn, Prefix), SignedRoute>,
    /// Whether a dampening reuse tick is currently armed.
    damp_timer_armed: bool,
    /// Neighbors whose session is currently torn down; export skips
    /// them until recovery re-announces.
    sessions_down: BTreeSet<Asn>,
    /// Malicious-behaviour switches (campaign engine).
    malice: Malice,
    /// Origin authorizations checked on import when present.
    origin_table: Option<Arc<OriginTable>>,
    /// Network-wide attestation-verification memo (signed mode;
    /// installed by `Topology::instantiate`, shared by every router of
    /// one `BgpNetwork`).
    verify_cache: Option<Arc<VerifyCache>>,
    /// Shared private-verification service (PVR mode; installed by
    /// `Topology::instantiate` when private verification is enabled).
    /// Best-route changes with ≥ 2 winning-tier candidates enqueue an
    /// SMC verification request; verdicts come back on
    /// [`PVR_VERDICT_TIMER`] after the cost-model latency.
    private_verifier: Option<Arc<PrivateVerifier>>,
    /// Router-local request sequence — with the ASN, the engine-
    /// invariant ordering key for private-verification flushes.
    pvr_seq: u64,
    /// When this router first dropped an announcement for a security
    /// reason (attestation or origin failure) — the campaign engine's
    /// detection-latency measurement.
    first_security_reject: Option<SimTime>,
    /// Reused buffer for the prefixes an UPDATE touched (per-message
    /// allocation shaved off the hot path).
    touched_scratch: Vec<Prefix>,
    /// Reused per-neighbor outgoing-update accumulator (drained by
    /// `flush`, allocation retained across messages).
    pending_scratch: SortedMap<NodeId, BgpUpdate>,
    stats: RouterStats,
    /// Per-router convergence-timeline recorder (RIB churn and verify
    /// traffic per sim-time window); `None` unless observability was
    /// enabled at instantiation. Stamped exclusively with the
    /// simulator's virtual clock (the sim-time-only tracing rule).
    obs_timeline: Option<pvr_obs::TimelineRecorder>,
    /// Ring-buffered sim-time event journal (capacity 0 = disabled).
    journal: pvr_obs::EventJournal,
}

impl BgpRouter {
    /// Creates a router for `asn` with the given policy and security mode.
    pub fn new(asn: Asn, policy: PolicyConfig, security: SecurityMode) -> BgpRouter {
        BgpRouter {
            asn,
            policy,
            security,
            neighbor_nodes: BTreeMap::new(),
            asn_of_node: HashMap::new(),
            neighbor_list: Vec::new(),
            schedule: Vec::new(),
            originate_at_start: Vec::new(),
            adj_in: AdjRibIn::new(),
            loc_rib: LocRib::new(),
            adj_out: AdjRibOut::new(),
            chains_in: BTreeMap::new(),
            local: BTreeMap::new(),
            mrai: None,
            mrai_buffer: BTreeMap::new(),
            mrai_armed: false,
            mrai_jitter: None,
            jitter_rng: None,
            dampening: None,
            damp_states: BTreeMap::new(),
            parked: BTreeMap::new(),
            damp_timer_armed: false,
            sessions_down: BTreeSet::new(),
            malice: Malice::default(),
            origin_table: None,
            verify_cache: None,
            private_verifier: None,
            pvr_seq: 0,
            first_security_reject: None,
            touched_scratch: Vec::new(),
            pending_scratch: SortedMap::new(),
            stats: RouterStats::default(),
            obs_timeline: None,
            journal: pvr_obs::EventJournal::new(0),
        }
    }

    /// Enables the per-router convergence-timeline recorder with
    /// `window`-wide sim-time windows (RIB churn and verify traffic;
    /// merged network-wide by `BgpNetwork::convergence_timeline`).
    pub fn enable_timeline(&mut self, window: SimDuration) {
        if self.obs_timeline.is_none() {
            self.obs_timeline = Some(pvr_obs::TimelineRecorder::new(
                window.as_micros(),
                pvr_obs::timeline::RT_CHANNELS,
            ));
        }
    }

    /// Enables the ring-buffered event journal, keeping the most recent
    /// `capacity` events for forensic JSONL dumps.
    pub fn enable_journal(&mut self, capacity: usize) {
        self.journal = pvr_obs::EventJournal::new(capacity);
    }

    /// The per-router timeline recorder, if enabled.
    pub fn timeline(&self) -> Option<&pvr_obs::TimelineRecorder> {
        self.obs_timeline.as_ref()
    }

    /// The per-router event journal (empty when disabled).
    pub fn journal(&self) -> &pvr_obs::EventJournal {
        &self.journal
    }

    /// Records a best-route change at `now` (timeline + journal).
    fn observe_churn(&mut self, now: SimTime) {
        let t = now.as_micros();
        if let Some(tl) = &mut self.obs_timeline {
            tl.add(t, pvr_obs::timeline::RT_RIB_CHURN, 1);
        }
        self.journal.record(t, "best_change", 1);
    }

    /// Records attestation-verification traffic at `now`. The journal
    /// keeps only the engine-invariant call count: cache hits depend on
    /// cache scope (see [`RouterStats::shard_invariant`]), and leaving
    /// them out keeps the JSONL trace byte-identical across engines.
    fn observe_verify(&mut self, now: SimTime, calls: u64, hits: u64) {
        let t = now.as_micros();
        if let Some(tl) = &mut self.obs_timeline {
            tl.add(t, pvr_obs::timeline::RT_VERIFY_CALLS, calls);
            tl.add(t, pvr_obs::timeline::RT_VERIFY_HITS, hits);
        }
        self.journal.record(t, "verify", calls);
    }

    /// Journals a security rejection (attestation/origin) at `now`.
    fn observe_reject(&mut self, now: SimTime, kind: &'static str) {
        self.journal.record(now.as_micros(), kind, 1);
    }

    /// Records an explicit withdraw queued for transmission at `now`
    /// (timeline churn channel + counter).
    fn observe_withdraw(&mut self, now: SimTime) {
        self.stats.withdraws_sent += 1;
        if let Some(tl) = &mut self.obs_timeline {
            tl.add(now.as_micros(), pvr_obs::timeline::RT_WITHDRAWS, 1);
        }
    }

    /// Switches this router to the given malicious behaviour.
    pub fn set_malice(&mut self, malice: Malice) {
        self.malice = malice;
    }

    /// True when any malicious-behaviour switch is set. Checkpointing
    /// refuses such routers: malice is installed imperatively by the
    /// campaign engine, so a restore from topology + options alone
    /// could not reconstruct it.
    pub fn malice_active(&self) -> bool {
        self.malice.leak_all
    }

    /// Installs an origin-authorization table; subsequently received
    /// announcements whose origin is unauthorized are dropped.
    pub fn set_origin_table(&mut self, table: Arc<OriginTable>) {
        self.origin_table = Some(table);
    }

    /// The installed origin table, if any (checkpoints embed it so a
    /// restored network keeps rejecting unauthorized origins).
    pub(crate) fn origin_table_ref(&self) -> Option<&Arc<OriginTable>> {
        self.origin_table.as_ref()
    }

    /// Installs the shared attestation-verification cache. Verdicts
    /// are unchanged; repeated chain verifies skip the RSA math.
    pub fn set_verify_cache(&mut self, cache: Arc<VerifyCache>) {
        self.verify_cache = Some(cache);
    }

    /// Installs the shared private-verification service; subsequent
    /// best-route changes enqueue SMC verification requests.
    pub fn set_private_verifier(&mut self, verifier: Arc<PrivateVerifier>) {
        self.private_verifier = Some(verifier);
    }

    /// The signing identity (signed mode only).
    pub fn identity(&self) -> Option<&Identity> {
        match &self.security {
            SecurityMode::Signed { identity, .. } => Some(identity),
            SecurityMode::Plain => None,
        }
    }

    /// When this router first dropped an announcement for a security
    /// reason, if it ever did.
    pub fn first_security_reject(&self) -> Option<SimTime> {
        self.first_security_reject
    }

    /// Enables MRAI batching: updates are buffered and flushed at most
    /// once per `interval`.
    pub fn set_mrai(&mut self, interval: SimDuration) {
        self.mrai = Some(interval);
    }

    /// Adds a random extra delay in `[0, jitter]` each time the MRAI
    /// timer is armed, drawn from `rng` (a router-owned DRBG; see the
    /// field docs for why it must not be the engine's).
    pub fn set_mrai_jitter(&mut self, jitter: SimDuration, rng: HmacDrbg) {
        self.mrai_jitter = Some(jitter);
        self.jitter_rng = Some(rng);
    }

    /// Enables RFC 2439-style route-flap dampening with `policy`.
    pub fn set_dampening(&mut self, policy: DampeningPolicy) {
        self.dampening = Some(policy);
    }

    /// Dampening state for `(neighbor, prefix)`, if any (test/metric
    /// introspection).
    pub fn damp_state(&self, neighbor: Asn, prefix: Prefix) -> Option<&DampState> {
        self.damp_states.get(&(neighbor, prefix))
    }

    /// Registers a neighbor and the simulator node it lives at.
    pub fn add_neighbor(&mut self, asn: Asn, node: NodeId) {
        self.neighbor_nodes.insert(asn, node);
        self.asn_of_node.insert(node, asn);
        match self.neighbor_list.binary_search_by_key(&asn, |&(a, _)| a) {
            Ok(i) => self.neighbor_list[i] = (asn, node),
            Err(i) => self.neighbor_list.insert(i, (asn, node)),
        }
    }

    /// Originates `prefix` when the simulation starts.
    pub fn originate(&mut self, prefix: Prefix) {
        self.originate_at_start.push(prefix);
    }

    /// Schedules a local announce/withdraw after `delay`.
    pub fn schedule_event(&mut self, delay: SimDuration, event: LocalEvent) {
        self.schedule.push((delay, event));
    }

    /// This router's AS number.
    pub fn asn(&self) -> Asn {
        self.asn
    }

    /// Counters.
    pub fn stats(&self) -> &RouterStats {
        &self.stats
    }

    /// The current best route for `prefix`, if any.
    pub fn best_route(&self, prefix: Prefix) -> Option<&Candidate> {
        self.loc_rib.get(prefix)
    }

    /// What this router last advertised to `neighbor` for `prefix`.
    pub fn advertised_to(&self, neighbor: Asn, prefix: Prefix) -> Option<&Route> {
        self.adj_out.get(neighbor, prefix)
    }

    /// The post-import route currently held from `neighbor` for `prefix`.
    pub fn route_from(&self, neighbor: Asn, prefix: Prefix) -> Option<&Route> {
        self.adj_in.get(neighbor, prefix)
    }

    /// Every (prefix, route) pair currently held from `neighbor`, in
    /// prefix order. The raw material for the `pvr-attack` gossip audit:
    /// a neighbor reveals only what the suspect itself announced to it.
    pub fn routes_from(&self, neighbor: Asn) -> Vec<(Prefix, &Route)> {
        self.adj_in.from_neighbor(neighbor)
    }

    /// Read access to the import policy.
    pub fn policy(&self) -> &PolicyConfig {
        &self.policy
    }

    /// The attested announcement (with its full chain) currently held
    /// from `neighbor` for `prefix` — what a PVR committer feeds into a
    /// round, and what a provider presents as `IgnoredInput` evidence.
    pub fn received_chain(&self, neighbor: Asn, prefix: Prefix) -> Option<&SignedRoute> {
        self.chains_in.get(&(neighbor, prefix))
    }

    /// All prefixes currently selected in the Loc-RIB, in prefix order.
    pub fn selected_prefixes(&self) -> Vec<Prefix> {
        self.loc_rib.prefixes().collect()
    }

    /// `(Adj-RIB-In entries, Loc-RIB selections)` — the scale
    /// experiment E14's RIB-size accounting.
    pub fn rib_entry_counts(&self) -> (usize, usize) {
        (self.adj_in.len(), self.loc_rib.len())
    }

    fn start_originating(&mut self, prefix: Prefix) {
        let route = Route::originate(prefix);
        self.local.insert(prefix, Candidate::local(route));
    }

    /// Runs the decision process for `prefix`; on change, advertises or
    /// withdraws toward every neighbor per export policy. Outgoing
    /// updates are merged into `pending` (one UPDATE per neighbor).
    ///
    /// `hint` feeds the incremental decision path: an arrival that
    /// loses to the standing best returns after one comparison, with
    /// no candidate rescan and no export loop.
    fn reselect_and_export(
        &mut self,
        prefix: Prefix,
        hint: ReselectHint,
        now: SimTime,
        pending: &mut SortedMap<NodeId, BgpUpdate>,
    ) {
        let outcome =
            self.loc_rib.reselect_with_hint(prefix, &self.adj_in, self.local.get(&prefix), hint);
        match outcome {
            ReselectOutcome::UnchangedShortCircuit => {
                self.stats.reselect_short_circuits += 1;
                return;
            }
            ReselectOutcome::UnchangedScanned => return,
            ReselectOutcome::Changed => {}
        }
        self.stats.best_changes += 1;
        self.observe_churn(now);
        self.request_private_verification(prefix);
        self.export(prefix, now, pending);
    }

    /// Enqueues a private-verification request for the fresh selection
    /// of `prefix`, when the mode is on and there is something to
    /// verify: a *learned* best route with at least one competing
    /// candidate in the winning LOCAL_PREF tier. Each tier candidate's
    /// path length is one party's secret input; the claimed length is
    /// the selected route's. An honest selection always passes both
    /// circuits (the claim *is* the tier minimum, so every "claim ≤
    /// mine" vote is true).
    fn request_private_verification(&mut self, prefix: Prefix) {
        let Some(verifier) = &self.private_verifier else { return };
        let Some(best) = self.loc_rib.get(prefix) else { return };
        if best.learned_from.is_none() {
            return; // locally originated: no neighbors to compare
        }
        let pref = best.route.local_pref;
        let claimed_len = best.route.path_len() as u64;
        let candidate_lens: Vec<u64> = self
            .adj_in
            .candidate_refs(prefix)
            .filter(|(_, r)| r.local_pref == pref)
            .map(|(_, r)| r.path_len() as u64)
            .collect();
        if candidate_lens.len() < 2 {
            return; // a lone candidate leaks nothing by comparison
        }
        let seq = self.pvr_seq;
        self.pvr_seq += 1;
        verifier.enqueue(PrivateRequest {
            asn: self.asn,
            seq,
            prefix,
            claimed_len,
            candidate_lens,
        });
    }

    /// The per-neighbor half of [`reselect_and_export`]: advertises or
    /// withdraws the standing best route toward every live neighbor.
    ///
    /// [`reselect_and_export`]: BgpRouter::reselect_and_export
    fn export(&mut self, prefix: Prefix, now: SimTime, pending: &mut SortedMap<NodeId, BgpUpdate>) {
        // O(1)-ish clone: the candidate's route shares its path and
        // communities.
        let best = self.loc_rib.get(prefix).cloned();
        // The propagated route is identical toward every neighbor
        // (LOCAL_PREF/MED reset, path prepended): build it once, clone
        // refcounts per neighbor.
        let out_route = best.as_ref().map(|cand| cand.route.propagated_by(self.asn));
        for i in 0..self.neighbor_list.len() {
            // Indexed access keeps the borrow local so the RIB and
            // policy can be touched inside the loop.
            let (neighbor, node) = self.neighbor_list[i];
            // No updates toward a torn-down session; recovery
            // re-announces the whole Loc-RIB instead.
            if self.sessions_down.contains(&neighbor) {
                continue;
            }
            // A leaking router bypasses export policy entirely (still
            // skipping the neighbor the route came from: re-exporting to
            // the source would only be loop-rejected there).
            let exportable = best.as_ref().filter(|cand| {
                if self.malice.leak_all {
                    cand.learned_from != Some(neighbor)
                } else {
                    self.policy.may_export(&cand.route, cand.learned_from, neighbor)
                }
            });
            match exportable {
                Some(cand) => {
                    let out_route = out_route.as_ref().expect("built alongside best").clone();
                    // Skip if identical to what the neighbor already has.
                    if self.adj_out.get(neighbor, prefix) == Some(&out_route) {
                        continue;
                    }
                    let signed = self.sign_for(cand, &out_route, neighbor);
                    self.adj_out.advertise(neighbor, out_route);
                    pending.get_or_default(node).announces.push(signed);
                }
                None => {
                    if self.adj_out.withdraw(neighbor, prefix).is_some() {
                        pending.get_or_default(node).withdraws.push(prefix);
                        self.observe_withdraw(now);
                    }
                }
            }
        }
    }

    /// Builds the (possibly attested) announcement of `out_route` to
    /// `neighbor`, extending the received chain when one exists.
    fn sign_for(&self, cand: &Candidate, out_route: &Route, neighbor: Asn) -> SignedRoute {
        match &self.security {
            SecurityMode::Plain => SignedRoute::unsigned(out_route.clone()),
            SecurityMode::Signed { identity, .. } => match cand.learned_from {
                None => SignedRoute::originate(identity, out_route.clone(), neighbor),
                Some(from) => {
                    let received = self
                        .chains_in
                        .get(&(from, out_route.prefix))
                        .expect("signed mode: chain must exist for learned route");
                    SignedRoute::extend(received, identity, out_route.clone(), neighbor)
                }
            },
        }
    }

    /// Processes one announcement from `from` at simulated time `now`;
    /// returns the prefix if the Adj-RIB-In changed.
    fn process_announce(&mut self, from: Asn, sr: SignedRoute, now: SimTime) -> Option<Prefix> {
        // Attestation check first (signed mode only).
        if let SecurityMode::Signed { keys, .. } = &self.security {
            let cache = self.verify_cache.as_deref();
            let before = cache.map(|c| (c.calls(), c.hits()));
            let verdict = sr.verify_cached(self.asn, keys, cache);
            if let (Some(cache), Some((calls, hits))) = (cache, before) {
                // Only one thread ever dispatches into a given cache's
                // routers (the whole network serially, or one shard of
                // it under the sharded engine's per-shard caches), so
                // the deltas are exactly this router's share of the
                // shared counters — no cross-shard double-counting.
                let delta_calls = cache.calls() - calls;
                let delta_hits = cache.hits() - hits;
                self.stats.verify_calls += delta_calls;
                self.stats.verify_cache_hits += delta_hits;
                if delta_calls > 0 {
                    self.observe_verify(now, delta_calls, delta_hits);
                }
            }
            if verdict.is_err() {
                self.stats.attestation_failures += 1;
                self.first_security_reject.get_or_insert(now);
                self.observe_reject(now, "attestation_reject");
                return None;
            }
            // The claimed first AS must be the actual sender.
            if sr.route.path.first_as() != Some(from) {
                self.stats.attestation_failures += 1;
                self.first_security_reject.get_or_insert(now);
                self.observe_reject(now, "attestation_reject");
                return None;
            }
        }
        // Origin authorization (RPKI-style) when a table is installed.
        if let Some(table) = &self.origin_table {
            if let Some(origin) = sr.route.path.origin_as() {
                if !table.permits(sr.route.prefix, origin) {
                    self.stats.origin_failures += 1;
                    self.first_security_reject.get_or_insert(now);
                    self.observe_reject(now, "origin_reject");
                    return None;
                }
            }
        }
        let prefix = sr.route.prefix;
        match self.policy.import(self.asn, from, sr.route.clone()) {
            Some(imported) => {
                self.stats.routes_accepted += 1;
                self.adj_in.insert(from, imported);
                // Chains only matter when this router re-signs
                // announcements (or feeds a PVR round); plain mode
                // skips the bookkeeping entirely.
                if matches!(self.security, SecurityMode::Signed { .. }) {
                    self.chains_in.insert((from, prefix), sr);
                }
                Some(prefix)
            }
            None => {
                self.stats.routes_rejected += 1;
                // An unimportable announcement still implicitly withdraws
                // any previous route from this neighbor.
                if self.adj_in.remove(from, prefix) {
                    self.chains_in.remove(&(from, prefix));
                    Some(prefix)
                } else {
                    None
                }
            }
        }
    }

    /// Sends (or MRAI-buffers) the accumulated per-neighbor updates in
    /// node order, leaving the drained scratch map's allocation behind
    /// for the next message.
    fn flush(&mut self, ctx: &mut Context<BgpUpdate>, pending: &mut SortedMap<NodeId, BgpUpdate>) {
        match self.mrai {
            None => {
                for (node, update) in pending.drain() {
                    if !update.is_empty() {
                        self.stats.updates_tx += 1;
                        ctx.send(node, update);
                    }
                }
            }
            Some(interval) => {
                let mut buffered_any = false;
                for (node, update) in pending.drain() {
                    if update.is_empty() {
                        continue;
                    }
                    self.mrai_buffer.entry(node).or_default().merge(update);
                    buffered_any = true;
                }
                if buffered_any && !self.mrai_armed {
                    self.mrai_armed = true;
                    let delay = interval + self.mrai_jitter_delay();
                    ctx.set_timer(delay, MRAI_TIMER);
                }
            }
        }
    }

    /// Sends everything in the MRAI buffer.
    fn flush_mrai_buffer(&mut self, ctx: &mut Context<BgpUpdate>) {
        self.mrai_armed = false;
        for (node, update) in std::mem::take(&mut self.mrai_buffer) {
            if !update.is_empty() {
                self.stats.updates_tx += 1;
                ctx.send(node, update);
            }
        }
    }

    /// The extra delay to add when arming the MRAI timer: a fresh draw
    /// in `[0, jitter]` from the router-owned DRBG, or zero when jitter
    /// is not configured.
    fn mrai_jitter_delay(&mut self) -> SimDuration {
        match (&mut self.jitter_rng, self.mrai_jitter) {
            (Some(rng), Some(jitter)) if jitter.as_micros() > 0 => {
                SimDuration::from_micros(rng.below(jitter.as_micros() + 1))
            }
            _ => SimDuration::ZERO,
        }
    }

    /// Records one flap of `(from, prefix)` against the dampening state
    /// (no-op with dampening off).
    fn penalize(&mut self, from: Asn, prefix: Prefix, now: SimTime) {
        let Some(policy) = self.dampening else { return };
        let state = self.damp_states.entry((from, prefix)).or_insert_with(|| DampState::new(now));
        state.penalize(now, &policy);
    }

    /// Session toward `peer` went down: discard anything buffered for
    /// it, forget what we advertised to it (its view of us is gone),
    /// flush every route learned over it, and flood withdraws to the
    /// surviving neighbors wherever that changes a selection.
    fn session_down(
        &mut self,
        peer: Asn,
        node: NodeId,
        now: SimTime,
        pending: &mut SortedMap<NodeId, BgpUpdate>,
    ) {
        if !self.sessions_down.insert(peer) {
            return; // already down
        }
        self.mrai_buffer.remove(&node);
        self.adj_out.flush_neighbor(peer);
        let lost: Vec<Prefix> =
            self.adj_in.from_neighbor(peer).into_iter().map(|(prefix, _)| prefix).collect();
        for prefix in lost {
            self.adj_in.remove(peer, prefix);
            self.chains_in.remove(&(peer, prefix));
            self.parked.remove(&(peer, prefix));
            // A session loss withdraws the route as far as dampening is
            // concerned (RFC 2439 counts it as a flap).
            self.penalize(peer, prefix, now);
            self.reselect_and_export(prefix, ReselectHint::Neighbor(peer), now, pending);
        }
    }

    /// Session toward `peer` recovered: re-announce the full Loc-RIB
    /// per export policy (Adj-RIB-Out for the peer was flushed on the
    /// way down, so everything exportable goes out again).
    fn session_up(
        &mut self,
        peer: Asn,
        node: NodeId,
        _now: SimTime,
        pending: &mut SortedMap<NodeId, BgpUpdate>,
    ) {
        if !self.sessions_down.remove(&peer) {
            return; // was not down (e.g. plan started with LinkUp)
        }
        let prefixes: Vec<Prefix> = self.loc_rib.prefixes().collect();
        for prefix in prefixes {
            let Some(cand) = self.loc_rib.get(prefix).cloned() else { continue };
            let exportable = if self.malice.leak_all {
                cand.learned_from != Some(peer)
            } else {
                self.policy.may_export(&cand.route, cand.learned_from, peer)
            };
            if !exportable {
                continue;
            }
            let out_route = cand.route.propagated_by(self.asn);
            if self.adj_out.get(peer, prefix) == Some(&out_route) {
                continue;
            }
            let signed = self.sign_for(&cand, &out_route, peer);
            self.adj_out.advertise(peer, out_route);
            pending.get_or_default(node).announces.push(signed);
        }
    }

    /// Dampening reuse tick: decay every tracked penalty, release pairs
    /// that fell below the reuse threshold (re-processing their parked
    /// announcement), drop fully decayed state, and re-arm while any
    /// pair stays suppressed.
    fn damp_tick(&mut self, ctx: &mut Context<BgpUpdate>) {
        self.damp_timer_armed = false;
        let Some(policy) = self.dampening else { return };
        let now = ctx.now();
        let mut released = Vec::new();
        let mut expired = Vec::new();
        for (&key, state) in self.damp_states.iter_mut() {
            let was_suppressed = state.suppressed;
            let still_suppressed = state.refresh(now, &policy);
            if was_suppressed && !still_suppressed {
                released.push(key);
            }
            if !still_suppressed && state.penalty == 0 {
                expired.push(key);
            }
        }
        for key in expired {
            self.damp_states.remove(&key);
        }
        let mut pending = std::mem::take(&mut self.pending_scratch);
        for (from, prefix) in released {
            if let Some(sr) = self.parked.remove(&(from, prefix)) {
                if self.process_announce(from, sr, now).is_some() {
                    self.reselect_and_export(
                        prefix,
                        ReselectHint::Neighbor(from),
                        now,
                        &mut pending,
                    );
                }
            }
        }
        self.flush(ctx, &mut pending);
        self.pending_scratch = pending;
        self.arm_damp_timer_if_needed(ctx);
    }

    /// Arms the dampening reuse tick when any pair is suppressed and no
    /// tick is already pending (keeps the simulation quiescent once all
    /// penalties decay away).
    fn arm_damp_timer_if_needed(&mut self, ctx: &mut Context<BgpUpdate>) {
        let Some(policy) = self.dampening else { return };
        if self.damp_timer_armed {
            return;
        }
        if self.damp_states.values().any(|state| state.suppressed) {
            self.damp_timer_armed = true;
            ctx.set_timer(policy.reuse_tick, DAMP_TIMER);
        }
    }

    /// Serializes every field the event loop mutates — RIBs, chains,
    /// MRAI buffer, dampening state, session set, counters, recorders —
    /// in a fixed deterministic order. Static configuration (policy,
    /// keys, neighbors, schedule) is *not* written: restore rebuilds it
    /// from the topology and overlays this dynamic state on top.
    pub(crate) fn save_dynamic(&self, buf: &mut Vec<u8>) {
        // Adj-RIB-In: routes carry their own prefix, so each cell is
        // (neighbor, route); prefix-major, neighbor-ascending order.
        (self.adj_in.len() as u32).encode(buf);
        for prefix in self.adj_in.prefixes().collect::<Vec<_>>() {
            for (n, r) in self.adj_in.candidate_refs(prefix) {
                n.encode(buf);
                r.encode(buf);
            }
        }
        // Loc-RIB: candidates re-key by their route's prefix on load.
        (self.loc_rib.len() as u32).encode(buf);
        for prefix in self.loc_rib.prefixes().collect::<Vec<_>>() {
            self.loc_rib.get(prefix).expect("listed prefix").encode(buf);
        }
        let adj_out = self.adj_out.entries();
        (adj_out.len() as u32).encode(buf);
        for (n, _, r) in adj_out {
            n.encode(buf);
            r.encode(buf);
        }
        (self.chains_in.len() as u32).encode(buf);
        for (&(n, _), sr) in &self.chains_in {
            n.encode(buf);
            sr.encode(buf);
        }
        (self.local.len() as u32).encode(buf);
        for cand in self.local.values() {
            cand.encode(buf);
        }
        (self.mrai_buffer.len() as u32).encode(buf);
        for (&node, update) in &self.mrai_buffer {
            (node as u64).encode(buf);
            update.encode(buf);
        }
        self.mrai_armed.encode(buf);
        match &self.jitter_rng {
            None => false.encode(buf),
            Some(rng) => {
                true.encode(buf);
                buf.extend_from_slice(&rng.state_bytes());
            }
        }
        (self.damp_states.len() as u32).encode(buf);
        for (&(n, p), state) in &self.damp_states {
            n.encode(buf);
            p.encode(buf);
            state.penalty.encode(buf);
            state.last_decay.encode(buf);
            state.suppressed.encode(buf);
        }
        (self.parked.len() as u32).encode(buf);
        for (&(n, _), sr) in &self.parked {
            n.encode(buf);
            sr.encode(buf);
        }
        self.damp_timer_armed.encode(buf);
        (self.sessions_down.len() as u32).encode(buf);
        for &n in &self.sessions_down {
            n.encode(buf);
        }
        self.pvr_seq.encode(buf);
        self.first_security_reject.encode(buf);
        // Counters by name, so a build whose stats struct drifted
        // rejects the checkpoint instead of misattributing counts.
        let fields = self.stats.fields();
        (fields.len() as u32).encode(buf);
        for (name, value) in fields {
            name.to_string().encode(buf);
            value.encode(buf);
        }
        match &self.obs_timeline {
            None => false.encode(buf),
            Some(tl) => {
                true.encode(buf);
                tl.window_us().encode(buf);
                (tl.channels() as u64).encode(buf);
                (tl.cells().len() as u32).encode(buf);
                for (&window, row) in tl.cells() {
                    window.encode(buf);
                    for &v in row {
                        v.encode(buf);
                    }
                }
            }
        }
        (self.journal.capacity() as u64).encode(buf);
        self.journal.evicted().encode(buf);
        (self.journal.len() as u32).encode(buf);
        for e in self.journal.entries() {
            e.t_us.encode(buf);
            e.kind.to_string().encode(buf);
            e.value.encode(buf);
        }
    }

    /// Decodes and applies the counterpart of
    /// [`save_dynamic`](Self::save_dynamic). Everything is decoded and
    /// validated before any field is touched, so a corrupt blob leaves
    /// the router exactly as built.
    pub(crate) fn load_dynamic(&mut self, r: &mut Reader<'_>) -> Result<(), WireError> {
        let mut adj_in = AdjRibIn::new();
        for _ in 0..u32::decode(r)? {
            let n = Asn::decode(r)?;
            adj_in.insert(n, Route::decode(r)?);
        }
        let mut loc_rib = LocRib::new();
        for _ in 0..u32::decode(r)? {
            let cand = Candidate::decode(r)?;
            loc_rib.install(cand.route.prefix, cand);
        }
        let mut adj_out = AdjRibOut::new();
        for _ in 0..u32::decode(r)? {
            let n = Asn::decode(r)?;
            adj_out.advertise(n, Route::decode(r)?);
        }
        let mut chains_in = BTreeMap::new();
        for _ in 0..u32::decode(r)? {
            let n = Asn::decode(r)?;
            let sr = SignedRoute::decode(r)?;
            chains_in.insert((n, sr.route.prefix), sr);
        }
        let mut local = BTreeMap::new();
        for _ in 0..u32::decode(r)? {
            let cand = Candidate::decode(r)?;
            local.insert(cand.route.prefix, cand);
        }
        let mut mrai_buffer = BTreeMap::new();
        for _ in 0..u32::decode(r)? {
            let node = u64::decode(r)? as NodeId;
            if !self.asn_of_node.contains_key(&node) {
                return Err(WireError::Invalid("MRAI buffer entry for a non-neighbor node"));
            }
            mrai_buffer.insert(node, BgpUpdate::decode(r)?);
        }
        let mrai_armed = bool::decode(r)?;
        let jitter_rng = if bool::decode(r)? {
            Some(HmacDrbg::from_state_bytes(&r.take_array::<{ HmacDrbg::STATE_LEN }>()?))
        } else {
            None
        };
        let mut damp_states = BTreeMap::new();
        for _ in 0..u32::decode(r)? {
            let key = (Asn::decode(r)?, Prefix::decode(r)?);
            let state = DampState {
                penalty: u64::decode(r)?,
                last_decay: SimTime::decode(r)?,
                suppressed: bool::decode(r)?,
            };
            damp_states.insert(key, state);
        }
        let mut parked = BTreeMap::new();
        for _ in 0..u32::decode(r)? {
            let n = Asn::decode(r)?;
            let sr = SignedRoute::decode(r)?;
            parked.insert((n, sr.route.prefix), sr);
        }
        let damp_timer_armed = bool::decode(r)?;
        let mut sessions_down = BTreeSet::new();
        for _ in 0..u32::decode(r)? {
            let n = Asn::decode(r)?;
            if !self.neighbor_nodes.contains_key(&n) {
                return Err(WireError::Invalid("torn-down session with a non-neighbor"));
            }
            sessions_down.insert(n);
        }
        let pvr_seq = u64::decode(r)?;
        let first_security_reject = Option::<SimTime>::decode(r)?;
        let mut stat_fields = Vec::new();
        for _ in 0..u32::decode(r)? {
            stat_fields.push((String::decode(r)?, u64::decode(r)?));
        }
        let stats = RouterStats::from_fields(stat_fields.iter().map(|(n, v)| (n.as_str(), *v)))
            .ok_or(WireError::Invalid("router stats field list does not match this build"))?;
        let obs_timeline = if bool::decode(r)? {
            let window_us = u64::decode(r)?;
            if window_us == 0 {
                return Err(WireError::Invalid("timeline window must be positive"));
            }
            let channels = u64::decode(r)? as usize;
            if channels != pvr_obs::timeline::RT_CHANNELS {
                return Err(WireError::Invalid("router timeline channel count"));
            }
            let mut cells = BTreeMap::new();
            for _ in 0..u32::decode(r)? {
                let window = u64::decode(r)?;
                let mut row = Vec::with_capacity(channels);
                for _ in 0..channels {
                    row.push(u64::decode(r)?);
                }
                if cells.insert(window, row).is_some() {
                    return Err(WireError::Invalid("duplicate timeline window"));
                }
            }
            Some(pvr_obs::TimelineRecorder::from_cells(window_us, channels, cells))
        } else {
            None
        };
        let journal_capacity = u64::decode(r)? as usize;
        let journal_evicted = u64::decode(r)?;
        let mut journal_entries = Vec::new();
        for _ in 0..u32::decode(r)? {
            let t_us = u64::decode(r)?;
            let kind_owned = String::decode(r)?;
            // The journal stores interned `&'static str` labels;
            // re-intern against the table of every label the router
            // ever records.
            let kind = JOURNAL_KINDS
                .iter()
                .find(|k| **k == kind_owned)
                .copied()
                .ok_or(WireError::Invalid("unknown journal event kind"))?;
            journal_entries.push(pvr_obs::JournalEntry { t_us, kind, value: u64::decode(r)? });
        }

        self.adj_in = adj_in;
        self.loc_rib = loc_rib;
        self.adj_out = adj_out;
        self.chains_in = chains_in;
        self.local = local;
        self.mrai_buffer = mrai_buffer;
        self.mrai_armed = mrai_armed;
        self.jitter_rng = jitter_rng;
        self.damp_states = damp_states;
        self.parked = parked;
        self.damp_timer_armed = damp_timer_armed;
        self.sessions_down = sessions_down;
        self.pvr_seq = pvr_seq;
        self.first_security_reject = first_security_reject;
        self.stats = stats;
        self.obs_timeline = obs_timeline;
        self.journal =
            pvr_obs::EventJournal::restore(journal_capacity, journal_evicted, journal_entries);
        // The checkpointed run had already started: start-time
        // originations live in `local` now, and `on_start` will not run
        // again on the restored engine.
        self.originate_at_start.clear();
        Ok(())
    }
}

/// Every label the router ever journals. Checkpoint restore re-interns
/// decoded labels against this table (journal entries carry
/// `&'static str` kinds).
const JOURNAL_KINDS: [&str; 5] =
    ["best_change", "verify", "dampening_suppress", "attestation_reject", "origin_reject"];

impl Agent<BgpUpdate> for BgpRouter {
    fn on_start(&mut self, ctx: &mut Context<BgpUpdate>) {
        for (i, (delay, _)) in self.schedule.iter().enumerate() {
            ctx.set_timer(*delay, i as u64);
        }
        let now = ctx.now();
        let prefixes = std::mem::take(&mut self.originate_at_start);
        let mut pending = std::mem::take(&mut self.pending_scratch);
        for prefix in prefixes {
            self.start_originating(prefix);
            self.reselect_and_export(prefix, ReselectHint::Full, now, &mut pending);
        }
        self.flush(ctx, &mut pending);
        self.pending_scratch = pending;
    }

    fn on_message(&mut self, ctx: &mut Context<BgpUpdate>, from_node: NodeId, msg: BgpUpdate) {
        // Identify the sending AS from the node id.
        let from = match self.asn_of_node.get(&from_node) {
            Some(&a) => a,
            None => return, // not a configured neighbor: ignore
        };
        // Torn session: a BGP speaker cannot receive on a closed TCP
        // connection. In-flight updates sent before the teardown are
        // discarded like bytes in a dead socket; the flushed Adj-RIB-In
        // is rebuilt solely from the peer's re-announcement at session
        // re-establishment. Without this, a stale in-flight announce
        // could repopulate state the peer no longer tracks (its
        // Adj-RIB-Out was flushed too), and no withdraw would ever
        // correct it.
        if self.sessions_down.contains(&from) {
            return;
        }
        self.stats.updates_rx += 1;
        let now = ctx.now();
        let mut touched = std::mem::take(&mut self.touched_scratch);
        for prefix in msg.withdraws {
            if self.adj_in.remove(from, prefix) {
                self.chains_in.remove(&(from, prefix));
                self.penalize(from, prefix, now);
                touched.push(prefix);
            } else if self.parked.remove(&(from, prefix)).is_some() {
                // Withdrawing a parked (suppressed) announcement is
                // still a flap: the penalty stays topped up while the
                // route keeps oscillating behind the suppression.
                self.penalize(from, prefix, now);
            }
        }
        for sr in msg.announces {
            if let Some(policy) = self.dampening {
                let key = (from, sr.route.prefix);
                if let Some(state) = self.damp_states.get_mut(&key) {
                    if state.refresh(now, &policy) {
                        self.stats.dampening_suppressed += 1;
                        self.journal.record(now.as_micros(), "dampening_suppress", 1);
                        self.parked.insert(key, sr);
                        continue;
                    }
                }
            }
            if let Some(p) = self.process_announce(from, sr, now) {
                touched.push(p);
            }
        }
        let mut pending = std::mem::take(&mut self.pending_scratch);
        touched.sort();
        touched.dedup();
        // Every change in this message came from `from`'s session, so
        // the incremental decision path applies to each prefix.
        for &prefix in &touched {
            self.reselect_and_export(prefix, ReselectHint::Neighbor(from), now, &mut pending);
        }
        touched.clear();
        self.touched_scratch = touched;
        self.flush(ctx, &mut pending);
        self.pending_scratch = pending;
        self.arm_damp_timer_if_needed(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Context<BgpUpdate>, timer: u64) {
        if timer == MRAI_TIMER {
            self.flush_mrai_buffer(ctx);
            return;
        }
        if timer == DAMP_TIMER {
            self.damp_tick(ctx);
            return;
        }
        if timer == PVR_VERDICT_TIMER {
            // SMC verdicts due now land in this router's mailbox; the
            // drain is pure accounting (no routing action, no new
            // events), so verification latency extends convergence
            // wall-clock without perturbing route selection.
            if let Some(verifier) = &self.private_verifier {
                verifier.deliver(self.asn, ctx.now());
            }
            return;
        }
        let (_, event) = match self.schedule.get(timer as usize) {
            Some(e) => e.clone(),
            None => return,
        };
        let prefix = match event {
            LocalEvent::Announce(p) => {
                self.start_originating(p);
                p
            }
            LocalEvent::Withdraw(p) => {
                self.local.remove(&p);
                p
            }
        };
        let mut pending = std::mem::take(&mut self.pending_scratch);
        // A local origination/withdrawal changed the local candidate,
        // which the Neighbor hint cannot cover.
        self.reselect_and_export(prefix, ReselectHint::Full, ctx.now(), &mut pending);
        self.flush(ctx, &mut pending);
        self.pending_scratch = pending;
    }

    fn on_session(&mut self, ctx: &mut Context<BgpUpdate>, peer: NodeId, up: bool) {
        let Some(&asn) = self.asn_of_node.get(&peer) else { return };
        let now = ctx.now();
        let mut pending = std::mem::take(&mut self.pending_scratch);
        if up {
            self.session_up(asn, peer, now, &mut pending);
        } else {
            self.session_down(asn, peer, now, &mut pending);
        }
        self.flush(ctx, &mut pending);
        self.pending_scratch = pending;
        self.arm_damp_timer_if_needed(ctx);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}
