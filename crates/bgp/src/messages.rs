//! BGP session messages.
//!
//! Only UPDATE is modeled — OPEN/KEEPALIVE/NOTIFICATION manage TCP
//! sessions, which the simulator abstracts away (documented omission;
//! session churn is orthogonal to the paper's mechanisms).

use crate::sbgp::SignedRoute;
use crate::types::Prefix;
use pvr_crypto::encoding::{decode_seq, encode_seq, seq_encoded_len, Reader, Wire, WireError};
use pvr_netsim::Payload;
use std::collections::{HashMap, HashSet};

/// A BGP UPDATE: announcements (possibly attested) plus withdrawals.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct BgpUpdate {
    /// New/replacement routes.
    pub announces: Vec<SignedRoute>,
    /// Prefixes no longer reachable via the sender.
    pub withdraws: Vec<Prefix>,
}

impl BgpUpdate {
    /// True if the update carries nothing.
    pub fn is_empty(&self) -> bool {
        self.announces.is_empty() && self.withdraws.is_empty()
    }

    /// Merges `newer` into `self` with BGP replacement semantics: for
    /// each prefix the *latest* action wins — a new announcement
    /// supersedes a buffered announcement or withdrawal for the same
    /// prefix, and a withdrawal cancels a buffered announcement. Used by
    /// the MRAI buffer.
    ///
    /// Runs in O(n) expected over the two updates' entries (per-prefix
    /// hash maps; the pre-E14 `retain`/`contains` scans made a flush of
    /// n buffered prefixes O(n²)). Output order is deterministic and
    /// identical to the sequential one-at-a-time semantics: surviving
    /// buffered entries keep their order, then newer entries follow in
    /// arrival order (for duplicated announce prefixes, the position of
    /// the last occurrence; for duplicated withdraws, the first).
    pub fn merge(&mut self, newer: BgpUpdate) {
        if newer.is_empty() {
            return;
        }
        // Final per-prefix action of `newer`: announces supersede
        // withdraws for the same prefix; a later announce supersedes an
        // earlier one (keyed by last occurrence).
        let mut last_announce: HashMap<Prefix, usize> =
            HashMap::with_capacity(newer.announces.len());
        for (i, a) in newer.announces.iter().enumerate() {
            last_announce.insert(a.route.prefix, i);
        }
        let newer_withdraws: HashSet<Prefix> = newer.withdraws.iter().copied().collect();

        // Buffered announces survive unless `newer` touched the prefix.
        self.announces.retain(|sr| {
            !newer_withdraws.contains(&sr.route.prefix)
                && !last_announce.contains_key(&sr.route.prefix)
        });
        // Buffered withdraws survive unless re-announced.
        self.withdraws.retain(|p| !last_announce.contains_key(p));

        // Newer withdraws append in first-occurrence order, skipping
        // prefixes that are re-announced later in the same update or
        // already buffered as withdrawn.
        let mut present: HashSet<Prefix> = self.withdraws.iter().copied().collect();
        for w in newer.withdraws {
            if !last_announce.contains_key(&w) && present.insert(w) {
                self.withdraws.push(w);
            }
        }
        // Newer announces append in last-occurrence order.
        for (i, a) in newer.announces.into_iter().enumerate() {
            if last_announce.get(&a.route.prefix) == Some(&i) {
                self.announces.push(a);
            }
        }
    }
}

impl Wire for BgpUpdate {
    fn encode(&self, buf: &mut Vec<u8>) {
        encode_seq(&self.announces, buf);
        encode_seq(&self.withdraws, buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(BgpUpdate { announces: decode_seq(r)?, withdraws: decode_seq(r)? })
    }
    fn encoded_len(&self) -> usize {
        seq_encoded_len(&self.announces) + seq_encoded_len(&self.withdraws)
    }
}

impl Payload for BgpUpdate {
    /// Arithmetic size: every sent message is measured for the
    /// bytes-on-wire statistics, and the pre-E14 implementation
    /// allocated and encoded the entire update (attestation chains
    /// included) just to read off a length.
    fn wire_size(&self) -> usize {
        self.encoded_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route::Route;
    use crate::types::Asn;

    fn prefix() -> Prefix {
        Prefix::parse("10.0.0.0/8").unwrap()
    }

    #[test]
    fn empty_detection() {
        assert!(BgpUpdate::default().is_empty());
        let upd = BgpUpdate {
            announces: vec![SignedRoute::unsigned(Route::originate(prefix()))],
            withdraws: vec![],
        };
        assert!(!upd.is_empty());
        let upd = BgpUpdate { announces: vec![], withdraws: vec![prefix()] };
        assert!(!upd.is_empty());
    }

    #[test]
    fn wire_round_trip() {
        let upd = BgpUpdate {
            announces: vec![SignedRoute::unsigned(
                Route::originate(prefix()).propagated_by(Asn(7)),
            )],
            withdraws: vec![Prefix::parse("192.168.0.0/16").unwrap()],
        };
        let back: BgpUpdate = pvr_crypto::decode_exact(&upd.to_wire()).unwrap();
        assert_eq!(back, upd);
    }

    #[test]
    fn wire_size_reflects_content() {
        let empty = BgpUpdate::default();
        let full = BgpUpdate {
            announces: vec![SignedRoute::unsigned(Route::originate(prefix()))],
            withdraws: vec![prefix()],
        };
        assert!(full.wire_size() > empty.wire_size());
        assert_eq!(empty.wire_size(), empty.to_wire().len());
    }

    /// The arithmetic `wire_size` must agree with an actual encode for
    /// representative updates: empty, plain, attribute-rich, attested
    /// (multi-hop chain), and withdraw-heavy.
    #[test]
    fn wire_size_matches_encoding() {
        use crate::route::Community;
        use crate::sbgp::demo_chain;
        let (chain, _, _) = demo_chain(4, 512, b"wire-size test");
        let rich = Route::originate(prefix())
            .propagated_by(Asn(1))
            .propagated_by(Asn(2))
            .with_community(Community(65000, 1))
            .with_community(Community::NO_EXPORT);
        let cases = vec![
            BgpUpdate::default(),
            BgpUpdate {
                announces: vec![SignedRoute::unsigned(Route::originate(prefix()))],
                withdraws: vec![],
            },
            BgpUpdate { announces: vec![SignedRoute::unsigned(rich)], withdraws: vec![prefix()] },
            BgpUpdate { announces: vec![chain.clone(), chain], withdraws: vec![] },
            BgpUpdate {
                announces: vec![],
                withdraws: (0..64).map(|i| Prefix::new(i << 16, 24)).collect(),
            },
        ];
        for upd in cases {
            assert_eq!(upd.wire_size(), upd.to_wire().len(), "update: {upd:?}");
        }
    }

    /// Reference implementation of the pre-E14 sequential merge; the
    /// per-prefix-map rebuild must match it action for action.
    fn merge_reference(base: &mut BgpUpdate, newer: BgpUpdate) {
        for w in newer.withdraws {
            base.announces.retain(|sr| sr.route.prefix != w);
            if !base.withdraws.contains(&w) {
                base.withdraws.push(w);
            }
        }
        for a in newer.announces {
            base.withdraws.retain(|&p| p != a.route.prefix);
            base.announces.retain(|sr| sr.route.prefix != a.route.prefix);
            base.announces.push(a);
        }
    }

    fn announce_for(p: Prefix, via: u32) -> SignedRoute {
        SignedRoute::unsigned(Route::originate(p).propagated_by(Asn(via)))
    }

    #[test]
    fn merge_replacement_semantics() {
        let p = |i: u32| Prefix::new(i << 8, 24);
        let mut buffered = BgpUpdate {
            announces: vec![announce_for(p(1), 10), announce_for(p(2), 10)],
            withdraws: vec![p(3), p(4)],
        };
        let newer = BgpUpdate {
            // p2 replaced by a newer announce; p3 re-announced (cancels
            // the buffered withdraw); p5 announced twice (last wins);
            // p1 withdrawn (cancels the buffered announce); p4
            // withdrawn again (no duplicate).
            announces: vec![
                announce_for(p(2), 20),
                announce_for(p(3), 20),
                announce_for(p(5), 20),
                announce_for(p(5), 21),
            ],
            withdraws: vec![p(1), p(4), p(6)],
        };
        let mut expect = buffered.clone();
        merge_reference(&mut expect, newer.clone());
        buffered.merge(newer);
        assert_eq!(buffered, expect);
        let vias: Vec<u32> =
            buffered.announces.iter().map(|sr| sr.route.path.first_as().unwrap().0).collect();
        assert_eq!(vias, vec![20, 20, 21], "p2, p3, then the second p5 announce");
        assert_eq!(buffered.withdraws, vec![p(4), p(1), p(6)]);
    }

    /// MRAI-buffer scale case: ~1k prefixes of churn merged in a few
    /// batches must match the sequential reference exactly (and in
    /// order). This is the workload whose `retain`/`contains` scans
    /// were O(n²) per flush before the per-prefix-map rebuild.
    #[test]
    fn merge_matches_reference_at_1k_prefixes() {
        use pvr_crypto::drbg::HmacDrbg;
        let mut rng = HmacDrbg::new(b"merge 1k");
        let p = |i: u64| Prefix::new((i as u32) << 8, 24);
        let mut fast = BgpUpdate::default();
        let mut reference = BgpUpdate::default();
        for _batch in 0..8 {
            let mut newer = BgpUpdate::default();
            for _ in 0..256 {
                let prefix = p(rng.below(1000));
                if rng.chance(0.3) {
                    newer.withdraws.push(prefix);
                } else {
                    newer.announces.push(announce_for(prefix, 100 + rng.below(50) as u32));
                }
            }
            fast.merge(newer.clone());
            merge_reference(&mut reference, newer);
            assert_eq!(fast, reference);
        }
        // Sanity: the final buffer really is per-prefix deduplicated.
        let mut seen = std::collections::BTreeSet::new();
        for sr in &fast.announces {
            assert!(seen.insert(sr.route.prefix), "duplicate announce");
        }
        for w in &fast.withdraws {
            assert!(seen.insert(*w), "withdraw overlaps announce or duplicates");
        }
    }
}
