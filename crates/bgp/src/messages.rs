//! BGP session messages.
//!
//! Only UPDATE is modeled — OPEN/KEEPALIVE/NOTIFICATION manage TCP
//! sessions, which the simulator abstracts away (documented omission;
//! session churn is orthogonal to the paper's mechanisms).

use crate::sbgp::SignedRoute;
use crate::types::Prefix;
use pvr_crypto::encoding::{decode_seq, encode_seq, Reader, Wire, WireError};
use pvr_netsim::Payload;

/// A BGP UPDATE: announcements (possibly attested) plus withdrawals.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct BgpUpdate {
    /// New/replacement routes.
    pub announces: Vec<SignedRoute>,
    /// Prefixes no longer reachable via the sender.
    pub withdraws: Vec<Prefix>,
}

impl BgpUpdate {
    /// True if the update carries nothing.
    pub fn is_empty(&self) -> bool {
        self.announces.is_empty() && self.withdraws.is_empty()
    }

    /// Merges `newer` into `self` with BGP replacement semantics: for
    /// each prefix the *latest* action wins — a new announcement
    /// supersedes a buffered announcement or withdrawal for the same
    /// prefix, and a withdrawal cancels a buffered announcement. Used by
    /// the MRAI buffer.
    pub fn merge(&mut self, newer: BgpUpdate) {
        for w in newer.withdraws {
            self.announces.retain(|sr| sr.route.prefix != w);
            if !self.withdraws.contains(&w) {
                self.withdraws.push(w);
            }
        }
        for a in newer.announces {
            self.withdraws.retain(|&p| p != a.route.prefix);
            self.announces.retain(|sr| sr.route.prefix != a.route.prefix);
            self.announces.push(a);
        }
    }
}

impl Wire for BgpUpdate {
    fn encode(&self, buf: &mut Vec<u8>) {
        encode_seq(&self.announces, buf);
        encode_seq(&self.withdraws, buf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(BgpUpdate { announces: decode_seq(r)?, withdraws: decode_seq(r)? })
    }
}

impl Payload for BgpUpdate {
    fn wire_size(&self) -> usize {
        self.to_wire().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route::Route;
    use crate::types::Asn;

    fn prefix() -> Prefix {
        Prefix::parse("10.0.0.0/8").unwrap()
    }

    #[test]
    fn empty_detection() {
        assert!(BgpUpdate::default().is_empty());
        let upd = BgpUpdate {
            announces: vec![SignedRoute::unsigned(Route::originate(prefix()))],
            withdraws: vec![],
        };
        assert!(!upd.is_empty());
        let upd = BgpUpdate { announces: vec![], withdraws: vec![prefix()] };
        assert!(!upd.is_empty());
    }

    #[test]
    fn wire_round_trip() {
        let upd = BgpUpdate {
            announces: vec![SignedRoute::unsigned(
                Route::originate(prefix()).propagated_by(Asn(7)),
            )],
            withdraws: vec![Prefix::parse("192.168.0.0/16").unwrap()],
        };
        let back: BgpUpdate = pvr_crypto::decode_exact(&upd.to_wire()).unwrap();
        assert_eq!(back, upd);
    }

    #[test]
    fn wire_size_reflects_content() {
        let empty = BgpUpdate::default();
        let full = BgpUpdate {
            announces: vec![SignedRoute::unsigned(Route::originate(prefix()))],
            withdraws: vec![prefix()],
        };
        assert!(full.wire_size() > empty.wire_size());
        assert_eq!(empty.wire_size(), empty.to_wire().len());
    }
}
