//! Crash-consistent checkpoint/restore and copy-on-write RIB history.
//!
//! This is the durability layer ISSUE 10 adds on top of the
//! deterministic engines: a converging network can be checkpointed to
//! one self-contained file at an engine-invariant instant, a crashed
//! run can be restored from the last checkpoint and replayed, and the
//! recovered run is **byte-identical** to an uninterrupted one — same
//! RIB fingerprints, same [`pvr_netsim::SimStats`], same metrics
//! snapshot. Determinism is what makes cheap durability possible: the
//! file only has to carry the dynamic state (clock, calendars, DRBGs,
//! RIBs, counters); everything static regenerates from the embedded
//! [`Topology`] + [`InstantiateOptions`].
//!
//! ## Checkpoint instants
//!
//! A checkpoint is taken between [`converge`](BgpNetwork::converge)
//! slices bounded by [`RunLimits::until`]. A deadline stop drains every
//! event strictly before the deadline on both engines — the same
//! drained-instant condition the PR 9 barrier hook relies on — so the
//! instant is engine-invariant: serial and sharded runs checkpoint
//! identical logical states (modulo the documented per-shard
//! `verify_cache` scope).
//!
//! ## File format (`PVRCKPT1`, version 1)
//!
//! The container reuses `pvr-store`'s framing — `magic ‖ version` then
//! tagged sections, each `tag u8 ‖ len u64 ‖ payload ‖ SHA-256(payload)`
//! (domain-separated), so any flipped bit names the damaged section:
//!
//! | tag | section   | payload                                            |
//! |-----|-----------|----------------------------------------------------|
//! | 1   | `META`    | engine kind, shard count, options, topology, origin table |
//! | 2   | `ENGINE`  | engine `save_state` bytes (clock, calendars, DRBGs) |
//! | 3   | `ROUTERS` | per-AS dynamic router state (RIBs, timers, counters) |
//! | 4   | `CACHE`   | verify-cache verdict memo(s)                        |
//! | 5   | `STORE`   | COW RIB snapshot history (`pvr-store` dump)         |
//!
//! Restore decodes and validates *everything* before constructing the
//! network, and the network is built fresh — a corrupt file yields a
//! typed [`CheckpointError`] and no partially-mutated state. Writes go
//! through a `.tmp` + rename so a crash mid-checkpoint never leaves a
//! torn file at the target path.
//!
//! ## What refuses to checkpoint
//!
//! * Private-verification mode — the GMW verifier is a barrier-hook
//!   closure with transcript state; [`CheckpointError::Refused`].
//! * Routers with active [`crate::router::Malice`] — malice is
//!   installed imperatively and is not reconstructible from the
//!   topology declaration.
//! * Engine trace recording (refused by the engine itself, surfacing
//!   as [`CheckpointError::State`]).
//!
//! ## RIB history and time travel
//!
//! Orthogonally to full checkpoints, [`BgpNetwork::snapshot_rib`]
//! captures the network-wide Loc-RIB into a content-addressed
//! copy-on-write trie ([`pvr_store::PMap`]): snapshot k+1 shares every
//! unchanged subtree with snapshot k, so a history of hundreds of
//! snapshots costs memory proportional to churn, not to RIB size.
//! [`BgpNetwork::route_at`] answers "what did AS x believe about
//! prefix p at time t" against that history, and the attack layer's
//! forensic bisect binary-searches it for the first poisoned instant.

use crate::decision::Candidate;
use crate::router::BgpRouter;
use crate::sbgp::VerifyCache;
use crate::topology::{BgpNetwork, InstantiateOptions, OriginTable, ShardedBgpNetwork, Topology};
use crate::types::{Asn, Prefix};
use pvr_crypto::encoding::{Reader, Wire, WireError};
use pvr_crypto::sha256::Digest;
use pvr_netsim::{RunLimits, SimDuration, SimTime, StateError, StopReason};
use pvr_store::{
    dump_snapshots, load_snapshots, read_container, require_section, write_header, write_section,
    PMap, StoreError,
};
use std::path::Path;
use std::sync::Arc;

/// Checkpoint file magic.
pub const CKPT_MAGIC: [u8; 8] = *b"PVRCKPT1";
/// Current checkpoint format version.
pub const CKPT_VERSION: u32 = 1;

/// Section tags (see the module docs for the layout).
const SEC_META: u8 = 1;
const SEC_ENGINE: u8 = 2;
const SEC_ROUTERS: u8 = 3;
const SEC_CACHE: u8 = 4;
const SEC_STORE: u8 = 5;

/// META engine-kind byte for the serial engine.
const KIND_SERIAL: u8 = 0;
/// META engine-kind byte for the sharded engine.
const KIND_SHARDED: u8 = 1;

/// Why a checkpoint could not be written or restored.
#[derive(Debug)]
pub enum CheckpointError {
    /// The network's configuration is not checkpointable (private
    /// verification mode, active malice). The message says which.
    Refused(&'static str),
    /// Filesystem failure writing or reading the checkpoint.
    Io(std::io::Error),
    /// Container-level corruption (bad magic, damaged section, store
    /// dump failure). [`StoreError::SectionHashMismatch`] names the
    /// damaged section by tag.
    Store(StoreError),
    /// The engine refused to save/load its state, or the engine bytes
    /// don't fit this network (node/shard-count mismatch).
    State(StateError),
    /// A payload failed to decode (truncation, bad discriminant).
    Wire(WireError),
    /// A shape violation the wire layer cannot see: router list
    /// mismatch, non-ascending snapshot times, cache-count drift.
    Corrupt(&'static str),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Refused(why) => write!(f, "checkpoint refused: {why}"),
            CheckpointError::Io(e) => write!(f, "checkpoint I/O failure: {e}"),
            CheckpointError::Store(e) => write!(f, "checkpoint container corrupt: {e}"),
            CheckpointError::State(e) => write!(f, "engine state: {e}"),
            CheckpointError::Wire(e) => write!(f, "checkpoint payload malformed: {e}"),
            CheckpointError::Corrupt(what) => write!(f, "checkpoint corrupt: {what}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> CheckpointError {
        CheckpointError::Io(e)
    }
}
impl From<StoreError> for CheckpointError {
    fn from(e: StoreError) -> CheckpointError {
        CheckpointError::Store(e)
    }
}
impl From<StateError> for CheckpointError {
    fn from(e: StateError) -> CheckpointError {
        CheckpointError::State(e)
    }
}
impl From<WireError> for CheckpointError {
    fn from(e: WireError) -> CheckpointError {
        CheckpointError::Wire(e)
    }
}

/// The engine-specific sliver of the checkpoint surface. Everything
/// else — snapshot capture, file assembly, restore validation, the
/// converge-in-slices drivers — is written once over this trait, so
/// the serial and sharded paths cannot drift (the PR's dedup satellite:
/// the engine pair shares free helpers instead of mirrored methods).
trait CheckpointHost: Sized {
    /// META engine-kind byte.
    const ENGINE_KIND: u8;
    /// Worker calendars (1 for the serial engine).
    fn shard_count_of(&self) -> u64;
    /// All ASes, ascending.
    fn ases_vec(&self) -> Vec<Asn>;
    /// Read access to one router.
    fn router_of(&self, asn: Asn) -> &BgpRouter;
    /// Write access to one router.
    fn router_of_mut(&mut self, asn: Asn) -> &mut BgpRouter;
    /// The verify cache(s): one network-wide (serial) or one per shard.
    fn caches_of(&self) -> Vec<Arc<VerifyCache>>;
    /// Whether the GMW private verifier is installed.
    fn private_verification_active(&self) -> bool;
    fn save_engine(&self) -> Result<Vec<u8>, StateError>;
    fn load_engine(&mut self, bytes: &[u8]) -> Result<(), StateError>;
    fn history_of(&self) -> &[(SimTime, PMap)];
    fn history_of_mut(&mut self) -> &mut Vec<(SimTime, PMap)>;
    fn now_of(&self) -> SimTime;
    fn options_of(&self) -> InstantiateOptions;
    fn topology_of(&self) -> &Topology;
    fn run_engine(&mut self, limits: RunLimits) -> StopReason;
    /// Re-instantiates a fresh network from restored META parts.
    fn reinstantiate(
        topology: &Topology,
        options: InstantiateOptions,
        shards: u64,
    ) -> Result<Self, CheckpointError>;
}

impl CheckpointHost for BgpNetwork {
    const ENGINE_KIND: u8 = KIND_SERIAL;
    fn shard_count_of(&self) -> u64 {
        1
    }
    fn ases_vec(&self) -> Vec<Asn> {
        self.ases().collect()
    }
    fn router_of(&self, asn: Asn) -> &BgpRouter {
        self.router(asn)
    }
    fn router_of_mut(&mut self, asn: Asn) -> &mut BgpRouter {
        self.router_mut(asn)
    }
    fn caches_of(&self) -> Vec<Arc<VerifyCache>> {
        self.verify_cache().cloned().into_iter().collect()
    }
    fn private_verification_active(&self) -> bool {
        self.private_verifier().is_some()
    }
    fn save_engine(&self) -> Result<Vec<u8>, StateError> {
        self.sim.save_state()
    }
    fn load_engine(&mut self, bytes: &[u8]) -> Result<(), StateError> {
        self.sim.load_state(bytes)
    }
    fn history_of(&self) -> &[(SimTime, PMap)] {
        &self.rib_history
    }
    fn history_of_mut(&mut self) -> &mut Vec<(SimTime, PMap)> {
        &mut self.rib_history
    }
    fn now_of(&self) -> SimTime {
        self.sim.now()
    }
    fn options_of(&self) -> InstantiateOptions {
        self.options
    }
    fn topology_of(&self) -> &Topology {
        &self.topology
    }
    fn run_engine(&mut self, limits: RunLimits) -> StopReason {
        self.converge(limits)
    }
    fn reinstantiate(
        topology: &Topology,
        options: InstantiateOptions,
        shards: u64,
    ) -> Result<BgpNetwork, CheckpointError> {
        if shards != 1 {
            return Err(CheckpointError::State(StateError::ShardCountMismatch {
                expected: shards as usize,
                found: 1,
            }));
        }
        Ok(topology.instantiate(options))
    }
}

impl CheckpointHost for ShardedBgpNetwork {
    const ENGINE_KIND: u8 = KIND_SHARDED;
    fn shard_count_of(&self) -> u64 {
        self.sim.shard_count() as u64
    }
    fn ases_vec(&self) -> Vec<Asn> {
        self.ases().collect()
    }
    fn router_of(&self, asn: Asn) -> &BgpRouter {
        self.router(asn)
    }
    fn router_of_mut(&mut self, asn: Asn) -> &mut BgpRouter {
        self.router_mut(asn)
    }
    fn caches_of(&self) -> Vec<Arc<VerifyCache>> {
        self.verify_caches().to_vec()
    }
    fn private_verification_active(&self) -> bool {
        self.private_verifier().is_some()
    }
    fn save_engine(&self) -> Result<Vec<u8>, StateError> {
        self.sim.save_state()
    }
    fn load_engine(&mut self, bytes: &[u8]) -> Result<(), StateError> {
        self.sim.load_state(bytes)
    }
    fn history_of(&self) -> &[(SimTime, PMap)] {
        &self.rib_history
    }
    fn history_of_mut(&mut self) -> &mut Vec<(SimTime, PMap)> {
        &mut self.rib_history
    }
    fn now_of(&self) -> SimTime {
        self.sim.now()
    }
    fn options_of(&self) -> InstantiateOptions {
        self.options
    }
    fn topology_of(&self) -> &Topology {
        &self.topology
    }
    fn run_engine(&mut self, limits: RunLimits) -> StopReason {
        self.converge(limits)
    }
    fn reinstantiate(
        topology: &Topology,
        options: InstantiateOptions,
        shards: u64,
    ) -> Result<ShardedBgpNetwork, CheckpointError> {
        Ok(topology.instantiate_sharded(options, shards as usize))
    }
}

// ---------------------------------------------------------------------
// COW RIB snapshots.

/// The store key for one Loc-RIB cell: `asn` (4 bytes BE) ‖ prefix
/// wire. Big-endian ASN keeps the trie's nibble paths grouped per AS,
/// which is what makes `for_each_under(asn)` and per-AS diffs cheap.
fn rib_key(asn: Asn, prefix: Prefix) -> Vec<u8> {
    let mut key = Vec::with_capacity(4 + prefix.encoded_len());
    key.extend_from_slice(&asn.0.to_be_bytes());
    prefix.encode(&mut key);
    key
}

/// Captures the network-wide Loc-RIB as a COW snapshot layered on
/// `base`: cells equal to `base`'s are *not* re-inserted (the subtree
/// stays shared), vanished cells are removed. Starting from the prior
/// snapshot is what turns a long history into O(churn) memory.
fn capture_rib<T: CheckpointHost>(net: &T, base: &PMap) -> PMap {
    let mut current: std::collections::BTreeMap<Vec<u8>, Vec<u8>> =
        std::collections::BTreeMap::new();
    for asn in net.ases_vec() {
        let router = net.router_of(asn);
        for prefix in router.selected_prefixes() {
            let cand = router.best_route(prefix).expect("selected prefix has a best route");
            current.insert(rib_key(asn, prefix), cand.to_wire());
        }
    }
    let mut snap = base.clone();
    // Remove cells that existed in the base but are gone now.
    let mut stale: Vec<Vec<u8>> = Vec::new();
    base.for_each(|key, _| {
        if !current.contains_key(key) {
            stale.push(key.to_vec());
        }
    });
    for key in stale {
        snap = snap.remove(&key);
    }
    for (key, value) in current {
        if snap.get(&key) != Some(value.as_slice()) {
            snap = snap.insert(&key, &value);
        }
    }
    snap
}

fn snapshot_rib_impl<T: CheckpointHost>(net: &mut T) -> Digest {
    let now = net.now_of();
    let base = match net.history_of().last() {
        // Re-capturing at the same instant replaces the last snapshot
        // (converge slices can land on the same drained time twice).
        Some((t, map)) if *t == now => {
            let base = map.clone();
            let snap = capture_rib(net, &base);
            let hash = snap.root_hash();
            let history = net.history_of_mut();
            history.pop();
            history.push((now, snap));
            return hash;
        }
        Some((_, map)) => map.clone(),
        None => PMap::new(),
    };
    let snap = capture_rib(net, &base);
    let hash = snap.root_hash();
    net.history_of_mut().push((now, snap));
    hash
}

fn route_at_impl<T: CheckpointHost>(
    net: &T,
    asn: Asn,
    prefix: Prefix,
    t: SimTime,
) -> Option<Candidate> {
    let (_, snap) = net.history_of().iter().rev().find(|(at, _)| *at <= t)?;
    let bytes = snap.get(&rib_key(asn, prefix))?;
    pvr_crypto::decode_exact::<Candidate>(bytes).ok()
}

// ---------------------------------------------------------------------
// Checkpoint assembly.

fn meta_bytes<T: CheckpointHost>(net: &T) -> Result<Vec<u8>, CheckpointError> {
    let mut buf = Vec::new();
    buf.push(T::ENGINE_KIND);
    net.shard_count_of().encode(&mut buf);
    net.options_of().encode(&mut buf);
    net.topology_of().encode(&mut buf);
    // The origin table is installed imperatively, network-wide; embed
    // it so restore keeps rejecting unauthorized origins. Per-router
    // divergence would be silently collapsed, so it refuses instead.
    let ases = net.ases_vec();
    let first = ases.first().and_then(|&a| net.router_of(a).origin_table_ref());
    for &asn in &ases {
        let table = net.router_of(asn).origin_table_ref();
        let same = match (first, table) {
            (None, None) => true,
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        };
        if !same {
            return Err(CheckpointError::Refused(
                "routers disagree on the origin table; install one shared table",
            ));
        }
    }
    match first {
        None => false.encode(&mut buf),
        Some(table) => {
            true.encode(&mut buf);
            table.as_ref().encode(&mut buf);
        }
    }
    Ok(buf)
}

fn routers_bytes<T: CheckpointHost>(net: &T) -> Vec<u8> {
    let ases = net.ases_vec();
    let mut buf = Vec::new();
    (ases.len() as u32).encode(&mut buf);
    for asn in ases {
        asn.encode(&mut buf);
        net.router_of(asn).save_dynamic(&mut buf);
    }
    buf
}

fn caches_bytes<T: CheckpointHost>(net: &T) -> Vec<u8> {
    let caches = net.caches_of();
    let mut buf = Vec::new();
    (caches.len() as u32).encode(&mut buf);
    for cache in caches {
        let (entries, calls, hits) = cache.export_state();
        calls.encode(&mut buf);
        hits.encode(&mut buf);
        (entries.len() as u32).encode(&mut buf);
        for (signer, digest, verdict) in entries {
            signer.encode(&mut buf);
            buf.extend_from_slice(&digest);
            verdict.encode(&mut buf);
        }
    }
    buf
}

fn store_bytes<T: CheckpointHost>(net: &T) -> Vec<u8> {
    let labeled: Vec<(u64, &PMap)> =
        net.history_of().iter().map(|(t, map)| (t.as_micros(), map)).collect();
    dump_snapshots(&labeled)
}

/// Serializes the whole network into checkpoint-container bytes. The
/// refusal checks run first so a refused call does nothing at all.
fn checkpoint_bytes<T: CheckpointHost>(net: &mut T) -> Result<Vec<u8>, CheckpointError> {
    if net.private_verification_active() {
        return Err(CheckpointError::Refused(
            "private-verification mode installs a barrier hook with transcript state",
        ));
    }
    for asn in net.ases_vec() {
        if net.router_of(asn).malice_active() {
            return Err(CheckpointError::Refused(
                "a router has active malice, which is not reconstructible from the topology",
            ));
        }
    }
    // Fold the checkpoint instant into the RIB history so the STORE
    // section always covers "now" and `route_at` works right after
    // restore.
    snapshot_rib_impl(net);
    let engine = net.save_engine()?;
    let meta = meta_bytes(net)?;
    let routers = routers_bytes(net);
    let caches = caches_bytes(net);
    let store = store_bytes(net);

    let mut out = Vec::new();
    write_header(&CKPT_MAGIC, CKPT_VERSION, &mut out);
    write_section(SEC_META, &meta, &mut out);
    write_section(SEC_ENGINE, &engine, &mut out);
    write_section(SEC_ROUTERS, &routers, &mut out);
    write_section(SEC_CACHE, &caches, &mut out);
    write_section(SEC_STORE, &store, &mut out);
    Ok(out)
}

/// Writes `bytes` crash-consistently: the payload lands at `<path>.tmp`
/// first and is renamed into place, so a crash mid-write never leaves a
/// torn file where a checkpoint is expected.
fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    std::fs::write(&tmp, bytes)?;
    std::fs::rename(&tmp, path)
}

// ---------------------------------------------------------------------
// Restore.

/// Decoded META section.
struct Meta {
    engine_kind: u8,
    shards: u64,
    options: InstantiateOptions,
    topology: Topology,
    origin_table: Option<OriginTable>,
}

fn decode_meta(payload: &[u8]) -> Result<Meta, CheckpointError> {
    let mut r = Reader::new(payload);
    let engine_kind = r.take(1)?[0];
    if engine_kind != KIND_SERIAL && engine_kind != KIND_SHARDED {
        return Err(CheckpointError::Corrupt("unknown engine kind"));
    }
    let shards = u64::decode(&mut r)?;
    if shards == 0 || shards > 4096 {
        return Err(CheckpointError::Corrupt("implausible shard count"));
    }
    let options = InstantiateOptions::decode(&mut r)?;
    let topology = Topology::decode(&mut r)?;
    let origin_table =
        if bool::decode(&mut r)? { Some(OriginTable::decode(&mut r)?) } else { None };
    if r.remaining() != 0 {
        return Err(CheckpointError::Wire(WireError::TrailingBytes(r.remaining())));
    }
    Ok(Meta { engine_kind, shards, options, topology, origin_table })
}

/// Restores a network of type `T` from checkpoint bytes. Everything is
/// parsed and validated against the freshly instantiated network before
/// any state is applied; on any error the partially-built network is
/// dropped and the caller keeps nothing.
fn restore_bytes<T: CheckpointHost>(bytes: &[u8]) -> Result<T, CheckpointError> {
    let sections = read_container(bytes, &CKPT_MAGIC, CKPT_VERSION)?;
    let meta = decode_meta(require_section(&sections, SEC_META)?)?;
    if meta.engine_kind != T::ENGINE_KIND {
        return Err(CheckpointError::State(StateError::EngineMismatch));
    }
    if meta.options.private_verification {
        return Err(CheckpointError::Refused(
            "checkpoint claims private-verification mode, which cannot be checkpointed",
        ));
    }
    let engine = require_section(&sections, SEC_ENGINE)?;
    let routers = require_section(&sections, SEC_ROUTERS)?;
    let caches = require_section(&sections, SEC_CACHE)?;
    let store = require_section(&sections, SEC_STORE)?;

    // Decode the store dump up front (pure validation, no network).
    let snapshots = load_snapshots(store)?;
    let mut history: Vec<(SimTime, PMap)> = Vec::with_capacity(snapshots.len());
    for (label, map) in snapshots {
        let t = SimTime(label);
        if let Some((prev, _)) = history.last() {
            if *prev >= t {
                return Err(CheckpointError::Corrupt("RIB snapshot times not ascending"));
            }
        }
        history.push((t, map));
    }

    let mut net = T::reinstantiate(&meta.topology, meta.options, meta.shards)?;
    net.load_engine(engine)?;

    // Router states: the list must cover exactly the instantiated ASes,
    // in ascending order.
    let ases = net.ases_vec();
    let mut r = Reader::new(routers);
    let count = u32::decode(&mut r)? as usize;
    if count != ases.len() {
        return Err(CheckpointError::Corrupt("router count does not match the topology"));
    }
    for &asn in &ases {
        let saved = Asn::decode(&mut r)?;
        if saved != asn {
            return Err(CheckpointError::Corrupt("router list does not match the topology"));
        }
        net.router_of_mut(asn).load_dynamic(&mut r)?;
    }
    if r.remaining() != 0 {
        return Err(CheckpointError::Wire(WireError::TrailingBytes(r.remaining())));
    }

    // Verify caches: count is a property of the engine shape, so it
    // must agree with what instantiation produced.
    let targets = net.caches_of();
    let mut r = Reader::new(caches);
    let count = u32::decode(&mut r)? as usize;
    if count != targets.len() {
        return Err(CheckpointError::Corrupt("verify-cache count does not match the engine"));
    }
    for cache in &targets {
        let calls = u64::decode(&mut r)?;
        let hits = u64::decode(&mut r)?;
        let mut entries = Vec::new();
        for _ in 0..u32::decode(&mut r)? {
            let signer = Asn::decode(&mut r)?;
            let digest = r.take_array::<32>()?;
            entries.push((signer, digest, bool::decode(&mut r)?));
        }
        cache.load_state(entries, calls, hits);
    }
    if r.remaining() != 0 {
        return Err(CheckpointError::Wire(WireError::TrailingBytes(r.remaining())));
    }

    if let Some(table) = meta.origin_table {
        install_table(&mut net, Arc::new(table));
    }
    *net.history_of_mut() = history;
    Ok(net)
}

fn install_table<T: CheckpointHost>(net: &mut T, table: Arc<OriginTable>) {
    for asn in net.ases_vec() {
        net.router_of_mut(asn).set_origin_table(Arc::clone(&table));
    }
}

// ---------------------------------------------------------------------
// Converge-in-slices drivers.

/// Runs to quiescence (or `limits`) while capturing a COW RIB snapshot
/// every `every` of simulated time. Slice boundaries are deadline
/// stops, which both engines drain identically — the snapshots land at
/// engine-invariant instants.
fn converge_with_snapshots_impl<T: CheckpointHost>(
    net: &mut T,
    limits: RunLimits,
    every: SimDuration,
) -> StopReason {
    let every_us = every.as_micros().max(1);
    // The engine clock stays at the last processed event on a deadline
    // stop, so the boundary advances explicitly — never recomputed from
    // `now`, which would re-run an empty slice forever.
    let mut next = SimTime(net.now_of().as_micros() / every_us * every_us + every_us);
    loop {
        let slice_deadline = match limits.deadline {
            Some(d) if d < next => d,
            _ => next,
        };
        let slice = RunLimits { deadline: Some(slice_deadline), max_events: limits.max_events };
        let reason = net.run_engine(slice);
        snapshot_rib_impl(net);
        match reason {
            StopReason::Deadline => {
                if limits.deadline == Some(slice_deadline) {
                    return StopReason::Deadline;
                }
                next = SimTime(slice_deadline.as_micros() + every_us);
            }
            other => return other,
        }
    }
}

/// Like [`converge_with_snapshots_impl`], but also writes a full
/// checkpoint file at every boundary: `dir/ckpt-<t_ms>.pvr`. Returns
/// the stop reason and the path of the last checkpoint written (every
/// slice writes one, so there is always a last path).
fn converge_checkpointed_impl<T: CheckpointHost>(
    net: &mut T,
    limits: RunLimits,
    every: SimDuration,
    dir: &Path,
) -> Result<(StopReason, std::path::PathBuf), CheckpointError> {
    std::fs::create_dir_all(dir)?;
    let every_us = every.as_micros().max(1);
    let mut next = SimTime(net.now_of().as_micros() / every_us * every_us + every_us);
    loop {
        let slice_deadline = match limits.deadline {
            Some(d) if d < next => d,
            _ => next,
        };
        let slice = RunLimits { deadline: Some(slice_deadline), max_events: limits.max_events };
        let reason = net.run_engine(slice);
        // Files are named by the slice boundary (an engine-invariant
        // drained instant), not by the clock, which lags it.
        let path = dir.join(format!("ckpt-{:08}.pvr", slice_deadline.as_micros() / 1000));
        let bytes = checkpoint_bytes(net)?;
        write_atomic(&path, &bytes)?;
        match reason {
            StopReason::Deadline => {
                if limits.deadline == Some(slice_deadline) {
                    return Ok((StopReason::Deadline, path));
                }
                next = SimTime(slice_deadline.as_micros() + every_us);
            }
            other => return Ok((other, path)),
        }
    }
}

// ---------------------------------------------------------------------
// Public surface (delegating inherent methods on both engines).

macro_rules! checkpoint_api {
    ($net:ty) => {
        impl $net {
            /// Captures the network-wide Loc-RIB into the COW snapshot
            /// history at the current sim time and returns the
            /// snapshot's content hash (the RIB fingerprint).
            pub fn snapshot_rib(&mut self) -> Digest {
                snapshot_rib_impl(self)
            }

            /// The content hash of the current network-wide Loc-RIB —
            /// byte-identical across engines and shard counts for the
            /// same logical state.
            pub fn rib_fingerprint(&self) -> Digest {
                let base = match self.history_of().last() {
                    Some((_, map)) => map.clone(),
                    None => PMap::new(),
                };
                capture_rib(self, &base).root_hash()
            }

            /// What `asn` believed about `prefix` at sim time `t`,
            /// answered from the retained snapshot history (the latest
            /// snapshot at or before `t`). `None` when no snapshot
            /// covers `t` or the router had no route installed.
            pub fn route_at(&self, asn: Asn, prefix: Prefix, t: SimTime) -> Option<Candidate> {
                route_at_impl(self, asn, prefix, t)
            }

            /// Capture times of the retained RIB snapshots, ascending.
            pub fn snapshot_times(&self) -> Vec<SimTime> {
                self.history_of().iter().map(|&(t, _)| t).collect()
            }

            /// Writes a self-contained checkpoint of the whole network
            /// to `path` (crash-consistently: `.tmp` + rename) and
            /// returns the file size in bytes. See the module docs for
            /// the format and the refusal conditions.
            pub fn checkpoint(&mut self, path: &Path) -> Result<u64, CheckpointError> {
                let bytes = checkpoint_bytes(self)?;
                write_atomic(path, &bytes)?;
                Ok(bytes.len() as u64)
            }

            /// Restores a network from a checkpoint written by
            /// [`checkpoint`](Self::checkpoint). Fully validating: a
            /// corrupt or mismatched file yields a typed error and no
            /// network. The result picks up exactly where the saved
            /// run stopped — replaying it is byte-identical to never
            /// having crashed.
            pub fn restore(path: &Path) -> Result<Self, CheckpointError> {
                let bytes = std::fs::read(path)?;
                restore_bytes(&bytes)
            }

            /// Runs to quiescence (or `limits`) capturing a COW RIB
            /// snapshot every `every` of sim time, at engine-invariant
            /// drained instants.
            pub fn converge_with_snapshots(
                &mut self,
                limits: RunLimits,
                every: SimDuration,
            ) -> StopReason {
                converge_with_snapshots_impl(self, limits, every)
            }

            /// Runs to quiescence (or `limits`) writing a checkpoint
            /// file into `dir` every `every` of sim time
            /// (`ckpt-<t_ms>.pvr`). Returns the stop reason and the
            /// last checkpoint path.
            pub fn converge_checkpointed(
                &mut self,
                limits: RunLimits,
                every: SimDuration,
                dir: &Path,
            ) -> Result<(StopReason, std::path::PathBuf), CheckpointError> {
                converge_checkpointed_impl(self, limits, every, dir)
            }
        }
    };
}

checkpoint_api!(BgpNetwork);
checkpoint_api!(ShardedBgpNetwork);
