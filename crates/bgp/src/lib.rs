//! # pvr-bgp — the interdomain routing substrate
//!
//! A from-scratch "BGP-lite" sufficient for everything the PVR paper
//! assumes about the routing system it secures:
//!
//! * [`types`] / [`path`] / [`route`] — prefixes, AS paths, attributes;
//! * [`rib`] — Adj-RIB-In / Loc-RIB / Adj-RIB-Out (the paper's "set of
//!   input routes" and "output" made explicit, §2);
//! * [`decision`] — the standard ranking pipeline §2.1 decomposes into
//!   operators;
//! * [`policy`] — Gao–Rexford relationships plus the paper's partial
//!   transit example ("routes from, e.g., European peers");
//! * [`sbgp`] — S-BGP-style route attestations \[13\], the substrate for
//!   PVR's condition 1 ("sign all the routing announcements", §3.2);
//! * [`private`] — the paper's tentpole run for real: batched GMW
//!   verification of route selections during convergence, flushed at
//!   engine barriers and priced by the SMC cost model;
//! * [`router`] — the speaker as a simulator agent;
//! * [`dampening`] — RFC 2439-style route-flap dampening state;
//! * [`topology`] — Figure 1 scenario and Internet-like generators;
//! * [`checkpoint`] — crash-consistent checkpoint/restore and the
//!   copy-on-write RIB snapshot history (time travel, forensics);
//! * [`partition`] — deterministic AS → shard assignment for the
//!   sharded engine;
//! * [`workload`] — flaps, bursts, churn.
//!
//! ## Implemented / omitted (smoltcp-style expectations)
//!
//! Implemented: UPDATE processing, implicit and explicit withdraw, loop
//! rejection, LOCAL_PREF/AS-path/origin/MED/tiebreak ranking,
//! valley-free export, partial transit, NO_EXPORT, attestation chains,
//! scheduled workloads, MRAI batching with jittered timers, session
//! up/down semantics (teardown flushes Adj-RIBs and floods withdraws,
//! recovery re-announces), and route-flap dampening.
//!
//! Omitted (orthogonal to the paper): the full FSM's TCP-level states,
//! iBGP, route reflection, aggregation/AS_SET, IPv6 (IPv4 prefixes
//! only).

pub mod checkpoint;
pub mod dampening;
pub mod decision;
pub mod messages;
pub mod partition;
pub mod path;
pub mod policy;
pub mod private;
pub mod rib;
pub mod route;
pub mod router;
pub mod sbgp;
pub mod sorted;
pub mod topology;
pub mod types;
pub mod workload;

pub use checkpoint::{CheckpointError, CKPT_MAGIC, CKPT_VERSION};
pub use dampening::{DampState, DampeningPolicy};
pub use decision::{best, prefer, Candidate};
pub use messages::BgpUpdate;
pub use partition::{cut_edges, partition_by_degree};
pub use path::AsPath;
pub use policy::{PolicyConfig, Role};
pub use private::{PrivateRequest, PrivateVerifier, SmcBatchStats, PVR_VERDICT_TIMER};
pub use rib::{AdjRibIn, AdjRibOut, LocRib};
pub use route::{Community, Origin, Route};
pub use router::{BgpRouter, LocalEvent, Malice, RouterStats, SecurityMode};
pub use sbgp::{demo_chain, Attestation, AttestationChain, SbgpError, SignedRoute, VerifyCache};
pub use topology::{
    figure1, internet_like, BgpNetwork, Edge, Figure1Cast, InstantiateOptions, InternetParams,
    OriginTable, ShardedBgpNetwork, Topology,
};
pub use types::{Asn, Prefix};
