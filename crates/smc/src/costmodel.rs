//! Deployment cost models for the strawmen, calibrated to the paper.
//!
//! §3.1: "even with only five players, state-of-the-art SMC systems take
//! about 15 seconds of computation time for a simple task like voting
//! \[2\], and such a task would have to be performed for every single BGP
//! update." The local GMW execution in [`crate::gmw`] counts rounds,
//! triples, and bits; this module turns those counts into modeled
//! wall-clock for a WAN deployment, with constants chosen so the
//! 5-player majority vote lands on the published ≈15 s figure.
//!
//! A second model covers the generic ZKP strawman (\[10\]): per-gate
//! commitment costs in a ZKBoo-style transformation, to exhibit the
//! "scaling concerns as the complexity of policy increases".

use crate::circuit::Circuit;
use crate::gmw::GmwStats;

/// WAN cost model for an interactive MPC.
#[derive(Clone, Copy, Debug)]
pub struct SmcCostModel {
    /// Round-trip time between parties (seconds).
    pub rtt: f64,
    /// Cost of one 1-out-of-2 OT including amortized public-key work
    /// (seconds) — triples are assumed OT-generated online, as
    /// FairplayMP-era systems did.
    pub per_ot: f64,
    /// Per-bit transmission cost (seconds) — bandwidth term.
    pub per_bit: f64,
    /// Fixed session setup (key exchange, circuit distribution).
    pub setup: f64,
}

impl SmcCostModel {
    /// Constants calibrated so that [`crate::circuit::majority_circuit`]
    /// with 5 parties models ≈15 s, matching the FairplayMP measurement
    /// the paper cites. The individual constants are ordinary 2008-era
    /// WAN/crypto figures: 100 ms RTT, 6 ms per OT (amortized public-key
    /// work plus transfer), 1 µs/bit, 2 s setup.
    pub fn fairplay_calibrated() -> SmcCostModel {
        SmcCostModel { rtt: 0.100, per_ot: 0.006, per_bit: 1e-6, setup: 2.0 }
    }

    /// Modeled wall-clock for an execution with the given counters.
    pub fn estimate_seconds(&self, stats: &GmwStats) -> f64 {
        self.setup
            + stats.rounds as f64 * self.rtt
            + stats.equivalent_ots as f64 * self.per_ot
            + stats.bits_broadcast as f64 * self.per_bit
    }
}

/// Cost model for the generic zero-knowledge-proof strawman.
#[derive(Clone, Copy, Debug)]
pub struct ZkpCostModel {
    /// Prover time per gate (seconds) — commitment + PRF work, ZKBoo-ish.
    pub prover_per_gate: f64,
    /// Verifier time per gate (seconds).
    pub verifier_per_gate: f64,
    /// Proof bytes per gate.
    pub bytes_per_gate: f64,
    /// Fixed overhead (seconds).
    pub setup: f64,
}

impl ZkpCostModel {
    /// Representative figures for circuit-based ZK of the era the paper
    /// anticipates: ~10 µs/gate prover, ~4 µs/gate verifier,
    /// ~400 proof bytes/gate.
    pub fn generic() -> ZkpCostModel {
        ZkpCostModel {
            prover_per_gate: 10e-6,
            verifier_per_gate: 4e-6,
            bytes_per_gate: 400.0,
            setup: 0.050,
        }
    }

    /// Modeled prover+verifier wall-clock for proving one evaluation of
    /// `circuit`.
    pub fn estimate_seconds(&self, circuit: &Circuit) -> f64 {
        self.setup + circuit.len() as f64 * (self.prover_per_gate + self.verifier_per_gate)
    }

    /// Modeled proof size in bytes.
    pub fn proof_bytes(&self, circuit: &Circuit) -> f64 {
        circuit.len() as f64 * self.bytes_per_gate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::{majority_circuit, min_circuit, to_bits};
    use crate::gmw::run_gmw;
    use pvr_crypto::drbg::HmacDrbg;

    #[test]
    fn calibration_hits_the_fairplay_point() {
        // The paper's data point: 5 players, voting, ≈15 s.
        let c = majority_circuit(5);
        let inputs: Vec<Vec<bool>> = (0..5).map(|i| vec![i % 2 == 0]).collect();
        let mut rng = HmacDrbg::new(b"calibration");
        let result = run_gmw(&c, &inputs, &mut rng);
        let secs = SmcCostModel::fairplay_calibrated().estimate_seconds(&result.stats);
        assert!((10.0..25.0).contains(&secs), "5-player voting should model ≈15 s, got {secs:.2}");
    }

    #[test]
    fn cost_grows_with_parties() {
        let model = SmcCostModel::fairplay_calibrated();
        let mut prev = 0.0;
        for k in [2usize, 5, 10] {
            let c = min_circuit(k, 8);
            let inputs: Vec<Vec<bool>> = (0..k).map(|i| to_bits(i as u64 + 1, 8)).collect();
            let mut rng = HmacDrbg::new(b"parties");
            let result = run_gmw(&c, &inputs, &mut rng);
            let secs = model.estimate_seconds(&result.stats);
            assert!(secs > prev, "k={k}: {secs} should exceed {prev}");
            prev = secs;
        }
    }

    #[test]
    fn zkp_scales_linearly_in_gates() {
        let model = ZkpCostModel::generic();
        let small = min_circuit(2, 8);
        let large = min_circuit(16, 8);
        assert!(model.estimate_seconds(&large) > model.estimate_seconds(&small));
        assert!(model.proof_bytes(&large) > model.proof_bytes(&small));
        // Ratio tracks the gate-count ratio.
        let ratio = model.proof_bytes(&large) / model.proof_bytes(&small);
        let gates = large.len() as f64 / small.len() as f64;
        assert!((ratio - gates).abs() < 1e-9);
    }

    #[test]
    fn costmodel_matches_measured() {
        // The cost model consumes GmwStats; this pins the closed-form
        // predictions (what a deployment planner would compute from the
        // circuit alone) against stats *measured* from real batched
        // runs, so formula drift in either engine breaks loudly.
        use crate::batch::{pack_lane_inputs, BatchGmw};
        for (parties, width, lanes) in [(3usize, 8usize, 64usize), (5, 8, 17), (4, 6, 1)] {
            let c = min_circuit(parties, width);
            let lane_inputs: Vec<Vec<Vec<bool>>> = (0..lanes)
                .map(|k| (0..parties).map(|p| to_bits((k * 7 + p) as u64 % 50, width)).collect())
                .collect();
            let packed = pack_lane_inputs(&lane_inputs);
            let mut rng = HmacDrbg::from_u64_labeled(11, "costmodel-measured");
            let measured = BatchGmw::new(&c).run(&packed, &mut rng);

            // Closed-form predictions from circuit structure alone.
            let n = parties as u64;
            let per_lane_bits =
                c.and_count() as u64 * 2 * n * (n - 1) + c.outputs().len() as u64 * n * (n - 1);
            let per_lane_ots = c.and_count() as u64 * 2 * n * (n - 1);
            assert_eq!(measured.lane_stats.rounds, c.and_depth(), "rounds = AND depth");
            assert_eq!(measured.lane_stats.bits_broadcast, per_lane_bits);
            assert_eq!(measured.lane_stats.equivalent_ots, per_lane_ots);

            // Batch aggregate: rounds shared, traffic scales with lanes.
            let agg = measured.aggregate_stats();
            assert_eq!(agg.rounds, c.and_depth());
            assert_eq!(agg.bits_broadcast, per_lane_bits * lanes as u64);
            assert_eq!(agg.equivalent_ots, per_lane_ots * lanes as u64);

            // And the modeled seconds decompose exactly over the terms.
            let model = SmcCostModel::fairplay_calibrated();
            let predicted = model.setup
                + c.and_depth() as f64 * model.rtt
                + (per_lane_ots * lanes as u64) as f64 * model.per_ot
                + (per_lane_bits * lanes as u64) as f64 * model.per_bit;
            assert!((model.estimate_seconds(&agg) - predicted).abs() < 1e-9);
        }
    }

    #[test]
    fn setup_dominates_trivial_circuits() {
        let model = SmcCostModel::fairplay_calibrated();
        let stats = GmwStats { parties: 2, ..Default::default() };
        assert!((model.estimate_seconds(&stats) - model.setup).abs() < 1e-9);
    }
}
