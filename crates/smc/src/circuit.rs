//! Boolean circuits for the SMC/ZKP strawmen.
//!
//! §3.1 dismisses generic secure multiparty computation as "prohibitively
//! expensive" for per-update route verification. To *measure* that claim
//! (experiment E4) rather than assert it, we need the circuits a generic
//! approach would evaluate: comparators, adders, a k-way minimum (the
//! PVR task), and a majority vote (the FairplayMP calibration task \[2\]).

/// A wire index.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct WireId(pub u32);

/// A gate. XOR/NOT are "free" in GMW (local); AND costs communication.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Gate {
    /// An input bit owned by a party.
    Input {
        /// The party supplying this bit.
        party: u32,
    },
    /// A constant bit.
    Const(bool),
    /// XOR of two wires.
    Xor(WireId, WireId),
    /// AND of two wires (the expensive one).
    And(WireId, WireId),
    /// Negation.
    Not(WireId),
}

/// A boolean circuit in topological order (gates only reference earlier
/// wires, enforced by the builder).
#[derive(Clone, Debug, Default)]
pub struct Circuit {
    gates: Vec<Gate>,
    outputs: Vec<WireId>,
}

impl Circuit {
    /// An empty circuit.
    pub fn new() -> Circuit {
        Circuit::default()
    }

    fn push(&mut self, gate: Gate) -> WireId {
        if let Some(limit) = match gate {
            Gate::Xor(a, b) | Gate::And(a, b) => Some(a.0.max(b.0)),
            Gate::Not(a) => Some(a.0),
            _ => None,
        } {
            assert!((limit as usize) < self.gates.len(), "gate references a future wire");
        }
        self.gates.push(gate);
        WireId(self.gates.len() as u32 - 1)
    }

    /// Adds an input bit owned by `party`.
    pub fn input(&mut self, party: u32) -> WireId {
        self.push(Gate::Input { party })
    }

    /// Adds a constant bit.
    pub fn constant(&mut self, v: bool) -> WireId {
        self.push(Gate::Const(v))
    }

    /// `a ⊕ b`.
    pub fn xor(&mut self, a: WireId, b: WireId) -> WireId {
        self.push(Gate::Xor(a, b))
    }

    /// `a ∧ b`.
    pub fn and(&mut self, a: WireId, b: WireId) -> WireId {
        self.push(Gate::And(a, b))
    }

    /// `¬a`.
    pub fn not(&mut self, a: WireId) -> WireId {
        self.push(Gate::Not(a))
    }

    /// `a ∨ b = ¬(¬a ∧ ¬b)`.
    pub fn or(&mut self, a: WireId, b: WireId) -> WireId {
        let na = self.not(a);
        let nb = self.not(b);
        let n = self.and(na, nb);
        self.not(n)
    }

    /// Multiplexer: `sel ? a : b`, computed as `(sel ∧ (a ⊕ b)) ⊕ b`.
    pub fn mux(&mut self, sel: WireId, a: WireId, b: WireId) -> WireId {
        let d = self.xor(a, b);
        let m = self.and(sel, d);
        self.xor(m, b)
    }

    /// Word-level mux over little-endian bit vectors.
    pub fn mux_word(&mut self, sel: WireId, a: &[WireId], b: &[WireId]) -> Vec<WireId> {
        assert_eq!(a.len(), b.len());
        a.iter().zip(b).map(|(&x, &y)| self.mux(sel, x, y)).collect()
    }

    /// Unsigned comparison `a < b` over little-endian words of equal
    /// width (ripple from MSB).
    pub fn lt(&mut self, a: &[WireId], b: &[WireId]) -> WireId {
        assert_eq!(a.len(), b.len());
        let mut lt = self.constant(false);
        let mut eq = self.constant(true);
        for i in (0..a.len()).rev() {
            // lt' = lt ∨ (eq ∧ ¬a_i ∧ b_i)
            let na = self.not(a[i]);
            let t = self.and(na, b[i]);
            let t = self.and(eq, t);
            lt = self.or(lt, t);
            // eq' = eq ∧ ¬(a_i ⊕ b_i)
            let x = self.xor(a[i], b[i]);
            let nx = self.not(x);
            eq = self.and(eq, nx);
        }
        lt
    }

    /// Ripple-carry adder; returns `width+1` bits (little-endian).
    pub fn add(&mut self, a: &[WireId], b: &[WireId]) -> Vec<WireId> {
        assert_eq!(a.len(), b.len());
        let mut out = Vec::with_capacity(a.len() + 1);
        let mut carry = self.constant(false);
        for i in 0..a.len() {
            let axb = self.xor(a[i], b[i]);
            let s = self.xor(axb, carry);
            // carry' = (a ∧ b) ∨ (carry ∧ (a ⊕ b))
            let ab = self.and(a[i], b[i]);
            let ca = self.and(carry, axb);
            carry = self.or(ab, ca);
            out.push(s);
        }
        out.push(carry);
        out
    }

    /// Marks wires as circuit outputs.
    pub fn set_outputs(&mut self, outputs: &[WireId]) {
        self.outputs = outputs.to_vec();
    }

    /// The output wires.
    pub fn outputs(&self) -> &[WireId] {
        &self.outputs
    }

    /// All gates, in order.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Number of gates.
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// True if the circuit is empty.
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// Number of AND gates (the GMW communication cost driver).
    pub fn and_count(&self) -> usize {
        self.gates.iter().filter(|g| matches!(g, Gate::And(_, _))).count()
    }

    /// AND-depth: the number of sequential communication rounds GMW
    /// needs. Computed as the maximum number of AND gates on any path.
    pub fn and_depth(&self) -> usize {
        let mut depth = vec![0usize; self.gates.len()];
        for (i, g) in self.gates.iter().enumerate() {
            depth[i] = match *g {
                Gate::Input { .. } | Gate::Const(_) => 0,
                Gate::Not(a) => depth[a.0 as usize],
                Gate::Xor(a, b) => depth[a.0 as usize].max(depth[b.0 as usize]),
                Gate::And(a, b) => depth[a.0 as usize].max(depth[b.0 as usize]) + 1,
            };
        }
        self.outputs.iter().map(|w| depth[w.0 as usize]).max().unwrap_or(0)
    }

    /// Plaintext evaluation (reference semantics for the MPC tests).
    /// `inputs[p]` are party `p`'s bits in the order its input gates were
    /// created.
    pub fn eval_plain(&self, inputs: &[Vec<bool>]) -> Vec<bool> {
        let mut cursor = vec![0usize; inputs.len()];
        let mut values = Vec::with_capacity(self.gates.len());
        for g in &self.gates {
            let v = match *g {
                Gate::Input { party } => {
                    let p = party as usize;
                    let v = inputs[p][cursor[p]];
                    cursor[p] += 1;
                    v
                }
                Gate::Const(c) => c,
                Gate::Xor(a, b) => values[a.0 as usize] ^ values[b.0 as usize],
                Gate::And(a, b) => values[a.0 as usize] && values[b.0 as usize],
                Gate::Not(a) => !values[a.0 as usize],
            };
            values.push(v);
        }
        self.outputs.iter().map(|w| values[w.0 as usize]).collect()
    }
}

/// Converts a value into `width` little-endian bits.
pub fn to_bits(value: u64, width: usize) -> Vec<bool> {
    (0..width).map(|i| (value >> i) & 1 == 1).collect()
}

/// Converts little-endian bits back to a value.
pub fn from_bits(bits: &[bool]) -> u64 {
    bits.iter().enumerate().fold(0u64, |acc, (i, &b)| acc | ((b as u64) << i))
}

/// Builds the PVR-equivalent SMC task: the minimum of `k` `width`-bit
/// values, one per party. Output: the minimum, little-endian.
pub fn min_circuit(k: usize, width: usize) -> Circuit {
    assert!(k >= 1);
    let mut c = Circuit::new();
    let words: Vec<Vec<WireId>> =
        (0..k).map(|p| (0..width).map(|_| c.input(p as u32)).collect()).collect();
    let mut best = words[0].clone();
    for w in &words[1..] {
        let is_less = c.lt(w, &best);
        best = c.mux_word(is_less, w, &best);
    }
    c.set_outputs(&best);
    c
}

/// Builds the FairplayMP calibration task \[2\]: a yes/no majority vote
/// among `k` parties (1 input bit each). Output: one bit.
pub fn majority_circuit(k: usize) -> Circuit {
    assert!(k >= 1);
    let mut c = Circuit::new();
    let votes: Vec<WireId> = (0..k).map(|p| c.input(p as u32)).collect();
    // Sum the votes with an adder tree over zero-extended words.
    let width = usize::BITS as usize - (k + 1).leading_zeros() as usize;
    let zero = c.constant(false);
    let mut words: Vec<Vec<WireId>> = votes
        .iter()
        .map(|&v| {
            let mut w = vec![v];
            w.resize(width, zero);
            w
        })
        .collect();
    while words.len() > 1 {
        let mut next = Vec::with_capacity(words.len().div_ceil(2));
        let mut iter = words.into_iter();
        while let Some(a) = iter.next() {
            match iter.next() {
                Some(b) => {
                    let mut sum = a.clone();
                    let s = Circuit::add(&mut c, &sum, &b);
                    sum = s[..width].to_vec(); // width chosen to avoid overflow
                    next.push(sum);
                }
                None => next.push(a),
            }
        }
        words = next;
    }
    let total = &words[0];
    // majority ⟺ total > k/2 ⟺ threshold < total, threshold = k/2.
    let threshold_bits = to_bits((k / 2) as u64, width);
    let threshold: Vec<WireId> = threshold_bits.iter().map(|&b| c.constant(b)).collect();
    let out = c.lt(&threshold, total);
    c.set_outputs(&[out]);
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn basic_gates() {
        let mut c = Circuit::new();
        let a = c.input(0);
        let b = c.input(1);
        let x = c.xor(a, b);
        let n = c.and(a, b);
        let o = c.or(a, b);
        let na = c.not(a);
        c.set_outputs(&[x, n, o, na]);
        for (va, vb) in [(false, false), (false, true), (true, false), (true, true)] {
            let out = c.eval_plain(&[vec![va], vec![vb]]);
            assert_eq!(out, vec![va ^ vb, va && vb, va || vb, !va]);
        }
    }

    #[test]
    fn mux_selects() {
        let mut c = Circuit::new();
        let s = c.input(0);
        let a = c.input(0);
        let b = c.input(0);
        let m = c.mux(s, a, b);
        c.set_outputs(&[m]);
        assert_eq!(c.eval_plain(&[vec![true, true, false]]), vec![true]);
        assert_eq!(c.eval_plain(&[vec![false, true, false]]), vec![false]);
    }

    #[test]
    fn comparator_exhaustive_4bit() {
        let mut c = Circuit::new();
        let a: Vec<WireId> = (0..4).map(|_| c.input(0)).collect();
        let b: Vec<WireId> = (0..4).map(|_| c.input(1)).collect();
        let lt = c.lt(&a, &b);
        c.set_outputs(&[lt]);
        for x in 0..16u64 {
            for y in 0..16u64 {
                let out = c.eval_plain(&[to_bits(x, 4), to_bits(y, 4)]);
                assert_eq!(out[0], x < y, "{x} < {y}");
            }
        }
    }

    #[test]
    fn adder_exhaustive_4bit() {
        let mut c = Circuit::new();
        let a: Vec<WireId> = (0..4).map(|_| c.input(0)).collect();
        let b: Vec<WireId> = (0..4).map(|_| c.input(1)).collect();
        let sum = c.add(&a, &b);
        c.set_outputs(&sum);
        for x in 0..16u64 {
            for y in 0..16u64 {
                let out = c.eval_plain(&[to_bits(x, 4), to_bits(y, 4)]);
                assert_eq!(from_bits(&out), x + y, "{x} + {y}");
            }
        }
    }

    #[test]
    fn min_circuit_correct() {
        let c = min_circuit(4, 6);
        let vals = [13u64, 7, 22, 9];
        let inputs: Vec<Vec<bool>> = vals.iter().map(|&v| to_bits(v, 6)).collect();
        assert_eq!(from_bits(&c.eval_plain(&inputs)), 7);
    }

    #[test]
    fn min_circuit_single_party() {
        let c = min_circuit(1, 4);
        assert_eq!(from_bits(&c.eval_plain(&[to_bits(11, 4)])), 11);
        assert_eq!(c.and_count(), 0, "no comparisons needed");
    }

    #[test]
    fn majority_circuit_correct() {
        for k in [1usize, 3, 5, 7] {
            let c = majority_circuit(k);
            for pattern in 0..(1u32 << k) {
                let inputs: Vec<Vec<bool>> =
                    (0..k).map(|p| vec![(pattern >> p) & 1 == 1]).collect();
                let yes = (0..k).filter(|p| (pattern >> p) & 1 == 1).count();
                let out = c.eval_plain(&inputs);
                assert_eq!(out[0], yes > k / 2, "k={k} pattern={pattern:b}");
            }
        }
    }

    #[test]
    fn depth_and_counts() {
        let c = min_circuit(5, 8);
        assert!(c.and_count() > 0);
        assert!(c.and_depth() > 0);
        assert!(c.and_depth() <= c.and_count());
        assert!(!c.is_empty());
        assert_eq!(c.outputs().len(), 8);
    }

    #[test]
    #[should_panic(expected = "future wire")]
    fn forward_reference_rejected() {
        let mut c = Circuit::new();
        let a = c.input(0);
        let _ = c.xor(a, WireId(99));
    }

    proptest! {
        #[test]
        fn prop_min_circuit_matches_iter_min(vals in proptest::collection::vec(0u64..256, 1..6)) {
            let c = min_circuit(vals.len(), 8);
            let inputs: Vec<Vec<bool>> = vals.iter().map(|&v| to_bits(v, 8)).collect();
            prop_assert_eq!(from_bits(&c.eval_plain(&inputs)), *vals.iter().min().unwrap());
        }

        #[test]
        fn prop_bits_round_trip(v in 0u64..1024) {
            prop_assert_eq!(from_bits(&to_bits(v, 10)), v);
        }
    }
}
