//! # pvr-smc — the strawman baselines of §3.1
//!
//! "We can imagine a strawman solution in which the networks use secure
//! multiparty computation (SMC) … such a system would seem
//! prohibitively expensive. … Another strawman could be built using
//! general zero-knowledge proofs (ZKPs)."
//!
//! Experiment E4 measures those claims instead of asserting them:
//!
//! * [`circuit`] — boolean circuits (comparators, adders, k-way min,
//!   majority vote);
//! * [`gmw`] — a real GMW-style n-party execution over XOR shares with
//!   Beaver triples, counting rounds, triples, equivalent OTs, and bits;
//! * [`costmodel`] — WAN deployment models calibrated to the paper's
//!   FairplayMP data point ("about 15 seconds … for voting" at five
//!   players) plus a generic per-gate ZKP model;
//! * [`batch`] — the bit-sliced engine: 64 independent verifications
//!   lane-packed into `u64` words and evaluated in one circuit pass,
//!   per-lane identical to serial [`gmw::run_gmw`] (see the module docs
//!   for the layout and determinism proof sketch). This is what lets
//!   `pvr-bgp`'s private verification run across full topologies
//!   instead of microbenchmarks.

pub mod batch;
pub mod circuit;
pub mod costmodel;
pub mod gmw;

pub use batch::{pack_lane_inputs, BatchGmw, BatchGmwResult, BitBatch, MAX_LANES};
pub use circuit::{from_bits, majority_circuit, min_circuit, to_bits, Circuit, Gate, WireId};
pub use costmodel::{SmcCostModel, ZkpCostModel};
pub use gmw::{run_gmw, GmwResult, GmwStats};
